(* Differential tests for the domain-parallel LOCAL runtime: for every
   runner ([run], [run_full_info], [gather_balls]) the parallel engine
   ([~domains:4]) must produce byte-identical results — final states,
   round counts, message counts, raised exceptions — to the sequential
   reference engine ([~domains:1], which never spawns a domain).

   The protocols below are deterministic pseudo-random functions of
   (node, round, state), so any divergence in scheduling, snapshotting
   or message-delivery order between the two engines shows up as a
   differing final state. *)

module Net = Lll_local.Network
module RT = Lll_local.Runtime
module Par = Lll_local.Par
module Metrics = Lll_local.Metrics
module Gen = Lll_graph.Generators

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* ---------------------------------------------------------------- *)
(* random networks                                                  *)
(* ---------------------------------------------------------------- *)

(* (seed, n, edge budget) -> connected-ish random network; the graph is
   rebuilt deterministically inside the law so shrinking stays sound *)
let arb_net_params =
  QCheck.make
    ~print:(fun (seed, n, m) -> Printf.sprintf "seed=%d n=%d m=%d" seed n m)
    QCheck.Gen.(triple (int_bound 100_000) (int_range 2 30) (int_bound 60))

let net_of (seed, n, m) =
  let m = min m (n * (n - 1) / 2) in
  Net.create (Gen.gnm ~seed n m)

(* deterministic integer mixing — stands in for "arbitrary protocol" *)
let mix a b = ((a * 1_000_003) + b + 0x9E37) land 0x3FFFFFFF

(* ---------------------------------------------------------------- *)
(* protocols                                                        *)
(* ---------------------------------------------------------------- *)

(* message-passing: fold the inbox (order-sensitively: subtraction and
   mixing do not commute) into the state, send state-dependent messages
   to a state-dependent subset of neighbors, halt at a per-node round *)
let echo_step net ~round ~me s inbox =
  let s = List.fold_left (fun acc (u, m) -> mix acc (mix u m) - u) (mix s round) inbox in
  {
    RT.state = s;
    send =
      List.filter_map
        (fun u -> if mix s u mod 3 <> 0 then Some (u, mix s (u + round)) else None)
        (Net.neighbors net me);
    halt = round + 1 >= 2 + ((me + s) mod 4);
  }

let run_with net domains =
  RT.run ~domains net ~init:(fun v -> mix v 17) ~step:(echo_step net)

(* full-information: the neighbor list is order-sensitive too *)
let flood_step ~round ~me s nbrs =
  let s = List.fold_left (fun acc (u, x) -> mix acc (mix u x) - u) (mix s round) nbrs in
  (s, round + 1 >= 1 + ((me + s) mod 5))

let full_info_with net domains =
  RT.run_full_info ~domains net ~init:(fun v -> mix v 23) ~step:flood_step

let same_stats (s1 : RT.stats) (s2 : RT.stats) =
  s1.rounds = s2.rounds && s1.messages = s2.messages

(* ---------------------------------------------------------------- *)
(* differential properties: parallel == sequential                  *)
(* ---------------------------------------------------------------- *)

let diff_props =
  [
    prop "run: domains:4 == domains:1 (states, rounds, messages)" 200 arb_net_params
      (fun p ->
        let net = net_of p in
        let st1, s1 = run_with net 1 and st4, s4 = run_with net 4 in
        st1 = st4 && same_stats s1 s4);
    prop "run_full_info: domains:4 == domains:1" 200 arb_net_params (fun p ->
        let net = net_of p in
        let st1, s1 = full_info_with net 1 and st4, s4 = full_info_with net 4 in
        st1 = st4 && same_stats s1 s4);
    prop "gather_balls: domains:4 == domains:1 for radius 0..4" 200 arb_net_params
      (fun ((seed, _, _) as p) ->
        let net = net_of p in
        let radius = seed mod 5 in
        let value v = mix v 31 in
        let b1, s1 = RT.gather_balls ~domains:1 net ~radius ~value
        and b4, s4 = RT.gather_balls ~domains:4 net ~radius ~value in
        b1 = b4 && same_stats s1 s4);
    prop "run: Round_limit_exceeded raised identically" 200 arb_net_params (fun p ->
        let net = net_of p in
        (* never halts: both engines must hit the limit with equal payload *)
        let attempt domains =
          match
            RT.run ~max_rounds:5 ~domains net
              ~init:(fun v -> v)
              ~step:(fun ~round ~me:_ s _ ->
                { RT.state = mix s round; send = []; halt = false })
          with
          | _ -> None
          | exception RT.Round_limit_exceeded k -> Some k
        in
        attempt 1 = Some 5 && attempt 4 = Some 5);
  ]

(* ---------------------------------------------------------------- *)
(* non-neighbor rejection survives the parallel merge               *)
(* ---------------------------------------------------------------- *)

let test_non_neighbor_rejected_parallel () =
  (* on a 7-cycle, node me sends to me+2 (never a neighbor): the
     sequential commit sweep must still validate targets under
     domains:4 and raise with the exact sequential message *)
  let net = Net.create (Gen.cycle 7) in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Runtime.run: message to non-neighbor") (fun () ->
      ignore
        (RT.run ~domains:4 net
           ~init:(fun v -> v)
           ~step:(fun ~round ~me s _ ->
             { RT.state = s; send = [ ((me + 2) mod 7, s) ]; halt = round >= 3 })))

(* ---------------------------------------------------------------- *)
(* metrics: per-round records are consistent with the stats         *)
(* ---------------------------------------------------------------- *)

let metrics_props =
  [
    prop "metrics: one record per round, message totals agree" 60 arb_net_params
      (fun p ->
        let net = net_of p in
        let sink = Metrics.buffer () in
        let _, stats = RT.run ~domains:4 ~metrics:sink net ~init:(fun v -> mix v 17)
            ~step:(echo_step net)
        in
        let recs = stats.RT.per_round in
        List.length recs = stats.RT.rounds
        && Metrics.records sink = recs
        && List.fold_left (fun acc r -> acc + r.Metrics.messages) 0 recs
           = stats.RT.messages
        && (match List.rev recs with
           | last :: _ -> last.Metrics.halted_fraction = 1.0
           | [] -> stats.RT.rounds = 0)
        && List.for_all (fun r -> r.Metrics.stepped <= Net.n net) recs);
  ]

let test_metrics_disabled_empty () =
  let net = Net.create (Gen.cycle 5) in
  let _, stats = run_with net 4 in
  Alcotest.(check (list int)) "no records without a sink" []
    (List.map (fun r -> r.Metrics.round) stats.RT.per_round)

(* ---------------------------------------------------------------- *)
(* Par.chunks: static split is a partition of [0, n)                *)
(* ---------------------------------------------------------------- *)

let chunk_props =
  [
    prop "Par.chunks partitions 0..n-1 contiguously" 300
      (QCheck.make
         ~print:(fun (d, n) -> Printf.sprintf "domains=%d n=%d" d n)
         QCheck.Gen.(pair (int_range 1 16) (int_range 1 200)))
      (fun (domains, n) ->
        let bounds = Par.chunks ~domains ~n in
        let k = Array.length bounds in
        k >= 1
        && fst bounds.(0) = 0
        && snd bounds.(k - 1) = n - 1
        && Array.for_all
             (fun j -> fst bounds.(j + 1) = snd bounds.(j) + 1)
             (Array.init (k - 1) Fun.id));
  ]

let test_parallel_for_covers_all () =
  let n = 1001 in
  List.iter
    (fun domains ->
      let hits = Array.make n 0 in
      Par.parallel_for ~domains ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "each index visited once (domains=%d)" domains)
        true
        (Array.for_all (( = ) 1) hits))
    [ 1; 2; 3; 7 ]

let () =
  Alcotest.run "runtime_par"
    [
      ("differential", diff_props);
      ( "delivery",
        [
          Alcotest.test_case "non-neighbor rejected under domains:4" `Quick
            test_non_neighbor_rejected_parallel;
        ] );
      ( "metrics",
        metrics_props
        @ [ Alcotest.test_case "disabled sink yields no records" `Quick
              test_metrics_disabled_empty ] );
      ( "par",
        chunk_props
        @ [ Alcotest.test_case "parallel_for covers every index" `Quick
              test_parallel_for_covers_all ] );
    ]
