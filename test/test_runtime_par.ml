(* Differential tests for the domain-parallel LOCAL runtime: for every
   runner ([run], [run_full_info], [gather_balls]) the parallel engine
   ([~domains:4]) must produce byte-identical results — final states,
   round counts, message counts, raised exceptions — to the sequential
   reference engine ([~domains:1], which never spawns a domain).

   The protocols below are deterministic pseudo-random functions of
   (node, round, state), so any divergence in scheduling, snapshotting
   or message-delivery order between the two engines shows up as a
   differing final state. *)

module Net = Lll_local.Network
module RT = Lll_local.Runtime
module Par = Lll_local.Par
module Metrics = Lll_local.Metrics
module Gen = Lll_graph.Generators

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* ---------------------------------------------------------------- *)
(* random networks                                                  *)
(* ---------------------------------------------------------------- *)

(* (seed, n, edge budget) -> connected-ish random network; the graph is
   rebuilt deterministically inside the law so shrinking stays sound *)
let arb_net_params =
  QCheck.make
    ~print:(fun (seed, n, m) -> Printf.sprintf "seed=%d n=%d m=%d" seed n m)
    QCheck.Gen.(triple (int_bound 100_000) (int_range 2 30) (int_bound 60))

let net_of (seed, n, m) =
  let m = min m (n * (n - 1) / 2) in
  Net.create (Gen.gnm ~seed n m)

(* deterministic integer mixing — stands in for "arbitrary protocol" *)
let mix a b = ((a * 1_000_003) + b + 0x9E37) land 0x3FFFFFFF

(* ---------------------------------------------------------------- *)
(* protocols                                                        *)
(* ---------------------------------------------------------------- *)

(* message-passing: fold the inbox (order-sensitively: subtraction and
   mixing do not commute) into the state, send state-dependent messages
   to a state-dependent subset of neighbors, halt at a per-node round *)
let echo_step net ~round ~me s inbox =
  let s = List.fold_left (fun acc (u, m) -> mix acc (mix u m) - u) (mix s round) inbox in
  {
    RT.state = s;
    send =
      List.filter_map
        (fun u -> if mix s u mod 3 <> 0 then Some (u, mix s (u + round)) else None)
        (Net.neighbors net me);
    halt = round + 1 >= 2 + ((me + s) mod 4);
  }

let run_with net domains =
  RT.run ~domains net ~init:(fun v -> mix v 17) ~step:(echo_step net)

(* full-information: the neighbor list is order-sensitive too *)
let flood_step ~round ~me s nbrs =
  let s = List.fold_left (fun acc (u, x) -> mix acc (mix u x) - u) (mix s round) nbrs in
  (s, round + 1 >= 1 + ((me + s) mod 5))

let full_info_with net domains =
  RT.run_full_info ~domains net ~init:(fun v -> mix v 23) ~step:flood_step

let same_stats (s1 : RT.stats) (s2 : RT.stats) =
  s1.rounds = s2.rounds && s1.messages = s2.messages

(* ---------------------------------------------------------------- *)
(* differential properties: parallel == sequential                  *)
(* ---------------------------------------------------------------- *)

let diff_props =
  [
    prop "run: domains:4 == domains:1 (states, rounds, messages)" 200 arb_net_params
      (fun p ->
        let net = net_of p in
        let st1, s1 = run_with net 1 and st4, s4 = run_with net 4 in
        st1 = st4 && same_stats s1 s4);
    prop "run_full_info: domains:4 == domains:1" 200 arb_net_params (fun p ->
        let net = net_of p in
        let st1, s1 = full_info_with net 1 and st4, s4 = full_info_with net 4 in
        st1 = st4 && same_stats s1 s4);
    prop "gather_balls: domains:4 == domains:1 for radius 0..4" 200 arb_net_params
      (fun ((seed, _, _) as p) ->
        let net = net_of p in
        let radius = seed mod 5 in
        let value v = mix v 31 in
        let b1, s1 = RT.gather_balls ~domains:1 net ~radius ~value
        and b4, s4 = RT.gather_balls ~domains:4 net ~radius ~value in
        b1 = b4 && same_stats s1 s4);
    prop "run_full_info_flat: domains:4 == domains:1 == generic engine" 200 arb_net_params
      (fun p ->
        let net = net_of p in
        (* same int protocol through the flat runner and the generic one:
           all three executions must agree exactly *)
        let flat domains =
          RT.run_full_info_flat ~domains net
            ~init:(fun v -> mix v 29)
            ~step:(fun ~round ~me s nbrs ->
              let s = Array.fold_left (fun acc x -> mix acc x - (x land 7)) (mix s round) nbrs in
              (s, round + 1 >= 1 + ((me + s) mod 5)))
        in
        let generic =
          RT.run_full_info ~domains:1 net
            ~init:(fun v -> mix v 29)
            ~step:(fun ~round ~me s nbrs ->
              let s =
                List.fold_left (fun acc (_, x) -> mix acc x - (x land 7)) (mix s round) nbrs
              in
              (s, round + 1 >= 1 + ((me + s) mod 5)))
        in
        let st1, s1 = flat 1 and st4, s4 = flat 4 and stg, sg = generic in
        st1 = st4 && st1 = stg && same_stats s1 s4 && same_stats s1 sg);
    prop "run: Round_limit_exceeded raised identically" 200 arb_net_params (fun p ->
        let net = net_of p in
        (* never halts: both engines must hit the limit with equal payload *)
        let attempt domains =
          match
            RT.run ~max_rounds:5 ~domains net
              ~init:(fun v -> v)
              ~step:(fun ~round ~me:_ s _ ->
                { RT.state = mix s round; send = []; halt = false })
          with
          | _ -> None
          | exception RT.Round_limit_exceeded k -> Some k
        in
        attempt 1 = Some 5 && attempt 4 = Some 5);
  ]

(* ---------------------------------------------------------------- *)
(* migrated protocols: flat d1 == flat d4 == boxed ablation         *)
(* ---------------------------------------------------------------- *)

module Mis = Lll_local.Mis
module Primitives = Lll_local.Primitives
module Dist_lll = Lll_core.Dist_lll
module Distributed = Lll_core.Distributed
module Synthetic = Lll_core.Synthetic

(* every protocol that moved off the boxed engine in the record-of-arrays
   migration: its flat sequential run, its flat multi-domain run, and the
   retained boxed ablation baseline must agree byte for byte *)
let protocol_props =
  [
    prop "Mis.luby: flat d1 == flat d4 == boxed" 200 arb_net_params
      (fun ((seed, _, _) as p) ->
        let net = net_of p in
        let f1 = Mis.luby ~domains:1 ~seed net
        and f4 = Mis.luby ~domains:4 ~seed net
        and b = Mis.luby_boxed ~domains:1 ~seed net in
        f1 = f4 && f1 = b);
    prop "Primitives.elect_leader: flat d1 == flat d4 == boxed" 200 arb_net_params
      (fun p ->
        let net = net_of p in
        let f1 = Primitives.elect_leader ~domains:1 net
        and f4 = Primitives.elect_leader ~domains:4 net
        and b = Primitives.elect_leader_boxed ~domains:1 net in
        f1 = f4 && f1 = b);
    prop "Primitives.bfs_tree: flat d1 == flat d4 == boxed" 200 arb_net_params
      (fun ((seed, n, _) as p) ->
        let net = net_of p in
        let root = seed mod n in
        let f1 = Primitives.bfs_tree ~domains:1 net ~root
        and f4 = Primitives.bfs_tree ~domains:4 net ~root
        and b = Primitives.bfs_tree_boxed ~domains:1 net ~root in
        f1 = f4 && f1 = b);
    prop "Dist_lll.solve: `Flat d1 == `Flat d4 == `Boxed" 200
      (QCheck.make
         ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
         QCheck.Gen.(int_bound 100_000))
      (fun seed ->
        let inst =
          (* the 2-regular rank-3 structure needs [3 | n] and enough
             nodes for distinct edges *)
          Synthetic.random ~seed ~n:(3 * (4 + (seed mod 4))) ~rank:3 ~delta:2 ~arity:2 ()
        in
        let go engine domains = Dist_lll.solve ~engine ~domains inst in
        let f1 = go `Flat 1 and f4 = go `Flat 4 and b = go `Boxed 1 in
        f1 = f4 && f1 = b);
    prop "Distributed.solve_rank3: parallel fix_class d1 == d4" 200
      (QCheck.make
         ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
         QCheck.Gen.(int_bound 100_000))
      (fun seed ->
        let inst =
          (* the 2-regular rank-3 structure needs [3 | n] and enough
             nodes for distinct edges *)
          Synthetic.random ~seed ~n:(3 * (4 + (seed mod 4))) ~rank:3 ~delta:2 ~arity:2 ()
        in
        Distributed.solve_rank3 ~domains:1 inst = Distributed.solve_rank3 ~domains:4 inst);
  ]

(* ---------------------------------------------------------------- *)
(* the parallel commit sweep (n >= par_commit_cutoff)               *)
(* ---------------------------------------------------------------- *)

(* The properties above stay far below [par_commit_cutoff], so they pin
   the sequential commit path. These cross it (n = 3000 > 2048): the
   chunked commit, the per-destination prefix merge and the parallel
   scatter must reproduce the sequential engine byte for byte. *)

let big_net seed = Net.create (Gen.random_regular ~seed 3000 4)

let test_parallel_commit_differential () =
  List.iter
    (fun seed ->
      let net = big_net seed in
      let st1, s1 = run_with net 1 and st4, s4 = run_with net 4 in
      Alcotest.(check bool) (Printf.sprintf "states agree (seed %d)" seed) true (st1 = st4);
      Alcotest.(check int) "rounds" s1.RT.rounds s4.RT.rounds;
      Alcotest.(check int) "messages" s1.RT.messages s4.RT.messages)
    [ 3; 19 ]

let test_parallel_commit_inbox_order () =
  (* ascending-sender delivery survives the parallel scatter *)
  let net = big_net 7 in
  let states, _ =
    RT.run ~domains:4 net
      ~init:(fun _ -> [])
      ~step:(fun ~round ~me s inbox ->
        {
          RT.state = (if round = 1 then List.map fst inbox else s);
          send = (if round = 0 then List.map (fun u -> (u, me)) (Net.neighbors net me) else []);
          halt = round >= 1;
        })
  in
  Array.iteri
    (fun v senders ->
      if senders <> List.sort compare (Net.neighbors net v) then
        Alcotest.failf "inbox of %d not in ascending sender order" v)
    states

let test_parallel_commit_rejects_non_neighbor () =
  (* the validation inside the chunked pass A must surface the exact
     sequential exception *)
  let n = 3000 in
  let net = Net.create (Gen.cycle n) in
  Alcotest.check_raises "non-neighbor send above cutoff"
    (Invalid_argument "Runtime.run: message to non-neighbor") (fun () ->
      ignore
        (RT.run ~domains:4 net
           ~init:(fun v -> v)
           ~step:(fun ~round ~me s _ ->
             { RT.state = s; send = [ ((me + 2) mod n, s) ]; halt = round >= 2 })))

(* ---------------------------------------------------------------- *)
(* non-neighbor rejection survives the parallel merge               *)
(* ---------------------------------------------------------------- *)

let test_non_neighbor_rejected_parallel () =
  (* on a 7-cycle, node me sends to me+2 (never a neighbor): the
     sequential commit sweep must still validate targets under
     domains:4 and raise with the exact sequential message *)
  let net = Net.create (Gen.cycle 7) in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Runtime.run: message to non-neighbor") (fun () ->
      ignore
        (RT.run ~domains:4 net
           ~init:(fun v -> v)
           ~step:(fun ~round ~me s _ ->
             { RT.state = s; send = [ ((me + 2) mod 7, s) ]; halt = round >= 3 })))

(* ---------------------------------------------------------------- *)
(* arena: delivery order, buffer growth, pinned gather output       *)
(* ---------------------------------------------------------------- *)

(* The inbox a node consumes must list messages in ascending sender
   order — the order the pre-arena list engine delivered. The protocol
   records the senders it saw; at the end they must equal the sorted
   neighbor list. *)
let test_arena_inbox_order () =
  let net = Net.create (Gen.gnm ~seed:11 20 40) in
  let states, _ =
    RT.run ~domains:4 net
      ~init:(fun _ -> [])
      ~step:(fun ~round ~me s inbox ->
        let senders = List.map fst inbox in
        {
          RT.state = (if round = 1 then senders else s);
          send = (if round = 0 then List.map (fun u -> (u, me)) (Net.neighbors net me) else []);
          halt = round >= 1;
        })
  in
  Array.iteri
    (fun v senders ->
      Alcotest.(check (list int))
        (Printf.sprintf "inbox of %d sorted by sender" v)
        (List.sort compare (Net.neighbors net v))
        senders)
    states

(* Message volume that swells and shrinks across rounds forces the arena
   through lazy allocation, growth, and reuse; the differential contract
   must hold throughout. *)
let arena_stress_props =
  [
    prop "run: varying message volume, domains:4 == domains:1" 100 arb_net_params
      (fun p ->
        let net = net_of p in
        let bursty ~round ~me s inbox =
          let s = List.fold_left (fun acc (u, m) -> mix acc (mix u m) - u) (mix s round) inbox in
          let copies = (mix s round mod 4) * (round mod 3) in
          let send =
            List.concat_map
              (fun u -> List.init copies (fun i -> (u, mix s (u + i))))
              (Net.neighbors net me)
          in
          { RT.state = s; send; halt = round + 1 >= 4 + ((me + s) mod 3) }
        in
        let go domains = RT.run ~domains net ~init:(fun v -> mix v 41) ~step:bursty in
        let st1, s1 = go 1 and st4, s4 = go 4 in
        st1 = st4 && same_stats s1 s4);
  ]

(* Regression: gather_balls output pinned exactly — entries sorted by
   node id, values attached. Guards the sorted-merge dedup. *)
let test_gather_balls_pinned () =
  let value v = 10 * v in
  let check name net radius expected =
    let balls, _ = RT.gather_balls ~domains:4 net ~radius ~value in
    Alcotest.(check (array (list (pair int int)))) name expected balls
  in
  check "path-5 radius 2"
    (Net.create (Gen.path 5))
    2
    [|
      [ (0, 0); (1, 10); (2, 20) ];
      [ (0, 0); (1, 10); (2, 20); (3, 30) ];
      [ (0, 0); (1, 10); (2, 20); (3, 30); (4, 40) ];
      [ (1, 10); (2, 20); (3, 30); (4, 40) ];
      [ (2, 20); (3, 30); (4, 40) ];
    |];
  check "star-5 radius 1"
    (Net.create (Gen.star 5))
    1
    [|
      [ (0, 0); (1, 10); (2, 20); (3, 30); (4, 40) ];
      [ (0, 0); (1, 10) ];
      [ (0, 0); (2, 20) ];
      [ (0, 0); (3, 30) ];
      [ (0, 0); (4, 40) ];
    |]

(* ---------------------------------------------------------------- *)
(* metrics: per-round records are consistent with the stats         *)
(* ---------------------------------------------------------------- *)

let metrics_props =
  [
    prop "metrics: one record per round, message totals agree" 60 arb_net_params
      (fun p ->
        let net = net_of p in
        let sink = Metrics.buffer () in
        let _, stats = RT.run ~domains:4 ~metrics:sink net ~init:(fun v -> mix v 17)
            ~step:(echo_step net)
        in
        let recs = stats.RT.per_round in
        List.length recs = stats.RT.rounds
        && Metrics.records sink = recs
        && List.fold_left (fun acc r -> acc + r.Metrics.messages) 0 recs
           = stats.RT.messages
        && (match List.rev recs with
           | last :: _ -> last.Metrics.halted_fraction = 1.0
           | [] -> stats.RT.rounds = 0)
        && List.for_all (fun r -> r.Metrics.stepped <= Net.n net) recs);
    prop "metrics: max_inbox bounded by prior round, arena capacity monotone" 60
      arb_net_params (fun p ->
        let net = net_of p in
        let sink = Metrics.buffer () in
        let _, stats = RT.run ~domains:4 ~metrics:sink net ~init:(fun v -> mix v 17)
            ~step:(echo_step net)
        in
        let recs = stats.RT.per_round in
        let rec ok prev_msgs prev_cap = function
          | [] -> true
          | r :: rest ->
            (* round r consumes what round r-1 sent; the first round's
               inboxes are empty; capacity only ever grows *)
            r.Metrics.max_inbox <= prev_msgs
            && r.Metrics.arena_occupancy >= prev_cap
            && r.Metrics.arena_occupancy >= r.Metrics.max_inbox
            && ok r.Metrics.messages r.Metrics.arena_occupancy rest
        in
        ok 0 0 recs);
  ]

let test_metrics_disabled_empty () =
  let net = Net.create (Gen.cycle 5) in
  let _, stats = run_with net 4 in
  Alcotest.(check (list int)) "no records without a sink" []
    (List.map (fun r -> r.Metrics.round) stats.RT.per_round)

(* ---------------------------------------------------------------- *)
(* Par.chunks: static split is a partition of [0, n)                *)
(* ---------------------------------------------------------------- *)

let chunk_props =
  [
    prop "Par.chunks partitions 0..n-1 contiguously" 300
      (QCheck.make
         ~print:(fun (d, n) -> Printf.sprintf "domains=%d n=%d" d n)
         QCheck.Gen.(pair (int_range 1 16) (int_range 1 200)))
      (fun (domains, n) ->
        let bounds = Par.chunks ~domains ~n in
        let k = Array.length bounds in
        k >= 1
        && fst bounds.(0) = 0
        && snd bounds.(k - 1) = n - 1
        && Array.for_all
             (fun j -> fst bounds.(j + 1) = snd bounds.(j) + 1)
             (Array.init (k - 1) Fun.id));
  ]

let test_parallel_for_covers_all () =
  let n = 1001 in
  List.iter
    (fun domains ->
      let hits = Array.make n 0 in
      Par.parallel_for ~domains ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "each index visited once (domains=%d)" domains)
        true
        (Array.for_all (( = ) 1) hits))
    [ 1; 2; 3; 7 ]

let () =
  Alcotest.run "runtime_par"
    [
      ("differential", diff_props);
      ("protocols", protocol_props);
      ( "delivery",
        [
          Alcotest.test_case "non-neighbor rejected under domains:4" `Quick
            test_non_neighbor_rejected_parallel;
        ] );
      ( "parallel-commit",
        [
          Alcotest.test_case "d4 == d1 above the cutoff" `Quick
            test_parallel_commit_differential;
          Alcotest.test_case "inbox order above the cutoff" `Quick
            test_parallel_commit_inbox_order;
          Alcotest.test_case "non-neighbor rejected above the cutoff" `Quick
            test_parallel_commit_rejects_non_neighbor;
        ] );
      ( "arena",
        arena_stress_props
        @ [
            Alcotest.test_case "inbox ordered by ascending sender" `Quick
              test_arena_inbox_order;
            Alcotest.test_case "gather_balls output pinned" `Quick test_gather_balls_pinned;
          ] );
      ( "metrics",
        metrics_props
        @ [ Alcotest.test_case "disabled sink yields no records" `Quick
              test_metrics_disabled_empty ] );
      ( "par",
        chunk_props
        @ [ Alcotest.test_case "parallel_for covers every index" `Quick
              test_parallel_for_covers_all ] );
    ]
