(* Tests for the content-addressed artifact store: the canonical spec
   codec (round trips, canonicality rejection, the qcheck injectivity
   law the store keys depend on), the three-tier fetch path
   (memory / disk artifact / generation), build-once behaviour under
   concurrent domains, quarantine-and-regenerate on corrupt artifacts,
   gc semantics under a live mmap reader, and the key convergence of
   file-addressed requests onto spec keys. *)

module Spec = Lll_store.Spec
module Store = Lll_store.Store
module Memcache = Lll_store.Memcache
module Instance = Lll_core.Instance
module Serial = Lll_core.Serial

let with_tmpdir f =
  let dir = Filename.temp_file "lll_store" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Spec codec                                                           *)
(* ------------------------------------------------------------------ *)

let sample_specs =
  [
    Spec.Ring { n = 24; seed = 1; arity = 4; at = true };
    Spec.Ring { n = 24; seed = 1; arity = 4; at = false };
    Spec.Rank { n = 48; seed = 2; rank = 3; delta = 2; arity = 8; at = true };
    Spec.Rank { n = 48; seed = 2; rank = 4; delta = 2; arity = 16; at = false };
    Spec.Sinkless { n = 24; seed = 1; degree = 3; girth = 6; relaxed = false };
    Spec.Sinkless { n = 24; seed = 1; degree = 3; girth = 0; relaxed = true };
    Spec.Hyper { n = 24; seed = 3; rank = 3; degree = 2 };
    Spec.Weak_split { n = 24; seed = 1; degree = 3 };
  ]

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      let line = Spec.to_string s in
      Alcotest.(check bool)
        (Printf.sprintf "round trip %s" line)
        true
        (Spec.of_string line = s))
    sample_specs

let test_spec_rejects_noncanonical () =
  let reject what line =
    try
      ignore (Spec.of_string line);
      Alcotest.fail (what ^ " accepted")
    with Spec.Malformed _ -> ()
  in
  reject "empty" "";
  reject "bad version" "specv0:ring;n=24;s=1;a=4;at=1";
  reject "unknown family" "specv1:torus;n=24;s=1";
  reject "reordered fields" "specv1:ring;s=1;n=24;a=4;at=1";
  reject "missing field" "specv1:ring;n=24;s=1;a=4";
  reject "trailing junk" "specv1:ring;n=24;s=1;a=4;at=1;x=9";
  reject "non-numeric" "specv1:ring;n=two;s=1;a=4;at=1"

let test_spec_keys () =
  List.iter
    (fun s ->
      let k = Spec.key s in
      Alcotest.(check bool) "spec: schema" true (String.length k = 37 && String.sub k 0 5 = "spec:");
      Alcotest.(check string) "key is digest" ("spec:" ^ Spec.digest s) k)
    sample_specs

let test_of_family_params () =
  let mk family = Spec.of_family_params ~family ~n:24 ~degree:3 ~seed:1 ~at_threshold:true in
  List.iter
    (fun family ->
      let s = mk family in
      Alcotest.(check int) (family ^ " size") 24 (Spec.size s);
      Alcotest.(check int) (family ^ " seed") 1 (Spec.seed s))
    Spec.families;
  (match mk "sinkless" with
  | Spec.Sinkless { relaxed = false; _ } -> ()
  | _ -> Alcotest.fail "sinkless family");
  (match mk "sinkless-relaxed" with
  | Spec.Sinkless { relaxed = true; _ } -> ()
  | _ -> Alcotest.fail "sinkless-relaxed family");
  (try
     ignore (mk "moebius");
     Alcotest.fail "unknown family accepted"
   with Invalid_argument _ -> ())

(* the store's whole addressing scheme rests on this: distinct specs
   render distinct canonical strings (hence distinct digests) *)
let arb_spec =
  let open QCheck in
  let gen =
    Gen.oneof
      [
        Gen.map3
          (fun n seed (arity, at) -> Spec.Ring { n; seed; arity; at })
          (Gen.int_range 4 200) (Gen.int_range 0 50)
          (Gen.pair (Gen.int_range 2 8) Gen.bool);
        Gen.map3
          (fun n seed (rank, at) ->
            Spec.Rank { n; seed; rank; delta = 2; arity = 1 lsl rank; at })
          (Gen.int_range 6 200) (Gen.int_range 0 50)
          (Gen.pair (Gen.int_range 2 5) Gen.bool);
        Gen.map3
          (fun n seed (girth, relaxed) ->
            Spec.Sinkless { n; seed; degree = 3; girth; relaxed })
          (Gen.int_range 24 400) (Gen.int_range 0 50)
          (Gen.pair (Gen.oneofl [ 0; 4; 6 ]) Gen.bool);
        Gen.map2
          (fun n seed -> Spec.Hyper { n; seed; rank = 3; degree = 2 })
          (Gen.int_range 6 200) (Gen.int_range 0 50);
        Gen.map2
          (fun n seed -> Spec.Weak_split { n; seed; degree = 3 })
          (Gen.int_range 4 200) (Gen.int_range 0 50);
      ]
  in
  make ~print:Spec.to_string gen

let injectivity_law =
  QCheck.Test.make ~name:"digest injective on distinct specs" ~count:300
    (QCheck.pair arb_spec arb_spec) (fun (a, b) ->
      (* equal specs must agree, distinct specs must separate, and the
         canonical string must survive its own parser *)
      Spec.of_string (Spec.to_string a) = a
      && if a = b then Spec.digest a = Spec.digest b
         else Spec.to_string a <> Spec.to_string b && Spec.digest a <> Spec.digest b)

(* ------------------------------------------------------------------ *)
(* Fetch tiering                                                        *)
(* ------------------------------------------------------------------ *)

let ring_spec = Spec.Ring { n = 20; seed = 1; arity = 4; at = true }

let test_fetch_memory_only () =
  let st = Store.create () in
  Alcotest.(check bool) "no dir" true (Store.dir st = None);
  let i1, s1 = Store.fetch st ring_spec in
  let i2, s2 = Store.fetch st ring_spec in
  Alcotest.(check bool) "first is built" true (s1 = `Built);
  Alcotest.(check bool) "second is memory" true (s2 = `Mem);
  Alcotest.(check bool) "same boxed instance" true (i1 == i2);
  Alcotest.(check int) "one generation" 1 (Store.stats st).Store.st_built

let test_fetch_disk_tier () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let i1, s1 = Store.fetch st ring_spec in
      Alcotest.(check bool) "cold miss builds" true (s1 = `Built);
      (* a fresh store over the same directory must load, not rebuild *)
      let st2 = Store.create ~dir () in
      let i2, s2 = Store.fetch st2 ring_spec in
      Alcotest.(check bool) "warm store loads from disk" true (s2 = `Disk);
      Alcotest.(check int) "no regeneration" 0 (Store.stats st2).Store.st_built;
      Alcotest.(check bool) "bit-identical payload" true
        (Serial.to_binary_string i1 = Serial.to_binary_string i2);
      let _, s3 = Store.fetch st2 ring_spec in
      Alcotest.(check bool) "then memory" true (s3 = `Mem))

let test_materialize_and_ls () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let path = Store.materialize st ring_spec in
      Alcotest.(check bool) "artifact exists" true (Sys.file_exists path);
      Alcotest.(check string) "named by digest" (Spec.digest ring_spec ^ ".lllbin")
        (Filename.basename path);
      match Store.ls st with
      | [ e ] ->
        Alcotest.(check string) "entry digest" (Spec.digest ring_spec) e.Store.e_digest;
        Alcotest.(check (option string)) "sidecar spec" (Some (Spec.to_string ring_spec))
          e.Store.e_spec;
        Alcotest.(check bool) "non-empty" true (e.Store.e_bytes > 0)
      | l -> Alcotest.fail (Printf.sprintf "expected one entry, got %d" (List.length l)))

let test_materialize_requires_dir () =
  let st = Store.create () in
  try
    ignore (Store.materialize st ring_spec);
    Alcotest.fail "materialize without a directory accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Quarantine                                                           *)
(* ------------------------------------------------------------------ *)

let corrupt_artifact path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  Bytes.set s (len - 1) (Char.chr (Char.code (Bytes.get s (len - 1)) lxor 0x5a));
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc

let test_corrupt_artifact_quarantined () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let path = Store.materialize st ring_spec in
      corrupt_artifact path;
      (* a fresh store (cold memory tier) must hit the bad artifact,
         quarantine it and regenerate rather than crash *)
      let st2 = Store.create ~dir () in
      let inst, src = Store.fetch st2 ring_spec in
      Alcotest.(check bool) "regenerated" true (src = `Built);
      Alcotest.(check int) "quarantined once" 1 (Store.stats st2).Store.st_quarantined;
      Alcotest.(check bool) "bad file parked" true (Sys.file_exists (path ^ ".bad"));
      Alcotest.(check bool) "artifact republished" true (Sys.file_exists path);
      (* the republished artifact is valid again *)
      let st3 = Store.create ~dir () in
      let inst', src' = Store.fetch st3 ring_spec in
      Alcotest.(check bool) "clean reload" true (src' = `Disk);
      Alcotest.(check bool) "same payload" true
        (Serial.to_binary_string inst = Serial.to_binary_string inst'))

let test_truncated_artifact_quarantined () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let path = Store.materialize st ring_spec in
      let ic = open_in_bin path in
      let keep = in_channel_length ic / 2 in
      let s = really_input_string ic keep in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let st2 = Store.create ~dir () in
      let _, src = Store.fetch st2 ring_spec in
      Alcotest.(check bool) "regenerated" true (src = `Built);
      Alcotest.(check int) "quarantined" 1 (Store.stats st2).Store.st_quarantined)

let test_verify_flags_corruption () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let path = Store.materialize st ring_spec in
      ignore (Store.materialize st (Spec.Ring { n = 28; seed = 1; arity = 4; at = true }));
      corrupt_artifact path;
      let report = Store.verify st in
      let ok, bad =
        List.partition (fun (_, v) -> v = `Ok) report
      in
      Alcotest.(check int) "one ok" 1 (List.length ok);
      (match bad with
      | [ (d, `Corrupt _) ] ->
        Alcotest.(check string) "corrupt digest" (Spec.digest ring_spec) d
      | _ -> Alcotest.fail "expected exactly one corrupt entry");
      (* verify is read-only: nothing quarantined, file still there *)
      Alcotest.(check int) "no quarantine" 0 (Store.stats st).Store.st_quarantined;
      Alcotest.(check bool) "file untouched" true (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* gc                                                                   *)
(* ------------------------------------------------------------------ *)

let test_gc_under_live_reader () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      ignore (Store.materialize st ring_spec);
      (* a second store maps the artifact and keeps the instance live *)
      let reader = Store.create ~dir () in
      let inst, src = Store.fetch reader ring_spec in
      Alcotest.(check bool) "reader mapped the artifact" true (src = `Disk);
      let res = Store.gc ~all:true st in
      Alcotest.(check bool) "artifacts removed" true (res.Store.gc_removed >= 1);
      (* unlink removes the name, not the reader's pages: the mapped
         instance must remain fully usable *)
      let expected = Spec.build ring_spec in
      Alcotest.(check int) "live instance intact" (Instance.num_events expected)
        (Instance.num_events inst);
      Alcotest.(check bool) "payload intact" true
        (Serial.to_binary_string inst = Serial.to_binary_string expected);
      (* and a fresh fetch regenerates *)
      let st2 = Store.create ~dir () in
      let _, src2 = Store.fetch st2 ring_spec in
      Alcotest.(check bool) "post-gc fetch rebuilds" true (src2 = `Built))

let test_gc_removes_quarantine () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let path = Store.materialize st ring_spec in
      corrupt_artifact path;
      let st2 = Store.create ~dir () in
      ignore (Store.fetch st2 ring_spec);
      Alcotest.(check bool) ".bad present" true (Sys.file_exists (path ^ ".bad"));
      let res = Store.gc st2 in
      Alcotest.(check bool) ".bad collected" false (Sys.file_exists (path ^ ".bad"));
      Alcotest.(check bool) "artifact kept by default gc" true (Sys.file_exists path);
      Alcotest.(check bool) "counted" true (res.Store.gc_removed >= 1 && res.Store.gc_kept >= 1))

(* ------------------------------------------------------------------ *)
(* Concurrency                                                          *)
(* ------------------------------------------------------------------ *)

let test_concurrent_fetch_builds_once () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let doms =
        List.init 2 (fun _ -> Domain.spawn (fun () -> fst (Store.fetch st ring_spec)))
      in
      let values = List.map Domain.join doms in
      Alcotest.(check int) "one generation" 1 (Store.stats st).Store.st_built;
      (match values with
      | [ a; b ] -> Alcotest.(check bool) "shared instance" true (a == b)
      | _ -> assert false);
      (* exactly one artifact, no leftover temp files *)
      Alcotest.(check int) "one artifact" 1 (List.length (Store.ls st));
      let strays =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> not (Filename.check_suffix f ".lllbin"
                                      || Filename.check_suffix f ".spec"))
      in
      Alcotest.(check (list string)) "no temp droppings" [] strays)

(* ------------------------------------------------------------------ *)
(* Descriptions: blobs and files converge on content keys               *)
(* ------------------------------------------------------------------ *)

let test_blob_descr () =
  let st = Store.create () in
  let inst = Spec.build ring_spec in
  let blob = Serial.to_binary_string inst in
  let d = Store.Of_blob blob in
  Alcotest.(check string) "blob key schema" (Memcache.content_key blob) (Store.descr_key st d);
  let got, src = Store.fetch_descr st d in
  Alcotest.(check bool) "decoded" true (src = `Built);
  Alcotest.(check int) "payload" (Instance.num_events inst) (Instance.num_events got)

let test_file_descr_converges_on_spec_key () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let path = Store.materialize st ring_spec in
      (* a file= request naming a store artifact resolves to the spec
         key, so it shares the cache entry of the spec= request *)
      Alcotest.(check string) "file converges on spec key" (Spec.key ring_spec)
        (Store.descr_key st (Store.Of_file path));
      ignore (Store.fetch_descr st (Store.Of_file path));
      let _, src = Store.fetch_descr st (Store.Of_spec ring_spec) in
      Alcotest.(check bool) "shared cache entry" true (src = `Mem))

let test_put_blob_artifact () =
  with_tmpdir (fun dir ->
      let st = Store.create ~dir () in
      let inst = Spec.build ring_spec in
      let digest = Store.put_blob st inst in
      let path = Filename.concat dir (digest ^ ".lllbin") in
      Alcotest.(check bool) "artifact written" true (Sys.file_exists path);
      Alcotest.(check bool) "no spec sidecar" false (Sys.file_exists (Filename.concat dir (digest ^ ".spec")));
      (* content-addressed: same instance, same digest *)
      Alcotest.(check string) "idempotent" digest (Store.put_blob st inst);
      (* loadable through the file path, keyed by container identity
         (not a spec key — there is no sidecar) *)
      let k = Store.descr_key st (Store.Of_file path) in
      Alcotest.(check bool) "not a spec key" false
        (String.length k >= 5 && String.sub k 0 5 = "spec:");
      let got, _ = Store.fetch_descr st (Store.Of_file path) in
      Alcotest.(check int) "round trip" (Instance.num_events inst) (Instance.num_events got))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lll_store"
    [
      ( "spec",
        [
          tc "round trip" test_spec_roundtrip;
          tc "rejects non-canonical" test_spec_rejects_noncanonical;
          tc "keys" test_spec_keys;
          tc "of_family_params" test_of_family_params;
          QCheck_alcotest.to_alcotest injectivity_law;
        ] );
      ( "fetch",
        [
          tc "memory only" test_fetch_memory_only;
          tc "disk tier" test_fetch_disk_tier;
          tc "materialize + ls" test_materialize_and_ls;
          tc "materialize requires dir" test_materialize_requires_dir;
        ] );
      ( "quarantine",
        [
          tc "corrupt artifact" test_corrupt_artifact_quarantined;
          tc "truncated artifact" test_truncated_artifact_quarantined;
          tc "verify is read-only" test_verify_flags_corruption;
        ] );
      ( "gc",
        [
          tc "live reader survives gc" test_gc_under_live_reader;
          tc "collects quarantine" test_gc_removes_quarantine;
        ] );
      ("concurrency", [ tc "two domains build once" test_concurrent_fetch_builds_once ]);
      ( "descr",
        [
          tc "blob" test_blob_descr;
          tc "file converges on spec key" test_file_descr_converges_on_spec_key;
          tc "put_blob" test_put_blob_artifact;
        ] );
    ]
