(* Tests for the bignum substrate: Bigint and Rat. *)

module B = Lll_num.Bigint
module R = Lll_num.Rat

let bigint = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable R.pp R.equal

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_of_int_roundtrip () =
  List.iter
    (fun i -> Alcotest.(check (option int)) "roundtrip" (Some i) (B.to_int_opt (B.of_int i)))
    [ 0; 1; -1; 42; -42; 999_999_999; 1_000_000_000; -1_000_000_001; max_int; min_int + 1 ]

let test_of_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-999999999999999999999999" ]

let test_of_string_normalises () =
  Alcotest.check bigint "leading zeros" (B.of_int 7) (B.of_string "007");
  Alcotest.check bigint "plus sign" (B.of_int 7) (B.of_string "+7");
  Alcotest.check bigint "minus zero" B.zero (B.of_string "-0")

let test_of_string_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty") (fun () ->
      ignore (B.of_string ""));
  (try
     ignore (B.of_string "12x4");
     Alcotest.fail "accepted garbage"
   with Invalid_argument _ -> ())

let test_add_carry () =
  Alcotest.check bigint "carry chain"
    (B.of_string "1000000000000000000")
    (B.add (B.of_string "999999999999999999") B.one)

let test_sub_borrow () =
  Alcotest.check bigint "borrow chain"
    (B.of_string "999999999999999999")
    (B.sub (B.of_string "1000000000000000000") B.one)

let test_mul_big () =
  Alcotest.check bigint "schoolbook"
    (B.of_string "121932631137021795226185032733622923332237463801111263526900")
    (B.mul
       (B.of_string "123456789012345678901234567890")
       (B.of_string "987654321098765432109876543210"))

let test_divmod_exact () =
  let a = B.of_string "121932631137021795226185032733622923332237463801111263526900" in
  let b = B.of_string "123456789012345678901234567890" in
  let q, r = B.divmod a b in
  Alcotest.check bigint "q" (B.of_string "987654321098765432109876543210") q;
  Alcotest.check bigint "r" B.zero r

let test_divmod_signs () =
  (* truncated division, like OCaml's / and mod *)
  let check (x, y, q, r) =
    let q', r' = B.divmod (B.of_int x) (B.of_int y) in
    Alcotest.check bigint (Printf.sprintf "%d/%d q" x y) (B.of_int q) q';
    Alcotest.check bigint (Printf.sprintf "%d/%d r" x y) (B.of_int r) r'
  in
  List.iter check [ (7, 2, 3, 1); (-7, 2, -3, -1); (7, -2, -3, 1); (-7, -2, 3, -1) ]

let test_div_by_zero () =
  Alcotest.check_raises "div0" (Invalid_argument "Bigint.divmod: division by zero") (fun () ->
      ignore (B.divmod B.one B.zero))

let test_ediv_rem () =
  let q, r = B.ediv_rem (B.of_int (-7)) (B.of_int 2) in
  Alcotest.check bigint "eq" (B.of_int (-4)) q;
  Alcotest.check bigint "er" (B.of_int 1) r;
  let q, r = B.ediv_rem (B.of_int (-7)) (B.of_int (-2)) in
  Alcotest.check bigint "eq neg" (B.of_int 4) q;
  Alcotest.check bigint "er neg" (B.of_int 1) r

let test_gcd () =
  Alcotest.check bigint "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int (-24)));
  Alcotest.check bigint "gcd 0" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  Alcotest.check bigint "gcd 0 0" B.zero (B.gcd B.zero B.zero)

let test_pow () =
  Alcotest.check bigint "2^100"
    (B.of_string "1267650600228229401496703205376")
    (B.pow B.two 100);
  Alcotest.check bigint "x^0" B.one (B.pow (B.of_int 12345) 0);
  Alcotest.check_raises "neg exp" (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_to_int_overflow () =
  Alcotest.(check (option int)) "too big" None (B.to_int_opt (B.pow B.two 80));
  Alcotest.(check (option int)) "max_int fits" (Some max_int) (B.to_int_opt (B.of_int max_int))

let test_compare_order () =
  let xs = List.map B.of_string [ "-100"; "-1"; "0"; "1"; "99"; "1000000000000" ] in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          Alcotest.(check int)
            (Printf.sprintf "cmp %d %d" i j)
            (compare i j)
            (B.compare x y))
        xs)
    xs

let test_num_digits () =
  Alcotest.(check int) "0" 1 (B.num_digits B.zero);
  Alcotest.(check int) "999999999" 9 (B.num_digits (B.of_int 999_999_999));
  Alcotest.(check int) "10^9" 10 (B.num_digits (B.of_int 1_000_000_000));
  Alcotest.(check int) "2^100" 31 (B.num_digits (B.pow B.two 100))

let test_limb_boundaries () =
  (* carries across the 10^9 limb boundary *)
  let b = B.of_int 999_999_999 in
  Alcotest.check bigint "limb+1" (B.of_int 1_000_000_000) (B.add b B.one);
  Alcotest.check bigint "limb^2" (B.of_string "999999998000000001") (B.mul b b);
  let big = B.of_string "1000000000000000000" in
  Alcotest.check bigint "borrow to limb" b (B.sub big (B.sub big b))

let test_min_max_abs () =
  Alcotest.check bigint "min" (B.of_int (-5)) (B.min (B.of_int (-5)) (B.of_int 3));
  Alcotest.check bigint "max" (B.of_int 3) (B.max (B.of_int (-5)) (B.of_int 3));
  Alcotest.check bigint "abs" (B.of_int 5) (B.abs (B.of_int (-5)));
  Alcotest.(check int) "sign neg" (-1) (B.sign (B.of_int (-7)));
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero)

let test_pow_edge_cases () =
  Alcotest.check bigint "0^0" B.one (B.pow B.zero 0);
  Alcotest.check bigint "0^5" B.zero (B.pow B.zero 5);
  Alcotest.check bigint "(-2)^3" (B.of_int (-8)) (B.pow (B.of_int (-2)) 3);
  Alcotest.check bigint "(-2)^4" (B.of_int 16) (B.pow (B.of_int (-2)) 4)

let test_hash_consistency () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.mul (B.of_string "123456789012345678901234567890") B.one in
  Alcotest.(check bool) "equal values equal hashes" true (B.hash a = B.hash b)

let test_division_fast_vs_slow_path () =
  (* the single-limb fast path must agree with the general path; force
     the general path through a 2-limb divisor with the same value scaled *)
  let a = B.of_string "987654321987654321987654321" in
  let small = B.of_int 97 in
  let q1, r1 = B.divmod a small in
  (* sanity against integer reconstruction *)
  Alcotest.check bigint "reconstruct" a (B.add (B.mul q1 small) r1);
  let multi = B.of_string "1000000007000000009" in
  let q2, r2 = B.divmod a multi in
  Alcotest.check bigint "reconstruct multi" a (B.add (B.mul q2 multi) r2);
  Alcotest.(check bool) "remainder bounded" true (B.lt (B.abs r2) multi)

(* ------------------------------------------------------------------ *)
(* Bigint properties                                                    *)
(* ------------------------------------------------------------------ *)

(* random bigints with up to ~50 decimal digits *)
let gen_bigint =
  QCheck.Gen.(
    let* small = int_range (-1000) 1000 in
    let* big_digits = int_range 1 50 in
    let* digits = list_size (return big_digits) (int_range 0 9) in
    let* neg = bool in
    let* pick = int_range 0 2 in
    match pick with
    | 0 -> return (B.of_int small)
    | _ ->
      let s = String.concat "" (List.map string_of_int digits) in
      let s = if s = "" then "0" else s in
      return (if neg then B.neg (B.of_string s) else B.of_string s))

let arb_bigint = QCheck.make ~print:B.to_string gen_bigint

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let bigint_props =
  [
    prop "add commutative" 500
      (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) -> B.equal (B.add a b) (B.add b a));
    prop "add associative" 500
      (QCheck.triple arb_bigint arb_bigint arb_bigint)
      (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)));
    prop "mul commutative" 300
      (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) -> B.equal (B.mul a b) (B.mul b a));
    prop "mul associative" 200
      (QCheck.triple arb_bigint arb_bigint arb_bigint)
      (fun (a, b, c) -> B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)));
    prop "distributivity" 300
      (QCheck.triple arb_bigint arb_bigint arb_bigint)
      (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub inverse" 500
      (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) -> B.equal (B.add (B.sub a b) b) a);
    prop "neg involutive" 500 arb_bigint (fun a -> B.equal a (B.neg (B.neg a)));
    prop "string roundtrip" 500 arb_bigint (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "divmod law" 500
      (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r)
        && B.lt (B.abs r) (B.abs b)
        && (B.is_zero r || B.sign r = B.sign a));
    prop "ediv law" 500
      (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.ediv_rem a b in
        B.equal a (B.add (B.mul q b) r) && B.sign r >= 0 && B.lt r (B.abs b));
    prop "gcd divides" 300
      (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "compare antisymmetric" 500
      (QCheck.pair arb_bigint arb_bigint)
      (fun (a, b) -> B.compare a b = -B.compare b a);
    prop "to_float sign" 500 arb_bigint (fun a ->
        let f = B.to_float a in
        (B.sign a > 0 && f > 0.) || (B.sign a < 0 && f < 0.) || (B.is_zero a && f = 0.));
  ]

(* ------------------------------------------------------------------ *)
(* Rat unit tests                                                       *)
(* ------------------------------------------------------------------ *)

let test_rat_normalisation () =
  Alcotest.check rat "6/4 = 3/2" (R.of_ints 3 2) (R.of_ints 6 4);
  Alcotest.check rat "neg den" (R.of_ints (-1) 2) (R.of_ints 1 (-2));
  Alcotest.(check string) "printing" "3/2" (R.to_string (R.of_ints 6 4));
  Alcotest.(check string) "integer prints bare" "5" (R.to_string (R.of_ints 5 1))

let test_rat_arith () =
  Alcotest.check rat "1/2 + 1/3" (R.of_ints 5 6) (R.add (R.of_ints 1 2) (R.of_ints 1 3));
  Alcotest.check rat "1/2 * 2/3" (R.of_ints 1 3) (R.mul (R.of_ints 1 2) (R.of_ints 2 3));
  Alcotest.check rat "1/2 - 1/3" (R.of_ints 1 6) (R.sub (R.of_ints 1 2) (R.of_ints 1 3));
  Alcotest.check rat "div" (R.of_ints 3 2) (R.div (R.of_ints 1 2) (R.of_ints 1 3))

let test_rat_pow2 () =
  Alcotest.check rat "2^-3" (R.of_ints 1 8) (R.pow2 (-3));
  Alcotest.check rat "2^4" (R.of_int 16) (R.pow2 4);
  Alcotest.check rat "2^0" R.one (R.pow2 0)

let test_rat_pow () =
  Alcotest.check rat "neg pow" (R.of_ints 9 4) (R.pow (R.of_ints 2 3) (-2));
  Alcotest.check rat "pow 0" R.one (R.pow (R.of_ints 2 3) 0)

let test_rat_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (R.lt (R.of_ints 1 3) (R.of_ints 1 2));
  Alcotest.(check bool) "-1/2 < 1/3" true (R.lt (R.of_ints (-1) 2) (R.of_ints 1 3));
  Alcotest.(check bool) "2^-d exact" true (R.lt (R.of_ints 1 9) (R.pow2 (-3)))

let test_rat_of_string () =
  Alcotest.check rat "frac" (R.of_ints 22 7) (R.of_string "22/7");
  Alcotest.check rat "int" (R.of_int (-3)) (R.of_string "-3");
  Alcotest.check rat "non-normalised" (R.of_ints 1 2) (R.of_string "50/100")

let test_rat_sum_product () =
  Alcotest.check rat "sum" R.one (R.sum [ R.of_ints 1 2; R.of_ints 1 3; R.of_ints 1 6 ]);
  Alcotest.check rat "product" (R.of_ints 1 6) (R.product [ R.of_ints 1 2; R.of_ints 1 3 ])

let test_rat_guards () =
  Alcotest.check_raises "make 0 den" (Invalid_argument "Rat.make: zero denominator") (fun () ->
      ignore (R.make Lll_num.Bigint.one Lll_num.Bigint.zero));
  Alcotest.check_raises "div 0" (Invalid_argument "Rat.div: division by zero") (fun () ->
      ignore (R.div R.one R.zero));
  Alcotest.check_raises "inv 0" (Invalid_argument "Rat.inv: zero") (fun () -> ignore (R.inv R.zero))

let test_rat_min_max_abs () =
  Alcotest.check rat "min" (R.of_ints (-1) 2) (R.min (R.of_ints (-1) 2) (R.of_ints 1 3));
  Alcotest.check rat "max" (R.of_ints 1 3) (R.max (R.of_ints (-1) 2) (R.of_ints 1 3));
  Alcotest.check rat "abs" (R.of_ints 1 2) (R.abs (R.of_ints (-1) 2));
  Alcotest.check rat "neg" (R.of_ints 1 2) (R.neg (R.of_ints (-1) 2));
  Alcotest.(check int) "sign" (-1) (R.sign (R.of_ints (-3) 7))

let test_rat_negative_denominator () =
  Alcotest.check rat "normalised" (R.of_ints (-2) 3) (R.of_ints 2 (-3));
  Alcotest.(check bool) "den positive" true (Lll_num.Bigint.sign (R.den (R.of_ints 2 (-3))) = 1)

let test_rat_large_pow2 () =
  let p = R.pow2 (-200) in
  Alcotest.(check bool) "tiny but positive" true (R.sign p = 1);
  Alcotest.check rat "inverse" (R.pow2 200) (R.inv p);
  Alcotest.check rat "product" R.one (R.mul p (R.pow2 200))

(* ------------------------------------------------------------------ *)
(* Rat properties                                                       *)
(* ------------------------------------------------------------------ *)

let gen_rat =
  QCheck.Gen.(
    let* n = int_range (-10_000) 10_000 in
    let* d = int_range 1 10_000 in
    return (R.of_ints n d))

let arb_rat = QCheck.make ~print:R.to_string gen_rat

let rat_props =
  [
    prop "field add comm" 500 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        R.equal (R.add a b) (R.add b a));
    prop "field distrib" 300 (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
        R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)));
    prop "mul inverse" 500 arb_rat (fun a ->
        QCheck.assume (not (R.is_zero a));
        R.equal R.one (R.mul a (R.inv a)));
    prop "sub then add" 500 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        R.equal a (R.add (R.sub a b) b));
    prop "den positive" 500 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Lll_num.Bigint.sign (R.den (R.mul a b)) = 1);
    prop "normalised" 500 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        let x = R.add a b in
        Lll_num.Bigint.equal (Lll_num.Bigint.gcd (R.num x) (R.den x)) Lll_num.Bigint.one
        || R.is_zero x);
    prop "to_float approx" 500 arb_rat (fun a ->
        let f = R.to_float a in
        Float.abs (f -. (Lll_num.Bigint.to_float (R.num a) /. Lll_num.Bigint.to_float (R.den a)))
        <= 1e-9 *. (1. +. Float.abs f));
    prop "string roundtrip" 500 arb_rat (fun a -> R.equal a (R.of_string (R.to_string a)));
    prop "compare total order" 300 (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
        (not (R.leq a b && R.leq b c)) || R.leq a c);
    prop "pow2 consistency" 100 (QCheck.make QCheck.Gen.(int_range (-60) 60)) (fun e ->
        R.equal (R.mul (R.pow2 e) (R.pow2 (-e))) R.one);
  ]

let () =
  Alcotest.run "lll_num"
    [
      ( "bigint",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "of_string roundtrip" `Quick test_of_string_roundtrip;
          Alcotest.test_case "of_string normalises" `Quick test_of_string_normalises;
          Alcotest.test_case "of_string rejects" `Quick test_of_string_rejects;
          Alcotest.test_case "add carry" `Quick test_add_carry;
          Alcotest.test_case "sub borrow" `Quick test_sub_borrow;
          Alcotest.test_case "mul big" `Quick test_mul_big;
          Alcotest.test_case "divmod exact" `Quick test_divmod_exact;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "ediv_rem" `Quick test_ediv_rem;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "compare order" `Quick test_compare_order;
          Alcotest.test_case "num_digits" `Quick test_num_digits;
          Alcotest.test_case "limb boundaries" `Quick test_limb_boundaries;
          Alcotest.test_case "min/max/abs/sign" `Quick test_min_max_abs;
          Alcotest.test_case "pow edge cases" `Quick test_pow_edge_cases;
          Alcotest.test_case "hash consistency" `Quick test_hash_consistency;
          Alcotest.test_case "division fast vs slow path" `Quick test_division_fast_vs_slow_path;
        ] );
      ("bigint-properties", bigint_props);
      ( "rat",
        [
          Alcotest.test_case "normalisation" `Quick test_rat_normalisation;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "pow2" `Quick test_rat_pow2;
          Alcotest.test_case "pow" `Quick test_rat_pow;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
          Alcotest.test_case "sum/product" `Quick test_rat_sum_product;
          Alcotest.test_case "guards" `Quick test_rat_guards;
          Alcotest.test_case "min/max/abs/neg" `Quick test_rat_min_max_abs;
          Alcotest.test_case "negative denominator" `Quick test_rat_negative_denominator;
          Alcotest.test_case "large pow2" `Quick test_rat_large_pow2;
        ] );
      ("rat-properties", rat_props);
    ]
