(* Tests for the core LLL library: instances, criteria, the S_rep
   geometry, both fixers, Moser–Tardos and the distributed drivers. *)

module R = Lll_num.Rat
module G = Lll_graph.Graph
module Gen = Lll_graph.Generators
module Var = Lll_prob.Var
module A = Lll_prob.Assignment
module E = Lll_prob.Event
module S = Lll_prob.Space
module I = Lll_core.Instance
module Crit = Lll_core.Criteria
module Srep = Lll_core.Srep
module F2 = Lll_core.Fix_rank2
module F3 = Lll_core.Fix_rank3
module MT = Lll_core.Moser_tardos
module D = Lll_core.Distributed
module V = Lll_core.Verify
module Syn = Lll_core.Synthetic

let rat = Alcotest.testable R.pp R.equal

(* ------------------------------------------------------------------ *)
(* Instance construction                                                *)
(* ------------------------------------------------------------------ *)

(* a tiny triangle instance: 3 events, one shared rank-3 variable plus a
   private variable per event *)
let triangle_instance () =
  let vars =
    [|
      Var.uniform ~id:0 ~name:"shared" 4;
      Var.uniform ~id:1 ~name:"p0" 2;
      Var.uniform ~id:2 ~name:"p1" 2;
      Var.uniform ~id:3 ~name:"p2" 2;
    |]
  in
  let ev i =
    (* event i occurs iff shared = i and its private variable = 1 *)
    E.make ~id:i ~name:(Printf.sprintf "e%d" i) ~scope:[| 0; i + 1 |] (fun lookup ->
        lookup 0 = i && lookup (i + 1) = 1)
  in
  I.create (S.create vars) [| ev 0; ev 1; ev 2 |]

let test_instance_structure () =
  let inst = triangle_instance () in
  Alcotest.(check int) "events" 3 (I.num_events inst);
  Alcotest.(check int) "vars" 4 (I.num_vars inst);
  Alcotest.(check int) "rank" 3 (I.rank inst);
  Alcotest.(check int) "d" 2 (I.dependency_degree inst);
  Alcotest.(check (array int)) "events of shared" [| 0; 1; 2 |] (I.events_of_var inst 0);
  Alcotest.(check (array int)) "events of private" [| 1 |] (I.events_of_var inst 2);
  let g = I.dep_graph inst in
  Alcotest.(check int) "dep triangle" 3 (G.m g);
  Alcotest.check rat "p = 1/8" (R.of_ints 1 8) (I.max_prob inst)

let test_instance_to_dot () =
  let dot = I.to_dot (triangle_instance ()) in
  Alcotest.(check bool) "labels present" true
    (let re = "e0" in
     let rec contains i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let test_instance_rejects () =
  let vars = [| Var.uniform ~id:0 ~name:"x" 2 |] in
  let bad_ev = E.make ~id:1 ~name:"wrong id" ~scope:[| 0 |] (fun _ -> false) in
  Alcotest.check_raises "event id" (Invalid_argument "Instance.create: event id must equal its index")
    (fun () -> ignore (I.create (S.create vars) [| bad_ev |]));
  let oos = E.make ~id:0 ~name:"oos" ~scope:[| 5 |] (fun _ -> false) in
  Alcotest.check_raises "scope range" (Invalid_argument "Instance.create: event scope outside space")
    (fun () -> ignore (I.create (S.create vars) [| oos |]))

let test_hyperedges () =
  let inst = triangle_instance () in
  let h = I.hypergraph inst in
  Alcotest.(check int) "hyperedges" 4 (Lll_graph.Hypergraph.m h);
  Alcotest.(check int) "rank" 3 (Lll_graph.Hypergraph.rank h);
  (match I.hyperedge_of_var inst 0 with
  | Some he -> Alcotest.(check (array int)) "members" [| 0; 1; 2 |] (Lll_graph.Hypergraph.edge h he)
  | None -> Alcotest.fail "no hyperedge")

(* ------------------------------------------------------------------ *)
(* Criteria                                                             *)
(* ------------------------------------------------------------------ *)

let test_criteria_exact_threshold () =
  (* p = 2^-d exactly: Exponential must FAIL; p slightly below: holds *)
  let d = 5 in
  Alcotest.(check bool) "at" false (Crit.holds Crit.Exponential ~p:(R.pow2 (-d)) ~d);
  Alcotest.(check bool) "below" true
    (Crit.holds Crit.Exponential ~p:(R.sub (R.pow2 (-d)) (R.of_ints 1 1000000)) ~d);
  Alcotest.check rat "ratio at threshold" R.one (Crit.threshold_ratio ~p:(R.pow2 (-d)) ~d)

let test_criteria_shattering () =
  (* e * p * (d+1) < 1 with p=1/100, d=9: e*0.1 < 1 holds *)
  Alcotest.(check bool) "holds" true (Crit.holds Crit.Shattering ~p:(R.of_ints 1 100) ~d:9);
  (* p=1/10, d=9: e*1 > 1 fails *)
  Alcotest.(check bool) "fails" false (Crit.holds Crit.Shattering ~p:(R.of_ints 1 10) ~d:9)

let test_criteria_report () =
  let inst = triangle_instance () in
  let rep = Crit.evaluate inst in
  Alcotest.(check int) "d" 2 rep.Crit.d;
  Alcotest.(check int) "r" 3 rep.Crit.r;
  Alcotest.check rat "p" (R.of_ints 1 8) rep.Crit.p;
  (* 1/8 vs 2^-2 = 1/4: strictly below *)
  Alcotest.(check bool) "exp holds" true (List.assoc Crit.Exponential rep.Crit.satisfied);
  Alcotest.(check bool) "mentions this paper" true
    (let s = Crit.best_algorithm rep in
     String.length s > 0 && String.sub s 0 13 = "deterministic")

let test_criteria_asymmetric () =
  let inst = triangle_instance () in
  (* p_i = 1/8, d = 2; with x_i = 1/3: bound = (1/3)(2/3)^2 = 4/27 > 1/8 *)
  Alcotest.(check bool) "x=1/(d+1) holds" true
    (Crit.asymmetric_holds inst ~x:(Crit.asymmetric_default_x inst));
  (* too-small weights fail: x_i = 1/100 -> bound ~ 1/100 < 1/8 *)
  Alcotest.(check bool) "tiny x fails" false
    (Crit.asymmetric_holds inst ~x:(Array.make 3 (R.of_ints 1 100)));
  Alcotest.check_raises "x out of range"
    (Invalid_argument "Criteria.asymmetric_holds: need 0 < x_i < 1") (fun () ->
      ignore (Crit.asymmetric_holds inst ~x:(Array.make 3 R.one)));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Criteria.asymmetric_holds: |x| mismatch") (fun () ->
      ignore (Crit.asymmetric_holds inst ~x:(Array.make 2 (R.of_ints 1 3))))

(* K3 dependency graph with symmetric probability [num]/[den]: one shared
   arity-[den] variable, event i occurs on [num] designated values. *)
let k3_instance num den =
  let vars = [| Var.uniform ~id:0 ~name:"shared" den |] in
  let ev i =
    E.make ~id:i ~name:(Printf.sprintf "e%d" i) ~scope:[| 0 |] (fun lookup ->
        let x = lookup 0 in
        x mod 3 = i && x < 3 * num)
  in
  I.create (S.create vars) [| ev 0; ev 1; ev 2 |]

let test_criteria_shearer () =
  (* K3 boundary is p = 1/3: Q(K3) = 1 - 3p *)
  Alcotest.(check bool) "K3 p=1/8 inside" true (Crit.shearer_holds (triangle_instance ()));
  (* shared arity-9 variable, events of probability 1/9 and 3/9 *)
  Alcotest.(check bool) "K3 p=1/9 inside" true (Crit.shearer_holds (k3_instance 1 9));
  Alcotest.(check bool) "K3 p=3/9 on boundary -> fails" false
    (Crit.shearer_holds (k3_instance 3 9));
  (* at-threshold sinkless orientation on C5: p = 1/4, d = 2;
     Q(C5) = 1 - 5p + 5p^2 = 1/16 > 0 — INSIDE Shearer (a solution
     exists!) even though the distributed problem is hard: existence vs
     distributed complexity, the paper's whole point *)
  let c5 = Lll_apps.Sinkless.instance (Gen.cycle 5) in
  Alcotest.(check bool) "at-threshold sinkless C5 inside Shearer" true (Crit.shearer_holds c5);
  let rep = Crit.evaluate c5 in
  Alcotest.(check bool) "yet outside the exponential criterion" false
    (List.assoc Crit.Exponential rep.Crit.satisfied)

let test_criteria_shearer_rejects_large () =
  let inst = Syn.ring ~seed:0 ~n:30 ~arity:4 () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Criteria.shearer_holds: too many events (exponential check)") (fun () ->
      ignore (Crit.shearer_holds inst))

(* ------------------------------------------------------------------ *)
(* S_rep geometry                                                       *)
(* ------------------------------------------------------------------ *)

let test_f_known_values () =
  Alcotest.(check (float 1e-12)) "f(0,0)" 4.0 (Srep.f 0. 0.);
  Alcotest.(check (float 1e-12)) "f(0,b)" 2.5 (Srep.f 0. 1.5);
  Alcotest.(check (float 1e-12)) "f(a,0)" 3.0 (Srep.f 1. 0.);
  (* f(a,a) = (2-a)^2 *)
  Alcotest.(check (float 1e-9)) "f(1,1)" 1.0 (Srep.f 1. 1.);
  Alcotest.(check (float 1e-9)) "f(2,2)" 0.0 (Srep.f 2. 2.);
  Alcotest.(check (float 1e-9)) "f(0.5,0.5)" 2.25 (Srep.f 0.5 0.5)

let test_figure2_triple () =
  (* Figure 2 of the paper: (1/4, 3/2, 1/10) is representable *)
  let t = (0.25, 1.5, 0.1) in
  Alcotest.(check bool) "float mem" true (Srep.mem t);
  Alcotest.(check bool) "exact mem" true
    (Srep.mem_rat (R.of_ints 1 4, R.of_ints 3 2, R.of_ints 1 10));
  let d = Srep.decompose t in
  Alcotest.(check bool) "valid witness" true (Srep.is_valid_decomposition d);
  let a, b, c = Srep.products d in
  Alcotest.(check (float 1e-9)) "a" 0.25 a;
  Alcotest.(check (float 1e-9)) "b" 1.5 b;
  Alcotest.(check (float 1e-9)) "c" 0.1 c

let test_srep_boundary_cases () =
  Alcotest.(check bool) "origin" true (Srep.mem (0., 0., 0.));
  Alcotest.(check bool) "(0,0,4)" true (Srep.mem (0., 0., 4.));
  Alcotest.(check bool) "(4,0,0)" true (Srep.mem (4., 0., 0.));
  Alcotest.(check bool) "(0,0,4.01) out" false (Srep.mem (0., 0., 4.01));
  Alcotest.(check bool) "a+b>4 out" false (Srep.mem (2.5, 1.6, 0.));
  Alcotest.(check bool) "(1,1,1) in" true (Srep.mem (1., 1., 1.));
  Alcotest.(check bool) "(1,1,1.01) out" false (Srep.mem ~eps:1e-12 (1., 1., 1.01));
  Alcotest.(check bool) "negative out" false (Srep.mem (-0.1, 0., 0.))

let test_mem_rat_matches_float () =
  let rng = Random.State.make [| 123 |] in
  for _ = 1 to 2000 do
    let q () = R.of_ints (Random.State.int rng 4001) 1000 in
    let a = q () and b = q () and c = q () in
    let fa = R.to_float a and fb = R.to_float b and fc = R.to_float c in
    let viol = Srep.violation (fa, fb, fc) in
    (* only compare away from the boundary, where floats are decisive *)
    if Float.abs viol > 1e-6 then
      Alcotest.(check bool)
        (Printf.sprintf "consistency at (%f,%f,%f)" fa fb fc)
        (viol < 0.) (Srep.mem_rat (a, b, c))
  done

let test_hessian_positive () =
  (* convexity of f (Lemma 3.6): Hessian positive definite on a grid *)
  let steps = 40 in
  for i = 1 to steps - 1 do
    for j = 1 to steps - 1 do
      let a = 4. *. float_of_int i /. float_of_int steps in
      let b = 4. *. float_of_int j /. float_of_int steps in
      if a +. b < 4. -. 1e-9 then begin
        let faa, _, fbb = Srep.hessian a b in
        Alcotest.(check bool) "faa > 0" true (faa > 0.);
        Alcotest.(check bool) "fbb > 0" true (fbb > 0.);
        Alcotest.(check bool) "det > 0" true (Srep.hessian_determinant a b > 0.)
      end
    done
  done

let test_surface_grid () =
  let pts = Srep.surface_grid ~steps:20 in
  Alcotest.(check bool) "nonempty" true (List.length pts > 100);
  List.iter
    (fun (a, b, c) ->
      Alcotest.(check bool) "on surface => representable" true (Srep.mem ~eps:1e-9 (a, b, c));
      Alcotest.(check bool) "range" true (c >= -1e-9 && c <= 4. +. 1e-9);
      ignore (a, b))
    pts

let test_best_x_matches_formula () =
  (* away from the a=b degeneracy, the ternary-search maximiser matches
     the closed-form critical point x1 from the proof of Lemma 3.5 *)
  let check a b =
    let x = Srep.best_x ~a ~b in
    let x1 =
      ((a *. (4. -. b)) -. sqrt (a *. b *. (4. -. a) *. (4. -. b))) /. (2. *. (a -. b))
    in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "x1(%f,%f)" a b) x1 x
  in
  check 0.5 1.5;
  check 2.0 1.0;
  check 0.1 3.0;
  check 1.9 2.0

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let arb_unit_triple =
  QCheck.triple (QCheck.float_bound_inclusive 4.) (QCheck.float_bound_inclusive 4.)
    (QCheck.float_bound_inclusive 4.)

let srep_props =
  [
    prop "witness products are representable" 1000 (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let t = Srep.random_representable rng in
        Srep.mem ~eps:1e-9 t);
    prop "decompose valid on representables" 1000 (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let ((a, b, c) as t) = Srep.random_representable rng in
        let d = Srep.decompose t in
        let a', b', c' = Srep.products d in
        Srep.is_valid_decomposition d
        && Float.abs (a' -. a) <= 1e-6
        && Float.abs (b' -. b) <= 1e-6
        && c' >= c -. 1e-6);
    prop "incurvedness on random segments" 500
      (QCheck.pair arb_unit_triple arb_unit_triple)
      (fun (s, s') ->
        (* if both endpoints are OUTSIDE S_rep, no convex combination is
           inside (Definition 3.4 / Lemma 3.7); sample the segment *)
        QCheck.assume (not (Srep.mem ~eps:0. s) && not (Srep.mem ~eps:0. s'));
        let (xa, ya, za) = s and (xb, yb, zb) = s' in
        let ok = ref true in
        for i = 1 to 19 do
          let q = float_of_int i /. 20. in
          let p =
            ( (q *. xa) +. ((1. -. q) *. xb),
              (q *. ya) +. ((1. -. q) *. yb),
              (q *. za) +. ((1. -. q) *. zb) )
          in
          (* allow boundary-grazing float noise *)
          if Srep.mem ~eps:(-1e-9) p then ok := false
        done;
        !ok);
    prop "monotone: shrinking a coordinate stays in S_rep" 500
      (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let a, b, c = Srep.random_representable rng in
        let shrink x = x *. Random.State.float rng 1.0 in
        Srep.mem ~eps:1e-9 (shrink a, shrink b, shrink c));
    prop "f symmetric" 500 (QCheck.pair (QCheck.float_bound_inclusive 2.) (QCheck.float_bound_inclusive 2.))
      (fun (a, b) -> Float.abs (Srep.f a b -. Srep.f b a) <= 1e-9);
    prop "c_of_x never exceeds f" 500
      (QCheck.triple (QCheck.float_bound_inclusive 2.) (QCheck.float_bound_inclusive 2.)
         (QCheck.float_bound_inclusive 2.))
      (fun (a, b, x) ->
        QCheck.assume (a +. b <= 4.);
        Srep.c_of_x ~a ~b x <= Srep.f a b +. 1e-9);
  ]

(* rational-coordinate properties of the boundary surface (Lemmas
   3.5-3.7): points are dyadic rationals k/64 in [0,4], so [R.to_float]
   is exact and the float evaluation of [f] is only ever compared with
   a 1e-9 slack while [mem_rat] assertions stay fully exact *)
(* (na, nb) with na + nb <= 256, i.e. a = na/64, b = nb/64 in the
   domain triangle a + b <= 4 of f — generated directly, no assume *)
let gen_rat_ab =
  QCheck.Gen.(int_bound 256 >>= fun na -> int_bound (256 - na) >|= fun nb -> (na, nb))

let arb_rat_ab =
  QCheck.make ~print:(fun (na, nb) -> Printf.sprintf "a=%d/64 b=%d/64" na nb) gen_rat_ab

let fq n = float_of_int n /. 64.

let srep_rat_props =
  [
    prop "f midpoint-convex on rational chords (Lemma 3.6)" 400
      (QCheck.pair arb_rat_ab arb_rat_ab)
      (fun ((na, nb), (na', nb')) ->
        let mid = Srep.f (float_of_int (na + na') /. 128.) (float_of_int (nb + nb') /. 128.) in
        mid <= ((Srep.f (fq na) (fq nb) +. Srep.f (fq na') (fq nb')) /. 2.) +. 1e-9);
    prop "f nonincreasing in each argument" 400
      (QCheck.make
         ~print:(fun ((na, nb), d) -> Printf.sprintf "a=%d/64 b=%d/64 d=%d/64" na nb d)
         QCheck.Gen.(
           gen_rat_ab >>= fun (na, nb) ->
           int_bound (256 - na - nb) >|= fun d -> ((na, nb), d)))
      (fun ((na, nb), d) ->
        Srep.f (fq (na + d)) (fq nb) <= Srep.f (fq na) (fq nb) +. 1e-9
        && Srep.f (fq na) (fq (nb + d)) <= Srep.f (fq na) (fq nb) +. 1e-9);
    prop "mem_rat downward-closed in c (exact)" 300
      (QCheck.pair arb_rat_ab (QCheck.make QCheck.Gen.(int_bound 64)))
      (fun ((na, nb), k) ->
        let a = R.of_ints na 64 and b = R.of_ints nb 64 in
        (* a rational c strictly below the surface: membership must hold,
           and must keep holding after scaling c down by k/64 *)
        let nc = max 0 (int_of_float (Srep.f (fq na) (fq nb) *. 64.) - 1) in
        let c = R.of_ints nc 64 in
        Srep.mem_rat (a, b, c) && Srep.mem_rat (a, b, R.mul c (R.of_ints k 64)));
    (* the numeric clique solver vs the exact rank-3 characterisation is
       one-sided: it never certifies a non-member even at tight eps, but
       its coordinate-balancing can stall ~0.1 log-slack short of the
       optimum on a few percent of true members (near-degenerate
       coordinates), so completeness is only asserted at a loose eps *)
    prop "Srep_r never accepts a non-member (sound)" 150
      (QCheck.triple (QCheck.float_bound_inclusive 4.) (QCheck.float_bound_inclusive 4.)
         (QCheck.float_bound_inclusive 4.))
      (fun ((a, b, c) as t) ->
        QCheck.assume (Srep.violation t > 0.05);
        not (Lll_core.Srep_r.representable ~eps:1e-4 [| a; b; c |]));
    prop "Srep_r accepts members up to solver slack" 150
      (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
      (fun seed ->
        (* rejection-sample a triple well inside S_rep from the seed
           (uniform triples are members ~9% of the time, too sparse for
           QCheck.assume) *)
        let rng = Random.State.make [| seed |] in
        let rec pick k =
          let q () = Random.State.float rng 4.0 in
          let a = q () and b = q () and c = q () in
          if Srep.violation (a, b, c) < -0.05 then (a, b, c)
          else if k > 1_000 then (1., 1., 1.)
          else pick (k + 1)
        in
        let a, b, c = pick 0 in
        Lll_core.Srep_r.representable ~eps:0.15 [| a; b; c |]);
  ]

let test_decompose_corners () =
  List.iter
    (fun ((a, b, c), name) ->
      let d = Srep.decompose (a, b, c) in
      Alcotest.(check bool) (name ^ " valid") true (Srep.is_valid_decomposition d);
      let a', b', c' = Srep.products d in
      Alcotest.(check (float 1e-9)) (name ^ " a") a a';
      Alcotest.(check (float 1e-9)) (name ^ " b") b b';
      Alcotest.(check (float 1e-9)) (name ^ " c") c c')
    [
      ((0., 0., 0.), "origin");
      ((0., 0., 4.), "c-max");
      ((4., 0., 0.), "a-max");
      ((0., 4., 0.), "b-max");
      ((2., 2., 0.), "ridge");
      ((1., 1., 1.), "interior");
      ((0., 1.5, 2.5), "a-zero face");
      ((1.5, 0., 2.5), "b-zero face");
    ]

let test_decompose_surface_points () =
  (* points exactly on the surface decompose with c' = f(a,b) *)
  List.iter
    (fun (a, b) ->
      let c = Srep.f a b in
      let d = Srep.decompose (a, b, c) in
      Alcotest.(check bool) "valid" true (Srep.is_valid_decomposition d);
      let _, _, c' = Srep.products d in
      Alcotest.(check (float 1e-6)) "attains f" c c')
    [ (0.5, 0.5); (1., 2.); (3., 0.5); (0.1, 3.8); (2., 2.) ]

let test_violation_negatives () =
  Alcotest.(check bool) "negative coordinate" true (Srep.violation (-0.5, 1., 1.) = infinity)

let test_best_x_in_range () =
  List.iter
    (fun (a, b) ->
      let x = Srep.best_x ~a ~b in
      Alcotest.(check bool) "range" true (x >= (a /. 2.) -. 1e-9 && x <= 2. -. (b /. 2.) +. 1e-9))
    [ (0.5, 0.5); (1., 2.9); (3.9, 0.05); (2., 2.) ]

(* ------------------------------------------------------------------ *)
(* Rank-2 fixer (Theorem 1.1)                                           *)
(* ------------------------------------------------------------------ *)

let shuffled_order ~seed m =
  let rng = Random.State.make [| seed |] in
  let o = Array.init m (fun i -> i) in
  Gen.shuffle rng o;
  o

let test_fix2_ring_instances () =
  for seed = 0 to 9 do
    let inst = Syn.ring ~seed ~n:30 ~arity:4 () in
    let order = shuffled_order ~seed:(seed * 7) (I.num_vars inst) in
    let a, t = F2.solve ~order inst in
    Alcotest.(check bool) (Printf.sprintf "seed %d avoids all" seed) true (V.avoids_all inst a);
    Alcotest.(check bool) (Printf.sprintf "seed %d pstar" seed) true (F2.pstar_holds t)
  done

let test_fix2_scores_within_budget () =
  let inst = Syn.ring ~seed:5 ~n:24 ~arity:4 () in
  let _, t = F2.solve inst in
  List.iter
    (fun (s : F2.step) -> Alcotest.(check bool) "score <= budget" true (R.leq s.score s.budget))
    (F2.steps t)

let test_fix2_relaxed_sinkless () =
  List.iter
    (fun (g, name) ->
      let inst = Lll_apps.Sinkless.relaxed_instance g in
      let a, t = F2.solve inst in
      Alcotest.(check bool) (name ^ " avoids") true (V.avoids_all inst a);
      Alcotest.(check bool) (name ^ " sinkless") true (Lll_apps.Sinkless.is_sinkless g a);
      Alcotest.(check bool) (name ^ " pstar") true (F2.pstar_holds t))
    [
      (Gen.cycle 24, "cycle");
      (Gen.random_regular ~seed:3 20 3, "rr3");
      (Gen.grid 5 5, "grid");
      (Gen.complete 5, "K5");
    ]

let test_fix2_adversarial_orders () =
  (* Theorem 1.1 promises success for EVERY order; try several *)
  let inst = Syn.ring ~seed:77 ~n:20 ~arity:4 () in
  let m = I.num_vars inst in
  let orders =
    [
      Array.init m (fun i -> i);
      Array.init m (fun i -> m - 1 - i);
      shuffled_order ~seed:1 m;
      shuffled_order ~seed:2 m;
      Array.init m (fun i -> if i mod 2 = 0 then i / 2 else m - 1 - (i / 2));
    ]
  in
  List.iteri
    (fun k order ->
      let a, _ = F2.solve ~order inst in
      Alcotest.(check bool) (Printf.sprintf "order %d" k) true (V.avoids_all inst a))
    orders

let test_fix2_policies_agree_on_success () =
  (* both value-selection policies are sound below the threshold *)
  for seed = 0 to 4 do
    let inst = Syn.ring ~seed ~n:20 ~arity:4 () in
    List.iter
      (fun policy ->
        let a, t = F2.solve ~policy inst in
        Alcotest.(check bool) "success" true (V.avoids_all inst a);
        Alcotest.(check bool) "pstar" true (F2.pstar_holds t))
      [ F2.Min_score; F2.First_within_budget ]
  done

let test_fix2_rejects_rank3 () =
  let inst = triangle_instance () in
  Alcotest.check_raises "rank 3" (Invalid_argument "Fix_rank2.create: instance has rank > 2")
    (fun () -> ignore (F2.create inst))

let test_fix2_fix_twice () =
  let inst = Syn.ring ~seed:4 ~n:10 ~arity:4 () in
  let t = F2.create inst in
  F2.fix_var t 0;
  Alcotest.check_raises "double fix" (Invalid_argument "Fix_rank2.fix_var: already fixed")
    (fun () -> F2.fix_var t 0)

let fix2_props =
  [
    prop "below-threshold rings always solved" 25
      (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 6 40)))
      (fun (seed, n) ->
        let inst = Syn.ring ~seed ~n ~arity:4 () in
        let order = shuffled_order ~seed:(seed + 1) (I.num_vars inst) in
        let a, _ = F2.solve ~order inst in
        V.avoids_all inst a);
    prop "phi sums bounded by 2 (exact)" 15
      (QCheck.make QCheck.Gen.(int_range 0 10_000))
      (fun seed ->
        let inst = Syn.ring ~seed ~n:16 ~arity:4 () in
        let _, t = F2.solve inst in
        let g = I.dep_graph inst in
        List.for_all
          (fun e ->
            let u, v = G.endpoints g e in
            R.leq (R.add (F2.phi t e u) (F2.phi t e v)) R.two)
          (List.init (G.m g) Fun.id));
  ]

(* ------------------------------------------------------------------ *)
(* Rank-3 fixer (Theorem 1.3)                                           *)
(* ------------------------------------------------------------------ *)

let test_fix3_triangle () =
  let inst = triangle_instance () in
  let a, t = F3.solve inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "pstar" true (F3.pstar_holds t);
  Alcotest.(check bool) "violations non-positive" true (F3.max_violation t <= 1e-9)

let test_fix3_random_instances () =
  for seed = 0 to 7 do
    let inst = Syn.random ~seed ~n:18 ~rank:3 ~delta:2 ~arity:8 () in
    let order = shuffled_order ~seed:(seed * 13) (I.num_vars inst) in
    let a, t = F3.solve ~order inst in
    Alcotest.(check bool) (Printf.sprintf "seed %d avoids" seed) true (V.avoids_all inst a);
    Alcotest.(check bool) (Printf.sprintf "seed %d pstar" seed) true (F3.pstar_holds t);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d violations" seed)
      true
      (F3.max_violation t <= 1e-9)
  done

let test_fix3_handles_rank2_instances () =
  (* a rank-2 instance is a valid rank-3 instance *)
  let inst = Syn.ring ~seed:21 ~n:20 ~arity:4 () in
  let a, t = F3.solve inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "pstar" true (F3.pstar_holds t)

let test_fix3_pstar_along_the_way () =
  let inst = Syn.random ~seed:3 ~n:12 ~rank:3 ~delta:2 ~arity:8 () in
  let t = F3.create inst in
  let order = shuffled_order ~seed:9 (I.num_vars inst) in
  Array.iter
    (fun vid ->
      F3.fix_var t vid;
      Alcotest.(check bool) (Printf.sprintf "pstar after var %d" vid) true (F3.pstar_holds t))
    order

let test_fix3_policies_both_sound () =
  for seed = 0 to 3 do
    let inst = Syn.random ~seed ~n:15 ~rank:3 ~delta:2 ~arity:8 () in
    List.iter
      (fun policy ->
        let a, t = F3.solve ~policy inst in
        Alcotest.(check bool) "success" true (V.avoids_all inst a);
        Alcotest.(check bool) "pstar" true (F3.pstar_holds t))
      [ F3.Min_violation; F3.First_feasible ]
  done

let test_fix3_rejects_rank4 () =
  let vars = [| Var.uniform ~id:0 ~name:"x" 2 |] in
  let evs =
    Array.init 4 (fun i -> E.all_value ~id:i ~name:(Printf.sprintf "e%d" i) ~scope:[| 0 |] ~value:1)
  in
  let inst = I.create (S.create vars) evs in
  Alcotest.check_raises "rank 4" (Invalid_argument "Fix_rank3.create: instance has rank > 3")
    (fun () -> ignore (F3.create inst))

let fix3_props =
  [
    prop "float, exact and rank-r fixers all succeed" 8
      (QCheck.make QCheck.Gen.(int_range 0 10_000))
      (fun seed ->
        let inst = Syn.random ~seed ~n:12 ~rank:3 ~delta:2 ~arity:8 () in
        let a1, _ = F3.solve inst in
        let a2, tx = Lll_core.Fix_rank3_exact.solve inst in
        let a3, tr = Lll_core.Fix_rankr.solve inst in
        V.avoids_all inst a1 && V.avoids_all inst a2 && V.avoids_all inst a3
        && Lll_core.Fix_rank3_exact.pstar_holds_exact tx
        && Lll_core.Fix_rankr.min_slack tr >= -1e-7);
    prop "exact witness rationals are mem_rat members" 300
      (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        (* rational witness values with denominator 64 *)
        let q hi = R.of_ints (Random.State.int rng (hi + 1)) 64 in
        let a1 = q 128 in
        let b1 = R.sub R.two a1 |> fun rest -> R.min rest (q 128) in
        let a2 = q 128 in
        let c2 = R.sub R.two a2 |> fun rest -> R.min rest (q 128) in
        let b3 = q 128 in
        let c3 = R.sub R.two b3 |> fun rest -> R.min rest (q 128) in
        QCheck.assume
          (R.sign a1 >= 0 && R.sign b1 >= 0 && R.sign a2 >= 0 && R.sign c2 >= 0
          && R.sign b3 >= 0 && R.sign c3 >= 0);
        Srep.mem_rat (R.mul a1 a2, R.mul b1 b3, R.mul c2 c3));
    prop "below-threshold rank-3 always solved" 15
      (QCheck.make QCheck.Gen.(int_range 0 10_000))
      (fun seed ->
        let inst = Syn.random ~seed ~n:15 ~rank:3 ~delta:2 ~arity:8 () in
        let order = shuffled_order ~seed:(seed + 3) (I.num_vars inst) in
        let a, t = F3.solve ~order inst in
        V.avoids_all inst a && F3.max_violation t <= 1e-9);
    prop "phi stays a valid P* potential" 10
      (QCheck.make QCheck.Gen.(int_range 0 10_000))
      (fun seed ->
        let inst = Syn.random ~seed ~n:12 ~rank:3 ~delta:2 ~arity:8 () in
        let _, t = F3.solve inst in
        F3.pstar_holds t);
  ]

(* ------------------------------------------------------------------ *)
(* The exact-arithmetic rank-3 fixer                                    *)
(* ------------------------------------------------------------------ *)

module F3X = Lll_core.Fix_rank3_exact

let test_fix3_exact_solves () =
  for seed = 0 to 5 do
    let inst = Syn.random ~seed ~n:15 ~rank:3 ~delta:2 ~arity:8 () in
    let order = shuffled_order ~seed:(seed * 11) (I.num_vars inst) in
    let a, t = F3X.solve ~order inst in
    Alcotest.(check bool) (Printf.sprintf "seed %d avoids" seed) true (V.avoids_all inst a);
    Alcotest.(check int) (Printf.sprintf "seed %d no fallback" seed) 0 (F3X.fallbacks t);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d P* EXACT" seed)
      true (F3X.pstar_holds_exact t)
  done

let test_fix3_exact_on_applications () =
  let h = Gen.random_regular_hypergraph ~seed:6 12 3 3 in
  let inst = Lll_apps.Hyper_orientation.instance h in
  let a, t = F3X.solve inst in
  Alcotest.(check bool) "hyper solved" true (Lll_apps.Hyper_orientation.is_valid h a);
  Alcotest.(check int) "no fallback" 0 (F3X.fallbacks t);
  Alcotest.(check bool) "P* exact" true (F3X.pstar_holds_exact t);
  let adj = Gen.random_biregular_bipartite ~seed:6 ~nv:12 ~nu:12 ~deg_u:3 ~deg_v:3 in
  let inst = Lll_apps.Weak_splitting.instance ~nv:12 adj in
  let a, t = F3X.solve inst in
  Alcotest.(check bool) "ws solved" true (Lll_apps.Weak_splitting.is_valid ~nv:12 adj a);
  Alcotest.(check int) "ws no fallback" 0 (F3X.fallbacks t);
  Alcotest.(check bool) "ws P* exact" true (F3X.pstar_holds_exact t)

let test_fix3_exact_phi_sums_exact () =
  let inst = Syn.random ~seed:4 ~n:12 ~rank:3 ~delta:2 ~arity:8 () in
  let _, t = F3X.solve inst in
  let g = I.dep_graph inst in
  for e = 0 to G.m g - 1 do
    let u, v = G.endpoints g e in
    Alcotest.(check bool) "sum <= 2 exactly" true
      (R.leq (R.add (F3X.phi t e u) (F3X.phi t e v)) R.two)
  done

let test_fix3_exact_agrees_with_float_success () =
  (* both variants must succeed; assignments may differ (tie-breaking) *)
  let inst = Syn.random ~seed:8 ~n:15 ~rank:3 ~delta:2 ~arity:8 () in
  let a_float, _ = F3.solve inst in
  let a_exact, _ = F3X.solve inst in
  Alcotest.(check bool) "float ok" true (V.avoids_all inst a_float);
  Alcotest.(check bool) "exact ok" true (V.avoids_all inst a_exact)

(* differential pass over the two rank-3 fixers: on random synthetic
   instances below the threshold, the float-potential and the
   exact-rational-potential processes must BOTH terminate with an
   assignment accepted by the exact verifier, for the same fixing order *)
let fix3_diff_props =
  [
    prop "float vs exact fixer: both verified on random instances" 24
      (QCheck.make QCheck.Gen.(int_range 0 100_000))
      (fun seed ->
        let n = [| 6; 9; 12 |].(seed mod 3) in
        let inst = Syn.random ~seed ~n ~rank:3 ~delta:2 ~arity:8 () in
        let order = shuffled_order ~seed:(seed + 7) (I.num_vars inst) in
        let a_float, _ = F3.solve ~order inst in
        let a_exact, tx = F3X.solve ~order inst in
        V.avoids_all inst a_float && V.avoids_all inst a_exact
        && (F3X.fallbacks tx > 0 || F3X.pstar_holds_exact tx));
  ]

let test_fix3_float_exact_divergence_regression () =
  (* smallest instance found (n = 6, seed = 0) on which the float and
     rational potentials select different values: pins down that the two
     paths genuinely diverge in their choices while both remain sound *)
  let inst = Syn.random ~seed:0 ~n:6 ~rank:3 ~delta:2 ~arity:8 () in
  let a_float, _ = F3.solve inst in
  let a_exact, tx = F3X.solve inst in
  Alcotest.(check bool) "assignments diverge" true (a_float <> a_exact);
  Alcotest.(check bool) "float verified" true (V.avoids_all inst a_float);
  Alcotest.(check bool) "exact verified" true (V.avoids_all inst a_exact);
  Alcotest.(check bool) "exact P*" true (F3X.pstar_holds_exact tx)

(* ------------------------------------------------------------------ *)
(* Srep_r and the experimental rank-r fixer (Conjecture 1.5)            *)
(* ------------------------------------------------------------------ *)

module SR = Lll_core.Srep_r
module FR = Lll_core.Fix_rankr

let test_clique_edges () =
  Alcotest.(check int) "K3" 3 (Array.length (SR.clique_edges 3));
  Alcotest.(check int) "K4" 6 (Array.length (SR.clique_edges 4));
  Alcotest.(check int) "K5" 10 (Array.length (SR.clique_edges 5))

let test_srep_r_matches_exact_r3 () =
  (* the numeric clique solver must agree with the exact rank-3
     characterisation away from the boundary *)
  let rng = Random.State.make [| 777 |] in
  let agree = ref 0 and total = ref 0 in
  for _ = 1 to 300 do
    let q () = Random.State.float rng 4.0 in
    let a = q () and b = q () and c = q () in
    let exact_viol = Srep.violation (a, b, c) in
    if Float.abs exact_viol > 0.05 then begin
      incr total;
      let numeric = SR.representable ~eps:1e-4 [| a; b; c |] in
      if numeric = (exact_viol < 0.) then incr agree
    end
  done;
  Alcotest.(check int) "full agreement off-boundary" !total !agree

let test_srep_r_known_points () =
  Alcotest.(check bool) "figure-2 triple" true (SR.representable [| 0.25; 1.5; 0.1 |]);
  Alcotest.(check bool) "all ones r=4" true (SR.representable [| 1.; 1.; 1.; 1. |]);
  Alcotest.(check bool) "all ones r=5" true (SR.representable [| 1.; 1.; 1.; 1.; 1. |]);
  (* a node's product is at most 2^(r-1) *)
  Alcotest.(check bool) "too big r=4" false (SR.representable [| 9.; 0.; 0.; 0. |]);
  Alcotest.(check bool) "max corner r=4" true (SR.representable ~eps:1e-3 [| 7.9; 0.; 0.; 0. |]);
  Alcotest.(check bool) "zeros always" true (SR.representable [| 0.; 0.; 0.; 0.; 0. |])

let test_srep_r_solution_consistency () =
  let rng = Random.State.make [| 31337 |] in
  for _ = 1 to 50 do
    let r = 3 + Random.State.int rng 3 in
    let targets = Array.init r (fun _ -> Random.State.float rng 1.5) in
    let sol = SR.solve ~targets () in
    (* psi respects the edge budgets by construction *)
    Array.iter
      (fun (_, _, pi, pj) ->
        Alcotest.(check bool) "budget" true (pi >= 0. && pj >= 0. && pi +. pj <= 2. +. 1e-9))
      sol.SR.psi;
    (* the reported slack matches the witness products *)
    if sol.SR.min_slack >= 0. then begin
      let prod = Array.make r 1.0 in
      Array.iter
        (fun (i, j, pi, pj) ->
          prod.(i) <- prod.(i) *. pi;
          prod.(j) <- prod.(j) *. pj)
        sol.SR.psi;
      Array.iteri
        (fun i t ->
          Alcotest.(check bool) "witness dominates target" true (prod.(i) >= t -. 1e-6))
        targets
    end
  done

let test_fix_rankr_on_rank3 () =
  (* the generalised fixer agrees with the proven rank-3 one on success *)
  for seed = 0 to 4 do
    let inst = Syn.random ~seed ~n:15 ~rank:3 ~delta:2 ~arity:8 () in
    let a, t = FR.solve inst in
    Alcotest.(check bool) "success" true (V.avoids_all inst a);
    Alcotest.(check bool) "no infeasible step" true (FR.infeasible_steps t = 0);
    Alcotest.(check bool) "pstar" true (FR.pstar_holds t)
  done

let test_fix_rankr_rank4 () =
  for seed = 0 to 3 do
    let inst = Syn.random ~seed ~n:16 ~rank:4 ~delta:2 ~arity:16 () in
    let order =
      let rng = Random.State.make [| seed * 3 |] in
      let o = Array.init (I.num_vars inst) (fun i -> i) in
      Gen.shuffle rng o;
      o
    in
    let a, t = FR.solve ~order inst in
    Alcotest.(check bool) "success" true (V.avoids_all inst a);
    Alcotest.(check bool) "slack >= 0" true (FR.min_slack t >= -1e-7);
    Alcotest.(check bool) "pstar" true (FR.pstar_holds t)
  done

let test_fix_rankr_rank5 () =
  let inst = Syn.random ~seed:1 ~n:20 ~rank:5 ~delta:2 ~arity:32 () in
  let a, t = FR.solve inst in
  Alcotest.(check bool) "success" true (V.avoids_all inst a);
  Alcotest.(check bool) "slack >= 0" true (FR.min_slack t >= -1e-7)

(* ------------------------------------------------------------------ *)
(* Moser–Tardos                                                         *)
(* ------------------------------------------------------------------ *)

let test_mt_sequential () =
  let inst = Syn.ring ~seed:2 ~n:30 ~arity:4 () in
  let a, stats = MT.solve_sequential ~seed:5 inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "finite" true (stats.MT.resamplings < 1_000_000)

let test_mt_parallel () =
  let inst = Syn.ring ~seed:2 ~n:30 ~arity:4 () in
  let a, stats = MT.solve_parallel ~seed:5 inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "rounds recorded" true (stats.MT.rounds >= 0)

let test_mt_at_threshold_sinkless () =
  (* at the threshold MT still works (shattering criterion fails on paper
     but resampling converges in practice on small instances) *)
  let g = Gen.cycle 16 in
  let inst = Lll_apps.Sinkless.instance g in
  let a, _ = MT.solve_parallel ~seed:11 inst in
  Alcotest.(check bool) "sinkless" true (Lll_apps.Sinkless.is_sinkless g a)

let test_mt_random_priority () =
  let inst = Syn.ring ~seed:2 ~n:30 ~arity:4 () in
  let a, stats = MT.solve_parallel_random_priority ~seed:5 inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "did work" true (stats.MT.rounds >= 0)

let test_mt_parallel_all () =
  let inst = Syn.ring ~seed:2 ~n:30 ~arity:4 () in
  let a, stats = MT.solve_parallel_all ~seed:5 inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "did work" true (stats.MT.rounds >= 0)

let test_mt_budget () =
  (* an unsatisfiable instance must raise Budget_exhausted, and the
     payload must carry the last (complete) assignment and the stats *)
  let vars = [| Var.uniform ~id:0 ~name:"x" 2 |] in
  let ev = E.make ~id:0 ~name:"always" ~scope:[| 0 |] (fun _ -> true) in
  let inst = I.create (S.create vars) [| ev |] in
  (try
     ignore (MT.solve_sequential ~max_resamplings:50 ~seed:0 inst);
     Alcotest.fail "no budget error"
   with MT.Budget_exhausted { assignment; stats } ->
     Alcotest.(check int) "payload resamplings" 50 stats.MT.resamplings;
     Alcotest.(check bool) "payload assignment complete" true (A.is_complete assignment))

let test_mt_incremental_matches_rescan () =
  (* the incremental occurring set must reproduce the full-rescan
     baseline exactly: same selection order, same random stream, same
     assignment and resampling count *)
  List.iter
    (fun (inst, seed) ->
      let a1, s1 = MT.solve_sequential ~seed inst in
      let a2, s2 = MT.solve_sequential_rescan ~seed inst in
      Alcotest.(check bool) "same assignment" true (a1 = a2);
      Alcotest.(check int) "same resamplings" s1.MT.resamplings s2.MT.resamplings)
    [
      (Syn.ring ~seed:2 ~n:30 ~arity:4 (), 5);
      (Syn.ring ~position:Syn.At_threshold ~seed:3 ~n:16 ~arity:4 (), 9);
      (Syn.random ~seed:4 ~n:12 ~rank:3 ~delta:2 ~arity:8 (), 7);
    ]

let test_mt_priority_tie_break () =
  (* forced-tie priority array: comparing priorities alone used to block
     both endpoints of every tied edge, selecting nothing while burning
     the round; the lexicographic (priority, id) order must select the
     id-minima instead *)
  let inst = Syn.ring ~seed:2 ~n:8 ~arity:4 () in
  let g = I.dep_graph inst in
  let all_ids = List.init (I.num_events inst) (fun i -> i) in
  let tied = Array.make (I.num_events inst) 0.5 in
  let selected = MT.priority_minima g ~prio:tied all_ids in
  Alcotest.(check bool) "tied round selects at least one event" true (selected <> []);
  (* under a full tie the lexicographic order degenerates to ids: the
     selection must equal the id-local-minima (and be independent) *)
  let id_minima =
    List.filter (fun id -> List.for_all (fun u -> u > id) (Lll_graph.Graph.neighbors g id)) all_ids
  in
  Alcotest.(check (list int)) "tie degenerates to id-minima" id_minima selected;
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u <> v then
            Alcotest.(check bool) "selected events non-adjacent" false
              (Lll_graph.Graph.mem_edge g u v))
        selected)
    selected;
  (* distinct priorities must keep selecting priority-minima as before *)
  let prio = Array.init (I.num_events inst) (fun i -> float_of_int ((i * 5) mod 8)) in
  let by_prio = MT.priority_minima g ~prio all_ids in
  List.iter
    (fun id ->
      List.iter
        (fun u ->
          Alcotest.(check bool) "strict minimum among neighbors" true
            (prio.(u) > prio.(id) || (prio.(u) = prio.(id) && u > id)))
        (Lll_graph.Graph.neighbors g id))
    by_prio

let test_mt_deterministic_given_seed () =
  let inst = Syn.ring ~seed:8 ~n:20 ~arity:4 () in
  let a1, s1 = MT.solve_sequential ~seed:99 inst in
  let a2, s2 = MT.solve_sequential ~seed:99 inst in
  Alcotest.(check bool) "same assignment" true (a1 = a2);
  Alcotest.(check int) "same resamplings" s1.MT.resamplings s2.MT.resamplings

(* ------------------------------------------------------------------ *)
(* Verify                                                               *)
(* ------------------------------------------------------------------ *)

let test_verify_module () =
  let inst = triangle_instance () in
  (* shared=0 and p0=1: event 0 occurs *)
  let bad = A.of_list 4 [ (0, 0); (1, 1); (2, 0); (3, 0) ] in
  Alcotest.(check bool) "not avoided" false (V.avoids_all inst bad);
  Alcotest.(check (option int)) "first violated" (Some 0) (V.first_violated inst bad);
  Alcotest.(check (list int)) "occurring" [ 0 ] (V.occurring_events inst bad);
  let r = V.check inst bad in
  Alcotest.(check bool) "record" true ((not r.V.ok) && r.V.violated = [ 0 ]);
  let good = A.of_list 4 [ (0, 3); (1, 1); (2, 1); (3, 1) ] in
  Alcotest.(check bool) "avoided" true (V.avoids_all inst good);
  Alcotest.(check (option int)) "none violated" None (V.first_violated inst good);
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Verify.avoids_all: incomplete assignment") (fun () ->
      ignore (V.avoids_all inst (A.empty 4)))

let test_best_algorithm_branches () =
  let contains hay needle =
    let ln = String.length needle and lh = String.length hay in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (* exponential + r<=2: O(d^1) *)
  let r2 = Crit.evaluate (Syn.ring ~seed:0 ~n:8 ~arity:4 ()) in
  Alcotest.(check bool) "rank2 wording" true (contains (Crit.best_algorithm r2) "O(d^1");
  (* exponential + r=3: O(d^2) *)
  let r3 = Crit.evaluate (triangle_instance ()) in
  Alcotest.(check bool) "rank3 wording" true (contains (Crit.best_algorithm r3) "O(d^2");
  (* nothing holds *)
  let bad = Crit.evaluate (Lll_apps.Sinkless.instance (Gen.cycle 5)) in
  Alcotest.(check bool) "no criterion" true
    (contains (Crit.best_algorithm bad) "no criterion"
    || contains (Crit.best_algorithm bad) "Moser-Tardos")

(* ------------------------------------------------------------------ *)
(* Conditional expectations under the union bound                       *)
(* ------------------------------------------------------------------ *)

module CE = Lll_core.Cond_exp

let test_cond_exp_solves_under_union_bound () =
  (* few events: p = 3/16 per event, 4 events: sum = 3/4 < 1 *)
  for seed = 0 to 4 do
    let inst = Syn.ring ~seed ~n:4 ~arity:4 () in
    Alcotest.(check bool) "criterion" true (CE.criterion_holds inst);
    let a, phi = CE.solve inst in
    Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
    Alcotest.check rat "phi is 0 at the end" R.zero phi
  done

let test_cond_exp_criterion_fails_globally () =
  (* the union bound is global: the same local structure fails for
     large n while the LLL criterion keeps holding — the paper's point *)
  let small = Syn.ring ~seed:1 ~n:4 ~arity:4 () in
  let large = Syn.ring ~seed:1 ~n:64 ~arity:4 () in
  Alcotest.(check bool) "small holds" true (CE.criterion_holds small);
  Alcotest.(check bool) "large fails" false (CE.criterion_holds large);
  let rep = Crit.evaluate large in
  Alcotest.(check bool) "LLL still applies" true
    (List.assoc Crit.Exponential rep.Crit.satisfied)

let test_cond_exp_phi_never_increases () =
  let inst = Syn.ring ~seed:5 ~n:10 ~arity:4 () in
  let _, phi = CE.solve inst in
  let initial = R.sum (Array.to_list (I.initial_probs inst)) in
  Alcotest.(check bool) "phi <= initial" true (R.leq phi initial)

(* ------------------------------------------------------------------ *)
(* Transform: the footnote-3 variable merge                             *)
(* ------------------------------------------------------------------ *)

module T = Lll_core.Transform

(* two variables per ring hyperedge so there is something to merge *)
let doubled_ring_instance ~seed n =
  let base = Syn.ring ~seed ~n ~arity:4 () in
  ignore base;
  let vars =
    Array.init (2 * n) (fun i -> Var.uniform ~id:i ~name:(Printf.sprintf "x%d" i) 2)
  in
  (* edge j of the ring carries variables 2j and 2j+1; event i depends on
     the variables of edges i-1 and i, occurring iff all four are 1 *)
  let events =
    Array.init n (fun i ->
        let e_prev = (i + n - 1) mod n and e_next = i in
        let scope = [| 2 * e_prev; (2 * e_prev) + 1; 2 * e_next; (2 * e_next) + 1 |] in
        E.all_value ~id:i ~name:(Printf.sprintf "bad%d" i) ~scope ~value:1)
  in
  I.create (S.create vars) events

let test_transform_merges () =
  let orig = doubled_ring_instance ~seed:1 8 in
  Alcotest.(check int) "orig vars" 16 (I.num_vars orig);
  let m = T.merge_shared_variables orig in
  Alcotest.(check int) "merged vars" 8 (I.num_vars m.T.instance);
  Alcotest.(check int) "same events" (I.num_events orig) (I.num_events m.T.instance);
  (* structure preserved *)
  Alcotest.(check bool) "same dep graph" true
    (G.edges (I.dep_graph orig) = G.edges (I.dep_graph m.T.instance));
  Alcotest.(check int) "same d" (I.dependency_degree orig)
    (I.dependency_degree m.T.instance);
  (* probabilities preserved exactly *)
  Alcotest.(check bool) "same initial probs" true
    (I.initial_probs orig = I.initial_probs m.T.instance);
  (* merged arity is the product *)
  Alcotest.(check int) "product arity" 4
    (Var.arity (S.var (I.space m.T.instance) 0))

let test_transform_solve_and_decode () =
  let orig = doubled_ring_instance ~seed:2 10 in
  let m = T.merge_shared_variables orig in
  (* the merged instance is in Section-2 normal form: solve it *)
  let a, _ = F2.solve m.T.instance in
  Alcotest.(check bool) "merged solved" true (V.avoids_all m.T.instance a);
  (* decode back and verify on the ORIGINAL instance *)
  let a0 = T.decode m a in
  Alcotest.(check bool) "decoded complete" true (A.is_complete a0);
  Alcotest.(check bool) "original avoided" true (V.avoids_all orig a0)

let test_transform_identity_when_unique () =
  (* a ring already has one variable per hyperedge: nothing merges *)
  let inst = Syn.ring ~seed:3 ~n:8 ~arity:4 () in
  let m = T.merge_shared_variables inst in
  Alcotest.(check int) "same var count" (I.num_vars inst) (I.num_vars m.T.instance)

(* ------------------------------------------------------------------ *)
(* Active adversary against order-obliviousness                         *)
(* ------------------------------------------------------------------ *)

module Adv = Lll_core.Adversary

let test_adversary_cannot_break_fixer () =
  (* hill climbing on the certificate bound never reaches 1 below the
     threshold, and the fixer always still succeeds *)
  for seed = 0 to 2 do
    let inst = Syn.ring ~seed ~n:14 ~arity:4 () in
    let attack = Adv.worst_order_rank2 ~seed ~steps:60 inst in
    Alcotest.(check bool) "bound < 1" true (R.lt attack.Adv.bound R.one);
    Alcotest.(check bool) "fixer survived" true attack.Adv.succeeded
  done

let test_adversary_bound_is_certificate () =
  let inst = Syn.ring ~seed:9 ~n:10 ~arity:4 () in
  let order = Array.init (I.num_vars inst) (fun i -> i) in
  let b = Adv.final_bound_rank2 inst order in
  Alcotest.(check bool) "positive" true (R.sign b >= 0);
  Alcotest.(check bool) "below 1 below threshold" true (R.lt b R.one)

(* ------------------------------------------------------------------ *)
(* Witness trees (MT10 analysis)                                        *)
(* ------------------------------------------------------------------ *)

module W = Lll_core.Witness

let test_witness_trees_well_formed () =
  let inst = Syn.ring ~position:Syn.At_threshold ~seed:5 ~n:20 ~arity:4 () in
  let _, stats, log = MT.solve_sequential_log ~seed:2 inst in
  Alcotest.(check int) "log length" stats.MT.resamplings (Array.length log);
  QCheck.assume (Array.length log > 0);
  Array.iteri
    (fun t _ ->
      let tree = W.tree_of_log inst log t in
      Alcotest.(check int) (Printf.sprintf "root %d" t) log.(t) tree.W.label;
      Alcotest.(check bool) (Printf.sprintf "well-formed %d" t) true (W.well_formed inst tree);
      Alcotest.(check bool) (Printf.sprintf "size bound %d" t) true (W.size tree <= t + 1);
      Alcotest.(check bool)
        (Printf.sprintf "height <= size %d" t)
        true
        (W.height tree <= W.size tree))
    log

let test_witness_tree_of_empty_prefix () =
  let inst = Syn.ring ~position:Syn.At_threshold ~seed:7 ~n:16 ~arity:4 () in
  let _, _, log = MT.solve_sequential_log ~seed:3 inst in
  QCheck.assume (Array.length log > 0);
  let t0 = W.tree_of_log inst log 0 in
  Alcotest.(check int) "singleton" 1 (W.size t0);
  Alcotest.(check int) "height" 1 (W.height t0)

let test_witness_histogram () =
  let inst = Syn.ring ~position:Syn.At_threshold ~seed:11 ~n:24 ~arity:4 () in
  let _, stats, log = MT.solve_sequential_log ~seed:5 inst in
  let hist = W.size_histogram inst log in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  Alcotest.(check int) "covers all steps" stats.MT.resamplings total;
  (* sizes are positive and sorted *)
  Alcotest.(check bool) "sorted sizes" true
    (let rec sorted = function
       | (a, _) :: ((b, _) :: _ as rest) -> a < b && sorted rest
       | _ -> true
     in
     sorted hist)

let test_witness_rejects_bad_step () =
  let inst = Syn.ring ~seed:1 ~n:10 ~arity:4 () in
  Alcotest.check_raises "range" (Invalid_argument "Witness.tree_of_log: step out of range")
    (fun () -> ignore (W.tree_of_log inst [| 0 |] 5))

(* ------------------------------------------------------------------ *)
(* Distributed drivers                                                  *)
(* ------------------------------------------------------------------ *)

let test_distributed_rank2 () =
  let inst = Syn.ring ~seed:6 ~n:40 ~arity:4 () in
  let r = D.solve_rank2 inst in
  Alcotest.(check bool) "ok" true r.D.ok;
  Alcotest.(check bool) "rounds accounted" true (r.D.rounds = r.D.coloring_rounds + r.D.sweep_rounds);
  Alcotest.(check bool) "few colors" true (r.D.colors <= 3)

let test_distributed_rank3 () =
  let inst = Syn.random ~seed:6 ~n:18 ~rank:3 ~delta:2 ~arity:8 () in
  let r = D.solve_rank3 inst in
  Alcotest.(check bool) "ok" true r.D.ok;
  Alcotest.(check bool) "rounds accounted" true (r.D.rounds = r.D.coloring_rounds + r.D.sweep_rounds)

let test_distributed_rankr () =
  let inst = Syn.random ~seed:2 ~n:16 ~rank:4 ~delta:2 ~arity:16 () in
  let r = D.solve_rankr inst in
  Alcotest.(check bool) "ok" true r.D.ok;
  Alcotest.(check bool) "rounds accounted" true (r.D.rounds = r.D.coloring_rounds + r.D.sweep_rounds)

let test_distributed_mt () =
  let inst = Syn.ring ~seed:7 ~n:30 ~arity:4 () in
  let r = D.solve_moser_tardos ~seed:3 inst in
  Alcotest.(check bool) "ok" true r.D.ok

let test_distributed_round_scaling () =
  (* Corollary 1.2 flavour: rounds flat in n past the Linial fixpoint *)
  let rounds n =
    let inst = Syn.ring ~seed:1 ~n ~arity:4 () in
    (D.solve_rank2 inst).D.rounds
  in
  let r1 = rounds 128 and r2 = rounds 512 in
  Alcotest.(check bool) "flat" true (abs (r1 - r2) <= 2)

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

module Ser = Lll_core.Serial

let instances_agree a b =
  (* same structure and same exact probabilities under a few partial
     assignments *)
  I.num_vars a = I.num_vars b
  && I.num_events a = I.num_events b
  && G.edges (I.dep_graph a) = G.edges (I.dep_graph b)
  && I.initial_probs a = I.initial_probs b

let test_serial_roundtrip () =
  List.iter
    (fun (inst, name) ->
      let s = Ser.to_string inst in
      let inst' = Ser.of_string s in
      Alcotest.(check bool) (name ^ " roundtrip") true (instances_agree inst inst');
      (* the round-tripped instance is solvable and agrees step by step *)
      let a, _ = F3.solve inst and a', _ = F3.solve inst' in
      Alcotest.(check bool) (name ^ " same solution") true (a = a'))
    [
      (triangle_instance (), "triangle");
      (Syn.ring ~seed:3 ~n:10 ~arity:4 (), "ring");
      (Lll_apps.Sinkless.relaxed_instance (Gen.cycle 8), "sinkless");
    ]

let test_serial_file_roundtrip () =
  let inst = Syn.random ~seed:2 ~n:12 ~rank:3 ~delta:2 ~arity:4 () in
  let path = Filename.temp_file "lll_test" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ser.save path inst;
      let inst' = Ser.load path in
      Alcotest.(check bool) "file roundtrip" true (instances_agree inst inst'))

let test_serial_ignores_comments () =
  let s = Ser.to_string (triangle_instance ()) in
  let s = "# a comment\n\n" ^ s in
  Alcotest.(check bool) "comments ok" true
    (instances_agree (triangle_instance ()) (Ser.of_string s))

let test_serial_rejects_garbage () =
  (try
     ignore (Ser.of_string "not an instance");
     Alcotest.fail "accepted garbage"
   with Ser.Parse_error _ -> ());
  (try
     ignore (Ser.of_string "lll-instance v1\nvars x\n");
     Alcotest.fail "accepted bad count"
   with Ser.Parse_error _ -> ())

let test_serial_v2_error_paths () =
  (* take an honest v2 rendering and corrupt it in each of the ways a
     damaged file plausibly is; every corruption must surface as a clean
     Parse_error, never a wrong instance *)
  let good = Ser.to_string (triangle_instance ()) in
  let lines = String.split_on_char '\n' good in
  let reject name s =
    try
      ignore (Ser.of_string s);
      Alcotest.fail (name ^ " accepted")
    with Ser.Parse_error _ -> ()
  in
  (* wrong-version header *)
  (match lines with
  | header :: rest ->
    Alcotest.(check string) "emits v2" "lll-instance v2" header;
    reject "future version" (String.concat "\n" ("lll-instance v3" :: rest))
  | [] -> Alcotest.fail "empty serialization");
  (* truncated table: drop the final 'w' row so the last wtable block
     promises more rows than the file holds *)
  let last_w =
    List.fold_left
      (fun (i, best) l ->
        (i + 1, if String.length l >= 2 && String.sub l 0 2 = "w " then i else best))
      (0, -1) lines
    |> snd
  in
  Alcotest.(check bool) "has weight rows" true (last_w >= 0);
  reject "truncated table"
    (String.concat "\n" (List.filteri (fun i _ -> i <> last_w) lines));
  (* corrupted row weight: still a positive rational, but no longer the
     product of the distributions — the self-check must fire *)
  let rewrite_weight value =
    String.concat "\n"
      (List.mapi
         (fun i l ->
           if i <> last_w then l
           else
             match String.rindex_opt l ' ' with
             | Some j -> String.sub l 0 j ^ " " ^ value
             | None -> Alcotest.fail "weight row has no weight")
         lines)
  in
  reject "wrong weight" (rewrite_weight "7/9");
  (* non-positive weight: rejected by the wtable parser itself *)
  reject "zero weight" (rewrite_weight "0")

let test_serial_bad_tuples () =
  let inst = triangle_instance () in
  let e = I.event inst 0 in
  let tuples = Ser.bad_tuples (I.space inst) e in
  (* event 0: shared = 0 and private p0 = 1; scope sorted [0;1]: tuple
     (0, 1) *)
  Alcotest.(check (list (list int))) "table" [ [ 0; 1 ] ] tuples

(* ---- the binary v3 container ---- *)

module Bin = Lll_graph.Serialize.Bin

let test_serial_binary_roundtrip () =
  List.iter
    (fun (inst, name) ->
      let blob = Ser.to_binary_string inst in
      Alcotest.(check bool) (name ^ " detected as binary") true (Ser.is_binary blob);
      Alcotest.(check bool) (name ^ " text not binary") false (Ser.is_binary (Ser.to_string inst));
      let inst' = Ser.of_binary_string blob in
      Alcotest.(check bool) (name ^ " roundtrip") true (instances_agree inst inst');
      let a, _ = F3.solve inst and a', _ = F3.solve inst' in
      Alcotest.(check bool) (name ^ " same solution") true (a = a'))
    [
      (triangle_instance (), "triangle");
      (Syn.ring ~seed:3 ~n:10 ~arity:4 (), "ring");
      (Lll_apps.Sinkless.relaxed_instance (Gen.cycle 8), "sinkless");
    ]

let test_serial_binary_cross_conversion () =
  (* text -> binary -> text is the identity on the v2 rendering, so the
     two formats are lossless interchange *)
  let inst = Syn.random ~seed:2 ~n:12 ~rank:3 ~delta:2 ~arity:4 () in
  let text = Ser.to_string inst in
  let text' = Ser.to_string (Ser.of_binary_string (Ser.to_binary_string (Ser.of_string text))) in
  Alcotest.(check string) "v2 fixed point" text text';
  (* of_any_string dispatches on content *)
  Alcotest.(check bool) "any: text" true
    (instances_agree inst (Ser.of_any_string text));
  Alcotest.(check bool) "any: binary" true
    (instances_agree inst (Ser.of_any_string (Ser.to_binary_string inst)))

let test_serial_binary_file_roundtrip () =
  let inst = Syn.random ~seed:5 ~n:12 ~rank:3 ~delta:2 ~arity:4 () in
  let path = Filename.temp_file "lll_test" ".lllb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ser.save_binary path inst;
      Alcotest.(check bool) "load_binary" true (instances_agree inst (Ser.load_binary path));
      Alcotest.(check bool) "load_any" true (instances_agree inst (Ser.load_any path)))

let test_serial_binary_error_paths () =
  (* every plausible kind of file damage must surface as a clean
     Bin.Corrupt with a distinguishing message, never a wrong instance *)
  let blob = Ser.to_binary_string (triangle_instance ()) in
  let reject name expect s =
    try
      ignore (Ser.of_binary_string s);
      Alcotest.fail (name ^ " accepted")
    with Bin.Corrupt msg ->
      let holds =
        let el = String.length expect and ml = String.length msg in
        let rec scan i = i + el <= ml && (String.sub msg i el = expect || scan (i + 1)) in
        scan 0
      in
      if not holds then
        Alcotest.fail (Printf.sprintf "%s: message %S lacks %S" name msg expect)
  in
  let patch pos c =
    let b = Bytes.of_string blob in
    Bytes.set b pos c;
    Bytes.to_string b
  in
  (* bad magic: first four bytes are not LLL3 *)
  reject "bad magic" "bad magic" (patch 0 'X');
  (* version skew: the i64 at offset 4 is the format version *)
  reject "version skew" "unsupported version" (patch 4 '\099');
  (* truncation: cut the container mid-section *)
  reject "truncated" "truncated" (String.sub blob 0 (String.length blob - 5));
  reject "truncated header" "truncated" (String.sub blob 0 8);
  (* checksum: flip one byte inside a section body (the last byte of the
     payload sits inside the final section) *)
  let last = String.length blob - 1 in
  let flipped = Char.chr (Char.code blob.[last] lxor 0x40) in
  reject "corrupted checksum" "checksum mismatch" (patch last flipped);
  (* wrong container kind: a graph blob is not an instance *)
  reject "wrong kind" "kind"
    (Lll_graph.Serialize.graph_to_binary (Gen.cycle 6))

let test_serial_binary_mmap () =
  (* the mapped read path must decode the same instance as the slurp
     path, report the same fingerprint, and reject damage just as
     loudly *)
  let inst = Syn.random ~seed:7 ~n:12 ~rank:3 ~delta:2 ~arity:4 () in
  let path = Filename.temp_file "lll_test" ".lllb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ser.save_binary path inst;
      Alcotest.(check bool) "mmap agrees with read" true
        (instances_agree (Ser.load_binary path) (Ser.load_binary_mmap path));
      (match Ser.binary_fingerprint path with
      | None -> Alcotest.fail "no fingerprint for a binary file"
      | Some fp ->
        let copy = Filename.temp_file "lll_test" ".lllb" in
        Fun.protect
          ~finally:(fun () -> Sys.remove copy)
          (fun () ->
            let blob = In_channel.with_open_bin path In_channel.input_all in
            Out_channel.with_open_bin copy (fun oc -> Out_channel.output_string oc blob);
            Alcotest.(check (option string)) "copy fingerprints equal" (Some fp)
              (Ser.binary_fingerprint copy)));
      (* flip a payload byte on disk: the mapped load must raise the
         same checksum Corrupt as the slurp load *)
      let blob = In_channel.with_open_bin path In_channel.input_all in
      let dmg = Bytes.of_string blob in
      let last = Bytes.length dmg - 1 in
      Bytes.set dmg last (Char.chr (Char.code (Bytes.get dmg last) lxor 0x40));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc dmg);
      (try
         ignore (Ser.load_binary_mmap path);
         Alcotest.fail "corrupted mmap load accepted"
       with Bin.Corrupt _ -> ()));
  let text = Filename.temp_file "lll_test" ".lll" in
  Fun.protect
    ~finally:(fun () -> Sys.remove text)
    (fun () ->
      Out_channel.with_open_bin text (fun oc ->
          Out_channel.output_string oc (Ser.to_string inst));
      Alcotest.(check (option string)) "text has no fingerprint" None
        (Ser.binary_fingerprint text))

let test_store_artifact_error_paths () =
  (* the artifact store built on this container must never surface
     Bin.Corrupt to its callers: a damaged artifact (any of the damage
     kinds rejected above) is quarantined to [.bad] and regenerated *)
  let module Spec = Lll_store.Spec in
  let module Store = Lll_store.Store in
  let dir = Filename.temp_file "lll_store_core" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let spec = Spec.Ring { n = 18; seed = 3; arity = 4; at = true } in
      let damage name mutate =
        let path = Store.materialize (Store.create ~dir ()) spec in
        let blob = In_channel.with_open_bin path In_channel.input_all in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (mutate blob));
        let st = Store.create ~dir () in
        let inst, src = Store.fetch st spec in
        Alcotest.(check bool) (name ^ ": regenerated, not crashed") true (src = `Built);
        Alcotest.(check int) (name ^ ": quarantined") 1 (Store.stats st).Store.st_quarantined;
        Alcotest.(check bool) (name ^ ": .bad parked") true (Sys.file_exists (path ^ ".bad"));
        Alcotest.(check bool) (name ^ ": instance usable") true
          (instances_agree inst (Spec.build spec));
        Sys.remove (path ^ ".bad")
      in
      damage "bad magic" (fun b -> "XXXX" ^ String.sub b 4 (String.length b - 4));
      damage "truncated" (fun b -> String.sub b 0 (String.length b / 3));
      damage "checksum flip" (fun b ->
          let d = Bytes.of_string b in
          let last = Bytes.length d - 1 in
          Bytes.set d last (Char.chr (Char.code (Bytes.get d last) lxor 0x40));
          Bytes.to_string d);
      damage "emptied" (fun _ -> "");
      (* wrong container kind parked too: a graph blob is not an instance *)
      damage "wrong kind" (fun _ ->
          Lll_graph.Serialize.graph_to_binary (Gen.cycle 6)))

let test_bin_mmap_negative_values () =
  (* regression: the u32-view decoder must sign-extend i32 array
     elements and assemble full-width i64 values — negative entries at
     word-misaligned offsets (the leading string skews alignment) came
     out wrong when the shift chain dropped its parentheses *)
  let m32 = Int32.to_int Int32.min_int in
  let a32 = [| -1; m32; 123456; -70000 |] in
  let a64 = [| min_int; -1; max_int; -4611686018427387904 |] in
  let q = Lll_num.Rat.of_ints (-3) 7 in
  let w = Bin.make_writer ~kind:"negs" in
  Bin.section w "NEGS";
  Bin.add_string w "x";
  Bin.add_int_array w a32;
  Bin.add_int_array w a64;
  Bin.add_int w (-987654321);
  Bin.add_rat w q;
  let path = Filename.temp_file "lll_test" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Bin.contents w));
      let check_reader r =
        Bin.enter r "NEGS";
        Alcotest.(check string) "skew string" "x" (Bin.read_string r);
        Alcotest.(check (array int)) "i32 column" a32 (Bin.read_int_array r);
        Alcotest.(check (array int)) "i64 column" a64 (Bin.read_int_array r);
        Alcotest.(check int) "scalar" (-987654321) (Bin.read_int r);
        Alcotest.(check bool) "rational" true (Lll_num.Rat.equal q (Bin.read_rat r));
        Bin.close r
      in
      check_reader (Bin.load_mmap ~kind:"negs" path);
      check_reader
        (Bin.open_reader ~kind:"negs"
           (In_channel.with_open_bin path In_channel.input_all)))

let suite_binary_qcheck =
  [
    prop "binary round-trip solves identically to text v2" 25
      (QCheck.make QCheck.Gen.(int_range 0 10_000))
      (fun seed ->
        let inst = Syn.random ~seed ~n:12 ~rank:3 ~delta:2 ~arity:4 () in
        let via_text = Ser.of_string (Ser.to_string inst) in
        let via_bin = Ser.of_binary_string (Ser.to_binary_string inst) in
        let a, _ = F3.solve via_text and a', _ = F3.solve via_bin in
        instances_agree via_text via_bin && a = a');
  ]

(* ------------------------------------------------------------------ *)
(* The message-passing distributed solver                               *)
(* ------------------------------------------------------------------ *)

module DL = Lll_core.Dist_lll

let test_dist_lll_solves () =
  List.iter
    (fun (inst, name) ->
      let r = DL.solve inst in
      Alcotest.(check bool) (name ^ " ok") true r.DL.ok;
      Alcotest.(check bool)
        (name ^ " rounds = coloring + 3*classes")
        true
        (r.DL.sweep_rounds = 3 * r.DL.colors))
    [
      (Syn.ring ~seed:4 ~n:24 ~arity:4 (), "ring");
      (Syn.random ~seed:4 ~n:15 ~rank:3 ~delta:2 ~arity:8 (), "rank3");
      (Lll_apps.Sinkless.relaxed_instance (Gen.random_regular ~seed:4 16 3), "sinkless");
    ]

let test_dist_lll_matches_sequential_driver () =
  (* the protocol must reproduce the schedule-accounting driver's
     assignment BIT FOR BIT: same owners, same per-variable order, same
     float operations *)
  List.iter
    (fun (inst, name) ->
      let seq = D.solve_rank3 inst in
      let msg = DL.solve inst in
      Alcotest.(check bool) (name ^ " both ok") true (seq.D.ok && msg.DL.ok);
      Alcotest.(check bool)
        (name ^ " identical assignment")
        true
        (seq.D.assignment = msg.DL.assignment);
      Alcotest.(check int) (name ^ " same colors") seq.D.colors msg.DL.colors)
    [
      (Syn.random ~seed:9 ~n:18 ~rank:3 ~delta:2 ~arity:8 (), "rank3");
      ( Lll_apps.Weak_splitting.instance ~nv:12
          (Gen.random_biregular_bipartite ~seed:9 ~nv:12 ~nu:12 ~deg_u:3 ~deg_v:3),
        "weak-splitting" );
      ( Lll_apps.Hyper_orientation.instance (Gen.random_regular_hypergraph ~seed:9 12 3 2),
        "hyper-orientation" );
    ]

let test_dist_lll_rank2_protocol () =
  List.iter
    (fun (inst, name) ->
      let r = DL.solve_rank2 inst in
      Alcotest.(check bool) (name ^ " ok") true r.DL.ok;
      Alcotest.(check bool)
        (name ^ " rounds = 3*(colors+1)")
        true
        (r.DL.sweep_rounds = 3 * (r.DL.colors + 1));
      (* Corollary 1.2 shape: few colors on the line graph *)
      Alcotest.(check bool) (name ^ " few classes") true (r.DL.colors <= 5))
    [
      (Syn.ring ~seed:6 ~n:30 ~arity:4 (), "ring");
      (Lll_apps.Sinkless.relaxed_instance (Gen.cycle 20), "sinkless cycle");
    ]

let test_dist_lll_rank2_rejects_rank3 () =
  Alcotest.check_raises "rank3" (Invalid_argument "Dist_lll.solve_rank2: instance has rank > 2")
    (fun () -> ignore (DL.solve_rank2 (triangle_instance ())))

let test_dist_lll_rejects_rank4 () =
  let inst = Syn.random ~seed:1 ~n:16 ~rank:4 ~delta:2 ~arity:16 () in
  Alcotest.check_raises "rank4" (Invalid_argument "Dist_lll.solve: instance has rank > 3")
    (fun () -> ignore (DL.solve inst))

(* ------------------------------------------------------------------ *)
(* Synthetic placement                                                  *)
(* ------------------------------------------------------------------ *)

let test_synthetic_placement () =
  let below = Syn.ring ~seed:3 ~n:12 ~arity:4 () in
  let rep = Crit.evaluate below in
  Alcotest.(check bool) "below" true (List.assoc Crit.Exponential rep.Crit.satisfied);
  let at = Syn.ring ~position:Syn.At_threshold ~seed:3 ~n:12 ~arity:4 () in
  let rep_at = Crit.evaluate at in
  Alcotest.(check bool) "at threshold fails criterion" false
    (List.assoc Crit.Exponential rep_at.Crit.satisfied);
  Alcotest.check rat "exactly at" R.one (Crit.threshold_ratio ~p:rep_at.Crit.p ~d:rep_at.Crit.d)

let test_exponential_inside_shearer () =
  (* the paper's criterion p < 2^-d lies strictly inside Shearer's exact
     region (sampled over small synthetic instances) *)
  for seed = 0 to 9 do
    let inst = Syn.ring ~seed ~n:12 ~arity:4 () in
    let rep = Crit.evaluate inst in
    Alcotest.(check bool) "below threshold" true
      (List.assoc Crit.Exponential rep.Crit.satisfied);
    Alcotest.(check bool) "inside shearer" true (Crit.shearer_holds inst)
  done

let test_synthetic_degenerate_zero_probability () =
  (* arity 4, delta 2, d = 4: the below-threshold bad-set size is 0, so
     all events are impossible — the fixers must handle Pr = 0 (Inc = 0)
     gracefully and trivially succeed *)
  let inst = Syn.random ~seed:2 ~n:12 ~rank:3 ~delta:2 ~arity:4 () in
  Alcotest.check rat "p = 0" R.zero (I.max_prob inst);
  let a, t = F3.solve inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "pstar" true (F3.pstar_holds t)

let test_synthetic_structure () =
  let inst = Syn.random ~seed:5 ~n:15 ~rank:3 ~delta:2 ~arity:8 () in
  Alcotest.(check int) "rank" 3 (I.rank inst);
  Alcotest.(check bool) "d bounded" true (I.dependency_degree inst <= 4);
  Alcotest.(check int) "vars" (15 * 2 / 3) (I.num_vars inst)

let () =
  Alcotest.run "lll_core"
    [
      ( "instance",
        [
          Alcotest.test_case "structure" `Quick test_instance_structure;
          Alcotest.test_case "rejects" `Quick test_instance_rejects;
          Alcotest.test_case "to_dot" `Quick test_instance_to_dot;
          Alcotest.test_case "hyperedges" `Quick test_hyperedges;
        ] );
      ( "criteria",
        [
          Alcotest.test_case "exact threshold" `Quick test_criteria_exact_threshold;
          Alcotest.test_case "shattering" `Quick test_criteria_shattering;
          Alcotest.test_case "report" `Quick test_criteria_report;
          Alcotest.test_case "asymmetric (Erdos-Lovasz)" `Quick test_criteria_asymmetric;
          Alcotest.test_case "shearer exact region" `Quick test_criteria_shearer;
          Alcotest.test_case "shearer size guard" `Quick test_criteria_shearer_rejects_large;
        ] );
      ( "srep",
        [
          Alcotest.test_case "f known values" `Quick test_f_known_values;
          Alcotest.test_case "figure 2 triple" `Quick test_figure2_triple;
          Alcotest.test_case "boundary cases" `Quick test_srep_boundary_cases;
          Alcotest.test_case "mem_rat matches float" `Quick test_mem_rat_matches_float;
          Alcotest.test_case "hessian positive (Lemma 3.6)" `Quick test_hessian_positive;
          Alcotest.test_case "surface grid" `Quick test_surface_grid;
          Alcotest.test_case "best_x matches x1 formula" `Quick test_best_x_matches_formula;
          Alcotest.test_case "decompose corners" `Quick test_decompose_corners;
          Alcotest.test_case "decompose surface points" `Quick test_decompose_surface_points;
          Alcotest.test_case "violation of negatives" `Quick test_violation_negatives;
          Alcotest.test_case "best_x in range" `Quick test_best_x_in_range;
        ] );
      ("srep-properties", srep_props);
      ("srep-rational-properties", srep_rat_props);
      ( "fix-rank2",
        [
          Alcotest.test_case "ring instances" `Quick test_fix2_ring_instances;
          Alcotest.test_case "scores within budget" `Quick test_fix2_scores_within_budget;
          Alcotest.test_case "relaxed sinkless" `Quick test_fix2_relaxed_sinkless;
          Alcotest.test_case "adversarial orders" `Quick test_fix2_adversarial_orders;
          Alcotest.test_case "policies both sound" `Quick test_fix2_policies_agree_on_success;
          Alcotest.test_case "rejects rank 3" `Quick test_fix2_rejects_rank3;
          Alcotest.test_case "rejects double fix" `Quick test_fix2_fix_twice;
        ] );
      ("fix-rank2-properties", fix2_props);
      ( "fix-rank3",
        [
          Alcotest.test_case "triangle" `Quick test_fix3_triangle;
          Alcotest.test_case "random instances" `Quick test_fix3_random_instances;
          Alcotest.test_case "rank-2 inputs" `Quick test_fix3_handles_rank2_instances;
          Alcotest.test_case "P* along the way" `Quick test_fix3_pstar_along_the_way;
          Alcotest.test_case "policies both sound" `Quick test_fix3_policies_both_sound;
          Alcotest.test_case "rejects rank 4" `Quick test_fix3_rejects_rank4;
        ] );
      ("fix-rank3-properties", fix3_props);
      ( "fix-rank3-exact",
        [
          Alcotest.test_case "solves with exact P*" `Quick test_fix3_exact_solves;
          Alcotest.test_case "applications" `Quick test_fix3_exact_on_applications;
          Alcotest.test_case "phi sums exact" `Quick test_fix3_exact_phi_sums_exact;
          Alcotest.test_case "agrees with float variant" `Quick
            test_fix3_exact_agrees_with_float_success;
        ] );
      ( "fix-rank3-differential",
        fix3_diff_props
        @ [
            Alcotest.test_case "float/exact divergence regression (n=6, seed=0)" `Quick
              test_fix3_float_exact_divergence_regression;
          ] );
      ( "srep-r",
        [
          Alcotest.test_case "clique edges" `Quick test_clique_edges;
          Alcotest.test_case "matches exact r=3" `Quick test_srep_r_matches_exact_r3;
          Alcotest.test_case "known points" `Quick test_srep_r_known_points;
          Alcotest.test_case "solution consistency" `Quick test_srep_r_solution_consistency;
        ] );
      ( "fix-rankr",
        [
          Alcotest.test_case "rank-3 sanity" `Quick test_fix_rankr_on_rank3;
          Alcotest.test_case "rank 4 (Conjecture 1.5)" `Quick test_fix_rankr_rank4;
          Alcotest.test_case "rank 5 (Conjecture 1.5)" `Slow test_fix_rankr_rank5;
        ] );
      ( "moser-tardos",
        [
          Alcotest.test_case "sequential" `Quick test_mt_sequential;
          Alcotest.test_case "parallel" `Quick test_mt_parallel;
          Alcotest.test_case "at-threshold sinkless" `Quick test_mt_at_threshold_sinkless;
          Alcotest.test_case "parallel resample-all" `Quick test_mt_parallel_all;
          Alcotest.test_case "parallel random priorities (CPS)" `Quick test_mt_random_priority;
          Alcotest.test_case "budget" `Quick test_mt_budget;
          Alcotest.test_case "incremental occurring set matches rescan" `Quick
            test_mt_incremental_matches_rescan;
          Alcotest.test_case "priority tie-break selects id-minima" `Quick
            test_mt_priority_tie_break;
          Alcotest.test_case "seed determinism" `Quick test_mt_deterministic_given_seed;
        ] );
      ( "verify",
        [
          Alcotest.test_case "module behaviour" `Quick test_verify_module;
          Alcotest.test_case "best_algorithm branches" `Quick test_best_algorithm_branches;
        ] );
      ( "cond-exp",
        [
          Alcotest.test_case "solves under union bound" `Quick
            test_cond_exp_solves_under_union_bound;
          Alcotest.test_case "criterion is global" `Quick test_cond_exp_criterion_fails_globally;
          Alcotest.test_case "phi never increases" `Quick test_cond_exp_phi_never_increases;
        ] );
      ( "transform",
        [
          Alcotest.test_case "merges shared variables" `Quick test_transform_merges;
          Alcotest.test_case "solve merged + decode" `Quick test_transform_solve_and_decode;
          Alcotest.test_case "identity when unique" `Quick test_transform_identity_when_unique;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "cannot break the fixer" `Quick test_adversary_cannot_break_fixer;
          Alcotest.test_case "bound is a certificate" `Quick test_adversary_bound_is_certificate;
        ] );
      ( "witness-trees",
        [
          Alcotest.test_case "well-formed on real logs" `Quick test_witness_trees_well_formed;
          Alcotest.test_case "first step is a singleton" `Quick test_witness_tree_of_empty_prefix;
          Alcotest.test_case "size histogram" `Quick test_witness_histogram;
          Alcotest.test_case "rejects bad step" `Quick test_witness_rejects_bad_step;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "rank 2" `Quick test_distributed_rank2;
          Alcotest.test_case "rank 3" `Quick test_distributed_rank3;
          Alcotest.test_case "rank r (experimental)" `Quick test_distributed_rankr;
          Alcotest.test_case "moser-tardos" `Quick test_distributed_mt;
          Alcotest.test_case "round scaling" `Slow test_distributed_round_scaling;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "string roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_serial_file_roundtrip;
          Alcotest.test_case "comments" `Quick test_serial_ignores_comments;
          Alcotest.test_case "rejects garbage" `Quick test_serial_rejects_garbage;
          Alcotest.test_case "v2 error paths" `Quick test_serial_v2_error_paths;
          Alcotest.test_case "bad tuples" `Quick test_serial_bad_tuples;
          Alcotest.test_case "binary roundtrip" `Quick test_serial_binary_roundtrip;
          Alcotest.test_case "binary cross-conversion" `Quick test_serial_binary_cross_conversion;
          Alcotest.test_case "binary file roundtrip" `Quick test_serial_binary_file_roundtrip;
          Alcotest.test_case "binary error paths" `Quick test_serial_binary_error_paths;
          Alcotest.test_case "store artifact error paths" `Quick
            test_store_artifact_error_paths;
          Alcotest.test_case "mmap load" `Quick test_serial_binary_mmap;
          Alcotest.test_case "mmap negative values" `Quick test_bin_mmap_negative_values;
        ]
        @ suite_binary_qcheck );
      ( "dist-lll-protocol",
        [
          Alcotest.test_case "solves and accounts rounds" `Quick test_dist_lll_solves;
          Alcotest.test_case "matches sequential driver exactly" `Quick
            test_dist_lll_matches_sequential_driver;
          Alcotest.test_case "rank-2 protocol (Cor 1.2)" `Quick test_dist_lll_rank2_protocol;
          Alcotest.test_case "rank-2 protocol rejects rank 3" `Quick
            test_dist_lll_rank2_rejects_rank3;
          Alcotest.test_case "rejects rank 4" `Quick test_dist_lll_rejects_rank4;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "threshold placement" `Quick test_synthetic_placement;
          Alcotest.test_case "degenerate zero-probability" `Quick
            test_synthetic_degenerate_zero_probability;
          Alcotest.test_case "exponential inside Shearer" `Quick test_exponential_inside_shearer;
          Alcotest.test_case "structure" `Quick test_synthetic_structure;
        ] );
    ]
