(* Tests for the scenario subsystem: the committed baselines must pass
   against a fresh measurement sweep, a deliberately tightened band
   must FAIL the same sweep (the acceptance criterion that the
   regression check has teeth), the JSON artifact must round-trip, and
   losing an O(1) witness must be detected. *)

module Corpus = Lll_scenario.Corpus
module Run = Lll_scenario.Run
module Baseline = Lll_scenario.Baseline

let () = Lll_apps.App_engines.ensure_registered ()

(* One sweep shared by all tests: the committed artifact pins the grid
   and seeds, and everything downstream is deterministic in them.
   `dune runtest` runs the test from test/, `dune exec` from the
   workspace root — accept either. *)
let baseline =
  lazy
    (Baseline.load
       (if Sys.file_exists "../scenario_baselines.json" then "../scenario_baselines.json"
        else "scenario_baselines.json"))

let measurements =
  lazy
    (let b = Lazy.force baseline in
     Run.measure ~grid:b.Baseline.grid ~seeds:b.Baseline.seeds ())

let test_committed_baselines_pass () =
  let b = Lazy.force baseline in
  let ms = Lazy.force measurements in
  match Baseline.check b ms with
  | [] -> ()
  | failures ->
    Alcotest.failf "committed baselines drifted:\n%s" (String.concat "\n" failures)

let test_tightened_band_fails () =
  (* shift every band above its own ceiling: every measured round count
     (previously in [lo, hi]) is now out of band, so the check MUST
     report drift — a check that still passes has no teeth *)
  let b = Lazy.force baseline in
  let tightened =
    {
      b with
      Baseline.entries =
        List.map
          (fun (e : Baseline.entry) ->
            let hi = e.Baseline.band.Baseline.hi in
            { e with Baseline.band = { Baseline.lo = hi + 1; hi = hi + 1 } })
          b.Baseline.entries;
    }
  in
  let failures = Baseline.check tightened (Lazy.force measurements) in
  if failures = [] then Alcotest.fail "tightened bands did not fail the check";
  (* every failure is an out-of-band report, not a missing measurement *)
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "failure mentions a band: %s" f)
        true
        (contains ~sub:"outside band" f))
    failures

let test_single_band_tightening_detected () =
  (* the minimal perturbation: tighten exactly one entry's band *)
  let b = Lazy.force baseline in
  let tightened =
    {
      b with
      Baseline.entries =
        (match b.Baseline.entries with
        | e :: rest ->
          let hi = e.Baseline.band.Baseline.hi in
          { e with Baseline.band = { Baseline.lo = hi + 1; hi = hi + 1 } } :: rest
        | [] -> Alcotest.fail "baseline has no entries");
    }
  in
  let failures = Baseline.check tightened (Lazy.force measurements) in
  Alcotest.(check bool) "exactly the perturbed entry drifts" true (List.length failures >= 1)

let test_witness_loss_detected () =
  let b = Lazy.force baseline in
  Alcotest.(check bool) "baseline carries witnesses" true (List.length b.Baseline.witnesses >= 1);
  (* an engine that never reports rounds on that family: the witness
     check must flag it rather than silently passing *)
  let broken =
    {
      b with
      Baseline.witnesses =
        [ { Baseline.w_family = "sinkless-below"; w_engine = "no-such-engine" } ];
    }
  in
  let failures = Baseline.check broken (Lazy.force measurements) in
  Alcotest.(check bool) "lost witness reported" true (failures <> [])

let test_json_roundtrip () =
  let b = Lazy.force baseline in
  let b' = Baseline.of_json (Baseline.to_json b) in
  Alcotest.(check bool) "roundtrip is the identity" true (b = b')

let test_sub_threshold_families_have_o1_witness () =
  (* the sharp-threshold story: every Below-side family keeps an engine
     within the O(1) cap across the whole grid *)
  let b = Lazy.force baseline in
  let below =
    List.filter_map
      (fun (f : Corpus.family) ->
        if f.Corpus.side = Corpus.Below then Some f.Corpus.name else None)
      Corpus.all
  in
  List.iter
    (fun fam ->
      Alcotest.(check bool)
        (Printf.sprintf "witness for %s" fam)
        true
        (List.exists (fun w -> w.Baseline.w_family = fam) b.Baseline.witnesses))
    below

let test_domains_override_is_invisible () =
  (* the determinism contract at the scenario layer: re-measuring one
     small slice with domains:4 must reproduce the pinned domains:1
     measurements field for field (rounds, ok, record counts, widths) *)
  let b = Lazy.force baseline in
  let grid = [ List.fold_left min max_int b.Baseline.grid ] in
  let seeds = [ List.hd b.Baseline.seeds ] in
  let m1 = Run.measure ~grid ~seeds ~domains:(Some 1) ()
  and m4 = Run.measure ~grid ~seeds ~domains:(Some 4) () in
  Alcotest.(check bool) "domains:4 slice == domains:1 slice" true (m1 = m4)

let test_above_threshold_growth_recorded () =
  (* at-threshold families carry non-constant fitted envelopes for at
     least one randomized distributed engine *)
  let b = Lazy.force baseline in
  let growing =
    List.exists
      (fun g ->
        g.Baseline.g_growth <> "O(1)"
        && List.exists
             (fun (f : Corpus.family) ->
               f.Corpus.name = g.Baseline.g_family && f.Corpus.side = Corpus.At)
             Corpus.all)
      b.Baseline.growth
  in
  Alcotest.(check bool) "some at-threshold series grows" true growing

let () =
  Alcotest.run "lll_scenario"
    [
      ( "baselines",
        [
          Alcotest.test_case "committed baselines pass" `Quick test_committed_baselines_pass;
          Alcotest.test_case "tightened bands fail the check" `Quick test_tightened_band_fails;
          Alcotest.test_case "single tightened band detected" `Quick
            test_single_band_tightening_detected;
          Alcotest.test_case "witness loss detected" `Quick test_witness_loss_detected;
          Alcotest.test_case "JSON round-trips" `Quick test_json_roundtrip;
        ] );
      ( "threshold-story",
        [
          Alcotest.test_case "below families keep O(1) witnesses" `Quick
            test_sub_threshold_families_have_o1_witness;
          Alcotest.test_case "at-threshold growth recorded" `Quick
            test_above_threshold_growth_recorded;
          Alcotest.test_case "domains override leaves measurements intact" `Quick
            test_domains_override_is_invisible;
        ] );
    ]
