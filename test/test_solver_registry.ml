(* Differential tests over the unified solver registry: every registered
   engine, run through the one shared post-condition on random synthetic
   instances below the sharp threshold.

   The qcheck properties are the registry-level restatement of the
   paper's guarantees: wherever an engine's criterion holds, its report
   must verify exactly; sequential engines with a float potential must
   stay within Srep.default_eps of the boundary. *)

module Rat = Lll_num.Rat
module I = Lll_core.Instance
module Srep = Lll_core.Srep
module Syn = Lll_core.Synthetic
module Solver = Lll_core.Solver
module V = Lll_core.Verify
module Metrics = Lll_local.Metrics

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* ------------------------------------------------------------------ *)
(* random below-threshold instances                                     *)
(* ------------------------------------------------------------------ *)

(* rank 2: rings with arity 4 or 8 *)
let gen_rank2 =
  QCheck.Gen.(
    triple (int_range 0 1000) (int_range 8 32) (oneofl [ 4; 8 ])
    >|= fun (seed, n, arity) -> Syn.ring ~seed ~n ~arity ())

(* rank 3: random delta-2 hypergraph structures (n*delta divisible by 3) *)
let gen_rank3 =
  QCheck.Gen.(
    pair (int_range 0 1000) (int_range 3 8)
    >|= fun (seed, k) -> Syn.random ~seed ~n:(3 * k) ~rank:3 ~delta:2 ~arity:8 ())

let arb_inst gen =
  QCheck.make ~print:(fun inst -> Format.asprintf "%a" I.pp inst) gen

(* ------------------------------------------------------------------ *)
(* the differential laws                                                *)
(* ------------------------------------------------------------------ *)

(* Every applicable engine whose criterion holds must produce a report
   that passes exact verification (and its P* claim, via report.ok). *)
let law_guaranteed_engines_verify inst =
  List.for_all
    (fun s ->
      (not (Solver.guarantees s inst))
      ||
      let report = Solver.solve s inst in
      if not report.Solver.ok then
        QCheck.Test.fail_reportf "engine %s: ok=false on %a (violated %s)" (Solver.name s)
          I.pp inst
          (String.concat ","
             (List.map string_of_int report.Solver.verify.V.violated));
      true)
    (Solver.applicable_to inst)

(* Sequential engines with a float potential must stay within the one
   shared tolerance of the S_rep boundary. *)
let law_violations_within_eps inst =
  List.for_all
    (fun s ->
      let caps = Solver.caps s in
      (not (Solver.guarantees s inst)) || caps.Solver.distributed
      ||
      let report = Solver.solve s inst in
      match report.Solver.outcome.Solver.max_violation with
      | None -> true
      | Some v ->
        if v > Srep.default_eps then
          QCheck.Test.fail_reportf "engine %s: max violation %.3e > eps %.1e" (Solver.name s)
            v Srep.default_eps;
        true)
    (Solver.applicable_to inst)

(* Deterministic engines must be deterministic: identical params give
   identical assignments. *)
let law_deterministic_engines_repeat inst =
  List.for_all
    (fun s ->
      (Solver.caps s).Solver.randomized
      || (not (Solver.guarantees s inst))
      ||
      let a1 = (Solver.solve s inst).Solver.outcome.Solver.assignment in
      let a2 = (Solver.solve s inst).Solver.outcome.Solver.assignment in
      let n = I.num_vars inst in
      let same = ref true in
      for v = 0 to n - 1 do
        if Lll_prob.Assignment.value_exn a1 v <> Lll_prob.Assignment.value_exn a2 v then same := false
      done;
      if not !same then
        QCheck.Test.fail_reportf "engine %s: two identical runs disagree" (Solver.name s);
      true)
    (Solver.applicable_to inst)

(* ------------------------------------------------------------------ *)
(* registry unit tests                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_enumerates () =
  let names = Solver.names () in
  Alcotest.(check bool) "at least 8 engines" true (List.length names >= 8);
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      match Solver.find n with
      | Some s -> Alcotest.(check string) "find returns the named engine" n (Solver.name s)
      | None -> Alcotest.fail ("find failed on listed name " ^ n))
    names

let test_registry_rejects_duplicates () =
  let caps =
    {
      Solver.max_rank = Some 0; (* never applicable *)
      exact = false;
      distributed = false;
      randomized = false;
      claims_pstar = false;
    }
  in
  let impl _ _ : Solver.driver = failwith "never run" in
  let _ = Solver.register ~name:"test-dup" ~doc:"test stub" ~caps impl in
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Solver.register: duplicate engine test-dup") (fun () ->
      ignore (Solver.register ~name:"test-dup" ~doc:"test stub" ~caps impl))

let test_inapplicable_rejected () =
  let inst = Syn.random ~seed:1 ~n:9 ~rank:3 ~delta:2 ~arity:8 () in
  let fix2 = Solver.find_exn "fix2" in
  Alcotest.(check bool) "fix2 not applicable to rank 3" false (Solver.applicable fix2 inst);
  (try
     ignore (Solver.solve fix2 inst);
     Alcotest.fail "solve on inapplicable engine must raise"
   with Invalid_argument _ -> ());
  try
    ignore (Solver.create fix2 inst);
    Alcotest.fail "create on inapplicable engine must raise"
  with Invalid_argument _ -> ()

let test_session_stepping () =
  let inst = Syn.ring ~seed:7 ~n:12 ~arity:4 () in
  let session = Solver.create (Solver.find_exn "fix2") inst in
  let steps = ref 0 in
  while Solver.step session do
    incr steps
  done;
  Alcotest.(check bool) "finished" true (Solver.finished session);
  Alcotest.(check int) "one step per variable" (I.num_vars inst) (List.length (Solver.trace session));
  let outcome = Solver.outcome session in
  Alcotest.(check bool) "stepped assignment verifies" true
    (V.avoids_all inst outcome.Solver.assignment);
  (* the incremental run must land on the one-shot run's assignment *)
  let oneshot = Solver.solve_by_name "fix2" inst in
  for v = 0 to I.num_vars inst - 1 do
    Alcotest.(check int)
      (Printf.sprintf "var %d agrees with one-shot" v)
      (Lll_prob.Assignment.value_exn oneshot.Solver.outcome.Solver.assignment v)
      (Lll_prob.Assignment.value_exn outcome.Solver.assignment v)
  done

let test_metrics_threaded () =
  let inst = Syn.ring ~seed:3 ~n:10 ~arity:4 () in
  let sink = Metrics.buffer () in
  let params = { Solver.default_params with Solver.metrics = sink } in
  let report = Solver.solve ~params (Solver.find_exn "fix3") inst in
  Alcotest.(check bool) "solved" true report.Solver.ok;
  let recs = Metrics.records sink in
  Alcotest.(check int) "one record per fixing step" (I.num_vars inst) (List.length recs);
  List.iter
    (fun r ->
      Alcotest.(check string) "phase tagged" "fix-rank3" r.Metrics.phase;
      Alcotest.(check int) "sequential steps touch one variable" 1 r.Metrics.stepped)
    recs

let test_trace_incs_exact () =
  (* the uniform trace must carry the exact Inc ratios: on a strictly
     below-threshold ring every chosen value has Inc <= 2 per event *)
  let inst = Syn.ring ~seed:5 ~n:10 ~arity:4 () in
  let report = Solver.solve_by_name "fix2" inst in
  let two = Rat.of_ints 2 1 in
  List.iter
    (fun (s : Solver.step) ->
      Alcotest.(check bool) "incs recorded" true (s.Solver.incs <> []);
      List.iter
        (fun (_, inc) ->
          Alcotest.(check bool) "Inc <= 2 (the proof's discipline)" true
            (Rat.leq inc two))
        s.Solver.incs)
    report.Solver.outcome.Solver.trace

let test_shared_postcondition_catches_failure () =
  (* union-bound outside its criterion may fail: the report must say so
     instead of silently claiming success *)
  let inst = Syn.ring ~seed:2 ~n:40 ~arity:4 () in
  let ub = Solver.find_exn "union-bound" in
  Alcotest.(check bool) "criterion fails on a long ring" false (Solver.guarantees ub inst);
  let report = Solver.solve ub inst in
  Alcotest.(check bool) "report.ok mirrors exact verification" report.Solver.verify.V.ok
    report.Solver.ok

(* A dumped instance, reloaded, must be solved identically by every
   deterministic engine — the serialized form carries the exact
   distributions and bad sets, so the fixing processes cannot diverge. *)
let law_roundtrip_solves_identically inst =
  let inst' = Lll_core.Serial.of_string (Lll_core.Serial.to_string inst) in
  List.for_all
    (fun s ->
      (Solver.caps s).Solver.randomized
      || (Solver.caps s).Solver.distributed
      || (not (Solver.guarantees s inst))
      ||
      let a1 = (Solver.solve s inst).Solver.outcome.Solver.assignment in
      let a2 = (Solver.solve s inst').Solver.outcome.Solver.assignment in
      for v = 0 to I.num_vars inst - 1 do
        if Lll_prob.Assignment.value_exn a1 v <> Lll_prob.Assignment.value_exn a2 v then
          QCheck.Test.fail_reportf "engine %s: reloaded instance solved differently at var %d"
            (Solver.name s) v
      done;
      true)
    (Solver.applicable_to inst)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "solver_registry"
    [
      ( "registry",
        [
          Alcotest.test_case "enumerates engines" `Quick test_registry_enumerates;
          Alcotest.test_case "rejects duplicates" `Quick test_registry_rejects_duplicates;
          Alcotest.test_case "rejects inapplicable instances" `Quick test_inapplicable_rejected;
          Alcotest.test_case "session stepping" `Quick test_session_stepping;
          Alcotest.test_case "metrics threaded through sequential fixers" `Quick
            test_metrics_threaded;
          Alcotest.test_case "trace carries exact Inc ratios" `Quick test_trace_incs_exact;
          Alcotest.test_case "post-condition catches failures" `Quick
            test_shared_postcondition_catches_failure;
        ] );
      ( "differential",
        [
          prop "guaranteed engines verify (rank 2)" 10 (arb_inst gen_rank2)
            law_guaranteed_engines_verify;
          prop "guaranteed engines verify (rank 3)" 8 (arb_inst gen_rank3)
            law_guaranteed_engines_verify;
          prop "float violations within eps (rank 2)" 10 (arb_inst gen_rank2)
            law_violations_within_eps;
          prop "float violations within eps (rank 3)" 8 (arb_inst gen_rank3)
            law_violations_within_eps;
          prop "deterministic engines repeat (rank 2)" 6 (arb_inst gen_rank2)
            law_deterministic_engines_repeat;
          prop "deterministic engines repeat (rank 3)" 5 (arb_inst gen_rank3)
            law_deterministic_engines_repeat;
          prop "serialize round-trip solves identically (rank 2)" 6 (arb_inst gen_rank2)
            law_roundtrip_solves_identically;
          prop "serialize round-trip solves identically (rank 3)" 5 (arb_inst gen_rank3)
            law_roundtrip_solves_identically;
        ] );
    ]
