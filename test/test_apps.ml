(* Tests for the application layer: sinkless orientation, hypergraph
   multi-orientation and weak splitting. *)

module R = Lll_num.Rat
module G = Lll_graph.Graph
module Gen = Lll_graph.Generators
module HG = Lll_graph.Hypergraph
module A = Lll_prob.Assignment
module I = Lll_core.Instance
module Crit = Lll_core.Criteria
module F2 = Lll_core.Fix_rank2
module F3 = Lll_core.Fix_rank3
module MT = Lll_core.Moser_tardos
module D = Lll_core.Distributed
module V = Lll_core.Verify
module Solver = Lll_core.Solver
module Sink = Lll_apps.Sinkless
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting

let rat = Alcotest.testable R.pp R.equal

(* ------------------------------------------------------------------ *)
(* Sinkless orientation                                                 *)
(* ------------------------------------------------------------------ *)

let test_sinkless_at_threshold_probability () =
  let g = Gen.random_regular ~seed:1 12 3 in
  let inst = Sink.instance g in
  Alcotest.check rat "p = 2^-3" (R.pow2 (-3)) (I.max_prob inst);
  Alcotest.(check int) "d = 3" 3 (I.dependency_degree inst);
  Alcotest.(check int) "rank 2" 2 (I.rank inst);
  let rep = Crit.evaluate inst in
  Alcotest.(check bool) "exponential criterion FAILS at threshold" false
    (List.assoc Crit.Exponential rep.Crit.satisfied);
  Alcotest.check rat "ratio exactly 1" R.one
    (Crit.threshold_ratio ~p:rep.Crit.p ~d:rep.Crit.d)

let test_sinkless_relaxed_below_threshold () =
  let g = Gen.random_regular ~seed:1 12 3 in
  let inst = Sink.relaxed_instance g in
  Alcotest.check rat "p = 3^-3" (R.of_ints 1 27) (I.max_prob inst);
  let rep = Crit.evaluate inst in
  Alcotest.(check bool) "below threshold" true
    (List.assoc Crit.Exponential rep.Crit.satisfied)

let test_sinkless_relaxed_solvable_everywhere () =
  List.iter
    (fun (g, name) ->
      let inst = Sink.relaxed_instance g in
      let a, _ = F2.solve inst in
      Alcotest.(check bool) (name ^ " fixer") true (V.avoids_all inst a);
      Alcotest.(check bool) (name ^ " sinkless") true (Sink.is_sinkless g a);
      let r = D.solve_rank2 inst in
      Alcotest.(check bool) (name ^ " distributed") true r.D.ok)
    [
      (Gen.cycle 17, "odd cycle");
      (Gen.random_regular ~seed:2 16 4, "rr4");
      (Gen.torus 4 4, "torus");
      (Gen.complete 6, "K6");
    ]

let test_sinkless_points_at () =
  let g = Gen.path 3 in
  (* edge 0 = (0,1), edge 1 = (1,2) *)
  Alcotest.(check bool) "to min" true (Sink.points_at g 0 0 0);
  Alcotest.(check bool) "not to max" false (Sink.points_at g 0 0 1);
  Alcotest.(check bool) "to max" true (Sink.points_at g 0 1 1);
  Alcotest.(check bool) "unoriented" false (Sink.points_at g 0 2 0)

let test_sinkless_checker () =
  let g = Gen.path 3 in
  (* both edges point at node 1 -> node 1 is a sink *)
  let a = A.of_list 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "sink detected" false (Sink.is_sinkless g a);
  (* a 3-path can NEVER be sinkless: some node always ends up a sink *)
  let ok = ref false in
  for v0 = 0 to 1 do
    for v1 = 0 to 1 do
      if Sink.is_sinkless g (A.of_list 2 [ (0, v0); (1, v1) ]) then ok := true
    done
  done;
  Alcotest.(check bool) "paths unsolvable" false !ok;
  (* a cyclically oriented cycle has no sink *)
  let c = Gen.cycle 3 in
  (* edge ids of cycle 3: 0=(0,1), 1=(1,2), 2=(0,2); orient 0->1->2->0 *)
  let a = A.of_list 3 [ (0, 1) (* 0->1 *); (1, 1) (* 1->2 *); (2, 0) (* 2->0 *) ] in
  Alcotest.(check bool) "cycle no sink" true (Sink.is_sinkless c a)

let test_adversarial_assignment_creates_sink () =
  (* the T5 witness: orienting everything toward a victim node makes it a
     sink, showing the fixing discipline's bound is tight at p = 2^-d *)
  List.iter
    (fun (g, victim, name) ->
      let a = Sink.adversarial_path_assignment g ~victim in
      Alcotest.(check bool) (name ^ " complete") true (A.is_complete a);
      Alcotest.(check bool) (name ^ " sink created") false (Sink.is_sinkless g a);
      let inst = Sink.instance g in
      Alcotest.(check bool)
        (name ^ " the victim's bad event occurs")
        true
        (List.mem victim (V.occurring_events inst a)))
    [ (Gen.path 7, 3, "path"); (Gen.cycle 9, 0, "cycle"); (Gen.grid 4 4, 5, "grid") ]

let test_sinkless_orientations_decode () =
  let g = Gen.path 3 in
  let a = A.of_list 2 [ (0, 0); (1, 2) ] in
  let o = Sink.orientations g a in
  Alcotest.(check bool) "decode" true (o = [| Sink.To_min; Sink.Unoriented |])

(* ------------------------------------------------------------------ *)
(* Hypergraph multi-orientation                                         *)
(* ------------------------------------------------------------------ *)

let test_hyper_orientation_criterion () =
  let h = Gen.random_regular_hypergraph ~seed:5 18 3 3 in
  let inst = HO.instance h in
  Alcotest.(check int) "rank" 3 (I.rank inst);
  let rep = Crit.evaluate inst in
  Alcotest.(check bool) "below threshold" true
    (List.assoc Crit.Exponential rep.Crit.satisfied);
  (* delta-regular rank-3: p = 3q^2(1-q) + q^3, q = 3^-delta *)
  let q = R.of_ints 1 27 in
  let expected =
    R.add
      (R.mul (R.of_int 3) (R.mul (R.mul q q) (R.sub R.one q)))
      (R.mul q (R.mul q q))
  in
  Alcotest.check rat "closed-form p" expected rep.Crit.p

let test_hyper_orientation_solved () =
  for seed = 0 to 3 do
    let h = Gen.random_regular_hypergraph ~seed 15 3 3 in
    let inst = HO.instance h in
    let a, t = F3.solve inst in
    Alcotest.(check bool) (Printf.sprintf "seed %d avoids" seed) true (V.avoids_all inst a);
    Alcotest.(check bool) (Printf.sprintf "seed %d valid" seed) true (HO.is_valid h a);
    Alcotest.(check bool) (Printf.sprintf "seed %d pstar" seed) true (F3.pstar_holds t)
  done

let test_hyper_orientation_distributed () =
  let h = Gen.random_regular_hypergraph ~seed:9 15 3 3 in
  let inst = HO.instance h in
  let r = D.solve_rank3 inst in
  Alcotest.(check bool) "distributed ok" true r.D.ok;
  Alcotest.(check bool) "valid orientations" true (HO.is_valid h r.D.assignment)

let test_heads_encoding () =
  let heads = HO.heads_of_value ~card:3 (2 + (3 * 1) + (9 * 0)) in
  Alcotest.(check (array int)) "decode" [| 2; 1; 0 |] heads;
  (* encoding covers all 27 values bijectively *)
  let seen = Hashtbl.create 27 in
  for v = 0 to 26 do
    Hashtbl.replace seen (Array.to_list (HO.heads_of_value ~card:3 v)) ()
  done;
  Alcotest.(check int) "bijective" 27 (Hashtbl.length seen)

let test_hyper_orientation_checker () =
  (* a 2-edge, rank-2-ish... use a tiny rank-3 hypergraph: one edge {0,1,2} *)
  let h = HG.create ~n:3 [ [ 0; 1; 2 ] ] in
  (* heads all = member 0 (node 0): node 0 is a sink in all 3 orientations *)
  let a = A.of_list 1 [ (0, 0) ] in
  Alcotest.(check bool) "triple sink invalid" false (HO.is_valid h a);
  (* heads 0,1,2: node 0 sink only in orientation 0 *)
  let v = 0 + (3 * 1) + (9 * 2) in
  let a = A.of_list 1 [ (0, v) ] in
  Alcotest.(check bool) "spread heads valid" true (HO.is_valid h a)

let test_hyper_orientation_rejects_rank4 () =
  let h = HG.create ~n:4 [ [ 0; 1; 2; 3 ] ] in
  Alcotest.check_raises "rank4" (Invalid_argument "Hyper_orientation.instance: rank > 3")
    (fun () -> ignore (HO.instance h))

(* ------------------------------------------------------------------ *)
(* Weak splitting                                                       *)
(* ------------------------------------------------------------------ *)

let test_weak_splitting_criterion () =
  let adj = Gen.random_biregular_bipartite ~seed:13 ~nv:20 ~nu:20 ~deg_u:3 ~deg_v:3 in
  let inst = WS.instance ~nv:20 adj in
  Alcotest.(check int) "rank" 3 (I.rank inst);
  let rep = Crit.evaluate inst in
  (* p = 16^(1-3) = 1/256 *)
  Alcotest.check rat "p" (R.of_ints 1 256) rep.Crit.p;
  Alcotest.(check bool) "below threshold" true
    (List.assoc Crit.Exponential rep.Crit.satisfied)

let test_weak_splitting_solved () =
  for seed = 0 to 3 do
    let adj = Gen.random_biregular_bipartite ~seed ~nv:16 ~nu:16 ~deg_u:3 ~deg_v:3 in
    let inst = WS.instance ~nv:16 adj in
    let a, _ = F3.solve inst in
    Alcotest.(check bool) (Printf.sprintf "seed %d avoids" seed) true (V.avoids_all inst a);
    Alcotest.(check bool) (Printf.sprintf "seed %d valid" seed) true (WS.is_valid ~nv:16 adj a)
  done

let test_weak_splitting_distributed () =
  let adj = Gen.random_biregular_bipartite ~seed:17 ~nv:16 ~nu:16 ~deg_u:3 ~deg_v:3 in
  let inst = WS.instance ~nv:16 adj in
  let r = D.solve_rank3 inst in
  Alcotest.(check bool) "ok" true r.D.ok;
  Alcotest.(check bool) "valid" true (WS.is_valid ~nv:16 adj r.D.assignment)

let test_weak_splitting_checker () =
  let adj = [| [| 0 |]; [| 0 |] |] in
  (* v0 sees u0,u1; same color -> invalid, different -> valid *)
  Alcotest.(check bool) "monochromatic" false
    (WS.is_valid ~nv:1 adj (A.of_list 2 [ (0, 3); (1, 3) ]));
  Alcotest.(check bool) "bichromatic" true
    (WS.is_valid ~nv:1 adj (A.of_list 2 [ (0, 3); (1, 4) ]))

let test_weak_splitting_custom_params () =
  (* 4 colors, see >= 2; deg_v = 4 so p = 4^(1-4) = 1/64 < 2^-d? d <= 8;
     2^-8 = 1/256 > 1/64 FAILS -> need more colors; use 32 colors:
     p = 32^-3 = 1/32768 < 2^-8. *)
  let params = { WS.colors = 32; min_seen = 2 } in
  let adj = Gen.random_biregular_bipartite ~seed:19 ~nv:12 ~nu:16 ~deg_u:3 ~deg_v:4 in
  let inst = WS.instance ~params ~nv:12 adj in
  let rep = Crit.evaluate inst in
  Alcotest.(check bool) "below" true (List.assoc Crit.Exponential rep.Crit.satisfied);
  let a, _ = F3.solve inst in
  Alcotest.(check bool) "valid" true (WS.is_valid ~params ~nv:12 adj a)

let test_weak_splitting_rejects () =
  Alcotest.check_raises "colors" (Invalid_argument "Weak_splitting.instance: need >= 2 colors")
    (fun () -> ignore (WS.instance ~params:{ WS.colors = 1; min_seen = 1 } ~nv:1 [| [| 0 |] |]))

(* ------------------------------------------------------------------ *)
(* Frugal coloring                                                      *)
(* ------------------------------------------------------------------ *)

module FC = Lll_apps.Frugal_coloring

let test_frugal_overloaded () =
  Alcotest.(check bool) "triple" true (FC.overloaded ~max_per_color:2 [ 5; 5; 5 ]);
  Alcotest.(check bool) "pair ok" false (FC.overloaded ~max_per_color:2 [ 5; 5; 7 ]);
  Alcotest.(check bool) "empty" false (FC.overloaded ~max_per_color:1 []);
  Alcotest.(check bool) "strict" true (FC.overloaded ~max_per_color:1 [ 3; 3 ])

let test_frugal_criterion_and_solve () =
  (* degree-3 rank-3 hypergraph, 16 colors, <= 2 per color: the bad event
     is "all three incident edges share a color": p = 16^-2 *)
  let h = Gen.random_regular_hypergraph ~seed:3 15 3 3 in
  let inst = FC.instance h in
  let rep = Crit.evaluate inst in
  Alcotest.check rat "p" (R.of_ints 1 256) rep.Crit.p;
  Alcotest.(check bool) "below threshold" true
    (List.assoc Crit.Exponential rep.Crit.satisfied);
  let a, t = F3.solve inst in
  Alcotest.(check bool) "avoids" true (V.avoids_all inst a);
  Alcotest.(check bool) "valid frugal coloring" true (FC.is_valid h a);
  Alcotest.(check bool) "pstar" true (F3.pstar_holds t)

let test_frugal_small_palette () =
  (* non-power-of-two palette: 10 colors, degree 3, <= 2 per color:
     p = 10^-2 < 2^-6 *)
  let h = Gen.random_regular_hypergraph ~seed:5 12 3 3 in
  let params = { FC.colors = 10; max_per_color = 2 } in
  let inst = FC.instance ~params h in
  let rep = Crit.evaluate inst in
  Alcotest.check rat "p = 1/100" (R.of_ints 1 100) rep.Crit.p;
  Alcotest.(check bool) "below threshold" true
    (List.assoc Crit.Exponential rep.Crit.satisfied);
  let a, _ = F3.solve inst in
  Alcotest.(check bool) "valid" true (FC.is_valid ~params h a)

let test_frugal_rejects () =
  let h = Lll_graph.Hypergraph.create ~n:4 [ [ 0; 1; 2; 3 ] ] in
  Alcotest.check_raises "rank" (Invalid_argument "Frugal_coloring.instance: rank > 3") (fun () ->
      ignore (FC.instance h))

(* ------------------------------------------------------------------ *)
(* Property B                                                           *)
(* ------------------------------------------------------------------ *)

module PB = Lll_apps.Property_b

let test_property_b_above_threshold () =
  (* 4-uniform, 2-regular (linear-ish): p = 2^-3, d <= 4 -> p*2^d = 2 *)
  let h = Gen.random_regular_hypergraph ~seed:2 16 4 2 in
  let inst = PB.instance h in
  Alcotest.check rat "p = 1/8" (R.of_ints 1 8) (I.max_prob inst);
  let rep = Crit.evaluate inst in
  Alcotest.(check bool) "above the threshold" false
    (List.assoc Crit.Exponential rep.Crit.satisfied);
  (* ... but Moser-Tardos solves it *)
  let a, _ = MT.solve_parallel ~seed:3 inst in
  Alcotest.(check bool) "MT proper" true (PB.is_proper h a)

let test_property_b_relaxed_below () =
  let h = Gen.random_regular_hypergraph ~seed:2 16 4 2 in
  let inst = PB.relaxed_instance h in
  Alcotest.check rat "p = 2/81" (R.of_ints 2 81) (I.max_prob inst);
  let rep = Crit.evaluate inst in
  Alcotest.(check bool) "below the threshold" true
    (List.assoc Crit.Exponential rep.Crit.satisfied);
  Alcotest.(check bool) "rank = node degree" true (I.rank inst = 2);
  let a, t = F2.solve inst in
  Alcotest.(check bool) "fixer solves" true (V.avoids_all inst a);
  Alcotest.(check bool) "proper coloring" true (PB.is_proper h a);
  Alcotest.(check bool) "pstar" true (F2.pstar_holds t)

let test_property_b_degree3 () =
  (* node degree 3 -> rank 3: needs the rank-3 fixer; k = 5 keeps p low
     enough: p = 2*3^-5 = 2/243, d <= 5*2 = 10 ... too tight? check
     exactly and only solve when the criterion holds *)
  let h = Gen.random_regular_hypergraph ~seed:4 15 5 3 in
  let inst = PB.relaxed_instance h in
  Alcotest.(check int) "rank 3" 3 (I.rank inst);
  let rep = Crit.evaluate inst in
  if List.assoc Crit.Exponential rep.Crit.satisfied then begin
    let a, _ = F3.solve inst in
    Alcotest.(check bool) "solved" true (PB.is_proper h a)
  end
  else begin
    (* still solvable by MT under its criterion *)
    let a, _ = MT.solve_parallel ~seed:5 inst in
    Alcotest.(check bool) "MT solved" true (PB.is_proper h a)
  end

let test_property_b_checker () =
  let h = HG.create ~n:3 [ [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "mono bad" false (PB.is_proper h (A.of_list 3 [ (0, 1); (1, 1); (2, 1) ]));
  Alcotest.(check bool) "bichromatic ok" true
    (PB.is_proper h (A.of_list 3 [ (0, 1); (1, 0); (2, 1) ]));
  Alcotest.(check bool) "abstain breaks mono" true
    (PB.is_proper h (A.of_list 3 [ (0, 2); (1, 2); (2, 2) ]))

(* ------------------------------------------------------------------ *)
(* Cross-application properties                                          *)
(* ------------------------------------------------------------------ *)

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let app_props =
  [
    prop "relaxed sinkless always below threshold and solvable" 10
      (QCheck.make QCheck.Gen.(pair (int_range 0 1000) (int_range 4 10)))
      (fun (seed, half_n) ->
        let g = Gen.random_regular ~seed (2 * half_n) 3 in
        let inst = Sink.relaxed_instance g in
        let rep = Crit.evaluate inst in
        List.assoc Crit.Exponential rep.Crit.satisfied
        &&
        let a, _ = F2.solve inst in
        V.avoids_all inst a && Sink.is_sinkless g a);
    prop "MT also solves relaxed sinkless" 10
      (QCheck.make QCheck.Gen.(int_range 0 1000))
      (fun seed ->
        let g = Gen.random_regular ~seed 14 3 in
        let inst = Sink.relaxed_instance g in
        let a, _ = MT.solve_parallel ~seed:(seed + 1) inst in
        Sink.is_sinkless g a);
    prop "weak splitting solutions valid across seeds" 8
      (QCheck.make QCheck.Gen.(int_range 0 1000))
      (fun seed ->
        let adj = Gen.random_biregular_bipartite ~seed ~nv:12 ~nu:12 ~deg_u:3 ~deg_v:3 in
        let inst = WS.instance ~nv:12 adj in
        let a, _ = F3.solve inst in
        WS.is_valid ~nv:12 adj a);
  ]

(* ------------------------------------------------------------------ *)
(* Model-checked output validity, 200 cases per application             *)
(* ------------------------------------------------------------------ *)

(* Every application: a seeded random structure, a solver run, and the
   application's own model checker as the oracle — never the solver's
   self-reported verdict alone. *)

let () = Lll_apps.App_engines.ensure_registered ()

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000)

let model_check_props =
  [
    prop "sinkless: engine orientations are sinkless" 200 seed_arb (fun seed ->
        (* cycles and random cubic graphs; every component has a cycle,
           so the binary at-threshold instance is always solvable *)
        let g =
          if seed mod 2 = 0 then Gen.cycle (4 + (seed mod 9))
          else Gen.random_regular ~seed (2 * (4 + (seed mod 4))) 3
        in
        let report = Solver.solve_by_name "sinkless-orient" (Sink.instance g) in
        report.Solver.ok
        && V.avoids_all (Sink.instance g) report.Solver.outcome.Solver.assignment
        && Sink.is_sinkless g report.Solver.outcome.Solver.assignment);
    prop "weak splitting: greedy engine 2-colors every view" 200 seed_arb (fun seed ->
        let nv = 6 + (seed mod 7) in
        let adj = Gen.random_biregular_bipartite ~seed ~nv ~nu:nv ~deg_u:3 ~deg_v:3 in
        let report = Solver.solve_by_name "weak-split-greedy" (WS.instance ~nv adj) in
        report.Solver.ok && WS.is_valid ~nv adj report.Solver.outcome.Solver.assignment);
    prop "frugal coloring: fixer output respects the load cap" 200 seed_arb (fun seed ->
        let n = [| 9; 12; 15 |].(seed mod 3) in
        let h = Gen.random_regular_hypergraph ~seed n 3 3 in
        let inst = FC.instance h in
        let a, _ = F3.solve inst in
        V.avoids_all inst a && FC.is_valid h a);
    prop "property B: relaxed 2-coloring is proper" 200 seed_arb (fun seed ->
        let n = [| 12; 16; 20 |].(seed mod 3) in
        let h = Gen.random_regular_hypergraph ~seed n 4 2 in
        let inst = PB.relaxed_instance h in
        let a, _ = F2.solve inst in
        V.avoids_all inst a && PB.is_proper h a);
    prop "hyper orientation: fixer output leaves no sink" 200 seed_arb (fun seed ->
        let n = [| 9; 12; 15 |].(seed mod 3) in
        let h = Gen.random_regular_hypergraph ~seed n 3 3 in
        let inst = HO.instance h in
        let a, _ = F3.solve inst in
        V.avoids_all inst a && HO.is_valid h a);
  ]

let () =
  Alcotest.run "lll_apps"
    [
      ( "sinkless",
        [
          Alcotest.test_case "at-threshold probability" `Quick test_sinkless_at_threshold_probability;
          Alcotest.test_case "relaxed below threshold" `Quick test_sinkless_relaxed_below_threshold;
          Alcotest.test_case "relaxed solvable" `Quick test_sinkless_relaxed_solvable_everywhere;
          Alcotest.test_case "points_at" `Quick test_sinkless_points_at;
          Alcotest.test_case "checker" `Quick test_sinkless_checker;
          Alcotest.test_case "adversarial sink (T5 witness)" `Quick
            test_adversarial_assignment_creates_sink;
          Alcotest.test_case "orientation decode" `Quick test_sinkless_orientations_decode;
        ] );
      ( "hyper-orientation",
        [
          Alcotest.test_case "criterion" `Quick test_hyper_orientation_criterion;
          Alcotest.test_case "solved by rank-3 fixer" `Quick test_hyper_orientation_solved;
          Alcotest.test_case "distributed" `Quick test_hyper_orientation_distributed;
          Alcotest.test_case "heads encoding" `Quick test_heads_encoding;
          Alcotest.test_case "checker" `Quick test_hyper_orientation_checker;
          Alcotest.test_case "rejects rank 4" `Quick test_hyper_orientation_rejects_rank4;
        ] );
      ( "weak-splitting",
        [
          Alcotest.test_case "criterion" `Quick test_weak_splitting_criterion;
          Alcotest.test_case "solved by rank-3 fixer" `Quick test_weak_splitting_solved;
          Alcotest.test_case "distributed" `Quick test_weak_splitting_distributed;
          Alcotest.test_case "checker" `Quick test_weak_splitting_checker;
          Alcotest.test_case "custom params" `Quick test_weak_splitting_custom_params;
          Alcotest.test_case "rejects" `Quick test_weak_splitting_rejects;
        ] );
      ( "property-b",
        [
          Alcotest.test_case "binary is above threshold" `Quick test_property_b_above_threshold;
          Alcotest.test_case "ternary is below" `Quick test_property_b_relaxed_below;
          Alcotest.test_case "degree 3 / rank 3" `Quick test_property_b_degree3;
          Alcotest.test_case "checker" `Quick test_property_b_checker;
        ] );
      ( "frugal-coloring",
        [
          Alcotest.test_case "overloaded predicate" `Quick test_frugal_overloaded;
          Alcotest.test_case "criterion + solve" `Quick test_frugal_criterion_and_solve;
          Alcotest.test_case "small non-power-of-two palette" `Quick test_frugal_small_palette;
          Alcotest.test_case "rejects rank 4" `Quick test_frugal_rejects;
        ] );
      ("properties", app_props);
      ("model-check", model_check_props);
    ]
