(* Tests for the graph substrate: graphs, hypergraphs, generators and the
   coloring algorithms. *)

module G = Lll_graph.Graph
module H = Lll_graph.Hypergraph
module Gen = Lll_graph.Generators
module Col = Lll_graph.Coloring
module Lin = Lll_graph.Linial
module CV = Lll_graph.Cole_vishkin
module EC = Lll_graph.Edge_coloring
module P = Lll_graph.Primes

(* ------------------------------------------------------------------ *)
(* Graph basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_create_dedup () =
  let g = G.create ~n:3 [ (0, 1); (1, 0); (1, 2) ] in
  Alcotest.(check int) "m" 2 (G.m g);
  Alcotest.(check int) "deg 1" 2 (G.degree g 1)

let test_create_rejects () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.create: self-loop") (fun () ->
      ignore (G.create ~n:2 [ (1, 1) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.create: node out of range") (fun () ->
      ignore (G.create ~n:2 [ (0, 2) ]))

let test_endpoints_normalised () =
  let g = G.create ~n:4 [ (3, 1) ] in
  Alcotest.(check (pair int int)) "sorted" (1, 3) (G.endpoints g 0);
  Alcotest.(check int) "other" 3 (G.other_endpoint g 0 1);
  Alcotest.(check int) "other'" 1 (G.other_endpoint g 0 3)

let test_find_edge () =
  let g = Gen.cycle 5 in
  (match G.find_edge g 0 1 with
  | Some e ->
    let u, v = G.endpoints g e in
    Alcotest.(check (pair int int)) "endpoints" (0, 1) (u, v)
  | None -> Alcotest.fail "edge 0-1 missing");
  Alcotest.(check bool) "non-adjacent" true (G.find_edge g 0 2 = None)

let test_square () =
  let g = Gen.path 5 in
  let sq = G.square g in
  Alcotest.(check bool) "dist1" true (G.mem_edge sq 0 1);
  Alcotest.(check bool) "dist2" true (G.mem_edge sq 0 2);
  Alcotest.(check bool) "dist3 absent" false (G.mem_edge sq 0 3);
  Alcotest.(check int) "max degree" 4 (G.max_degree sq)

let test_line_graph () =
  let g = Gen.star 5 in
  (* line graph of a star is complete on its edges *)
  let lg = G.line_graph g in
  Alcotest.(check int) "nodes" (G.m g) (G.n lg);
  Alcotest.(check int) "complete" (4 * 3 / 2) (G.m lg)

let test_bfs () =
  let g = Gen.path 6 in
  let d = G.bfs_dist g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |] d

let test_components () =
  let g = G.create ~n:5 [ (0, 1); (2, 3) ] in
  let count, comp = G.connected_components g in
  Alcotest.(check int) "count" 3 count;
  Alcotest.(check bool) "same comp" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "diff comp" true (comp.(0) <> comp.(2));
  Alcotest.(check bool) "connected" false (G.is_connected g);
  Alcotest.(check bool) "cycle connected" true (G.is_connected (Gen.cycle 7))

let test_girth () =
  Alcotest.(check (option int)) "cycle" (Some 7) (G.girth (Gen.cycle 7));
  Alcotest.(check (option int)) "tree" None (G.girth (Gen.path 9));
  Alcotest.(check (option int)) "complete" (Some 3) (G.girth (Gen.complete 5));
  Alcotest.(check (option int)) "grid" (Some 4) (G.girth (Gen.grid 3 3));
  Alcotest.(check (option int)) "hypercube" (Some 4) (G.girth (Gen.hypercube 4))

let test_to_dot () =
  let g = Gen.path 3 in
  let dot = G.to_dot g in
  Alcotest.(check bool) "header" true (String.length dot > 0 && String.sub dot 0 7 = "graph g");
  Alcotest.(check bool) "edge listed" true
    (let re = "0 -- 1" in
     let rec contains i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let test_other_endpoint_rejects () =
  let g = Gen.path 3 in
  (try
     ignore (G.other_endpoint g 0 2);
     Alcotest.fail "no error"
   with Invalid_argument _ -> ())

let test_empty_graph () =
  let g = G.create ~n:0 [] in
  Alcotest.(check int) "n" 0 (G.n g);
  Alcotest.(check int) "components" 0 (fst (G.connected_components g));
  Alcotest.(check bool) "connected (vacuous)" true (G.is_connected g);
  Alcotest.(check int) "max degree" 0 (G.max_degree g)

let test_line_graph_of_cycle () =
  (* the line graph of a cycle is a cycle of the same length *)
  let g = Gen.cycle 8 in
  let lg = G.line_graph g in
  Alcotest.(check int) "n" 8 (G.n lg);
  Alcotest.(check int) "m" 8 (G.m lg);
  Alcotest.(check int) "2-regular" 2 (G.max_degree lg);
  Alcotest.(check (option int)) "girth" (Some 8) (G.girth lg)

let test_square_of_cycle () =
  let g = Gen.cycle 8 in
  let sq = G.square g in
  Alcotest.(check int) "4-regular" 4 (G.max_degree sq);
  Alcotest.(check int) "m doubled" 16 (G.m sq)

(* ------------------------------------------------------------------ *)
(* Hypergraphs                                                          *)
(* ------------------------------------------------------------------ *)

let test_hypergraph_basics () =
  let h = H.create ~n:5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 4 ] ] in
  Alcotest.(check int) "rank" 3 (H.rank h);
  Alcotest.(check int) "deg 2" 2 (H.degree h 2);
  Alcotest.(check (list int)) "incident 2" [ 0; 1 ] (H.incident h 2);
  let pg = H.primal_graph h in
  Alcotest.(check bool) "0-1" true (G.mem_edge pg 0 1);
  Alcotest.(check bool) "2-3" true (G.mem_edge pg 2 3);
  Alcotest.(check bool) "0-3 absent" false (G.mem_edge pg 0 3);
  Alcotest.(check int) "isolated" 0 (G.degree pg 4)

let test_hypergraph_to_dot () =
  let h = H.create ~n:3 [ [ 0; 1; 2 ] ] in
  let dot = H.to_dot h in
  Alcotest.(check bool) "has box node" true
    (let re = "shape=box" in
     let rec contains i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let test_hypergraph_rejects () =
  Alcotest.check_raises "empty edge" (Invalid_argument "Hypergraph.create: empty hyperedge")
    (fun () -> ignore (H.create ~n:2 [ [] ]))

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_shapes () =
  let g = Gen.cycle 9 in
  Alcotest.(check int) "cycle m" 9 (G.m g);
  Alcotest.(check int) "cycle deg" 2 (G.max_degree g);
  let g = Gen.torus 4 5 in
  Alcotest.(check int) "torus m" 40 (G.m g);
  Alcotest.(check bool) "torus 4-regular" true
    (List.for_all (fun v -> G.degree g v = 4) (List.init (G.n g) (fun i -> i)));
  let g = Gen.grid 4 3 in
  Alcotest.(check int) "grid m" ((3 * 3) + (2 * 4)) (G.m g);
  let g = Gen.hypercube 5 in
  Alcotest.(check int) "hypercube n" 32 (G.n g);
  Alcotest.(check bool) "hypercube 5-regular" true
    (List.for_all (fun v -> G.degree g v = 5) (List.init 32 (fun i -> i)))

let test_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  Alcotest.(check int) "m" 12 (G.m g);
  Alcotest.(check (option int)) "girth 4" (Some 4) (G.girth g);
  Alcotest.(check bool) "bipartite structure" true
    (G.fold_edges (fun ok _ u v -> ok && ((u < 3) <> (v < 3))) true g)

let test_random_tree () =
  for seed = 0 to 5 do
    let n = 2 + (seed * 7) in
    let g = Gen.random_tree ~seed n in
    Alcotest.(check int) "m = n-1" (n - 1) (G.m g);
    Alcotest.(check bool) "connected" true (G.is_connected g);
    Alcotest.(check (option int)) "acyclic" None (G.girth g)
  done;
  Alcotest.(check int) "singleton" 0 (G.m (Gen.random_tree ~seed:0 1))

let test_random_regular () =
  let g = Gen.random_regular ~seed:3 50 4 in
  Alcotest.(check int) "n" 50 (G.n g);
  Alcotest.(check bool) "regular" true
    (List.for_all (fun v -> G.degree g v = 4) (List.init 50 (fun i -> i)));
  (* determinism *)
  let g' = Gen.random_regular ~seed:3 50 4 in
  Alcotest.(check bool) "deterministic" true (G.edges g = G.edges g')

let test_random_regular_rejects () =
  Alcotest.check_raises "odd" (Invalid_argument "Generators.random_regular: n*d must be even")
    (fun () -> ignore (Gen.random_regular ~seed:0 5 3))

let test_gnm () =
  let g = Gen.gnm ~seed:1 30 40 in
  Alcotest.(check int) "m" 40 (G.m g)

let test_bounded_degree () =
  let g = Gen.random_bounded_degree ~seed:5 40 3 50 in
  Alcotest.(check bool) "cap" true (G.max_degree g <= 3)

let test_biregular () =
  let adj = Gen.random_biregular_bipartite ~seed:9 ~nv:20 ~nu:20 ~deg_u:3 ~deg_v:3 in
  Alcotest.(check int) "nu" 20 (Array.length adj);
  Array.iter
    (fun row ->
      Alcotest.(check int) "deg_u" 3 (Array.length row);
      Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare (Array.to_list row))))
    adj;
  let deg_v = Array.make 20 0 in
  Array.iter (Array.iter (fun v -> deg_v.(v) <- deg_v.(v) + 1)) adj;
  Array.iter (fun d -> Alcotest.(check int) "deg_v" 3 d) deg_v

let test_regular_hypergraph () =
  let h = Gen.random_regular_hypergraph ~seed:11 18 3 4 in
  Alcotest.(check int) "rank" 3 (H.rank h);
  Alcotest.(check int) "m" (18 * 4 / 3) (H.m h);
  for v = 0 to 17 do
    Alcotest.(check int) "deg" 4 (H.degree h v)
  done

let test_hypergraph_rank2_primal () =
  (* a rank-2 hypergraph's primal graph has exactly its edges *)
  let h = H.create ~n:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let pg = H.primal_graph h in
  Alcotest.(check int) "m" 3 (G.m pg);
  Alcotest.(check int) "rank" 2 (H.rank h)

let test_hypergraph_duplicate_members () =
  let h = H.create ~n:3 [ [ 0; 1; 1; 0; 2 ] ] in
  Alcotest.(check (array int)) "dedup" [| 0; 1; 2 |] (H.edge h 0);
  Alcotest.(check int) "rank" 3 (H.rank h)

(* ------------------------------------------------------------------ *)
(* Coloring                                                             *)
(* ------------------------------------------------------------------ *)

let test_greedy_proper () =
  let g = Gen.random_regular ~seed:2 60 5 in
  let c = Col.greedy g in
  Alcotest.(check bool) "proper" true (Col.is_proper g c);
  Alcotest.(check bool) "at most d+1" true (Col.num_colors c <= 6)

let test_reduce () =
  let g = Gen.random_regular ~seed:7 40 4 in
  let ids = Array.init 40 (fun i -> i) in
  let c, rounds = Col.reduce g ids in
  Alcotest.(check bool) "proper" true (Col.is_proper g c);
  Alcotest.(check bool) "d+1 colors" true (Col.num_colors c <= 5);
  Alcotest.(check int) "rounds" (40 - 5) rounds

let test_reduce_rejects_improper () =
  let g = Gen.cycle 4 in
  Alcotest.check_raises "improper" (Invalid_argument "Coloring.reduce: input not proper")
    (fun () -> ignore (Col.reduce g (Array.make 4 0)))

let test_classes () =
  let cls = Col.classes [| 0; 1; 0; 2 |] in
  Alcotest.(check (list int)) "class 0" [ 0; 2 ] cls.(0);
  Alcotest.(check (list int)) "class 2" [ 3 ] cls.(2)

(* ------------------------------------------------------------------ *)
(* Primes and Linial                                                    *)
(* ------------------------------------------------------------------ *)

let test_primes () =
  Alcotest.(check bool) "2" true (P.is_prime 2);
  Alcotest.(check bool) "1" false (P.is_prime 1);
  Alcotest.(check bool) "97" true (P.is_prime 97);
  Alcotest.(check bool) "91" false (P.is_prime 91);
  Alcotest.(check int) "next 90" 97 (P.next_prime 90);
  Alcotest.(check int) "next of prime" 13 (P.next_prime 13);
  Alcotest.(check int) "next 0" 2 (P.next_prime 0)

let test_poly_eval () =
  (* 3 + 2x + x^2 at x=4 over F_7: 3 + 8 + 16 = 27 = 6 mod 7 *)
  Alcotest.(check int) "horner" 6 (P.poly_eval 7 [| 3; 2; 1 |] 4);
  Alcotest.(check (array int)) "digits" [| 2; 4; 1 |] (P.digits ~base:5 ~len:3 47)

let test_choose_params () =
  let q, t = Lin.choose_params ~dmax:4 ~m:100 in
  Alcotest.(check bool) "prime" true (P.is_prime q);
  Alcotest.(check bool) "q > t*d" true (q > t * 4);
  Alcotest.(check bool) "covers" true (float_of_int q ** float_of_int (t + 1) >= 100.)

let test_linial_one_round () =
  let g = Gen.random_regular ~seed:4 64 3 in
  let ids = Array.init 64 (fun i -> i) in
  let c, bound = Lin.one_round g ~m:64 ids in
  Alcotest.(check bool) "proper" true (Col.is_proper g c);
  Alcotest.(check bool) "bounded" true (Array.for_all (fun x -> x >= 0 && x < bound) c)

let test_linial_pipeline () =
  List.iter
    (fun (g, name) ->
      let c, rounds = Lin.color g in
      Alcotest.(check bool) (name ^ " proper") true (Col.is_proper g c);
      Alcotest.(check bool)
        (name ^ " colors <= d+1")
        true
        (Col.num_colors c <= G.max_degree g + 1);
      (* K_{d+1} already has d+1 colors from the ids, costing 0 rounds *)
      Alcotest.(check bool) (name ^ " rounds >= 0") true (rounds >= 0))
    [
      (Gen.cycle 100, "cycle100");
      (Gen.random_regular ~seed:8 80 4, "rr80");
      (Gen.grid 8 8, "grid");
      (Gen.complete 6, "K6");
    ]

let test_linial_logstar_scaling () =
  (* Linial-phase round count grows extremely slowly with n *)
  let rounds_of n =
    let g = Gen.cycle n in
    let ids = Array.init n (fun i -> i) in
    let _, _, r = Lin.reduce_to_fixpoint g ~m:n ids in
    r
  in
  let r1 = rounds_of 64 and r2 = rounds_of 4096 in
  Alcotest.(check bool) "slow growth" true (r2 - r1 <= 2);
  Alcotest.(check bool) "nontrivial" true (r1 >= 1)

(* ------------------------------------------------------------------ *)
(* Cole–Vishkin                                                         *)
(* ------------------------------------------------------------------ *)

let test_cv_step_preserves_properness () =
  for n = 3 to 40 do
    let succ v = (v + 1) mod n in
    let colors = Array.init n (fun i -> i) in
    let colors' = CV.cv_step ~succ colors in
    Alcotest.(check bool)
      (Printf.sprintf "proper n=%d" n)
      true
      (CV.is_proper_on_cycle ~succ colors')
  done

let test_cv_three_colors () =
  List.iter
    (fun n ->
      let c, rounds = CV.three_color_cycle n in
      let succ v = (v + 1) mod n in
      Alcotest.(check bool)
        (Printf.sprintf "proper n=%d" n)
        true
        (CV.is_proper_on_cycle ~succ c);
      Alcotest.(check bool) "3 colors" true (Array.for_all (fun x -> x >= 0 && x < 3) c);
      Alcotest.(check bool) "rounds small" true (rounds <= 20))
    [ 3; 4; 5; 10; 100; 1000; 10000 ]

let test_cv_logstar () =
  let _, r_small = CV.three_color_cycle 16 in
  let _, r_big = CV.three_color_cycle 65536 in
  Alcotest.(check bool) "log* growth" true (r_big - r_small <= 3)

let test_lowest_diff_bit () =
  Alcotest.(check int) "bit 0" 0 (CV.lowest_diff_bit 2 3);
  Alcotest.(check int) "bit 2" 2 (CV.lowest_diff_bit 8 12)

(* ------------------------------------------------------------------ *)
(* Edge coloring                                                        *)
(* ------------------------------------------------------------------ *)

let test_edge_coloring () =
  List.iter
    (fun (g, name) ->
      let c, _rounds = EC.color g in
      Alcotest.(check bool) (name ^ " proper") true (EC.is_proper g c);
      Alcotest.(check bool)
        (name ^ " 2d-1 colors")
        true
        (EC.num_colors c <= max 1 ((2 * G.max_degree g) - 1)))
    [
      (Gen.cycle 50, "cycle");
      (Gen.random_regular ~seed:13 40 4, "rr40");
      (Gen.star 8, "star");
      (Gen.grid 5 5, "grid");
    ]

let test_edge_coloring_greedy () =
  let g = Gen.random_regular ~seed:17 30 5 in
  Alcotest.(check bool) "greedy proper" true (EC.is_proper g (EC.greedy g))

(* ------------------------------------------------------------------ *)
(* Exact colorability and shift graphs (the log* lower bound)            *)
(* ------------------------------------------------------------------ *)

module SG = Lll_graph.Shift_graph

let test_chromatic_number_basics () =
  Alcotest.(check (option int)) "empty" (Some 0) (Col.chromatic_number (G.create ~n:0 []));
  Alcotest.(check (option int)) "edgeless" (Some 1) (Col.chromatic_number (G.create ~n:5 []));
  Alcotest.(check (option int)) "K4" (Some 4) (Col.chromatic_number (Gen.complete 4));
  Alcotest.(check (option int)) "C5" (Some 3) (Col.chromatic_number (Gen.cycle 5));
  Alcotest.(check (option int)) "C6" (Some 2) (Col.chromatic_number (Gen.cycle 6));
  Alcotest.(check (option int)) "grid bipartite" (Some 2) (Col.chromatic_number (Gen.grid 4 4));
  Alcotest.(check (option int)) "petersen-ish bipartite" (Some 2)
    (Col.chromatic_number (Gen.complete_bipartite 3 5))

let test_colorable_budget () =
  (* an absurdly small budget must come back undecided *)
  Alcotest.(check (option bool)) "undecided" None
    (Col.colorable ~budget:1 (Gen.random_regular ~seed:1 30 4) 3)

let test_shift_rank_unrank () =
  let m = 6 and k = 3 in
  for r = 0 to SG.num_tuples m k - 1 do
    let t = SG.unrank ~m ~k r in
    Alcotest.(check int) "roundtrip" r (SG.rank ~m t);
    Alcotest.(check int) "distinct" k (List.length (List.sort_uniq compare (Array.to_list t)))
  done

let test_shift_graph_structure () =
  let g = SG.build ~m:4 ~k:2 in
  Alcotest.(check int) "nodes" 12 (G.n g);
  (* (0,1) ~ (1,2): shares the shifted window *)
  let r01 = SG.rank ~m:4 [| 0; 1 |] and r12 = SG.rank ~m:4 [| 1; 2 |] in
  Alcotest.(check bool) "shift edge" true (G.mem_edge g r01 r12);
  (* (0,1) and (2,3) share nothing: no edge *)
  let r23 = SG.rank ~m:4 [| 2; 3 |] in
  Alcotest.(check bool) "no edge" false (G.mem_edge g r01 r23)

let test_shift_chromatic_numbers () =
  (* exact, certified by exhaustive search: the iterated-log growth that
     underlies the Omega(log* n) lower bound *)
  List.iter
    (fun (m, k, chi) ->
      Alcotest.(check (option int))
        (Printf.sprintf "chi(S(%d,%d))" m k)
        (Some chi)
        (SG.chromatic_number ~m ~k ()))
    [ (2, 2, 1); (3, 2, 3); (4, 2, 3); (5, 2, 4); (6, 2, 4); (4, 3, 2); (5, 3, 3) ]

let test_shift_threshold_universe () =
  (* no 3-coloring of pairs once ids come from a universe of >= 5:
     a concrete, machine-checked instance of the lower bound *)
  Alcotest.(check (option int)) "threshold" (Some 5)
    (SG.threshold_universe ~k:2 ~colors:3 ~max_m:8 ())

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

module Ser = Lll_graph.Serialize

let graphs_equal a b = G.n a = G.n b && G.edges a = G.edges b

let test_graph_serialization () =
  List.iter
    (fun g ->
      let g' = Ser.graph_of_string (Ser.graph_to_string g) in
      Alcotest.(check bool) "roundtrip" true (graphs_equal g g'))
    [ Gen.cycle 7; Gen.random_regular ~seed:1 20 3; G.create ~n:5 []; Gen.grid 3 4 ]

let test_graph_serialization_comments () =
  let s = "c a comment
" ^ Ser.graph_to_string (Gen.cycle 5) ^ "
c trailing
" in
  Alcotest.(check bool) "comments ok" true (graphs_equal (Gen.cycle 5) (Ser.graph_of_string s))

let test_graph_serialization_rejects () =
  (try
     ignore (Ser.graph_of_string "e 0 1
");
     Alcotest.fail "missing header accepted"
   with Ser.Parse_error _ -> ());
  (try
     ignore (Ser.graph_of_string "p edge 3 1
e 0 x
");
     Alcotest.fail "bad edge accepted"
   with Ser.Parse_error _ -> ())

let test_hypergraph_serialization () =
  let h = Gen.random_regular_hypergraph ~seed:2 12 3 2 in
  let h' = Ser.hypergraph_of_string (Ser.hypergraph_to_string h) in
  Alcotest.(check int) "n" (H.n h) (H.n h');
  Alcotest.(check bool) "edges" true (H.edges h = H.edges h')

let test_wtable_roundtrip () =
  let wt =
    {
      Ser.arities = [| 2; 3 |];
      rows = [ ([| 0; 2 |], Lll_num.Rat.of_string "1/6"); ([| 1; 0 |], Lll_num.Rat.of_string "1/3") ];
    }
  in
  let wt' = Ser.weighted_table_of_string (Ser.weighted_table_to_string wt) in
  Alcotest.(check bool) "arities" true (wt.Ser.arities = wt'.Ser.arities);
  Alcotest.(check bool) "rows" true
    (List.for_all2
       (fun (xs, w) (xs', w') -> xs = xs' && Lll_num.Rat.equal w w')
       wt.Ser.rows wt'.Ser.rows)

let test_wtable_error_paths () =
  let reject name s =
    try
      ignore (Ser.weighted_table_of_string s);
      Alcotest.fail (name ^ " accepted")
    with Ser.Parse_error _ -> ()
  in
  (* wrong block header *)
  reject "bad header" "p wtible 1 1\na 2\nw 0 1/2\n";
  (* truncated table: header promises 2 rows, only 1 present *)
  reject "truncated table" "p wtable 1 2\na 2\nw 0 1/2\n";
  (* tuple value outside the declared arity *)
  reject "value out of range" "p wtable 1 1\na 2\nw 2 1/2\n";
  (* corrupted row weights: zero, negative, or not a rational at all *)
  reject "zero weight" "p wtable 1 1\na 2\nw 0 0\n";
  reject "negative weight" "p wtable 1 1\na 2\nw 0 -1/2\n";
  reject "garbage weight" "p wtable 1 1\na 2\nw 0 bogus\n"

let test_serialization_files () =
  let g = Gen.torus 4 4 in
  let path = Filename.temp_file "lll_graph" ".col" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ser.save_graph path g;
      Alcotest.(check bool) "file roundtrip" true (graphs_equal g (Ser.load_graph path)))

let test_graph_binary_roundtrip () =
  List.iter
    (fun g ->
      let g' = Ser.graph_of_binary (Ser.graph_to_binary g) in
      Alcotest.(check bool) "binary roundtrip" true (graphs_equal g g'))
    [ Gen.cycle 7; Gen.random_regular ~seed:1 20 3; G.create ~n:5 []; Gen.grid 3 4 ]

let test_graph_binary_file_roundtrip () =
  let g = Gen.random_regular ~seed:3 24 3 in
  let path = Filename.temp_file "lll_graph" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ser.save_graph_binary path g;
      Alcotest.(check bool) "binary file roundtrip" true
        (graphs_equal g (Ser.load_graph_binary path)))

let test_graph_binary_error_paths () =
  let blob = Ser.graph_to_binary (Gen.cycle 9) in
  let reject name s =
    try
      ignore (Ser.graph_of_binary s);
      Alcotest.fail (name ^ " accepted")
    with Ser.Bin.Corrupt _ -> ()
  in
  let patch pos c =
    let b = Bytes.of_string blob in
    Bytes.set b pos c;
    Bytes.to_string b
  in
  reject "bad magic" (patch 0 '?');
  reject "version skew" (patch 4 '\042');
  reject "truncated" (String.sub blob 0 (String.length blob - 3));
  let last = String.length blob - 1 in
  reject "checksum" (patch last (Char.chr (Char.code blob.[last] lxor 1)))

let test_of_csr_validation () =
  let g = Gen.random_regular ~seed:5 18 3 in
  (* the identity: csr followed by of_csr reproduces the graph *)
  Alcotest.(check bool) "of_csr identity" true (graphs_equal g (G.of_csr (G.csr g)));
  let reject name c =
    try
      ignore (G.of_csr c);
      Alcotest.fail (name ^ " accepted")
    with Invalid_argument _ -> ()
  in
  let c = G.csr g in
  reject "bad offsets length" { c with G.csr_offsets = Array.sub c.G.csr_offsets 0 3 };
  reject "neighbor out of range"
    {
      c with
      G.csr_neighbors =
        (let a = Array.copy c.G.csr_neighbors in
         a.(0) <- G.n g;
         a);
    };
  reject "unsorted slice"
    {
      c with
      G.csr_neighbors =
        (let a = Array.copy c.G.csr_neighbors in
         (* the graph is 3-regular: the first slice has 3 entries *)
         let t = a.(0) in
         a.(0) <- a.(1);
         a.(1) <- t;
         a);
    };
  reject "edge id disagrees"
    {
      c with
      G.csr_edge_ids =
        (let a = Array.copy c.G.csr_edge_ids in
         a.(0) <- (a.(0) + 1) mod Array.length c.G.csr_edges;
         a);
    }

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let arb_graph =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 40 in
      let* m = int_range 0 (min 80 (n * (n - 1) / 2)) in
      let* seed = int_range 0 10_000 in
      return (Gen.gnm ~seed n m))
  in
  QCheck.make ~print:(fun g -> Printf.sprintf "graph(n=%d,m=%d)" (G.n g) (G.m g)) gen

let graph_props =
  [
    prop "degree sum = 2m" 200 arb_graph (fun g ->
        let sum = List.fold_left (fun acc v -> acc + G.degree g v) 0 (List.init (G.n g) Fun.id) in
        sum = 2 * G.m g);
    prop "greedy proper, <= d+1 colors" 200 arb_graph (fun g ->
        let c = Col.greedy g in
        Col.is_proper g c && Col.num_colors c <= G.max_degree g + 1);
    prop "linial pipeline proper" 50 arb_graph (fun g ->
        let c, _ = Lin.color g in
        Col.is_proper g c && Col.num_colors c <= G.max_degree g + 1);
    prop "square contains graph" 100 arb_graph (fun g ->
        G.fold_edges (fun ok _ u v -> ok && G.mem_edge (G.square g) u v) true g);
    prop "square edges are dist <= 2" 50 arb_graph (fun g ->
        let sq = G.square g in
        G.fold_edges (fun ok _ u v -> ok && (G.bfs_dist g u).(v) <= 2 && (G.bfs_dist g u).(v) >= 1)
          true sq);
    prop "line graph degree" 50 arb_graph (fun g ->
        let lg = G.line_graph g in
        G.fold_edges
          (fun ok e u v -> ok && G.degree lg e = G.degree g u + G.degree g v - 2)
          true g);
    prop "kw_reduce proper and small" 100 arb_graph (fun g ->
        QCheck.assume (G.n g > 0);
        let ids = Array.init (G.n g) (fun i -> i) in
        let c, rounds = Col.kw_reduce g ids in
        Col.is_proper g c
        && Col.num_colors c <= G.max_degree g + 1
        && rounds <= (G.max_degree g + 1) * (1 + int_of_float (ceil (log (float_of_int (max 2 (G.n g))) /. log 2.))));
    prop "kw_reduce matches reduce colors" 50 arb_graph (fun g ->
        QCheck.assume (G.n g > 0);
        let ids = Array.init (G.n g) (fun i -> i) in
        let c1, _ = Col.kw_reduce g ids in
        let c2, _ = Col.reduce g ids in
        Col.is_proper g c1 && Col.is_proper g c2
        && Col.num_colors c1 <= G.max_degree g + 1
        && Col.num_colors c2 <= G.max_degree g + 1);
    prop "edge coloring proper" 50 arb_graph (fun g ->
        QCheck.assume (G.m g > 0);
        let c, _ = EC.color g in
        EC.is_proper g c);
    prop "bfs triangle inequality" 50 arb_graph (fun g ->
        G.fold_edges
          (fun ok _ u v ->
            let du = G.bfs_dist g u in
            ok && abs (du.(v) - du.(u)) <= 1)
          true g);
  ]

(* ------------------------------------------------------------------ *)
(* Girth-controlled regular sampler                                     *)
(* ------------------------------------------------------------------ *)

(* Independent BFS girth computation (does not trust [G.girth]): from
   every root, a non-tree edge (u, w) closes a cycle of length
   dist(u) + dist(w) + 1; rooted at a vertex of a shortest cycle the
   bound is attained, so the minimum over all roots is the exact
   girth. *)
let bfs_girth g =
  let n = G.n g in
  let best = ref max_int in
  for s = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let par_edge = Array.make n (-1) in
    dist.(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let w = G.other_endpoint g e u in
          if dist.(w) = -1 then begin
            dist.(w) <- dist.(u) + 1;
            par_edge.(w) <- e;
            Queue.add w q
          end
          else if e <> par_edge.(u) then best := min !best (dist.(u) + dist.(w) + 1))
        (G.incident_edges g u)
    done
  done;
  if !best = max_int then None else Some !best

(* (degree, girth, size) combinations with enough slack above the Moore
   bound for the swap sampler to succeed on every seed *)
let arb_girth_params =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 10_000 in
      let* d, girth, n =
        oneofl
          [ (3, 5, 14); (3, 5, 22); (3, 6, 20); (3, 6, 30); (3, 6, 40); (4, 5, 32); (4, 5, 48) ]
      in
      return (seed, d, girth, n))
  in
  QCheck.make
    ~print:(fun (seed, d, girth, n) -> Printf.sprintf "seed=%d d=%d girth=%d n=%d" seed d girth n)
    gen

let girth_sampler_props =
  [
    prop "girth sampler is d-regular" 200 arb_girth_params (fun (seed, d, girth, n) ->
        let g = Gen.random_regular_girth ~seed ~girth n d in
        G.n g = n && List.for_all (fun v -> G.degree g v = d) (List.init n Fun.id));
    prop "girth sampler meets the girth lower bound (BFS check)" 200 arb_girth_params
      (fun (seed, d, girth, n) ->
        let g = Gen.random_regular_girth ~seed ~girth n d in
        match bfs_girth g with
        | None -> false (* d-regular graphs always contain a cycle *)
        | Some c -> c >= girth && G.girth g = Some c);
    prop "girth sampler round-trips through serialization" 200 arb_girth_params
      (fun (seed, d, girth, n) ->
        let g = Gen.random_regular_girth ~seed ~girth n d in
        graphs_equal g (Ser.graph_of_string (Ser.graph_to_string g)));
  ]

(* Every simple graph has girth >= 3, so the girth-3 repair loop is a
   no-op and attempt 0 must hand back the configuration-model graph for
   the *same* seed — the attempt-0 seed derivation that store artifact
   keys are pinned to. *)
let test_girth_sampler_attempt0_seed () =
  List.iter
    (fun (seed, n, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "girth 3 = plain configuration model (seed=%d n=%d d=%d)" seed n d)
        true
        (graphs_equal
           (Gen.random_regular_girth ~seed ~girth:3 n d)
           (Gen.random_regular ~seed n d)))
    [ (1, 24, 3); (2, 24, 3); (1, 48, 3); (7, 30, 4) ]

(* A hardcoded edge checksum on the corpus point (seed=1, girth=6,
   n=24, d=3). Any change here silently renames every committed
   sinkless artifact and invalidates the scenario baselines, so it must
   be a deliberate, visible decision. *)
let test_girth_sampler_pinned_edges () =
  let g = Gen.random_regular_girth ~seed:1 ~girth:6 24 3 in
  let sum =
    Array.fold_left
      (fun acc (u, v) -> ((acc * 131) + (u * 251) + v) land 0x3FFF_FFFF)
      0 (G.edges g)
  in
  Alcotest.(check int) "edge checksum (store-key stability pin)" 727835792 sum

let test_girth_sampler_stats () =
  let stats = Gen.fresh_girth_stats () in
  let g = Gen.random_regular_girth ~stats ~seed:1 ~girth:6 24 3 in
  Alcotest.(check bool) "at least one attempt" true (stats.Gen.gs_attempts >= 1);
  Alcotest.(check bool) "girth 6 at n=24 needs repair swaps" true (stats.Gen.gs_swaps > 0);
  Alcotest.(check bool) "counters non-negative" true
    (stats.Gen.gs_reverts >= 0 && stats.Gen.gs_rejects >= 0);
  (* threading a stats record must not perturb the sample *)
  Alcotest.(check bool) "stats do not touch the rng" true
    (graphs_equal g (Gen.random_regular_girth ~seed:1 ~girth:6 24 3));
  (* the record accumulates across calls rather than resetting *)
  let before = stats.Gen.gs_attempts in
  ignore (Gen.random_regular_girth ~stats ~seed:2 ~girth:6 24 3);
  Alcotest.(check bool) "accumulates" true (stats.Gen.gs_attempts > before)

(* ------------------------------------------------------------------ *)
(* CSR vs naive list model                                              *)
(* ------------------------------------------------------------------ *)

(* A deliberately naive reference implementation of the graph API, built
   straight from the raw edge list with lists and linear scans — the
   semantics the CSR representation must reproduce exactly. *)
module Model = struct
  type t = { n : int; edges : (int * int) array }

  let create ~n edge_list =
    let seen = Hashtbl.create 16 in
    let norm (u, v) = if u < v then (u, v) else (v, u) in
    let uniq =
      List.filter
        (fun e ->
          let e = norm e in
          if Hashtbl.mem seen e then false
          else begin
            Hashtbl.add seen e ();
            true
          end)
        edge_list
    in
    { n; edges = Array.of_list (List.map norm uniq) }

  let adj t v =
    let acc = ref [] in
    Array.iteri
      (fun i (a, b) ->
        if a = v then acc := (b, i) :: !acc else if b = v then acc := (a, i) :: !acc)
      t.edges;
    List.sort compare !acc

  let neighbors t v = List.map fst (adj t v)
  let incident_edges t v = List.map snd (adj t v)
  let degree t v = List.length (adj t v)

  let max_degree t =
    List.fold_left (fun acc v -> max acc (degree t v)) 0 (List.init t.n Fun.id)

  let find_edge t u v =
    let key = (min u v, max u v) in
    let r = ref None in
    Array.iteri (fun i e -> if !r = None && e = key then r := Some i) t.edges;
    !r

  (* distance-<=2 pairs by brute force over the adjacency matrix *)
  let square_pairs t =
    let m = Array.make_matrix t.n t.n false in
    Array.iter
      (fun (u, v) ->
        m.(u).(v) <- true;
        m.(v).(u) <- true)
      t.edges;
    let out = ref [] in
    for u = t.n - 1 downto 0 do
      for v = t.n - 1 downto u + 1 do
        let dist2 = ref m.(u).(v) in
        for w = 0 to t.n - 1 do
          if m.(u).(w) && m.(w).(v) then dist2 := true
        done;
        if !dist2 then out := (u, v) :: !out
      done
    done;
    !out
end

(* Raw (n, possibly-duplicated, possibly-reversed edge list) inputs, so the
   dedup/normalisation path is exercised too. *)
let arb_raw_graph =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 30 in
      let* m = int_range 0 60 in
      let* pairs = list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, List.filter (fun (u, v) -> u <> v) pairs))
  in
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) es)))
    gen

let csr_model_props =
  let both (n, es) = (G.create ~n es, Model.create ~n es) in
  [
    prop "neighbors agree" 200 arb_raw_graph (fun (n, es) ->
        let g, m = both (n, es) in
        List.for_all (fun v -> G.neighbors g v = Model.neighbors m v) (List.init n Fun.id));
    prop "incident_edges agree" 200 arb_raw_graph (fun (n, es) ->
        let g, m = both (n, es) in
        List.for_all (fun v -> G.incident_edges g v = Model.incident_edges m v)
          (List.init n Fun.id));
    prop "adj agrees" 200 arb_raw_graph (fun (n, es) ->
        let g, m = both (n, es) in
        List.for_all (fun v -> G.adj g v = Model.adj m v) (List.init n Fun.id));
    prop "degree and max_degree agree" 200 arb_raw_graph (fun (n, es) ->
        let g, m = both (n, es) in
        G.max_degree g = Model.max_degree m
        && List.for_all (fun v -> G.degree g v = Model.degree m v) (List.init n Fun.id));
    prop "find_edge agrees on all pairs" 200 arb_raw_graph (fun (n, es) ->
        let g, m = both (n, es) in
        List.for_all
          (fun u ->
            List.for_all
              (fun v -> u = v || G.find_edge g u v = Model.find_edge m u v)
              (List.init n Fun.id))
          (List.init n Fun.id));
    prop "edge ids preserve first-occurrence order" 200 arb_raw_graph (fun (n, es) ->
        let g, m = both (n, es) in
        G.edges g = m.Model.edges);
    prop "square agrees with brute-force dist<=2" 200 arb_raw_graph (fun (n, es) ->
        let g, m = both (n, es) in
        let sq = G.square g in
        List.sort compare (Array.to_list (G.edges sq))
        = List.sort compare (Model.square_pairs m));
  ]

let () =
  Alcotest.run "lll_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "create dedup" `Quick test_create_dedup;
          Alcotest.test_case "create rejects" `Quick test_create_rejects;
          Alcotest.test_case "endpoints normalised" `Quick test_endpoints_normalised;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "square" `Quick test_square;
          Alcotest.test_case "line graph" `Quick test_line_graph;
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
          Alcotest.test_case "other_endpoint rejects" `Quick test_other_endpoint_rejects;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "line graph of cycle" `Quick test_line_graph_of_cycle;
          Alcotest.test_case "square of cycle" `Quick test_square_of_cycle;
        ] );
      ( "hypergraph",
        [
          Alcotest.test_case "basics" `Quick test_hypergraph_basics;
          Alcotest.test_case "rejects" `Quick test_hypergraph_rejects;
          Alcotest.test_case "to_dot" `Quick test_hypergraph_to_dot;
          Alcotest.test_case "rank-2 primal" `Quick test_hypergraph_rank2_primal;
          Alcotest.test_case "duplicate members" `Quick test_hypergraph_duplicate_members;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "random regular rejects" `Quick test_random_regular_rejects;
          Alcotest.test_case "gnm" `Quick test_gnm;
          Alcotest.test_case "bounded degree" `Quick test_bounded_degree;
          Alcotest.test_case "biregular bipartite" `Quick test_biregular;
          Alcotest.test_case "regular hypergraph" `Quick test_regular_hypergraph;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "greedy proper" `Quick test_greedy_proper;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "reduce rejects improper" `Quick test_reduce_rejects_improper;
          Alcotest.test_case "classes" `Quick test_classes;
        ] );
      ( "linial",
        [
          Alcotest.test_case "primes" `Quick test_primes;
          Alcotest.test_case "poly eval" `Quick test_poly_eval;
          Alcotest.test_case "choose params" `Quick test_choose_params;
          Alcotest.test_case "one round" `Quick test_linial_one_round;
          Alcotest.test_case "pipeline" `Quick test_linial_pipeline;
          Alcotest.test_case "log* scaling" `Quick test_linial_logstar_scaling;
        ] );
      ( "cole-vishkin",
        [
          Alcotest.test_case "cv step preserves properness" `Quick
            test_cv_step_preserves_properness;
          Alcotest.test_case "three colors" `Quick test_cv_three_colors;
          Alcotest.test_case "log* rounds" `Quick test_cv_logstar;
          Alcotest.test_case "lowest diff bit" `Quick test_lowest_diff_bit;
        ] );
      ( "edge-coloring",
        [
          Alcotest.test_case "linial pipeline" `Quick test_edge_coloring;
          Alcotest.test_case "greedy" `Quick test_edge_coloring_greedy;
        ] );
      ( "shift-graphs",
        [
          Alcotest.test_case "chromatic number basics" `Quick test_chromatic_number_basics;
          Alcotest.test_case "budget undecided" `Quick test_colorable_budget;
          Alcotest.test_case "rank/unrank bijection" `Quick test_shift_rank_unrank;
          Alcotest.test_case "structure" `Quick test_shift_graph_structure;
          Alcotest.test_case "chromatic numbers (certified)" `Quick test_shift_chromatic_numbers;
          Alcotest.test_case "threshold universe" `Quick test_shift_threshold_universe;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "graph roundtrip" `Quick test_graph_serialization;
          Alcotest.test_case "comments" `Quick test_graph_serialization_comments;
          Alcotest.test_case "rejects garbage" `Quick test_graph_serialization_rejects;
          Alcotest.test_case "hypergraph roundtrip" `Quick test_hypergraph_serialization;
          Alcotest.test_case "wtable roundtrip" `Quick test_wtable_roundtrip;
          Alcotest.test_case "wtable error paths" `Quick test_wtable_error_paths;
          Alcotest.test_case "file roundtrip" `Quick test_serialization_files;
          Alcotest.test_case "binary roundtrip" `Quick test_graph_binary_roundtrip;
          Alcotest.test_case "binary file roundtrip" `Quick test_graph_binary_file_roundtrip;
          Alcotest.test_case "binary error paths" `Quick test_graph_binary_error_paths;
          Alcotest.test_case "of_csr validation" `Quick test_of_csr_validation;
        ] );
      ("properties", graph_props);
      ( "girth-sampler",
        girth_sampler_props
        @ [
            Alcotest.test_case "attempt-0 seed derivation" `Quick
              test_girth_sampler_attempt0_seed;
            Alcotest.test_case "pinned corpus edges" `Quick test_girth_sampler_pinned_edges;
            Alcotest.test_case "sampler stats" `Quick test_girth_sampler_stats;
          ] );
      ("csr-vs-model", csr_model_props);
    ]
