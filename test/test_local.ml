(* Tests for the LOCAL-model simulator and the distributed coloring
   programs. *)

module G = Lll_graph.Graph
module Gen = Lll_graph.Generators
module Col = Lll_graph.Coloring
module Net = Lll_local.Network
module RT = Lll_local.Runtime
module DC = Lll_local.Dist_coloring

(* ------------------------------------------------------------------ *)
(* Network                                                              *)
(* ------------------------------------------------------------------ *)

let test_network_basics () =
  let net = Net.create (Gen.cycle 5) in
  Alcotest.(check int) "n" 5 (Net.n net);
  Alcotest.(check int) "id" 3 (Net.id net 3);
  Alcotest.(check (list int)) "neighbors" [ 1; 4 ] (Net.neighbors net 0);
  Alcotest.(check int) "max degree" 2 (Net.max_degree net)

let test_network_duplicate_ids () =
  Alcotest.check_raises "dup" (Invalid_argument "Network.create: duplicate id") (fun () ->
      ignore (Net.create ~ids:[| 1; 1; 2 |] (Gen.cycle 3)))

let test_shuffled_ids () =
  let net = Net.create (Gen.cycle 8) in
  let net' = Net.with_shuffled_ids ~seed:3 net in
  let sorted a =
    let a = Array.copy a in
    Array.sort compare a;
    a
  in
  Alcotest.(check (array int)) "permutation" (sorted (Net.ids net)) (sorted (Net.ids net'))

(* ------------------------------------------------------------------ *)
(* Runtime: message passing                                             *)
(* ------------------------------------------------------------------ *)

(* A silent protocol that halts after [k] rounds costs exactly [k]
   rounds. *)
let test_run_flood_max () =
  let net = Net.create (Gen.path 6) in
  let states, stats =
    RT.run net
      ~init:(fun v -> v)
      ~step:(fun ~round ~me:_ s (_ : (int * unit) list) ->
        { RT.state = s; send = []; halt = round + 1 >= 5 })
  in
  Alcotest.(check int) "rounds" 5 stats.RT.rounds;
  Alcotest.(check int) "state kept" 0 states.(0)

let test_run_messages () =
  let g = Gen.path 4 in
  let net = Net.create g in
  (* each node repeatedly forwards the max value it has seen *)
  let states, stats =
    RT.run net
      ~init:(fun v -> v)
      ~step:(fun ~round ~me s inbox ->
        let s = List.fold_left (fun acc (_, m) -> max acc m) s inbox in
        {
          RT.state = s;
          send = List.map (fun u -> (u, s)) (Net.neighbors net me);
          halt = round + 1 >= 4;
        })
  in
  (* value 3 needs three forwarding hops to reach node 0 *)
  Alcotest.(check (array int)) "max flooded" [| 3; 3; 3; 3 |] states;
  Alcotest.(check bool) "messages counted" true (stats.RT.messages > 0)

let test_run_rejects_non_neighbor () =
  let net = Net.create (Gen.path 3) in
  Alcotest.check_raises "non-neighbor" (Invalid_argument "Runtime.run: message to non-neighbor")
    (fun () ->
      ignore
        (RT.run net
           ~init:(fun _ -> ())
           ~step:(fun ~round:_ ~me:_ () _ -> { RT.state = (); send = [ (2, ()) ]; halt = true })))

let test_round_limit () =
  let net = Net.create (Gen.path 3) in
  (try
     ignore
       (RT.run ~max_rounds:5 net
          ~init:(fun _ -> ())
          ~step:(fun ~round:_ ~me:_ () _ -> { RT.state = (); send = []; halt = false }));
     Alcotest.fail "no limit"
   with RT.Round_limit_exceeded 5 -> ())

(* ------------------------------------------------------------------ *)
(* Runtime: full information                                            *)
(* ------------------------------------------------------------------ *)

let test_full_info_snapshot_semantics () =
  (* all nodes simultaneously adopt max(self, neighbors); on a path the
     max value spreads one hop per round — this checks that updates use
     the previous-round snapshot, not in-round values *)
  let g = Gen.path 5 in
  let net = Net.create g in
  let states, _ =
    RT.run_full_info net
      ~init:(fun v -> if v = 0 then 100 else v)
      ~step:(fun ~round ~me:_ s nbrs ->
        let s = List.fold_left (fun acc (_, x) -> max acc x) s nbrs in
        (s, round + 1 >= 1))
  in
  (* after ONE synchronous round each node holds the max of its closed
     1-ball w.r.t. the initial values — nothing propagates further *)
  Alcotest.(check (array int)) "one hop only" [| 100; 100; 3; 4; 4 |] states

let test_gather_balls () =
  let g = Gen.cycle 6 in
  let net = Net.create g in
  let balls, stats = RT.gather_balls net ~radius:2 ~value:(fun v -> v * 10) in
  Alcotest.(check int) "rounds" 2 stats.RT.rounds;
  let ball0 = List.map fst balls.(0) in
  Alcotest.(check (list int)) "ball of 0" [ 0; 1; 2; 4; 5 ] ball0;
  Alcotest.(check bool) "values carried" true (List.mem (2, 20) balls.(0));
  let balls0, stats0 = RT.gather_balls net ~radius:0 ~value:(fun v -> v) in
  Alcotest.(check int) "radius 0 rounds" 0 stats0.RT.rounds;
  Alcotest.(check (list (pair int int))) "radius 0 ball" [ (3, 3) ] balls0.(3)

(* ------------------------------------------------------------------ *)
(* Distributed coloring                                                 *)
(* ------------------------------------------------------------------ *)

let test_dist_coloring_proper () =
  List.iter
    (fun (g, name) ->
      let net = Net.create g in
      let c, rounds = DC.color net in
      Alcotest.(check bool) (name ^ " proper") true (Col.is_proper g c);
      Alcotest.(check bool)
        (name ^ " <= d+1 colors")
        true
        (Col.num_colors c <= G.max_degree g + 1);
      Alcotest.(check bool) (name ^ " rounds >= 0") true (rounds >= 0))
    [
      (Gen.cycle 64, "cycle64");
      (Gen.random_regular ~seed:21 60 4, "rr60");
      (Gen.grid 7 7, "grid");
      (Gen.star 9, "star");
    ]

let test_dist_coloring_shuffled_ids () =
  let g = Gen.random_regular ~seed:23 40 3 in
  let net = Net.with_shuffled_ids ~seed:99 (Net.create g) in
  let c, _ = DC.color net in
  Alcotest.(check bool) "proper under adversarial ids" true (Col.is_proper g c)

let test_dist_matches_pure_structure () =
  (* distributed and pure pipelines both end with <= dmax+1 colors *)
  let g = Gen.random_regular ~seed:31 50 4 in
  let c_pure, _ = Lll_graph.Linial.color g in
  let c_dist, _ = DC.color (Net.create g) in
  Alcotest.(check bool) "both proper" true (Col.is_proper g c_pure && Col.is_proper g c_dist);
  Alcotest.(check bool) "both small" true (Col.num_colors c_pure <= 5 && Col.num_colors c_dist <= 5)

let test_two_hop_coloring () =
  let g = Gen.random_regular ~seed:37 48 3 in
  let net = Net.create g in
  let c, rounds = DC.two_hop_color net in
  Alcotest.(check bool) "proper on square" true (Col.is_proper (G.square g) c);
  Alcotest.(check bool)
    "<= d^2+1 colors"
    true
    (Col.num_colors c <= (G.max_degree (G.square g)) + 1);
  Alcotest.(check bool) "rounds even" true (rounds mod 2 = 0)

let test_dist_coloring_logstar_scaling () =
  let rounds_of n =
    let net = Net.create (Gen.cycle n) in
    snd (DC.color net)
  in
  (* past the Linial fixpoint, rounds are flat in n for fixed degree *)
  let r1 = rounds_of 512 and r2 = rounds_of 4096 in
  Alcotest.(check bool) "flat in n" true (abs (r2 - r1) <= 2)

let test_schedule_consistency () =
  let sched = DC.schedule ~dmax:3 ~m:10_000 in
  Alcotest.(check bool) "descends" true
    (let rec desc m = function
       | [] -> true
       | (_, _, m') :: rest -> m' < m && desc m' rest
     in
     desc 10_000 sched)

let test_gather_beyond_diameter () =
  let g = Gen.path 4 in
  let net = Net.create g in
  let balls, _ = RT.gather_balls net ~radius:10 ~value:(fun v -> v) in
  Array.iter
    (fun ball -> Alcotest.(check int) "whole graph" 4 (List.length ball))
    balls

let test_single_node_network () =
  let net = Net.create (Lll_graph.Graph.create ~n:1 []) in
  let states, stats =
    RT.run_full_info net ~init:(fun _ -> 42) ~step:(fun ~round:_ ~me:_ s _ -> (s + 1, true))
  in
  Alcotest.(check int) "one round" 1 stats.RT.rounds;
  Alcotest.(check (array int)) "stepped" [| 43 |] states

module MIS = Lll_local.Mis

let test_luby_valid () =
  List.iter
    (fun (g, name) ->
      let net = Net.create g in
      let in_mis, rounds = MIS.luby ~seed:42 net in
      Alcotest.(check bool) (name ^ " valid MIS") true (MIS.is_mis g in_mis);
      Alcotest.(check bool) (name ^ " rounds positive") true (rounds > 0))
    [
      (Gen.cycle 40, "cycle");
      (Gen.random_regular ~seed:3 50 4, "rr50");
      (Gen.complete 8, "K8");
      (Gen.star 10, "star");
      (Gen.grid 6 6, "grid");
    ]

let test_luby_deterministic () =
  let g = Gen.random_regular ~seed:5 30 3 in
  let m1, r1 = MIS.luby ~seed:7 (Net.create g) in
  let m2, r2 = MIS.luby ~seed:7 (Net.create g) in
  Alcotest.(check bool) "same set" true (m1 = m2);
  Alcotest.(check int) "same rounds" r1 r2

let test_luby_logarithmic () =
  let rounds n = snd (MIS.luby ~seed:1 (Net.create (Gen.cycle n))) in
  Alcotest.(check bool) "grows slowly" true (rounds 2048 <= rounds 64 + 14)

let test_luby_single_node () =
  let net = Net.create (Lll_graph.Graph.create ~n:1 []) in
  let in_mis, _ = MIS.luby ~seed:1 net in
  Alcotest.(check bool) "lonely node joins" true in_mis.(0)

let test_greedy_mis () =
  List.iter
    (fun g -> Alcotest.(check bool) "greedy valid" true (MIS.is_mis g (MIS.greedy g)))
    [ Gen.cycle 9; Gen.complete 5; Gen.grid 4 4; Gen.random_regular ~seed:2 20 3 ]

let test_is_mis_rejects () =
  let g = Gen.path 3 in
  Alcotest.(check bool) "not independent" false (MIS.is_mis g [| true; true; false |]);
  Alcotest.(check bool) "not maximal" false (MIS.is_mis g [| false; false; false |]);
  Alcotest.(check bool) "valid" true (MIS.is_mis g [| true; false; true |])

module Prim = Lll_local.Primitives

let test_leader_election () =
  let g = Gen.random_regular ~seed:7 30 3 in
  let net = Net.with_shuffled_ids ~seed:5 (Net.create g) in
  let leaders, rounds = Prim.elect_leader net in
  let expected = Array.fold_left min max_int (Net.ids net) in
  Array.iter (fun l -> Alcotest.(check int) "agrees" expected l) leaders;
  Alcotest.(check bool) "rounds bounded" true (rounds <= 30)

let test_bfs_tree () =
  List.iter
    (fun (g, name) ->
      let net = Net.create g in
      let parents, dists, _ = Prim.bfs_tree net ~root:0 in
      Alcotest.(check bool) (name ^ " valid") true (Prim.is_bfs_tree g ~root:0 parents dists))
    [
      (Gen.path 10, "path");
      (Gen.cycle 9, "cycle");
      (Gen.grid 5 4, "grid");
      (Gen.random_tree ~seed:3 15, "tree");
      (Lll_graph.Graph.create ~n:4 [ (0, 1) ], "disconnected");
    ]

let test_bfs_tree_unreachable () =
  let g = Lll_graph.Graph.create ~n:3 [ (0, 1) ] in
  let net = Net.create g in
  let parents, dists, _ = Prim.bfs_tree net ~root:0 in
  Alcotest.(check int) "unreachable dist" (-1) dists.(2);
  Alcotest.(check int) "unreachable parent" (-1) parents.(2)

let () =
  Alcotest.run "lll_local"
    [
      ( "network",
        [
          Alcotest.test_case "basics" `Quick test_network_basics;
          Alcotest.test_case "duplicate ids" `Quick test_network_duplicate_ids;
          Alcotest.test_case "shuffled ids" `Quick test_shuffled_ids;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "halting rounds" `Quick test_run_flood_max;
          Alcotest.test_case "message flood" `Quick test_run_messages;
          Alcotest.test_case "rejects non-neighbor" `Quick test_run_rejects_non_neighbor;
          Alcotest.test_case "round limit" `Quick test_round_limit;
          Alcotest.test_case "full-info snapshot semantics" `Quick test_full_info_snapshot_semantics;
          Alcotest.test_case "gather balls" `Quick test_gather_balls;
          Alcotest.test_case "gather beyond diameter" `Quick test_gather_beyond_diameter;
          Alcotest.test_case "single node" `Quick test_single_node_network;
        ] );
      ( "mis",
        [
          Alcotest.test_case "luby valid" `Quick test_luby_valid;
          Alcotest.test_case "luby deterministic" `Quick test_luby_deterministic;
          Alcotest.test_case "luby round growth" `Slow test_luby_logarithmic;
          Alcotest.test_case "single node" `Quick test_luby_single_node;
          Alcotest.test_case "greedy oracle" `Quick test_greedy_mis;
          Alcotest.test_case "checker rejects" `Quick test_is_mis_rejects;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "leader election" `Quick test_leader_election;
          Alcotest.test_case "bfs tree" `Quick test_bfs_tree;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_tree_unreachable;
        ] );
      ( "dist-coloring",
        [
          Alcotest.test_case "proper" `Quick test_dist_coloring_proper;
          Alcotest.test_case "adversarial ids" `Quick test_dist_coloring_shuffled_ids;
          Alcotest.test_case "matches pure pipeline" `Quick test_dist_matches_pure_structure;
          Alcotest.test_case "two-hop" `Quick test_two_hop_coloring;
          Alcotest.test_case "log* scaling" `Slow test_dist_coloring_logstar_scaling;
          Alcotest.test_case "schedule descends" `Quick test_schedule_consistency;
        ] );
    ]
