(* Tests for the probability substrate: variables, assignments, events and
   exact conditional probabilities. *)

module R = Lll_num.Rat
module Var = Lll_prob.Var
module A = Lll_prob.Assignment
module E = Lll_prob.Event
module S = Lll_prob.Space

let rat = Alcotest.testable R.pp R.equal

(* ------------------------------------------------------------------ *)
(* Var                                                                  *)
(* ------------------------------------------------------------------ *)

let test_var_uniform () =
  let v = Var.uniform ~id:0 ~name:"u" 4 in
  Alcotest.(check int) "arity" 4 (Var.arity v);
  Alcotest.check rat "prob" (R.of_ints 1 4) (Var.prob v 2)

let test_var_bernoulli () =
  let v = Var.bernoulli ~id:0 ~name:"b" (R.of_ints 1 3) in
  Alcotest.check rat "false" (R.of_ints 2 3) (Var.prob v 0);
  Alcotest.check rat "true" (R.of_ints 1 3) (Var.prob v 1)

let test_var_rejects () =
  Alcotest.check_raises "sum" (Invalid_argument "Var.make: probabilities must sum to 1")
    (fun () -> ignore (Var.make ~id:0 ~name:"x" [| R.of_ints 1 2; R.of_ints 1 3 |]));
  Alcotest.check_raises "zero" (Invalid_argument "Var.make: probabilities must be positive")
    (fun () -> ignore (Var.make ~id:0 ~name:"x" [| R.zero; R.one |]));
  Alcotest.check_raises "empty" (Invalid_argument "Var.make: empty distribution") (fun () ->
      ignore (Var.make ~id:0 ~name:"x" [||]));
  Alcotest.check_raises "bernoulli p=1" (Invalid_argument "Var.bernoulli: need 0 < p < 1")
    (fun () -> ignore (Var.bernoulli ~id:0 ~name:"x" R.one))

(* ------------------------------------------------------------------ *)
(* Assignment                                                           *)
(* ------------------------------------------------------------------ *)

let test_assignment () =
  let a = A.empty 3 in
  Alcotest.(check bool) "unfixed" false (A.is_fixed a 0);
  let a = A.set a 0 5 in
  Alcotest.(check int) "get" 5 (A.value_exn a 0);
  Alcotest.(check int) "num fixed" 1 (A.num_fixed a);
  Alcotest.(check bool) "incomplete" false (A.is_complete a);
  let a = A.set (A.set a 1 0) 2 1 in
  Alcotest.(check bool) "complete" true (A.is_complete a);
  Alcotest.(check (list (pair int int))) "to_list" [ (0, 5); (1, 0); (2, 1) ] (A.to_list a);
  Alcotest.check_raises "value_exn" (Invalid_argument "Assignment.value_exn: variable not fixed")
    (fun () -> ignore (A.value_exn (A.empty 1) 0))

let test_assignment_of_list () =
  let a = A.of_list 4 [ (1, 2); (3, 0) ] in
  Alcotest.(check (option int)) "fixed" (Some 2) (A.get a 1);
  Alcotest.(check (option int)) "unfixed" None (A.get a 0)

(* ------------------------------------------------------------------ *)
(* Event                                                                *)
(* ------------------------------------------------------------------ *)

let test_event_scope_sorted () =
  let e = E.make ~id:0 ~name:"e" ~scope:[| 3; 1; 3; 2 |] (fun _ -> true) in
  Alcotest.(check (array int)) "dedup sorted" [| 1; 2; 3 |] (E.scope e);
  Alcotest.(check bool) "depends" true (E.depends_on e 2);
  Alcotest.(check bool) "not depends" false (E.depends_on e 0)

let test_event_holds () =
  let e = E.all_equal ~id:0 ~name:"eq" ~scope:[| 0; 1 |] in
  Alcotest.(check bool) "equal" true (E.holds e (A.of_list 2 [ (0, 3); (1, 3) ]));
  Alcotest.(check bool) "differ" false (E.holds e (A.of_list 2 [ (0, 3); (1, 4) ]))

let test_event_out_of_scope_probe () =
  let e = E.make ~id:0 ~name:"bad" ~scope:[| 0 |] (fun lookup -> lookup 1 = 0) in
  (try
     ignore (E.holds e (A.of_list 2 [ (0, 0); (1, 0) ]));
     Alcotest.fail "no error"
   with Invalid_argument _ -> ())

let test_event_all_value () =
  let e = E.all_value ~id:0 ~name:"av" ~scope:[| 0; 2 |] ~value:1 in
  Alcotest.(check bool) "all 1" true (E.holds e (A.of_list 3 [ (0, 1); (1, 0); (2, 1) ]));
  Alcotest.(check bool) "not all" false (E.holds e (A.of_list 3 [ (0, 1); (1, 1); (2, 0) ]))

let test_event_of_bad_set () =
  let e = E.of_bad_set ~id:0 ~name:"bs" ~scope:[| 0; 1 |] [ [ 0; 1 ]; [ 1; 0 ] ] in
  Alcotest.(check bool) "in set" true (E.holds e (A.of_list 2 [ (0, 0); (1, 1) ]));
  Alcotest.(check bool) "not in set" false (E.holds e (A.of_list 2 [ (0, 0); (1, 0) ]));
  Alcotest.(check bool) "never" false (E.holds (E.never ~id:1 ~name:"n") (A.empty 0))

let test_event_combinators () =
  let e1 = E.all_value ~id:0 ~name:"x0=1" ~scope:[| 0 |] ~value:1 in
  let e2 = E.all_value ~id:1 ~name:"x1=1" ~scope:[| 1 |] ~value:1 in
  let both = E.conj ~id:2 ~name:"both" e1 e2 in
  let either = E.disj ~id:3 ~name:"either" e1 e2 in
  let neither = E.negate ~id:4 ~name:"not-e1" e1 in
  Alcotest.(check (array int)) "union scope" [| 0; 1 |] (E.scope both);
  let a11 = A.of_list 2 [ (0, 1); (1, 1) ] and a10 = A.of_list 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "conj true" true (E.holds both a11);
  Alcotest.(check bool) "conj false" false (E.holds both a10);
  Alcotest.(check bool) "disj true" true (E.holds either a10);
  Alcotest.(check bool) "neg" false (E.holds neither a10)

let test_combinator_probabilities () =
  (* inclusion-exclusion on independent events, exactly *)
  let s =
    S.create [| Var.uniform ~id:0 ~name:"x0" 2; Var.uniform ~id:1 ~name:"x1" 4 |]
  in
  let e1 = E.all_value ~id:0 ~name:"e1" ~scope:[| 0 |] ~value:1 in
  let e2 = E.all_value ~id:1 ~name:"e2" ~scope:[| 1 |] ~value:3 in
  let fixed = A.empty 2 in
  let p1 = S.prob s e1 ~fixed and p2 = S.prob s e2 ~fixed in
  let pc = S.prob s (E.conj ~id:2 ~name:"c" e1 e2) ~fixed in
  let pd = S.prob s (E.disj ~id:3 ~name:"d" e1 e2) ~fixed in
  let pn = S.prob s (E.negate ~id:4 ~name:"n" e1) ~fixed in
  Alcotest.check rat "independence" (R.mul p1 p2) pc;
  Alcotest.check rat "inclusion-exclusion" (R.sub (R.add p1 p2) pc) pd;
  Alcotest.check rat "complement" (R.sub R.one p1) pn

(* ------------------------------------------------------------------ *)
(* Space: exact probabilities                                           *)
(* ------------------------------------------------------------------ *)

let space2 () =
  S.create
    [| Var.uniform ~id:0 ~name:"x0" 2; Var.bernoulli ~id:1 ~name:"x1" (R.of_ints 1 3) |]

let test_prob_unconditioned () =
  let s = space2 () in
  (* both variables 1: 1/2 * 1/3 = 1/6 *)
  let e = E.all_value ~id:0 ~name:"e" ~scope:[| 0; 1 |] ~value:1 in
  Alcotest.check rat "joint" (R.of_ints 1 6) (S.prob s e ~fixed:(A.empty 2));
  (* x0 = x1: 1/2*2/3 + 1/2*1/3 = 1/2 *)
  let eq = E.all_equal ~id:1 ~name:"eq" ~scope:[| 0; 1 |] in
  Alcotest.check rat "equal" (R.of_ints 1 2) (S.prob s eq ~fixed:(A.empty 2))

let test_prob_conditioned () =
  let s = space2 () in
  let e = E.all_value ~id:0 ~name:"e" ~scope:[| 0; 1 |] ~value:1 in
  Alcotest.check rat "given x0=1" (R.of_ints 1 3) (S.prob s e ~fixed:(A.of_list 2 [ (0, 1) ]));
  Alcotest.check rat "given x0=0" R.zero (S.prob s e ~fixed:(A.of_list 2 [ (0, 0) ]));
  Alcotest.check rat "fully fixed" R.one
    (S.prob s e ~fixed:(A.of_list 2 [ (0, 1); (1, 1) ]))

let test_prob_out_of_scope_conditioning () =
  let s = space2 () in
  let e = E.all_value ~id:0 ~name:"e" ~scope:[| 1 |] ~value:1 in
  (* conditioning on x0 does not change an event on x1 *)
  Alcotest.check rat "independent" (R.of_ints 1 3)
    (S.prob s e ~fixed:(A.of_list 2 [ (0, 0) ]))

let test_inc () =
  let s = space2 () in
  let e = E.all_value ~id:0 ~name:"e" ~scope:[| 0; 1 |] ~value:1 in
  (* Inc(e, x0=1) = (1/3)/(1/6) = 2 *)
  Alcotest.check rat "inc up" (R.of_int 2) (S.inc s e ~fixed:(A.empty 2) ~var:0 ~value:1);
  Alcotest.check rat "inc down" R.zero (S.inc s e ~fixed:(A.empty 2) ~var:0 ~value:0);
  (* denominator zero: Inc = 0 by the paper's convention *)
  Alcotest.check rat "zero denom" R.zero
    (S.inc s e ~fixed:(A.of_list 2 [ (0, 0) ]) ~var:1 ~value:1)

let test_prob_vector () =
  let s = space2 () in
  let e = E.all_value ~id:0 ~name:"e" ~scope:[| 0; 1 |] ~value:1 in
  let after, before = S.prob_vector s e ~fixed:(A.empty 2) ~var:0 in
  Alcotest.check rat "before" (R.of_ints 1 6) before;
  Alcotest.check rat "after 0" R.zero after.(0);
  Alcotest.check rat "after 1" (R.of_ints 1 3) after.(1);
  (* law of total probability: sum p_y * after(y) = before *)
  let v = S.var s 0 in
  let total =
    R.sum (List.init (Var.arity v) (fun y -> R.mul (Var.prob v y) after.(y)))
  in
  Alcotest.check rat "total probability" before total

let test_prob_vector_out_of_scope () =
  let s = space2 () in
  let e = E.all_value ~id:0 ~name:"e" ~scope:[| 1 |] ~value:1 in
  let after, before = S.prob_vector s e ~fixed:(A.empty 2) ~var:0 in
  Alcotest.check rat "before" (R.of_ints 1 3) before;
  Alcotest.check rat "after same" before after.(0);
  Alcotest.check rat "after same'" before after.(1)

let test_prob_vector_rejects_fixed () =
  let s = space2 () in
  let e = E.all_value ~id:0 ~name:"e" ~scope:[| 0 |] ~value:1 in
  Alcotest.check_raises "fixed var" (Invalid_argument "Space.prob_vector: var already fixed")
    (fun () -> ignore (S.prob_vector s e ~fixed:(A.of_list 2 [ (0, 0) ]) ~var:0))

let test_sampling () =
  let s = space2 () in
  let rng = Random.State.make [| 42 |] in
  let a = S.sample_unfixed s rng (A.empty 2) in
  Alcotest.(check bool) "complete" true (A.is_complete a);
  let partial = A.of_list 2 [ (0, 1) ] in
  let a = S.sample_unfixed s rng partial in
  Alcotest.(check int) "respects fixed" 1 (A.value_exn a 0);
  (* resample changes only the listed variables *)
  let a' = S.resample s rng a [ 1 ] in
  Alcotest.(check int) "untouched" (A.value_exn a 0) (A.value_exn a' 0)

let test_sampling_frequencies () =
  let s = space2 () in
  let rng = Random.State.make [| 7 |] in
  let n = 20_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    let a = S.sample_unfixed s rng (A.empty 2) in
    if A.value_exn a 1 = 1 then incr ones
  done;
  let freq = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "bernoulli 1/3" true (Float.abs (freq -. (1. /. 3.)) < 0.02)

let test_prob_empty_scope_event () =
  let s = space2 () in
  let always = E.make ~id:0 ~name:"always" ~scope:[||] (fun _ -> true) in
  let never = E.never ~id:1 ~name:"never" in
  Alcotest.check rat "always" R.one (S.prob s always ~fixed:(A.empty 2));
  Alcotest.check rat "never" R.zero (S.prob s never ~fixed:(A.empty 2))

let test_space_rejects_misindexed () =
  Alcotest.check_raises "ids" (Invalid_argument "Space.create: variable id must equal its index")
    (fun () -> ignore (S.create [| Var.uniform ~id:3 ~name:"x" 2 |]))

let test_resample_changes_only_listed () =
  let s =
    S.create (Array.init 6 (fun i -> Var.uniform ~id:i ~name:(Printf.sprintf "x%d" i) 10))
  in
  let rng = Random.State.make [| 9 |] in
  let a = S.sample_unfixed s rng (A.empty 6) in
  let a' = S.resample s rng a [ 2; 4 ] in
  List.iter
    (fun i ->
      if i <> 2 && i <> 4 then
        Alcotest.(check int) (Printf.sprintf "x%d untouched" i) (A.value_exn a i)
          (A.value_exn a' i))
    [ 0; 1; 3; 5 ]

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* random small spaces with a random bad-set event *)
let gen_space_event =
  QCheck.Gen.(
    let* nvars = int_range 1 4 in
    let* arity = int_range 2 3 in
    let* seed = int_range 0 100_000 in
    let vars = Array.init nvars (fun i -> Var.uniform ~id:i ~name:(Printf.sprintf "x%d" i) arity) in
    let s = S.create vars in
    let rng = Random.State.make [| seed |] in
    let rec tuples k = if k = 0 then [ [] ] else List.concat_map (fun t -> List.init arity (fun v -> v :: t)) (tuples (k - 1)) in
    let all = tuples nvars in
    let bad = List.filter (fun _ -> Random.State.bool rng) all in
    let scope = Array.init nvars (fun i -> i) in
    let e = E.of_bad_set ~id:0 ~name:"e" ~scope bad in
    return (s, e, List.length bad, List.length all, seed))

let arb_space_event =
  QCheck.make
    ~print:(fun (_, _, nb, na, seed) -> Printf.sprintf "bad=%d/%d seed=%d" nb na seed)
    gen_space_event

let prob_props =
  [
    prop "prob = |bad|/|all| for uniform" 300 arb_space_event (fun (s, e, nb, na, _) ->
        R.equal (S.prob s e ~fixed:(A.empty (S.num_vars s))) (R.of_ints nb na)
        || nb = 0
           && R.is_zero (S.prob s e ~fixed:(A.empty (S.num_vars s))));
    prop "law of total probability" 300 arb_space_event (fun (s, e, _, _, _) ->
        let before = S.prob s e ~fixed:(A.empty (S.num_vars s)) in
        let after, before' = S.prob_vector s e ~fixed:(A.empty (S.num_vars s)) ~var:0 in
        let v = S.var s 0 in
        R.equal before before'
        && R.equal before
             (R.sum (List.init (Var.arity v) (fun y -> R.mul (Var.prob v y) after.(y)))));
    prop "probability in [0,1]" 300 arb_space_event (fun (s, e, _, _, seed) ->
        let rng = Random.State.make [| seed + 1 |] in
        let a = S.sample_unfixed s rng (A.empty (S.num_vars s)) in
        (* condition on a random prefix *)
        let partial = A.empty (S.num_vars s) in
        Array.iteri
          (fun i v -> if i mod 2 = 0 then A.set_inplace partial i (Option.get v))
          (a :> int option array);
        let p = S.prob s e ~fixed:partial in
        R.geq p R.zero && R.leq p R.one);
    prop "fully conditioned prob is 0 or 1" 300 arb_space_event (fun (s, e, _, _, seed) ->
        let rng = Random.State.make [| seed + 2 |] in
        let a = S.sample_unfixed s rng (A.empty (S.num_vars s)) in
        let p = S.prob s e ~fixed:a in
        (R.equal p R.one && E.holds e a) || (R.is_zero p && not (E.holds e a)));
    prop "expected inc is 1" 300 arb_space_event (fun (s, e, _, _, _) ->
        let before = S.prob s e ~fixed:(A.empty (S.num_vars s)) in
        QCheck.assume (not (R.is_zero before));
        let v = S.var s 0 in
        let expectation =
          R.sum
            (List.init (Var.arity v) (fun y ->
                 R.mul (Var.prob v y) (S.inc s e ~fixed:(A.empty (S.num_vars s)) ~var:0 ~value:y)))
        in
        R.equal expectation R.one);
  ]

(* ------------------------------------------------------------------ *)
(* Backend differential: compiled tables vs. the enumerator             *)
(* ------------------------------------------------------------------ *)

(* Random spaces with non-uniform rational distributions, random
   sub-scope events and a random fixing sequence, rebuilt
   deterministically from the seed so a failing case reproduces. *)
type backend_case = {
  bspace : S.t;
  bevents : E.t array;
  bfixes : (int * int) list;  (* fixing sequence; each var at most once *)
  bseed : int;
}

let build_backend_case (nvars, nevents, seed) =
  let rng = Random.State.make [| seed |] in
  let vars =
    Array.init nvars (fun i ->
        let arity = 2 + Random.State.int rng 2 in
        let ws = Array.init arity (fun _ -> 1 + Random.State.int rng 5) in
        let total = Array.fold_left ( + ) 0 ws in
        Var.make ~id:i ~name:(Printf.sprintf "x%d" i)
          (Array.map (fun w -> R.of_ints w total) ws))
  in
  let bspace = S.create vars in
  let rand_event id =
    let scope =
      match List.filter (fun _ -> Random.State.bool rng) (List.init nvars Fun.id) with
      | [] -> [| Random.State.int rng nvars |]
      | l -> Array.of_list l
    in
    let rec tuples j =
      if j = Array.length scope then [ [] ]
      else
        let rest = tuples (j + 1) in
        List.concat
          (List.init (Var.arity vars.(scope.(j))) (fun v -> List.map (fun t -> v :: t) rest))
    in
    let bad = List.filter (fun _ -> Random.State.int rng 3 = 0) (tuples 0) in
    E.of_bad_set ~id ~name:(Printf.sprintf "e%d" id) ~scope bad
  in
  let bevents = Array.init nevents rand_event in
  let bfixes =
    let chosen =
      Array.of_list
        (List.filter_map
           (fun v ->
             if Random.State.bool rng then
               Some (v, Random.State.int rng (Var.arity vars.(v)))
             else None)
           (List.init nvars Fun.id))
    in
    (* Fisher–Yates: the tracker must not care about fixing order *)
    for i = Array.length chosen - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = chosen.(i) in
      chosen.(i) <- chosen.(j);
      chosen.(j) <- t
    done;
    Array.to_list chosen
  in
  { bspace; bevents; bfixes; bseed = seed }

let arb_backend_case =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "nvars=%d nevents=%d fixes=[%s] seed=%d" (S.num_vars c.bspace)
        (Array.length c.bevents)
        (String.concat ";" (List.map (fun (v, y) -> Printf.sprintf "%d:=%d" v y) c.bfixes))
        c.bseed)
    QCheck.Gen.(
      let* nvars = int_range 1 5 in
      let* nevents = int_range 1 3 in
      let* seed = int_range 0 1_000_000 in
      return (build_backend_case (nvars, nevents, seed)))

let both_backends f =
  (S.with_backend S.Table f, S.with_backend S.Enum f)

(* table prob must be Rat-equal to the enumerated prob under the empty
   assignment and after every prefix of the fixing sequence *)
let law_table_prob_matches_enum c =
  S.compile_events c.bspace c.bevents;
  let ok = ref true in
  let check fixed =
    Array.iter
      (fun e ->
        let pt, pe = both_backends (fun () -> S.prob c.bspace e ~fixed) in
        if not (R.equal pt pe) then ok := false)
      c.bevents
  in
  let fixed = A.empty (S.num_vars c.bspace) in
  check fixed;
  List.iter
    (fun (v, y) ->
      A.set_inplace fixed v y;
      check fixed)
    c.bfixes;
  !ok

(* same for the whole conditional vector over every unfixed variable *)
let law_table_prob_vector_matches_enum c =
  S.compile_events c.bspace c.bevents;
  let n = S.num_vars c.bspace in
  let ok = ref true in
  let check fixed =
    for v = 0 to n - 1 do
      if not (A.is_fixed fixed v) then
        Array.iter
          (fun e ->
            let (at, bt), (ae, be) =
              both_backends (fun () -> S.prob_vector c.bspace e ~fixed ~var:v)
            in
            if not (R.equal bt be) then ok := false;
            Array.iteri (fun y a -> if not (R.equal a ae.(y)) then ok := false) at)
          c.bevents
    done
  in
  let fixed = A.empty n in
  check fixed;
  List.iter
    (fun (v, y) ->
      A.set_inplace fixed v y;
      check fixed)
    c.bfixes;
  !ok

(* the incremental tracker must agree with a from-scratch enumeration
   after every single fixing step, on both prob and prob_vector *)
let law_tracker_matches_enum c =
  S.compile_events c.bspace c.bevents;
  let tr = S.with_backend S.Table (fun () -> S.Cond_tracker.create c.bspace c.bevents) in
  let ok = ref true in
  let check () =
    let fixed = S.Cond_tracker.assignment tr in
    Array.iteri
      (fun i e ->
        let pe = S.with_backend S.Enum (fun () -> S.prob c.bspace e ~fixed) in
        if not (R.equal (S.Cond_tracker.prob tr i) pe) then ok := false;
        for v = 0 to S.num_vars c.bspace - 1 do
          if not (A.is_fixed fixed v) then begin
            let at, bt = S.Cond_tracker.prob_vector tr i ~var:v in
            let ae, be =
              S.with_backend S.Enum (fun () -> S.prob_vector c.bspace e ~fixed ~var:v)
            in
            if not (R.equal bt be) then ok := false;
            Array.iteri (fun y a -> if not (R.equal a ae.(y)) then ok := false) at
          end
        done)
      c.bevents
  in
  check ();
  List.iter
    (fun (v, y) ->
      S.Cond_tracker.fix tr ~var:v ~value:y;
      check ())
    c.bfixes;
  !ok

(* an Enum-created tracker (no tables consulted) walks the same path *)
let law_tracker_backend_independent c =
  S.compile_events c.bspace c.bevents;
  let tt = S.with_backend S.Table (fun () -> S.Cond_tracker.create c.bspace c.bevents) in
  let te = S.with_backend S.Enum (fun () -> S.Cond_tracker.create c.bspace c.bevents) in
  let ok = ref true in
  let check () =
    Array.iteri
      (fun i _ ->
        if not (R.equal (S.Cond_tracker.prob tt i) (S.Cond_tracker.prob te i)) then
          ok := false)
      c.bevents
  in
  check ();
  List.iter
    (fun (v, y) ->
      S.Cond_tracker.fix tt ~var:v ~value:y;
      S.Cond_tracker.fix te ~var:v ~value:y;
      check ())
    c.bfixes;
  !ok

let backend_props =
  [
    prop "table prob = enum prob" 250 arb_backend_case law_table_prob_matches_enum;
    prop "table prob_vector = enum prob_vector" 200 arb_backend_case
      law_table_prob_vector_matches_enum;
    prop "tracker = enum after every fix" 200 arb_backend_case law_tracker_matches_enum;
    prop "tracker is backend independent" 200 arb_backend_case
      law_tracker_backend_independent;
  ]

let () =
  Alcotest.run "lll_prob"
    [
      ( "var",
        [
          Alcotest.test_case "uniform" `Quick test_var_uniform;
          Alcotest.test_case "bernoulli" `Quick test_var_bernoulli;
          Alcotest.test_case "rejects" `Quick test_var_rejects;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "basics" `Quick test_assignment;
          Alcotest.test_case "of_list" `Quick test_assignment_of_list;
        ] );
      ( "event",
        [
          Alcotest.test_case "scope sorted" `Quick test_event_scope_sorted;
          Alcotest.test_case "holds" `Quick test_event_holds;
          Alcotest.test_case "out-of-scope probe" `Quick test_event_out_of_scope_probe;
          Alcotest.test_case "all_value" `Quick test_event_all_value;
          Alcotest.test_case "of_bad_set / never" `Quick test_event_of_bad_set;
          Alcotest.test_case "combinators" `Quick test_event_combinators;
          Alcotest.test_case "combinator probabilities" `Quick test_combinator_probabilities;
        ] );
      ( "space",
        [
          Alcotest.test_case "unconditioned" `Quick test_prob_unconditioned;
          Alcotest.test_case "conditioned" `Quick test_prob_conditioned;
          Alcotest.test_case "out-of-scope conditioning" `Quick test_prob_out_of_scope_conditioning;
          Alcotest.test_case "inc" `Quick test_inc;
          Alcotest.test_case "prob_vector" `Quick test_prob_vector;
          Alcotest.test_case "prob_vector out of scope" `Quick test_prob_vector_out_of_scope;
          Alcotest.test_case "prob_vector rejects fixed" `Quick test_prob_vector_rejects_fixed;
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "sampling frequencies" `Slow test_sampling_frequencies;
          Alcotest.test_case "empty-scope events" `Quick test_prob_empty_scope_event;
          Alcotest.test_case "rejects misindexed vars" `Quick test_space_rejects_misindexed;
          Alcotest.test_case "resample scope" `Quick test_resample_changes_only_listed;
        ] );
      ("properties", prob_props);
      ("backend differential", backend_props);
    ]
