(* The fuzz harness's own test suite: the harness must catch an
   injected fault (and shrink it to a tiny reproducer), and must NOT
   cry wolf on the honest engines or the honest geometry. *)

module Rat = Lll_num.Rat
module I = Lll_core.Instance
module Solver = Lll_core.Solver
module Serial = Lll_core.Serial
module Syn = Lll_core.Synthetic
module Gen = Lll_fuzz.Gen
module Replay = Lll_fuzz.Replay
module Shrink = Lll_fuzz.Shrink
module Fuzz = Lll_fuzz.Fuzz

let engines names = List.map Solver.find_exn names

(* ------------------------------------------------------------------ *)
(* Self-test: the injected perturbed-phi mutant is caught and shrunk   *)
(* ------------------------------------------------------------------ *)

let test_self_test_catches_mutant () =
  let outcome = Fuzz.self_test () in
  match outcome.Fuzz.finding with
  | None -> Alcotest.fail "harness did not catch the injected phi mutation"
  | Some f ->
    Alcotest.(check string)
      "violation names the mutant" Fuzz.mutant_name
      (Fuzz.violation_engine f.Fuzz.violation);
    let shrunk_events = I.num_events f.Fuzz.shrunk in
    if shrunk_events > 4 then
      Alcotest.failf "reproducer not minimal: %d events (want <= 4)" shrunk_events;
    (* the shrunk reproducer must still trip the same engine *)
    (match Fuzz.check ~engines:[ Fuzz.mutant_engine () ] f.Fuzz.shrunk with
    | Some _ -> ()
    | None -> Alcotest.fail "shrunk reproducer no longer reproduces the violation");
    (* ... and must survive a Serialize v2 round trip still violating *)
    let reloaded = Serial.of_string (Serial.to_string f.Fuzz.shrunk) in
    (match Fuzz.check ~engines:[ Fuzz.mutant_engine () ] reloaded with
    | Some _ -> ()
    | None -> Alcotest.fail "serialized reproducer no longer reproduces the violation")

(* ------------------------------------------------------------------ *)
(* No false positives on honest engines                                *)
(* ------------------------------------------------------------------ *)

let honest_sequential =
  [ "fix2"; "fix2-first"; "fix3"; "fix3-first"; "fix3-exact"; "fixr"; "union-bound"; "mt-seq" ]

let test_honest_engines_clean () =
  let outcome = Fuzz.run ~engines:(engines honest_sequential) ~seed:11 ~budget:12 () in
  match outcome.Fuzz.finding with
  | None -> Alcotest.(check int) "all instances tested" 12 outcome.Fuzz.tested
  | Some f ->
    Alcotest.failf "false positive on honest engines (%s): %s" f.Fuzz.label
      (Format.asprintf "%a" Fuzz.pp_violation f.Fuzz.violation)

let test_geometry_oracle_clean () =
  match Fuzz.fuzz_geometry ~seed:3 ~samples:20_000 () with
  | None -> ()
  | Some ((a, b, c), reason) ->
    Alcotest.failf "geometry oracle tripped on (%g, %g, %g): %s" a b c reason

(* ------------------------------------------------------------------ *)
(* Replay checker unit behaviour                                       *)
(* ------------------------------------------------------------------ *)

let test_replay_accepts_honest_trace () =
  let inst = Syn.random ~seed:5 ~n:12 ~rank:3 ~delta:2 ~arity:4 () in
  let report = Solver.solve_by_name "fix3" inst in
  let steps =
    List.map
      (fun (s : Solver.step) -> (s.Solver.var, s.Solver.value))
      report.Solver.outcome.Solver.trace
  in
  match Replay.check_trace inst steps with
  | None -> ()
  | Some f -> Alcotest.failf "honest fix3 trace rejected: %s" (Format.asprintf "%a" Replay.pp_failure f)

let test_replay_rejects_double_fix () =
  let inst = Syn.ring ~seed:2 ~n:6 ~arity:2 () in
  match Replay.check_trace inst [ (0, 0); (0, 1) ] with
  | Some { step_index = 1; var = 0; _ } -> ()
  | Some f -> Alcotest.failf "wrong failure: %s" (Format.asprintf "%a" Replay.pp_failure f)
  | None -> Alcotest.fail "trace fixing a variable twice was accepted"

(* ------------------------------------------------------------------ *)
(* Generator and shrinker invariants                                   *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let gen seed =
    let rng = Random.State.make [| seed |] in
    let h = Gen.generate rng in
    (h.Gen.label, Serial.to_string h.Gen.instance)
  in
  let l1, s1 = gen 42 and l2, s2 = gen 42 in
  Alcotest.(check string) "same label" l1 l2;
  Alcotest.(check string) "same instance" s1 s2

let test_generator_valid_instances () =
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 25 do
    let h = Gen.generate rng in
    let inst = h.Gen.instance in
    Alcotest.(check bool) "rank between 1 and 3" true (I.rank inst >= 1 && I.rank inst <= 3);
    (* probabilities stay probabilities; a [Just_above] overflow tuple
       can legitimately push an event all the way to p = 1 (degenerate
       heavy value on a rank-1 event) — that hostility is intended *)
    Alcotest.(check bool) "probabilities are genuine" true
      (Array.for_all (fun p -> Rat.leq Rat.zero p && Rat.leq p Rat.one) (I.initial_probs inst))
  done

(* ------------------------------------------------------------------ *)
(* Threshold-pinned sinkless sweep: generator, oracle, shrinker        *)
(* ------------------------------------------------------------------ *)

(* The whole registry (including the application engines) stays clean
   on threshold-pinned sinkless-orientation instances. *)
let test_sinkless_sweep_clean () =
  Lll_apps.App_engines.ensure_registered ();
  let rng = Random.State.make [| 23 |] in
  for _ = 1 to 10 do
    let h = Gen.sinkless rng in
    match Fuzz.check ~engines:(Solver.all ()) h.Gen.instance with
    | None -> ()
    | Some v ->
      Alcotest.failf "sinkless sweep violation on %s: %s" h.Gen.label
        (Format.asprintf "%a" Fuzz.pp_violation v)
  done

(* The trace-replay oracle accepts an honest fixer trace on an
   at-threshold sinkless instance (rank 2, p exactly 2^-d). *)
let test_replay_on_sinkless_trace () =
  let g = Lll_graph.Generators.cycle 8 in
  let inst = Lll_apps.Sinkless.instance g in
  let report = Solver.solve_by_name "fix2" inst in
  let steps =
    List.map
      (fun (s : Solver.step) -> (s.Solver.var, s.Solver.value))
      report.Solver.outcome.Solver.trace
  in
  match Replay.check_trace inst steps with
  | None -> ()
  | Some f ->
    Alcotest.failf "honest fix2 trace on sinkless rejected: %s"
      (Format.asprintf "%a" Replay.pp_failure f)

(* The shrinker terminates on sinkless instances and preserves the
   reproducing property (here: staying rank 2). *)
let test_shrink_sinkless () =
  let rng = Random.State.make [| 31 |] in
  let h = Gen.sinkless rng in
  let shrunk = Shrink.minimize ~reproduces:(fun i -> I.rank i = 2) h.Gen.instance in
  Alcotest.(check int) "still rank 2" 2 (I.rank shrunk);
  Alcotest.(check bool) "strictly smaller" true
    (I.num_events shrunk < I.num_events h.Gen.instance)

let test_shrink_reaches_fixpoint () =
  (* with an always-true predicate the shrinker must drive the instance
     to its smallest well-formed shape rather than loop forever *)
  let inst = (Gen.generate (Random.State.make [| 4 |])).Gen.instance in
  let shrunk = Shrink.minimize ~reproduces:(fun _ -> true) inst in
  Alcotest.(check int) "one event left" 1 (I.num_events shrunk);
  Alcotest.(check bool) "at most rank vars left" true (I.num_vars shrunk <= I.rank inst)

let () =
  Alcotest.run "lll_fuzz"
    [
      ( "harness",
        [
          Alcotest.test_case "self-test catches and shrinks the phi mutant" `Quick
            test_self_test_catches_mutant;
          Alcotest.test_case "honest engines produce no findings" `Quick
            test_honest_engines_clean;
          Alcotest.test_case "geometry oracle clean on honest Srep" `Quick
            test_geometry_oracle_clean;
        ] );
      ( "replay",
        [
          Alcotest.test_case "accepts an honest fix3 trace" `Quick test_replay_accepts_honest_trace;
          Alcotest.test_case "rejects a double fix" `Quick test_replay_rejects_double_fix;
        ] );
      ( "gen-shrink",
        [
          Alcotest.test_case "generator is deterministic in the seed" `Quick
            test_generator_deterministic;
          Alcotest.test_case "generated instances are valid and near-threshold" `Quick
            test_generator_valid_instances;
          Alcotest.test_case "shrinker reaches a fixpoint" `Quick test_shrink_reaches_fixpoint;
        ] );
      ( "threshold-sweep",
        [
          Alcotest.test_case "registry clean on threshold-pinned sinkless" `Quick
            test_sinkless_sweep_clean;
          Alcotest.test_case "replay oracle accepts sinkless fixer trace" `Quick
            test_replay_on_sinkless_trace;
          Alcotest.test_case "shrinker preserves rank on sinkless" `Quick test_shrink_sinkless;
        ] );
    ]
