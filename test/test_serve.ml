(* Tests for the solve service: the LRU instance cache (including its
   concurrent build-once contract), the frame protocol (including the
   hostile length-header bound), the batching scheduler (grouping,
   cache hits, bit-identical repeat output, per-request error
   isolation, response memoization), the socket server's fault paths
   (dropped clients, busy sockets), and the mmap read path of the
   binary container. *)

module Cache = Lll_serve.Cache
module Protocol = Lll_serve.Protocol
module Sched = Lll_serve.Sched
module Serve = Lll_serve.Serve
module Client = Lll_serve.Client
module Workload = Lll_serve.Workload
module Store = Lll_store.Store
module Syn = Lll_core.Synthetic
module Serial = Lll_core.Serial

(* ------------------------------------------------------------------ *)
(* Cache                                                                *)
(* ------------------------------------------------------------------ *)

let tiny n () = Syn.ring ~seed:1 ~n ~arity:4 ()

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 in
  let builds = ref 0 in
  let build n () =
    incr builds;
    tiny n ()
  in
  let _, s1 = Cache.find_or_build c ~key:"a" ~build:(build 10) in
  let _, s2 = Cache.find_or_build c ~key:"a" ~build:(build 10) in
  Alcotest.(check bool) "first is miss" true (s1 = `Miss);
  Alcotest.(check bool) "second is hit" true (s2 = `Hit);
  Alcotest.(check int) "built once" 1 !builds;
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.s_hits;
  Alcotest.(check int) "misses" 1 st.Cache.s_misses;
  Alcotest.(check int) "size" 1 st.Cache.s_size

let test_cache_hit_returns_same_instance () =
  (* a hit is the cached instance itself — zero rebuild work *)
  let c = Cache.create ~capacity:2 in
  let i1, _ = Cache.find_or_build c ~key:"k" ~build:(tiny 12) in
  let i2, _ = Cache.find_or_build c ~key:"k" ~build:(tiny 12) in
  Alcotest.(check bool) "physically equal" true (i1 == i2)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  let touch key = ignore (Cache.find_or_build c ~key ~build:(tiny 10)) in
  touch "a";
  touch "b";
  touch "a";
  (* "b" is now least recently used; inserting "c" must evict it *)
  touch "c";
  let _, sa = Cache.find_or_build c ~key:"a" ~build:(tiny 10) in
  Alcotest.(check bool) "a survived" true (sa = `Hit);
  let _, sb = Cache.find_or_build c ~key:"b" ~build:(tiny 10) in
  Alcotest.(check bool) "b evicted" true (sb = `Miss);
  let st = Cache.stats c in
  Alcotest.(check int) "evictions" 2 st.Cache.s_evictions;
  Alcotest.(check int) "size bounded" 2 st.Cache.s_size

let test_cache_rejects_bad_capacity () =
  try
    ignore (Cache.create ~capacity:0);
    Alcotest.fail "capacity 0 accepted"
  with Invalid_argument _ -> ()

let test_content_key_distinguishes () =
  Alcotest.(check bool) "same blob same key" true
    (Cache.content_key "hello" = Cache.content_key "hello");
  Alcotest.(check bool) "distinct blobs distinct keys" false
    (Cache.content_key "hello" = Cache.content_key "hellp")

let test_cache_concurrent_build_once () =
  (* four domains race for the same uncached key; the per-key build
     lock must run the builder exactly once, with everyone else waiting
     for (and sharing) that one value *)
  let c = Cache.create ~capacity:4 in
  let builds = Atomic.make 0 in
  let build () =
    Atomic.incr builds;
    Unix.sleepf 0.05;
    (* long enough that the other domains arrive mid-build *)
    tiny 10 ()
  in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> fst (Cache.find_or_build c ~key:"k" ~build)))
  in
  let values = List.map Domain.join doms in
  Alcotest.(check int) "built once" 1 (Atomic.get builds);
  (match values with
  | v :: rest -> List.iter (fun v' -> Alcotest.(check bool) "shared value" true (v == v')) rest
  | [] -> assert false);
  let st = Cache.stats c in
  Alcotest.(check int) "one miss" 1 st.Cache.s_misses;
  Alcotest.(check int) "three hits" 3 st.Cache.s_hits

let test_cache_failed_build_not_cached () =
  (* waiters on a failing build see the failure; the key is then free
     for a later successful build *)
  let c = Cache.create ~capacity:4 in
  (try
     ignore (Cache.find_or_build c ~key:"k" ~build:(fun () -> failwith "boom"));
     Alcotest.fail "failure swallowed"
   with Failure m -> Alcotest.(check string) "builder's exception" "boom" m);
  let _, s = Cache.find_or_build c ~key:"k" ~build:(tiny 10) in
  Alcotest.(check bool) "rebuilds after failure" true (s = `Miss)

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let f =
    {
      Protocol.header = [ ("op", "solve"); ("family", "ring"); ("n", "30") ];
      body = "raw \x00 bytes\nsecond line";
    }
  in
  let f' = Protocol.decode (Protocol.encode f) in
  Alcotest.(check bool) "header" true (f.Protocol.header = f'.Protocol.header);
  Alcotest.(check string) "body" f.Protocol.body f'.Protocol.body

let test_protocol_escaping () =
  (* every reserved character survives a header value round trip *)
  let hostile = "a b=c%d\ne\rf%%20" in
  let f = { Protocol.header = [ ("k", hostile); ("plain", "v") ]; body = "" } in
  let f' = Protocol.decode (Protocol.encode f) in
  Alcotest.(check (option string)) "hostile value" (Some hostile) (Protocol.get f' "k");
  Alcotest.(check (option string)) "plain value" (Some "v") (Protocol.get f' "plain")

let test_protocol_channel_framing () =
  let path = Filename.temp_file "lll_serve" ".frames" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let frames =
        [
          { Protocol.header = [ ("op", "stats") ]; body = "" };
          { Protocol.header = [ ("op", "solve"); ("n", "8") ]; body = String.make 1000 '\x7f' };
        ]
      in
      let oc = open_out_bin path in
      List.iter (Protocol.write_frame oc) frames;
      close_out oc;
      let ic = open_in_bin path in
      let got =
        List.map
          (fun _ ->
            match Protocol.read_frame ic with
            | Some f -> f
            | None -> Alcotest.fail "premature EOF")
          frames
      in
      Alcotest.(check bool) "frames roundtrip" true (got = frames);
      Alcotest.(check bool) "clean EOF" true (Protocol.read_frame ic = None);
      close_in ic)

let test_protocol_truncation () =
  let path = Filename.temp_file "lll_serve" ".trunc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      (* a length header promising 100 bytes, then only 3 *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 100l;
      output_bytes oc hdr;
      output_string oc "abc";
      close_out oc;
      let ic = open_in_bin path in
      (try
         ignore (Protocol.read_frame ic);
         Alcotest.fail "truncated frame accepted"
       with Protocol.Protocol_error _ -> ());
      close_in ic)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_protocol_oversized_header () =
  (* a hostile length header is rejected before any body allocation;
     the 4-byte length is decoded unsigned so a high bit cannot smuggle
     through as a negative length *)
  let with_limit limit f =
    let old = Protocol.max_frame () in
    Protocol.set_max_frame limit;
    Fun.protect ~finally:(fun () -> Protocol.set_max_frame old) f
  in
  with_limit 4096 (fun () ->
      let path = Filename.temp_file "lll_serve" ".hostile" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          List.iter
            (fun len ->
              let oc = open_out_bin path in
              let hdr = Bytes.create 4 in
              Bytes.set_int32_le hdr 0 len;
              output_bytes oc hdr;
              close_out oc;
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () ->
                  match Protocol.read_frame ic with
                  | _ -> Alcotest.fail "oversized length accepted"
                  | exception Protocol.Protocol_error m ->
                    Alcotest.(check bool) "names the limit" true (contains_sub m "limit")))
            [ 5000l; 0x7FFF_FFFFl; -1l (* = u32 0xFFFFFFFF *) ];
          (* writes past the bound are refused too *)
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              match
                Protocol.write_frame oc
                  { Protocol.header = []; body = String.make 8192 'x' }
              with
              | () -> Alcotest.fail "oversized write accepted"
              | exception Protocol.Protocol_error _ -> ())))

let test_protocol_limit_accessors () =
  let old = Protocol.max_frame () in
  (try
     Protocol.set_max_frame 16;
     Alcotest.fail "sub-minimum max_frame accepted"
   with Invalid_argument _ -> ());
  (try
     Protocol.set_max_batch 0;
     Alcotest.fail "zero max_batch accepted"
   with Invalid_argument _ -> ());
  Protocol.set_max_frame 8192;
  Alcotest.(check int) "max_frame updates" 8192 (Protocol.max_frame ());
  Protocol.set_max_frame old;
  Alcotest.(check bool) "max_batch positive" true (Protocol.max_batch () >= 1)

let test_protocol_accessors () =
  let f = { Protocol.header = [ ("n", "42"); ("bad", "x"); ("flag", "1"); ("off", "0") ]; body = "" } in
  Alcotest.(check (option int)) "int" (Some 42) (Protocol.get_int f "n");
  Alcotest.(check (option int)) "absent int" None (Protocol.get_int f "missing");
  (try
     ignore (Protocol.get_int f "bad");
     Alcotest.fail "non-integer accepted"
   with Protocol.Protocol_error _ -> ());
  Alcotest.(check bool) "flag set" true (Protocol.get_bool f "flag");
  Alcotest.(check bool) "flag 0" false (Protocol.get_bool f "off");
  Alcotest.(check bool) "flag absent" false (Protocol.get_bool f "nope")

(* ------------------------------------------------------------------ *)
(* Workload                                                             *)
(* ------------------------------------------------------------------ *)

let test_workload_spec_keys () =
  let store = Store.create () in
  let frame n =
    { Protocol.header = [ ("op", "solve"); ("family", "ring"); ("n", string_of_int n) ]; body = "" }
  in
  let key n = Store.descr_key store (Workload.of_frame (frame n)) in
  let k1 = key 30 in
  let k2 = key 30 in
  let k3 = key 31 in
  Alcotest.(check string) "same spec same key" k1 k2;
  Alcotest.(check bool) "different n different key" false (k1 = k3);
  Alcotest.(check bool) "spec-schema key" true
    (String.length k1 > 5 && String.sub k1 0 5 = "spec:")

let test_workload_blob_key () =
  let store = Store.create () in
  let inst = Syn.ring ~seed:2 ~n:10 ~arity:4 () in
  let blob = Lll_core.Serial.to_binary_string inst in
  let frame = { Protocol.header = [ ("op", "solve") ]; body = blob } in
  let descr = Workload.of_frame frame in
  Alcotest.(check string) "digest key" (Cache.content_key blob)
    (Store.descr_key store descr);
  let built, _ = Store.fetch_descr store descr in
  Alcotest.(check int) "builds the blob" (Lll_core.Instance.num_events inst)
    (Lll_core.Instance.num_events built)

let test_workload_rejects_unknown_family () =
  let frame = { Protocol.header = [ ("family", "moebius") ]; body = "" } in
  try
    ignore (Workload.of_frame frame);
    Alcotest.fail "unknown family accepted"
  with Protocol.Protocol_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

let run_batch sched frames =
  let all = ref [] in
  let _ = Sched.handle_batch sched frames ~emit:(fun f -> all := f :: !all) in
  let all = List.rev !all in
  let results =
    List.filter (fun f -> Protocol.get f "frame" = Some "result") all
  in
  (all, results)

let solve_frame ?(solver = "fix3") ?(extra = []) n =
  {
    Protocol.header =
      [ ("op", "solve"); ("family", "ring"); ("n", string_of_int n); ("solver", solver) ] @ extra;
    body = "";
  }

let test_sched_repeat_hits_cache () =
  let sched = Sched.create ~capacity:8 () in
  let _, r1 = run_batch sched [ solve_frame 20 ] in
  let _, r2 = run_batch sched [ solve_frame 20 ] in
  match (r1, r2) with
  | [ a ], [ b ] ->
    Alcotest.(check (option string)) "first miss" (Some "miss") (Protocol.get a "cache");
    Alcotest.(check (option string)) "repeat hit" (Some "hit") (Protocol.get b "cache");
    Alcotest.(check string) "byte-identical assignment" a.Protocol.body b.Protocol.body;
    Alcotest.(check (option string)) "ok" (Some "1") (Protocol.get b "ok")
  | _ -> Alcotest.fail "expected one result per batch"

let test_sched_batch_grouping () =
  (* same-key requests inside one batch share one cache fetch: the
     first is the miss, the rest are hits; ids map back to arrival
     order *)
  let sched = Sched.create ~capacity:8 () in
  let _, results = run_batch sched [ solve_frame 20; solve_frame 24; solve_frame 20 ] in
  Alcotest.(check int) "three results" 3 (List.length results);
  List.iteri
    (fun i f ->
      Alcotest.(check (option int)) "id in arrival order" (Some i) (Protocol.get_int f "id"))
    results;
  let cache_of i = Protocol.get (List.nth results i) "cache" in
  Alcotest.(check (option string)) "first of group misses" (Some "miss") (cache_of 0);
  Alcotest.(check (option string)) "other key misses" (Some "miss") (cache_of 1);
  Alcotest.(check (option string)) "repeat in batch hits" (Some "hit") (cache_of 2);
  Alcotest.(check string) "group output identical" (List.nth results 0).Protocol.body
    (List.nth results 2).Protocol.body

let test_sched_error_isolation () =
  let sched = Sched.create ~capacity:4 () in
  let bad = { Protocol.header = [ ("op", "transmogrify") ]; body = "" } in
  let _, results = run_batch sched [ bad; solve_frame 20 ] in
  match results with
  | [ e; ok ] ->
    Alcotest.(check (option string)) "bad op errors" (Some "error") (Protocol.get e "status");
    Alcotest.(check bool) "has reason" true (Protocol.get e "error" <> None);
    Alcotest.(check (option string)) "good request unaffected" (Some "ok")
      (Protocol.get ok "status")
  | _ -> Alcotest.fail "expected two results"

let test_sched_unknown_solver_errors () =
  let sched = Sched.create ~capacity:4 () in
  let _, results = run_batch sched [ solve_frame ~solver:"no-such-engine" 20 ] in
  match results with
  | [ r ] ->
    Alcotest.(check (option string)) "status" (Some "error") (Protocol.get r "status")
  | _ -> Alcotest.fail "expected one result"

let test_sched_metrics_stream () =
  let sched = Sched.create ~capacity:4 () in
  let all, results =
    run_batch sched [ solve_frame ~solver:"mp2" ~extra:[ ("stream", "1") ] 24 ]
  in
  let metrics = List.filter (fun f -> Protocol.get f "frame" = Some "metrics") all in
  Alcotest.(check bool) "streamed records" true (metrics <> []);
  List.iter
    (fun m ->
      Alcotest.(check (option int)) "tagged id" (Some 0) (Protocol.get_int m "id");
      Alcotest.(check bool) "json body" true
        (String.length m.Protocol.body > 0 && m.Protocol.body.[0] = '{'))
    metrics;
  (* metrics precede the result frame *)
  (match all with
  | first :: _ ->
    Alcotest.(check (option string)) "metrics first" (Some "metrics") (Protocol.get first "frame")
  | [] -> Alcotest.fail "no frames");
  match results with
  | [ r ] -> Alcotest.(check (option string)) "ok" (Some "1") (Protocol.get r "ok")
  | _ -> Alcotest.fail "expected one result"

let test_sched_solve_verify_flow () =
  (* verify the assignment a solve returned, against the same cached
     instance *)
  let sched = Sched.create ~capacity:4 () in
  let _, r1 = run_batch sched [ solve_frame 20 ] in
  let body = (List.hd r1).Protocol.body in
  let verify =
    { Protocol.header = [ ("op", "verify"); ("family", "ring"); ("n", "20") ]; body }
  in
  let _, r2 = run_batch sched [ verify ] in
  match r2 with
  | [ r ] ->
    Alcotest.(check (option string)) "verified" (Some "1") (Protocol.get r "ok");
    Alcotest.(check (option string)) "cache hit" (Some "hit") (Protocol.get r "cache");
    Alcotest.(check (option string)) "no violations" (Some "") (Protocol.get r "violated")
  | _ -> Alcotest.fail "expected one result"

let test_sched_blob_solve () =
  (* an uploaded binary v3 blob solves identically to the spec-described
     run of the same instance *)
  let sched = Sched.create ~capacity:4 () in
  let inst = Syn.ring ~seed:1 ~n:20 ~arity:4 () in
  let blob = Lll_core.Serial.to_binary_string inst in
  let by_blob = { Protocol.header = [ ("op", "solve"); ("solver", "fix3") ]; body = blob } in
  let _, r1 = run_batch sched [ by_blob ] in
  let _, r2 = run_batch sched [ solve_frame 20 ] in
  let _, r3 = run_batch sched [ by_blob ] in
  match (r1, r2, r3) with
  | [ a ], [ b ], [ c ] ->
    Alcotest.(check string) "blob solves like spec" a.Protocol.body b.Protocol.body;
    Alcotest.(check (option string)) "blob repeat hits" (Some "hit") (Protocol.get c "cache")
  | _ -> Alcotest.fail "expected one result per batch"

let test_sched_stats_op () =
  let sched = Sched.create ~capacity:4 () in
  let _ = run_batch sched [ solve_frame 20 ] in
  let _, results =
    run_batch sched [ { Protocol.header = [ ("op", "stats") ]; body = "" } ]
  in
  match results with
  | [ r ] ->
    Alcotest.(check (option int)) "size" (Some 1) (Protocol.get_int r "size");
    Alcotest.(check (option int)) "misses" (Some 1) (Protocol.get_int r "misses")
  | _ -> Alcotest.fail "expected one result"

let test_sched_shutdown_signal () =
  let sched = Sched.create ~capacity:4 () in
  let outcome =
    Sched.handle_batch sched
      [ { Protocol.header = [ ("op", "shutdown") ]; body = "" } ]
      ~emit:(fun _ -> ())
  in
  Alcotest.(check bool) "signals shutdown" true (outcome = `Shutdown)

(* ------------------------------------------------------------------ *)
(* Socket server fault paths                                            *)
(* ------------------------------------------------------------------ *)

let fresh_sock_path () =
  let p = Filename.temp_file "lll_test" ".sock" in
  Sys.remove p;
  p

(* Run an in-process socket server in its own domain, wait until it
   accepts, hand the path to [f], then request shutdown and join. *)
let with_socket_server ?(workers = 2) f =
  let path = fresh_sock_path () in
  let server = Domain.spawn (fun () -> Serve.serve_socket ~capacity:4 ~workers ~path ()) in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Client.connect_socket path with
    | conn -> Client.close conn
    | exception _ ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "server did not come up";
      Unix.sleepf 0.02;
      wait ()
  in
  wait ();
  Fun.protect
    ~finally:(fun () ->
      (try Client.shutdown (Client.connect_socket path) with _ -> ());
      Domain.join server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let solve_frame =
  {
    Protocol.header = [ ("op", "solve"); ("family", "ring"); ("n", "24"); ("solver", "fix3") ];
    body = "";
  }

let check_serves path =
  let conn = Client.connect_socket path in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      let r = Client.request conn solve_frame in
      Alcotest.(check (option string)) "served" (Some "ok") (Protocol.get r.Client.result "status"))

let test_socket_client_drop () =
  with_socket_server (fun path ->
      (* a client that fires a request and vanishes without reading the
         response: the write lands on a closed peer, and with SIGPIPE
         ignored that must end only this connection *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let oc = Unix.out_channel_of_descr fd in
      Protocol.write_frame oc solve_frame;
      flush oc;
      Unix.close fd;
      check_serves path)

let test_socket_hostile_header () =
  with_socket_server (fun path ->
      (* a raw length header far past max_frame: the connection must be
         dropped without the allocation, and the server must go on
         accepting *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 0x7FFF_FFFFl;
      let _ = Unix.write fd hdr 0 4 in
      let closed =
        let b = Bytes.create 1 in
        match Unix.read fd b 0 1 with 0 -> true | _ -> false | exception Unix.Unix_error _ -> true
      in
      Unix.close fd;
      Alcotest.(check bool) "hostile connection dropped" true closed;
      check_serves path)

let test_socket_busy () =
  (* a regular file at the socket path must not be clobbered *)
  let file = Filename.temp_file "lll_test" ".notsock" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      try
        Serve.serve_socket ~path:file ();
        Alcotest.fail "bound over a regular file"
      with Serve.Socket_busy _ -> ());
  (* ... and neither must a live server's socket *)
  with_socket_server (fun path ->
      (try
         Serve.serve_socket ~path ();
         Alcotest.fail "bound over a live server"
       with Serve.Socket_busy _ -> ());
      check_serves path)

let test_socket_fleet () =
  with_socket_server (fun path ->
      match Client.smoke_fleet ~clients:4 ~requests:3 path with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lll_serve"
    [
      ( "cache",
        [
          Alcotest.test_case "hit and miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "hit is the cached instance" `Quick
            test_cache_hit_returns_same_instance;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "rejects bad capacity" `Quick test_cache_rejects_bad_capacity;
          Alcotest.test_case "content keys" `Quick test_content_key_distinguishes;
          Alcotest.test_case "concurrent build once" `Quick test_cache_concurrent_build_once;
          Alcotest.test_case "failed build not cached" `Quick test_cache_failed_build_not_cached;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "header escaping" `Quick test_protocol_escaping;
          Alcotest.test_case "channel framing" `Quick test_protocol_channel_framing;
          Alcotest.test_case "truncation" `Quick test_protocol_truncation;
          Alcotest.test_case "oversized header" `Quick test_protocol_oversized_header;
          Alcotest.test_case "limit accessors" `Quick test_protocol_limit_accessors;
          Alcotest.test_case "accessors" `Quick test_protocol_accessors;
        ] );
      ( "workload",
        [
          Alcotest.test_case "spec keys canonical" `Quick test_workload_spec_keys;
          Alcotest.test_case "blob keyed by digest" `Quick test_workload_blob_key;
          Alcotest.test_case "rejects unknown family" `Quick test_workload_rejects_unknown_family;
        ] );
      ( "sched",
        [
          Alcotest.test_case "repeat request hits cache" `Quick test_sched_repeat_hits_cache;
          Alcotest.test_case "batch grouping" `Quick test_sched_batch_grouping;
          Alcotest.test_case "error isolation" `Quick test_sched_error_isolation;
          Alcotest.test_case "unknown solver" `Quick test_sched_unknown_solver_errors;
          Alcotest.test_case "metrics streaming" `Quick test_sched_metrics_stream;
          Alcotest.test_case "solve then verify" `Quick test_sched_solve_verify_flow;
          Alcotest.test_case "blob solve" `Quick test_sched_blob_solve;
          Alcotest.test_case "stats op" `Quick test_sched_stats_op;
          Alcotest.test_case "shutdown signal" `Quick test_sched_shutdown_signal;
        ] );
      ( "socket",
        [
          Alcotest.test_case "client drop mid-response" `Quick test_socket_client_drop;
          Alcotest.test_case "hostile length header" `Quick test_socket_hostile_header;
          Alcotest.test_case "busy socket refused" `Quick test_socket_busy;
          Alcotest.test_case "4-client fleet" `Quick test_socket_fleet;
        ] );
    ]
