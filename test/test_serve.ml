(* Tests for the solve service: the LRU instance cache, the frame
   protocol, and the batching scheduler (grouping, cache hits,
   bit-identical repeat output, per-request error isolation). *)

module Cache = Lll_serve.Cache
module Protocol = Lll_serve.Protocol
module Sched = Lll_serve.Sched
module Workload = Lll_serve.Workload
module Syn = Lll_core.Synthetic

(* ------------------------------------------------------------------ *)
(* Cache                                                                *)
(* ------------------------------------------------------------------ *)

let tiny n () = Syn.ring ~seed:1 ~n ~arity:4 ()

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 in
  let builds = ref 0 in
  let build n () =
    incr builds;
    tiny n ()
  in
  let _, s1 = Cache.find_or_build c ~key:"a" ~build:(build 10) in
  let _, s2 = Cache.find_or_build c ~key:"a" ~build:(build 10) in
  Alcotest.(check bool) "first is miss" true (s1 = `Miss);
  Alcotest.(check bool) "second is hit" true (s2 = `Hit);
  Alcotest.(check int) "built once" 1 !builds;
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.s_hits;
  Alcotest.(check int) "misses" 1 st.Cache.s_misses;
  Alcotest.(check int) "size" 1 st.Cache.s_size

let test_cache_hit_returns_same_instance () =
  (* a hit is the cached instance itself — zero rebuild work *)
  let c = Cache.create ~capacity:2 in
  let i1, _ = Cache.find_or_build c ~key:"k" ~build:(tiny 12) in
  let i2, _ = Cache.find_or_build c ~key:"k" ~build:(tiny 12) in
  Alcotest.(check bool) "physically equal" true (i1 == i2)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  let touch key = ignore (Cache.find_or_build c ~key ~build:(tiny 10)) in
  touch "a";
  touch "b";
  touch "a";
  (* "b" is now least recently used; inserting "c" must evict it *)
  touch "c";
  let _, sa = Cache.find_or_build c ~key:"a" ~build:(tiny 10) in
  Alcotest.(check bool) "a survived" true (sa = `Hit);
  let _, sb = Cache.find_or_build c ~key:"b" ~build:(tiny 10) in
  Alcotest.(check bool) "b evicted" true (sb = `Miss);
  let st = Cache.stats c in
  Alcotest.(check int) "evictions" 2 st.Cache.s_evictions;
  Alcotest.(check int) "size bounded" 2 st.Cache.s_size

let test_cache_rejects_bad_capacity () =
  try
    ignore (Cache.create ~capacity:0);
    Alcotest.fail "capacity 0 accepted"
  with Invalid_argument _ -> ()

let test_content_key_distinguishes () =
  Alcotest.(check bool) "same blob same key" true
    (Cache.content_key "hello" = Cache.content_key "hello");
  Alcotest.(check bool) "distinct blobs distinct keys" false
    (Cache.content_key "hello" = Cache.content_key "hellp")

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let f =
    {
      Protocol.header = [ ("op", "solve"); ("family", "ring"); ("n", "30") ];
      body = "raw \x00 bytes\nsecond line";
    }
  in
  let f' = Protocol.decode (Protocol.encode f) in
  Alcotest.(check bool) "header" true (f.Protocol.header = f'.Protocol.header);
  Alcotest.(check string) "body" f.Protocol.body f'.Protocol.body

let test_protocol_escaping () =
  (* every reserved character survives a header value round trip *)
  let hostile = "a b=c%d\ne\rf%%20" in
  let f = { Protocol.header = [ ("k", hostile); ("plain", "v") ]; body = "" } in
  let f' = Protocol.decode (Protocol.encode f) in
  Alcotest.(check (option string)) "hostile value" (Some hostile) (Protocol.get f' "k");
  Alcotest.(check (option string)) "plain value" (Some "v") (Protocol.get f' "plain")

let test_protocol_channel_framing () =
  let path = Filename.temp_file "lll_serve" ".frames" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let frames =
        [
          { Protocol.header = [ ("op", "stats") ]; body = "" };
          { Protocol.header = [ ("op", "solve"); ("n", "8") ]; body = String.make 1000 '\x7f' };
        ]
      in
      let oc = open_out_bin path in
      List.iter (Protocol.write_frame oc) frames;
      close_out oc;
      let ic = open_in_bin path in
      let got =
        List.map
          (fun _ ->
            match Protocol.read_frame ic with
            | Some f -> f
            | None -> Alcotest.fail "premature EOF")
          frames
      in
      Alcotest.(check bool) "frames roundtrip" true (got = frames);
      Alcotest.(check bool) "clean EOF" true (Protocol.read_frame ic = None);
      close_in ic)

let test_protocol_truncation () =
  let path = Filename.temp_file "lll_serve" ".trunc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      (* a length header promising 100 bytes, then only 3 *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 100l;
      output_bytes oc hdr;
      output_string oc "abc";
      close_out oc;
      let ic = open_in_bin path in
      (try
         ignore (Protocol.read_frame ic);
         Alcotest.fail "truncated frame accepted"
       with Protocol.Protocol_error _ -> ());
      close_in ic)

let test_protocol_accessors () =
  let f = { Protocol.header = [ ("n", "42"); ("bad", "x"); ("flag", "1"); ("off", "0") ]; body = "" } in
  Alcotest.(check (option int)) "int" (Some 42) (Protocol.get_int f "n");
  Alcotest.(check (option int)) "absent int" None (Protocol.get_int f "missing");
  (try
     ignore (Protocol.get_int f "bad");
     Alcotest.fail "non-integer accepted"
   with Protocol.Protocol_error _ -> ());
  Alcotest.(check bool) "flag set" true (Protocol.get_bool f "flag");
  Alcotest.(check bool) "flag 0" false (Protocol.get_bool f "off");
  Alcotest.(check bool) "flag absent" false (Protocol.get_bool f "nope")

(* ------------------------------------------------------------------ *)
(* Workload                                                             *)
(* ------------------------------------------------------------------ *)

let test_workload_spec_keys () =
  let frame n =
    { Protocol.header = [ ("op", "solve"); ("family", "ring"); ("n", string_of_int n) ]; body = "" }
  in
  let k1, _ = Workload.of_frame (frame 30) in
  let k2, _ = Workload.of_frame (frame 30) in
  let k3, _ = Workload.of_frame (frame 31) in
  Alcotest.(check string) "same spec same key" k1 k2;
  Alcotest.(check bool) "different n different key" false (k1 = k3)

let test_workload_blob_key () =
  let inst = Syn.ring ~seed:2 ~n:10 ~arity:4 () in
  let blob = Lll_core.Serial.to_binary_string inst in
  let frame = { Protocol.header = [ ("op", "solve") ]; body = blob } in
  let key, build = Workload.of_frame frame in
  Alcotest.(check string) "digest key" (Cache.content_key blob) key;
  Alcotest.(check int) "builds the blob" (Lll_core.Instance.num_events inst)
    (Lll_core.Instance.num_events (build ()))

let test_workload_rejects_unknown_family () =
  let frame = { Protocol.header = [ ("family", "moebius") ]; body = "" } in
  try
    ignore (Workload.of_frame frame);
    Alcotest.fail "unknown family accepted"
  with Protocol.Protocol_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

let run_batch sched frames =
  let all = ref [] in
  let _ = Sched.handle_batch sched frames ~emit:(fun f -> all := f :: !all) in
  let all = List.rev !all in
  let results =
    List.filter (fun f -> Protocol.get f "frame" = Some "result") all
  in
  (all, results)

let solve_frame ?(solver = "fix3") ?(extra = []) n =
  {
    Protocol.header =
      [ ("op", "solve"); ("family", "ring"); ("n", string_of_int n); ("solver", solver) ] @ extra;
    body = "";
  }

let test_sched_repeat_hits_cache () =
  let sched = Sched.create ~capacity:8 () in
  let _, r1 = run_batch sched [ solve_frame 20 ] in
  let _, r2 = run_batch sched [ solve_frame 20 ] in
  match (r1, r2) with
  | [ a ], [ b ] ->
    Alcotest.(check (option string)) "first miss" (Some "miss") (Protocol.get a "cache");
    Alcotest.(check (option string)) "repeat hit" (Some "hit") (Protocol.get b "cache");
    Alcotest.(check string) "byte-identical assignment" a.Protocol.body b.Protocol.body;
    Alcotest.(check (option string)) "ok" (Some "1") (Protocol.get b "ok")
  | _ -> Alcotest.fail "expected one result per batch"

let test_sched_batch_grouping () =
  (* same-key requests inside one batch share one cache fetch: the
     first is the miss, the rest are hits; ids map back to arrival
     order *)
  let sched = Sched.create ~capacity:8 () in
  let _, results = run_batch sched [ solve_frame 20; solve_frame 24; solve_frame 20 ] in
  Alcotest.(check int) "three results" 3 (List.length results);
  List.iteri
    (fun i f ->
      Alcotest.(check (option int)) "id in arrival order" (Some i) (Protocol.get_int f "id"))
    results;
  let cache_of i = Protocol.get (List.nth results i) "cache" in
  Alcotest.(check (option string)) "first of group misses" (Some "miss") (cache_of 0);
  Alcotest.(check (option string)) "other key misses" (Some "miss") (cache_of 1);
  Alcotest.(check (option string)) "repeat in batch hits" (Some "hit") (cache_of 2);
  Alcotest.(check string) "group output identical" (List.nth results 0).Protocol.body
    (List.nth results 2).Protocol.body

let test_sched_error_isolation () =
  let sched = Sched.create ~capacity:4 () in
  let bad = { Protocol.header = [ ("op", "transmogrify") ]; body = "" } in
  let _, results = run_batch sched [ bad; solve_frame 20 ] in
  match results with
  | [ e; ok ] ->
    Alcotest.(check (option string)) "bad op errors" (Some "error") (Protocol.get e "status");
    Alcotest.(check bool) "has reason" true (Protocol.get e "error" <> None);
    Alcotest.(check (option string)) "good request unaffected" (Some "ok")
      (Protocol.get ok "status")
  | _ -> Alcotest.fail "expected two results"

let test_sched_unknown_solver_errors () =
  let sched = Sched.create ~capacity:4 () in
  let _, results = run_batch sched [ solve_frame ~solver:"no-such-engine" 20 ] in
  match results with
  | [ r ] ->
    Alcotest.(check (option string)) "status" (Some "error") (Protocol.get r "status")
  | _ -> Alcotest.fail "expected one result"

let test_sched_metrics_stream () =
  let sched = Sched.create ~capacity:4 () in
  let all, results =
    run_batch sched [ solve_frame ~solver:"mp2" ~extra:[ ("stream", "1") ] 24 ]
  in
  let metrics = List.filter (fun f -> Protocol.get f "frame" = Some "metrics") all in
  Alcotest.(check bool) "streamed records" true (metrics <> []);
  List.iter
    (fun m ->
      Alcotest.(check (option int)) "tagged id" (Some 0) (Protocol.get_int m "id");
      Alcotest.(check bool) "json body" true
        (String.length m.Protocol.body > 0 && m.Protocol.body.[0] = '{'))
    metrics;
  (* metrics precede the result frame *)
  (match all with
  | first :: _ ->
    Alcotest.(check (option string)) "metrics first" (Some "metrics") (Protocol.get first "frame")
  | [] -> Alcotest.fail "no frames");
  match results with
  | [ r ] -> Alcotest.(check (option string)) "ok" (Some "1") (Protocol.get r "ok")
  | _ -> Alcotest.fail "expected one result"

let test_sched_solve_verify_flow () =
  (* verify the assignment a solve returned, against the same cached
     instance *)
  let sched = Sched.create ~capacity:4 () in
  let _, r1 = run_batch sched [ solve_frame 20 ] in
  let body = (List.hd r1).Protocol.body in
  let verify =
    { Protocol.header = [ ("op", "verify"); ("family", "ring"); ("n", "20") ]; body }
  in
  let _, r2 = run_batch sched [ verify ] in
  match r2 with
  | [ r ] ->
    Alcotest.(check (option string)) "verified" (Some "1") (Protocol.get r "ok");
    Alcotest.(check (option string)) "cache hit" (Some "hit") (Protocol.get r "cache");
    Alcotest.(check (option string)) "no violations" (Some "") (Protocol.get r "violated")
  | _ -> Alcotest.fail "expected one result"

let test_sched_blob_solve () =
  (* an uploaded binary v3 blob solves identically to the spec-described
     run of the same instance *)
  let sched = Sched.create ~capacity:4 () in
  let inst = Syn.ring ~seed:1 ~n:20 ~arity:4 () in
  let blob = Lll_core.Serial.to_binary_string inst in
  let by_blob = { Protocol.header = [ ("op", "solve"); ("solver", "fix3") ]; body = blob } in
  let _, r1 = run_batch sched [ by_blob ] in
  let _, r2 = run_batch sched [ solve_frame 20 ] in
  let _, r3 = run_batch sched [ by_blob ] in
  match (r1, r2, r3) with
  | [ a ], [ b ], [ c ] ->
    Alcotest.(check string) "blob solves like spec" a.Protocol.body b.Protocol.body;
    Alcotest.(check (option string)) "blob repeat hits" (Some "hit") (Protocol.get c "cache")
  | _ -> Alcotest.fail "expected one result per batch"

let test_sched_stats_op () =
  let sched = Sched.create ~capacity:4 () in
  let _ = run_batch sched [ solve_frame 20 ] in
  let _, results =
    run_batch sched [ { Protocol.header = [ ("op", "stats") ]; body = "" } ]
  in
  match results with
  | [ r ] ->
    Alcotest.(check (option int)) "size" (Some 1) (Protocol.get_int r "size");
    Alcotest.(check (option int)) "misses" (Some 1) (Protocol.get_int r "misses")
  | _ -> Alcotest.fail "expected one result"

let test_sched_shutdown_signal () =
  let sched = Sched.create ~capacity:4 () in
  let outcome =
    Sched.handle_batch sched
      [ { Protocol.header = [ ("op", "shutdown") ]; body = "" } ]
      ~emit:(fun _ -> ())
  in
  Alcotest.(check bool) "signals shutdown" true (outcome = `Shutdown)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lll_serve"
    [
      ( "cache",
        [
          Alcotest.test_case "hit and miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "hit is the cached instance" `Quick
            test_cache_hit_returns_same_instance;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "rejects bad capacity" `Quick test_cache_rejects_bad_capacity;
          Alcotest.test_case "content keys" `Quick test_content_key_distinguishes;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "header escaping" `Quick test_protocol_escaping;
          Alcotest.test_case "channel framing" `Quick test_protocol_channel_framing;
          Alcotest.test_case "truncation" `Quick test_protocol_truncation;
          Alcotest.test_case "accessors" `Quick test_protocol_accessors;
        ] );
      ( "workload",
        [
          Alcotest.test_case "spec keys canonical" `Quick test_workload_spec_keys;
          Alcotest.test_case "blob keyed by digest" `Quick test_workload_blob_key;
          Alcotest.test_case "rejects unknown family" `Quick test_workload_rejects_unknown_family;
        ] );
      ( "sched",
        [
          Alcotest.test_case "repeat request hits cache" `Quick test_sched_repeat_hits_cache;
          Alcotest.test_case "batch grouping" `Quick test_sched_batch_grouping;
          Alcotest.test_case "error isolation" `Quick test_sched_error_isolation;
          Alcotest.test_case "unknown solver" `Quick test_sched_unknown_solver_errors;
          Alcotest.test_case "metrics streaming" `Quick test_sched_metrics_stream;
          Alcotest.test_case "solve then verify" `Quick test_sched_solve_verify_flow;
          Alcotest.test_case "blob solve" `Quick test_sched_blob_solve;
          Alcotest.test_case "stats op" `Quick test_sched_stats_op;
          Alcotest.test_case "shutdown signal" `Quick test_sched_shutdown_signal;
        ] );
    ]
