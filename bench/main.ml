(* Benchmark harness (Bechamel): one Test.make per experiment of the
   index in DESIGN.md section 3, measuring the single-machine cost of the
   algorithms behind each experiment. The LOCAL *round* counts that the
   paper is about are produced by bin/experiments.exe; these benchmarks
   complement them with wall-clock cost so regressions in the enumeration
   or geometry kernels are visible.

   Run with: dune exec bench/main.exe                                   *)

open Bechamel
open Toolkit

module Rat = Lll_num.Rat
module Bigint = Lll_num.Bigint
module Gen = Lll_graph.Generators
module Graph = Lll_graph.Graph
module Linial = Lll_graph.Linial
module Edge_coloring = Lll_graph.Edge_coloring
module Net = Lll_local.Network
module DC = Lll_local.Dist_coloring
module RT = Lll_local.Runtime
module Par = Lll_local.Par
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module I = Lll_core.Instance
module Srep = Lll_core.Srep
module Syn = Lll_core.Synthetic
module F2 = Lll_core.Fix_rank2
module F3 = Lll_core.Fix_rank3
module MT = Lll_core.Moser_tardos
module D = Lll_core.Distributed
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting
module Sink = Lll_apps.Sinkless

(* Pre-built inputs shared by the benchmarks (construction cost must not
   pollute the measured kernels). *)

let ring64 = Syn.ring ~seed:1 ~n:64 ~arity:4 ()
let rank3_inst = Syn.random ~seed:1 ~n:18 ~rank:3 ~delta:2 ~arity:8 ()
let ho_hyper = Gen.random_regular_hypergraph ~seed:1 15 3 3
let ho_inst = HO.instance ho_hyper
let ws_adj = Gen.random_biregular_bipartite ~seed:1 ~nv:16 ~nu:16 ~deg_u:3 ~deg_v:3
let ws_inst = WS.instance ~nv:16 ws_adj
let sink_graph = Gen.random_regular ~seed:1 32 3
let sink_at = Sink.instance sink_graph
let sink_below = Sink.relaxed_instance sink_graph
let rr_graph = Gen.random_regular ~seed:2 128 4
let cycle_graph = Gen.cycle 256

let some_event = (I.events ring64).(0)
let empty_fixed = Assignment.empty (I.num_vars ring64)

(* F1: the S_rep geometry kernels *)
let test_f1 =
  Test.make_grouped ~name:"f1-srep"
    [
      Test.make ~name:"f(a,b)" (Staged.stage (fun () -> Srep.f 1.3 0.7));
      Test.make ~name:"violation" (Staged.stage (fun () -> Srep.violation (1.1, 0.9, 0.4)));
      Test.make ~name:"mem_rat"
        (Staged.stage
           (let t = (Rat.of_ints 11 10, Rat.of_ints 9 10, Rat.of_ints 2 5) in
            fun () -> Srep.mem_rat t));
      Test.make ~name:"decompose" (Staged.stage (fun () -> Srep.decompose (0.25, 1.5, 0.1)));
      Test.make ~name:"hessian" (Staged.stage (fun () -> Srep.hessian 1.2 0.8));
    ]

(* F2: full surface grid (Figure 1 regeneration) *)
let test_f2 =
  Test.make ~name:"f2-surface-grid" (Staged.stage (fun () -> Srep.surface_grid ~steps:32))

(* T1: the rank-2 fixer on a below-threshold ring *)
let test_t1 =
  Test.make ~name:"t1-fix-rank2-ring64" (Staged.stage (fun () -> F2.solve ring64))

(* T2: the rank-3 fixer on random rank-3 instances *)
let test_t2 =
  Test.make_grouped ~name:"t2-fix-rank3"
    [
      Test.make ~name:"random-delta2-n18" (Staged.stage (fun () -> F3.solve rank3_inst));
      Test.make ~name:"hyper-orientation-n15" (Staged.stage (fun () -> F3.solve ho_inst));
      Test.make ~name:"weak-splitting-n16" (Staged.stage (fun () -> F3.solve ws_inst));
    ]

(* T3: the distributed rank-2 pipeline (coloring + sweep) *)
let test_t3 =
  Test.make ~name:"t3-distributed-rank2" (Staged.stage (fun () -> D.solve_rank2 ring64))

(* T4: the distributed rank-3 pipeline *)
let test_t4 =
  Test.make ~name:"t4-distributed-rank3" (Staged.stage (fun () -> D.solve_rank3 rank3_inst))

(* T5: sinkless orientation across the threshold *)
let test_t5 =
  Test.make_grouped ~name:"t5-sinkless"
    [
      Test.make ~name:"adversarial-witness"
        (Staged.stage (fun () -> Sink.adversarial_path_assignment sink_graph ~victim:7));
      Test.make ~name:"below-threshold-fix" (Staged.stage (fun () -> F2.solve sink_below));
      Test.make ~name:"at-threshold-mt"
        (Staged.stage (fun () -> MT.solve_parallel ~seed:5 sink_at));
    ]

(* T6/T7: application validity checkers *)
let ho_solution = fst (F3.solve ho_inst)
let ws_solution = fst (F3.solve ws_inst)

let test_t6_t7 =
  Test.make_grouped ~name:"t6t7-checkers"
    [
      Test.make ~name:"hyper-orientation-valid"
        (Staged.stage (fun () -> HO.is_valid ho_hyper ho_solution));
      Test.make ~name:"weak-splitting-valid"
        (Staged.stage (fun () -> WS.is_valid ~nv:16 ws_adj ws_solution));
    ]

(* T8: exact criterion checks *)
let test_t8 =
  Test.make ~name:"t8-criteria-report" (Staged.stage (fun () -> Lll_core.Criteria.evaluate ring64))

(* T9: Moser-Tardos baselines *)
let test_t9 =
  Test.make_grouped ~name:"t9-moser-tardos"
    [
      Test.make ~name:"sequential-ring64"
        (Staged.stage (fun () -> MT.solve_sequential ~seed:3 ring64));
      Test.make ~name:"parallel-ring64" (Staged.stage (fun () -> MT.solve_parallel ~seed:3 ring64));
    ]

(* substrate kernels: exact probability enumeration, bignum, colorings *)
let test_substrates =
  Test.make_grouped ~name:"substrates"
    [
      Test.make ~name:"prob-enumeration"
        (Staged.stage (fun () -> Space.prob (I.space ring64) some_event ~fixed:empty_fixed));
      Test.make ~name:"prob-vector"
        (Staged.stage (fun () ->
             Space.prob_vector (I.space ring64) some_event ~fixed:empty_fixed ~var:0));
      Test.make ~name:"bigint-mul"
        (Staged.stage
           (let a = Bigint.pow (Bigint.of_int 3) 100 and b = Bigint.pow (Bigint.of_int 7) 90 in
            fun () -> Bigint.mul a b));
      Test.make ~name:"rat-add"
        (Staged.stage
           (let a = Rat.of_ints 355 113 and b = Rat.of_ints 22 7 in
            fun () -> Rat.add a b));
      Test.make ~name:"linial-color-rr128" (Staged.stage (fun () -> Linial.color rr_graph));
      Test.make ~name:"edge-color-cycle256"
        (Staged.stage (fun () -> Edge_coloring.color cycle_graph));
      Test.make ~name:"dist-2hop-color-rr128"
        (Staged.stage (fun () -> DC.two_hop_color (Net.create rr_graph)));
      Test.make ~name:"square-graph" (Staged.stage (fun () -> Graph.square rr_graph));
    ]

(* T10/T11 and baselines beyond the paper *)
let rank4_inst = Syn.random ~seed:1 ~n:16 ~rank:4 ~delta:2 ~arity:16 ()

let test_extensions =
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"srep-r-solve-k4"
        (Staged.stage (fun () -> Lll_core.Srep_r.solve ~targets:[| 1.2; 0.9; 1.1; 0.8 |] ()));
      Test.make ~name:"fix-rankr-rank4"
        (Staged.stage (fun () -> Lll_core.Fix_rankr.solve rank4_inst));
      Test.make ~name:"cond-exp-ring64" (Staged.stage (fun () -> Lll_core.Cond_exp.solve ring64));
      Test.make ~name:"shearer-ring12"
        (Staged.stage
           (let inst = Syn.ring ~seed:2 ~n:12 ~arity:4 () in
            fun () -> Lll_core.Criteria.shearer_holds inst));
      Test.make ~name:"luby-mis-rr128"
        (Staged.stage (fun () -> Lll_local.Mis.luby ~seed:4 (Net.create rr_graph)));
    ]

(* ablation: value-selection policies of the fixers (DESIGN.md) *)
let test_ablation =
  Test.make_grouped ~name:"ablation-policies"
    [
      Test.make ~name:"fix2-min-score"
        (Staged.stage (fun () -> F2.solve ~policy:F2.Min_score ring64));
      Test.make ~name:"fix2-first-within-budget"
        (Staged.stage (fun () -> F2.solve ~policy:F2.First_within_budget ring64));
      Test.make ~name:"fix3-min-violation"
        (Staged.stage (fun () -> F3.solve ~policy:F3.Min_violation rank3_inst));
      Test.make ~name:"fix3-first-feasible"
        (Staged.stage (fun () -> F3.solve ~policy:F3.First_feasible rank3_inst));
      Test.make ~name:"fix3-exact-arithmetic"
        (Staged.stage (fun () -> Lll_core.Fix_rank3_exact.solve rank3_inst));
    ]

(* runtime-par: domain-parallel round throughput on a >= 10^5-node graph.
   The interesting comparison is 1 domain (the sequential reference
   engine; no domain ever spawned) against the machine's recommended
   domain count — on a multicore host the N-domain rows must come out
   strictly faster. On a single-core host (recommended = 1) we still
   exercise the fork-join path with 2 domains, expecting parity-to-slower
   numbers, which keeps the overhead visible in BENCH history too. *)
let par_net = Net.create (Gen.random_regular ~seed:7 100_000 4)
let par_domains = max 2 (Par.recommended ())

let par_flood domains () =
  RT.run_full_info ~domains par_net
    ~init:(fun v -> v)
    ~step:(fun ~round ~me:_ s nbrs ->
      (List.fold_left (fun acc (_, x) -> max acc x) s nbrs, round + 1 >= 3))

let par_echo domains () =
  (* message-passing: every node floods its running maximum for 2 rounds
     (4 * 10^5 messages per round through the delivery merge) *)
  RT.run ~domains par_net
    ~init:(fun v -> v)
    ~step:(fun ~round ~me s inbox ->
      let s = List.fold_left (fun acc (_, m) -> max acc m) s inbox in
      {
        RT.state = s;
        send = List.map (fun u -> (u, s)) (Net.neighbors par_net me);
        halt = round + 1 >= 2;
      })

let test_runtime_par =
  Test.make_grouped ~name:"runtime-par"
    [
      Test.make ~name:"flood3-rr1e5-domains1" (Staged.stage (fun () -> par_flood 1 ()));
      Test.make
        ~name:(Printf.sprintf "flood3-rr1e5-domains%d" par_domains)
        (Staged.stage (fun () -> par_flood par_domains ()));
      Test.make ~name:"echo2-rr1e5-domains1" (Staged.stage (fun () -> par_echo 1 ()));
      Test.make
        ~name:(Printf.sprintf "echo2-rr1e5-domains%d" par_domains)
        (Staged.stage (fun () -> par_echo par_domains ()));
    ]

(* analysis / lower-bound machinery *)
let mt_log_inst = Syn.ring ~position:Syn.At_threshold ~seed:2 ~n:32 ~arity:4 ()
let _, _, mt_log = MT.solve_sequential_log ~seed:4 mt_log_inst

let test_analysis =
  Test.make_grouped ~name:"analysis"
    [
      Test.make ~name:"witness-histogram"
        (Staged.stage (fun () -> Lll_core.Witness.size_histogram mt_log_inst mt_log));
      Test.make ~name:"transform-merge"
        (Staged.stage (fun () -> Lll_core.Transform.merge_shared_variables ring64));
      Test.make ~name:"shearer-ring14"
        (Staged.stage
           (let inst = Syn.ring ~seed:3 ~n:14 ~arity:4 () in
            fun () -> Lll_core.Criteria.shearer_holds inst));
      Test.make ~name:"shift-graph-chi-S52"
        (Staged.stage (fun () -> Lll_graph.Shift_graph.chromatic_number ~m:5 ~k:2 ()));
      Test.make ~name:"serial-roundtrip"
        (Staged.stage (fun () -> Lll_core.Serial.of_string (Lll_core.Serial.to_string ring64)));
    ]

let all_tests =
  Test.make_grouped ~name:"lll"
    [
      test_f1; test_f2; test_t1; test_t2; test_t3; test_t4; test_t5; test_t6_t7; test_t8;
      test_t9; test_substrates; test_ablation; test_extensions; test_runtime_par; test_analysis;
    ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances all_tests in
  Analyze.all ols Instance.monotonic_clock raw

let () =
  let results = benchmark () in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns = match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan in
        (name, ns) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  Format.printf "%-45s %15s@." "benchmark" "ns/run";
  Format.printf "%s@." (String.make 61 '-');
  List.iter (fun (name, ns) -> Format.printf "%-45s %15.1f@." name ns) rows
