(* Benchmark harness (Bechamel): kernels per experiment of the index in
   DESIGN.md section 3, measuring the single-machine cost of the
   algorithms behind each experiment. The LOCAL *round* counts that the
   paper is about are produced by bin/experiments.exe; these benchmarks
   complement them with wall-clock cost so regressions in the enumeration
   or geometry kernels are visible.

   Every solver engine is benchmarked through the Solver registry (one
   loop over [solver_cases] below) — adding an engine to the registry
   adds it to the bench automatically.

   Run with: dune exec bench/main.exe
   Smoke:    dune exec bench/main.exe -- --quick
             (runs each registry case once through the shared
              post-condition instead of timing it, then measures
              per-engine steps/sec under BOTH probability backends and
              writes BENCH_pr3.json, then measures the Moser–Tardos
              incremental occurring set against its full-rescan
              ablation and writes BENCH_pr4.json, then measures the
              CSR/arena LOCAL stack against the legacy list stack —
              reimplemented below, self-checked for output equality —
              and writes BENCH_pr5.json; used by dune runtest
              — via the @bench-quick alias — so registry regressions
              fail the test suite and all perf ratios stay visible)

   Flags:    --prob-backend {enum,table}  global backend for the
             bechamel timing run (and the smoke pass); the JSON report
             always measures both
             --bench-out PATH             where --quick writes its
             backend JSON (default BENCH_pr3.json)
             --mt-bench-out PATH          where --quick writes the
             occurring-set JSON (default BENCH_pr4.json)
             --csr-bench-out PATH         where --quick writes the
             CSR/arena rounds-per-sec JSON (default BENCH_pr5.json)
             --flat-bench-out PATH        where --quick writes the
             flat-vs-boxed engine JSON (default BENCH_pr7.json)
             --serve-bench-out PATH       where --quick writes the
             binary-codec/serve JSON (default BENCH_pr8.json)
             --serve-report               regenerate only the PR 8
             report (skips the rest of the smoke)                     *)

open Bechamel
open Toolkit

module Rat = Lll_num.Rat
module Bigint = Lll_num.Bigint
module Gen = Lll_graph.Generators
module Graph = Lll_graph.Graph
module Linial = Lll_graph.Linial
module Edge_coloring = Lll_graph.Edge_coloring
module Net = Lll_local.Network
module DC = Lll_local.Dist_coloring
module RT = Lll_local.Runtime
module Par = Lll_local.Par
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module I = Lll_core.Instance
module Srep = Lll_core.Srep
module Syn = Lll_core.Synthetic
module Solver = Lll_core.Solver
module MT = Lll_core.Moser_tardos (* witness-tree log analysis only *)
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting
module Sink = Lll_apps.Sinkless

(* the application engines register themselves on first use; pull them
   in before [solver_cases] snapshots the registry *)
let () = Lll_apps.App_engines.ensure_registered ()

(* Pre-built inputs shared by the benchmarks (construction cost must not
   pollute the measured kernels). *)

let ring64 = Syn.ring ~seed:1 ~n:64 ~arity:4 ()
let rank3_inst = Syn.random ~seed:1 ~n:18 ~rank:3 ~delta:2 ~arity:8 ()
let ho_hyper = Gen.random_regular_hypergraph ~seed:1 15 3 3
let ho_inst = HO.instance ho_hyper
let ws_adj = Gen.random_biregular_bipartite ~seed:1 ~nv:16 ~nu:16 ~deg_u:3 ~deg_v:3
let ws_inst = WS.instance ~nv:16 ws_adj
let sink_graph = Gen.random_regular ~seed:1 32 3
let sink_at = Sink.instance sink_graph
let sink_below = Sink.relaxed_instance sink_graph
let rr_graph = Gen.random_regular ~seed:2 128 4
let cycle_graph = Gen.cycle 256

let some_event = (I.events ring64).(0)
let empty_fixed = Assignment.empty (I.num_vars ring64)
let rank4_inst = Syn.random ~seed:1 ~n:16 ~rank:4 ~delta:2 ~arity:16 ()

(* The one registry loop: every engine on a representative pre-built
   instance fitting its envelope, plus a few envelope-stretching cases
   (rank 4 for the rank-r fixer, the threshold-straddling sinkless
   pair). A case is (bench name, engine, instance). *)
let bench_instance s =
  match (Solver.caps s).Solver.max_rank with Some 2 -> ring64 | _ -> rank3_inst

let solver_cases =
  List.map (fun s -> (Solver.name s, s, bench_instance s)) (Solver.all ())
  @ [
      ("fixr-rank4", Solver.find_exn "fixr", rank4_inst);
      ("fix2-sinkless-below", Solver.find_exn "fix2", sink_below);
      ("mt-par-sinkless-at", Solver.find_exn "mt-par", sink_at);
      (* the application engines on their own problems (the generic
         per-engine row above hands them a foreign synthetic instance) *)
      ("sinkless-orient-at", Solver.find_exn "sinkless-orient", sink_at);
      ("sinkless-orient-below", Solver.find_exn "sinkless-orient", sink_below);
      ("weak-split-greedy-ws", Solver.find_exn "weak-split-greedy", ws_inst);
    ]

let test_solvers =
  Test.make_grouped ~name:"solvers"
    (List.map
       (fun (name, s, inst) ->
         Test.make ~name (Staged.stage (fun () -> Solver.solve s inst)))
       solver_cases)

(* F1: the S_rep geometry kernels *)
let test_f1 =
  Test.make_grouped ~name:"f1-srep"
    [
      Test.make ~name:"f(a,b)" (Staged.stage (fun () -> Srep.f 1.3 0.7));
      Test.make ~name:"violation" (Staged.stage (fun () -> Srep.violation (1.1, 0.9, 0.4)));
      Test.make ~name:"mem_rat"
        (Staged.stage
           (let t = (Rat.of_ints 11 10, Rat.of_ints 9 10, Rat.of_ints 2 5) in
            fun () -> Srep.mem_rat t));
      Test.make ~name:"decompose" (Staged.stage (fun () -> Srep.decompose (0.25, 1.5, 0.1)));
      Test.make ~name:"hessian" (Staged.stage (fun () -> Srep.hessian 1.2 0.8));
    ]

(* F2: full surface grid (Figure 1 regeneration) *)
let test_f2 =
  Test.make ~name:"f2-surface-grid" (Staged.stage (fun () -> Srep.surface_grid ~steps:32))

(* T5: the adversarial witness construction (the solver side of the
   sinkless story is covered by the registry cases above) *)
let test_t5 =
  Test.make ~name:"t5-adversarial-witness"
    (Staged.stage (fun () -> Sink.adversarial_path_assignment sink_graph ~victim:7))

(* T6/T7: application validity checkers *)
let solution_of solver inst =
  (Solver.solve (Solver.find_exn solver) inst).Solver.outcome.Solver.assignment

let ho_solution = solution_of "fix3" ho_inst
let ws_solution = solution_of "fix3" ws_inst

let test_t6_t7 =
  Test.make_grouped ~name:"t6t7-checkers"
    [
      Test.make ~name:"hyper-orientation-valid"
        (Staged.stage (fun () -> HO.is_valid ho_hyper ho_solution));
      Test.make ~name:"weak-splitting-valid"
        (Staged.stage (fun () -> WS.is_valid ~nv:16 ws_adj ws_solution));
    ]

(* T8: exact criterion checks *)
let test_t8 =
  Test.make ~name:"t8-criteria-report" (Staged.stage (fun () -> Lll_core.Criteria.evaluate ring64))

(* substrate kernels: exact probability enumeration, bignum, colorings *)
let test_substrates =
  Test.make_grouped ~name:"substrates"
    [
      Test.make ~name:"prob-enumeration"
        (Staged.stage (fun () -> Space.prob (I.space ring64) some_event ~fixed:empty_fixed));
      Test.make ~name:"prob-vector"
        (Staged.stage (fun () ->
             Space.prob_vector (I.space ring64) some_event ~fixed:empty_fixed ~var:0));
      Test.make ~name:"bigint-mul"
        (Staged.stage
           (let a = Bigint.pow (Bigint.of_int 3) 100 and b = Bigint.pow (Bigint.of_int 7) 90 in
            fun () -> Bigint.mul a b));
      Test.make ~name:"rat-add"
        (Staged.stage
           (let a = Rat.of_ints 355 113 and b = Rat.of_ints 22 7 in
            fun () -> Rat.add a b));
      Test.make ~name:"linial-color-rr128" (Staged.stage (fun () -> Linial.color rr_graph));
      Test.make ~name:"edge-color-cycle256"
        (Staged.stage (fun () -> Edge_coloring.color cycle_graph));
      Test.make ~name:"dist-2hop-color-rr128"
        (Staged.stage (fun () -> DC.two_hop_color (Net.create rr_graph)));
      Test.make ~name:"square-graph" (Staged.stage (fun () -> Graph.square rr_graph));
    ]

(* T10/T11 and machinery beyond the paper (the rank-r and union-bound
   SOLVER costs are registry cases; these are the non-solver kernels) *)
let test_extensions =
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"srep-r-solve-k4"
        (Staged.stage (fun () -> Lll_core.Srep_r.solve ~targets:[| 1.2; 0.9; 1.1; 0.8 |] ()));
      Test.make ~name:"shearer-ring12"
        (Staged.stage
           (let inst = Syn.ring ~seed:2 ~n:12 ~arity:4 () in
            fun () -> Lll_core.Criteria.shearer_holds inst));
      Test.make ~name:"luby-mis-rr128"
        (Staged.stage (fun () -> Lll_local.Mis.luby ~seed:4 (Net.create rr_graph)));
    ]

(* runtime-par: domain-parallel round throughput on a >= 10^5-node graph.
   The interesting comparison is 1 domain (the sequential reference
   engine; no domain ever spawned) against the machine's recommended
   domain count — on a multicore host the N-domain rows must come out
   strictly faster. On a single-core host (recommended = 1) we still
   exercise the fork-join path with 2 domains, expecting parity-to-slower
   numbers, which keeps the overhead visible in BENCH history too. *)
let par_net = lazy (Net.create (Gen.random_regular ~seed:7 100_000 4))
let par_domains = max 2 (Par.recommended ())

let par_flood domains () =
  RT.run_full_info ~domains (Lazy.force par_net)
    ~init:(fun v -> v)
    ~step:(fun ~round ~me:_ s nbrs ->
      (List.fold_left (fun acc (_, x) -> max acc x) s nbrs, round + 1 >= 3))

let par_echo domains () =
  (* message-passing: every node floods its running maximum for 2 rounds
     (4 * 10^5 messages per round through the delivery merge) *)
  let net = Lazy.force par_net in
  RT.run ~domains net
    ~init:(fun v -> v)
    ~step:(fun ~round ~me s inbox ->
      let s = List.fold_left (fun acc (_, m) -> max acc m) s inbox in
      {
        RT.state = s;
        send = List.map (fun u -> (u, s)) (Net.neighbors net me);
        halt = round + 1 >= 2;
      })

let test_runtime_par =
  Test.make_grouped ~name:"runtime-par"
    [
      Test.make ~name:"flood3-rr1e5-domains1" (Staged.stage (fun () -> par_flood 1 ()));
      Test.make
        ~name:(Printf.sprintf "flood3-rr1e5-domains%d" par_domains)
        (Staged.stage (fun () -> par_flood par_domains ()));
      Test.make ~name:"echo2-rr1e5-domains1" (Staged.stage (fun () -> par_echo 1 ()));
      Test.make
        ~name:(Printf.sprintf "echo2-rr1e5-domains%d" par_domains)
        (Staged.stage (fun () -> par_echo par_domains ()));
    ]

(* ---- runtime-csr: the CSR/arena stack vs the pre-refactor list stack ----

   PR 5 replaced assoc-list adjacency and per-round list inboxes with CSR
   slices and a flat message arena; the old code is gone, so the legacy
   side is reimplemented here, faithful to what it replaced: per-node
   [(neighbor, edge)] lists built with [List.sort], a sequential engine
   whose full-info rounds build assoc lists and whose message rounds
   prepend to per-node list inboxes, [List.sort_uniq] ball merges and KW
   window searches, and the list-based square construction. Everything
   runs with [~domains:1] on both sides so the ratios isolate the
   data-structure change, not parallelism (runtime-par's job). *)
module Legacy = struct
  type graph = { n : int; adj : (int * int) list array (* (nbr, eid), sorted *) }

  let of_edge_array ~n (edges : (int * int) array) =
    let adj = Array.make n [] in
    Array.iteri
      (fun e (u, v) ->
        adj.(u) <- (v, e) :: adj.(u);
        adj.(v) <- (u, e) :: adj.(v))
      edges;
    { n; adj = Array.map (List.sort compare) adj }

  let of_graph g = of_edge_array ~n:(Graph.n g) (Graph.edges g)
  let neighbors lg v = List.map fst lg.adj.(v)
  let max_degree lg = Array.fold_left (fun acc l -> max acc (List.length l)) 0 lg.adj

  (* distance-<=2 graph via per-node neighbor-of-neighbor lists and
     sort_uniq dedup — the pre-CSR [Graph.square] *)
  let square lg =
    let buf = ref [] in
    for v = lg.n - 1 downto 0 do
      let nbrs = neighbors lg v in
      let two = List.concat_map (neighbors lg) nbrs in
      List.iter
        (fun w -> if w > v then buf := (v, w) :: !buf)
        (List.sort_uniq compare (List.rev_append nbrs two))
    done;
    of_edge_array ~n:lg.n (Array.of_list !buf)

  (* sequential full-info engine: per-round snapshot, per-node assoc
     lists from the neighbor lists *)
  let run_full_info lg ~init ~step =
    let n = lg.n in
    let nbrs = Array.init n (neighbors lg) in
    let states = Array.init n init in
    let halted = Array.make n false in
    let halted_count = ref 0 in
    let round = ref 0 in
    while !halted_count < n do
      let snapshot = Array.copy states in
      for v = 0 to n - 1 do
        if not halted.(v) then begin
          let nbr_states = List.map (fun u -> (u, snapshot.(u))) nbrs.(v) in
          let s, h = step ~round:!round ~me:v snapshot.(v) nbr_states in
          states.(v) <- s;
          if h then begin
            halted.(v) <- true;
            incr halted_count
          end
        end
      done;
      incr round
    done;
    (states, !round)

  let mem_sorted (a : int array) x =
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let y = a.(mid) in
      if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
    done;
    !found

  (* sequential message engine with per-node list inboxes (prepend on
     send, [List.rev] on consume) — the pre-arena [Runtime.run] *)
  let run lg ~init ~step =
    let n = lg.n in
    let nbr_index = Array.init n (fun v -> Array.of_list (neighbors lg v)) in
    let states = Array.init n init in
    let halted = Array.make n false in
    let halted_count = ref 0 in
    let inboxes = Array.make n [] in
    let outboxes = Array.make n [] in
    let round = ref 0 in
    while !halted_count < n do
      for v = 0 to n - 1 do
        if not halted.(v) then begin
          let r = step ~round:!round ~me:v states.(v) (List.rev inboxes.(v)) in
          states.(v) <- r.RT.state;
          if r.RT.halt then begin
            halted.(v) <- true;
            incr halted_count
          end;
          List.iter
            (fun (target, msg) ->
              if not (mem_sorted nbr_index.(v) target) then
                invalid_arg "Legacy.run: message to non-neighbor";
              outboxes.(target) <- (v, msg) :: outboxes.(target))
            r.RT.send
        end
      done;
      Array.blit outboxes 0 inboxes 0 n;
      Array.fill outboxes 0 n [];
      incr round
    done;
    (states, !round)

  let gather_balls lg ~radius ~value =
    let init v = [ (v, value v) ] in
    let step ~round ~me:_ s nbrs =
      let s' =
        List.fold_left
          (fun acc (_, l) ->
            List.sort_uniq (fun (a, _) (b, _) -> compare a b) (List.rev_append acc l))
          s nbrs
      in
      (s', round + 1 >= radius)
    in
    run_full_info lg ~init ~step

  (* pre-refactor distributed coloring: identical parameter schedules
     (exported by Dist_coloring), assoc-list rounds, sort_uniq KW window *)
  let color lg =
    let n = lg.n in
    let dmax = max_degree lg in
    let sched_arr = Array.of_list (DC.schedule ~dmax ~m:n) in
    let linial_rounds = Array.length sched_arr in
    let m_star =
      if linial_rounds = 0 then n else (fun (_, _, m) -> m) sched_arr.(linial_rounds - 1)
    in
    let w = dmax + 1 in
    let kw_phases = Array.of_list (DC.kw_schedule ~dmax ~m:m_star) in
    let total = linial_rounds + (w * Array.length kw_phases) in
    if total = 0 then (Array.init n Fun.id, 0)
    else
      run_full_info lg
        ~init:(fun v -> v)
        ~step:(fun ~round ~me:_ color nbrs ->
          let nbr_colors = List.map snd nbrs in
          let color =
            if round < linial_rounds then begin
              let q, t, _ = sched_arr.(round) in
              DC.linial_step ~q ~t color nbr_colors
            end
            else begin
              let j = (round - linial_rounds) mod w in
              let block_size = 2 * w in
              let base = color / block_size * block_size in
              let color =
                if color - base = w + j then begin
                  let used =
                    List.sort_uniq compare
                      (List.filter (fun c -> c >= base && c < base + w) nbr_colors)
                  in
                  let rec free k = function
                    | x :: rest when x = k -> free (k + 1) rest
                    | x :: rest when x < k -> free k rest
                    | _ -> k
                  in
                  free base used
                end
                else color
              in
              if j = w - 1 then (color / block_size * w) + (color mod block_size) else color
            end
          in
          (color, round + 1 >= total))

  let two_hop_color lg =
    let colors, rounds = color (square lg) in
    (colors, 2 * rounds)

  (* [Distributed.solve_rank3] with the coloring phase on the legacy
     stack; the class-sweep fixer is the same code on both sides, so the
     ratio reflects the infrastructure this PR changed. Returns the
     charged LOCAL rounds. *)
  let solve_rank3 instance =
    let g = I.dep_graph instance in
    let vcolors, coloring_rounds =
      if Graph.n g = 0 then ([||], 0) else two_hop_color (of_graph g)
    in
    let colors = Array.fold_left (fun acc c -> max acc (c + 1)) 0 vcolors in
    let by_owner = Array.make (I.num_events instance) [] in
    let free = ref [] in
    for vid = I.num_vars instance - 1 downto 0 do
      match I.events_of_var instance vid with
      | [||] -> free := vid :: !free
      | evs -> by_owner.(evs.(0)) <- vid :: by_owner.(evs.(0))
    done;
    let fixer = Lll_core.Fix_rank3.create instance in
    List.iter (fun vid -> Lll_core.Fix_rank3.fix_var fixer vid) !free;
    for c = 0 to colors - 1 do
      Array.iteri
        (fun v vars ->
          if vcolors.(v) = c then List.iter (fun vid -> Lll_core.Fix_rank3.fix_var fixer vid) vars)
        by_owner
    done;
    ignore (Lll_core.Fix_rank3.assignment fixer : Assignment.t);
    coloring_rounds + colors + (if !free = [] then 0 else 1)
end

let csr_graph n = Gen.random_regular ~seed:11 n 4

(* the echo workload: 4 message rounds of running-max flooding — every
   round pushes one message per half-edge through the delivery path *)
let echo_rounds_new net () =
  let _, (st : RT.stats) =
    RT.run ~domains:1 net
      ~init:(fun v -> v)
      ~step:(fun ~round ~me s inbox ->
        let s = List.fold_left (fun acc (_, m) -> max acc m) s inbox in
        {
          RT.state = s;
          send = List.map (fun u -> (u, s)) (Net.neighbors net me);
          halt = round + 1 >= 4;
        })
  in
  st.RT.rounds

let echo_rounds_legacy lg () =
  let nbrs = Array.init lg.Legacy.n (Legacy.neighbors lg) in
  let _, rounds =
    Legacy.run lg
      ~init:(fun v -> v)
      ~step:(fun ~round ~me s inbox ->
        let s = List.fold_left (fun acc (_, m) -> max acc m) s inbox in
        { RT.state = s; send = List.map (fun u -> (u, s)) nbrs.(me); halt = round + 1 >= 4 })
  in
  rounds

(* small bechamel entries so the full timing run tracks the ratio too *)
let csr_bench_net = lazy (Net.create (csr_graph 10_000))
let csr_bench_legacy = lazy (Legacy.of_graph (Net.graph (Lazy.force csr_bench_net)))

let test_runtime_csr =
  Test.make_grouped ~name:"runtime-csr"
    [
      Test.make ~name:"gather3-rr1e4-csr"
        (Staged.stage (fun () ->
             RT.gather_balls ~domains:1 (Lazy.force csr_bench_net) ~radius:3 ~value:Fun.id));
      Test.make ~name:"gather3-rr1e4-legacy"
        (Staged.stage (fun () ->
             Legacy.gather_balls (Lazy.force csr_bench_legacy) ~radius:3 ~value:Fun.id));
      Test.make ~name:"twohop-rr1e4-csr"
        (Staged.stage (fun () -> DC.two_hop_color ~domains:1 (Lazy.force csr_bench_net)));
      Test.make ~name:"twohop-rr1e4-legacy"
        (Staged.stage (fun () -> Legacy.two_hop_color (Lazy.force csr_bench_legacy)));
      Test.make ~name:"echo4-rr1e4-csr"
        (Staged.stage (fun () -> echo_rounds_new (Lazy.force csr_bench_net) ()));
      Test.make ~name:"echo4-rr1e4-legacy"
        (Staged.stage (fun () -> echo_rounds_legacy (Lazy.force csr_bench_legacy) ()));
    ]

(* analysis / lower-bound machinery *)
let mt_log_inst = Syn.ring ~position:Syn.At_threshold ~seed:2 ~n:32 ~arity:4 ()
let _, _, mt_log = MT.solve_sequential_log ~seed:4 mt_log_inst

let test_analysis =
  Test.make_grouped ~name:"analysis"
    [
      Test.make ~name:"witness-histogram"
        (Staged.stage (fun () -> Lll_core.Witness.size_histogram mt_log_inst mt_log));
      Test.make ~name:"transform-merge"
        (Staged.stage (fun () -> Lll_core.Transform.merge_shared_variables ring64));
      Test.make ~name:"shearer-ring14"
        (Staged.stage
           (let inst = Syn.ring ~seed:3 ~n:14 ~arity:4 () in
            fun () -> Lll_core.Criteria.shearer_holds inst));
      Test.make ~name:"shift-graph-chi-S52"
        (Staged.stage (fun () -> Lll_graph.Shift_graph.chromatic_number ~m:5 ~k:2 ()));
      Test.make ~name:"serial-roundtrip"
        (Staged.stage (fun () -> Lll_core.Serial.of_string (Lll_core.Serial.to_string ring64)));
    ]

let all_tests =
  Test.make_grouped ~name:"lll"
    [
      test_solvers; test_f1; test_f2; test_t5; test_t6_t7; test_t8; test_substrates;
      test_extensions; test_runtime_par; test_runtime_csr; test_analysis;
    ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances all_tests in
  Analyze.all ols Instance.monotonic_clock raw

(* ---- the enum/table perf report (BENCH_pr3.json) ----

   Per-engine steps/sec (steps = variables fixed per solve) under both
   probability backends, plus a rank-3 fixer size sweep. Timing is
   adaptive: repeat each solve until the case has accumulated enough
   wall time for a stable rate. Both backends produce identical
   solutions (differential-tested); only the cost differs. *)

let time_steps_per_sec s inst backend =
  let params = { Solver.default_params with prob_backend = Some backend } in
  ignore (Solver.solve ~params s inst : Solver.report) (* warm-up *);
  let min_ns = 30_000_000 and max_reps = 100 in
  let t0 = Lll_local.Metrics.now_ns () in
  let reps = ref 0 in
  while Lll_local.Metrics.now_ns () - t0 < min_ns && !reps < max_reps do
    ignore (Solver.solve ~params s inst : Solver.report);
    incr reps
  done;
  let total_ns = Lll_local.Metrics.now_ns () - t0 in
  float_of_int (!reps * I.num_vars inst) /. (float_of_int total_ns /. 1e9)

let backend_row name s inst =
  let enum = time_steps_per_sec s inst Space.Enum in
  let table = time_steps_per_sec s inst Space.Table in
  (name, I.num_vars inst, enum, table)

let json_row buf ~label (name, nvars, enum, table) ~last =
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"%s\": \"%s\", \"n_vars\": %d, \"enum_steps_per_sec\": %.1f, \
        \"table_steps_per_sec\": %.1f, \"speedup\": %.2f}%s\n"
       label name nvars enum table (table /. enum)
       (if last then "" else ","))

let write_backend_report path =
  (* the sequential engines that exercise the conditional-probability
     hot path; randomized/distributed engines are dominated by other
     costs and keep the bechamel run as their home *)
  let engine_cases =
    [
      ("fix2", Solver.find_exn "fix2", ring64);
      ("fix3", Solver.find_exn "fix3", rank3_inst);
      ("fix3-exact", Solver.find_exn "fix3-exact", rank3_inst);
      ("fixr", Solver.find_exn "fixr", rank4_inst);
      ("union-bound", Solver.find_exn "union-bound", rank3_inst);
      ("mt-seq", Solver.find_exn "mt-seq", rank3_inst);
    ]
  in
  let engines = List.map (fun (n, s, i) -> backend_row n s i) engine_cases in
  let sweep =
    List.map
      (fun n ->
        let inst = Syn.random ~seed:1 ~n ~rank:3 ~delta:2 ~arity:8 () in
        backend_row (Printf.sprintf "fix3-n%d" n) (Solver.find_exn "fix3") inst)
      [ 18; 36; 60 ]
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"pr3-prob-backend\",\n";
  Buffer.add_string buf "  \"unit\": \"steps_per_sec\",\n  \"engines\": [\n";
  List.iteri
    (fun i row -> json_row buf ~label:"engine" row ~last:(i = List.length engines - 1))
    engines;
  Buffer.add_string buf "  ],\n  \"rank3_sweep\": [\n";
  List.iteri
    (fun i row -> json_row buf ~label:"case" row ~last:(i = List.length sweep - 1))
    sweep;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  List.iter
    (fun (name, _, enum, table) ->
      Format.printf "%-22s enum %10.0f steps/s   table %10.0f steps/s   speedup %.2fx@."
        name enum table (table /. enum))
    (engines @ sweep);
  Format.printf "backend report -> %s@." path

(* ---- the Moser–Tardos occurring-set report (BENCH_pr4.json) ----

   Resamplings/sec of the incremental occurring-set maintenance (O(deg)
   per resampling) against the pre-incremental full-rescan ablation
   (O(m) per resampling). Both variants draw the same random stream and
   make the same selections, so only the bookkeeping cost differs. All
   rows use the n=60 rank-3 sweep instance; the primary row is the
   at-threshold variant under a seed whose run actually lives in the
   resampling loop (16 resamplings), so the per-solve fixed costs
   shared by both variants (initial sampling, initial scan) don't
   drown the hot path under test. The mean-case rows keep the
   fixed-cost-dominated picture honest alongside it. *)

let mt_sweep_below = Syn.random ~seed:1 ~n:60 ~rank:3 ~delta:2 ~arity:8 ()

let mt_sweep_at =
  Syn.random ~position:Syn.At_threshold ~seed:1 ~n:60 ~rank:3 ~delta:2 ~arity:8 ()

let time_resamplings_per_sec solve ~seed_of_rep inst =
  ignore (solve ~seed:(seed_of_rep 0) inst : Assignment.t * MT.stats) (* warm-up *);
  let min_ns = 50_000_000 and max_reps = 50_000 in
  let t0 = Lll_local.Metrics.now_ns () in
  let resamplings = ref 0 and reps = ref 0 in
  while Lll_local.Metrics.now_ns () - t0 < min_ns && !reps < max_reps do
    incr reps;
    let _, (st : MT.stats) = solve ~seed:(seed_of_rep !reps) inst in
    resamplings := !resamplings + st.MT.resamplings
  done;
  let total_ns = Lll_local.Metrics.now_ns () - t0 in
  (float_of_int !resamplings /. (float_of_int total_ns /. 1e9),
   float_of_int !resamplings /. float_of_int !reps)

let write_mt_report path =
  let cases =
    [
      (* fixed hot-path seed: 16 resamplings per solve *)
      ("n60-at-threshold-seed179", mt_sweep_at, fun _ -> 179);
      (* mean-case context: fresh seed per repetition *)
      ("n60-at-threshold-mean", mt_sweep_at, fun rep -> rep + 1);
      ("n60-below-threshold-mean", mt_sweep_below, fun rep -> rep + 1);
    ]
  in
  let rows =
    List.map
      (fun (name, inst, seed_of_rep) ->
        let incr_rps, per_solve =
          time_resamplings_per_sec
            (fun ~seed i -> MT.solve_sequential ~seed i)
            ~seed_of_rep inst
        in
        let rescan_rps, _ =
          time_resamplings_per_sec
            (fun ~seed i -> MT.solve_sequential_rescan ~seed i)
            ~seed_of_rep inst
        in
        (name, per_solve, incr_rps, rescan_rps))
      cases
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"pr4-mt-occurring-set\",\n";
  Buffer.add_string buf "  \"unit\": \"resamplings_per_sec\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"instance\": \"Syn.random ~n:60 ~rank:3 ~delta:2 ~arity:8 (%d events, %d vars)\",\n"
       (I.num_events mt_sweep_at) (I.num_vars mt_sweep_at));
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i (name, per_solve, incr_rps, rescan_rps) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"case\": \"%s\", \"resamplings_per_solve\": %.1f, \
            \"incremental_rps\": %.0f, \"rescan_rps\": %.0f, \"speedup\": %.2f}%s\n"
           name per_solve incr_rps rescan_rps (incr_rps /. rescan_rps)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  List.iter
    (fun (name, per_solve, incr_rps, rescan_rps) ->
      Format.printf
        "%-28s incremental %10.0f resamplings/s   rescan %10.0f resamplings/s   \
         speedup %.2fx  (%.1f per solve)@."
        name incr_rps rescan_rps (incr_rps /. rescan_rps) per_solve)
    rows;
  Format.printf "mt occurring-set report -> %s@." path

(* ---- the CSR/arena report (BENCH_pr5.json) ----

   Old-vs-new LOCAL rounds/sec on the workloads the graph/runtime
   refactor targets: ball gathering (sorted-merge vs sort_uniq dedup),
   distributed 2-hop coloring (CSR square + flat int rounds vs list
   square + assoc-list rounds), message flooding (arena vs list
   inboxes), and the end-to-end rank-3 distributed fixer. Rounds are
   simulated LOCAL rounds; both sides run sequentially (domains:1). *)

let time_rounds_per_sec ?(warmup = true) f =
  if warmup then
    ignore (f () : int) (* warm-up, and the cheap correctness runs live here too *);
  let min_ns = 200_000_000 and max_reps = 20 in
  let t0 = Lll_local.Metrics.now_ns () in
  let rounds = ref 0 and reps = ref 0 in
  while (!reps = 0 || Lll_local.Metrics.now_ns () - t0 < min_ns) && !reps < max_reps do
    rounds := !rounds + f ();
    incr reps
  done;
  let total_ns = Lll_local.Metrics.now_ns () - t0 in
  float_of_int !rounds /. (float_of_int total_ns /. 1e9)

let write_csr_report path =
  (* self-check at the smallest size: the legacy reimplementations must
     agree exactly with the shipped stack before their timings mean
     anything *)
  let g0 = csr_graph 1_000 in
  let net0 = Net.create g0 and lg0 = Legacy.of_graph g0 in
  let b_new, _ = RT.gather_balls ~domains:1 net0 ~radius:3 ~value:Fun.id in
  let b_old, _ = Legacy.gather_balls lg0 ~radius:3 ~value:Fun.id in
  assert (b_new = b_old);
  let c_new, r_new = DC.two_hop_color ~domains:1 net0 in
  let c_old, r_old = Legacy.two_hop_color lg0 in
  assert (c_new = c_old && r_new = r_old);
  let sizes = [ 1_000; 10_000; 100_000 ] in
  let per_size name f =
    List.map
      (fun n ->
        let g = csr_graph n in
        let net = Net.create g and lg = Legacy.of_graph g in
        let new_rps, old_rps = f net lg in
        (name, n, new_rps, old_rps))
      sizes
  in
  let gather_rows =
    per_size "gather-balls-r3" (fun net lg ->
        ( time_rounds_per_sec (fun () ->
              let _, (st : RT.stats) =
                RT.gather_balls ~domains:1 net ~radius:3 ~value:Fun.id
              in
              st.RT.rounds),
          time_rounds_per_sec (fun () ->
              snd (Legacy.gather_balls lg ~radius:3 ~value:Fun.id)) ))
  in
  let twohop_rows =
    per_size "two-hop-coloring" (fun net lg ->
        ( time_rounds_per_sec (fun () -> snd (DC.two_hop_color ~domains:1 net)),
          time_rounds_per_sec (fun () -> snd (Legacy.two_hop_color lg)) ))
  in
  let echo_rows =
    per_size "echo-flood-4r" (fun net lg ->
        (time_rounds_per_sec (echo_rounds_new net), time_rounds_per_sec (echo_rounds_legacy lg)))
  in
  (* rank-3 fixer: n is the event count (999/9999 because the regular
     hypergraph generator needs n*delta divisible by rank); at 1e5 the
     sequential fixer sweep (identical on both sides) dominates the wall
     clock, so the row is measured at ~1k/~10k where the coloring
     infrastructure still shows — noted in the JSON rather than silently
     dropped *)
  let fixer_rows =
    List.map
      (fun n ->
        let inst = Syn.random ~seed:5 ~n ~rank:3 ~delta:2 ~arity:8 () in
        let new_rps =
          time_rounds_per_sec (fun () ->
              (Lll_core.Distributed.solve_rank3 ~domains:1 inst).Lll_core.Distributed.rounds)
        in
        let old_rps = time_rounds_per_sec (fun () -> Legacy.solve_rank3 inst) in
        ("rank3-dist-fixer", n, new_rps, old_rps))
      [ 999; 9_999 ]
  in
  (* the sizes the fixer series deliberately does NOT measure: an
     explicit skipped entry in the JSON (with the reason) instead of a
     silently truncated series *)
  let skipped_rows =
    [
      ( "rank3-dist-fixer",
        99_999,
        "measured in BENCH_pr7.json: the flat-engine report re-enables this size with \
         flat-vs-boxed and domains:1-vs-N columns" );
    ]
  in
  let rows = gather_rows @ twohop_rows @ echo_rows @ fixer_rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"pr5-csr-arena\",\n";
  Buffer.add_string buf "  \"unit\": \"rounds_per_sec\",\n";
  Buffer.add_string buf
    "  \"note\": \"simulated LOCAL rounds per wall-clock second, domains:1 on both sides; \
     legacy = pre-CSR list stack reimplemented in bench/main.ml; skipped workloads carry \
     their reason inline\",\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  let entries =
    List.map
      (fun (name, n, new_rps, old_rps) ->
        Printf.sprintf
          "    {\"workload\": \"%s\", \"n\": %d, \"csr_rounds_per_sec\": %.2f, \
           \"legacy_rounds_per_sec\": %.2f, \"speedup\": %.2f}"
          name n new_rps old_rps (new_rps /. old_rps))
      rows
    @ List.map
        (fun (name, n, reason) ->
          Printf.sprintf
            "    {\"workload\": \"%s\", \"n\": %d, \"status\": \"skipped\", \"reason\": \
             \"%s\"}"
            name n reason)
        skipped_rows
  in
  Buffer.add_string buf (String.concat ",\n" entries);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  List.iter
    (fun (name, n, new_rps, old_rps) ->
      Format.printf "%-18s n=%-7d csr %10.1f rounds/s   legacy %10.1f rounds/s   speedup %.2fx@."
        name n new_rps old_rps (new_rps /. old_rps))
    rows;
  List.iter
    (fun (name, n, reason) -> Format.printf "%-18s n=%-7d SKIPPED: %s@." name n reason)
    skipped_rows;
  Format.printf "csr/arena report -> %s@." path

(* ---- the flat-engine report (BENCH_pr7.json) ----

   PR 7 retired the boxed LOCAL engine: protocol states live in
   record-of-arrays columns ([Flat_state]), and same-color fixer classes
   fan out over the domain pool. For every migrated protocol this report
   measures rounds/sec three ways — flat with domains:1 (the sequential
   reference), flat with domains:N, and the retained boxed/legacy
   ablation — after self-checking at the smallest size that all three
   produce identical output. The rank3-dist-fixer series re-enables the
   n~1e5 row that the PR 5 report skipped (its legacy side is the same
   [Legacy.solve_rank3] the PR 5 rows compare against). Large sizes are
   timed without warm-up: one solve there already runs for seconds. *)

module Mis = Lll_local.Mis
module Prim = Lll_local.Primitives

let write_flat_report path =
  let domains = par_domains in
  (* self-checks: the three execution modes must agree exactly before
     the ratios mean anything *)
  let net0 = Net.create (csr_graph 1_000) in
  assert (Mis.luby ~domains:1 ~seed:4 net0 = Mis.luby ~domains ~seed:4 net0);
  assert (Mis.luby ~domains:1 ~seed:4 net0 = Mis.luby_boxed ~domains:1 ~seed:4 net0);
  assert (
    Prim.elect_leader ~domains:1 net0 = Prim.elect_leader_boxed ~domains:1 net0
    && Prim.elect_leader ~domains net0 = Prim.elect_leader ~domains:1 net0);
  let lll0 = Syn.random ~seed:5 ~n:120 ~rank:3 ~delta:2 ~arity:8 () in
  let dl engine d = Lll_core.Dist_lll.solve ~engine ~domains:d lll0 in
  assert (dl `Flat 1 = dl `Flat domains && dl `Flat 1 = dl `Boxed 1);
  let row ~warmup name n ~flat1 ~flatn ~boxed =
    let f1 = time_rounds_per_sec ~warmup flat1 in
    let fn = time_rounds_per_sec ~warmup flatn in
    let bx = time_rounds_per_sec ~warmup boxed in
    (name, n, f1, fn, bx)
  in
  let luby_rows =
    List.map
      (fun n ->
        let net = Net.create (csr_graph n) in
        row ~warmup:(n < 50_000) "mis-luby" n
          ~flat1:(fun () -> snd (Mis.luby ~domains:1 ~seed:4 net))
          ~flatn:(fun () -> snd (Mis.luby ~domains ~seed:4 net))
          ~boxed:(fun () -> snd (Mis.luby_boxed ~domains:1 ~seed:4 net)))
      [ 1_000; 10_000; 100_000 ]
  in
  let leader_rows =
    (* diameter_bound caps the flood at 8 rounds so the workload stays a
       per-round scan rather than the O(n) default bound *)
    List.map
      (fun n ->
        let net = Net.create (csr_graph n) in
        row ~warmup:(n < 50_000) "leader-flood-8r" n
          ~flat1:(fun () -> snd (Prim.elect_leader ~diameter_bound:8 ~domains:1 net))
          ~flatn:(fun () -> snd (Prim.elect_leader ~diameter_bound:8 ~domains net))
          ~boxed:(fun () ->
            snd (Prim.elect_leader_boxed ~diameter_bound:8 ~domains:1 net)))
      [ 1_000; 10_000; 100_000 ]
  in
  let dist_lll_rows =
    (* the gossip sweep's per-round merge is quadratic-ish in n; small
       sizes keep the row about the engine, not the merge *)
    List.map
      (fun n ->
        let inst = Syn.random ~seed:5 ~n ~rank:3 ~delta:2 ~arity:8 () in
        let go engine d () =
          (Lll_core.Dist_lll.solve ~engine ~domains:d inst).Lll_core.Dist_lll.rounds
        in
        row ~warmup:true "dist-lll-sweep" n ~flat1:(go `Flat 1) ~flatn:(go `Flat domains)
          ~boxed:(go `Boxed 1))
      [ 120; 480 ]
  in
  let fixer_rows =
    (* the series the PR 5 report skipped beyond n~10k, re-enabled: the
       legacy column is the PR 5 boxed-stack [Legacy.solve_rank3] *)
    List.map
      (fun n ->
        let inst = Syn.random ~seed:5 ~n ~rank:3 ~delta:2 ~arity:8 () in
        row ~warmup:(n < 50_000) "rank3-dist-fixer" n
          ~flat1:(fun () ->
            (Lll_core.Distributed.solve_rank3 ~domains:1 inst).Lll_core.Distributed.rounds)
          ~flatn:(fun () ->
            (Lll_core.Distributed.solve_rank3 ~domains inst).Lll_core.Distributed.rounds)
          ~boxed:(fun () -> Legacy.solve_rank3 inst))
      [ 999; 9_999; 99_999 ]
  in
  let rows = luby_rows @ leader_rows @ dist_lll_rows @ fixer_rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"pr7-flat-engine\",\n";
  Buffer.add_string buf "  \"unit\": \"rounds_per_sec\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string buf
    "  \"note\": \"record-of-arrays engine vs the retired boxed engine on every migrated \
     protocol; flat_d1 = flat sequential reference, flat_dN = flat with the domain pool, \
     boxed = retained ablation (legacy PR 5 stack for rank3-dist-fixer); all three \
     self-checked for identical output at the smallest size\",\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  let entries =
    List.map
      (fun (name, n, f1, fn, bx) ->
        Printf.sprintf
          "    {\"workload\": \"%s\", \"n\": %d, \"flat_d1_rounds_per_sec\": %.2f, \
           \"flat_dN_rounds_per_sec\": %.2f, \"boxed_rounds_per_sec\": %.2f, \
           \"speedup_flat_vs_boxed\": %.2f, \"speedup_dN_vs_d1\": %.2f}"
          name n f1 fn bx (Float.max f1 fn /. bx) (fn /. f1))
      rows
  in
  Buffer.add_string buf (String.concat ",\n" entries);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  List.iter
    (fun (name, n, f1, fn, bx) ->
      Format.printf
        "%-18s n=%-7d flat-d1 %10.1f r/s   flat-d%d %10.1f r/s   boxed %10.1f r/s   \
         flat/boxed %.2fx@."
        name n f1 domains fn bx (Float.max f1 fn /. bx))
    rows;
  Format.printf "flat-engine report -> %s@." path

(* ---- the serve/substrate report (BENCH_pr8.json) ----

   PR 8 added the binary v3 instance container and the persistent solve
   service. Two measurements: codec — cold text-v2 parse vs binary v3
   load of the same instance at n~1e3 and n~1e5 (the acceptance bar is
   binary load >= 10x faster at 1e5); serve — requests/sec for repeat
   solve requests through the in-process scheduler (the repeats hit the
   LRU cache, so only the solve runs) vs the direct path that re-parses
   the same text blob and solves per request. Both paths verify. *)

module Serial = Lll_core.Serial
module Sched = Lll_serve.Sched
module Proto = Lll_serve.Protocol

(* Fastest-of-reps wall time: the statistic that reflects the measured
   code rather than collector state left by the previous rep. *)
let time_secs_per_op ?(warmup = true) ?(max_reps = 12) f =
  if warmup then f ();
  let min_ns = 200_000_000 in
  let t0 = Lll_local.Metrics.now_ns () in
  let best = ref infinity and reps = ref 0 in
  while (!reps = 0 || Lll_local.Metrics.now_ns () - t0 < min_ns) && !reps < max_reps do
    Gc.compact ();
    let r0 = Lll_local.Metrics.now_ns () in
    f ();
    let dt = float_of_int (Lll_local.Metrics.now_ns () - r0) /. 1e9 in
    if dt < !best then best := dt;
    incr reps
  done;
  !best

(* Cold-load timing must not depend on this process's heap history (a
   long-lived bench process re-marks its live baseline all through a
   load's allocation burst, which can dominate the decode several times
   over). So each load runs in a fresh child: the bench re-executes
   itself with [--codec-probe FILE], and the child prints the decode
   nanoseconds for the parent to collect. *)
let codec_probe path =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let t0 = Lll_local.Metrics.now_ns () in
  ignore (Lll_core.Serial.of_any_string s : Lll_core.Instance.t);
  Printf.printf "%d\n" (Lll_local.Metrics.now_ns () - t0)

let cold_load_secs ?(reps = 3) path =
  let cmd = Filename.quote_command Sys.executable_name [ "--codec-probe"; path ] in
  let best = ref infinity in
  for _ = 1 to reps do
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> ()
    | _ -> failwith ("codec probe failed on " ^ path));
    let dt = float_of_string line /. 1e9 in
    if dt < !best then best := dt
  done;
  !best

let write_serve_report path =
  (* codec rows: the text form carries per-tuple rational weights the
     parser must re-verify — exactly the work the raw-column binary
     sections skip. The ring-a8 row (16 occurring tuples per event) is
     the acceptance row: a >= 1e5-node instance whose binary load must
     be >= 10x faster than the text parse. *)
  let codec_rows =
    List.map
      (fun (family, n, build) ->
        (* build per row and drop before the next so earlier instances
           don't sit in the live heap inflating collector costs *)
        let inst = build () in
        let text = Serial.to_string inst and blob = Serial.to_binary_string inst in
        (* self-check: the binary round-trip must hit the text fixed
           point before the timings mean anything *)
        if n <= 1_002 then
          assert (Serial.to_string (Serial.of_binary_string blob) = text);
        let text_file = Filename.temp_file "lll_codec" ".txt"
        and bin_file = Filename.temp_file "lll_codec" ".bin" in
        Fun.protect
          ~finally:(fun () ->
            Sys.remove text_file;
            Sys.remove bin_file)
          (fun () ->
            Out_channel.with_open_bin text_file (fun oc -> output_string oc text);
            Out_channel.with_open_bin bin_file (fun oc -> output_string oc blob);
            let t_text = cold_load_secs text_file in
            let t_bin = cold_load_secs bin_file in
            (family, n, String.length text, String.length blob, t_text, t_bin)))
      [
        ("rank3-a8", 1_002, fun () -> Syn.random ~seed:8 ~n:1_002 ~rank:3 ~delta:2 ~arity:8 ());
        ("rank3-a8", 99_999, fun () -> Syn.random ~seed:8 ~n:99_999 ~rank:3 ~delta:2 ~arity:8 ());
        ("ring-a8", 100_000, fun () -> Syn.ring ~seed:8 ~n:100_000 ~arity:8 ());
      ]
  in
  (* serve rows: identical blob-bodied solve requests against a live
     scheduler (content-hash cache hit after the first) vs re-parsing
     the same blob and solving directly per request *)
  let solver_name = "sinkless-orient" in
  let solver = Solver.find_exn solver_name in
  let serve_rows =
    List.map
      (fun n ->
        let inst = Sink.instance (Gen.random_regular ~seed:8 n 3) in
        let text = Serial.to_string inst in
        let sched = Sched.create ~capacity:4 () in
        let frame =
          { Proto.header = [ ("op", "solve"); ("solver", solver_name) ]; body = text }
        in
        let last = ref None in
        let serve_once () =
          match Sched.handle_batch sched [ frame ] ~emit:(fun f -> last := Some f) with
          | `Continue -> ()
          | `Shutdown -> assert false
        in
        serve_once ();
        (* the repeat must be a pure cache hit with a verified solve *)
        (match !last with
        | Some f ->
          serve_once ();
          let f' = Option.get !last in
          assert (Proto.get_exn f' "cache" = "hit");
          assert (Proto.get_bool f' "ok");
          assert (f'.Proto.body = f.Proto.body)
        | None -> assert false);
        let warmup = n < 50_000 in
        let t_served = time_secs_per_op ~warmup serve_once in
        let t_direct =
          time_secs_per_op ~warmup (fun () ->
              let i = Serial.of_string text in
              let report = Solver.solve solver i in
              assert report.Solver.ok)
        in
        (n, 1. /. t_direct, 1. /. t_served))
      [ 1_000; 100_000 ]
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"pr8-serve-substrate\",\n";
  Buffer.add_string buf
    "  \"note\": \"codec = cold text-v2 parse vs binary v3 load of the same instance, \
     fastest rep after Gc.compact (acceptance: >= 10x on a >= 1e5-node row); serve = \
     requests/sec for repeat solve requests through the scheduler (LRU cache hit, solve \
     only) vs re-parsing the same text blob and solving per request; both paths \
     verify\",\n";
  Buffer.add_string buf "  \"codec\": [\n";
  let codec_entries =
    List.map
      (fun (family, n, tb, bb, tt, tbin) ->
        Printf.sprintf
          "    {\"family\": \"%s\", \"n\": %d, \"text_bytes\": %d, \"bin_bytes\": %d, \
           \"text_parse_sec\": %.6f, \"bin_load_sec\": %.6f, \"load_speedup\": %.2f}"
          family n tb bb tt tbin (tt /. tbin))
      codec_rows
  in
  Buffer.add_string buf (String.concat ",\n" codec_entries);
  Buffer.add_string buf "\n  ],\n  \"serve\": [\n";
  let serve_entries =
    List.map
      (fun (n, direct, served) ->
        Printf.sprintf
          "    {\"family\": \"sinkless\", \"solver\": \"%s\", \"n\": %d, \
           \"direct_req_per_sec\": %.2f, \"served_req_per_sec\": %.2f, \"speedup\": \
           %.2f}"
          solver_name n direct served (served /. direct))
      serve_rows
  in
  Buffer.add_string buf (String.concat ",\n" serve_entries);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  let bar_met =
    List.exists (fun (_, n, _, _, tt, tbin) -> n >= 100_000 && tt /. tbin >= 10.) codec_rows
  in
  List.iter
    (fun (family, n, tb, bb, tt, tbin) ->
      Format.printf
        "codec-%-12s n=%-7d text %8.1f KB %8.4f s   binary %8.1f KB %8.4f s   load %.1fx@."
        family n
        (float_of_int tb /. 1024.)
        tt
        (float_of_int bb /. 1024.)
        tbin (tt /. tbin))
    codec_rows;
  if not bar_met then
    Format.printf "codec: WARNING — no >= 1e5-node row reached the 10x load-speedup bar@.";
  List.iter
    (fun (n, direct, served) ->
      Format.printf
        "serve-%s n=%-7d direct %8.2f req/s   served %8.2f req/s   %.1fx@." solver_name n
        direct served (served /. direct))
    serve_rows;
  Format.printf "serve/substrate report -> %s@." path

(* ---- the concurrent-serve report (BENCH_pr9.json) ----

   PR 9 scaled the socket server to a worker-pool fleet and memoized
   repeat solve responses. Two measurements:

   - fleet — requests/sec for 1/2/4 concurrent client connections
     firing identical blob-bodied solve requests at a real socket
     server (in-process, worker domains, full frame transport). Repeat
     requests replay out of the response memo — sound because a solve
     is bit-identical for identical (instance, solver, seed, domains),
     which the scenario corpus pins — so the served rate measures the
     fleet path, not repeated solver work. The memo=0 row is the
     honest no-memo baseline: every request re-runs the solver. The
     acceptance bar compares the 4-client row against BENCH_pr8.json's
     single-connection served rate at n=1e5.

   - mmap — cold file-to-instance load of the n~1e5 binary container
     via the classic read path (slurp + decode) vs the mmap path
     (map_file + decode off the mapping), fresh child process per rep
     like the codec rows. Acceptance: mmap no slower than read. *)

module SClient = Lll_serve.Client

let cold_file_load_once ~mode path =
  (* process CPU time, not wall: the load is page-cache-warm and
     compute-bound (page faults land in sys time, the slurp copy in
     user time), while wall clock on a busy shared host swings by more
     than the few percent separating the modes *)
  let cmd =
    Filename.quote_command Sys.executable_name
      [ "--codec-probe-load"; path; "--load-mode"; mode; "--cpu" ]
  in
  let ic = Unix.open_process_in cmd in
  let line = try input_line ic with End_of_file -> "" in
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> failwith ("load probe failed on " ^ path));
  float_of_string line /. 1e9

(* Median-of-reps with the two modes interleaved rep by rep: they sit
   within a few percent of each other, so back-to-back blocks would let
   host drift between the blocks (or one lucky scheduling window under
   best-of-N) decide the comparison. *)
let cold_file_load_pair ?(reps = 7) ~mode_a ~mode_b path =
  let sa = Array.make reps 0. in
  let sb = Array.make reps 0. in
  for i = 0 to reps - 1 do
    sa.(i) <- cold_file_load_once ~mode:mode_a path;
    sb.(i) <- cold_file_load_once ~mode:mode_b path
  done;
  Array.sort compare sa;
  Array.sort compare sb;
  (sa.(reps / 2), sb.(reps / 2))

let codec_probe_load mode path =
  let module Bin = Lll_graph.Serialize.Bin in
  let cpu0 = Unix.times () in
  let t0 = Lll_local.Metrics.now_ns () in
  (match mode with
  | "mmap" -> ignore (Serial.load_binary_mmap path : Lll_core.Instance.t)
  | "mmap-open" ->
    (* header + checksum only: isolates the word-assembly cost *)
    ignore (Bin.open_reader_src ~kind:"instance" (Bin.source_of_path path))
  | "read-open" ->
    let data = In_channel.with_open_bin path In_channel.input_all in
    ignore (Bin.open_reader_src ~kind:"instance" (Bin.source_of_string data))
  | "read-sections" | "mmap-sections" ->
    (* coarse per-phase split of the instance decode, stderr *)
    let now = Lll_local.Metrics.now_ns in
    let t_open0 = now () in
    let src =
      if mode = "mmap-sections" then Bin.source_of_path path
      else Bin.source_of_string (In_channel.with_open_bin path In_channel.input_all)
    in
    let r = Bin.open_reader_src ~kind:"instance" src in
    let t_open = now () - t_open0 in
    let t_vars0 = now () in
    Bin.enter r "VARS";
    let nvars = Bin.read_int r in
    for _ = 1 to nvars do
      ignore (Bin.read_string r);
      ignore (Bin.read_rat_array r)
    done;
    let t_vars = now () - t_vars0 in
    let t_evts0 = now () in
    Bin.enter r "EVTS";
    let nevents = Bin.read_int r in
    for _ = 1 to nevents do
      ignore (Bin.read_string r);
      ignore (Bin.read_int_array r);
      ignore (Bin.read_int_array r);
      ignore (Bin.read_rat_array r)
    done;
    let t_evts = now () - t_evts0 in
    let t_depg0 = now () in
    Bin.enter r "DEPG";
    let gblob = Bin.read_blob r in
    let _g = Lll_graph.Serialize.graph_of_binary_src gblob in
    let t_depg = now () - t_depg0 in
    Printf.eprintf "open %.3f vars %.3f evts %.3f depg %.3f\n" (float t_open /. 1e9)
      (float t_vars /. 1e9) (float t_evts /. 1e9) (float t_depg /. 1e9)
  | "mmap-touch" ->
    (* page-fault floor: touch one byte per page of a fresh mapping *)
    let buf = Bin.map_file path in
    let n = Bigarray.Array1.dim buf in
    let acc = ref 0 in
    let i = ref 0 in
    while !i < n do
      acc := !acc + Char.code (Bigarray.Array1.unsafe_get buf !i);
      i := !i + 4096
    done;
    ignore (Sys.opaque_identity !acc)
  | _ -> ignore (Serial.load_binary path : Lll_core.Instance.t));
  (* Settle each mode's deferred collector debt inside the stopwatch:
     GC pacing scales with heap size, so the read path's 20MB transient
     slurp string otherwise pushes its own major cycle past the timed
     window while the mmap path (smaller heap) pays one within it.
     Collecting that transient copy is a real cost of the read
     approach — it just has to be charged to the right interval. *)
  Gc.full_major ();
  let wall = Lll_local.Metrics.now_ns () - t0 in
  let cpu1 = Unix.times () in
  let cpu =
    cpu1.Unix.tms_utime -. cpu0.Unix.tms_utime +. cpu1.Unix.tms_stime -. cpu0.Unix.tms_stime
  in
  ignore (Sys.opaque_identity cpu);
  if Array.exists (( = ) "--cpu") Sys.argv then
    Printf.printf "%d\n" (int_of_float (cpu *. 1e9))
  else Printf.printf "%d\n" wall

(* One fleet measurement: an in-process socket server on worker
   domains, [clients] connection domains sending [requests] identical
   requests each over the full frame transport. Returns requests/sec
   over the whole storm. *)
let fleet_req_per_sec ~workers ~clients ~requests frame =
  let path = Filename.temp_file "lll_bench" ".sock" in
  Sys.remove path;
  let server =
    Domain.spawn (fun () ->
        Lll_serve.Serve.serve_socket ~capacity:8 ~workers ~path ())
  in
  let rec await tries =
    let ok =
      Sys.file_exists path
      &&
      match SClient.connect_socket path with
      | conn ->
        SClient.close conn;
        true
      | exception _ -> false
    in
    if ok then ()
    else if tries = 0 then failwith "bench server did not come up"
    else begin
      Unix.sleepf 0.02;
      await (tries - 1)
    end
  in
  await 500;
  (* warm: first request pays the instance build (and the memo fill
     when memoization is on) — the steady state is what the row rates *)
  (let conn = SClient.connect_socket path in
   let r = SClient.request conn frame in
   assert (Proto.get r.SClient.result "status" = Some "ok");
   SClient.close conn);
  let hammer () =
    let conn = SClient.connect_socket path in
    Fun.protect
      ~finally:(fun () -> SClient.close conn)
      (fun () ->
        for _ = 1 to requests do
          let r = SClient.request conn frame in
          assert (Proto.get r.SClient.result "status" = Some "ok")
        done)
  in
  let t0 = Lll_local.Metrics.now_ns () in
  let doms = List.init clients (fun _ -> Domain.spawn hammer) in
  List.iter Domain.join doms;
  let dt = float_of_int (Lll_local.Metrics.now_ns () - t0) /. 1e9 in
  (let conn = SClient.connect_socket path in
   SClient.shutdown conn);
  Domain.join server;
  float_of_int (clients * requests) /. dt

let write_serve9_report path =
  let n = 100_000 in
  let inst = Sink.instance (Gen.random_regular ~seed:8 n 3) in
  let text = Lll_core.Serial.to_string inst in
  let blob = Serial.to_binary_string inst in
  let bin_file = Filename.temp_file "lll_mmap" ".lllbin" in
  Out_channel.with_open_bin bin_file (fun oc -> output_string oc blob);
  (* the fleet's requests name the server-local container file: a
     ~100-byte frame instead of a multi-megabyte blob body per request,
     keyed by the container's header fingerprint and loaded via mmap —
     the serving mode this PR adds. The blob row keeps the PR 8 framing
     for comparison: there, reshipping the body dominates. *)
  let file_frame extra =
    { Proto.header = [ ("op", "solve"); ("solver", "sinkless-orient"); ("file", bin_file) ] @ extra;
      body = "" }
  in
  let blob_frame =
    { Proto.header = [ ("op", "solve"); ("solver", "sinkless-orient") ]; body = text }
  in
  let fleet_rows =
    List.map
      (fun (label, clients, requests, frame) ->
        let rps = fleet_req_per_sec ~workers:4 ~clients ~requests frame in
        (label, clients, rps))
      [
        ("memo-1-client", 1, 24, file_frame []);
        ("memo-2-clients", 2, 24, file_frame []);
        ("memo-4-clients", 4, 24, file_frame []);
        ("nomemo-4-clients", 4, 2, file_frame [ ("memo", "0") ]);
        ("memo-blob-4-clients", 4, 8, blob_frame);
      ]
  in
  (* mmap vs read cold load of the binary container *)
  let t_read, t_mmap =
    Fun.protect
      ~finally:(fun () -> Sys.remove bin_file)
      (fun () ->
        cold_file_load_pair ~mode_a:"read" ~mode_b:"mmap" bin_file)
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"pr9-concurrent-serve\",\n";
  Buffer.add_string buf
    "  \"note\": \"fleet = requests/sec for concurrent clients firing identical solve \
     requests at an in-process socket server (4 worker domains, full frame transport); \
     file rows name the server-local binary container (fingerprint-keyed, mmap-loaded), \
     the blob row reships the text body per request (PR 8 framing); memo rows replay \
     repeat responses out of the response memo (sound: solves are bit-identical for \
     identical instance/solver/seed/domains), the nomemo row re-runs the solver per \
     request; mmap = cold file-to-instance load of the binary container, read path vs \
     map_file path, fresh child per rep, seconds are process CPU time (user+sys), \
     median of interleaved reps\",\n";
  Buffer.add_string buf "  \"fleet\": [\n";
  let fleet_entries =
    List.map
      (fun (label, clients, rps) ->
        Printf.sprintf
          "    {\"row\": \"%s\", \"family\": \"sinkless\", \"solver\": \
           \"sinkless-orient\", \"n\": %d, \"clients\": %d, \"workers\": 4, \
           \"req_per_sec\": %.2f}"
          label n clients rps)
      fleet_rows
  in
  Buffer.add_string buf (String.concat ",\n" fleet_entries);
  Buffer.add_string buf "\n  ],\n  \"mmap\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"family\": \"sinkless\", \"n\": %d, \"bin_bytes\": %d, \
        \"read_load_sec\": %.6f, \"mmap_load_sec\": %.6f, \"mmap_speedup\": %.2f}"
       n (String.length blob) t_read t_mmap (t_read /. t_mmap));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  List.iter
    (fun (label, clients, rps) ->
      Format.printf "fleet-%-18s n=%d clients=%d   %10.2f req/s@." label n clients rps)
    fleet_rows;
  Format.printf "mmap-load n=%d   read %8.4f s   mmap %8.4f s   %.2fx@." n t_read t_mmap
    (t_read /. t_mmap);
  Format.printf "concurrent-serve report -> %s@." path

(* ---- the artifact-store report (BENCH_pr10.json) ----

   PR 10 made the content-addressed store the only acquisition path and
   extended the corpus grids an order of magnitude. Two measurements:

   - acquisition — honest cold vs warm seconds per instance: cold runs
     the generator in-process (Spec.build, exactly what the scenario
     runner did before the store), warm opens a fresh store over a
     pre-warmed directory and fetches (disk artifact, mmap load — the
     memory tier is cold by construction). Rows cover every corpus
     family at the top of the committed grid (n = 960, where the
     acceptance bar is warm >= 10x cold) plus the girth-6 sinkless
     structure at n = 96000, the 10^5-node scale the store unlocks.

   - envelope — the threshold dichotomy on the deep grid (to n = 9600):
     round-count growth fits per (family, engine) for the sinkless and
     ring pairs. The paper's separation shows as the below-threshold
     witnesses fitting O(1) while their at-threshold twins grow. *)

module ASpec = Lll_store.Spec
module AStore = Lll_store.Store
module SRun = Lll_scenario.Run
module SCorpus = Lll_scenario.Corpus

let write_store_report path =
  let dir = Filename.temp_file "lll_bench_store" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let top = 960 in
      let rows =
        List.map (fun (f : SCorpus.family) -> (f.SCorpus.name, f.SCorpus.spec ~seed:1 top))
          SCorpus.all
        @ [
            ( "sinkless-at-96000",
              ASpec.Sinkless { n = 96_000; seed = 1; degree = 3; girth = 6; relaxed = false }
            );
          ]
      in
      let acq_rows =
        List.map
          (fun (label, spec) ->
            let n = ASpec.size spec in
            (* warm the artifact once (not timed) ... *)
            ignore (AStore.materialize (AStore.create ~dir ()) spec : string);
            let warmup = n < 50_000 in
            (* ... cold: the generator, in-process, as the pre-store
               scenario runner ran it *)
            let t_cold =
              time_secs_per_op ~warmup (fun () ->
                  ignore (ASpec.build spec : Lll_core.Instance.t))
            in
            (* ... warm: fresh store over the warmed directory, so every
               rep is a disk-artifact mmap load, never a memory hit *)
            let t_warm =
              time_secs_per_op ~warmup (fun () ->
                  let st = AStore.create ~dir () in
                  let _, src = AStore.fetch st spec in
                  assert (src = `Disk))
            in
            (label, n, t_cold, t_warm))
          rows
      in
      (* deep-grid envelope fits through the same warm store *)
      let deep_families =
        List.filter
          (fun (f : SCorpus.family) ->
            List.mem f.SCorpus.name
              [ "sinkless-at"; "sinkless-below"; "ring-at"; "ring-below" ])
          SCorpus.all
      in
      let store = AStore.create ~dir () in
      let ms =
        SRun.measure ~grid:SCorpus.deep_grid ~seeds:[ 1 ] ~families:deep_families ~store ()
      in
      let fits = SRun.fit_growth ms in
      let buf = Buffer.create 2048 in
      Buffer.add_string buf "{\n  \"bench\": \"pr10-artifact-store\",\n";
      Buffer.add_string buf
        "  \"note\": \"acquisition = seconds per instance, cold in-process generation \
         (Spec.build) vs warm store fetch (fresh store over a pre-warmed directory: disk \
         artifact, mmap load, cold memory tier), fastest rep after Gc.compact; rows are \
         every corpus family at the committed grid top n=960 (acceptance: warm >= 10x \
         cold) plus girth-6 sinkless at n=96000; envelope = round-count growth fits on \
         the deep grid (to n=9600) for the sinkless/ring threshold pairs, acquired \
         through the same store\",\n";
      Buffer.add_string buf "  \"acquisition\": [\n";
      let acq_entries =
        List.map
          (fun (label, n, t_cold, t_warm) ->
            Printf.sprintf
              "    {\"family\": \"%s\", \"n\": %d, \"cold_gen_sec\": %.6f, \
               \"warm_load_sec\": %.6f, \"warm_speedup\": %.2f}"
              label n t_cold t_warm (t_cold /. t_warm))
          acq_rows
      in
      Buffer.add_string buf (String.concat ",\n" acq_entries);
      Buffer.add_string buf "\n  ],\n  \"envelope\": [\n";
      let fit_entries =
        List.map
          (fun (f : SRun.fit) ->
            Printf.sprintf
              "    {\"family\": \"%s\", \"engine\": \"%s\", \"growth\": \"%s\", \
               \"coeff\": %.3f, \"residual\": %.3f}"
              f.SRun.f_family f.SRun.f_engine
              (SRun.growth_to_string f.SRun.f_growth)
              f.SRun.coeff f.SRun.residual)
          fits
      in
      Buffer.add_string buf (String.concat ",\n" fit_entries);
      Buffer.add_string buf "\n  ]\n}\n";
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
      List.iter
        (fun (label, n, t_cold, t_warm) ->
          Format.printf
            "store-%-22s n=%-7d cold %9.5f s   warm %9.5f s   %.1fx@." label n t_cold
            t_warm (t_cold /. t_warm))
        acq_rows;
      let bar_met =
        List.exists (fun (_, n, tc, tw) -> n = top && tc /. tw >= 10.) acq_rows
      in
      if not bar_met then
        Format.printf
          "store: WARNING — no n=%d row reached the 10x warm-acquisition bar@." top;
      let growth_of fam eng =
        List.find_map
          (fun (f : SRun.fit) ->
            if f.SRun.f_family = fam && f.SRun.f_engine = eng then
              Some (SRun.growth_to_string f.SRun.f_growth)
            else None)
          fits
      in
      List.iter
        (fun (fam_at, fam_below, eng) ->
          match (growth_of fam_at eng, growth_of fam_below eng) with
          | Some at, Some below ->
            Format.printf "envelope-%-18s %s: %s at threshold, %s below@." eng fam_at at
              below
          | _ -> ())
        [
          ("sinkless-at", "sinkless-below", "sinkless-orient");
          ("sinkless-at", "sinkless-below", "mt-par-rand");
          ("ring-at", "ring-below", "mt-par-rand");
        ];
      Format.printf "artifact-store report -> %s@." path)

(* --quick: run every registry case once through the shared
   post-condition; exit non-zero if a guaranteed engine fails. Wired
   into dune runtest (alias @bench-quick) so solver-registry
   regressions fail the suite. Also writes the enum/table backend
   report (see above). *)
let quick ~bench_out ~mt_bench_out ~csr_bench_out ~flat_bench_out ~serve_bench_out
    ~serve9_bench_out ~store_bench_out () =
  let failures = ref 0 in
  List.iter
    (fun (name, s, inst) ->
      match Solver.solve s inst with
      | report ->
        let must = Solver.guarantees s inst in
        let bad = must && not report.Solver.ok in
        if bad then incr failures;
        Format.printf "%-22s ok=%-5b guaranteed=%-5b%s@." name report.Solver.ok must
          (if bad then "  <-- FAIL" else "")
      | exception e ->
        incr failures;
        Format.printf "%-22s raised %s  <-- FAIL@." name (Printexc.to_string e))
    solver_cases;
  if !failures > 0 then begin
    Format.printf "quick smoke: %d failure(s)@." !failures;
    exit 1
  end
  else Format.printf "quick smoke: all %d solver cases pass@." (List.length solver_cases);
  write_backend_report bench_out;
  write_mt_report mt_bench_out;
  write_csr_report csr_bench_out;
  write_flat_report flat_bench_out;
  write_serve_report serve_bench_out;
  write_serve9_report serve9_bench_out;
  write_store_report store_bench_out

let argv_value key =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = key then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  (match argv_value "--prob-backend" with
  | Some "enum" -> Space.set_backend Space.Enum
  | Some "table" -> Space.set_backend Space.Table
  | Some other ->
    Format.eprintf "unknown --prob-backend %S (enum|table)@." other;
    exit 2
  | None -> ());
  match argv_value "--codec-probe" with
  | Some path -> codec_probe path
  | None ->
  match argv_value "--codec-probe-load" with
  | Some path ->
    codec_probe_load (Option.value (argv_value "--load-mode") ~default:"read") path
  | None ->
  if Array.exists (( = ) "--quick") Sys.argv then
    quick
      ~bench_out:(Option.value (argv_value "--bench-out") ~default:"BENCH_pr3.json")
      ~mt_bench_out:(Option.value (argv_value "--mt-bench-out") ~default:"BENCH_pr4.json")
      ~csr_bench_out:(Option.value (argv_value "--csr-bench-out") ~default:"BENCH_pr5.json")
      ~flat_bench_out:(Option.value (argv_value "--flat-bench-out") ~default:"BENCH_pr7.json")
      ~serve_bench_out:
        (Option.value (argv_value "--serve-bench-out") ~default:"BENCH_pr8.json")
      ~serve9_bench_out:
        (Option.value (argv_value "--serve9-bench-out") ~default:"BENCH_pr9.json")
      ~store_bench_out:
        (Option.value (argv_value "--store-bench-out") ~default:"BENCH_pr10.json")
      ()
  else if Array.exists (( = ) "--store-report") Sys.argv then
    (* regenerate just the PR 10 artifact-store report *)
    write_store_report
      (Option.value (argv_value "--store-bench-out") ~default:"BENCH_pr10.json")
  else if Array.exists (( = ) "--serve-report") Sys.argv then
    (* regenerate just the PR 8 report without the rest of the smoke *)
    write_serve_report
      (Option.value (argv_value "--serve-bench-out") ~default:"BENCH_pr8.json")
  else if Array.exists (( = ) "--serve9-report") Sys.argv then
    (* regenerate just the PR 9 concurrent-serve report *)
    write_serve9_report
      (Option.value (argv_value "--serve9-bench-out") ~default:"BENCH_pr9.json")
  else begin
    let results = benchmark () in
    let rows =
      Hashtbl.fold
        (fun name ols acc ->
          let ns = match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan in
          (name, ns) :: acc)
        results []
    in
    let rows = List.sort compare rows in
    Format.printf "%-45s %15s@." "benchmark" "ns/run";
    Format.printf "%s@." (String.make 61 '-');
    List.iter (fun (name, ns) -> Format.printf "%-45s %15.1f@." name ns) rows
  end
