(* Quickstart: build an LLL instance by hand, check which criteria hold,
   pick an engine from the solver registry, and read the verified report
   (every run ends in the exact Verify.check post-condition).

   Run with: dune exec examples/quickstart.exe *)

module Rat = Lll_num.Rat
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Instance = Lll_core.Instance
module Criteria = Lll_core.Criteria
module Solver = Lll_core.Solver
module Verify = Lll_core.Verify

let () =
  (* Three friends pick a meeting slot (shared 4-valued variable) and each
     also flips a private coin. Friend i is unhappy (bad event i) iff the
     group picks slot i AND their coin lands on 1. Every bad event has
     probability 1/8; each event shares the slot variable with the other
     two (d = 2, r = 3), and 1/8 < 2^-2: strictly below the paper's sharp
     threshold, so the deterministic fixing process must succeed. *)
  let vars =
    [|
      Var.uniform ~id:0 ~name:"slot" 4;
      Var.uniform ~id:1 ~name:"coin-a" 2;
      Var.uniform ~id:2 ~name:"coin-b" 2;
      Var.uniform ~id:3 ~name:"coin-c" 2;
    |]
  in
  let unhappy i =
    Event.make ~id:i ~name:(Printf.sprintf "unhappy-%d" i) ~scope:[| 0; i + 1 |]
      (fun lookup -> lookup 0 = i && lookup (i + 1) = 1)
  in
  let instance = Instance.create (Space.create vars) [| unhappy 0; unhappy 1; unhappy 2 |] in

  Format.printf "== instance ==@.%a@.@." Instance.pp instance;
  let report = Criteria.evaluate instance in
  Format.printf "== criteria ==@.%a@." Criteria.pp_report report;
  Format.printf "recommended: %s@.@." (Criteria.best_algorithm report);

  Format.printf "engines accepting this instance: %s@.@."
    (String.concat ", " (List.map Solver.name (Solver.applicable_to instance)));

  let report = Solver.solve_by_name "fix3" instance in
  Format.printf "== deterministic fixing (Theorem 1.3, via the solver registry) ==@.";
  List.iter
    (fun (s : Solver.step) ->
      Format.printf "  fixed %s := %d  (S_rep violation %.2e)@."
        (Var.name (Space.var (Instance.space instance) s.Solver.var))
        s.Solver.value
        (Option.value ~default:nan s.Solver.srep_violation))
    report.Solver.outcome.Solver.trace;
  Format.printf "assignment: %a@." Lll_prob.Assignment.pp
    report.Solver.outcome.Solver.assignment;
  Format.printf "P* maintained: %b@." (report.Solver.outcome.Solver.pstar = Some true);
  Format.printf "all bad events avoided (exact check): %b@." report.Solver.verify.Verify.ok;
  Format.printf "@.%a@." Solver.pp_report report
