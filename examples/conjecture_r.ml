(* Conjecture 1.5, experimentally.

   The paper proves the sharp threshold for ranks 2 and 3 and conjectures
   it for every rank r; the missing piece is the geometry of representable
   r-tuples ("finding such an expression and using this knowledge to show
   that the associated function is convex is the only challenge in
   obtaining full generality").

   This example runs the natural generalisation of the rank-3 process on
   random rank-4 and rank-5 instances strictly below the threshold,
   deciding representability of the clique target tuples numerically.
   Every step's achieved slack is reported: a non-negative slack means
   the step kept property P*, exactly what the conjecture predicts.

   Run with: dune exec examples/conjecture_r.exe *)

module Rat = Lll_num.Rat
module I = Lll_core.Instance
module Criteria = Lll_core.Criteria
module Syn = Lll_core.Synthetic
module FR = Lll_core.Fix_rankr
module SR = Lll_core.Srep_r
module Verify = Lll_core.Verify

let () =
  Format.printf "=== representable r-tuples, numerically ===@.";
  List.iter
    (fun (r, targets) ->
      let sol = SR.solve ~targets () in
      Format.printf "r=%d targets [%s]: representable=%b (min slack %+.3f)@." r
        (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.2f") targets)))
        (sol.SR.min_slack >= -1e-7) sol.SR.min_slack)
    [
      (3, [| 0.25; 1.5; 0.1 |]); (* the paper's Figure 2 triple *)
      (4, [| 1.0; 1.0; 1.0; 1.0 |]);
      (4, [| 4.0; 4.0; 4.0; 4.0 |]); (* too greedy: infeasible *)
      (5, [| 1.2; 0.8; 1.1; 0.9; 1.0 |]);
    ];

  Format.printf "@.=== rank-4 and rank-5 fixing below the threshold ===@.";
  Format.printf "%-10s %-6s %-10s %-10s %-12s %s@." "rank" "d" "p*2^d" "solved" "min slack"
    "infeasible steps";
  List.iter
    (fun (rank, arity, n) ->
      let inst = Syn.random ~seed:7 ~n ~rank ~delta:2 ~arity () in
      let rep = Criteria.evaluate inst in
      let a, t = FR.solve inst in
      Format.printf "%-10d %-6d %-10s %-10b %-12.3f %d@." rank rep.Criteria.d
        (Rat.to_string (Criteria.threshold_ratio ~p:rep.Criteria.p ~d:rep.Criteria.d))
        (Verify.avoids_all inst a) (FR.min_slack t) (FR.infeasible_steps t))
    [ (3, 8, 18); (4, 16, 16); (5, 32, 20) ];
  Format.printf
    "@.Every run finding only representable values (slack >= 0, no infeasible steps) is@.";
  Format.printf "evidence for Conjecture 1.5 at that rank.@."
