(* Sinkless orientation: the problem that sits exactly AT the sharp
   threshold p = 2^-d.

   - The classic binary formulation has p * 2^d = 1: the criterion checker
     rejects it, matching the paper's lower bounds.
   - The ternary relaxation (edges may stay unoriented) has p = 3^-d:
     strictly below the threshold, so Corollary 1.2's distributed
     algorithm solves it in O(d + log* n)-style rounds.

   Run with: dune exec examples/sinkless_orientation.exe *)

module Gen = Lll_graph.Generators
module Graph = Lll_graph.Graph
module Criteria = Lll_core.Criteria
module Distributed = Lll_core.Distributed
module Moser_tardos = Lll_core.Moser_tardos
module Sinkless = Lll_apps.Sinkless

let () =
  let g = Gen.random_regular ~seed:2026 60 3 in
  Format.printf "graph: 3-regular, n=%d, m=%d@.@." (Graph.n g) (Graph.m g);

  (* at the threshold *)
  let at = Sinkless.instance g in
  Format.printf "== classic sinkless orientation (AT the threshold) ==@.";
  Format.printf "%a" Criteria.pp_report (Criteria.evaluate at);
  Format.printf "-> the deterministic theorems do not apply; randomized it goes:@.";
  let mt = Distributed.solve_moser_tardos ~seed:7 at in
  Format.printf "   parallel Moser-Tardos: solved=%b in %d resampling rounds@.@." mt.ok mt.rounds;

  (* strictly below *)
  let below = Sinkless.relaxed_instance g in
  Format.printf "== relaxed sinkless orientation (strictly BELOW) ==@.";
  Format.printf "%a" Criteria.pp_report (Criteria.evaluate below);
  let r = Distributed.solve_rank2 below in
  Format.printf "-> Corollary 1.2: solved=%b in %d LOCAL rounds@." r.ok r.rounds;
  Format.printf "   (edge coloring: %d rounds, %d color-class sweeps)@." r.coloring_rounds
    r.sweep_rounds;
  Format.printf "   orientation is sinkless: %b@."
    (Sinkless.is_sinkless g r.assignment);
  let unoriented =
    Array.fold_left
      (fun acc -> function Sinkless.Unoriented -> acc + 1 | _ -> acc)
      0
      (Sinkless.orientations g r.assignment)
  in
  Format.printf "   edges left unoriented by the relaxation: %d/%d@." unoriented (Graph.m g)
