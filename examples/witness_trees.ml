(* Inside the Moser-Tardos analysis: execution logs and witness trees.

   Runs sequential MT on an at-threshold instance, reconstructs the
   witness tree of the last resampling (the "explanation" the [MT10]
   proof charges it to), pretty-prints it, and shows the size histogram
   whose geometric decay is the convergence argument.

   Run with: dune exec examples/witness_trees.exe *)

module Syn = Lll_core.Synthetic
module MT = Lll_core.Moser_tardos
module W = Lll_core.Witness
module I = Lll_core.Instance
module V = Lll_core.Verify

let rec print_tree indent t =
  Format.printf "%s- event %d (depth %d)@." indent t.W.label t.W.depth;
  List.iter (print_tree (indent ^ "  ")) t.W.children

let () =
  let inst = Syn.ring ~position:Syn.At_threshold ~seed:3 ~n:48 ~arity:4 () in
  Format.printf "instance: %a (exactly AT the threshold, p*2^d = 1)@.@." I.pp inst;

  let a, stats, log = MT.solve_sequential_log ~seed:8 inst in
  Format.printf "sequential Moser-Tardos: solved=%b after %d resamplings@."
    (V.avoids_all inst a) stats.MT.resamplings;
  Format.printf "execution log (event ids): %s ...@.@."
    (String.concat " "
       (List.filteri (fun i _ -> i < 16) (List.map string_of_int (Array.to_list log))));

  if Array.length log > 0 then begin
    let t = Array.length log - 1 in
    Format.printf "witness tree of the LAST resampling (step %d):@." t;
    let tree = W.tree_of_log inst log t in
    print_tree "  " tree;
    Format.printf "size %d, height %d, well-formed: %b@.@." (W.size tree) (W.height tree)
      (W.well_formed inst tree);

    Format.printf "witness tree size histogram over the whole log:@.";
    Format.printf "  %-8s %s@." "size" "count";
    List.iter (fun (s, c) -> Format.printf "  %-8d %d@." s c) (W.size_histogram inst log);
    Format.printf
      "@.the geometric decay of these counts is exactly why Moser-Tardos terminates in@.";
    Format.printf "O(m) expected resamplings under its criterion.@."
  end
