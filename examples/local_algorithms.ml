(* A tour of the LOCAL-model substrate.

   Everything the distributed LLL drivers stand on, exercised directly:
   Cole-Vishkin 3-coloring of rings (the log* upper bound matching the
   paper's Omega(log* n) lower bound), Linial's coloring via polynomials
   over prime fields, Kuhn-Wattenhofer palette halving, distributed
   2-hop coloring, Luby's MIS, and radius-k information gathering.

   Run with: dune exec examples/local_algorithms.exe *)

module Gen = Lll_graph.Generators
module Graph = Lll_graph.Graph
module Col = Lll_graph.Coloring
module CV = Lll_graph.Cole_vishkin
module Net = Lll_local.Network
module RT = Lll_local.Runtime
module DC = Lll_local.Dist_coloring
module MIS = Lll_local.Mis

let () =
  Format.printf "=== Cole-Vishkin: 3-coloring rings in O(log* n) rounds ===@.";
  Format.printf "%-10s %s@." "n" "rounds";
  List.iter
    (fun n ->
      let _, rounds = CV.three_color_cycle n in
      Format.printf "%-10d %d@." n rounds)
    [ 10; 100; 1_000; 10_000; 100_000 ];
  Format.printf "(the log* growth: nearly constant over four orders of magnitude)@.";

  Format.printf "@.=== distributed (d+1)-coloring: Linial + Kuhn-Wattenhofer ===@.";
  Format.printf "%-22s %-8s %-8s %s@." "graph" "dmax" "colors" "rounds";
  List.iter
    (fun (g, name) ->
      let net = Net.create g in
      let colors, rounds = DC.color net in
      Format.printf "%-22s %-8d %-8d %d@." name (Graph.max_degree g)
        (Col.num_colors colors) rounds;
      assert (Col.is_proper g colors))
    [
      (Gen.cycle 512, "cycle 512");
      (Gen.random_regular ~seed:1 128 4, "random 4-regular 128");
      (Gen.grid 12 12, "grid 12x12");
      (Gen.torus 8 8, "torus 8x8");
    ];

  Format.printf "@.=== distributed 2-hop coloring (Corollary 1.4's subroutine) ===@.";
  let g = Gen.random_regular ~seed:2 96 3 in
  let colors, rounds = DC.two_hop_color (Net.create g) in
  Format.printf "random 3-regular 96: %d colors on the square, %d rounds, proper=%b@."
    (Col.num_colors colors) rounds
    (Col.is_proper (Graph.square g) colors);

  Format.printf "@.=== Luby's MIS ===@.";
  Format.printf "%-22s %-10s %-8s %s@." "graph" "MIS size" "rounds" "valid";
  List.iter
    (fun (g, name) ->
      let in_mis, rounds = MIS.luby ~seed:11 (Net.create g) in
      let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_mis in
      Format.printf "%-22s %-10d %-8d %b@." name size rounds (MIS.is_mis g in_mis))
    [
      (Gen.cycle 200, "cycle 200");
      (Gen.random_regular ~seed:3 100 5, "random 5-regular 100");
      (Gen.complete 12, "K12");
    ];

  Format.printf "@.=== radius-k gathering (the generic LOCAL primitive) ===@.";
  let g = Gen.grid 5 5 in
  let net = Net.create g in
  let balls, stats = RT.gather_balls net ~radius:2 ~value:(fun v -> v) in
  Format.printf "5x5 grid, radius 2: node 12 sees %d nodes in %d rounds@."
    (List.length balls.(12)) stats.RT.rounds
