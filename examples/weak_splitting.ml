(* The paper's relaxed weak splitting application: color the U-side of a
   bipartite graph with 16 colors so that every V-node sees at least two
   distinct colors among its U-neighbors (U-degree <= 3, so r <= 3).

   Run with: dune exec examples/weak_splitting.exe *)

module Gen = Lll_graph.Generators
module Criteria = Lll_core.Criteria
module Fix = Lll_core.Fix_rank3
module Distributed = Lll_core.Distributed
module Verify = Lll_core.Verify
module WS = Lll_apps.Weak_splitting

let () =
  let nv = 24 and nu = 24 in
  let adj = Gen.random_biregular_bipartite ~seed:4242 ~nv ~nu ~deg_u:3 ~deg_v:3 in
  Format.printf "bipartite: |V|=%d constraints, |U|=%d variables, degrees 3/3@.@." nv nu;

  let instance = WS.instance ~nv adj in
  Format.printf "== criteria (16 colors, see >= 2) ==@.%a@." Criteria.pp_report
    (Criteria.evaluate instance);

  let assignment, fixer = Fix.solve instance in
  Format.printf "== sequential fixing ==@.";
  Format.printf "all V-nodes see >= 2 colors: %b (P*: %b)@.@."
    (WS.is_valid ~nv adj assignment)
    (Fix.pstar_holds fixer);

  let r = Distributed.solve_rank3 instance in
  Format.printf "== distributed (Corollary 1.4) ==@.";
  Format.printf "solved=%b in %d LOCAL rounds@.@." r.ok r.rounds;

  let colors = WS.coloring r.assignment nu in
  Format.printf "U-side colors: %s@."
    (String.concat " " (Array.to_list (Array.map string_of_int colors)));

  (* a tighter palette also works as long as the criterion holds *)
  let params = { WS.colors = 8; min_seen = 2 } in
  let inst8 = WS.instance ~params ~nv adj in
  let rep = Criteria.evaluate inst8 in
  Format.printf "@.with 8 colors: p=%s, p*2^d=%s, below threshold: %b@."
    (Lll_num.Rat.to_string rep.p)
    (Lll_num.Rat.to_string (Criteria.threshold_ratio ~p:rep.p ~d:rep.d))
    (List.assoc Criteria.Exponential rep.satisfied);
  if List.assoc Criteria.Exponential rep.satisfied then begin
    let a, _ = Fix.solve inst8 in
    Format.printf "8-color solution valid: %b@." (WS.is_valid ~params ~nv adj a)
  end
