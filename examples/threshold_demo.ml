(* The sharp threshold, end to end.

   Sweep the bad-event probability of a fixed-structure instance across
   p = 2^-d and watch the phase transition the paper proves:

   - strictly below the threshold the deterministic fixing process
     succeeds for EVERY variable order (we try several adversarial ones);
   - exactly at the threshold the criterion fails, and an explicit
     adversarial run of the same "increase <= 2 per edge" discipline
     produces an occurring bad event (a sink, in sinkless-orientation
     terms).

   Run with: dune exec examples/threshold_demo.exe *)

module Rat = Lll_num.Rat
module Gen = Lll_graph.Generators
module I = Lll_core.Instance
module Criteria = Lll_core.Criteria
module Syn = Lll_core.Synthetic
module Solver = Lll_core.Solver
module V = Lll_core.Verify
module Sinkless = Lll_apps.Sinkless

(* every solve below goes through the registry's rank-2 engine *)
let fix2 = Solver.find_exn "fix2"

let solve_ordered ~order inst =
  Solver.solve ~params:{ Solver.default_params with order = Some order } fix2 inst

let shuffled ~seed m =
  let rng = Random.State.make [| seed |] in
  let o = Array.init m (fun i -> i) in
  Gen.shuffle rng o;
  o

let () =
  Format.printf "=== sweep: ring instances (d = 2) across the threshold ===@.";
  Format.printf "%-16s %-12s %-10s %s@." "position" "p*2^d" "criterion" "fixer success (20 orders)";
  List.iter
    (fun (position, label) ->
      let successes = ref 0 in
      let ratio = ref Rat.zero in
      for seed = 0 to 19 do
        let inst = Syn.ring ~position ~seed ~n:24 ~arity:4 () in
        let rep = Criteria.evaluate inst in
        ratio := Criteria.threshold_ratio ~p:rep.p ~d:rep.d;
        let order = shuffled ~seed:(seed * 31) (I.num_vars inst) in
        let report = solve_ordered ~order inst in
        if report.Solver.verify.V.ok then incr successes
      done;
      let inst0 = Syn.ring ~position ~seed:0 ~n:24 ~arity:4 () in
      let rep = Criteria.evaluate inst0 in
      Format.printf "%-16s %-12s %-10s %d/20@." label
        (Rat.to_string !ratio)
        (if List.assoc Criteria.Exponential rep.satisfied then "holds" else "FAILS")
        !successes)
    [ (Syn.Below_threshold, "below (15/16)"); (Syn.At_threshold, "at (16/16)") ];

  Format.printf "@.=== at the threshold the guarantee genuinely breaks ===@.";
  let g = Gen.grid 5 5 in
  let victim = 12 in
  let a = Sinkless.adversarial_path_assignment g ~victim in
  let inst = Sinkless.instance g in
  Format.printf
    "sinkless orientation on a 5x5 grid, adversary orients every edge toward node %d:@." victim;
  Format.printf "  node %d became a sink: %b@." victim
    (List.mem victim (V.occurring_events inst a));
  Format.printf
    "  (each adversarial step still respects the proof's 'Inc sum <= 2' discipline —@.";
  Format.printf "   the final bound p * 2^d = 1 is achieved and is not < 1, so a bad event@.";
  Format.printf "   occurs: the theorem's criterion p < 2^-d is tight.)@.";

  Format.printf "@.=== below the threshold, the same discipline always wins ===@.";
  let below = Sinkless.relaxed_instance g in
  let ok = ref true in
  for seed = 0 to 9 do
    let order = shuffled ~seed (I.num_vars below) in
    let report = solve_ordered ~order below in
    if
      not
        (report.Solver.ok
        && Sinkless.is_sinkless g report.Solver.outcome.Solver.assignment)
    then ok := false
  done;
  Format.printf "relaxed (ternary) sinkless orientation, 10 adversarial orders: all sinkless=%b@."
    !ok
