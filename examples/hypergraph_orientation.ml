(* The paper's rank-3 application: compute THREE orientations of a rank-3
   hypergraph such that every node is a non-sink in at least two of them.

   Each hyperedge carries one 27-valued variable (a head per orientation);
   a variable affects exactly the <= 3 nodes of its hyperedge, so r = 3
   and Theorem 1.3 / Corollary 1.4 apply once p < 2^-d — which the harness
   checks exactly.

   Run with: dune exec examples/hypergraph_orientation.exe *)

module Gen = Lll_graph.Generators
module H = Lll_graph.Hypergraph
module Criteria = Lll_core.Criteria
module Fix = Lll_core.Fix_rank3
module Distributed = Lll_core.Distributed
module Verify = Lll_core.Verify
module HO = Lll_apps.Hyper_orientation

let () =
  let h = Gen.random_regular_hypergraph ~seed:99 24 3 3 in
  Format.printf "hypergraph: rank %d, n=%d nodes, m=%d hyperedges, 3-regular@.@."
    (H.rank h) (H.n h) (H.m h);

  let instance = HO.instance h in
  Format.printf "== criteria ==@.%a@." Criteria.pp_report (Criteria.evaluate instance);

  let assignment, fixer = Fix.solve instance in
  Format.printf "== sequential fixing (Theorem 1.3) ==@.";
  Format.printf "all bad events avoided: %b@." (Verify.avoids_all instance assignment);
  Format.printf "P* maintained: %b, max S_rep violation: %.2e@." (Fix.pstar_holds fixer)
    (Fix.max_violation fixer);
  Format.printf "orientations valid (every node non-sink in >= 2): %b@.@."
    (HO.is_valid h assignment);

  let r = Distributed.solve_rank3 instance in
  Format.printf "== distributed (Corollary 1.4) ==@.";
  Format.printf "solved=%b in %d LOCAL rounds (2-hop coloring %d + %d sweeps of %d classes)@.@."
    r.ok r.rounds r.coloring_rounds r.sweep_rounds r.colors;

  Format.printf "== first few hyperedges: heads per orientation ==@.";
  let decoded = HO.decode h r.assignment in
  Array.iteri
    (fun he heads ->
      if he < 6 then begin
        let members = H.edge h he in
        Format.printf "  edge {%s} -> heads (%d, %d, %d)@."
          (String.concat "," (List.map string_of_int (Array.to_list members)))
          heads.(0) heads.(1) heads.(2)
      end)
    decoded
