#!/usr/bin/env bash
# @store-lint: the artifact store is the only acquisition path.
#
# Since PR 10 every layer turns a generation spec into a built instance
# through Lll_store (canonical spec codec -> content key -> memory /
# artifact / generate). The scenario runner and the solve service must
# not regenerate, decode containers, or digest spec strings themselves:
#   - no generator calls (the girth sampler, the configuration model,
#     the synthetic/application instance builders);
#   - no direct container loads (Serial.load_binary*, load_any,
#     of_binary_string, of_any_string);
#   - no home-grown content digests (Digest.*) — keys come from
#     Spec.key / Store.descr_key / Memcache.content_key.
# Anything matching below in lib/scenario or lib/serve is a regression
# against the single-acquisition-path invariant.
set -u

fail=0

ban() {
  local what="$1" pattern="$2"
  local hits
  hits=$(grep -rnE --include='*.ml' --include='*.mli' "$pattern" lib/scenario lib/serve || true)
  if [ -n "$hits" ]; then
    echo "store-lint: $what outside lib/store:" >&2
    echo "$hits" >&2
    fail=1
  fi
}

ban "generator call" 'random_regular_girth|Generators\.|Synthetic\.(ring|random)|Sinkless\.|Hyper_orientation\.|Weak_splitting\.'
ban "direct container load" 'load_binary|load_any|of_binary_string|of_any_string'
ban "spec-digest logic" 'Digest\.'

if [ "$fail" -eq 0 ]; then
  echo "store-lint: lib/scenario and lib/serve acquire instances only through lib/store"
fi
exit "$fail"
