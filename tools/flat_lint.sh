#!/usr/bin/env bash
# @flat-lint: keep boxed LOCAL-engine calls from creeping back into lib/.
#
# Since PR 7 every hot protocol runs on Runtime.run_flat (record-of-arrays
# states). The boxed API survives in exactly two forms, both confined:
#   - run_full_info       : the compatibility shim, defined in runtime.ml
#                           (and its mli) only;
#   - run_full_info_boxed : the retired engine, callable only from the
#                           allowlisted ablation baselines.
# Anything else is a regression.
set -u

fail=0

# Bare run_full_info (not the _flat / _boxed forms) outside the shim.
bare=$(grep -rnP --include='*.ml' --include='*.mli' 'run_full_info(?!_(flat|boxed))' lib \
  | grep -vE '^lib/local/runtime\.(ml|mli):' || true)
if [ -n "$bare" ]; then
  echo "flat-lint: boxed run_full_info outside the runtime shim:" >&2
  echo "$bare" >&2
  fail=1
fi

# The retired engine outside the allowlisted ablation callers.
allow='^lib/local/(runtime|mis|primitives)\.(ml|mli):|^lib/lll/dist_lll\.(ml|mli):'
boxed=$(grep -rn --include='*.ml' --include='*.mli' 'run_full_info_boxed' lib \
  | grep -vE "$allow" || true)
if [ -n "$boxed" ]; then
  echo "flat-lint: run_full_info_boxed outside the allowlisted ablations:" >&2
  echo "$boxed" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "flat-lint: lib/ clean (boxed engine confined to the shim and ablation allowlist)"
fi
exit "$fail"
