(** The unified solver engine: one interface, one registry, one trace
    pipeline across every LLL fixer and driver in the library.

    Each engine — the paper's deterministic fixing processes (rank 2,
    rank 3, the exact-arithmetic rank-3 variant, the experimental
    rank-r generalisation), the Moser–Tardos baselines, the
    conditional-expectations union-bound baseline, and the distributed
    drivers of Corollaries 1.2/1.4 (both schedule-accounting and
    genuinely message-passing) — is registered under a string key
    together with a {!caps} capability envelope. Consumers (the CLI,
    the experiment harness, the benchmarks, the examples and the tests)
    select engines with {!find}/{!all}/{!applicable_to} and run them
    with {!solve}, never touching engine-specific APIs.

    Every {!solve} ends in the one shared post-condition: the produced
    assignment goes through exact {!Verify.check}, and engines whose
    envelope claims property [P*] additionally run their [pstar_holds]
    check — a report is [ok] only if both pass.

    New engines (e.g. the arbitrary-rank generalisation of
    Brandt–Grunau–Rozhoň, or further LLL algorithms à la Davies)
    register themselves with {!register} and instantly appear in
    [lll_cli --list-solvers], the experiment sweep, the quick smoke
    bench and the differential test suite. See DESIGN.md §6. *)

module Rat = Lll_num.Rat
module Assignment = Lll_prob.Assignment
module Metrics = Lll_local.Metrics

(** {1 The uniform step trace} *)

type step = {
  var : int;  (** variable fixed by this step *)
  value : int;  (** value it was fixed to *)
  incs : (int * Rat.t) list;
      (** exact [(event, Inc(event, value))] ratios for the chosen
          value; [[]] for engines that do not track them *)
  srep_violation : float option;
      (** [S_rep] violation of the chosen scaled tuple, where the engine
          has one (rank-3 and rank-r fixers) *)
}

(** {1 Capability envelope} *)

type caps = {
  max_rank : int option;
      (** largest instance rank the engine accepts; [None] = any rank *)
  exact : bool;
      (** every correctness-relevant comparison is exact-rational (no
          float enters a decision) *)
  distributed : bool;
      (** round-accounted: reports LOCAL rounds; runtime-backed engines
          also honour [domains] and emit per-round metrics *)
  randomized : bool;  (** consumes {!params.seed} *)
  claims_pstar : bool;
      (** maintains property [P*] and checks it after the run; the
          shared post-condition then requires the check to pass *)
}

val pp_caps : Format.formatter -> caps -> unit
(** Compact envelope rendering, e.g. ["rank<=3 float sequential det P*"]. *)

(** {1 Run parameters} *)

type params = {
  seed : int;  (** randomized engines only *)
  order : int array option;
      (** variable order for the sequential fixers (identity if [None]);
          distributed engines derive their own schedule *)
  domains : int option;  (** LOCAL runtime domain count *)
  metrics : Metrics.sink;
      (** receives per-step records from sequential engines and
          per-round records from runtime-backed ones *)
  prob_backend : Lll_prob.Space.backend option;
      (** when [Some], set the global probability backend
          ({!Lll_prob.Space.set_backend}) before the engine starts:
          [Table] answers from compiled event tables, [Enum] forces the
          enumeration path. [None] leaves the current choice alone. Both
          are exact — solutions are identical; only the cost differs. *)
}

val default_params : params
(** [seed = 1], identity order, default domains, disabled metrics,
    backend left as-is. *)

(** {1 Outcomes and reports} *)

type outcome = {
  assignment : Assignment.t;
  trace : step list;  (** uniform step trace ([[]] if untraced) *)
  rounds : int option;  (** LOCAL rounds for round-accounted engines *)
  pstar : bool option;
      (** result of the engine's own [P*] check; [None] when the engine
          does not claim [P*] *)
  max_violation : float option;
      (** worst float-boundary violation over the run, for engines with
          a float potential; compare against {!Srep.default_eps} *)
  detail : (string * string) list;
      (** engine-specific diagnostics (resamplings, colors, fallbacks,
          final estimator, ...) as printable key/value pairs. Randomized
          engines whose resampling budget ran out report
          [("budget_exhausted", "true")] together with the work done —
          the run still flows through the shared post-condition and
          comes out [ok = false] rather than raising. *)
}

type report = {
  solver : string;
  outcome : outcome;
  verify : Verify.result;  (** exact verification of the assignment *)
  ok : bool;
      (** [verify.ok] and, where the engine claims [P*],
          [outcome.pstar = Some true] *)
}

val pp_report : Format.formatter -> report -> unit
(** One-line summary: name, ok, rounds, P*, violation, detail. *)

(** {1 Engines} *)

type t
(** A registered engine. *)

val name : t -> string
val doc : t -> string
val caps : t -> caps

val applicable : t -> Instance.t -> bool
(** Structural check: the instance's rank fits the engine's envelope. *)

val guarantees : t -> Instance.t -> bool
(** Whether the engine's success criterion holds for the instance
    (e.g. [p < 2^-d] for the fixers, [ep(d+1) < 1] for Moser–Tardos,
    [sum p_i < 1] for the union bound). When this returns [true] the
    engine's theorem promises an [ok] report; otherwise the run is
    best-effort. *)

(** {1 Incremental sessions}

    The step-level interface behind {!solve}. Sequential fixers advance
    one variable per {!step}; one-shot engines (Moser–Tardos, the
    distributed drivers) complete in a single {!step}. *)

type session

val create : ?params:params -> t -> Instance.t -> session
(** @raise Invalid_argument if the engine is not {!applicable}. *)

val step : session -> bool
(** Perform one unit of work; [false] once no work remains (the unit
    performed by the returning call included). *)

val finished : session -> bool

val assignment : session -> Assignment.t
(** Current (possibly partial) assignment. Forces one-shot engines. *)

val trace : session -> step list
(** Steps taken so far, oldest first. *)

val metrics : session -> Metrics.round_record list
(** Records accumulated in the session's sink so far. *)

val outcome : session -> outcome
(** Drives the session to completion if needed, then summarises it. *)

val solve : ?params:params -> t -> Instance.t -> report
(** Run to completion and apply the shared post-condition.
    @raise Invalid_argument if the engine is not {!applicable}. *)

val solve_by_name : ?params:params -> string -> Instance.t -> report
(** @raise Not_found on an unregistered name. *)

(** {1 The registry} *)

type impl = params -> Instance.t -> driver
(** An engine implementation: given parameters and an instance, start a
    run and expose it through a {!driver}. *)

and driver = {
  advance : unit -> bool;
      (** one unit of work; [false] once no work remains *)
  peek_assignment : unit -> Assignment.t;
  peek_trace : unit -> step list;
  finish : unit -> outcome;  (** drain remaining work and summarise *)
}

val register :
  name:string ->
  doc:string ->
  caps:caps ->
  ?guarantees:(Instance.t -> bool) ->
  impl ->
  t
(** Register an engine under [name]. [guarantees] defaults to the
    paper's exponential criterion [p < 2^-d].
    @raise Invalid_argument on a duplicate name. *)

val find : string -> t option
val find_exn : string -> t

val all : unit -> t list
(** Every registered engine, in registration order. *)

val names : unit -> string list

val applicable_to : Instance.t -> t list
(** The engines whose envelope fits the instance's rank. *)
