(** Representable r-tuples on clique potentials — the numeric geometry
    behind the experimental rank-r fixer ({!Fix_rankr}) exploring the
    paper's Conjecture 1.5.

    For [r = 3] this coincides with {!Srep} (validated in the tests);
    for [r >= 4] no closed form is known (the paper's open problem), so
    feasibility is decided by a concave max-min solver over the edge
    splits of [K_r]. *)

val clique_edges : int -> (int * int) array
(** The [r*(r-1)/2] edges of [K_r], pairs [(i, j)] with [i < j]. *)

type solution = {
  min_slack : float;
      (** [min_i (ln prod_i - ln t_i)]; [>= 0] iff the achieved potential
          dominates every target. *)
  psi : (int * int * float * float) array;
      (** Witness potential per clique edge: [(i, j, psi_e^i, psi_e^j)]
          with [psi_e^i + psi_e^j = 2]. *)
}

val solve : ?sweeps:int -> targets:float array -> unit -> solution
(** Maximise the minimum slack (coordinate balancing + polishing).
    Targets must be non-negative; a zero target makes its node
    unconstrained. *)

val representable : ?eps:float -> float array -> bool
(** [eps] defaults to {!Srep.default_eps}. *)

val margin : float array -> float
(** The achieved min slack. *)
