(** An active adversary against the fixers' order-obliviousness: hill
    climbing over variable orders to maximise the fixer's own certified
    bound. Below the threshold the bound provably stays below 1 — this
    module lets the experiments confirm it under attack, not just under
    random orders. *)

module Rat = Lll_num.Rat

val final_bound_rank2 : Instance.t -> int array -> Rat.t
(** Exact certificate of a rank-2 run under the given order:
    [max_v Pr[E_v] * prod phi_e^v]. *)

val peak_bound_rank2 : Instance.t -> int array -> Rat.t
(** The peak of the certificate over the whole run — the closest
    approach to 1; strictly below 1 for every order when [p < 2^-d]. *)

type attack = {
  order : int array;
  bound : Rat.t;  (** Largest peak certificate the search found. *)
  succeeded : bool;  (** The fixer still avoided all events under it. *)
}

val worst_order_rank2 : ?seed:int -> ?steps:int -> Instance.t -> attack
