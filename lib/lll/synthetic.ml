(* Synthetic LLL instance families parameterised by their position
   relative to the sharp threshold [p = 2^-d].

   Structure: a random [delta]-regular rank-[r] hypergraph provides the
   event/variable incidence (one event per node, one variable per
   hyperedge, arity [arity], uniform). Each event's bad set is a seeded
   random subset of the joint value tuples of its scope; its probability
   is exactly [|bad| / arity^delta], so we can place instances exactly
   below, at, or above the threshold by choosing the bad-set size.

   These are the workloads of experiments T1/T2 (success of the
   deterministic fixers strictly below the threshold under adversarial
   orders) and of the round-scaling experiments T3/T4. *)

module Rat = Lll_num.Rat
module Generators = Lll_graph.Generators
module Hypergraph = Lll_graph.Hypergraph
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space

type position = Below_threshold | At_threshold

(* All value tuples of [k] variables with the given arity, as lists. *)
let rec all_tuples ~arity k =
  if k = 0 then [ [] ]
  else
    List.concat_map
      (fun rest -> List.init arity (fun v -> v :: rest))
      (all_tuples ~arity (k - 1))

(* Dependency degree of node [v] in the hypergraph structure: the number
   of *other* nodes sharing a hyperedge with it. *)
let dep_degree h v =
  let nbrs = Hashtbl.create 8 in
  List.iter
    (fun he -> Array.iter (fun u -> if u <> v then Hashtbl.replace nbrs u ()) (Hypergraph.edge h he))
    (Hypergraph.incident h v);
  Hashtbl.length nbrs

(* Bad-set size for an event with [total] scope tuples so that
   [p = size/total] sits exactly at, or strictly below, [2^-d].
   Requires [total] divisible by [2^d] for a nonzero size. *)
let bad_size ~position ~total ~d =
  let at = total / (1 lsl d) in
  match position with
  | At_threshold -> at
  | Below_threshold -> max 0 (at - 1)

let instance_of_hypergraph ?(position = Below_threshold) ~seed ~arity h =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let nv = Hypergraph.m h in
  let vars = Array.init nv (fun i -> Var.uniform ~id:i ~name:(Printf.sprintf "x%d" i) arity) in
  (* use the global max dependency degree so p is uniform across events *)
  let d =
    let m = ref 0 in
    for v = 0 to Hypergraph.n h - 1 do
      m := max !m (dep_degree h v)
    done;
    !m
  in
  let events =
    Array.init (Hypergraph.n h) (fun v ->
        let scope = Array.of_list (Hypergraph.incident h v) in
        let k = Array.length scope in
        let total =
          let rec pow acc i = if i = 0 then acc else pow (acc * arity) (i - 1) in
          pow 1 k
        in
        let size = bad_size ~position ~total ~d in
        let tuples = Array.of_list (all_tuples ~arity k) in
        Generators.shuffle rng tuples;
        let bad = Array.to_list (Array.sub tuples 0 (min size (Array.length tuples))) in
        Event.of_bad_set ~id:v ~name:(Printf.sprintf "bad%d" v) ~scope bad)
  in
  Instance.create (Space.create vars) events

(* Random rank-[r], [delta]-regular instance on [n] events. The dependency
   degree is at most [delta * (r - 1)]; arity must satisfy
   [2^d | arity^delta] for the threshold placement to be exact, which we
   enforce by using a power of two. *)
let random ?(position = Below_threshold) ~seed ~n ~rank ~delta ~arity () =
  if arity land (arity - 1) <> 0 then invalid_arg "Synthetic.random: arity must be a power of 2";
  let h = Generators.random_regular_hypergraph ~seed n rank delta in
  instance_of_hypergraph ~position ~seed ~arity h

(* A ring-of-events instance: event [i] shares one variable with each of
   its two ring neighbors (rank 2, d = 2). Useful for clean round-scaling
   experiments at fixed [d]. *)
let ring ?(position = Below_threshold) ~seed ~n ~arity () =
  if arity land (arity - 1) <> 0 then invalid_arg "Synthetic.ring: arity must be a power of 2";
  if n < 3 then invalid_arg "Synthetic.ring: n >= 3";
  let h = Hypergraph.create ~n (List.init n (fun i -> [ i; (i + 1) mod n ])) in
  instance_of_hypergraph ~position ~seed ~arity h
