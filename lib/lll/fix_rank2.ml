(* The sequential deterministic fixing process of Theorem 1.1 (and its
   weighted generalisation from Section 3.1), for instances where every
   variable affects at most two events.

   All bookkeeping is exact: probabilities, [Inc] ratios and the potential
   [phi] on edge-endpoints are rationals. The process fixes variables in
   an arbitrary (adversary-chosen) order; for each variable on a
   dependency edge [e = {u, v}] it picks a value [y] minimising

     Inc(u, y) * phi_e^u + Inc(v, y) * phi_e^v ,

   which by linearity of expectation is at most [phi_e^u + phi_e^v <= 2]
   for some value. After all variables are fixed, every bad event has
   conditional probability at most [p * 2^d < 1], hence 0. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Space = Lll_prob.Space
module Event = Lll_prob.Event
module Assignment = Lll_prob.Assignment
module Metrics = Lll_local.Metrics
module Par = Lll_local.Par

type step = {
  var : int;
  value : int;
  incs : (int * Rat.t) list; (* (event id, Inc) for the chosen value *)
  score : Rat.t; (* weighted inc sum for the chosen value *)
  budget : Rat.t; (* phi_e^u + phi_e^v before the step (the score bound) *)
}

(* Value-selection policy. [Min_score] picks the value minimising the
   phi-weighted Inc sum; [First_within_budget] picks the smallest value
   whose score is within the budget (the proof of Theorem 1.1 only needs
   existence, so any within-budget choice is sound). Exposed for the
   ablation benchmarks. *)
type policy = Min_score | First_within_budget

type t = {
  policy : policy;
  instance : Instance.t;
  tracker : Space.Cond_tracker.tracker; (* assignment + exact Pr[E_v | assignment] *)
  phi : Rat.t array array; (* edge id -> [| side of min endpoint; side of max |] *)
  initial_probs : Rat.t array;
  mutable steps : step list;
}

let create ?(policy = Min_score) instance =
  if Instance.rank instance > 2 then invalid_arg "Fix_rank2.create: instance has rank > 2";
  let g = Instance.dep_graph instance in
  let initial_probs = Instance.initial_probs instance in
  {
    policy;
    instance;
    tracker = Space.Cond_tracker.create (Instance.space instance) (Instance.events instance);
    phi = Array.init (Graph.m g) (fun _ -> [| Rat.one; Rat.one |]);
    initial_probs;
    steps = [];
  }

let assignment t = Space.Cond_tracker.assignment t.tracker
let steps t = List.rev t.steps
let instance t = t.instance

let side g e v =
  let u, _ = Graph.endpoints g e in
  if v = u then 0 else 1

let phi t e v = t.phi.(e).(side (Instance.dep_graph t.instance) e v)
let set_phi t e v x = t.phi.(e).(side (Instance.dep_graph t.instance) e v) <- x

(* The Inc ratios of event [ev] for the candidate values of [var],
   against the tracker's incrementally maintained current probability.
   One pass over the event's live table rows (see
   Space.Cond_tracker.prob_vector). *)
let inc_vector t ev ~var =
  let after, before = Space.Cond_tracker.prob_vector t.tracker ev ~var in
  Array.map (fun a -> if Rat.is_zero before then Rat.zero else Rat.div a before) after

let record t step = t.steps <- step :: t.steps

(* Fix one (currently unfixed) variable. The chosen value minimises the
   phi-weighted sum of Inc ratios over the (at most two) affected
   events. The [_quiet] form does all the work without touching the
   shared step log, so [fix_class] can fan members of one color class
   out across domains (their tracker/phi state is disjoint — DESIGN.md
   §11). *)
let fix_var_quiet t vid =
  if Assignment.is_fixed (assignment t) vid then invalid_arg "Fix_rank2.fix_var: already fixed";
  let space = Instance.space t.instance in
  let arity = Lll_prob.Var.arity (Space.var space vid) in
  let evs = Instance.events_of_var t.instance vid in
  let g = Instance.dep_graph t.instance in
  match Array.to_list evs with
  | [] ->
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:0;
    { var = vid; value = 0; incs = []; score = Rat.zero; budget = Rat.zero }
  | [ u ] ->
    (* rank 1: some value has Inc <= 1 *)
    let incs_u = inc_vector t u ~var:vid in
    let pick_min () =
      let best = ref None in
      for y = 0 to arity - 1 do
        let i = incs_u.(y) in
        match !best with
        | Some (_, i') when Rat.leq i' i -> ()
        | _ -> best := Some (y, i)
      done;
      Option.get !best
    in
    let y, i =
      match t.policy with
      | Min_score -> pick_min ()
      | First_within_budget ->
        let rec first y = if Rat.leq incs_u.(y) Rat.one then (y, incs_u.(y)) else first (y + 1) in
        first 0
    in
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
    { var = vid; value = y; incs = [ (u, i) ]; score = i; budget = Rat.one }
  | [ u; v ] ->
    let e = Graph.find_edge_exn g u v in
    let s = phi t e u and w = phi t e v in
    let incs_u = inc_vector t u ~var:vid in
    let incs_v = inc_vector t v ~var:vid in
    let score_of y = Rat.add (Rat.mul incs_u.(y) s) (Rat.mul incs_v.(y) w) in
    let pick_min () =
      let best = ref None in
      for y = 0 to arity - 1 do
        let score = score_of y in
        match !best with
        | Some (_, score') when Rat.leq score' score -> ()
        | _ -> best := Some (y, score)
      done;
      Option.get !best
    in
    let y, score =
      match t.policy with
      | Min_score -> pick_min ()
      | First_within_budget ->
        let budget = Rat.add s w in
        let rec first y =
          if Rat.leq (score_of y) budget then (y, score_of y) else first (y + 1)
        in
        first 0
    in
    let iu = incs_u.(y) and iv = incs_v.(y) in
    let budget = Rat.add s w in
    (* Theorem 1.1 / Section 3.1 (weighted form): the minimum is within
       budget. This is a mathematical invariant, not an input check. *)
    assert (Rat.leq score budget);
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
    set_phi t e u (Rat.mul iu s);
    set_phi t e v (Rat.mul iv w);
    { var = vid; value = y; incs = [ (u, iu); (v, iv) ]; score; budget }
  | _ -> assert false

let fix_var t vid = record t (fix_var_quiet t vid)

(* One color class's duty lists, fanned out across [domains]; steps are
   merged into the shared log in member order, so the trace matches the
   sequential loop exactly. See Fix_rank3.fix_class. *)
let fix_class ?domains t (duties : int list array) =
  let k = Array.length duties in
  if k > 0 then begin
    let buf = Array.make k [] in
    Par.parallel_for ?domains ~n:k (fun i ->
        buf.(i) <- List.map (fun vid -> fix_var_quiet t vid) duties.(i));
    Array.iter (fun steps -> List.iter (fun s -> record t s) steps) buf
  end

(* Property P* specialised to rank 2 (exact): every edge's phi values sum
   to at most 2, and every event's conditional probability is bounded by
   its initial probability times the product of its phi values. *)
let pstar_holds t =
  let g = Instance.dep_graph t.instance in
  let edges_ok =
    Array.for_all (fun pair -> Rat.leq (Rat.add pair.(0) pair.(1)) Rat.two) t.phi
  in
  edges_ok
  && Array.for_all
       (fun e ->
         let v = Event.id e in
         let bound =
           List.fold_left
             (fun acc eid -> Rat.mul acc (phi t eid v))
             t.initial_probs.(v)
             (Graph.incident_edges g v)
         in
         Rat.leq (Space.prob (Instance.space t.instance) e ~fixed:(assignment t)) bound)
       (Instance.events t.instance)

let run ?policy ?order ?(metrics = Metrics.disabled) instance =
  let t = create ?policy instance in
  let m = Instance.num_vars instance in
  let order = match order with Some o -> o | None -> Array.init m (fun i -> i) in
  if Metrics.enabled metrics then begin
    Metrics.set_phase metrics "fix-rank2";
    Array.iteri
      (fun i vid ->
        let t0 = Metrics.now_ns () in
        fix_var t vid;
        Metrics.record_step metrics ~round:i ~total:m ~wall_ns:(Metrics.now_ns () - t0)
          ~state:(assignment t))
      order
  end
  else Array.iter (fun vid -> fix_var t vid) order;
  t

let solve ?policy ?order ?metrics instance =
  let t = run ?policy ?order ?metrics instance in
  (assignment t, t)
