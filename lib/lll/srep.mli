(** Representable triples (Definition 3.3), the boundary surface [f] of
    Lemma 3.5, and the constructive decomposition used by the rank-3
    fixer. *)

module Rat = Lll_num.Rat

val f : float -> float -> float
(** [f a b = 4 + (ab - 2a - 2b - sqrt(ab(4-a)(4-b)))/2] for
    [a, b >= 0], [a + b <= 4] (Lemma 3.5). *)

val violation : float * float * float -> float
(** Non-positive iff the triple lies in [S_rep] (up to rounding); the
    rank-3 fixer picks the value minimising this. *)

val default_eps : float
(** The single float tolerance ([1e-6]) used by every default boundary
    test at the float layer: {!mem}, {!is_valid_decomposition},
    [Fix_rank3.pstar_holds], [Fix_rankr.pstar_holds] and
    [Srep_r.representable]. It absorbs the rounding the float [phi]
    potential accumulates over a run. No *correctness* decision depends
    on it: exact paths use {!mem_rat} and [Verify]. Pass [?eps] to
    tighten or loosen an individual test. *)

val mem : ?eps:float -> float * float * float -> bool

val mem_rat : Rat.t * Rat.t * Rat.t -> bool
(** Exact membership: [c <= f(a,b)] rewritten square-root-free as
    [s >= 0 && s^2 >= ab(4-a)(4-b)] with [s = 8 + ab - 2a - 2b - 2c]. *)

type decomposition = { a1 : float; a2 : float; b1 : float; b3 : float; c2 : float; c3 : float }
(** Witness values of Definition 3.3: [a = a1*a2], [b = b1*b3],
    [c = c2*c3], with [a1+b1 <= 2], [a2+c2 <= 2], [b3+c3 <= 2]. *)

val products : decomposition -> float * float * float
val is_valid_decomposition : ?eps:float -> decomposition -> bool

val decompose : float * float * float -> decomposition
(** Constructive proof of Lemma 3.5: decompose a triple of [S_rep]
    (small positive float violations are clamped). *)

val c_of_x : a:float -> b:float -> float -> float
(** [(2 - a/x)(2 - b/(2-x))]: the largest [c] representable with
    [a1 = x]. *)

val best_x : a:float -> b:float -> float
(** Maximiser of {!c_of_x} on [[a/2, 2-b/2]] (ternary search). *)

val hessian : float -> float -> float * float * float
(** [(f_aa, f_ab, f_bb)] from the appendix's closed forms; open domain
    [a, b > 0], [a + b < 4]. *)

val hessian_determinant : float -> float -> float

val surface_grid : steps:int -> (float * float * float) list
(** Samples of the Figure 1 surface over the triangle [a + b <= 4]. *)

val random_representable : Random.State.t -> float * float * float
(** A uniformly-sampled witness decomposition's products — guaranteed
    representable. *)

val random_near_boundary : ?eps:float -> Random.State.t -> float * float * float
(** A triple [(a, b, c)] with [c = f(a,b) * (1 ± eps)] for uniform
    [(a, b)] in the triangle [a + b <= 4] — inputs hugging the incurved
    surface, where {!mem} and {!decompose} have the least float headroom
    (the fuzzer's geometry oracle feeds on these). *)
