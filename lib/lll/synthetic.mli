(** Synthetic LLL instance families placed exactly below or at the sharp
    threshold [p = 2^-d] (workloads for experiments T1–T4). *)

module Hypergraph = Lll_graph.Hypergraph

type position = Below_threshold | At_threshold

val random :
  ?position:position ->
  seed:int ->
  n:int ->
  rank:int ->
  delta:int ->
  arity:int ->
  unit ->
  Instance.t
(** [n] events on a random [delta]-regular rank-[rank] hypergraph
    structure; uniform variables of the given power-of-two arity; each
    event's bad set is random of exact probability [2^-d] ([At_threshold])
    or the largest value strictly below ([Below_threshold]), where [d] is
    the instance's maximum dependency degree. *)

val ring : ?position:position -> seed:int -> n:int -> arity:int -> unit -> Instance.t
(** Rank-2 ring: event [i] shares a variable with events [i±1]; [d = 2].
    Clean family for round-scaling experiments at fixed [d]. *)

val instance_of_hypergraph :
  ?position:position -> seed:int -> arity:int -> Hypergraph.t -> Instance.t
(** Build the synthetic instance on an explicit hypergraph structure. *)

val all_tuples : arity:int -> int -> int list list
val dep_degree : Hypergraph.t -> int -> int
