(** Exact, float-free verification that an assignment avoids all bad
    events. *)

module Assignment = Lll_prob.Assignment

val avoids_all : Instance.t -> Assignment.t -> bool
(** @raise Invalid_argument if the assignment is incomplete. *)

val occurring_events : Instance.t -> Assignment.t -> int list
val first_violated : Instance.t -> Assignment.t -> int option

type result = { ok : bool; violated : int list }

val check : Instance.t -> Assignment.t -> result
