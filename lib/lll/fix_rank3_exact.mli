(** An exact-arithmetic variant of the rank-3 fixing process: rational
    potential, square-root-free membership tests, and dyadic-rational
    decompositions — property P* holds with NO epsilon. Falls back to the
    float path (counted) only if a step's best triple sits exactly on the
    S_rep boundary, which requires the irrational split of Lemma 3.5. *)

module Rat = Lll_num.Rat
module Assignment = Lll_prob.Assignment

type t

val create : Instance.t -> t
(** @raise Invalid_argument if the instance has rank [> 3]. *)

val fix_var : t -> int -> unit
val run : ?order:int array -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> t
val solve :
  ?order:int array -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> Assignment.t * t
val assignment : t -> Assignment.t
val instance : t -> Instance.t

val phi : t -> int -> int -> Rat.t

val fallbacks : t -> int
(** Steps that required the float fallback (0 on all test families). *)

val pstar_holds_exact : t -> bool
(** Property P* checked exactly: edge sums [<= 2] and probability bounds
    as rational comparisons, no tolerance. *)
