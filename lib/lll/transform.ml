(* Instance transformations.

   The paper's footnote 3: "In principle, the number of variables could
   be larger. However, it is straightforward to reformulate the instance
   in a way that combines variables affecting the same r events." This
   module implements exactly that reformulation: all variables whose sets
   of dependent events coincide are merged into one product variable
   (mixed-radix encoding, probabilities multiplied — legitimate since the
   originals are independent). Merging never changes any event's
   distribution, the dependency graph, or [d]; it can only reduce the
   variable count, and it makes the "one variable per hyperedge"
   normal form of Sections 2-3 available for arbitrary inputs.

   [decode] maps an assignment of the merged instance back to the
   original variables (tested to preserve event outcomes exactly). *)

module Rat = Lll_num.Rat
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment

type merged = {
  instance : Instance.t;
  groups : int array array; (* new var id -> original var ids (sorted) *)
  group_of : int array; (* original var id -> new var id *)
  arities : int array array; (* new var id -> original arities, group order *)
}

let max_merged_arity = 1 lsl 20

let merge_shared_variables original =
  let n_orig = Instance.num_vars original in
  let space = Instance.space original in
  (* group variables by their (sorted) event sets *)
  let tbl = Hashtbl.create n_orig in
  for vid = 0 to n_orig - 1 do
    let key = Array.to_list (Instance.events_of_var original vid) in
    Hashtbl.replace tbl key (vid :: (try Hashtbl.find tbl key with Not_found -> []))
  done;
  let groups =
    Hashtbl.fold (fun _ vids acc -> Array.of_list (List.rev vids) :: acc) tbl []
    |> List.sort compare |> Array.of_list
  in
  let group_of = Array.make n_orig (-1) in
  Array.iteri (fun gid vids -> Array.iter (fun v -> group_of.(v) <- gid) vids) groups;
  (* mixed-radix encoding of each group *)
  let arities = Array.map (fun vids -> Array.map (fun v -> Var.arity (Space.var space v)) vids) groups in
  let group_arity gid = Array.fold_left ( * ) 1 arities.(gid) in
  Array.iteri
    (fun gid _ ->
      if group_arity gid > max_merged_arity then
        invalid_arg "Transform.merge_shared_variables: merged arity too large")
    groups;
  (* decode a merged value into the group's original values *)
  let decode_value gid value =
    let vids = groups.(gid) in
    let ars = arities.(gid) in
    let out = Array.make (Array.length vids) 0 in
    let v = ref value in
    Array.iteri
      (fun i _ ->
        out.(i) <- !v mod ars.(i);
        v := !v / ars.(i))
      vids;
    out
  in
  let vars =
    Array.mapi
      (fun gid vids ->
        let k = group_arity gid in
        let probs =
          Array.init k (fun value ->
              let vals = decode_value gid value in
              let p = ref Rat.one in
              Array.iteri
                (fun i _ -> p := Rat.mul !p (Var.prob (Space.var space vids.(i)) vals.(i)))
                vids;
              !p)
        in
        let name = String.concat "+" (Array.to_list (Array.map (fun v -> Var.name (Space.var space v)) vids)) in
        Var.make ~id:gid ~name probs)
      groups
  in
  (* events: same predicates, scopes renamed to group ids, lookups decoded *)
  let events =
    Array.map
      (fun e ->
        let scope_orig = Event.scope e in
        let scope = Array.of_list (List.sort_uniq compare (Array.to_list (Array.map (fun v -> group_of.(v)) scope_orig))) in
        Event.make ~id:(Event.id e) ~name:(Event.name e) ~scope (fun lookup ->
            Event.pred_holds e (fun orig_vid ->
                let gid = group_of.(orig_vid) in
                let vals = decode_value gid (lookup gid) in
                (* position of orig_vid within its group *)
                let rec pos i = if groups.(gid).(i) = orig_vid then i else pos (i + 1) in
                vals.(pos 0))))
      (Instance.events original)
  in
  let instance = Instance.create (Space.create vars) events in
  { instance; groups; group_of; arities }

(* Translate a merged assignment back to the original variables
   (mixed-radix decoding, least significant = first group member). *)
let decode merged (a : Assignment.t) =
  let n_orig = Array.length merged.group_of in
  let out = Assignment.empty n_orig in
  Array.iteri
    (fun gid vids ->
      match Assignment.get a gid with
      | None -> ()
      | Some value ->
        let v = ref value in
        Array.iteri
          (fun i orig ->
            Assignment.set_inplace out orig (!v mod merged.arities.(gid).(i));
            v := !v / merged.arities.(gid).(i))
          vids)
    merged.groups;
  out
