(* Derandomization by conditional expectations under the UNION-BOUND
   criterion — the baseline the paper's introduction contrasts the LLL
   against.

   If the bad events satisfy the global condition [sum_i Pr[E_i] < 1],
   the method of conditional expectations fixes the variables one at a
   time, each time choosing a value that does not increase the estimator
   [Phi(theta) = sum_i Pr[E_i | theta]] (such a value exists since the
   expectation of [Phi] over a variable's values equals the current
   [Phi]). When everything is fixed, [Phi < 1] forces every summand —
   now 0 or 1 — to be 0.

   Unlike the paper's fixers this is inherently GLOBAL: the criterion
   degrades with [n], and fixing one variable requires comparing sums
   over all events it affects against a global budget. It exists here as
   the classic contrast: union bound = global, LLL = local. The
   estimator is exact (rationals). *)

module Rat = Lll_num.Rat
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Metrics = Lll_local.Metrics

let criterion_holds instance =
  Rat.lt (Rat.sum (Array.to_list (Instance.initial_probs instance))) Rat.one

(* Fix all variables; returns the assignment and the final estimator.
   Succeeds (all events avoided) whenever the union-bound criterion
   holds; with it violated the result may contain occurring events —
   callers must verify. *)
let solve ?order ?(metrics = Metrics.disabled) instance =
  let space = Instance.space instance in
  let m = Instance.num_vars instance in
  let order = match order with Some o -> o | None -> Array.init m (fun i -> i) in
  (* incrementally maintained Pr[E_i | theta], exact *)
  let tracker = Space.Cond_tracker.create space (Instance.events instance) in
  let assignment = Space.Cond_tracker.assignment tracker in
  if Metrics.enabled metrics then Metrics.set_phase metrics "cond-exp";
  Array.iteri
    (fun step_i vid ->
      let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
      let evs = Instance.events_of_var instance vid in
      let arity = Lll_prob.Var.arity (Space.var space vid) in
      if Array.length evs = 0 then Space.Cond_tracker.fix tracker ~var:vid ~value:0
      else begin
        let vectors =
          Array.map (fun ev -> fst (Space.Cond_tracker.prob_vector tracker ev ~var:vid)) evs
        in
        (* choose the value minimising the local contribution to Phi *)
        let contribution y =
          Rat.sum (Array.to_list (Array.map (fun after -> after.(y)) vectors))
        in
        let best = ref None in
        for y = 0 to arity - 1 do
          let c = contribution y in
          match !best with
          | Some (_, c') when Rat.leq c' c -> ()
          | _ -> best := Some (y, c)
        done;
        let y, _ = Option.get !best in
        Space.Cond_tracker.fix tracker ~var:vid ~value:y
      end;
      if Metrics.enabled metrics then
        Metrics.record_step metrics ~round:step_i ~total:m ~wall_ns:(Metrics.now_ns () - t0)
          ~state:assignment)
    order;
  let phi =
    Rat.sum
      (List.init (Instance.num_events instance) (fun ev -> Space.Cond_tracker.prob tracker ev))
  in
  (assignment, phi)
