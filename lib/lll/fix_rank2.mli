(** Theorem 1.1: deterministic sequential fixing for instances in which
    every variable affects at most two events, under [p < 2^-d].

    Exact rational bookkeeping throughout; the variable order is
    arbitrary (adversary-chosen). *)

module Rat = Lll_num.Rat
module Assignment = Lll_prob.Assignment

type step = {
  var : int;
  value : int;
  incs : (int * Rat.t) list;  (** [(event, Inc(event, value))] for the chosen value. *)
  score : Rat.t;  (** The phi-weighted Inc sum of the chosen value. *)
  budget : Rat.t;  (** The bound the score provably respects. *)
}

type t

type policy = Min_score | First_within_budget
(** Value selection: the minimiser of the weighted Inc sum, or the first
    value within the proof's budget (both sound; see the ablation
    benchmarks). Default [Min_score]. *)

val create : ?policy:policy -> Instance.t -> t
(** @raise Invalid_argument if the instance has rank [> 2]. *)

val fix_var : t -> int -> unit
(** Deterministically fix one unfixed variable (Theorem 1.1 step). *)

val fix_var_quiet : t -> int -> step
(** {!fix_var} without appending to the shared step log — the unit of
    work {!fix_class} fans out across domains. *)

val fix_class : ?domains:int -> t -> int list array -> unit
(** Fix each member's duty list, members fanned out across [domains].
    Sound only for members forming one color class of the relevant
    conflict graph (disjoint tracker/phi state — DESIGN.md §11); the
    step log ends up in member order, bit-identical to the sequential
    loop. *)

val run :
  ?policy:policy -> ?order:int array -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> t
(** Fix all variables in the given order (identity by default). With a
    [metrics] sink, records one per-step record (phase ["fix-rank2"]) in
    the same shape as the LOCAL runtime's per-round records. *)

val solve :
  ?policy:policy ->
  ?order:int array ->
  ?metrics:Lll_local.Metrics.sink ->
  Instance.t ->
  Assignment.t * t

val assignment : t -> Assignment.t
val steps : t -> step list
val instance : t -> Instance.t

val phi : t -> int -> int -> Rat.t
(** [phi t e v]: the potential on edge [e] at endpoint [v]. *)

val pstar_holds : t -> bool
(** Exact check of property [P*] (rank-2 form): edge sums at most 2 and
    every event's conditional probability bounded by its initial
    probability times its phi product. *)
