(* Textual serialization of LLL instances.

   Events are closures, so a generic dump enumerates each event's truth
   table over its scope (exact: the table IS the event). This is intended
   for the bounded scopes of LLL instances (the format guards against
   accidentally exploding tables). Distributions are written as exact
   rationals ("n" or "n/d").

   Format (line oriented, '#' comments and blank lines allowed):

     lll-instance v1
     vars <count>
     var <id> <name> <arity> <p_0> <p_1> ... <p_{arity-1}>
     events <count>
     event <id> <name> <scope size> <v_1> ... <v_k> <bad count>
     bad <x_1> ... <x_k>          (one line per bad tuple, scope order)

   Round trips exactly: probabilities, scopes and bad sets are preserved
   verbatim (tested). *)

module Rat = Lll_num.Rat
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space

let max_table = 1 lsl 20

exception Parse_error of { line : int; message : string }

let parse_fail line message = raise (Parse_error { line; message })

(* Enumerate the bad tuples of an event by brute force over its scope. *)
let bad_tuples space event =
  let scope = Event.scope event in
  let arities = Array.map (fun v -> Var.arity (Space.var space v)) scope in
  let total = Array.fold_left (fun acc a -> acc * a) 1 arities in
  if total > max_table then
    invalid_arg
      (Printf.sprintf "Serial: event %s has a %d-entry table (limit %d)" (Event.name event)
         total max_table);
  let k = Array.length scope in
  let tuple = Array.make k 0 in
  let acc = ref [] in
  let lookup vid =
    let rec find j = if scope.(j) = vid then tuple.(j) else find (j + 1) in
    find 0
  in
  let rec go i =
    if i = k then begin
      if Event.pred_holds event lookup then acc := Array.to_list (Array.copy tuple) :: !acc
    end
    else
      for x = 0 to arities.(i) - 1 do
        tuple.(i) <- x;
        go (i + 1)
      done
  in
  go 0;
  List.rev !acc

(* ---- emitting ---- *)

(* names are single tokens in the format *)
let sanitize name =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' then '_' else c) name

let emit out instance =
  let space = Instance.space instance in
  let pf fmt = Printf.ksprintf out fmt in
  pf "lll-instance v1\n";
  pf "vars %d\n" (Instance.num_vars instance);
  Array.iter
    (fun v ->
      pf "var %d %s %d" (Var.id v) (sanitize (Var.name v)) (Var.arity v);
      Array.iter (fun q -> pf " %s" (Rat.to_string q)) (Var.probs v);
      pf "\n")
    (Space.vars space);
  pf "events %d\n" (Instance.num_events instance);
  Array.iter
    (fun e ->
      let scope = Event.scope e in
      let bad = bad_tuples space e in
      pf "event %d %s %d" (Event.id e) (sanitize (Event.name e)) (Array.length scope);
      Array.iter (fun v -> pf " %d" v) scope;
      pf " %d\n" (List.length bad);
      List.iter
        (fun tuple ->
          pf "bad";
          List.iter (fun x -> pf " %d" x) tuple;
          pf "\n")
        bad)
    (Instance.events instance)

let to_string instance =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) instance;
  Buffer.contents buf

let write_instance oc instance = emit (output_string oc) instance

let save path instance =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_instance oc instance)

(* ---- parsing ---- *)

let tokens_of_line line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Parse from a numbered stream of non-empty, non-comment lines. *)
let parse_lines lines =
  let lines = ref lines in
  let lineno = ref 0 in
  let next_line () =
    let rec go () =
      match !lines with
      | [] -> parse_fail !lineno "unexpected end of input"
      | l :: rest ->
        incr lineno;
        lines := rest;
        let l = String.trim l in
        if l = "" || l.[0] = '#' then go () else l
    in
    go ()
  in
  let expect_int tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> parse_fail !lineno (Printf.sprintf "expected integer, got %S" tok)
  in
  (match next_line () with
  | "lll-instance v1" -> ()
  | l -> parse_fail !lineno (Printf.sprintf "bad header %S" l));
  let nvars =
    match tokens_of_line (next_line ()) with
    | [ "vars"; n ] -> expect_int n
    | _ -> parse_fail !lineno "expected 'vars <count>'"
  in
  let vars =
    Array.init nvars (fun i ->
        match tokens_of_line (next_line ()) with
        | "var" :: id :: name :: arity :: probs ->
          let id = expect_int id in
          if id <> i then parse_fail !lineno "variable ids must be consecutive";
          let arity = expect_int arity in
          if List.length probs <> arity then parse_fail !lineno "wrong number of probabilities";
          let probs = Array.of_list (List.map Rat.of_string probs) in
          Var.make ~id ~name probs
        | _ -> parse_fail !lineno "expected 'var ...'")
  in
  let nevents =
    match tokens_of_line (next_line ()) with
    | [ "events"; n ] -> expect_int n
    | _ -> parse_fail !lineno "expected 'events <count>'"
  in
  let events =
    Array.init nevents (fun i ->
        match tokens_of_line (next_line ()) with
        | "event" :: id :: name :: k :: rest ->
          let id = expect_int id in
          if id <> i then parse_fail !lineno "event ids must be consecutive";
          let k = expect_int k in
          if List.length rest <> k + 1 then parse_fail !lineno "bad event line";
          let scope =
            Array.of_list (List.map expect_int (List.filteri (fun j _ -> j < k) rest))
          in
          let nbad = expect_int (List.nth rest k) in
          let bad =
            List.init nbad (fun _ ->
                match tokens_of_line (next_line ()) with
                | "bad" :: xs ->
                  if List.length xs <> k then parse_fail !lineno "bad tuple arity";
                  List.map expect_int xs
                | _ -> parse_fail !lineno "expected 'bad ...'")
          in
          Event.of_bad_set ~id ~name ~scope bad
        | _ -> parse_fail !lineno "expected 'event ...'")
  in
  Instance.create (Space.create vars) events

let of_string s = parse_lines (String.split_on_char '\n' s)

let read_instance ic = of_string (In_channel.input_all ic)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_instance ic)
