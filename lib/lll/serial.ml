(* Textual serialization of LLL instances.

   An event's exact content is its satisfying set over its scope, so a
   dump writes each event as a table. This is intended for the bounded
   scopes of LLL instances (the format guards against accidentally
   exploding tables). Distributions are written as exact rationals
   ("n" or "n/d").

   Two versions are understood (line oriented, '#' comments and blank
   lines allowed):

     lll-instance v1
     vars <count>
     var <id> <name> <arity> <p_0> <p_1> ... <p_{arity-1}>
     events <count>
     event <id> <name> <scope size> <v_1> ... <v_k> <bad count>
     bad <x_1> ... <x_k>          (one line per bad tuple, scope order)

   v2 replaces the bad-tuple list by the compiled weighted table of the
   event (the "p wtable" block of {!Lll_graph.Serialize}): satisfying
   tuples WITH their exact joint probabilities, emitted straight from the
   space's table cache when available. The loader re-derives each weight
   from the variable distributions and rejects any mismatch, so a v2
   file is self-checking.

     lll-instance v2
     ... var lines as in v1 ...
     events <count>
     event <id> <name> <scope size> <v_1> ... <v_k>
     p wtable <scope size> <row count>
     a <arity_1> ... <arity_k>
     w <x_1> ... <x_k> <weight>   (one line per satisfying tuple)

   Emission writes v2; both versions load. Round trips exactly:
   probabilities, scopes and satisfying sets are preserved verbatim
   (tested). *)

module Rat = Lll_num.Rat
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Serialize = Lll_graph.Serialize

let max_table = 1 lsl 20

exception Parse_error of { line : int; message : string }

let parse_fail line message = raise (Parse_error { line; message })

(* Enumerate the bad tuples of an event by brute force over its scope. *)
let bad_tuples space event =
  let scope = Event.scope event in
  let arities = Array.map (fun v -> Var.arity (Space.var space v)) scope in
  let total = Array.fold_left (fun acc a -> acc * a) 1 arities in
  if total > max_table then
    invalid_arg
      (Printf.sprintf "Serial: event %s has a %d-entry table (limit %d)" (Event.name event)
         total max_table);
  let k = Array.length scope in
  let tuple = Array.make k 0 in
  let acc = ref [] in
  let lookup vid =
    let rec find j = if scope.(j) = vid then tuple.(j) else find (j + 1) in
    find 0
  in
  let rec go i =
    if i = k then begin
      if Event.pred_holds event lookup then acc := Array.to_list (Array.copy tuple) :: !acc
    end
    else
      for x = 0 to arities.(i) - 1 do
        tuple.(i) <- x;
        go (i + 1)
      done
  in
  go 0;
  List.rev !acc

(* ---- emitting ---- *)

(* names are single tokens in the format *)
let sanitize name =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' then '_' else c) name

(* The weighted table of an event: straight from the space's compiled
   cache when it has one, otherwise by brute-force enumeration with the
   joint probabilities recomputed. *)
let weighted_table space e =
  let scope = Event.scope e in
  let k = Array.length scope in
  let arities = Array.map (fun v -> Var.arity (Space.var space v)) scope in
  match Space.compiled_table space e with
  | Some tab ->
    let rows =
      Array.to_list
        (Array.mapi
           (fun j code ->
             (Array.init k (fun pos -> Event.value_at tab ~pos ~code), tab.Event.weights.(j)))
           tab.Event.codes)
    in
    { Serialize.arities; rows }
  | None ->
    let rows =
      List.map
        (fun tuple ->
          let xs = Array.of_list tuple in
          let w = ref Rat.one in
          Array.iteri
            (fun j x -> w := Rat.mul !w (Var.prob (Space.var space scope.(j)) x))
            xs;
          (xs, !w))
        (bad_tuples space e)
    in
    { Serialize.arities; rows }

let emit out instance =
  let space = Instance.space instance in
  let pf fmt = Printf.ksprintf out fmt in
  pf "lll-instance v2\n";
  pf "vars %d\n" (Instance.num_vars instance);
  Array.iter
    (fun v ->
      pf "var %d %s %d" (Var.id v) (sanitize (Var.name v)) (Var.arity v);
      Array.iter (fun q -> pf " %s" (Rat.to_string q)) (Var.probs v);
      pf "\n")
    (Space.vars space);
  pf "events %d\n" (Instance.num_events instance);
  Array.iter
    (fun e ->
      let scope = Event.scope e in
      pf "event %d %s %d" (Event.id e) (sanitize (Event.name e)) (Array.length scope);
      Array.iter (fun v -> pf " %d" v) scope;
      pf "\n";
      out (Serialize.weighted_table_to_string (weighted_table space e)))
    (Instance.events instance)

let to_string instance =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) instance;
  Buffer.contents buf

let write_instance oc instance = emit (output_string oc) instance

let save path instance =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_instance oc instance)

(* ---- parsing ---- *)

let tokens_of_line line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Parse from a numbered stream of non-empty, non-comment lines. *)
let parse_lines lines =
  let lines = ref lines in
  let lineno = ref 0 in
  let next_line () =
    let rec go () =
      match !lines with
      | [] -> parse_fail !lineno "unexpected end of input"
      | l :: rest ->
        incr lineno;
        lines := rest;
        let l = String.trim l in
        if l = "" || l.[0] = '#' then go () else l
    in
    go ()
  in
  let expect_int tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> parse_fail !lineno (Printf.sprintf "expected integer, got %S" tok)
  in
  let version =
    match next_line () with
    | "lll-instance v1" -> 1
    | "lll-instance v2" -> 2
    | l -> parse_fail !lineno (Printf.sprintf "bad header %S" l)
  in
  let nvars =
    match tokens_of_line (next_line ()) with
    | [ "vars"; n ] -> expect_int n
    | _ -> parse_fail !lineno "expected 'vars <count>'"
  in
  let vars =
    Array.init nvars (fun i ->
        match tokens_of_line (next_line ()) with
        | "var" :: id :: name :: arity :: probs ->
          let id = expect_int id in
          if id <> i then parse_fail !lineno "variable ids must be consecutive";
          let arity = expect_int arity in
          if List.length probs <> arity then parse_fail !lineno "wrong number of probabilities";
          let probs = Array.of_list (List.map Rat.of_string probs) in
          Var.make ~id ~name probs
        | _ -> parse_fail !lineno "expected 'var ...'")
  in
  let nevents =
    match tokens_of_line (next_line ()) with
    | [ "events"; n ] -> expect_int n
    | _ -> parse_fail !lineno "expected 'events <count>'"
  in
  let events =
    Array.init nevents (fun i ->
        match tokens_of_line (next_line ()) with
        | "event" :: id :: name :: k :: rest ->
          let id = expect_int id in
          if id <> i then parse_fail !lineno "event ids must be consecutive";
          let k = expect_int k in
          if version = 1 then begin
            if List.length rest <> k + 1 then parse_fail !lineno "bad event line";
            let scope =
              Array.of_list (List.map expect_int (List.filteri (fun j _ -> j < k) rest))
            in
            let nbad = expect_int (List.nth rest k) in
            let bad =
              List.init nbad (fun _ ->
                  match tokens_of_line (next_line ()) with
                  | "bad" :: xs ->
                    if List.length xs <> k then parse_fail !lineno "bad tuple arity";
                    List.map expect_int xs
                  | _ -> parse_fail !lineno "expected 'bad ...'")
            in
            Event.of_bad_set ~id ~name ~scope bad
          end
          else begin
            if List.length rest <> k then parse_fail !lineno "bad event line";
            let scope = Array.of_list (List.map expect_int rest) in
            Array.iter
              (fun v -> if v < 0 || v >= nvars then parse_fail !lineno "scope outside space")
              scope;
            let wt =
              Serialize.weighted_table_of_lines ~next_line ~fail:(fun message ->
                  Parse_error { line = !lineno; message })
            in
            if Array.length wt.Serialize.arities <> k then
              parse_fail !lineno "wtable scope size mismatch";
            Array.iteri
              (fun j a ->
                if a <> Var.arity vars.(scope.(j)) then
                  parse_fail !lineno "wtable arity disagrees with variable")
              wt.Serialize.arities;
            (* weights are redundant given the distributions — re-derive
               and reject any disagreement, making the file self-checking *)
            List.iter
              (fun (xs, w) ->
                let expected = ref Rat.one in
                Array.iteri
                  (fun j x -> expected := Rat.mul !expected (Var.prob vars.(scope.(j)) x))
                  xs;
                if not (Rat.equal w !expected) then
                  parse_fail !lineno "wtable weight disagrees with distributions")
              wt.Serialize.rows;
            Event.of_bad_set ~id ~name ~scope
              (List.map (fun (xs, _) -> Array.to_list xs) wt.Serialize.rows)
          end
        | _ -> parse_fail !lineno "expected 'event ...'")
  in
  Instance.create (Space.create vars) events

let of_string s = parse_lines (String.split_on_char '\n' s)

let read_instance ic = of_string (In_channel.input_all ic)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_instance ic)

(* ---- v3 binary format ----

   A {!Lll_graph.Serialize.Bin} container of kind "instance":

     VARS  nvars, then per variable: name, probs (run-length encoded)
     EVTS  nevents, then per event: name, scope, occurring row codes
           (ascending mixed-radix, width-packed), weights (run-length
           encoded)
     DEPG  the dependency graph as a nested binary graph blob

   Loading is the fast path the text formats cannot take: variables and
   events are rebuilt directly from the stored columns
   ([Event.of_table] re-derives strides and the sat bitmap and installs
   the bitmap as the event's predicate — the same closure replacement
   the text loader performs via [of_bad_set], so both backends solve
   identically), tables are installed into the space without
   recompiling, the dependency graph decodes through [Graph.of_csr]'s
   structural validation, and [Instance.of_precomputed] skips the
   O(Σ deg²) pair enumeration. Unlike the self-checking text v2 loader,
   weights are trusted verbatim: the container checksum guards
   transport corruption, which is what re-derivation caught in
   practice — that skip is most of the speed win. Cross-conversion with
   text v2 is lossless (same vars, scopes, satisfying sets, weights). *)

module Bin = Serialize.Bin

let binary_kind = "instance"

let to_binary_string instance =
  let space = Instance.space instance in
  let w = Bin.make_writer ~kind:binary_kind in
  Bin.section w "VARS";
  Bin.add_int w (Instance.num_vars instance);
  Array.iter
    (fun v ->
      Bin.add_string w (Var.name v);
      Bin.add_rat_array w (Var.probs v))
    (Space.vars space);
  Bin.section w "EVTS";
  Bin.add_int w (Instance.num_events instance);
  Array.iter
    (fun e ->
      Bin.add_string w (Event.name e);
      Bin.add_int_array w (Event.scope e);
      match Space.compiled_table space e with
      | Some tab ->
        Bin.add_int_array w tab.Event.codes;
        Bin.add_rat_array w tab.Event.weights
      | None ->
        (* no cached table (e.g. an [Enum]-backend space): enumerate.
           Nested ascending enumeration yields ascending codes. *)
        let wt = weighted_table space e in
        let k = Array.length wt.Serialize.arities in
        let strides = Array.make (max k 1) 1 in
        for i = k - 2 downto 0 do
          strides.(i) <- strides.(i + 1) * wt.Serialize.arities.(i + 1)
        done;
        let code_of xs =
          let c = ref 0 in
          Array.iteri (fun i x -> c := !c + (x * strides.(i))) xs;
          !c
        in
        let rows = Array.of_list wt.Serialize.rows in
        Bin.add_int_array w (Array.map (fun (xs, _) -> code_of xs) rows);
        Bin.add_rat_array w (Array.map snd rows))
    (Instance.events instance);
  Bin.section w "DEPG";
  Bin.add_string w (Serialize.graph_to_binary (Instance.dep_graph instance));
  Bin.contents w

let of_binary_source src =
  let corrupt msg = raise (Bin.Corrupt msg) in
  let guard f = try f () with Invalid_argument msg -> corrupt msg in
  let r = Bin.open_reader_src ~kind:binary_kind src in
  Bin.enter r "VARS";
  let nvars = Bin.read_int r in
  if nvars < 0 then corrupt "negative variable count";
  let vars =
    Array.init nvars (fun i ->
        let name = Bin.read_string r in
        let probs = Bin.read_rat_array r in
        guard (fun () -> Var.make ~id:i ~name probs))
  in
  Bin.enter r "EVTS";
  let nevents = Bin.read_int r in
  if nevents < 0 then corrupt "negative event count";
  let compiled =
    Array.init nevents (fun i ->
        let name = Bin.read_string r in
        let scope = Bin.read_int_array r in
        Array.iter (fun vid -> if vid < 0 || vid >= nvars then corrupt "scope outside space") scope;
        let arities = Array.map (fun vid -> Var.arity vars.(vid)) scope in
        let codes = Bin.read_int_array r in
        let weights = Bin.read_rat_array r in
        if Array.length weights <> Array.length codes then
          corrupt "codes/weights count mismatch";
        guard (fun () -> Event.of_table ~id:i ~name ~scope ~arities ~codes ~weights))
  in
  Bin.enter r "DEPG";
  (* the nested graph container decodes straight out of the parent's
     backing bytes — no copy of the (dominant) DEPG section *)
  let gblob = Bin.read_blob r in
  Bin.close r;
  let dep_graph = Serialize.graph_of_binary_src gblob in
  let space = guard (fun () -> Space.create vars) in
  Array.iter (fun (e, tab) -> Space.install_table space e tab) compiled;
  let events = Array.map fst compiled in
  guard (fun () -> Instance.of_precomputed space events ~dep_graph)

let of_binary_string s = of_binary_source (Bin.source_of_string s)

let load_binary_mmap path =
  of_binary_source (Bin.source_of_path path)

let binary_fingerprint path = Bin.fingerprint_file path

let save_binary path instance =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_binary_string instance))

let load_binary path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_binary_string (In_channel.input_all ic))

let is_binary s = String.length s >= 4 && String.sub s 0 4 = "LLL3"
let of_any_string s = if is_binary s then of_binary_string s else of_string s

let load_any path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_any_string (In_channel.input_all ic))
