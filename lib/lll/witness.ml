(* Witness trees — the accounting device of the Moser-Tardos analysis
   [MT10].

   Given the execution log (the sequence of resampled bad events), the
   witness tree of step [t] explains WHY that resampling happened: its
   root is the event resampled at [t]; scanning the log backwards, each
   earlier resampling whose event lies in the inclusive dependency
   neighborhood of some tree node is attached below the DEEPEST such
   node. The MT theorem charges each resampling to a distinct witness
   tree and bounds the expected number of trees of size [s] by a
   geometrically decaying term under ep(d+1) < 1 — which is why the
   algorithm terminates in O(m) expected resamplings.

   This module reconstructs witness trees exactly from a log, exposes
   their structural invariants (tested), and aggregates the size
   histogram that the experiment harness prints: its geometric decay is
   the empirical face of the MT convergence proof. *)

module Graph = Lll_graph.Graph

type tree = { label : int; depth : int; children : tree list }

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let rec height t = 1 + List.fold_left (fun acc c -> max acc (height c)) 0 t.children

(* inclusive dependency neighborhood *)
let inclusive_nbhd g v = v :: Graph.neighbors g v

(* Build the witness tree of log step [t] (0-based). O(t * tree size). *)
let tree_of_log instance log t =
  if t < 0 || t >= Array.length log then invalid_arg "Witness.tree_of_log: step out of range";
  let g = Instance.dep_graph instance in
  (* mutable scaffolding: nodes with parent links, then reconstruct *)
  let nodes = ref [ (0, log.(t), -1) ] in (* (index, label, parent index) *)
  let depth = Hashtbl.create 16 in
  Hashtbl.replace depth 0 0;
  let next = ref 1 in
  for s = t - 1 downto 0 do
    let ev = log.(s) in
    (* deepest node whose label's inclusive neighborhood contains ev *)
    let best = ref None in
    List.iter
      (fun (idx, label, _) ->
        if List.mem ev (inclusive_nbhd g label) then begin
          let d = Hashtbl.find depth idx in
          match !best with
          | Some (_, d') when d' >= d -> ()
          | _ -> best := Some (idx, d)
        end)
      !nodes;
    match !best with
    | None -> ()
    | Some (parent, d) ->
      let idx = !next in
      incr next;
      nodes := (idx, ev, parent) :: !nodes;
      Hashtbl.replace depth idx (d + 1)
  done;
  (* assemble the immutable tree *)
  let children_of = Hashtbl.create 16 in
  List.iter
    (fun (idx, label, parent) ->
      if parent >= 0 then
        Hashtbl.replace children_of parent
          ((idx, label) :: (try Hashtbl.find children_of parent with Not_found -> [])))
    (List.rev !nodes);
  let rec build idx label d =
    let kids = try Hashtbl.find children_of idx with Not_found -> [] in
    { label; depth = d; children = List.map (fun (i, l) -> build i l (d + 1)) kids }
  in
  build 0 log.(t) 0

(* Structural validity per the MT definition: every child's label lies in
   the inclusive neighborhood of its parent's label. *)
let rec well_formed instance t =
  let g = Instance.dep_graph instance in
  List.for_all
    (fun c -> List.mem c.label (inclusive_nbhd g t.label) && well_formed instance c)
    t.children

(* Histogram of witness tree sizes over every step of a log. *)
let size_histogram instance log =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun t _ ->
      let s = size (tree_of_log instance log t) in
      Hashtbl.replace tbl s (1 + try Hashtbl.find tbl s with Not_found -> 0))
    log;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
