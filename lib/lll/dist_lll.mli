(** A genuinely message-passing distributed LLL solver (Corollary 1.4):
    the full protocol — 2-hop coloring, per-class fixing, gossip of fixed
    values and of the [phi] potential — runs on the LOCAL runtime; nodes
    act only on knowledge received in messages.

    Produces bit-for-bit the same assignment as the schedule-accounting
    driver {!Distributed.solve_rank3} (asserted by the test suite), at
    three communication rounds per color class (fix + two propagation
    rounds for radius-2 freshness). *)

module Assignment = Lll_prob.Assignment

type result = {
  assignment : Assignment.t;
  ok : bool;
  rounds : int;
  coloring_rounds : int;
  sweep_rounds : int;
  colors : int;
}

val solve :
  ?engine:[ `Flat | `Boxed ] ->
  ?domains:int ->
  ?metrics:Lll_local.Metrics.sink ->
  Instance.t ->
  result
(** The Corollary 1.4 protocol (2-hop coloring schedule). [domains] and
    [metrics] are forwarded to the LOCAL runtime for both the coloring
    and the gossip sweep. [engine] (default [`Flat]) selects the flat
    record-of-arrays engine for the gossip sweep, or the retired boxed
    engine for ablation runs; the two agree bit for bit.
    @raise Invalid_argument if the instance has rank [> 3]. *)

val solve_rank2 :
  ?engine:[ `Flat | `Boxed ] ->
  ?domains:int ->
  ?metrics:Lll_local.Metrics.sink ->
  Instance.t ->
  result
(** The Corollary 1.2 protocol: edge-coloring schedule, the smaller
    endpoint of each dependency edge fixes the edge's variables.
    [engine] as in {!solve}.
    @raise Invalid_argument if the instance has rank [> 2]. *)
