(** LLL instances: a product space, bad events, and the derived dependency
    graph [G] and variable hypergraph [H] of the paper. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Hypergraph = Lll_graph.Hypergraph
module Space = Lll_prob.Space
module Event = Lll_prob.Event

type t

val create : Space.t -> Event.t array -> t
(** Event ids must equal their index; scopes must lie inside the space. *)

val of_precomputed : Space.t -> Event.t array -> dep_graph:Graph.t -> t
(** Assemble an instance from precomputed parts (the binary loader's
    fast path): the space must already carry the events' compiled
    tables ({!Space.install_table}) and [dep_graph] must be the events'
    dependency graph. [var_events] and the hypergraph are rebuilt
    deterministically (linear time), skipping [create]'s pair
    enumeration and table compilation. *)

val space : t -> Space.t
val events : t -> Event.t array
val event : t -> int -> Event.t
val num_events : t -> int
val num_vars : t -> int

val dep_graph : t -> Graph.t
(** Dependency graph: events sharing a variable are adjacent. *)

val hypergraph : t -> Hypergraph.t
(** One hyperedge per variable affecting at least one event. *)

val events_of_var : t -> int -> int array
(** Sorted ids of the events depending on a variable. *)

val hyperedge_of_var : t -> int -> int option

val rank : t -> int
(** The paper's [r]: the maximum number of events any variable affects. *)

val dependency_degree : t -> int
(** The paper's [d]: the maximum number of other events an event shares a
    variable with. *)

val max_prob : t -> Rat.t
(** The paper's [p]: the largest initial bad-event probability (exact). *)

val initial_probs : t -> Rat.t array

val to_dot : t -> string
(** Graphviz rendering of the dependency graph (event names as labels). *)

val pp : Format.formatter -> t -> unit
