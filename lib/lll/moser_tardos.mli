(** Moser–Tardos resampling baselines (sequential and the standard
    parallel/distributed variant). *)

module Assignment = Lll_prob.Assignment

exception Budget_exhausted of { resamplings : int }

type stats = { resamplings : int; rounds : int }

val solve_sequential :
  ?max_resamplings:int -> seed:int -> Instance.t -> Assignment.t * stats
(** Resample the scope of the first occurring bad event until none occurs.
    @raise Budget_exhausted when the cap is hit. *)

val solve_sequential_log :
  ?max_resamplings:int -> seed:int -> Instance.t -> Assignment.t * stats * int array
(** Like {!solve_sequential}, also returning the execution log (resampled
    event ids in order) consumed by {!Witness}. *)

val solve_parallel : ?max_rounds:int -> seed:int -> Instance.t -> Assignment.t * stats
(** Each round, occurring events that are id-minimal among their occurring
    dependency neighbors resample simultaneously; [rounds] is the
    distributed round count (O(log n) w.h.p. under [ep(d+1) < 1]). *)

val solve_parallel_random_priority :
  ?max_rounds:int -> seed:int -> Instance.t -> Assignment.t * stats
(** The Chung–Pettie–Su-flavoured selection: fresh random priorities
    per round instead of ids. *)

val solve_parallel_all :
  ?max_rounds:int -> seed:int -> Instance.t -> Assignment.t * stats
(** Ablation: ALL occurring events resample each round (shared variables
    once). Needs stronger criteria to converge in theory; compare rounds
    against {!solve_parallel}. *)
