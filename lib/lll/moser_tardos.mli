(** Moser–Tardos resampling baselines (sequential and the standard
    parallel/distributed variant). *)

module Graph = Lll_graph.Graph
module Assignment = Lll_prob.Assignment

type stats = { resamplings : int; rounds : int }

exception Budget_exhausted of { assignment : Assignment.t; stats : stats }
(** The resampling/round cap was hit. The payload carries the last
    (complete, still-violating) assignment and the work done so far, so
    callers — the solver registry, the CLI, the fuzzer — can report how
    close the run got instead of discarding it. *)

val solve_sequential :
  ?max_resamplings:int -> seed:int -> Instance.t -> Assignment.t * stats
(** Resample the scope of the lowest-id occurring bad event until none
    occurs. The occurring set is maintained incrementally (O(deg) per
    resampling).
    @raise Budget_exhausted when the cap is hit. *)

val solve_sequential_log :
  ?max_resamplings:int -> seed:int -> Instance.t -> Assignment.t * stats * int array
(** Like {!solve_sequential}, also returning the execution log (resampled
    event ids in order) consumed by {!Witness}. *)

val solve_sequential_rescan :
  ?max_resamplings:int -> seed:int -> Instance.t -> Assignment.t * stats
(** The pre-incremental ablation: rescan all [m] events after every
    resampling. Behaviourally identical to {!solve_sequential} (same
    selection, same random stream); kept as the baseline the
    occurring-set maintenance is benchmarked against. *)

val solve_parallel : ?max_rounds:int -> seed:int -> Instance.t -> Assignment.t * stats
(** Each round, occurring events that are id-minimal among their occurring
    dependency neighbors resample simultaneously; [rounds] is the
    distributed round count (O(log n) w.h.p. under [ep(d+1) < 1]). *)

val solve_parallel_random_priority :
  ?max_rounds:int -> seed:int -> Instance.t -> Assignment.t * stats
(** The Chung–Pettie–Su-flavoured selection: fresh random priorities
    per round instead of ids, ties broken by id (see
    {!priority_minima}). *)

val priority_minima : Graph.t -> prio:float array -> int list -> int list
(** [priority_minima g ~prio occurring] — the occurring events that are
    strict local minima under the lexicographic order [(prio, id)] among
    their occurring dependency neighbors. Always pairwise non-adjacent,
    and non-empty whenever [occurring] is: the id tiebreak prevents the
    livelock where a tied edge blocks both endpoints and a round selects
    nothing. [prio] must cover every event id. *)

val solve_parallel_all :
  ?max_rounds:int -> seed:int -> Instance.t -> Assignment.t * stats
(** Ablation: ALL occurring events resample each round (shared variables
    once). Needs stronger criteria to converge in theory; compare rounds
    against {!solve_parallel}. *)
