(* LLL instances.

   An instance couples a product probability space with a family of bad
   events and exposes the two combinatorial views the paper works with:

   - the dependency graph [G]: one node per event, an edge between two
     events iff they share a variable;
   - the hypergraph [H]: one hyperedge per variable, connecting exactly
     the events depending on it. The rank of [H] is the parameter [r]
     (how many events a variable can affect). *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Hypergraph = Lll_graph.Hypergraph
module Space = Lll_prob.Space
module Event = Lll_prob.Event
module Var = Lll_prob.Var
module Assignment = Lll_prob.Assignment

type t = {
  space : Space.t;
  events : Event.t array; (* event id = index *)
  var_events : int array array; (* variable id -> sorted event ids depending on it *)
  dep_graph : Graph.t;
  hypergraph : Hypergraph.t; (* hyperedges only for variables affecting >= 1 event *)
  hyperedge_of_var : int option array; (* variable id -> hyperedge id *)
}

let create space events =
  Array.iteri
    (fun i e -> if Event.id e <> i then invalid_arg "Instance.create: event id must equal its index")
    events;
  let nv = Space.num_vars space in
  let ne = Array.length events in
  (* Scopes are sorted and distinct, and event ids equal their index, so
     iterating events in decreasing id order and prepending yields each
     variable's event list already sorted and duplicate-free. *)
  let var_events_l = Array.make nv [] in
  for i = ne - 1 downto 0 do
    Array.iter
      (fun vid ->
        if vid < 0 || vid >= nv then invalid_arg "Instance.create: event scope outside space";
        var_events_l.(vid) <- i :: var_events_l.(vid))
      (Event.scope events.(i))
  done;
  let var_events = Array.map Array.of_list var_events_l in
  (* dependency edges: all pairs of events sharing a variable. A pair
     sharing several variables is emitted once, not once per shared
     variable. *)
  let seen_edges = Hashtbl.create 64 in
  let dep_edges = ref [] in
  Array.iter
    (fun evs ->
      let k = Array.length evs in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let key = (evs.(i) * ne) + evs.(j) in
          if not (Hashtbl.mem seen_edges key) then begin
            Hashtbl.add seen_edges key ();
            dep_edges := (evs.(i), evs.(j)) :: !dep_edges
          end
        done
      done)
    var_events;
  let dep_graph = Graph.create ~n:ne !dep_edges in
  Space.compile_events space events;
  (* hypergraph over the events, one hyperedge per variable with a
     non-empty family of dependent events *)
  let hyperedge_of_var = Array.make nv None in
  let hedges = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun vid evs ->
      if Array.length evs > 0 then begin
        hyperedge_of_var.(vid) <- Some !next;
        incr next;
        hedges := Array.to_list evs :: !hedges
      end)
    var_events;
  let hypergraph = Hypergraph.create ~n:ne (List.rev !hedges) in
  { space; events; var_events; dep_graph; hypergraph; hyperedge_of_var }

(* Assembly from precomputed parts — the binary loader's fast path.
   [var_events] and the hypergraph are rebuilt here (both are linear
   prepend loops, deterministic and identical to [create]'s); the
   expensive parts [create] would redo — the O(Σ deg²) dependency-pair
   enumeration with its dedup table, and [Space.compile_events]'s
   full-scope enumeration — are exactly what the caller supplies: a
   ready dependency graph and a space whose tables are already
   installed. The dependency graph is structurally validated by
   [Graph.of_csr] on decode and covered by the container checksum; its
   semantic agreement with the scopes is the serializer's contract. *)
let of_precomputed space events ~dep_graph =
  Array.iteri
    (fun i e ->
      if Event.id e <> i then
        invalid_arg "Instance.of_precomputed: event id must equal its index")
    events;
  let nv = Space.num_vars space in
  let ne = Array.length events in
  if Graph.n dep_graph <> ne then
    invalid_arg "Instance.of_precomputed: dependency graph node count mismatch";
  let var_events_l = Array.make nv [] in
  for i = ne - 1 downto 0 do
    Array.iter
      (fun vid ->
        if vid < 0 || vid >= nv then
          invalid_arg "Instance.of_precomputed: event scope outside space";
        var_events_l.(vid) <- i :: var_events_l.(vid))
      (Event.scope events.(i))
  done;
  let var_events = Array.map Array.of_list var_events_l in
  let hyperedge_of_var = Array.make nv None in
  let hedges = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun vid evs ->
      if Array.length evs > 0 then begin
        hyperedge_of_var.(vid) <- Some !next;
        incr next;
        hedges := evs :: !hedges
      end)
    var_events;
  (* the per-var event lists are strictly ascending by construction, so
     the hypergraph can skip its sort/dedup normalisation *)
  let hypergraph = Hypergraph.of_sorted_arrays ~n:ne (Array.of_list (List.rev !hedges)) in
  { space; events; var_events; dep_graph; hypergraph; hyperedge_of_var }

let space t = t.space
let events t = t.events
let event t i = t.events.(i)
let num_events t = Array.length t.events
let num_vars t = Space.num_vars t.space
let dep_graph t = t.dep_graph
let hypergraph t = t.hypergraph
let events_of_var t vid = t.var_events.(vid)
let hyperedge_of_var t vid = t.hyperedge_of_var.(vid)

let rank t =
  Array.fold_left (fun acc evs -> max acc (Array.length evs)) 0 t.var_events

let dependency_degree t = Graph.max_degree t.dep_graph

(* Largest initial (unconditioned) bad-event probability — the paper's
   [p]. Exact. *)
let max_prob t =
  let fixed = Assignment.empty (num_vars t) in
  Array.fold_left (fun acc e -> Rat.max acc (Space.prob t.space e ~fixed)) Rat.zero t.events

let initial_probs t =
  let fixed = Assignment.empty (num_vars t) in
  Array.map (fun e -> Space.prob t.space e ~fixed) t.events

(* Graphviz rendering of the dependency graph, nodes labelled by event
   names. *)
let to_dot t =
  let b = Buffer.create 256 in
  Buffer.add_string b "graph dependency {\n";
  Array.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %d [label=\"%s\"];\n" (Event.id e) (Event.name e)))
    t.events;
  Graph.iter_edges (fun _ u v -> Buffer.add_string b (Printf.sprintf "  %d -- %d;\n" u v)) t.dep_graph;
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "lll(vars=%d, events=%d, d=%d, r=%d)" (num_vars t) (num_events t)
    (dependency_degree t) (rank t)
