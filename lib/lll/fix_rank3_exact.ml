(* An EXACT-arithmetic variant of the rank-3 fixing process.

   {!Fix_rank3} keeps the potential phi in floats because the optimal
   decomposition of Lemma 3.5 involves a square root (the critical point
   x1). This module keeps EVERYTHING rational:

   - candidate values are accepted by the square-root-free exact
     membership test {!Srep.mem_rat};
   - the decomposition searches for a DYADIC RATIONAL split x near the
     float optimum such that the representability constraint
       c * x * (2 - x) <= (2x - a) * (2(2 - x) - b)
     holds exactly (both sides rational). Such an x exists whenever the
     triple is strictly inside S_rep; exactly-on-the-boundary triples
     may admit only the irrational split, in which case this fixer falls
     back to the value minimising the float violation and records that
     exactness was lost (it never happens on the below-threshold families
     of the test suite).

   The payoff: property P* holds EXACTLY (no epsilon) after every step,
   so the final "probability < 1 hence 0" conclusion is a theorem about
   the actual execution, not about a float approximation of it. *)

module Rat = Lll_num.Rat
module Bigint = Lll_num.Bigint
module Graph = Lll_graph.Graph
module Space = Lll_prob.Space
module Event = Lll_prob.Event
module Assignment = Lll_prob.Assignment
module Metrics = Lll_local.Metrics

type t = {
  instance : Instance.t;
  tracker : Space.Cond_tracker.tracker; (* assignment + exact Pr[E_v | assignment] *)
  phi : Rat.t array array; (* edge id -> [| side min; side max |] *)
  initial_probs : Rat.t array;
  mutable fallbacks : int; (* steps where no exact decomposition was found *)
}

let create instance =
  if Instance.rank instance > 3 then invalid_arg "Fix_rank3_exact.create: instance has rank > 3";
  let g = Instance.dep_graph instance in
  let initial_probs = Instance.initial_probs instance in
  {
    instance;
    tracker = Space.Cond_tracker.create (Instance.space instance) (Instance.events instance);
    phi = Array.init (Graph.m g) (fun _ -> [| Rat.one; Rat.one |]);
    initial_probs;
    fallbacks = 0;
  }

let assignment t = Space.Cond_tracker.assignment t.tracker
let instance t = t.instance
let fallbacks t = t.fallbacks

let side g e v =
  let u, _ = Graph.endpoints g e in
  if v = u then 0 else 1

let phi t e v = t.phi.(e).(side (Instance.dep_graph t.instance) e v)
let set_phi t e v x = t.phi.(e).(side (Instance.dep_graph t.instance) e v) <- x

let inc_vector t ev ~var =
  let after, before = Space.Cond_tracker.prob_vector t.tracker ev ~var in
  Array.map (fun a -> if Rat.is_zero before then Rat.zero else Rat.div a before) after

(* exact representability condition for split x (in [a/2, 2-b/2]):
   c * x * (2-x) <= (2x - a) * (2(2-x) - b) *)
let split_ok ~a ~b ~c x =
  let open Rat in
  let two_minus_x = sub two x in
  geq x (div a two) && geq two_minus_x (div b two)
  && leq (mul c (mul x two_minus_x)) (mul (sub (mul two x) a) (sub (mul two two_minus_x) b))

(* dyadic rational nearest to the float, denominator 2^40 *)
let dyadic_of_float x =
  let scale = 1 lsl 40 in
  let n = int_of_float (Float.round (x *. float_of_int scale)) in
  Rat.of_ints (max 1 (min (2 * scale) n)) scale

(* Exact decomposition of a rational triple in S_rep; None when only the
   irrational boundary split would work. *)
let decompose_rat (a, b, c) =
  let open Rat in
  if sign a < 0 || sign b < 0 || sign c < 0 then None
  else if is_zero a && is_zero b then Some (zero, zero, zero, zero, two, div c two)
  else if is_zero a then
    (* c <= 4 - b guaranteed by membership *)
    Some (zero, zero, two, div b two, two, div c two)
  else if is_zero b then Some (two, div a two, zero, zero, div c two, two)
  else if is_zero c then begin
    (* c = 0: any exact split in [a/2, 2 - b/2] works; when a + b = 4 the
       interval degenerates to the single rational point a/2 *)
    let four = of_int 4 in
    if gt (add a b) four then None
    else begin
      let x = if equal (add a b) four then div a two else div (add a (sub four b)) (of_int 4) in
      if split_ok ~a ~b ~c x then begin
        let a1 = x and a2 = div a x in
        let b1 = sub two x in
        let b3 = div b b1 in
        Some (a1, a2, b1, b3, zero, sub two b3)
      end
      else None
    end
  end
  else begin
    (* search dyadic splits near the float optimum, plus the exact
       rational boundary candidates *)
    let xf = Srep.best_x ~a:(to_float a) ~b:(to_float b) in
    let base = dyadic_of_float xf in
    let step = of_ints 1 (1 lsl 20) in
    let in_range x = sign x > 0 && lt x two in
    let boundary_candidates =
      List.filter (fun x -> in_range x && split_ok ~a ~b ~c x)
        [ div a two; sub two (div b two); div (add (div a two) (sub two (div b two))) two ]
    in
    let rec search k =
      if k > 64 then None
      else begin
        let delta = mul (of_int ((k + 1) / 2)) step in
        let x = if k mod 2 = 0 then add base delta else sub base delta in
        if in_range x && split_ok ~a ~b ~c x then Some x else search (k + 1)
      end
    in
    let found = match boundary_candidates with x :: _ -> Some x | [] -> search 0 in
    match found with
    | None -> None
    | Some x ->
      let a1 = x and a2 = div a x in
      let b1 = sub two x in
      let b3 = div b b1 in
      let c3 = sub two b3 in
      let c2 = if is_zero c3 then zero else div c c3 in
      Some (a1, a2, b1, b3, c2, c3)
  end

let fix_rank2_var t vid u v ~arity =
  let g = Instance.dep_graph t.instance in
  let e = Graph.find_edge_exn g u v in
  let s = phi t e u and w = phi t e v in
  let incs_u = inc_vector t u ~var:vid in
  let incs_v = inc_vector t v ~var:vid in
  let best = ref None in
  for y = 0 to arity - 1 do
    let score = Rat.add (Rat.mul incs_u.(y) s) (Rat.mul incs_v.(y) w) in
    match !best with
    | Some (_, score') when Rat.leq score' score -> ()
    | _ -> best := Some (y, score)
  done;
  let y, score = Option.get !best in
  assert (Rat.leq score (Rat.add s w));
  Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
  set_phi t e u (Rat.mul incs_u.(y) s);
  set_phi t e v (Rat.mul incs_v.(y) w)

let fix_rank3_var t vid u v w ~arity =
  let g = Instance.dep_graph t.instance in
  let e = Graph.find_edge_exn g u v in
  let e' = Graph.find_edge_exn g u w in
  let e'' = Graph.find_edge_exn g v w in
  let a = Rat.mul (phi t e u) (phi t e' u) in
  let b = Rat.mul (phi t e v) (phi t e'' v) in
  let c = Rat.mul (phi t e' w) (phi t e'' w) in
  let incs_u = inc_vector t u ~var:vid in
  let incs_v = inc_vector t v ~var:vid in
  let incs_w = inc_vector t w ~var:vid in
  let triple_of y = (Rat.mul incs_u.(y) a, Rat.mul incs_v.(y) b, Rat.mul incs_w.(y) c) in
  (* exact-first: a value whose scaled triple is exactly representable
     AND admits an exact dyadic decomposition *)
  let chosen = ref None in
  (try
     for y = 0 to arity - 1 do
       let triple = triple_of y in
       if Srep.mem_rat triple then begin
         match decompose_rat triple with
         | Some d ->
           chosen := Some (y, d);
           raise Exit
         | None -> ()
       end
     done
   with Exit -> ());
  match !chosen with
  | Some (y, (a1, a2, b1, b3, c2, c3)) ->
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
    set_phi t e u a1;
    set_phi t e' u a2;
    set_phi t e v b1;
    set_phi t e'' v b3;
    set_phi t e' w c2;
    set_phi t e'' w c3
  | None ->
    (* fallback: float-minimising choice, dyadic-rounded potential;
       exactness is lost for this step (counted) *)
    t.fallbacks <- t.fallbacks + 1;
    let best = ref None in
    for y = 0 to arity - 1 do
      let ta, tb, tc = triple_of y in
      let viol = Srep.violation (Rat.to_float ta, Rat.to_float tb, Rat.to_float tc) in
      match !best with
      | Some (_, viol') when viol' <= viol -> ()
      | _ -> best := Some (y, viol)
    done;
    let y, _ = Option.get !best in
    let ta, tb, tc = triple_of y in
    let d = Srep.decompose (Rat.to_float ta, Rat.to_float tb, Rat.to_float tc) in
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
    (* round each side DOWN so the edge-sum constraints stay exact *)
    let down x = Rat.of_ints (int_of_float (Float.max 0. x *. float_of_int (1 lsl 40))) (1 lsl 40) in
    set_phi t e u (down d.Srep.a1);
    set_phi t e' u (down d.Srep.a2);
    set_phi t e v (down d.Srep.b1);
    set_phi t e'' v (down d.Srep.b3);
    set_phi t e' w (down d.Srep.c2);
    set_phi t e'' w (down d.Srep.c3)

let fix_var t vid =
  if Assignment.is_fixed (assignment t) vid then
    invalid_arg "Fix_rank3_exact.fix_var: already fixed";
  let space = Instance.space t.instance in
  let arity = Lll_prob.Var.arity (Space.var space vid) in
  match Array.to_list (Instance.events_of_var t.instance vid) with
  | [] -> Space.Cond_tracker.fix t.tracker ~var:vid ~value:0
  | [ u ] ->
    let incs_u = inc_vector t u ~var:vid in
    let best = ref None in
    for y = 0 to arity - 1 do
      match !best with
      | Some (_, i') when Rat.leq i' incs_u.(y) -> ()
      | _ -> best := Some (y, incs_u.(y))
    done;
    let y, _ = Option.get !best in
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y
  | [ u; v ] -> fix_rank2_var t vid u v ~arity
  | [ u; v; w ] -> fix_rank3_var t vid u v w ~arity
  | _ -> assert false

(* Property P*, checked EXACTLY — no epsilon anywhere. *)
let pstar_holds_exact t =
  let g = Instance.dep_graph t.instance in
  let edges_ok =
    Array.for_all
      (fun pair ->
        Rat.sign pair.(0) >= 0 && Rat.sign pair.(1) >= 0
        && Rat.leq (Rat.add pair.(0) pair.(1)) Rat.two)
      t.phi
  in
  edges_ok
  && Array.for_all
       (fun e ->
         let v = Event.id e in
         let bound =
           List.fold_left
             (fun acc eid -> Rat.mul acc (phi t eid v))
             t.initial_probs.(v)
             (Graph.incident_edges g v)
         in
         Rat.leq (Space.prob (Instance.space t.instance) e ~fixed:(assignment t)) bound)
       (Instance.events t.instance)

let run ?order ?(metrics = Metrics.disabled) instance =
  let t = create instance in
  let m = Instance.num_vars instance in
  let order = match order with Some o -> o | None -> Array.init m (fun i -> i) in
  if Metrics.enabled metrics then begin
    Metrics.set_phase metrics "fix-rank3-exact";
    Array.iteri
      (fun i vid ->
        let t0 = Metrics.now_ns () in
        fix_var t vid;
        Metrics.record_step metrics ~round:i ~total:m ~wall_ns:(Metrics.now_ns () - t0)
          ~state:(assignment t))
      order
  end
  else Array.iter (fun vid -> fix_var t vid) order;
  t

let solve ?order ?metrics instance =
  let t = run ?order ?metrics instance in
  (assignment t, t)
