(* Exact verification of LLL solutions.

   Whatever numeric route produced an assignment (exact rank-2 fixing,
   float-assisted rank-3 fixing, randomized resampling), acceptance is
   decided here by evaluating every bad-event predicate on the completed
   assignment — no floating point involved. *)

module Event = Lll_prob.Event
module Assignment = Lll_prob.Assignment

let occurring_events instance (a : Assignment.t) =
  Array.to_list (Instance.events instance)
  |> List.filter_map (fun e -> if Event.holds e a then Some (Event.id e) else None)

let avoids_all instance (a : Assignment.t) =
  if not (Assignment.is_complete a) then invalid_arg "Verify.avoids_all: incomplete assignment";
  Array.for_all (fun e -> not (Event.holds e a)) (Instance.events instance)

let first_violated instance (a : Assignment.t) =
  Array.find_opt (fun e -> Event.holds e a) (Instance.events instance) |> Option.map Event.id

type result = { ok : bool; violated : int list }

let check instance a =
  let violated = occurring_events instance a in
  { ok = violated = []; violated }
