(* Exact verification of LLL solutions.

   Whatever numeric route produced an assignment (exact rank-2 fixing,
   float-assisted rank-3 fixing, randomized resampling), acceptance is
   decided here by evaluating every bad event on the completed
   assignment — no floating point involved. [Space.event_holds] consults
   the compiled satisfaction bitmap when one is live and falls back to
   the predicate closure otherwise; both answer from the same exact
   satisfying set. *)

module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment

let occurring_events instance (a : Assignment.t) =
  let space = Instance.space instance in
  Array.to_list (Instance.events instance)
  |> List.filter_map (fun e -> if Space.event_holds space e a then Some (Event.id e) else None)

let avoids_all instance (a : Assignment.t) =
  if not (Assignment.is_complete a) then invalid_arg "Verify.avoids_all: incomplete assignment";
  let space = Instance.space instance in
  Array.for_all (fun e -> not (Space.event_holds space e a)) (Instance.events instance)

let first_violated instance (a : Assignment.t) =
  let space = Instance.space instance in
  Array.find_opt (fun e -> Space.event_holds space e a) (Instance.events instance)
  |> Option.map Event.id

type result = { ok : bool; violated : int list }

let check instance a =
  let violated = occurring_events instance a in
  { ok = violated = []; violated }
