(** Textual serialization of LLL instances (exact: truth tables over
    event scopes, rational distributions). See the format description in
    the implementation; round trips preserve probabilities, scopes and
    bad sets verbatim. *)

exception Parse_error of { line : int; message : string }

val to_string : Instance.t -> string
(** @raise Invalid_argument if an event's scope table exceeds [2^20]
    entries. *)

val of_string : string -> Instance.t
(** @raise Parse_error on malformed input. *)

val save : string -> Instance.t -> unit
val load : string -> Instance.t
val write_instance : out_channel -> Instance.t -> unit
val read_instance : in_channel -> Instance.t

val bad_tuples : Lll_prob.Space.t -> Lll_prob.Event.t -> int list list
(** The value tuples (in scope order) on which the event occurs —
    enumerated exactly. *)

(** {1 v3 binary format}

    A {!Lll_graph.Serialize.Bin} container (magic, version, checksum,
    length-prefixed sections) holding the variable distributions, each
    event's satisfying row codes and weights verbatim, and the
    dependency graph's raw CSR columns. Loading rebuilds the instance
    without recompiling tables or re-enumerating dependency pairs — the
    fast path for repeated loads of large instances. Cross-conversion
    with the text format is lossless; a binary round trip solves
    identically to a text round trip (tested). Binary decoding raises
    {!Lll_graph.Serialize.Bin.Corrupt} on malformed input. *)

val to_binary_string : Instance.t -> string
val of_binary_string : string -> Instance.t
val save_binary : string -> Instance.t -> unit
val load_binary : string -> Instance.t

val is_binary : string -> bool
(** Does the blob (or a file's first bytes) carry the binary magic? *)

val of_any_string : string -> Instance.t
(** Dispatch on the magic: binary v3 or text v1/v2. *)

val load_any : string -> Instance.t
(** Load a file in either format (the CLI's default loader). *)
