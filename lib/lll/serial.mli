(** Textual serialization of LLL instances (exact: truth tables over
    event scopes, rational distributions). See the format description in
    the implementation; round trips preserve probabilities, scopes and
    bad sets verbatim. *)

exception Parse_error of { line : int; message : string }

val to_string : Instance.t -> string
(** @raise Invalid_argument if an event's scope table exceeds [2^20]
    entries. *)

val of_string : string -> Instance.t
(** @raise Parse_error on malformed input. *)

val save : string -> Instance.t -> unit
val load : string -> Instance.t
val write_instance : out_channel -> Instance.t -> unit
val read_instance : in_channel -> Instance.t

val bad_tuples : Lll_prob.Space.t -> Lll_prob.Event.t -> int list list
(** The value tuples (in scope order) on which the event occurs —
    enumerated exactly. *)

(** {1 v3 binary format}

    A {!Lll_graph.Serialize.Bin} container (magic, version, checksum,
    length-prefixed sections) holding the variable distributions, each
    event's satisfying row codes and weights verbatim, and the
    dependency graph's raw CSR columns. Loading rebuilds the instance
    without recompiling tables or re-enumerating dependency pairs — the
    fast path for repeated loads of large instances. Cross-conversion
    with the text format is lossless; a binary round trip solves
    identically to a text round trip (tested). Binary decoding raises
    {!Lll_graph.Serialize.Bin.Corrupt} on malformed input. *)

val to_binary_string : Instance.t -> string
val of_binary_string : string -> Instance.t

val of_binary_source : Lll_graph.Serialize.Bin.source -> Instance.t
(** Decode from any byte source (string window or mmap). The nested
    dependency-graph container decodes zero-copy out of the parent. *)

val save_binary : string -> Instance.t -> unit
val load_binary : string -> Instance.t

val load_binary_mmap : string -> Instance.t
(** Load a [.lllbin] container straight off a read-only file mapping:
    same checksum verification and structural validation as
    {!load_binary}, without copying the container into a heap string —
    the serving layer's cold-load path. *)

val binary_fingerprint : string -> string option
(** Cheap identity of a binary container file (kind, stored checksum,
    byte length — header only, no payload read). [None] when the file is
    missing or not a v3 container. Two files with equal fingerprints
    decode to identical instances up to checksum collision. *)

val is_binary : string -> bool
(** Does the blob (or a file's first bytes) carry the binary magic? *)

val of_any_string : string -> Instance.t
(** Dispatch on the magic: binary v3 or text v1/v2. *)

val load_any : string -> Instance.t
(** Load a file in either format (the CLI's default loader). *)
