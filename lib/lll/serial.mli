(** Textual serialization of LLL instances (exact: truth tables over
    event scopes, rational distributions). See the format description in
    the implementation; round trips preserve probabilities, scopes and
    bad sets verbatim. *)

exception Parse_error of { line : int; message : string }

val to_string : Instance.t -> string
(** @raise Invalid_argument if an event's scope table exceeds [2^20]
    entries. *)

val of_string : string -> Instance.t
(** @raise Parse_error on malformed input. *)

val save : string -> Instance.t -> unit
val load : string -> Instance.t
val write_instance : out_channel -> Instance.t -> unit
val read_instance : in_channel -> Instance.t

val bad_tuples : Lll_prob.Space.t -> Lll_prob.Event.t -> int list list
(** The value tuples (in scope order) on which the event occurs —
    enumerated exactly. *)
