(* Representable triples (Definition 3.3) and the geometry of Section 3.2.

   A triple [(a, b, c)] of non-negative reals is representable if it can be
   written as products [a = a1*a2], [b = b1*b3], [c = c2*c3] of values in
   [0, 2] satisfying the three edge constraints [a1 + b1 <= 2],
   [a2 + c2 <= 2], [b3 + c3 <= 2]. Lemma 3.5 characterises the set
   [S_rep] as [{ (a,b,c) | a + b <= 4, c <= f(a,b) }] with

     f(a,b) = 4 + (ab - 2a - 2b - sqrt(ab(4-a)(4-b))) / 2,

   and Lemma 3.6 shows [f] is convex, which makes [S_rep] "incurved"
   (Lemma 3.7) — the property that powers the Variable Fixing Lemma. *)

module Rat = Lll_num.Rat

(* ------------------------------------------------------------------ *)
(* The boundary surface f                                              *)
(* ------------------------------------------------------------------ *)

let f a b =
  if a < 0. || b < 0. || a +. b > 4. +. 1e-9 then invalid_arg "Srep.f: need a,b >= 0, a+b <= 4";
  let disc = Float.max 0. (a *. b *. (4. -. a) *. (4. -. b)) in
  4. +. (0.5 *. ((a *. b) -. (2. *. a) -. (2. *. b) -. sqrt disc))

(* Violation of the Lemma 3.5 constraints: non-positive iff (a,b,c) is in
   S_rep (up to rounding). Used by the fixer to pick the least-bad value;
   Lemma 3.2 guarantees some value has violation <= 0. *)
let violation (a, b, c) =
  if a < 0. || b < 0. || c < 0. then infinity
  else if a +. b > 4. then Float.max (a +. b -. 4.) (c -. 4.)
  else c -. f a b

(* THE float tolerance of the library (see the .mli). Every default
   boundary test at the float layer — [mem], [is_valid_decomposition],
   the fixers' [pstar_holds], [Srep_r.representable] — uses this one
   value; exact decisions go through [mem_rat] / [Verify] instead. *)
let default_eps = 1e-6

let mem ?(eps = default_eps) t = violation t <= eps

(* ------------------------------------------------------------------ *)
(* Exact membership on rationals                                       *)
(* ------------------------------------------------------------------ *)

(* c <= f(a,b)  <=>  s := 8 + ab - 2a - 2b - 2c >= 0  and
   s^2 >= ab(4-a)(4-b): square-root-free, hence decidable exactly. *)
let mem_rat (a, b, c) =
  let open Rat in
  let four = of_int 4 in
  sign a >= 0 && sign b >= 0 && sign c >= 0
  && leq (add a b) four
  &&
  let s =
    sub (add (of_int 8) (mul a b)) (add (add (mul two a) (mul two b)) (mul two c))
  in
  let k = mul (mul a b) (mul (sub four a) (sub four b)) in
  sign s >= 0 && geq (mul s s) k

(* ------------------------------------------------------------------ *)
(* Constructive decomposition (proof of Lemma 3.5)                     *)
(* ------------------------------------------------------------------ *)

type decomposition = { a1 : float; a2 : float; b1 : float; b3 : float; c2 : float; c3 : float }

let products d = (d.a1 *. d.a2, d.b1 *. d.b3, d.c2 *. d.c3)

let is_valid_decomposition ?(eps = default_eps) d =
  let in_range x = x >= -.eps && x <= 2. +. eps in
  in_range d.a1 && in_range d.a2 && in_range d.b1 && in_range d.b3 && in_range d.c2
  && in_range d.c3
  && d.a1 +. d.b1 <= 2. +. eps
  && d.a2 +. d.c2 <= 2. +. eps
  && d.b3 +. d.c3 <= 2. +. eps

let clamp lo hi x = Float.min hi (Float.max lo x)

(* c(x) = (2 - a/x)(2 - b/(2-x)) — the maximal c representable with
   [a1 = x] fixed (proof of Lemma 3.5). Unimodal on [a/2, 2 - b/2]. *)
let c_of_x ~a ~b x =
  if x <= 0. || x >= 2. then 0.
  else begin
    let c2 = 2. -. (a /. x) and c3 = 2. -. (b /. (2. -. x)) in
    if c2 < 0. || c3 < 0. then 0. else c2 *. c3
  end

(* Maximise the unimodal [c_of_x] by ternary search; robust for all
   [a, b > 0] including the [a = b] degeneracy of the closed-form critical
   point x1. *)
let best_x ~a ~b =
  let lo = ref (a /. 2.) and hi = ref (2. -. (b /. 2.)) in
  if !lo > !hi then begin
    let mid = 0.5 *. (!lo +. !hi) in
    lo := mid;
    hi := mid
  end;
  for _ = 1 to 200 do
    let m1 = !lo +. ((!hi -. !lo) /. 3.) and m2 = !hi -. ((!hi -. !lo) /. 3.) in
    if c_of_x ~a ~b m1 < c_of_x ~a ~b m2 then lo := m1 else hi := m2
  done;
  0.5 *. (!lo +. !hi)

(* Decompose a triple of S_rep into witness values. Accepts small
   positive violations (float noise) by clamping [c] to the attainable
   maximum. The returned products are [(a, b, min c (f a b))] up to float
   rounding. *)
let decompose (a, b, c) =
  let a = clamp 0. 4. a and b = clamp 0. 4. b and c = clamp 0. 4. c in
  let b = Float.min b (4. -. a) in
  if a = 0. && b = 0. then { a1 = 0.; a2 = 0.; b1 = 0.; b3 = 0.; c2 = 2.; c3 = c /. 2. }
  else if a = 0. then
    (* c <= f(0,b) = 4 - b; pick c3 = c/2 <= 2 - b/2 *)
    { a1 = 0.; a2 = 0.; b1 = 2.; b3 = b /. 2.; c2 = 2.; c3 = clamp 0. 2. (c /. 2.) }
  else if b = 0. then { a1 = 2.; a2 = a /. 2.; b1 = 0.; b3 = 0.; c2 = clamp 0. 2. (c /. 2.); c3 = 2. }
  else begin
    let x = best_x ~a ~b in
    let x = clamp 1e-12 (2. -. 1e-12) x in
    let a1 = x in
    let a2 = clamp 0. 2. (a /. x) in
    let b1 = 2. -. x in
    let b3 = clamp 0. 2. (b /. (2. -. x)) in
    let c2max = Float.max 0. (2. -. a2) and c3 = Float.max 0. (2. -. b3) in
    let cmax = c2max *. c3 in
    let c = Float.min c cmax in
    let c2 = if cmax > 0. then c2max *. (c /. cmax) else 0. in
    { a1; a2; b1; b3; c2; c3 }
  end

(* ------------------------------------------------------------------ *)
(* Hessian of f (appendix, proof of Lemma 3.6) — for the convexity      *)
(* experiment (F1) and property tests                                   *)
(* ------------------------------------------------------------------ *)

(* On the open domain {a, b > 0, a + b < 4}. *)
let hessian a b =
  if a <= 0. || b <= 0. || a +. b >= 4. then invalid_arg "Srep.hessian: open domain only";
  let aa = a *. (4. -. a) and bb = b *. (4. -. b) in
  let faa = 2. /. aa *. sqrt (bb /. aa) in
  let fbb = 2. /. bb *. sqrt (aa /. bb) in
  let fab = 0.5 -. ((2. -. a) *. (2. -. b) /. (2. *. sqrt (aa *. bb))) in
  (faa, fab, fbb)

let hessian_determinant a b =
  let faa, fab, fbb = hessian a b in
  (faa *. fbb) -. (fab *. fab)

(* Grid of the S_rep boundary surface for the Figure 1 reproduction:
   [(a, b, f a b)] over the triangle [a + b <= 4]. *)
let surface_grid ~steps =
  let pts = ref [] in
  for i = 0 to steps do
    for j = 0 to steps do
      let a = 4. *. float_of_int i /. float_of_int steps in
      let b = 4. *. float_of_int j /. float_of_int steps in
      if a +. b <= 4. +. 1e-12 then pts := (a, b, f a (Float.min b (4. -. a))) :: !pts
    done
  done;
  List.rev !pts

(* ------------------------------------------------------------------ *)
(* Random representable triples (for property tests)                    *)
(* ------------------------------------------------------------------ *)

(* Triples hugging the boundary surface: (a, b) uniform in the triangle,
   c = f(a,b) scaled by (1 ± eps). These are the hostile inputs for the
   fuzzer's geometry oracle — mem/decompose must agree right at the
   incurved surface, where float rounding has the least headroom. *)
let random_near_boundary ?(eps = 1e-3) rng =
  let a = Random.State.float rng 4.0 in
  let b = Random.State.float rng (4.0 -. a) in
  let scale = 1.0 +. Random.State.float rng (2.0 *. eps) -. eps in
  let c = Float.max 0. (f a b *. scale) in
  (a, b, c)

(* Sampling witness values directly guarantees representability. *)
let random_representable rng =
  let r2 () = Random.State.float rng 2.0 in
  let a1 = r2 () in
  let b1 = Random.State.float rng (2.0 -. a1) in
  let a2 = r2 () in
  let c2 = Random.State.float rng (2.0 -. a2) in
  let b3 = r2 () in
  let c3 = Random.State.float rng (2.0 -. b3) in
  (a1 *. a2, b1 *. b3, c2 *. c3)
