(* The sequential deterministic fixing process of Theorem 1.3: variables
   may affect up to three events, the criterion is [p * 2^d < 1].

   The process maintains property P* (Definition 3.1): a potential
   [phi_e^v in [0,2]] for every edge-endpoint of the dependency graph with
   [phi_e^u + phi_e^v <= 2] on each edge, such that every event's
   conditional probability is bounded by its initial probability times the
   product of its incident phi values.

   To fix a rank-3 variable on events {u, v, w} (pairwise adjacent via
   edges e = {u,v}, e' = {u,w}, e'' = {v,w}), form the representable
   triple (a, b, c) = (phi_e^u phi_e'^u, phi_e^v phi_e''^v,
   phi_e'^w phi_e''^w); the Variable Fixing Lemma (Lemma 3.2) — powered
   by the incurvedness of S_rep (Lemma 3.7) and the impossibility of all
   values being "evil" (Lemma 3.9) — guarantees a value y whose scaled
   triple (Inc(u,y)*a, Inc(v,y)*b, Inc(w,y)*c) is again in S_rep. We pick
   the value minimising the S_rep violation and write the constructive
   decomposition (proof of Lemma 3.5) back into phi.

   Inc ratios are exact rationals; only the phi potential uses floats
   (its optimal updates are irrational). Final solutions are always
   validated exactly against the event predicates (see Verify). *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Space = Lll_prob.Space
module Event = Lll_prob.Event
module Assignment = Lll_prob.Assignment
module Metrics = Lll_local.Metrics
module Par = Lll_local.Par

type step = {
  var : int;
  value : int;
  incs : (int * Rat.t) list;
  violation : float; (* S_rep violation of the chosen scaled triple *)
}

(* Value-selection policy: the S_rep-violation minimiser, or the first
   value whose scaled triple is (numerically) representable — Lemma 3.2
   guarantees one exists, so both are sound. For the ablation bench. *)
type policy = Min_violation | First_feasible

type t = {
  policy : policy;
  instance : Instance.t;
  tracker : Space.Cond_tracker.tracker; (* assignment + exact Pr[E_v | assignment] *)
  phi : float array array; (* edge id -> [| side of min endpoint; side of max |] *)
  initial_probs : Rat.t array;
  mutable steps : step list;
  mutable max_violation : float;
}

let create ?(policy = Min_violation) instance =
  if Instance.rank instance > 3 then invalid_arg "Fix_rank3.create: instance has rank > 3";
  let g = Instance.dep_graph instance in
  let initial_probs = Instance.initial_probs instance in
  {
    policy;
    instance;
    tracker = Space.Cond_tracker.create (Instance.space instance) (Instance.events instance);
    phi = Array.init (Graph.m g) (fun _ -> [| 1.0; 1.0 |]);
    initial_probs;
    steps = [];
    max_violation = neg_infinity;
  }

let assignment t = Space.Cond_tracker.assignment t.tracker
let steps t = List.rev t.steps
let instance t = t.instance
let max_violation t = t.max_violation

let side g e v =
  let u, _ = Graph.endpoints g e in
  if v = u then 0 else 1

let phi t e v = t.phi.(e).(side (Instance.dep_graph t.instance) e v)
let set_phi t e v x = t.phi.(e).(side (Instance.dep_graph t.instance) e v) <- x

(* The exact Inc ratios of event [ev] for the candidate values of [var],
   against the tracker's incrementally maintained current probability.
   One pass over the event's live table rows. *)
let inc_vector t ev ~var =
  let after, before = Space.Cond_tracker.prob_vector t.tracker ev ~var in
  Array.map (fun a -> if Rat.is_zero before then Rat.zero else Rat.div a before) after

let record t step =
  t.steps <- step :: t.steps;
  if step.violation > t.max_violation then t.max_violation <- step.violation

(* Fix a rank-2 variable: the weighted rank-2 statement of Section 3.1
   (linearity of expectation gives a value with
   [Inc_u * phi_e^u + Inc_v * phi_e^v <= phi_e^u + phi_e^v <= 2]). *)
let fix_rank2_var t vid u v ~arity =
  let g = Instance.dep_graph t.instance in
  let e = Graph.find_edge_exn g u v in
  let s = phi t e u and w = phi t e v in
  let incs_u = inc_vector t u ~var:vid in
  let incs_v = inc_vector t v ~var:vid in
  let score_of y = (Rat.to_float incs_u.(y) *. s) +. (Rat.to_float incs_v.(y) *. w) in
  let pick_min () =
    let best = ref None in
    for y = 0 to arity - 1 do
      let score = score_of y in
      match !best with
      | Some (_, score') when score' <= score -> ()
      | _ -> best := Some (y, score)
    done;
    Option.get !best
  in
  let y, score =
    match t.policy with
    | Min_violation -> pick_min ()
    | First_feasible ->
      let rec first y =
        if y >= arity then pick_min ()
        else if score_of y <= s +. w +. 1e-9 then (y, score_of y)
        else first (y + 1)
      in
      first 0
  in
  let iu = incs_u.(y) and iv = incs_v.(y) in
  Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
  set_phi t e u (Rat.to_float iu *. s);
  set_phi t e v (Rat.to_float iv *. w);
  { var = vid; value = y; incs = [ (u, iu); (v, iv) ]; violation = score -. (s +. w) }

(* Fix a rank-3 variable via the Variable Fixing Lemma. *)
let fix_rank3_var t vid u v w ~arity =
  let g = Instance.dep_graph t.instance in
  let e = Graph.find_edge_exn g u v in
  let e' = Graph.find_edge_exn g u w in
  let e'' = Graph.find_edge_exn g v w in
  let a = phi t e u *. phi t e' u in
  let b = phi t e v *. phi t e'' v in
  let c = phi t e' w *. phi t e'' w in
  let incs_u = inc_vector t u ~var:vid in
  let incs_v = inc_vector t v ~var:vid in
  let incs_w = inc_vector t w ~var:vid in
  let triple_of y =
    ( Rat.to_float incs_u.(y) *. a,
      Rat.to_float incs_v.(y) *. b,
      Rat.to_float incs_w.(y) *. c )
  in
  let pick_min () =
    let best = ref None in
    for y = 0 to arity - 1 do
      let triple = triple_of y in
      let viol = Srep.violation triple in
      match !best with
      | Some (_, _, viol') when viol' <= viol -> ()
      | _ -> best := Some (y, triple, viol)
    done;
    Option.get !best
  in
  let y, triple, viol =
    match t.policy with
    | Min_violation -> pick_min ()
    | First_feasible ->
      (* first numerically representable value; fall back to the
         minimiser if float noise leaves none *)
      let rec first y =
        if y >= arity then pick_min ()
        else begin
          let triple = triple_of y in
          let viol = Srep.violation triple in
          if viol <= 1e-9 then (y, triple, viol) else first (y + 1)
        end
      in
      first 0
  in
  let iu = incs_u.(y) and iv = incs_v.(y) and iw = incs_w.(y) in
  (* Lemma 3.2: some value is not evil, i.e. the minimum violation is
     non-positive (up to float rounding, which [Srep.decompose] clamps). *)
  let d = Srep.decompose triple in
  Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
  set_phi t e u d.a1;
  set_phi t e' u d.a2;
  set_phi t e v d.b1;
  set_phi t e'' v d.b3;
  set_phi t e' w d.c2;
  set_phi t e'' w d.c3;
  { var = vid; value = y; incs = [ (u, iu); (v, iv); (w, iw) ]; violation = viol }

(* All the work of a fixing step — tracker update, phi writes — without
   touching the shared step log: the unit [fix_class] fans out across
   domains. Safe to run concurrently for variables of one color class:
   their events (and hence their phi edges, tracker entries and scope
   variables) are pairwise disjoint — see DESIGN.md §11. *)
let fix_var_quiet t vid =
  if Assignment.is_fixed (assignment t) vid then invalid_arg "Fix_rank3.fix_var: already fixed";
  let space = Instance.space t.instance in
  let arity = Lll_prob.Var.arity (Space.var space vid) in
  match Array.to_list (Instance.events_of_var t.instance vid) with
  | [] ->
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:0;
    { var = vid; value = 0; incs = []; violation = neg_infinity }
  | [ u ] ->
    let incs_u = inc_vector t u ~var:vid in
    let best = ref None in
    for y = 0 to arity - 1 do
      let i = incs_u.(y) in
      match !best with
      | Some (_, i') when Rat.leq i' i -> ()
      | _ -> best := Some (y, i)
    done;
    let y, i = Option.get !best in
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
    { var = vid; value = y; incs = [ (u, i) ]; violation = Rat.to_float i -. 1.0 }
  | [ u; v ] -> fix_rank2_var t vid u v ~arity
  | [ u; v; w ] -> fix_rank3_var t vid u v w ~arity
  | _ -> assert false

let fix_var t vid = record t (fix_var_quiet t vid)

(* Fix the duty lists of one color class, fanned out across [domains]:
   member [i]'s steps land in a private buffer, then all buffers are
   folded into the shared log in member order — the same trace, floats
   and all, as the sequential member-by-member loop. *)
let fix_class ?domains t (duties : int list array) =
  let k = Array.length duties in
  if k > 0 then begin
    let buf = Array.make k [] in
    Par.parallel_for ?domains ~n:k (fun i ->
        buf.(i) <- List.map (fun vid -> fix_var_quiet t vid) duties.(i));
    Array.iter (fun steps -> List.iter (fun s -> record t s) steps) buf
  end

(* Property P* (Definition 3.1), with a float tolerance on the phi side:
   (1) phi values in [0,2] summing to <= 2 per edge, and (2) every event's
   exact conditional probability bounded by its initial probability times
   its phi product. *)
let pstar_holds ?(eps = Srep.default_eps) t =
  let g = Instance.dep_graph t.instance in
  let edges_ok =
    Array.for_all
      (fun pair ->
        pair.(0) >= -.eps && pair.(1) >= -.eps && pair.(0) <= 2. +. eps && pair.(1) <= 2. +. eps
        && pair.(0) +. pair.(1) <= 2. +. eps)
      t.phi
  in
  edges_ok
  && Array.for_all
       (fun e ->
         let v = Event.id e in
         let bound =
           List.fold_left
             (fun acc eid -> acc *. phi t eid v)
             (Rat.to_float t.initial_probs.(v))
             (Graph.incident_edges g v)
         in
         Rat.to_float (Space.prob (Instance.space t.instance) e ~fixed:(assignment t))
         <= bound +. eps)
       (Instance.events t.instance)

let run ?policy ?order ?(metrics = Metrics.disabled) instance =
  let t = create ?policy instance in
  let m = Instance.num_vars instance in
  let order = match order with Some o -> o | None -> Array.init m (fun i -> i) in
  if Metrics.enabled metrics then begin
    Metrics.set_phase metrics "fix-rank3";
    Array.iteri
      (fun i vid ->
        let t0 = Metrics.now_ns () in
        fix_var t vid;
        Metrics.record_step metrics ~round:i ~total:m ~wall_ns:(Metrics.now_ns () - t0)
          ~state:(assignment t))
      order
  end
  else Array.iter (fun vid -> fix_var t vid) order;
  t

let solve ?policy ?order ?metrics instance =
  let t = run ?policy ?order ?metrics instance in
  (assignment t, t)
