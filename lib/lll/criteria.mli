(** Exact checkers for the LLL criteria appearing in the paper's
    complexity landscape. *)

module Rat = Lll_num.Rat

type criterion =
  | Shattering  (** [ep(d+1) < 1] — Moser–Tardos. *)
  | Polynomial_epd2  (** [epd^2 < 1] — Chung–Pettie–Su. *)
  | Polynomial_d8  (** [pd^8 <= 1] — Ghaffari–Harris–Kuhn flavour. *)
  | Exponential  (** [p < 2^-d] — this paper's threshold criterion. *)

val all : criterion list
val name : criterion -> string

val holds : criterion -> p:Rat.t -> d:int -> bool
(** Exact; uses a rational upper bound for [e], so [true] is always
    sound. *)

val threshold_ratio : p:Rat.t -> d:int -> Rat.t
(** [p * 2^d]; the sharp threshold sits at exactly 1. *)

val asymmetric_holds : Instance.t -> x:Rat.t array -> bool
(** The general (asymmetric) LLL condition of Erdős–Lovász:
    [Pr[E_i] <= x_i * prod_{j ~ i} (1 - x_j)], checked exactly.
    @raise Invalid_argument unless every [x_i] is in (0,1). *)

val asymmetric_default_x : Instance.t -> Rat.t array
(** The standard choice [x_i = 1/(d+1)]. *)

val shearer_holds : Instance.t -> bool
(** Shearer's exact characterisation of the LLL-feasible region
    (alternating independence polynomial positive on every induced
    subgraph), evaluated exactly in [O(2^n)] — small instances only.
    @raise Invalid_argument beyond 20 events. *)

type report = { p : Rat.t; d : int; r : int; satisfied : (criterion * bool) list }

val evaluate : Instance.t -> report
val best_algorithm : report -> string
val pp_report : Format.formatter -> report -> unit
