(* Representable r-tuples — the geometry behind Conjecture 1.5.

   For rank r, the analogue of Definition 3.3 lives on the clique K_r: a
   tuple (t_1, ..., t_r) of non-negative reals is representable if there
   are values psi_e^i in [0,2] on the edge-endpoints of K_r with
   psi_e^i + psi_e^j <= 2 on every edge {i,j} and
   prod_{e ∋ i} psi_e^i >= t_i for every node i.

   For r = 3 this is exactly S_rep (Lemma 3.5 gives a closed form); the
   paper leaves r >= 4 open ("finding such an expression ... is the only
   challenge in obtaining full generality"). This module provides a
   numeric feasibility solver used by the experimental rank-r fixer:

   - WLOG every edge uses its full budget: psi_e^i = 2*alpha_e and
     psi_e^j = 2*(1 - alpha_e) for a split alpha_e in [0,1] (raising
     either side never hurts the product lower bounds);
   - in log space the slack of node i,
       slack_i = sum_{e ∋ i} ln(psi_e^i) - ln(t_i),
     is concave in alpha, so maximising the minimum slack is a concave
     max-min problem over a box of dimension r(r-1)/2 (= 3, 6, 10 for
     r = 3, 4, 5);
   - we solve it by coordinate balancing (each edge update equalises the
     slacks of its two endpoints in closed form — a Sinkhorn-style
     sweep) followed by local perturbation polishing. The result is
     validated against the exact r = 3 characterisation in the test
     suite.

   A tuple is accepted as representable when the achieved min slack is
   >= -eps; the fixer treats the achieved psi as its new potential. *)

let clique_edges r =
  let es = ref [] in
  for i = 0 to r - 1 do
    for j = i + 1 to r - 1 do
      es := (i, j) :: !es
    done
  done;
  Array.of_list (List.rev !es)

type solution = {
  min_slack : float;
      (* min over nodes of ln(product) - ln(target); >= 0 means feasible *)
  psi : (int * int * float * float) array;
      (* (i, j, psi at i, psi at j) for each clique edge *)
}

let alpha_min = 1e-9

(* slack of node i under splits [alpha], minus log-target [lt.(i)];
   infinite when the target is 0 *)
let slacks ~edges ~lt alpha r =
  let s = Array.make r 0.0 in
  Array.iteri
    (fun k (i, j) ->
      s.(i) <- s.(i) +. log (2. *. Float.max alpha_min alpha.(k));
      s.(j) <- s.(j) +. log (2. *. Float.max alpha_min (1. -. alpha.(k))))
    edges;
  Array.mapi (fun i si -> if lt.(i) = neg_infinity then infinity else si -. lt.(i)) s

let min_slack ~edges ~lt alpha r =
  Array.fold_left Float.min infinity (slacks ~edges ~lt alpha r)

(* Maximise the minimum slack over the splits. *)
let solve ?(sweeps = 300) ~targets () =
  let r = Array.length targets in
  if r < 2 then invalid_arg "Srep_r.solve: need r >= 2";
  Array.iter (fun t -> if t < 0. then invalid_arg "Srep_r.solve: negative target") targets;
  let edges = clique_edges r in
  let ne = Array.length edges in
  let lt = Array.map (fun t -> if t = 0. then neg_infinity else log t) targets in
  let alpha = Array.make ne 0.5 in
  (* coordinate balancing: set each split so the two endpoint slacks are
     equal (the closed-form optimum of the local two-slack min) *)
  for _ = 1 to sweeps do
    Array.iteri
      (fun k (i, j) ->
        let s = slacks ~edges ~lt alpha r in
        let ai = s.(i) -. log (2. *. Float.max alpha_min alpha.(k)) in
        let aj = s.(j) -. log (2. *. Float.max alpha_min (1. -. alpha.(k))) in
        let a' =
          if ai = infinity && aj = infinity then 0.5
          else if ai = infinity then alpha_min (* node i unconstrained: favour j *)
          else if aj = infinity then 1. -. alpha_min
          else begin
            (* balance: ai + ln(2a) = aj + ln(2(1-a)) *)
            let z = exp (aj -. ai) in
            z /. (1. +. z)
          end
        in
        alpha.(k) <- Float.min (1. -. alpha_min) (Float.max alpha_min a'))
      edges
  done;
  (* perturbation polishing for the nonsmooth max-min *)
  let best = Array.copy alpha in
  let best_val = ref (min_slack ~edges ~lt best r) in
  let rng = Random.State.make [| 0x5eed; r |] in
  let step = ref 0.05 in
  for _ = 1 to 400 do
    let cand = Array.map (fun a -> Float.min (1. -. alpha_min)
                              (Float.max alpha_min (a +. ((Random.State.float rng 2. -. 1.) *. !step))))
        best
    in
    let v = min_slack ~edges ~lt cand r in
    if v > !best_val then begin
      best_val := v;
      Array.blit cand 0 best 0 ne
    end
    else step := Float.max 1e-4 (!step *. 0.98)
  done;
  let psi =
    Array.mapi
      (fun k (i, j) -> (i, j, 2. *. best.(k), 2. *. (1. -. best.(k))))
      edges
  in
  { min_slack = !best_val; psi }

let representable ?(eps = Srep.default_eps) targets =
  (solve ~targets ()).min_slack >= -.eps

(* Feasibility margin: positive slack means strictly inside. *)
let margin targets = (solve ~targets ()).min_slack
