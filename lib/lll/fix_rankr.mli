(** EXPERIMENTAL generalised rank-r fixing — the computational companion
    to Conjecture 1.5.

    The natural generalisation of the paper's rank-3 process to
    variables affecting any number of events, with representability of
    the clique target tuple decided numerically ({!Srep_r}). There is no
    proven guarantee for rank [>= 4]; the harness (experiment T10)
    measures feasibility empirically, and solutions are only accepted
    after exact verification ({!Verify}). *)

module Rat = Lll_num.Rat
module Assignment = Lll_prob.Assignment

type step = {
  var : int;
  value : int;
  incs : (int * Rat.t) list;
  slack : float;  (** Achieved min slack; [>= 0] means P* was kept. *)
}

type t

val create : Instance.t -> t
val fix_var : t -> int -> unit

val fix_var_quiet : t -> int -> step
(** {!fix_var} without appending to the shared step log. *)

val fix_class : ?domains:int -> t -> int list array -> unit
(** Fix each member's duty list, members fanned out across [domains];
    sound only for one color class (disjoint state — DESIGN.md §11).
    Step log and slack aggregates end up in member order, bit-identical
    to the sequential loop. *)

val run : ?order:int array -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> t
val solve :
  ?order:int array -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> Assignment.t * t
val assignment : t -> Assignment.t
val steps : t -> step list
val instance : t -> Instance.t
val phi : t -> int -> int -> float

val min_slack : t -> float
(** The worst slack over all steps ([infinity] if no clique step ran);
    [>= 0] supports the conjecture on this run. *)

val infeasible_steps : t -> int
(** Number of steps whose best value was numerically infeasible. *)

val pstar_holds : ?eps:float -> t -> bool
(** [eps] defaults to {!Srep.default_eps}. *)
