(* LLL criteria from the paper's "criteria vs. time" landscape (Section 1).

   All checks are exact rational comparisons. Where the mathematical
   constant [e] appears we use a rational upper bound, so a criterion
   reported as satisfied is guaranteed to hold. *)

module Rat = Lll_num.Rat

(* 2.718281828459046 > e = 2.7182818284590452... *)
let e_upper = Rat.of_string "2718281828459046/1000000000000000"

type criterion =
  | Shattering (* e * p * (d+1) < 1 — Moser–Tardos [MT10], O(log^2 n) *)
  | Polynomial_epd2 (* e * p * d^2 < 1 — Chung–Pettie–Su [CPS17] *)
  | Polynomial_d8 (* p * d^8 <= 1 — Ghaffari–Harris–Kuhn [GHK18] flavour *)
  | Exponential (* p < 2^-d — this paper's threshold criterion *)

let all = [ Shattering; Polynomial_epd2; Polynomial_d8; Exponential ]

let name = function
  | Shattering -> "ep(d+1) < 1"
  | Polynomial_epd2 -> "epd^2 < 1"
  | Polynomial_d8 -> "pd^8 <= 1"
  | Exponential -> "p < 2^-d"

let holds criterion ~p ~d =
  if Rat.sign p < 0 || d < 0 then invalid_arg "Criteria.holds: need p >= 0, d >= 0";
  match criterion with
  | Shattering -> Rat.lt (Rat.mul e_upper (Rat.mul p (Rat.of_int (d + 1)))) Rat.one
  | Polynomial_epd2 -> Rat.lt (Rat.mul e_upper (Rat.mul p (Rat.of_int (d * d)))) Rat.one
  | Polynomial_d8 -> Rat.leq (Rat.mul p (Rat.pow (Rat.of_int d) 8)) Rat.one
  | Exponential -> Rat.lt p (Rat.pow2 (-d))

(* Distance to the exponential threshold: [p * 2^d]; the paper's phase
   transition sits at value exactly 1. *)
let threshold_ratio ~p ~d = Rat.mul p (Rat.pow2 d)

(* The general asymmetric LLL condition [EL74]: given x_i in (0,1) per
   event, require Pr[E_i] <= x_i * prod_{j ~ i} (1 - x_j). Exact. *)
let asymmetric_holds instance ~x =
  let g = Instance.dep_graph instance in
  let n = Instance.num_events instance in
  if Array.length x <> n then invalid_arg "Criteria.asymmetric_holds: |x| mismatch";
  Array.iter
    (fun xi ->
      if Rat.sign xi <= 0 || Rat.geq xi Rat.one then
        invalid_arg "Criteria.asymmetric_holds: need 0 < x_i < 1")
    x;
  let probs = Instance.initial_probs instance in
  let ok = ref true in
  for i = 0 to n - 1 do
    let bound =
      List.fold_left
        (fun acc j -> Rat.mul acc (Rat.sub Rat.one x.(j)))
        x.(i)
        (Lll_graph.Graph.neighbors g i)
    in
    if Rat.gt probs.(i) bound then ok := false
  done;
  !ok

(* Default weights x_i = 1/(d+1): makes the asymmetric condition
   essentially the symmetric shattering criterion. *)
let asymmetric_default_x instance =
  let d = Instance.dependency_degree instance in
  Array.make (Instance.num_events instance) (Rat.of_ints 1 (d + 1))

(* Shearer's exact criterion [Shearer 1985]: the probability vector p is
   in the LLL-feasible region for dependency graph G iff the alternating
   independence polynomial

     Q(H) = sum over independent S of H of (-1)^|S| prod_{i in S} p_i

   is strictly positive for EVERY induced subgraph H of G. We evaluate Q
   on all 2^n node subsets with the classic recurrence
   Q(M) = Q(M - v) - p_v * Q(M \ N[v]) (v the lowest node of M), exactly,
   in O(2^n) rational operations — exponential by nature, intended for
   small instances (n <= ~20). This is the outer boundary every LLL
   criterion (including the paper's p < 2^-d) lies strictly inside. *)
let shearer_holds instance =
  let g = Instance.dep_graph instance in
  let n = Instance.num_events instance in
  if n > 20 then invalid_arg "Criteria.shearer_holds: too many events (exponential check)";
  let probs = Instance.initial_probs instance in
  let closed_nbhd =
    Array.init n (fun v ->
        List.fold_left (fun acc u -> acc lor (1 lsl u)) (1 lsl v) (Lll_graph.Graph.neighbors g v))
  in
  let q = Array.make (1 lsl n) Rat.one in
  let ok = ref true in
  for mask = 1 to (1 lsl n) - 1 do
    (* lowest set bit *)
    let v =
      let rec go i = if mask land (1 lsl i) <> 0 then i else go (i + 1) in
      go 0
    in
    let without_v = mask land lnot (1 lsl v) in
    let without_nbhd = mask land lnot closed_nbhd.(v) in
    q.(mask) <- Rat.sub q.(without_v) (Rat.mul probs.(v) q.(without_nbhd));
    if Rat.sign q.(mask) <= 0 then ok := false
  done;
  !ok

type report = { p : Rat.t; d : int; r : int; satisfied : (criterion * bool) list }

let evaluate instance =
  let p = Instance.max_prob instance in
  let d = Instance.dependency_degree instance in
  let r = Instance.rank instance in
  { p; d; r; satisfied = List.map (fun c -> (c, holds c ~p ~d)) all }

(* Which algorithm of the landscape applies, preferring the fastest. *)
let best_algorithm report =
  let ok c = List.assoc c report.satisfied in
  if ok Exponential && report.r <= 3 then
    Printf.sprintf "deterministic fixing, O(d^%d + log* n) rounds (this paper)"
      (if report.r <= 2 then 1 else 2)
  else if ok Polynomial_d8 then "GHK18 randomized, 2^o(sqrt(log log n)) rounds"
  else if ok Polynomial_epd2 then "CPS17 randomized, O(log_{1/epd^2} n) rounds"
  else if ok Shattering then "Moser-Tardos randomized, O(log^2 n) rounds"
  else "no criterion satisfied; LLL may not apply"

let pp_report fmt report =
  Format.fprintf fmt "p=%s d=%d r=%d p*2^d=%s@." (Rat.to_string report.p) report.d report.r
    (Rat.to_string (threshold_ratio ~p:report.p ~d:report.d));
  List.iter
    (fun (c, b) -> Format.fprintf fmt "  %-12s : %s@." (name c) (if b then "holds" else "fails"))
    report.satisfied
