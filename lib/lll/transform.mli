(** Instance transformations — the paper's footnote-3 reformulation:
    merge all variables affecting the same event set into one product
    variable (mixed radix, probabilities multiplied), yielding the
    "one variable per hyperedge" normal form of Sections 2–3 without
    changing any event's distribution, the dependency graph, or [d]. *)

module Assignment = Lll_prob.Assignment

type merged = {
  instance : Instance.t;  (** The reformulated instance. *)
  groups : int array array;  (** Merged var id to original var ids. *)
  group_of : int array;  (** Original var id to merged var id. *)
  arities : int array array;  (** Original arities per group. *)
}

val merge_shared_variables : Instance.t -> merged
(** @raise Invalid_argument if a merged variable would exceed [2^20]
    values. *)

val decode : merged -> Assignment.t -> Assignment.t
(** Map a (possibly partial) merged assignment back to the original
    variables; event outcomes are preserved exactly (tested). *)
