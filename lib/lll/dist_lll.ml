(* A genuinely message-passing distributed LLL solver (Corollary 1.4).

   [Distributed.solve_rank3] executes the paper's schedule but drives a
   sequential fixer, only *accounting* rounds. This module runs the whole
   algorithm as a LOCAL protocol on the runtime: every node is an event
   of the instance; what a node knows, it learned from messages (here:
   full-information rounds, which LOCAL permits since messages are
   unbounded).

   Node state:
   - the values of all fixed variables it has heard of;
   - versioned copies of the potential [phi] for the dependency edges it
     cares about (its own incident edges and edges between its
     neighbors — the clique edges of its variables);
   - its 2-hop color, computed distributedly beforehand.

   Knowledge spreads by gossip: each round a node merges its neighbors'
   states, keeping the freshest version of each phi entry and the union
   of fixed values. A node that fixes a variable needs radius-2-fresh
   information (the conditional probability of a neighboring event
   depends on variables owned inside that event's own neighborhood), so
   the schedule allots THREE rounds per color class: fix, then two
   propagation rounds. Total: O(d^2 + log* n) rounds, the corollary's
   bound with our coloring substitution.

   Determinism: class-c owners act on disjoint events and disjoint phi
   edges (they are >= 3 apart), and each performs exactly the float
   operations of the sequential rank-3 fixer, in the same per-variable
   order — so the final assignment must agree BIT FOR BIT with
   [Distributed.solve_rank3] (the test suite asserts this). *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Network = Lll_local.Network
module Runtime = Lll_local.Runtime
module Flat_state = Lll_local.Flat_state
module Dist_coloring = Lll_local.Dist_coloring
module Metrics = Lll_local.Metrics
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment

module IntMap = Map.Make (Int)

type state = {
  known : int IntMap.t; (* variable id -> fixed value *)
  phi : ((float * float) * int) IntMap.t; (* edge id -> ((side min, side max), version) *)
}

(* merge neighbor knowledge: union of fixed values, freshest phi *)
let merge s s' =
  {
    known = IntMap.union (fun _ a _ -> Some a) s.known s'.known;
    phi =
      IntMap.union
        (fun _ ((_, v1) as a) ((_, v2) as b) -> Some (if v1 >= v2 then a else b))
        s.phi s'.phi;
  }

let phi_side g e v ((lo, hi), _) =
  let u, _ = Graph.endpoints g e in
  if v = u then lo else hi

(* Fix one variable exactly as Fix_rank3 does, against local knowledge.
   Returns the chosen value and the phi updates (edge -> both sides). *)
let fix_one instance g st ~version vid =
  let space = Instance.space instance in
  let arity = Lll_prob.Var.arity (Space.var space vid) in
  let fixed = Assignment.empty (Instance.num_vars instance) in
  IntMap.iter (fun v x -> Assignment.set_inplace fixed v x) st.known;
  let get_phi e v = phi_side g e v (IntMap.find e st.phi) in
  let vector ev =
    let after, before =
      Space.prob_vector space (Instance.event instance ev) ~fixed ~var:vid
    in
    let incs =
      Array.map (fun a -> if Rat.is_zero before then Rat.zero else Rat.div a before) after
    in
    incs
  in
  match Array.to_list (Instance.events_of_var instance vid) with
  | [] -> (0, [])
  | [ u ] ->
    let incs = vector u in
    let best = ref None in
    for y = 0 to arity - 1 do
      match !best with
      | Some (_, i') when Rat.leq i' incs.(y) -> ()
      | _ -> best := Some (y, incs.(y))
    done;
    (fst (Option.get !best), [])
  | [ u; v ] ->
    let e = Graph.find_edge_exn g u v in
    let s = get_phi e u and w = get_phi e v in
    let incs_u = vector u and incs_v = vector v in
    let best = ref None in
    for y = 0 to arity - 1 do
      let score = (Rat.to_float incs_u.(y) *. s) +. (Rat.to_float incs_v.(y) *. w) in
      match !best with
      | Some (_, score') when score' <= score -> ()
      | _ -> best := Some (y, score)
    done;
    let y, _ = Option.get !best in
    let up_u = Rat.to_float incs_u.(y) *. s and up_v = Rat.to_float incs_v.(y) *. w in
    let u0, _ = Graph.endpoints g e in
    let pair = if u = u0 then (up_u, up_v) else (up_v, up_u) in
    (y, [ (e, (pair, version)) ])
  | [ u; v; w ] ->
    let e = Graph.find_edge_exn g u v in
    let e' = Graph.find_edge_exn g u w in
    let e'' = Graph.find_edge_exn g v w in
    let a = get_phi e u *. get_phi e' u in
    let b = get_phi e v *. get_phi e'' v in
    let c = get_phi e' w *. get_phi e'' w in
    let incs_u = vector u and incs_v = vector v and incs_w = vector w in
    let best = ref None in
    for y = 0 to arity - 1 do
      let triple =
        ( Rat.to_float incs_u.(y) *. a,
          Rat.to_float incs_v.(y) *. b,
          Rat.to_float incs_w.(y) *. c )
      in
      let viol = Srep.violation triple in
      match !best with
      | Some (_, _, viol') when viol' <= viol -> ()
      | _ -> best := Some (y, triple, viol)
    done;
    let y, triple, _ = Option.get !best in
    let d = Srep.decompose triple in
    let pair edge ~at ~value_at ~other ~value_other =
      let u0, _ = Graph.endpoints g edge in
      if at = u0 then (value_at, value_other)
      else begin
        assert (other = u0);
        (value_other, value_at)
      end
    in
    ( y,
      [
        (e, (pair e ~at:u ~value_at:d.Srep.a1 ~other:v ~value_other:d.Srep.b1, version));
        (e', (pair e' ~at:u ~value_at:d.Srep.a2 ~other:w ~value_other:d.Srep.c2, version));
        (e'', (pair e'' ~at:v ~value_at:d.Srep.b3 ~other:w ~value_other:d.Srep.c3, version));
      ] )
  | _ -> invalid_arg "Dist_lll: rank > 3"

type result = {
  assignment : Assignment.t;
  ok : bool;
  rounds : int;
  coloring_rounds : int;
  sweep_rounds : int;
  colors : int;
}

(* The generic gossiping sweep: [classes] color classes, three rounds per
   class (fix + two propagation rounds for radius-2 freshness);
   [duty me cls] lists the variables node [me] must fix in class [cls],
   in order. Returns the merged assignment and the sweep round count.

   Runs on the flat engine with a payload-only column (the state is a
   pair of persistent maps — genuinely heap-shaped, so it takes the
   payload column rather than int/float fields); [~engine:`Boxed]
   selects the retired boxed engine for ablation runs. Both paths merge
   neighbors in ascending CSR order and fix duties in list order, so
   they agree bit for bit. *)
let run_sweep ?(engine = `Flat) ?domains ?(metrics = Metrics.disabled) instance g net ~classes
    ~duty =
  let init v =
    (* phi entries for my incident edges plus the edges between my
       neighbors (the clique edges of my variables), straight off the
       CSR slices — no intermediate lists *)
    let phi = ref IntMap.empty in
    let add e = phi := IntMap.add e ((1.0, 1.0), 0) !phi in
    Graph.iter_adj g v (fun _ e -> add e);
    Graph.iter_adj g v (fun u _ ->
        Graph.iter_adj g v (fun w _ ->
            if u < w then match Graph.find_edge g u w with Some e -> add e | None -> ()));
    { known = IntMap.empty; phi = !phi }
  in
  let total_rounds = 3 * classes in
  let apply_duty ~me ~round s =
    let cls = round / 3 and phase = round mod 3 in
    if phase <> 0 then s
    else
      List.fold_left
        (fun st vid ->
          if IntMap.mem vid st.known then st
          else begin
            let value, phi_updates = fix_one instance g st ~version:(cls + 1) vid in
            {
              known = IntMap.add vid value st.known;
              phi =
                List.fold_left (fun acc (e, entry) -> IntMap.add e entry acc) st.phi phi_updates;
            }
          end)
        s (duty ~me ~cls)
  in
  if total_rounds = 0 then (Assignment.empty (Instance.num_vars instance), 0)
  else begin
    Metrics.set_phase metrics "sweep";
    let states, rounds =
      match engine with
      | `Flat ->
        let state = Flat_state.create ~n:(Network.n net) ~payload:init () in
        let step ~round ~me ~prev ~cur ~nbrs =
          let col = Flat_state.payload_column prev in
          let s = Array.fold_left (fun acc u -> merge acc col.(u)) col.(me) nbrs in
          Flat_state.set_payload cur me (apply_duty ~me ~round s);
          round + 1 >= total_rounds
        in
        let st, stats = Runtime.run_flat ?domains ~metrics net ~state ~step in
        (Flat_state.payload_column st, stats.Runtime.rounds)
      | `Boxed ->
        let step ~round ~me s nbrs =
          let s = List.fold_left (fun acc (_, s') -> merge acc s') s nbrs in
          (apply_duty ~me ~round s, round + 1 >= total_rounds)
        in
        let states, stats = Runtime.run_full_info_boxed ?domains ~metrics net ~init ~step in
        (states, stats.Runtime.rounds)
    in
    let assignment = Assignment.empty (Instance.num_vars instance) in
    Array.iter
      (fun s -> IntMap.iter (fun vid value -> Assignment.set_inplace assignment vid value) s.known)
      states;
    (assignment, rounds)
  end

(* Corollary 1.2 as a message-passing protocol: edge-color the dependency
   graph (variables of rank 2 live on its edges; the smaller endpoint of
   an edge fixes its variables in the edge's class round). Rank <= 1
   variables are fixed by their event in an extra leading class. *)
let solve_rank2 ?engine ?domains ?(metrics = Metrics.disabled) instance =
  if Instance.rank instance > 2 then invalid_arg "Dist_lll.solve_rank2: instance has rank > 2";
  let g = Instance.dep_graph instance in
  let n = Graph.n g in
  if n = 0 then
    {
      assignment = Assignment.empty (Instance.num_vars instance);
      ok = true;
      rounds = 0;
      coloring_rounds = 0;
      sweep_rounds = 0;
      colors = 0;
    }
  else begin
    let net = Network.create g in
    let lg = Graph.line_graph g in
    Metrics.set_phase metrics "edge-coloring";
    let ecolors, coloring_rounds =
      if Graph.m g = 0 then ([||], 0) else Dist_coloring.color ?domains ~metrics (Network.create lg)
    in
    let colors = Array.fold_left (fun acc c -> max acc (c + 1)) 0 ecolors in
    (* duty: class 0 = rank <= 1 variables at their owner; class 1+c =
       edge color class c at each edge's smaller endpoint *)
    let small = Array.make n [] in
    let by_edge_owner = Array.make n [] in
    let free = ref [] in
    for vid = Instance.num_vars instance - 1 downto 0 do
      match Array.to_list (Instance.events_of_var instance vid) with
      | [] -> free := vid :: !free
      | [ u ] -> small.(u) <- vid :: small.(u)
      | [ u; v ] ->
        let e = Graph.find_edge_exn g u v in
        by_edge_owner.(min u v) <- (ecolors.(e), vid) :: by_edge_owner.(min u v)
      | _ -> assert false
    done;
    let duty ~me ~cls =
      if cls = 0 then small.(me)
      else List.filter_map (fun (c, vid) -> if c = cls - 1 then Some vid else None) by_edge_owner.(me)
    in
    let assignment, sweep_rounds =
      run_sweep ?engine ?domains ~metrics instance g net ~classes:(colors + 1) ~duty
    in
    List.iter (fun vid -> Assignment.set_inplace assignment vid 0) !free;
    let ok = Assignment.is_complete assignment && Verify.avoids_all instance assignment in
    { assignment; ok; rounds = coloring_rounds + sweep_rounds; coloring_rounds; sweep_rounds; colors }
  end

let solve ?engine ?domains ?(metrics = Metrics.disabled) instance =
  if Instance.rank instance > 3 then invalid_arg "Dist_lll.solve: instance has rank > 3";
  let g = Instance.dep_graph instance in
  let n = Graph.n g in
  if n = 0 then
    {
      assignment = Assignment.empty (Instance.num_vars instance);
      ok = true;
      rounds = 0;
      coloring_rounds = 0;
      sweep_rounds = 0;
      colors = 0;
    }
  else begin
    let net = Network.create g in
    (* phase 1: distributed 2-hop coloring *)
    Metrics.set_phase metrics "two-hop-coloring";
    let vcolors, coloring_rounds = Dist_coloring.two_hop_color ?domains ~metrics net in
    let colors = Array.fold_left (fun acc c -> max acc (c + 1)) 0 vcolors in
    (* ownership: a variable belongs to its smallest event *)
    let owned = Array.make n [] in
    let free_vars = ref [] in
    for vid = Instance.num_vars instance - 1 downto 0 do
      match Instance.events_of_var instance vid with
      | [||] -> free_vars := vid :: !free_vars
      | evs -> owned.(evs.(0)) <- vid :: owned.(evs.(0))
    done;
    (* phase 2: the gossiping sweep, three rounds per class *)
    let duty ~me ~cls = if vcolors.(me) = cls then owned.(me) else [] in
    let assignment, sweep_rounds =
      run_sweep ?engine ?domains ~metrics instance g net ~classes:colors ~duty
    in
    List.iter (fun vid -> Assignment.set_inplace assignment vid 0) !free_vars;
    let ok = Assignment.is_complete assignment && Verify.avoids_all instance assignment in
    { assignment; ok; rounds = coloring_rounds + sweep_rounds; coloring_rounds; sweep_rounds; colors }
  end
