(** Conditional-expectations derandomization under the union-bound
    criterion [sum_i Pr[E_i] < 1] — the global baseline the paper's
    introduction contrasts the (local) LLL against. Exact rational
    estimator. *)

module Rat = Lll_num.Rat
module Assignment = Lll_prob.Assignment

val criterion_holds : Instance.t -> bool
(** Exact check of [sum_i Pr[E_i] < 1]. *)

val solve :
  ?order:int array -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> Assignment.t * Rat.t
(** Fix every variable without ever increasing the estimator
    [Phi = sum_i Pr[E_i | theta]]; returns the assignment and the final
    (exact) [Phi]. If {!criterion_holds}, the assignment provably avoids
    all bad events. *)
