(* The unified solver engine (see the .mli).

   Engines are adapted behind two small drivers: [seq_driver] wraps the
   sequential fixing processes (one variable per step, per-step metrics
   in the LOCAL runtime's round-record shape) and [oneshot] wraps the
   engines that only exist as complete runs (Moser-Tardos, the
   distributed drivers, conditional expectations). The specialized
   modules keep their full APIs; this module is the single point where
   selection, tracing, metrics and the verification post-condition
   live. *)

module Rat = Lll_num.Rat
module Assignment = Lll_prob.Assignment
module Space = Lll_prob.Space
module Metrics = Lll_local.Metrics

type step = {
  var : int;
  value : int;
  incs : (int * Rat.t) list;
  srep_violation : float option;
}

type caps = {
  max_rank : int option;
  exact : bool;
  distributed : bool;
  randomized : bool;
  claims_pstar : bool;
}

let pp_caps fmt c =
  Format.fprintf fmt "%s %s %s %s%s"
    (match c.max_rank with Some r -> Printf.sprintf "rank<=%d" r | None -> "rank-any")
    (if c.exact then "exact" else "float")
    (if c.distributed then "distributed" else "sequential")
    (if c.randomized then "rand" else "det")
    (if c.claims_pstar then " P*" else "")

type params = {
  seed : int;
  order : int array option;
  domains : int option;
  metrics : Metrics.sink;
  prob_backend : Space.backend option;
}

let default_params =
  { seed = 1; order = None; domains = None; metrics = Metrics.disabled; prob_backend = None }

type outcome = {
  assignment : Assignment.t;
  trace : step list;
  rounds : int option;
  pstar : bool option;
  max_violation : float option;
  detail : (string * string) list;
}

type report = { solver : string; outcome : outcome; verify : Verify.result; ok : bool }

let pp_report fmt r =
  Format.fprintf fmt "%s: %s" r.solver (if r.ok then "ok" else "FAILED");
  (match r.outcome.rounds with
  | Some k -> Format.fprintf fmt ", %d LOCAL rounds" k
  | None -> ());
  (match r.outcome.pstar with Some b -> Format.fprintf fmt ", P* %b" b | None -> ());
  (match r.outcome.max_violation with
  | Some v when v > neg_infinity -> Format.fprintf fmt ", max violation %.2e" v
  | _ -> ());
  if not r.verify.Verify.ok then
    Format.fprintf fmt ", violated [%s]"
      (String.concat ";" (List.map string_of_int r.verify.Verify.violated));
  List.iter (fun (k, v) -> Format.fprintf fmt ", %s=%s" k v) r.outcome.detail

type impl = params -> Instance.t -> driver

and driver = {
  advance : unit -> bool;
  peek_assignment : unit -> Assignment.t;
  peek_trace : unit -> step list;
  finish : unit -> outcome;
}

type t = {
  key : string;
  doc : string;
  caps : caps;
  guarantee : Instance.t -> bool;
  impl : impl;
}

let name t = t.key
let doc t = t.doc
let caps t = t.caps

let applicable t inst =
  match t.caps.max_rank with None -> true | Some r -> Instance.rank inst <= r

let guarantees t inst = applicable t inst && t.guarantee inst

(* ---- criteria shorthands (guarantee predicates) ---- *)

let exponential inst =
  Criteria.holds Criteria.Exponential ~p:(Instance.max_prob inst)
    ~d:(Instance.dependency_degree inst)

let shattering inst =
  Criteria.holds Criteria.Shattering ~p:(Instance.max_prob inst)
    ~d:(Instance.dependency_degree inst)

(* ---- registry ---- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let order_of_registration : t list ref = ref []

let register ~name ~doc ~caps ?(guarantees = exponential) impl =
  if Hashtbl.mem registry name then invalid_arg ("Solver.register: duplicate engine " ^ name);
  let t = { key = name; doc; caps; guarantee = guarantees; impl } in
  Hashtbl.replace registry name t;
  order_of_registration := t :: !order_of_registration;
  t

let find key = Hashtbl.find_opt registry key
let find_exn key = match find key with Some t -> t | None -> raise Not_found
let all () = List.rev !order_of_registration
let names () = List.map name (all ())
let applicable_to inst = List.filter (fun t -> applicable t inst) (all ())

(* ---- sessions ---- *)

type session = {
  sdriver : driver;
  sink : Metrics.sink;
  mutable exhausted : bool;
  mutable summary : outcome option;
}

let create ?(params = default_params) t inst =
  if not (applicable t inst) then
    invalid_arg
      (Printf.sprintf "Solver.create: engine %s supports rank <= %d, instance has rank %d"
         t.key
         (Option.value t.caps.max_rank ~default:max_int)
         (Instance.rank inst));
  (* the backend choice is global: it selects how Space answers
     probability queries for every solver created after this point *)
  Option.iter Space.set_backend params.prob_backend;
  { sdriver = t.impl params inst; sink = params.metrics; exhausted = false; summary = None }

let step s =
  if s.exhausted then false
  else begin
    let more = s.sdriver.advance () in
    if not more then s.exhausted <- true;
    more
  end

let finished s = s.exhausted
let assignment s = s.sdriver.peek_assignment ()
let trace s = s.sdriver.peek_trace ()
let metrics s = Metrics.records s.sink

let outcome s =
  match s.summary with
  | Some o -> o
  | None ->
    let o = s.sdriver.finish () in
    s.exhausted <- true;
    s.summary <- Some o;
    o

let solve ?params t inst =
  let s = create ?params t inst in
  let o = outcome s in
  let verify = Verify.check inst o.assignment in
  let ok = verify.Verify.ok && match o.pstar with Some false -> false | _ -> true in
  { solver = t.key; outcome = o; verify; ok }

let solve_by_name ?params key inst = solve ?params (find_exn key) inst

(* ------------------------------------------------------------------ *)
(* Engine adapters                                                     *)
(* ------------------------------------------------------------------ *)

(* A sequential fixing process: one variable per [advance], per-step
   metrics records shaped like the runtime's round records. *)
let seq_driver ~phase ~(fix : int -> unit) ~(get_assignment : unit -> Assignment.t)
    ~(get_trace : unit -> step list) ~(summarise : unit -> outcome) params inst =
  let n = Instance.num_vars inst in
  let order = match params.order with Some o -> o | None -> Array.init n (fun i -> i) in
  let len = Array.length order in
  let metrics = params.metrics in
  if Metrics.enabled metrics then Metrics.set_phase metrics phase;
  let pos = ref 0 in
  let advance () =
    if !pos >= len then false
    else begin
      let i = !pos in
      let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
      fix order.(i);
      if Metrics.enabled metrics then
        Metrics.record_step metrics ~round:i ~total:len ~wall_ns:(Metrics.now_ns () - t0)
          ~state:(get_assignment ());
      incr pos;
      !pos < len
    end
  in
  {
    advance;
    peek_assignment = get_assignment;
    peek_trace = get_trace;
    finish =
      (fun () ->
        while advance () do
          ()
        done;
        summarise ());
  }

(* An engine that only exists as a complete run: the single [advance]
   performs it; the outcome is memoised. *)
let oneshot run_fn =
  let memo = ref None in
  let force () =
    match !memo with
    | Some o -> o
    | None ->
      let o = run_fn () in
      memo := Some o;
      o
  in
  {
    advance = (fun () -> ignore (force ()); false);
    peek_assignment = (fun () -> (force ()).assignment);
    peek_trace = (fun () -> (force ()).trace);
    finish = force;
  }

let fix2_impl policy params inst =
  let t = Fix_rank2.create ~policy inst in
  let get_trace () =
    List.map
      (fun (s : Fix_rank2.step) ->
        { var = s.var; value = s.value; incs = s.incs; srep_violation = None })
      (Fix_rank2.steps t)
  in
  seq_driver ~phase:"fix-rank2"
    ~fix:(Fix_rank2.fix_var t)
    ~get_assignment:(fun () -> Fix_rank2.assignment t)
    ~get_trace
    ~summarise:(fun () ->
      (* worst certificate headroom (budget - score) over the run: how
         close the adversary got to the proof's bound *)
      let headroom =
        List.fold_left
          (fun acc (s : Fix_rank2.step) -> Float.min acc (Rat.to_float (Rat.sub s.budget s.score)))
          infinity (Fix_rank2.steps t)
      in
      {
        assignment = Fix_rank2.assignment t;
        trace = get_trace ();
        rounds = None;
        pstar = Some (Fix_rank2.pstar_holds t);
        max_violation = None;
        detail =
          (if headroom = infinity then []
           else [ ("worst_headroom", Printf.sprintf "%.6f" headroom) ]);
      })
    params inst

let fix3_impl policy params inst =
  let t = Fix_rank3.create ~policy inst in
  let get_trace () =
    List.map
      (fun (s : Fix_rank3.step) ->
        { var = s.var; value = s.value; incs = s.incs; srep_violation = Some s.violation })
      (Fix_rank3.steps t)
  in
  seq_driver ~phase:"fix-rank3"
    ~fix:(Fix_rank3.fix_var t)
    ~get_assignment:(fun () -> Fix_rank3.assignment t)
    ~get_trace
    ~summarise:(fun () ->
      {
        assignment = Fix_rank3.assignment t;
        trace = get_trace ();
        rounds = None;
        pstar = Some (Fix_rank3.pstar_holds t);
        max_violation = Some (Fix_rank3.max_violation t);
        detail = [];
      })
    params inst

let fix3_exact_impl params inst =
  let t = Fix_rank3_exact.create inst in
  seq_driver ~phase:"fix-rank3-exact"
    ~fix:(Fix_rank3_exact.fix_var t)
    ~get_assignment:(fun () -> Fix_rank3_exact.assignment t)
    ~get_trace:(fun () -> [])
    ~summarise:(fun () ->
      {
        assignment = Fix_rank3_exact.assignment t;
        trace = [];
        rounds = None;
        pstar = Some (Fix_rank3_exact.pstar_holds_exact t);
        max_violation = None;
        detail = [ ("fallbacks", string_of_int (Fix_rank3_exact.fallbacks t)) ];
      })
    params inst

let fixr_impl params inst =
  let t = Fix_rankr.create inst in
  let get_trace () =
    List.map
      (fun (s : Fix_rankr.step) ->
        { var = s.var; value = s.value; incs = s.incs; srep_violation = Some (-.s.slack) })
      (Fix_rankr.steps t)
  in
  seq_driver ~phase:"fix-rankr"
    ~fix:(Fix_rankr.fix_var t)
    ~get_assignment:(fun () -> Fix_rankr.assignment t)
    ~get_trace
    ~summarise:(fun () ->
      let slack = Fix_rankr.min_slack t in
      {
        assignment = Fix_rankr.assignment t;
        trace = get_trace ();
        rounds = None;
        pstar = Some (Fix_rankr.pstar_holds t);
        max_violation = (if slack = infinity then None else Some (-.slack));
        detail =
          [
            ("min_slack", Printf.sprintf "%.3e" slack);
            ("infeasible_steps", string_of_int (Fix_rankr.infeasible_steps t));
          ];
      })
    params inst

let union_bound_impl params inst =
  oneshot (fun () ->
      let a, phi = Cond_exp.solve ?order:params.order ~metrics:params.metrics inst in
      {
        assignment = a;
        trace = [];
        rounds = None;
        pstar = None;
        max_violation = None;
        detail =
          [
            ("criterion", if Cond_exp.criterion_holds inst then "holds" else "fails");
            ("final_phi", Rat.to_string phi);
          ];
      })

(* On budget exhaustion the engines hand back the carried partial result:
   the (complete but still violating) assignment goes through the shared
   post-condition like any other, so the report comes out ok=false with
   the work done so far in [detail] instead of an exception escaping the
   registry. *)
let mt_outcome ~rounds_of run =
  let (a, (s : Moser_tardos.stats)), exhausted =
    match run () with
    | result -> (result, false)
    | exception Moser_tardos.Budget_exhausted { assignment; stats } -> ((assignment, stats), true)
  in
  {
    assignment = a;
    trace = [];
    rounds = rounds_of s;
    pstar = None;
    max_violation = None;
    detail =
      ("resamplings", string_of_int s.resamplings)
      :: (if exhausted then [ ("budget_exhausted", "true") ] else []);
  }

let mt_seq_impl params inst =
  oneshot (fun () ->
      mt_outcome ~rounds_of:(fun _ -> None) (fun () ->
          Moser_tardos.solve_sequential ~seed:params.seed inst))

let mt_par_impl variant params inst =
  oneshot (fun () ->
      mt_outcome ~rounds_of:(fun s -> Some s.Moser_tardos.rounds) (fun () ->
          variant ~seed:params.seed inst))

let dist_impl solve_fn params inst =
  oneshot (fun () ->
      let (r : Distributed.result) = solve_fn ?domains:params.domains ?metrics:(Some params.metrics) inst in
      {
        assignment = r.Distributed.assignment;
        trace = [];
        rounds = Some r.Distributed.rounds;
        pstar = None;
        max_violation = None;
        detail =
          [
            ("coloring_rounds", string_of_int r.Distributed.coloring_rounds);
            ("sweep_rounds", string_of_int r.Distributed.sweep_rounds);
            ("colors", string_of_int r.Distributed.colors);
          ];
      })

let mp_impl solve_fn params inst =
  oneshot (fun () ->
      let (r : Dist_lll.result) = solve_fn ?domains:params.domains ?metrics:(Some params.metrics) inst in
      {
        assignment = r.Dist_lll.assignment;
        trace = [];
        rounds = Some r.Dist_lll.rounds;
        pstar = None;
        max_violation = None;
        detail =
          [
            ("coloring_rounds", string_of_int r.Dist_lll.coloring_rounds);
            ("sweep_rounds", string_of_int r.Dist_lll.sweep_rounds);
            ("colors", string_of_int r.Dist_lll.colors);
          ];
      })

(* ------------------------------------------------------------------ *)
(* Built-in registrations (the CLI/--list-solvers order)               *)
(* ------------------------------------------------------------------ *)

let seq_caps ~max_rank ~exact =
  { max_rank; exact; distributed = false; randomized = false; claims_pstar = true }

let (_ : t) =
  register ~name:"fix2"
    ~doc:"Theorem 1.1: rank-2 deterministic sequential fixing (min-score policy)"
    ~caps:(seq_caps ~max_rank:(Some 2) ~exact:true)
    (fix2_impl Fix_rank2.Min_score)

let (_ : t) =
  register ~name:"fix2-first"
    ~doc:"rank-2 fixing, first-within-budget policy (ablation)"
    ~caps:(seq_caps ~max_rank:(Some 2) ~exact:true)
    (fix2_impl Fix_rank2.First_within_budget)

let (_ : t) =
  register ~name:"fix3"
    ~doc:"Theorem 1.3: rank-3 fixing via S_rep (float potential, min-violation policy)"
    ~caps:(seq_caps ~max_rank:(Some 3) ~exact:false)
    (fix3_impl Fix_rank3.Min_violation)

let (_ : t) =
  register ~name:"fix3-first"
    ~doc:"rank-3 fixing, first-feasible policy (ablation)"
    ~caps:(seq_caps ~max_rank:(Some 3) ~exact:false)
    (fix3_impl Fix_rank3.First_feasible)

let (_ : t) =
  register ~name:"fix3-exact"
    ~doc:"rank-3 fixing with exact rational potential (P* with no epsilon)"
    ~caps:(seq_caps ~max_rank:(Some 3) ~exact:true)
    fix3_exact_impl

let (_ : t) =
  register ~name:"fixr"
    ~doc:"Conjecture 1.5: experimental rank-r fixing (no proven guarantee for r >= 4)"
    ~caps:(seq_caps ~max_rank:None ~exact:false)
    ~guarantees:(fun inst -> exponential inst && Instance.rank inst <= 3)
    fixr_impl

let (_ : t) =
  register ~name:"union-bound"
    ~doc:"conditional expectations under the global union-bound criterion sum p_i < 1"
    ~caps:
      {
        max_rank = None;
        exact = true;
        distributed = false;
        randomized = false;
        claims_pstar = false;
      }
    ~guarantees:Cond_exp.criterion_holds union_bound_impl

let mt_caps = { max_rank = None; exact = true; distributed = false; randomized = true; claims_pstar = false }

let (_ : t) =
  register ~name:"mt-seq" ~doc:"Moser-Tardos sequential resampling [MT10]" ~caps:mt_caps
    ~guarantees:shattering mt_seq_impl

let (_ : t) =
  register ~name:"mt-par"
    ~doc:"parallel Moser-Tardos, id-minima selection (round-accounted)"
    ~caps:{ mt_caps with distributed = true }
    ~guarantees:shattering
    (mt_par_impl (fun ~seed inst -> Moser_tardos.solve_parallel ~seed inst))

let (_ : t) =
  register ~name:"mt-par-rand"
    ~doc:"parallel Moser-Tardos, fresh random priorities per round [CPS17]"
    ~caps:{ mt_caps with distributed = true }
    ~guarantees:shattering
    (mt_par_impl (fun ~seed inst -> Moser_tardos.solve_parallel_random_priority ~seed inst))

let (_ : t) =
  register ~name:"mt-par-all"
    ~doc:"parallel Moser-Tardos ablation: ALL occurring events resample each round"
    ~caps:{ mt_caps with distributed = true }
    ~guarantees:shattering
    (mt_par_impl (fun ~seed inst -> Moser_tardos.solve_parallel_all ~seed inst))

let dist_caps ~max_rank ~exact =
  { max_rank; exact; distributed = true; randomized = false; claims_pstar = false }

let (_ : t) =
  register ~name:"dist2"
    ~doc:"Corollary 1.2: distributed rank-2 schedule (edge coloring + per-class sweep)"
    ~caps:(dist_caps ~max_rank:(Some 2) ~exact:true)
    (dist_impl Distributed.solve_rank2)

let (_ : t) =
  register ~name:"dist3"
    ~doc:"Corollary 1.4: distributed rank-3 schedule (2-hop coloring + per-class sweep)"
    ~caps:(dist_caps ~max_rank:(Some 3) ~exact:false)
    (dist_impl Distributed.solve_rank3)

let (_ : t) =
  register ~name:"distr"
    ~doc:"Corollary 1.4 schedule driving the experimental rank-r fixer"
    ~caps:(dist_caps ~max_rank:None ~exact:false)
    ~guarantees:(fun inst -> exponential inst && Instance.rank inst <= 3)
    (dist_impl Distributed.solve_rankr)

let (_ : t) =
  register ~name:"mp2"
    ~doc:"Corollary 1.2 as a genuinely message-passing protocol on the LOCAL runtime"
    ~caps:(dist_caps ~max_rank:(Some 2) ~exact:true)
    (mp_impl (fun ?domains ?metrics inst -> Dist_lll.solve_rank2 ?domains ?metrics inst))

let (_ : t) =
  register ~name:"mp3"
    ~doc:"Corollary 1.4 as a genuinely message-passing protocol on the LOCAL runtime"
    ~caps:(dist_caps ~max_rank:(Some 3) ~exact:false)
    (mp_impl (fun ?domains ?metrics inst -> Dist_lll.solve ?domains ?metrics inst))
