(** Theorem 1.3: deterministic sequential fixing for instances in which
    every variable affects at most three events, under [p < 2^-d], via the
    representable-triples machinery of Section 3.

    [Inc] ratios are exact; the [phi] potential uses floats (its optimal
    updates are irrational). Accepted solutions must always be validated
    with {!Verify} (exact), which the high-level drivers do. *)

module Rat = Lll_num.Rat
module Assignment = Lll_prob.Assignment

type step = {
  var : int;
  value : int;
  incs : (int * Rat.t) list;
  violation : float;
      (** [S_rep] violation of the chosen scaled triple; Lemma 3.2
          guarantees this is non-positive up to float rounding. *)
}

type t

type policy = Min_violation | First_feasible
(** Value selection: the S_rep-violation minimiser, or the first value
    whose scaled triple is representable (Lemma 3.2 guarantees existence).
    Default [Min_violation]. *)

val create : ?policy:policy -> Instance.t -> t
(** @raise Invalid_argument if the instance has rank [> 3]. *)

val fix_var : t -> int -> unit
(** Fix one unfixed variable (the Variable Fixing Lemma step). *)

val fix_var_quiet : t -> int -> step
(** {!fix_var} without appending to the shared step log — the unit of
    work {!fix_class} fans out across domains. *)

val fix_class : ?domains:int -> t -> int list array -> unit
(** [fix_class t duties] fixes each member's duty list, members fanned
    out across [domains] (default {!Lll_local.Par.default_domains}).
    SOUND ONLY when the members form one color class of the squared
    dependency graph: their events, phi edges and scope variables are
    then pairwise disjoint (DESIGN.md §11), so the concurrent tracker
    updates never touch shared state. Steps are logged in member order —
    the trace is bit-identical to the sequential loop for any domain
    count. *)

val run :
  ?policy:policy -> ?order:int array -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> t
(** With a [metrics] sink, records one per-step record (phase
    ["fix-rank3"]) in the LOCAL runtime's per-round shape. *)

val solve :
  ?policy:policy ->
  ?order:int array ->
  ?metrics:Lll_local.Metrics.sink ->
  Instance.t ->
  Assignment.t * t

val assignment : t -> Assignment.t
val steps : t -> step list
val instance : t -> Instance.t

val phi : t -> int -> int -> float
(** [phi t e v]: potential on edge [e] at endpoint [v]. *)

val max_violation : t -> float
(** Largest [S_rep] violation over all steps so far ([neg_infinity] if no
    step involved a choice); should never exceed float noise. *)

val pstar_holds : ?eps:float -> t -> bool
(** Property P* of Definition 3.1 (phi side with float tolerance, event
    probabilities exact). [eps] defaults to {!Srep.default_eps}. *)
