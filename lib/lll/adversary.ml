(* An ACTIVE adversary against the fixers' order-obliviousness.

   Theorems 1.1 and 1.3 promise success for every variable order, "even
   [an] adaptive adversary". Random orders (T1/T2) only sample the
   benign bulk; this module searches for genuinely bad orders by hill
   climbing on the fixer's own certificate — the final certified bound
   [Pr[E_v] * prod phi_e^v] of the most-loaded event. The bound can
   approach but, below the threshold, provably never reach 1; the
   experiment confirms that even adversarially optimised orders leave it
   strictly below 1 and the fixer successful. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Assignment = Lll_prob.Assignment

let max_event_bound instance t =
  let g = Instance.dep_graph instance in
  let probs = Instance.initial_probs instance in
  let worst = ref Rat.zero in
  Array.iter
    (fun e ->
      let v = Lll_prob.Event.id e in
      let bound =
        List.fold_left
          (fun acc eid -> Rat.mul acc (Fix_rank2.phi t eid v))
          probs.(v)
          (Graph.incident_edges g v)
      in
      if Rat.gt bound !worst then worst := bound)
    (Instance.events instance);
  !worst

(* The certificate bound of the most-loaded event after a rank-2 run:
   max_v  Pr[E_v] * prod_{e ∋ v} phi_e^v  (exact). *)
let final_bound_rank2 instance order =
  let t = Fix_rank2.run ~order instance in
  max_event_bound instance t

(* The PEAK of the certificate over the whole run — the closest approach
   to the forbidden value 1; strictly below 1 for every order whenever
   p < 2^-d (the content of Theorem 1.1). *)
let peak_bound_rank2 instance order =
  let t = Fix_rank2.create instance in
  let peak = ref (max_event_bound instance t) in
  Array.iter
    (fun vid ->
      Fix_rank2.fix_var t vid;
      let b = max_event_bound instance t in
      if Rat.gt b !peak then peak := b)
    order;
  !peak

type attack = {
  order : int array;
  bound : Rat.t; (* the largest PEAK certificate the search reached *)
  succeeded : bool; (* did the fixer still avoid all events under it? *)
}

(* Hill climbing over orders: random transpositions, keep strict
   improvements of the certificate bound. *)
let worst_order_rank2 ?(seed = 0) ?(steps = 200) instance =
  let m = Instance.num_vars instance in
  let rng = Random.State.make [| seed; 0xadce |] in
  let order = Array.init m (fun i -> i) in
  Lll_graph.Generators.shuffle rng order;
  let best = ref (peak_bound_rank2 instance order) in
  for _ = 1 to steps do
    if m >= 2 then begin
      let i = Random.State.int rng m and j = Random.State.int rng m in
      if i <> j then begin
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp;
        let b = peak_bound_rank2 instance order in
        if Rat.gt b !best then best := b
        else begin
          (* revert *)
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp
        end
      end
    end
  done;
  let a, _ = Fix_rank2.solve ~order instance in
  { order = Array.copy order; bound = !best; succeeded = Verify.avoids_all instance a }
