(** Witness trees from the Moser–Tardos analysis [MT10], reconstructed
    exactly from an execution log
    ({!Moser_tardos.solve_sequential_log}). *)

type tree = { label : int; depth : int; children : tree list }

val tree_of_log : Instance.t -> int array -> int -> tree
(** The witness tree of log step [t]: root labelled [log.(t)], earlier
    resamplings attached below the deepest node whose label's inclusive
    dependency neighborhood contains them.
    @raise Invalid_argument when [t] is out of range. *)

val size : tree -> int
val height : tree -> int

val well_formed : Instance.t -> tree -> bool
(** Every child's label lies in the inclusive neighborhood of its
    parent's. *)

val size_histogram : Instance.t -> int array -> (int * int) list
(** [(size, count)] pairs over all steps of the log — the empirical face
    of the MT geometric-decay bound. *)
