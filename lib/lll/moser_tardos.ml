(* Moser–Tardos resampling [MT10] — the randomized baseline the paper
   compares against across the threshold.

   - [solve_sequential]: sample everything, then repeatedly resample the
     variables of some occurring bad event; under [ep(d+1) < 1] the
     expected number of resamplings is at most [m / (e*p*(d+1))^-1 - 1]
     flavoured (we only record the count).
   - [solve_parallel]: the standard distributed variant — in each round
     every occurring event that is a local id-minimum among occurring
     dependency neighbors resamples its variables (such events are
     pairwise non-adjacent, hence share no variables). One such round
     costs O(1) LOCAL rounds; the round count is the distributed
     complexity, which is O(log n) w.h.p. under the shattering
     criterion. *)

module Graph = Lll_graph.Graph
module Space = Lll_prob.Space
module Event = Lll_prob.Event
module Assignment = Lll_prob.Assignment

exception Budget_exhausted of { resamplings : int }

type stats = { resamplings : int; rounds : int }

let occurring instance a =
  let space = Instance.space instance in
  Array.to_list (Instance.events instance)
  |> List.filter (fun e -> Space.event_holds space e a)

(* Sequential resampling with an execution log: the sequence of resampled
   event ids, in order — the raw material of the witness-tree analysis
   ([MT10], see {!Witness}). *)
let solve_sequential_log ?(max_resamplings = 1_000_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let count = ref 0 in
  let log = ref [] in
  let rec loop () =
    match occurring instance !a with
    | [] -> ()
    | bad :: _ ->
      if !count >= max_resamplings then raise (Budget_exhausted { resamplings = !count });
      incr count;
      log := Event.id bad :: !log;
      a := Space.resample space rng !a (Array.to_list (Event.scope bad));
      loop ()
  in
  loop ();
  (!a, { resamplings = !count; rounds = !count }, Array.of_list (List.rev !log))

let solve_sequential ?max_resamplings ~seed instance =
  let a, stats, _ = solve_sequential_log ?max_resamplings ~seed instance in
  (a, stats)

(* CPS-flavoured variant [CPS17]: local minima under FRESH RANDOM
   priorities each round (instead of ids) resample — the symmetry
   breaking Chung-Pettie-Su use to improve the round bound. *)
let solve_parallel_random_priority ?(max_rounds = 100_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let g = Instance.dep_graph instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let rounds = ref 0 in
  let resamplings = ref 0 in
  let rec loop () =
    let bad = occurring instance !a in
    if bad <> [] then begin
      if !rounds >= max_rounds then raise (Budget_exhausted { resamplings = !resamplings });
      incr rounds;
      let prio = Array.init (Instance.num_events instance) (fun _ -> Random.State.float rng 1.0) in
      let is_bad = Array.make (Instance.num_events instance) false in
      List.iter (fun e -> is_bad.(Event.id e) <- true) bad;
      let selected =
        List.filter
          (fun e ->
            let id = Event.id e in
            List.for_all
              (fun u -> (not is_bad.(u)) || prio.(u) > prio.(id))
              (Graph.neighbors g id))
          bad
      in
      let vars =
        List.concat_map (fun e -> Array.to_list (Event.scope e)) selected
      in
      resamplings := !resamplings + List.length selected;
      a := Space.resample space rng !a vars;
      loop ()
    end
  in
  loop ();
  (!a, { resamplings = !resamplings; rounds = !rounds })

(* The aggressive variant: EVERY occurring event resamples each round
   (overlapping scopes are resampled once). Converges under stronger
   criteria; included as an ablation of the independent-set selection. *)
let solve_parallel_all ?(max_rounds = 100_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let rounds = ref 0 in
  let resamplings = ref 0 in
  let rec loop () =
    let bad = occurring instance !a in
    if bad <> [] then begin
      if !rounds >= max_rounds then raise (Budget_exhausted { resamplings = !resamplings });
      incr rounds;
      resamplings := !resamplings + List.length bad;
      let vars =
        List.sort_uniq compare
          (List.concat_map (fun e -> Array.to_list (Event.scope e)) bad)
      in
      a := Space.resample space rng !a vars;
      loop ()
    end
  in
  loop ();
  (!a, { resamplings = !resamplings; rounds = !rounds })

let solve_parallel ?(max_rounds = 100_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let g = Instance.dep_graph instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let rounds = ref 0 in
  let resamplings = ref 0 in
  let rec loop () =
    let bad = occurring instance !a in
    if bad <> [] then begin
      if !rounds >= max_rounds then raise (Budget_exhausted { resamplings = !resamplings });
      incr rounds;
      let bad_ids = List.map Event.id bad in
      let is_bad = Array.make (Instance.num_events instance) false in
      List.iter (fun id -> is_bad.(id) <- true) bad_ids;
      (* local minima among occurring events: an independent set in the
         dependency graph, so their scopes are disjoint *)
      let selected =
        List.filter
          (fun id -> List.for_all (fun u -> (not is_bad.(u)) || u > id) (Graph.neighbors g id))
          bad_ids
      in
      let vars =
        List.concat_map (fun id -> Array.to_list (Event.scope (Instance.event instance id))) selected
      in
      resamplings := !resamplings + List.length selected;
      a := Space.resample space rng !a vars;
      loop ()
    end
  in
  loop ();
  (!a, { resamplings = !resamplings; rounds = !rounds })
