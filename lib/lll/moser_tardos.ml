(* Moser–Tardos resampling [MT10] — the randomized baseline the paper
   compares against across the threshold.

   - [solve_sequential]: sample everything, then repeatedly resample the
     variables of some occurring bad event; under [ep(d+1) < 1] the
     expected number of resamplings is at most [m / (e*p*(d+1))^-1 - 1]
     flavoured (we only record the count).
   - [solve_parallel]: the standard distributed variant — in each round
     every occurring event that is a local id-minimum among occurring
     dependency neighbors resamples its variables (such events are
     pairwise non-adjacent, hence share no variables). One such round
     costs O(1) LOCAL rounds; the round count is the distributed
     complexity, which is O(log n) w.h.p. under the shattering
     criterion.

   The sequential hot path maintains the set of occurring events
   incrementally: resampling event [e] can only flip the status of [e]
   and its dependency-graph neighbors (they are the only events sharing
   a resampled variable), so each resampling refreshes O(deg) events
   instead of rescanning all [m]. The full rescan survives as
   [solve_sequential_rescan], the ablation baseline benchmarked against
   the incremental set in BENCH_pr4.json. *)

module Graph = Lll_graph.Graph
module Space = Lll_prob.Space
module Event = Lll_prob.Event
module Assignment = Lll_prob.Assignment

type stats = { resamplings : int; rounds : int }

exception Budget_exhausted of { assignment : Assignment.t; stats : stats }

let occurring instance a =
  let space = Instance.space instance in
  Array.to_list (Instance.events instance)
  |> List.filter (fun e -> Space.event_holds space e a)

module ISet = Set.Make (Int)

(* Sequential resampling with an execution log: the sequence of resampled
   event ids, in order — the raw material of the witness-tree analysis
   ([MT10], see {!Witness}). The set of occurring events is kept sorted
   by id, so picking its minimum reproduces the historical "first
   occurring event" selection exactly (same resampling sequence, same
   random stream, same final assignment as the full-rescan baseline). *)
let solve_sequential_log ?(max_resamplings = 1_000_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let g = Instance.dep_graph instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let count = ref 0 in
  let log = ref [] in
  let holds id = Space.event_holds space (Instance.event instance id) !a in
  let occ =
    ref
      (Array.fold_left
         (fun acc e -> if Space.event_holds space e !a then ISet.add (Event.id e) acc else acc)
         ISet.empty (Instance.events instance))
  in
  let rec loop () =
    match ISet.min_elt_opt !occ with
    | None -> ()
    | Some id ->
      if !count >= max_resamplings then
        raise
          (Budget_exhausted
             { assignment = !a; stats = { resamplings = !count; rounds = !count } });
      incr count;
      log := id :: !log;
      let e = Instance.event instance id in
      a := Space.resample space rng !a (Array.to_list (Event.scope e));
      (* only [id] and its dependency neighbors can change status *)
      List.iter
        (fun u -> occ := if holds u then ISet.add u !occ else ISet.remove u !occ)
        (id :: Graph.neighbors g id);
      loop ()
  in
  loop ();
  (!a, { resamplings = !count; rounds = !count }, Array.of_list (List.rev !log))

let solve_sequential ?max_resamplings ~seed instance =
  let a, stats, _ = solve_sequential_log ?max_resamplings ~seed instance in
  (a, stats)

(* The pre-incremental implementation: rescan all m events to find the
   first occurring one after every resampling. Kept as the benchmark
   baseline for the occurring-set maintenance (identical behaviour). *)
let solve_sequential_rescan ?(max_resamplings = 1_000_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let count = ref 0 in
  let rec loop () =
    match occurring instance !a with
    | [] -> ()
    | bad :: _ ->
      if !count >= max_resamplings then
        raise
          (Budget_exhausted
             { assignment = !a; stats = { resamplings = !count; rounds = !count } });
      incr count;
      a := Space.resample space rng !a (Array.to_list (Event.scope bad));
      loop ()
  in
  loop ();
  (!a, { resamplings = !count; rounds = !count })

(* Strict local minima of the occurring events under the lexicographic
   order [(priority, id)]. The id tiebreak matters: comparing priorities
   alone blocks BOTH endpoints of an edge whose priorities tie, so a
   fully tied round selects no event yet still burns a round (a livelock
   when the priority source keeps colliding). Lexicographic order is
   total, hence the minima are pairwise non-adjacent and every non-empty
   occurring set selects at least one event. *)
let priority_minima g ~prio occurring_ids =
  let is_bad = Array.make (Array.length prio) false in
  List.iter (fun id -> is_bad.(id) <- true) occurring_ids;
  List.filter
    (fun id ->
      List.for_all
        (fun u ->
          (not is_bad.(u)) || prio.(u) > prio.(id) || (prio.(u) = prio.(id) && u > id))
        (Graph.neighbors g id))
    occurring_ids

(* CPS-flavoured variant [CPS17]: local minima under FRESH RANDOM
   priorities each round (instead of ids) resample — the symmetry
   breaking Chung-Pettie-Su use to improve the round bound. *)
let solve_parallel_random_priority ?(max_rounds = 100_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let g = Instance.dep_graph instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let rounds = ref 0 in
  let resamplings = ref 0 in
  let rec loop () =
    let bad = occurring instance !a in
    if bad <> [] then begin
      if !rounds >= max_rounds then
        raise
          (Budget_exhausted
             {
               assignment = !a;
               stats = { resamplings = !resamplings; rounds = !rounds };
             });
      incr rounds;
      let prio = Array.init (Instance.num_events instance) (fun _ -> Random.State.float rng 1.0) in
      let selected = priority_minima g ~prio (List.map Event.id bad) in
      let vars =
        List.concat_map
          (fun id -> Array.to_list (Event.scope (Instance.event instance id)))
          selected
      in
      resamplings := !resamplings + List.length selected;
      a := Space.resample space rng !a vars;
      loop ()
    end
  in
  loop ();
  (!a, { resamplings = !resamplings; rounds = !rounds })

(* The aggressive variant: EVERY occurring event resamples each round
   (overlapping scopes are resampled once). Converges under stronger
   criteria; included as an ablation of the independent-set selection. *)
let solve_parallel_all ?(max_rounds = 100_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let rounds = ref 0 in
  let resamplings = ref 0 in
  let rec loop () =
    let bad = occurring instance !a in
    if bad <> [] then begin
      if !rounds >= max_rounds then
        raise
          (Budget_exhausted
             {
               assignment = !a;
               stats = { resamplings = !resamplings; rounds = !rounds };
             });
      incr rounds;
      resamplings := !resamplings + List.length bad;
      let vars =
        List.sort_uniq compare
          (List.concat_map (fun e -> Array.to_list (Event.scope e)) bad)
      in
      a := Space.resample space rng !a vars;
      loop ()
    end
  in
  loop ();
  (!a, { resamplings = !resamplings; rounds = !rounds })

let solve_parallel ?(max_rounds = 100_000) ~seed instance =
  let rng = Random.State.make [| seed |] in
  let space = Instance.space instance in
  let g = Instance.dep_graph instance in
  let a = ref (Space.sample_unfixed space rng (Assignment.empty (Instance.num_vars instance))) in
  let rounds = ref 0 in
  let resamplings = ref 0 in
  let rec loop () =
    let bad = occurring instance !a in
    if bad <> [] then begin
      if !rounds >= max_rounds then
        raise
          (Budget_exhausted
             {
               assignment = !a;
               stats = { resamplings = !resamplings; rounds = !rounds };
             });
      incr rounds;
      let bad_ids = List.map Event.id bad in
      let is_bad = Array.make (Instance.num_events instance) false in
      List.iter (fun id -> is_bad.(id) <- true) bad_ids;
      (* local minima among occurring events: an independent set in the
         dependency graph, so their scopes are disjoint *)
      let selected =
        List.filter
          (fun id -> List.for_all (fun u -> (not is_bad.(u)) || u > id) (Graph.neighbors g id))
          bad_ids
      in
      let vars =
        List.concat_map (fun id -> Array.to_list (Event.scope (Instance.event instance id))) selected
      in
      resamplings := !resamplings + List.length selected;
      a := Space.resample space rng !a vars;
      loop ()
    end
  in
  loop ();
  (!a, { resamplings = !resamplings; rounds = !rounds })
