(* Distributed LLL solvers with LOCAL round accounting.

   - [solve_rank2] implements Corollary 1.2: edge-color the dependency
     graph (variables of rank 2 live on its edges), then sweep the color
     classes, fixing all variables of a class in one round. Edges of the
     same color share no endpoint, hence no event; Theorem 1.1 works for
     any order, so the parallel sweep is sound.
   - [solve_rank3] implements Corollary 1.4: 2-hop color the dependency
     graph (one proper coloring of its square), then sweep the classes;
     in its class round a node fixes all of its not-yet-fixed variables.
     Nodes at distance >= 3 own variables with disjoint event sets, so
     simultaneous fixing is again sound.

   The fixing steps are executed by the fixer engines (Theorem 1.1 /
   Theorem 1.3 hold for arbitrary orders); the round count is what the
   LOCAL schedule above would cost: coloring rounds plus one round per
   color class (plus one round for variables affecting at most one
   event, which all nodes fix independently up front). Because the
   members of one class touch pairwise disjoint fixer state (disjoint
   events, phi edges and scope variables — DESIGN.md §11), each class
   round genuinely fans out across the domain pool via [fix_class],
   with one [Metrics.record_sweep] record per class carrying the class
   width and the domains used. *)

module Graph = Lll_graph.Graph
module Network = Lll_local.Network
module Dist_coloring = Lll_local.Dist_coloring
module Metrics = Lll_local.Metrics
module Par = Lll_local.Par
module Assignment = Lll_prob.Assignment

type result = {
  assignment : Assignment.t;
  ok : bool; (* exact verification *)
  rounds : int;
  coloring_rounds : int;
  sweep_rounds : int;
  colors : int;
}

(* Variables grouped by the dependency edge they live on (rank 2), plus
   the rank <= 1 leftovers. *)
let vars_by_edge instance =
  let g = Instance.dep_graph instance in
  let by_edge = Array.make (Graph.m g) [] in
  let small = ref [] in
  for vid = Instance.num_vars instance - 1 downto 0 do
    match Array.to_list (Instance.events_of_var instance vid) with
    | [ u; v ] ->
      let e = Graph.find_edge_exn g u v in
      by_edge.(e) <- vid :: by_edge.(e)
    | _ -> small := vid :: !small
  done;
  (by_edge, !small)

(* Group the per-item duty lists ([by_edge] / [by_owner]) into one duty
   array per color class — item order within a class is ascending item
   id, exactly the order the former sequential [Array.iteri] sweep
   visited — then run one [fix_class] fan-out per class. One sweep
   record per class lands in [metrics]. *)
let sweep_classes ?domains ~metrics ~colors ~item_colors ~duties fix_class =
  let members = Array.make (max colors 1) [] in
  for i = Array.length duties - 1 downto 0 do
    if duties.(i) <> [] then members.(item_colors.(i)) <- duties.(i) :: members.(item_colors.(i))
  done;
  let resolved = match domains with Some d -> max 1 d | None -> Par.default_domains () in
  for c = 0 to colors - 1 do
    let class_duties = Array.of_list members.(c) in
    let width = Array.length class_duties in
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    fix_class ?domains class_duties;
    Metrics.record_sweep metrics ~round:c ~total:colors
      ~wall_ns:(if Metrics.enabled metrics then Metrics.now_ns () - t0 else 0)
      ~width ~domains:(min resolved (max 1 width))
  done

let solve_rank2 ?domains ?(metrics = Metrics.disabled) instance =
  let g = Instance.dep_graph instance in
  let lg = Graph.line_graph g in
  Metrics.set_phase metrics "edge-coloring";
  let ecolors, coloring_rounds =
    if Graph.m g = 0 then ([||], 0) else Dist_coloring.color ?domains ~metrics (Network.create lg)
  in
  let colors = Array.fold_left (fun acc c -> max acc (c + 1)) 0 ecolors in
  let by_edge, small = vars_by_edge instance in
  let fixer = Fix_rank2.create instance in
  (* round 0: every node fixes its rank <= 1 variables *)
  List.iter (fun vid -> Fix_rank2.fix_var fixer vid) small;
  (* one round per edge-color class, class members fanned out *)
  Metrics.set_phase metrics "fix-sweep";
  sweep_classes ?domains ~metrics ~colors ~item_colors:ecolors ~duties:by_edge
    (fun ?domains ds -> Fix_rank2.fix_class ?domains fixer ds);
  let assignment = Fix_rank2.assignment fixer in
  let sweep_rounds = colors + if small = [] then 0 else 1 in
  {
    assignment;
    ok = Verify.avoids_all instance assignment;
    rounds = coloring_rounds + sweep_rounds;
    coloring_rounds;
    sweep_rounds;
    colors;
  }

(* Each variable is owned by its smallest event; a node's class round
   fixes all its owned variables. *)
let vars_by_owner instance =
  let by_owner = Array.make (Instance.num_events instance) [] in
  let free = ref [] in
  for vid = Instance.num_vars instance - 1 downto 0 do
    match Instance.events_of_var instance vid with
    | [||] -> free := vid :: !free
    | evs -> by_owner.(evs.(0)) <- vid :: by_owner.(evs.(0))
  done;
  (by_owner, !free)

let solve_rank3 ?domains ?(metrics = Metrics.disabled) instance =
  let g = Instance.dep_graph instance in
  Metrics.set_phase metrics "two-hop-coloring";
  let vcolors, coloring_rounds =
    if Graph.n g = 0 then ([||], 0)
    else Dist_coloring.two_hop_color ?domains ~metrics (Network.create g)
  in
  let colors = Array.fold_left (fun acc c -> max acc (c + 1)) 0 vcolors in
  let by_owner, free = vars_by_owner instance in
  let fixer = Fix_rank3.create instance in
  List.iter (fun vid -> Fix_rank3.fix_var fixer vid) free;
  Metrics.set_phase metrics "fix-sweep";
  sweep_classes ?domains ~metrics ~colors ~item_colors:vcolors ~duties:by_owner
    (fun ?domains ds -> Fix_rank3.fix_class ?domains fixer ds);
  let assignment = Fix_rank3.assignment fixer in
  let sweep_rounds = colors + if free = [] then 0 else 1 in
  {
    assignment;
    ok = Verify.avoids_all instance assignment;
    rounds = coloring_rounds + sweep_rounds;
    coloring_rounds;
    sweep_rounds;
    colors;
  }

(* The same 2-hop schedule drives the EXPERIMENTAL rank-r fixer: a
   variable's events are pairwise adjacent, so they all lie in the closed
   neighborhood of its owner, and owners of the same 2-hop color class
   are at distance >= 3 — their variables share no event, for any rank. *)
let solve_rankr ?domains ?(metrics = Metrics.disabled) instance =
  let g = Instance.dep_graph instance in
  Metrics.set_phase metrics "two-hop-coloring";
  let vcolors, coloring_rounds =
    if Graph.n g = 0 then ([||], 0)
    else Dist_coloring.two_hop_color ?domains ~metrics (Network.create g)
  in
  let colors = Array.fold_left (fun acc c -> max acc (c + 1)) 0 vcolors in
  let by_owner, free = vars_by_owner instance in
  let fixer = Fix_rankr.create instance in
  List.iter (fun vid -> Fix_rankr.fix_var fixer vid) free;
  Metrics.set_phase metrics "fix-sweep";
  sweep_classes ?domains ~metrics ~colors ~item_colors:vcolors ~duties:by_owner
    (fun ?domains ds -> Fix_rankr.fix_class ?domains fixer ds);
  let assignment = Fix_rankr.assignment fixer in
  let sweep_rounds = colors + if free = [] then 0 else 1 in
  {
    assignment;
    ok = Verify.avoids_all instance assignment;
    rounds = coloring_rounds + sweep_rounds;
    coloring_rounds;
    sweep_rounds;
    colors;
  }

(* Distributed parallel Moser–Tardos for comparison: its LOCAL round count
   is the number of resampling rounds (each costs O(1) real rounds). *)
let solve_moser_tardos ?max_rounds ~seed instance =
  let assignment, stats = Moser_tardos.solve_parallel ?max_rounds ~seed instance in
  {
    assignment;
    ok = Verify.avoids_all instance assignment;
    rounds = stats.rounds;
    coloring_rounds = 0;
    sweep_rounds = stats.rounds;
    colors = 0;
  }
