(** Distributed LLL solvers with LOCAL round accounting: Corollary 1.2
    (rank 2, edge coloring) and Corollary 1.4 (rank 3, 2-hop coloring),
    plus a distributed Moser–Tardos baseline. *)

module Assignment = Lll_prob.Assignment

type result = {
  assignment : Assignment.t;
  ok : bool;  (** Exact verification outcome. *)
  rounds : int;  (** Total LOCAL rounds: coloring + sweep. *)
  coloring_rounds : int;
  sweep_rounds : int;
  colors : int;
}

val solve_rank2 : ?domains:int -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> result
(** Corollary 1.2: [O(d + log* n)]-style schedule (edge coloring via the
    Linial pipeline, then one round per color class). Requires rank
    [<= 2]. [domains]/[metrics] drive the coloring phase's runtime. *)

val solve_rank3 : ?domains:int -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> result
(** Corollary 1.4: [O(d^2 + log* n)]-style schedule (2-hop coloring, then
    one round per class). Requires rank [<= 3]. *)

val solve_rankr : ?domains:int -> ?metrics:Lll_local.Metrics.sink -> Instance.t -> result
(** The Corollary 1.4 schedule driving the experimental rank-r fixer
    ({!Fix_rankr}); sound scheduling for any rank, heuristic feasibility
    for rank [>= 4]. *)

val solve_moser_tardos : ?max_rounds:int -> seed:int -> Instance.t -> result
(** Parallel Moser–Tardos; [rounds] is its resampling-round count. *)
