(* EXPERIMENTAL rank-r fixing — a computational exploration of
   Conjecture 1.5.

   The paper proves the threshold criterion [p < 2^-d] suffices for
   deterministic fixing when variables affect at most 2 (Theorem 1.1) or
   3 (Theorem 1.3) events, and conjectures the same for every rank r.
   This module runs the natural generalisation of the rank-3 process:

   - the potential phi lives on dependency-graph edge-endpoints exactly
     as in Definition 3.1;
   - to fix a rank-k variable (k >= 3) on events C = {v_1, ..., v_k}
     (pairwise adjacent), we form, for each candidate value y, the
     target tuple  t_i = Inc(v_i, y) * prod_{e in K_C, e ∋ v_i} phi_e^{v_i}
     and ask the numeric clique solver ({!Srep_r}) whether it is
     representable; the first feasible value is chosen (falling back to
     the largest-slack value) and the solver's witness potential is
     written back into phi.

   For k <= 2 the exact weighted rank-2 argument applies and a good
   value provably exists. For k = 3, Lemma 3.2 guarantees feasibility
   (up to solver tolerance); for k >= 4 there is NO proven guarantee —
   the experiment harness (T10) measures how often feasibility holds in
   practice, as evidence for/against Conjecture 1.5. Regardless of the
   bookkeeping, produced assignments are only ever accepted after exact
   verification. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Space = Lll_prob.Space
module Event = Lll_prob.Event
module Assignment = Lll_prob.Assignment
module Metrics = Lll_local.Metrics
module Par = Lll_local.Par

type step = {
  var : int;
  value : int;
  incs : (int * Rat.t) list;
  slack : float; (* achieved min slack; >= 0 means the step kept P* *)
}

type t = {
  instance : Instance.t;
  tracker : Space.Cond_tracker.tracker; (* assignment + exact Pr[E_v | assignment] *)
  phi : float array array;
  initial_probs : Rat.t array;
  mutable steps : step list;
  mutable min_slack : float; (* worst slack over all clique steps *)
  mutable infeasible_steps : int;
}

let create instance =
  let g = Instance.dep_graph instance in
  let initial_probs = Instance.initial_probs instance in
  {
    instance;
    tracker = Space.Cond_tracker.create (Instance.space instance) (Instance.events instance);
    phi = Array.init (Graph.m g) (fun _ -> [| 1.0; 1.0 |]);
    initial_probs;
    steps = [];
    min_slack = infinity;
    infeasible_steps = 0;
  }

let assignment t = Space.Cond_tracker.assignment t.tracker
let steps t = List.rev t.steps
let instance t = t.instance
let min_slack t = t.min_slack
let infeasible_steps t = t.infeasible_steps

let side g e v =
  let u, _ = Graph.endpoints g e in
  if v = u then 0 else 1

let phi t e v = t.phi.(e).(side (Instance.dep_graph t.instance) e v)
let set_phi t e v x = t.phi.(e).(side (Instance.dep_graph t.instance) e v) <- x

let inc_vector t ev ~var =
  let after, before = Space.Cond_tracker.prob_vector t.tracker ev ~var in
  Array.map (fun a -> if Rat.is_zero before then Rat.zero else Rat.div a before) after

let record t step =
  t.steps <- step :: t.steps;
  if step.slack < t.min_slack then t.min_slack <- step.slack;
  if step.slack < -1e-7 then t.infeasible_steps <- t.infeasible_steps + 1

(* rank <= 2: the exact argument of Theorem 1.1 / Section 3.1 *)
let fix_small t vid evs ~arity =
  let g = Instance.dep_graph t.instance in
  match evs with
  | [] ->
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:0;
    { var = vid; value = 0; incs = []; slack = infinity }
  | [ u ] ->
    let incs_u = inc_vector t u ~var:vid in
    let best = ref None in
    for y = 0 to arity - 1 do
      let i = incs_u.(y) in
      match !best with
      | Some (_, i') when Rat.leq i' i -> ()
      | _ -> best := Some (y, i)
    done;
    let y, i = Option.get !best in
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
    { var = vid; value = y; incs = [ (u, i) ]; slack = -.(Rat.to_float i -. 1.0) }
  | [ u; v ] ->
    let e = Graph.find_edge_exn g u v in
    let s = phi t e u and w = phi t e v in
    let incs_u = inc_vector t u ~var:vid in
    let incs_v = inc_vector t v ~var:vid in
    let best = ref None in
    for y = 0 to arity - 1 do
      let score = (Rat.to_float incs_u.(y) *. s) +. (Rat.to_float incs_v.(y) *. w) in
      match !best with
      | Some (_, score') when score' <= score -> ()
      | _ -> best := Some (y, score)
    done;
    let y, score = Option.get !best in
    Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
    set_phi t e u (Rat.to_float incs_u.(y) *. s);
    set_phi t e v (Rat.to_float incs_v.(y) *. w);
    { var = vid; value = y; incs = [ (u, incs_u.(y)); (v, incs_v.(y)) ];
      slack = s +. w -. score }
  | _ -> assert false

(* rank >= 3: clique targets + numeric representability *)
let fix_clique t vid evs ~arity =
  let g = Instance.dep_graph t.instance in
  let c = Array.of_list evs in
  let k = Array.length c in
  let clique = Srep_r.clique_edges k in
  (* dependency-graph edge ids of the clique *)
  let dep_edge = Array.map (fun (i, j) -> Graph.find_edge_exn g c.(i) c.(j)) clique in
  (* current clique-product of phi at each event *)
  let base = Array.make k 1.0 in
  Array.iteri
    (fun idx (i, j) ->
      base.(i) <- base.(i) *. phi t dep_edge.(idx) c.(i);
      base.(j) <- base.(j) *. phi t dep_edge.(idx) c.(j))
    clique;
  let vectors = Array.map (fun v -> inc_vector t v ~var:vid) c in
  let targets_of y = Array.mapi (fun i incs -> Rat.to_float incs.(y) *. base.(i)) vectors in
  (* first feasible value, else the largest-slack one *)
  let best = ref None in
  (try
     for y = 0 to arity - 1 do
       let sol = Srep_r.solve ~targets:(targets_of y) () in
       (match !best with
       | Some (_, _, slack') when slack' >= sol.Srep_r.min_slack -> ()
       | _ -> best := Some (y, sol, sol.Srep_r.min_slack));
       if sol.Srep_r.min_slack >= 0. then raise Exit
     done
   with Exit -> ());
  let y, sol, slack = Option.get !best in
  Space.Cond_tracker.fix t.tracker ~var:vid ~value:y;
  Array.iteri
    (fun idx (i, j, pi, pj) ->
      ignore (i, j);
      let ci, cj = clique.(idx) in
      set_phi t dep_edge.(idx) c.(ci) pi;
      set_phi t dep_edge.(idx) c.(cj) pj)
    sol.Srep_r.psi;
  { var = vid; value = y;
    incs = Array.to_list (Array.mapi (fun i v -> (v, vectors.(i).(y))) c);
    slack }

(* The work of a fixing step without the shared-log append; see
   Fix_rank3.fix_var_quiet for the disjointness conditions under which
   this may run concurrently. *)
let fix_var_quiet t vid =
  if Assignment.is_fixed (assignment t) vid then invalid_arg "Fix_rankr.fix_var: already fixed";
  let space = Instance.space t.instance in
  let arity = Lll_prob.Var.arity (Space.var space vid) in
  match Array.to_list (Instance.events_of_var t.instance vid) with
  | ([] | [ _ ] | [ _; _ ]) as evs -> fix_small t vid evs ~arity
  | evs -> fix_clique t vid evs ~arity

let fix_var t vid = record t (fix_var_quiet t vid)

(* One color class's duty lists across [domains]; slack/infeasibility
   aggregates are folded in member order during the merge, identical to
   the sequential loop. *)
let fix_class ?domains t (duties : int list array) =
  let k = Array.length duties in
  if k > 0 then begin
    let buf = Array.make k [] in
    Par.parallel_for ?domains ~n:k (fun i ->
        buf.(i) <- List.map (fun vid -> fix_var_quiet t vid) duties.(i));
    Array.iter (fun steps -> List.iter (fun s -> record t s) steps) buf
  end

let pstar_holds ?(eps = Srep.default_eps) t =
  let g = Instance.dep_graph t.instance in
  let edges_ok =
    Array.for_all
      (fun pair ->
        pair.(0) >= -.eps && pair.(1) >= -.eps && pair.(0) +. pair.(1) <= 2. +. eps)
      t.phi
  in
  edges_ok
  && Array.for_all
       (fun e ->
         let v = Event.id e in
         let bound =
           List.fold_left
             (fun acc eid -> acc *. phi t eid v)
             (Rat.to_float t.initial_probs.(v))
             (Graph.incident_edges g v)
         in
         Rat.to_float (Space.prob (Instance.space t.instance) e ~fixed:(assignment t))
         <= bound +. eps)
       (Instance.events t.instance)

let run ?order ?(metrics = Metrics.disabled) instance =
  let t = create instance in
  let m = Instance.num_vars instance in
  let order = match order with Some o -> o | None -> Array.init m (fun i -> i) in
  if Metrics.enabled metrics then begin
    Metrics.set_phase metrics "fix-rankr";
    Array.iteri
      (fun i vid ->
        let t0 = Metrics.now_ns () in
        fix_var t vid;
        Metrics.record_step metrics ~round:i ~total:m ~wall_ns:(Metrics.now_ns () - t0)
          ~state:(assignment t))
      order
  end
  else Array.iter (fun vid -> fix_var t vid) order;
  t

let solve ?order ?metrics instance =
  let t = run ?order ?metrics instance in
  (assignment t, t)
