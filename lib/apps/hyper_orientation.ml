(* Hypergraph multi-orientation — the paper's rank-3 application.

   Given a rank-3 hypergraph, compute THREE orientations of the hyperedges
   (an orientation assigns each hyperedge a head among its members) such
   that every node is a non-sink in at least two of the three orientations
   (a node is a sink in orientation [i] if it is the head of all of its
   hyperedges under orientation [i]).

   As an LLL instance: one variable per hyperedge encoding the triple of
   heads ([k^3] uniform values for a hyperedge of cardinality [k]); the
   bad event at node [v] ("sink in >= 2 orientations") depends on [v]'s
   incident hyperedges only. A variable affects exactly the members of its
   hyperedge — at most 3 events, so the rank parameter is [r = 3]. For a
   [delta]-regular rank-3 hypergraph the bad-event probability is
   [3 q^2 (1-q) + q^3] with [q = 3^-delta], comfortably below [2^-d]
   already for small [delta] (the harness checks the criterion exactly per
   instance). *)

module Rat = Lll_num.Rat
module Hypergraph = Lll_graph.Hypergraph
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

let num_orientations = 3

(* Decode a variable value into the member indices of the three heads. *)
let heads_of_value ~card value =
  let h1 = value mod card in
  let h2 = value / card mod card in
  let h3 = value / (card * card) mod card in
  [| h1; h2; h3 |]

(* Is node [v] the head of hyperedge [he] in orientation [i] under
   [value]? *)
let is_head h he value ~orientation v =
  let members = Hypergraph.edge h he in
  let card = Array.length members in
  let heads = heads_of_value ~card value in
  members.(heads.(orientation)) = v

let sink_in h v lookup ~orientation =
  let inc = Hypergraph.incident h v in
  inc <> [] && List.for_all (fun he -> is_head h he (lookup he) ~orientation v) inc

let bad_event h ~id v =
  let scope = Array.of_list (Hypergraph.incident h v) in
  Event.make ~id ~name:(Printf.sprintf "2sink@%d" v) ~scope (fun lookup ->
      let sinks = ref 0 in
      for i = 0 to num_orientations - 1 do
        if sink_in h v lookup ~orientation:i then incr sinks
      done;
      !sinks >= 2)

let instance h =
  if Hypergraph.n h = 0 then invalid_arg "Hyper_orientation.instance: empty hypergraph";
  if Hypergraph.rank h > 3 then invalid_arg "Hyper_orientation.instance: rank > 3";
  let vars =
    Array.init (Hypergraph.m h) (fun he ->
        let card = Array.length (Hypergraph.edge h he) in
        Var.uniform ~id:he ~name:(Printf.sprintf "heads%d" he) (card * card * card))
  in
  let events = Array.init (Hypergraph.n h) (fun v -> bad_event h ~id:v v) in
  Instance.create (Space.create vars) events

(* Combinatorial validity of a solution: every node with at least one
   hyperedge is a non-sink in at least two of the three orientations. *)
let is_valid h (a : Assignment.t) =
  let ok = ref true in
  for v = 0 to Hypergraph.n h - 1 do
    if Hypergraph.incident h v <> [] then begin
      let lookup he = Assignment.value_exn a he in
      let sinks = ref 0 in
      for i = 0 to num_orientations - 1 do
        if sink_in h v lookup ~orientation:i then incr sinks
      done;
      if !sinks >= 2 then ok := false
    end
  done;
  !ok

(* Heads of each hyperedge in each orientation (for display). *)
let decode h (a : Assignment.t) =
  Array.init (Hypergraph.m h) (fun he ->
      let members = Hypergraph.edge h he in
      let card = Array.length members in
      let heads = heads_of_value ~card (Assignment.value_exn a he) in
      Array.map (fun idx -> members.(idx)) heads)
