(** Sinkless orientation: the canonical problem at the sharp threshold
    [p = 2^-d], plus its strictly-below-threshold relaxation. *)

module Graph = Lll_graph.Graph
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

type orientation = To_min | To_max | Unoriented

val orientation_of_value : int -> orientation

val instance : Graph.t -> Instance.t
(** One uniform binary variable per edge; the bad event at node [v]
    ("all edges point at [v]") has probability exactly [2^-deg(v)] —
    at the threshold on regular graphs. Rank 2. *)

val relaxed_instance : Graph.t -> Instance.t
(** One uniform ternary variable per edge (third value = leave the edge
    unoriented); bad-event probability [3^-deg(v)], strictly below the
    threshold. Rank 2. *)

val is_sinkless : Graph.t -> Assignment.t -> bool
(** No node has all incident edges oriented at it. *)

val points_at : Graph.t -> int -> int -> int -> bool
(** [points_at g e value v]: edge [e] with value [value] points at [v]. *)

val orientations : Graph.t -> Assignment.t -> orientation array

val adversarial_path_assignment : Graph.t -> victim:int -> Assignment.t
(** Orient every edge toward [victim] (by BFS distance): an explicit
    adversarial run showing the fixing discipline's [2^d] bound is
    achieved — and insufficient — exactly at the threshold. *)
