(** Hypergraph multi-orientation (the paper's rank-3 application):
    compute three orientations of a rank-3 hypergraph such that every
    node is a non-sink in at least two of them. *)

module Hypergraph = Lll_graph.Hypergraph
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

val num_orientations : int

val instance : Hypergraph.t -> Instance.t
(** One uniform variable per hyperedge encoding the triple of heads;
    rank [r = 3]. @raise Invalid_argument on hypergraphs of rank > 3. *)

val is_valid : Hypergraph.t -> Assignment.t -> bool
(** Every (non-isolated) node is a non-sink in at least two
    orientations. *)

val decode : Hypergraph.t -> Assignment.t -> int array array
(** [decode h a] maps each hyperedge to its three heads (node ids). *)

val heads_of_value : card:int -> int -> int array
(** Member indices of the three heads encoded by a variable value. *)

val is_head : Hypergraph.t -> int -> int -> orientation:int -> int -> bool
