(** Property B (hypergraph 2-coloring), the original LLL application:
    a factor of exactly two above the sharp threshold in its binary form
    (for linear structures), strictly below it with an abstain color.
    Variables live on hypergraph nodes, bad events on hyperedges; the
    rank is the maximum node degree. *)

module Hypergraph = Lll_graph.Hypergraph
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

val instance : Hypergraph.t -> Instance.t
(** Binary colors: monochromatic-edge probability [2^(1-k)] —
    above the threshold. *)

val relaxed_instance : Hypergraph.t -> Instance.t
(** Ternary (abstain allowed): probability [2*3^-k] — below the
    threshold for [k >= 2]. *)

val is_proper : Hypergraph.t -> Assignment.t -> bool
(** No hyperedge has all members the same real color. *)

val coloring : Hypergraph.t -> Assignment.t -> int array
