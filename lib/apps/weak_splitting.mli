(** Relaxed weak splitting: color the U-side of a bipartite graph so that
    every V-node sees at least [min_seen] distinct colors (paper's
    instantiation: 16 colors, [min_seen = 2], U-degree at most 3). *)

module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

type params = { colors : int; min_seen : int }

val default_params : params
(** 16 colors, at least 2 seen. *)

val instance : ?params:params -> nv:int -> int array array -> Instance.t
(** [instance ~nv adj_u]: [adj_u.(u)] lists the V-neighbors of U-node
    [u]; rank equals the maximum U-degree. *)

val is_valid : ?params:params -> nv:int -> int array array -> Assignment.t -> bool

val coloring : Assignment.t -> int -> int array
(** The U-side colors of a complete assignment. *)
