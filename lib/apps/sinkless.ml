(* Sinkless orientation — the paper's canonical problem sitting *exactly*
   at the threshold [p = 2^-d].

   Orient every edge of a graph so that no node has all of its incident
   edges pointing at it. With uniformly random orientations, the bad event
   at a degree-[delta] node has probability exactly [2^-delta]; on a
   [d]-regular graph the dependency degree is [d] and [p = 2^-d]: the LLL
   criterion [p < 2^-d] fails by the thinnest possible margin, and indeed
   sinkless orientation carries the Omega(log log n) randomized /
   Omega(log n) deterministic lower bounds cited by the paper.

   The below-threshold relaxation [relaxed_instance] allows an edge to
   remain unoriented (three uniform values); a node is bad only if all its
   edges are oriented inward, which has probability [3^-delta < 2^-delta]:
   strictly below the threshold, so Theorem 1.1 applies. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

(* Edge value conventions. Binary: 0 = points to the smaller endpoint,
   1 = points to the larger. Ternary adds 2 = unoriented. *)

type orientation = To_min | To_max | Unoriented

let orientation_of_value = function
  | 0 -> To_min
  | 1 -> To_max
  | 2 -> Unoriented
  | _ -> invalid_arg "Sinkless.orientation_of_value"

(* Does edge [e] of [g], valued [value], point at node [v]? *)
let points_at g e value v =
  let u, w = Graph.endpoints g e in
  match orientation_of_value value with
  | To_min -> v = u
  | To_max -> v = w
  | Unoriented -> false

let sink_event g ~id v =
  let scope = Array.of_list (Graph.incident_edges g v) in
  Event.make ~id ~name:(Printf.sprintf "sink@%d" v) ~scope (fun lookup ->
      Array.for_all (fun e -> points_at g e (lookup e) v) scope)

(* The at-threshold instance: one uniform binary variable per edge. *)
let instance g =
  if Graph.n g = 0 then invalid_arg "Sinkless.instance: empty graph";
  let vars =
    Array.init (Graph.m g) (fun e -> Var.uniform ~id:e ~name:(Printf.sprintf "edge%d" e) 2)
  in
  let events = Array.init (Graph.n g) (fun v -> sink_event g ~id:v v) in
  Instance.create (Space.create vars) events

(* The strictly-below-threshold relaxation: one uniform ternary variable
   per edge (value 2 = unoriented). *)
let relaxed_instance g =
  if Graph.n g = 0 then invalid_arg "Sinkless.relaxed_instance: empty graph";
  let vars =
    Array.init (Graph.m g) (fun e -> Var.uniform ~id:e ~name:(Printf.sprintf "edge%d" e) 3)
  in
  let events = Array.init (Graph.n g) (fun v -> sink_event g ~id:v v) in
  Instance.create (Space.create vars) events

(* Combinatorial validity: no node has all incident edges pointing at it.
   (Isolated nodes are trivially sinkless here; in the classic problem
   min-degree bounds are assumed by the instance construction.) *)
let is_sinkless g (a : Assignment.t) =
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let inc = Graph.incident_edges g v in
    if inc <> [] && List.for_all (fun e -> points_at g e (Assignment.value_exn a e) v) inc then
      ok := false
  done;
  !ok

let orientations g (a : Assignment.t) =
  Array.init (Graph.m g) (fun e -> orientation_of_value (Assignment.value_exn a e))

(* The explicit adversarial run of the T5 experiment: within the exact
   discipline of Theorem 1.1's proof (every step's Inc sum is at most 2),
   orient a path's edges one by one toward its midpoint. At the threshold
   [p = 2^-d] this produces a sink — witnessing that the theorem's
   conclusion genuinely fails once [p * 2^d >= 1]. Returns the assignment
   (on the at-threshold binary instance over [g]) and the victim node. *)
let adversarial_path_assignment g ~victim =
  let m = Graph.m g in
  let a = Assignment.empty m in
  let dist = Graph.bfs_dist g victim in
  for e = 0 to m - 1 do
    let u, w = Graph.endpoints g e in
    (* orient toward the endpoint closer to the victim *)
    let value =
      if dist.(u) >= 0 && (dist.(w) < 0 || dist.(u) <= dist.(w)) then 0 (* to min = u *)
      else 1
    in
    Assignment.set_inplace a e value
  done;
  a
