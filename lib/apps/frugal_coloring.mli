(** Frugal hypergraph edge coloring (the [Har18] weak-splitting variant
    the paper cites): every node sees each color at most
    [max_per_color] times. Rank [r <= 3]. *)

module Hypergraph = Lll_graph.Hypergraph
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

type params = { colors : int; max_per_color : int }

val default_params : params
(** 16 colors, at most 2 per color per node. *)

val instance : ?params:params -> Hypergraph.t -> Instance.t
(** @raise Invalid_argument on rank > 3 or degenerate parameters. *)

val is_valid : ?params:params -> Hypergraph.t -> Assignment.t -> bool
val coloring : Hypergraph.t -> Assignment.t -> int array
val overloaded : max_per_color:int -> int list -> bool
