(* The application layer as first-class registry engines.

   The scenario corpus (lib/scenario) measures round counts of every
   applicable engine on threshold-pinned workloads, so the applications
   themselves must speak the registry interface. Each engine here first
   *recognises* its application inside a bare [Instance.t] — both the
   incidence structure and, through the compiled event tables of the
   space, the exact semantics of every bad event — and only then runs
   the combinatorial algorithm. Recognition is exact: an instance whose
   events merely look like sink events but differ on a single tuple is
   rejected, so the [guarantees] predicates below are sound against the
   fuzz harness's hostile lookalikes.

   Both engines are deterministic and total: an unrecognised instance
   gets a best-effort constant assignment (never an exception), keeping
   them safe to run inside the adversarial fuzz sweep alongside the
   generic fixers. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance
module Solver = Lll_core.Solver

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* One-shot driver: all work happens on the first [advance]/[finish]. *)
let oneshot (compute : Solver.params -> Instance.t -> Solver.outcome) : Solver.impl =
 fun params inst ->
  let result = lazy (compute params inst) in
  let spent = ref false in
  {
    Solver.advance =
      (fun () ->
        if !spent then false
        else begin
          ignore (Lazy.force result);
          spent := true;
          false
        end);
    peek_assignment = (fun () -> (Lazy.force result).Solver.assignment);
    peek_trace = (fun () -> []);
    finish =
      (fun () ->
        spent := true;
        Lazy.force result);
  }

let outcome ?rounds ?(detail = []) assignment =
  {
    Solver.assignment;
    trace = [];
    rounds;
    pstar = None;
    max_violation = None;
    detail;
  }

(* Deterministic fallback for unrecognised instances: all zeros. *)
let fallback inst =
  let a = Assignment.empty (Instance.num_vars inst) in
  for v = 0 to Instance.num_vars inst - 1 do
    Assignment.set_inplace a v 0
  done;
  outcome ~detail:[ ("recognized", "false") ] a

(* All variables share one arity (the structure both applications need). *)
let uniform_arity inst =
  let sp = Instance.space inst in
  let nu = Instance.num_vars inst in
  if nu = 0 then None
  else begin
    let a0 = Lll_prob.Var.arity (Space.var sp 0) in
    let ok = ref true in
    for u = 1 to nu - 1 do
      if Lll_prob.Var.arity (Space.var sp u) <> a0 then ok := false
    done;
    if !ok then Some a0 else None
  end

(* ------------------------------------------------------------------ *)
(* Sinkless orientation                                                *)
(* ------------------------------------------------------------------ *)

(* A recognised sinkless instance: variable [e] is edge [e] of [graph]
   (endpoints = the two events depending on it, in sorted order, which
   matches the min/max value convention of [Sinkless]), and the bad
   event at node [v] holds on exactly one scope tuple — every incident
   edge pointing at [v]. *)
type sink_shape = { graph : Graph.t; arity : int }

let recognize_sinkless inst =
  let n = Instance.num_events inst and m = Instance.num_vars inst in
  if n = 0 || m = 0 then None
  else
    match uniform_arity inst with
    | Some arity when arity = 2 || arity = 3 -> (
      let sp = Instance.space inst in
      let exception Reject in
      try
        (* every variable = an edge between two distinct events *)
        let ends =
          Array.init m (fun e ->
              match Instance.events_of_var inst e with
              | [| u; v |] when u <> v && v < n -> (u, v)
              | _ -> raise Reject)
        in
        (* no parallel edges (Graph.create would silently renumber) *)
        let seen = Hashtbl.create (2 * m) in
        Array.iter
          (fun uv ->
            if Hashtbl.mem seen uv then raise Reject;
            Hashtbl.add seen uv ())
          ends;
        (* semantics: event v is bad on exactly the all-point-at-v tuple *)
        Array.iter
          (fun ev ->
            match Space.compiled_table sp ev with
            | None -> raise Reject
            | Some t ->
              if Array.length t.Event.tscope = 0 then raise Reject;
              let v = Event.id ev in
              let code = ref 0 in
              Array.iteri
                (fun pos e ->
                  let u, w = ends.(e) in
                  let toward_v =
                    if v = u then 0 else if v = w then 1 else raise Reject
                  in
                  code := !code + (toward_v * t.Event.strides.(pos)))
                t.Event.tscope;
              if t.Event.codes <> [| !code |] then raise Reject)
          (Instance.events inst);
        Some { graph = Graph.create ~n (Array.to_list ends); arity }
      with Reject | Invalid_argument _ -> None)
    | _ -> None

let sinkless_shape inst = Option.map (fun s -> s.graph) (recognize_sinkless inst)

(* Orient edge [e] toward endpoint [t]: 0 points at the smaller
   endpoint, 1 at the larger (the [Sinkless] value convention). *)
let orient g a e ~toward =
  let u, _ = Graph.endpoints g e in
  Assignment.set_inplace a e (if toward = u then 0 else 1)

(* Binary instances: per component, find one cycle (BFS non-tree edge +
   LCA walk), orient it cyclically, then orient every remaining node's
   discovery edge toward the cycle by multi-source BFS. Every node ends
   up with an outgoing edge iff its component contains a cycle; the
   reported LOCAL rounds are the worst distance to a cycle plus one. *)
let solve_binary g =
  let n = Graph.n g and m = Graph.m g in
  let a = Assignment.empty m in
  for e = 0 to m - 1 do
    Assignment.set_inplace a e 0
  done;
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let visited = Array.make n false in
  let depth = Array.make n 0 in
  let on_tree = Array.make n false in
  let max_depth = ref 0 in
  let all_cyclic = ref true in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      let q = Queue.create () in
      visited.(root) <- true;
      Queue.add root q;
      let nontree = ref None in
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        List.iter
          (fun e ->
            let w = Graph.other_endpoint g e v in
            if not visited.(w) then begin
              visited.(w) <- true;
              parent.(w) <- v;
              parent_edge.(w) <- e;
              Queue.add w q
            end
            else if e <> parent_edge.(v) && !nontree = None then nontree := Some (v, w, e))
          (Graph.incident_edges g v)
      done;
      match !nontree with
      | None -> all_cyclic := false (* a tree: any orientation has a sink *)
      | Some (u0, w0, e0) ->
        (* the unique cycle through the non-tree edge: both tree chains
           up to the lowest common ancestor, closed by [e0] *)
        let mark = Hashtbl.create 16 in
        let x = ref u0 in
        Hashtbl.replace mark !x ();
        while parent.(!x) >= 0 do
          x := parent.(!x);
          Hashtbl.replace mark !x ()
        done;
        let lca = ref w0 in
        while not (Hashtbl.mem mark !lca) do
          lca := parent.(!lca)
        done;
        let cycle = ref [ !lca ] in
        let x = ref u0 in
        while !x <> !lca do
          orient g a parent_edge.(!x) ~toward:parent.(!x);
          cycle := !x :: !cycle;
          x := parent.(!x)
        done;
        let y = ref w0 in
        while !y <> !lca do
          orient g a parent_edge.(!y) ~toward:!y;
          cycle := !y :: !cycle;
          y := parent.(!y)
        done;
        orient g a e0 ~toward:u0;
        (* everything else points toward the cycle *)
        let q2 = Queue.create () in
        List.iter
          (fun v ->
            on_tree.(v) <- true;
            depth.(v) <- 0;
            Queue.add v q2)
          !cycle;
        while not (Queue.is_empty q2) do
          let v = Queue.pop q2 in
          if depth.(v) > !max_depth then max_depth := depth.(v);
          List.iter
            (fun e ->
              let w = Graph.other_endpoint g e v in
              if not on_tree.(w) then begin
                on_tree.(w) <- true;
                depth.(w) <- depth.(v) + 1;
                orient g a e ~toward:v;
                Queue.add w q2
              end)
            (Graph.incident_edges g v)
        done
    end
  done;
  (a, !max_depth + 1, !all_cyclic)

let sinkless_compute _params inst =
  match recognize_sinkless inst with
  | None -> fallback inst
  | Some { graph; arity = 3 } ->
    (* strictly below the threshold: leaving every edge unoriented is a
       0-round solution — no edge points anywhere, so no sink event *)
    let a = Assignment.empty (Graph.m graph) in
    for e = 0 to Graph.m graph - 1 do
      Assignment.set_inplace a e 2
    done;
    outcome ~rounds:0 ~detail:[ ("mode", "relaxed") ] a
  | Some { graph; _ } ->
    let a, rounds, all_cyclic = solve_binary graph in
    let detail =
      ("mode", "binary") :: (if all_cyclic then [] else [ ("tree_component", "true") ])
    in
    outcome ~rounds ~detail a

let sinkless_guarantee inst =
  match recognize_sinkless inst with
  | None -> false
  | Some { arity = 3; _ } -> true
  | Some { graph; _ } ->
    (* binary instances are solvable iff every component has a cycle
       (each node needs its own outgoing edge) *)
    let _, _, all_cyclic = solve_binary graph in
    all_cyclic

(* ------------------------------------------------------------------ *)
(* Relaxed weak splitting (min_seen = 2: monochromatic bad events)     *)
(* ------------------------------------------------------------------ *)

(* A structurally recognised instance: [c]-ary variables, scopes of
   size >= 2, and every event occurring (at least) on all-equal scope
   tuples — the shape of [Weak_splitting.instance] with [min_seen = 2].
   The structural check is a cheap necessary condition used to decide
   whether running the repair is worthwhile; it does NOT prove the
   events are exactly the monochromatic ones (scopes can be too large
   to tabulate), so the [guarantees] predicate separately demands
   table-exact semantics. *)
type ws_shape = { colors : int; scopes : int array array }

let recognize_ws inst =
  if Instance.num_events inst = 0 then None
  else
    match uniform_arity inst with
    | Some c when c >= 2 -> (
      let exception Reject in
      try
        let scopes =
          Array.map
            (fun ev ->
              let scope = Event.scope ev in
              if Array.length scope < 2 then raise Reject;
              (* necessary condition: monochromatic tuples are bad *)
              for y = 0 to c - 1 do
                if not (Event.pred_holds ev (fun _ -> y)) then raise Reject
              done;
              scope)
            (Instance.events inst)
        in
        Some { colors = c; scopes }
      with Reject | Invalid_argument _ -> None)
    | _ -> None

(* Exact semantics, for the guarantee: every event's compiled table
   lists precisely the [c] constant tuples. Events whose scope is too
   large to tabulate make the claim unprovable here, so the guarantee
   stays [false] (the engine still solves them best-effort). *)
let ws_semantics_exact inst c =
  let sp = Instance.space inst in
  Array.for_all
    (fun ev ->
      match Space.compiled_table sp ev with
      | None -> false
      | Some t ->
        let stride_sum = Array.fold_left ( + ) 0 t.Event.strides in
        t.Event.codes = Array.init c (fun y -> y * stride_sum))
    (Instance.events inst)

(* Sequential greedy repair: in id order, give each variable the
   smallest color that no already-monochromatic event (in which it is
   the last scope variable) forces it away from. At most [rank]
   events end at any variable, so [colors > rank] always leaves a free
   color — this pass is provably correct under the guarantee. *)
let ws_sequential shape nu =
  let col = Array.make nu 0 in
  (* events whose max scope var is u, precomputed *)
  let ending = Array.make nu [] in
  Array.iter
    (fun scope ->
      let last = Array.fold_left max scope.(0) scope in
      ending.(last) <- scope :: ending.(last))
    shape.scopes;
  for u = 0 to nu - 1 do
    let forbidden =
      List.filter_map
        (fun scope ->
          let c0 = ref (-1) and mono = ref true in
          Array.iter
            (fun w ->
              if w <> u then
                if !c0 = -1 then c0 := col.(w) else if col.(w) <> !c0 then mono := false)
            scope;
          if !mono && !c0 >= 0 then Some !c0 else None)
        ending.(u)
    in
    let c = ref 0 in
    while List.mem !c forbidden && !c < shape.colors - 1 do
      incr c
    done;
    col.(u) <- !c
  done;
  col

let max_repair_sweeps = 8

let ws_compute params inst =
  match recognize_ws inst with
  | None -> fallback inst
  | Some shape ->
    let domains = params.Solver.domains in
    let nu = Instance.num_vars inst in
    let c = shape.colors in
    let nscopes = Array.length shape.scopes in
    (* round 0: hash the id into the palette *)
    let col = Array.init nu (fun u -> u mod c) in
    (* the repair sweeps are genuine LOCAL rounds, so they fan out
       across the domain pool: per-scope monochromaticity flags, the
       designated-repairer set and the color hops are all disjoint
       per-cell writes (designation is idempotent — same value for the
       same cell), so the sweep is deterministic for any domain count *)
    let mono = Array.make nscopes false in
    let recompute_mono () =
      Lll_local.Par.parallel_for ?domains ~n:nscopes (fun i ->
          let scope = shape.scopes.(i) in
          mono.(i) <- Array.for_all (fun w -> col.(w) = col.(scope.(0))) scope)
    in
    let any_bad () = Array.exists Fun.id mono in
    let designated = Array.make nu false in
    let sweeps = ref 0 in
    recompute_mono ();
    while any_bad () && !sweeps < max_repair_sweeps do
      incr sweeps;
      (* each bad event delegates repair to its largest variable, which
         hops to a deterministically different color *)
      Array.fill designated 0 nu false;
      Lll_local.Par.parallel_for ?domains ~n:nscopes (fun i ->
          if mono.(i) then begin
            let scope = shape.scopes.(i) in
            let last = Array.fold_left max scope.(0) scope in
            designated.(last) <- true
          end);
      Lll_local.Par.parallel_for ?domains ~n:nu (fun u ->
          if designated.(u) then col.(u) <- (col.(u) + 1 + (u mod (c - 1))) mod c);
      recompute_mono ()
    done;
    let col, rounds, detail =
      if not (any_bad ()) then (col, Some !sweeps, [ ("repair_sweeps", string_of_int !sweeps) ])
      else
        (* parallel repair cycled: fall back to the provably-correct
           sequential pass (rounds no longer LOCAL-meaningful) *)
        (ws_sequential shape nu, None, [ ("fallback", "sequential") ])
    in
    let a = Assignment.empty nu in
    Array.iteri (fun u v -> Assignment.set_inplace a u v) col;
    outcome ?rounds ~detail a

let ws_guarantee inst =
  match recognize_ws inst with
  | None -> false
  | Some shape ->
    shape.colors > Instance.rank inst && ws_semantics_exact inst shape.colors

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let registered =
  lazy
    (let (_ : Solver.t) =
       Solver.register ~name:"sinkless-orient"
         ~doc:
           "combinatorial sinkless orientation: recognises Apps.Sinkless instances exactly \
            (compiled-table semantics) and orients each component around a cycle; relaxed \
            ternary instances solved in 0 rounds [BFHKLRSU16]"
         ~caps:
           {
             Solver.max_rank = Some 2;
             exact = true;
             distributed = true;
             randomized = false;
             claims_pstar = false;
           }
         ~guarantees:sinkless_guarantee (oneshot sinkless_compute)
     in
     let (_ : Solver.t) =
       Solver.register ~name:"weak-split-greedy"
         ~doc:
           "combinatorial relaxed weak splitting: recognises Apps.Weak_splitting \
            monochromatic events exactly and repairs an id-hash coloring in O(1) parallel \
            sweeps, with a sequential greedy fallback for colors > rank"
         ~caps:
           {
             Solver.max_rank = None;
             exact = true;
             distributed = true;
             randomized = false;
             claims_pstar = false;
           }
         ~guarantees:ws_guarantee (oneshot ws_compute)
     in
     ())

let ensure_registered () = Lazy.force registered
