(* Relaxed weak splitting (the paper's second application).

   Given a bipartite graph B = (V ∪ U, E), color the nodes of U with
   [colors] colors so that every node of V sees at least [min_seen]
   distinct colors among its U-neighbors. The paper's instantiation:
   U-degrees at most 3 (so each U-node's color affects at most 3
   constraints: rank [r <= 3]), 16 colors, [min_seen = 2].

   The bad event at [v in V] is "v sees fewer than [min_seen] colors";
   for [min_seen = 2] and [deg(v) = delta] its probability is
   [colors^(1-delta)], which is strictly below [2^-d] (with
   [d <= 2*delta]) as soon as [colors = 16] and [delta >= 3].

   The bipartite structure is given as [adj_u]: for each U-node, the
   array of its V-neighbors. *)

module Rat = Lll_num.Rat
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

type params = { colors : int; min_seen : int }

let default_params = { colors = 16; min_seen = 2 }

let distinct_count l =
  List.length (List.sort_uniq compare l)

let instance ?(params = default_params) ~nv (adj_u : int array array) =
  if params.colors < 2 then invalid_arg "Weak_splitting.instance: need >= 2 colors";
  if params.min_seen < 1 || params.min_seen > params.colors then
    invalid_arg "Weak_splitting.instance: bad min_seen";
  let nu = Array.length adj_u in
  (* V-node -> incident U-nodes *)
  let nbrs_v = Array.make nv [] in
  Array.iteri
    (fun u vs ->
      Array.iter
        (fun v ->
          if v < 0 || v >= nv then invalid_arg "Weak_splitting.instance: V index out of range";
          nbrs_v.(v) <- u :: nbrs_v.(v))
        vs)
    adj_u;
  let vars =
    Array.init nu (fun u -> Var.uniform ~id:u ~name:(Printf.sprintf "u%d" u) params.colors)
  in
  let events =
    Array.init nv (fun v ->
        let scope = Array.of_list (List.rev nbrs_v.(v)) in
        Event.make ~id:v ~name:(Printf.sprintf "few-colors@%d" v) ~scope (fun lookup ->
            distinct_count (List.map lookup (Array.to_list scope)) < params.min_seen))
  in
  Instance.create (Space.create vars) events

(* Combinatorial validity: every V-node with at least [min_seen] distinct
   *neighbors* sees at least [min_seen] distinct colors. (V-nodes of
   degree < min_seen can never satisfy the constraint; instance builders
   are expected to provide enough degree, as the paper's parameters do.) *)
let is_valid ?(params = default_params) ~nv (adj_u : int array array) (a : Assignment.t) =
  let nbrs_v = Array.make nv [] in
  Array.iteri (fun u vs -> Array.iter (fun v -> nbrs_v.(v) <- u :: nbrs_v.(v)) vs) adj_u;
  Array.for_all
    (fun nbrs ->
      nbrs = [] || distinct_count (List.map (fun u -> Assignment.value_exn a u) nbrs) >= params.min_seen)
    nbrs_v

let coloring (a : Assignment.t) nu = Array.init nu (fun u -> Assignment.value_exn a u)
