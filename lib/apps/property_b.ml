(* Property B — hypergraph 2-coloring, the original classic LLL
   application — positioned against the paper's sharp threshold.

   Color the NODES of a k-uniform hypergraph so that no hyperedge is
   monochromatic. Here the roles are flipped relative to the orientation
   applications: variables live on the hypergraph's nodes and bad events
   on its hyperedges, so the LLL dependency graph has one node per
   HYPEREDGE, and the rank r is the maximum node degree (a node's color
   affects all hyperedges through it).

   - Binary colors: a k-edge is monochromatic with probability
     [2^(1-k)]. With node degree delta, the dependency degree is at most
     [k*(delta-1)], and for linear structures (delta = 2) it is exactly
     [k] in the worst case — so [p * 2^d = 2]: property B sits a factor
     of TWO above the sharp threshold, for every k. Like sinkless
     orientation, it is solvable (Moser-Tardos works under ep(d+1) < 1
     for k >= 4) but outside the paper's deterministic regime.
   - Ternary relaxation: allow an "abstain" color that breaks
     monochromaticity; a k-edge is bad with probability [2 * 3^-k],
     strictly below [2^-k] for every k >= 2 — inside the regime, so the
     deterministic fixers apply whenever delta <= 3. *)

module Rat = Lll_num.Rat
module Hypergraph = Lll_graph.Hypergraph
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

(* colors 0 and 1 are real; [abstain] (value 2, ternary only) never makes
   an edge monochromatic *)

let mono_event h ~id ~colors:_ e =
  let scope = Hypergraph.edge h e in
  Event.make ~id ~name:(Printf.sprintf "mono@%d" e) ~scope (fun lookup ->
      let c0 = lookup scope.(0) in
      c0 < 2 && Array.for_all (fun v -> lookup v = c0) scope)

let build ~colors h =
  if Hypergraph.m h = 0 then invalid_arg "Property_b: no hyperedges";
  let vars =
    Array.init (Hypergraph.n h) (fun v ->
        Var.uniform ~id:v ~name:(Printf.sprintf "node%d" v) colors)
  in
  let events = Array.init (Hypergraph.m h) (fun e -> mono_event h ~id:e ~colors e) in
  Instance.create (Space.create vars) events

let instance h = build ~colors:2 h
(* the at/above-threshold classic *)

let relaxed_instance h = build ~colors:3 h
(* the below-threshold relaxation with an abstain color *)

(* Combinatorial validity: no hyperedge has all members carrying the same
   real (non-abstain) color. *)
let is_proper h (a : Assignment.t) =
  Array.for_all
    (fun members ->
      let c0 = Assignment.value_exn a members.(0) in
      not (c0 < 2 && Array.for_all (fun v -> Assignment.value_exn a v = c0) members))
    (Hypergraph.edges h)

let coloring h (a : Assignment.t) =
  Array.init (Hypergraph.n h) (fun v -> Assignment.value_exn a v)
