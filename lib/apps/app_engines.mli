(** The application layer as first-class solver engines.

    Two registry engines that recognise application-shaped instances
    structurally — by matching the variable/event incidence AND the
    exact semantics of every compiled event table — and solve them with
    the combinatorial algorithm of the application instead of a generic
    fixing process:

    - ["sinkless-orient"]: sinkless orientation ({!Sinkless.instance} /
      {!Sinkless.relaxed_instance}). Relaxed (ternary) instances are
      solved in 0 LOCAL rounds by leaving every edge unoriented; binary
      at-threshold instances by orienting a cycle of each component
      cyclically and every remaining edge toward that cycle — the
      reported round count is the largest distance to a cycle plus one,
      the genuine LOCAL time of the construction.
    - ["weak-split-greedy"]: relaxed weak splitting
      ({!Weak_splitting.instance}, [min_seen = 2]). A 0-round id-hash
      coloring plus a bounded number of parallel repair rounds; if the
      repair loop does not converge the engine falls back to a provably
      correct sequential greedy pass (possible whenever the palette is
      larger than the instance rank). Solving only needs the structural
      shape; the guarantee additionally demands table-exact
      monochromatic semantics, so it is claimed only when every event's
      scope is small enough to tabulate.

    Both engines are deterministic, backend-independent and total: on
    instances that do not match their application they return a
    best-effort constant assignment and their {!Lll_core.Solver.guarantees}
    predicate returns [false], so the shared post-condition (exact
    verification) is the only judge. Registration is effectful; call
    {!ensure_registered} before consulting the registry. *)

val ensure_registered : unit -> unit
(** Register both engines (idempotent). *)

val sinkless_shape : Lll_core.Instance.t -> Lll_graph.Graph.t option
(** The reconstructed graph of a semantically recognised sinkless
    instance (binary or ternary), for tests. *)
