(* Frugal hypergraph edge coloring — the weak-splitting relative the
   paper points to ([Har18, Definition 2.5] via [BGK+19]).

   Color the hyperedges of a rank-<=3 hypergraph with [colors] colors so
   that every node sees each color at most [max_per_color] times among
   its incident hyperedges. One uniform variable per hyperedge, affecting
   its <= 3 member nodes: rank r <= 3, so Theorem 1.3 applies whenever the
   exact criterion check passes (e.g. 16 colors, degree 3, at most 2 per
   color; or 64 colors, degree 4, at most 2 per color). *)

module Rat = Lll_num.Rat
module Hypergraph = Lll_graph.Hypergraph
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance

type params = { colors : int; max_per_color : int }

let default_params = { colors = 16; max_per_color = 2 }

(* some color occurs more than [max_per_color] times in [cols]? *)
let overloaded ~max_per_color cols =
  let sorted = List.sort compare cols in
  let rec go current count = function
    | [] -> false
    | c :: rest ->
      if c = current then count + 1 > max_per_color || go current (count + 1) rest
      else go c 1 rest
  in
  match sorted with [] -> false | c :: rest -> go c 1 rest

let instance ?(params = default_params) h =
  if Hypergraph.rank h > 3 then invalid_arg "Frugal_coloring.instance: rank > 3";
  if params.colors < 2 then invalid_arg "Frugal_coloring.instance: need >= 2 colors";
  if params.max_per_color < 1 then invalid_arg "Frugal_coloring.instance: need max_per_color >= 1";
  let vars =
    Array.init (Hypergraph.m h) (fun he ->
        Var.uniform ~id:he ~name:(Printf.sprintf "edge%d" he) params.colors)
  in
  let events =
    Array.init (Hypergraph.n h) (fun v ->
        let scope = Array.of_list (Hypergraph.incident h v) in
        Event.make ~id:v ~name:(Printf.sprintf "overloaded@%d" v) ~scope (fun lookup ->
            overloaded ~max_per_color:params.max_per_color
              (List.map lookup (Array.to_list scope))))
  in
  Instance.create (Space.create vars) events

let is_valid ?(params = default_params) h (a : Assignment.t) =
  let ok = ref true in
  for v = 0 to Hypergraph.n h - 1 do
    let cols = List.map (fun he -> Assignment.value_exn a he) (Hypergraph.incident h v) in
    if overloaded ~max_per_color:params.max_per_color cols then ok := false
  done;
  !ok

let coloring h (a : Assignment.t) =
  Array.init (Hypergraph.m h) (fun he -> Assignment.value_exn a he)
