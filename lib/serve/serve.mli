(** Transport loops: one thread-safe scheduler behind stdio framing or a
    worker-pool unix-socket server. *)

exception Socket_busy of { path : string; reason : string }
(** Raised instead of clobbering a live server's socket (or any
    non-socket file) when binding. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide so writes to dropped clients surface as
    per-connection errors. Both serve entry points call this. *)

val serve_channels : Sched.t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Serve frames until clean EOF or a shutdown request. *)

val serve_stdio :
  ?capacity:int ->
  ?domains:int ->
  ?store_dir:string ->
  ?max_frame:int ->
  ?max_batch:int ->
  unit ->
  unit
(** Serve on stdin/stdout (binary mode) until EOF or shutdown.
    [store_dir] backs the scheduler's instance store with an artifact
    directory. *)

val serve_socket :
  ?capacity:int ->
  ?domains:int ->
  ?store_dir:string ->
  ?workers:int ->
  ?max_frame:int ->
  ?max_batch:int ->
  path:string ->
  unit ->
  unit
(** Bind a unix socket at [path] and serve until a shutdown request:
    accepted connections are fanned out over [workers] OCaml 5 domains
    (default 1) through a bounded queue, each connection owned end to
    end by one worker against the shared scheduler. A provably stale
    socket file at [path] is replaced; a live server or a non-socket
    file raises {!Socket_busy}. A client dropping mid-response, a
    hostile length header, or a malformed batch ends only that
    connection. On shutdown the queue drains, in-flight connections
    finish, and the socket file is removed.
    @raise Socket_busy when [path] cannot be claimed. *)
