(** Transport loops: one scheduler behind stdio or unix-socket framing. *)

val serve_channels : Sched.t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Serve frames until clean EOF or a shutdown request. *)

val serve_stdio : ?capacity:int -> ?domains:int -> unit -> unit
(** Serve on stdin/stdout (binary mode) until EOF or shutdown. *)

val serve_socket : ?capacity:int -> ?domains:int -> path:string -> unit -> unit
(** Bind a unix socket at [path] (replacing a stale file), accept one
    connection at a time, and serve until a shutdown request. The
    socket file is removed on exit. *)
