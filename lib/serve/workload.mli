(** Instance descriptions carried by requests, and their canonical
    cache keys. *)

type spec = {
  family : string;
  n : int;
  degree : int;
  seed : int;
  at_threshold : bool;
}

val families : string list
(** The generator families the service accepts (mirrors the CLI). *)

val build_spec : spec -> Lll_core.Instance.t
(** @raise Invalid_argument on an unknown family. *)

val key_of_spec : spec -> string

val of_frame : Protocol.frame -> string * (unit -> Lll_core.Instance.t)
(** The cache key and builder a request frame describes: a non-empty
    body is a serialized instance blob (keyed by digest); otherwise the
    [family]/[n]/[degree]/[gen-seed]/[at-threshold] header fields name a
    generator spec (keyed by canonical parameter string).
    @raise Protocol.Protocol_error on an unknown family. *)
