(** Mapping request frames onto store descriptions. All canonicalisation,
    key and build logic lives in {!Lll_store} — the service resolves
    instances through the same acquisition path as every other layer. *)

val families : string list
(** The generator families the service accepts (mirrors the CLI;
    re-exported from {!Lll_store.Spec.families}). *)

val of_frame : Protocol.frame -> Lll_store.Store.descr
(** The store description a request frame names: a non-empty body is a
    serialized instance blob, else a [file=PATH] header names a
    server-local file, otherwise the
    [family]/[n]/[degree]/[gen-seed]/[at-threshold] header fields name a
    generator spec.
    @raise Protocol.Protocol_error on an unknown family or missing
    file. *)
