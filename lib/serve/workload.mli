(** Instance descriptions carried by requests, and their canonical
    cache keys. *)

type spec = {
  family : string;
  n : int;
  degree : int;
  seed : int;
  at_threshold : bool;
}

val families : string list
(** The generator families the service accepts (mirrors the CLI). *)

val build_spec : spec -> Lll_core.Instance.t
(** @raise Invalid_argument on an unknown family. *)

val key_of_spec : spec -> string

val of_frame : Protocol.frame -> string * (unit -> Lll_core.Instance.t)
(** The cache key and builder a request frame describes: a non-empty
    body is a serialized instance blob (keyed by digest); else a
    [file=PATH] header names a server-local file (a v3 binary container
    is keyed by its header fingerprint and loads via mmap, anything
    else by content digest); otherwise the
    [family]/[n]/[degree]/[gen-seed]/[at-threshold] header fields name a
    generator spec (keyed by canonical parameter string).
    @raise Protocol.Protocol_error on an unknown family or missing
    file. *)
