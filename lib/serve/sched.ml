(* The batching scheduler behind the solve service.

   A batch of request frames comes in; response frames go out through
   the caller-supplied [emit]. Requests are grouped by the cache key of
   the instance they describe (first-occurrence order), so one cache
   fetch serves every compatible request in the batch — the first
   request of a fresh group pays the build, the rest report [cache=hit]
   with zero rebuild work. Within a group requests run in arrival
   order on the shared domain pool (the runtime itself spreads a run
   across domains; requests are not interleaved, keeping every solve
   bit-identical to a direct run).

   Metrics frames ([frame=metrics id=N] + one JSON round record) stream
   the moment the runtime produces them. Result frames are buffered and
   emitted in request order once the whole batch has executed, each
   tagged with its request's position [id]. A raising request yields a
   [status=error] result for that id only; the rest of the batch is
   unaffected.

   Concurrency: one scheduler is shared by every connection of a
   worker-pool server, so [handle_batch] must be safe to call from
   several domains at once. The two caches below are internally
   synchronized ({!Cache}); everything else here is per-call state.
   Concurrent solves may share one cached instance — that is safe
   because an instance is immutable after construction (solver-side
   trackers are allocated per run) — but each [emit] callback writes
   only to its own connection.

   Repeat solves are memoized: a run is fully determined by the
   instance key, solver name, seed and domain count (solver runs are
   bit-identical for identical inputs — the determinism contract the
   scenario corpus pins), so non-streaming solve responses land in a
   second result cache and repeat requests replay the stored response
   with [cache=hit memo=1] instead of re-running the solver. Streaming
   requests and requests carrying [memo=0] always run fresh. *)

module Solver = Lll_core.Solver
module Verify = Lll_core.Verify
module Serial = Lll_core.Serial
module Instance = Lll_core.Instance
module Assignment = Lll_prob.Assignment
module Metrics = Lll_local.Metrics
module Corpus = Lll_scenario.Corpus
module Run = Lll_scenario.Run
module Store = Lll_store.Store

type solved = {
  sv_fields : (string * string) list; (* result fields minus cache/memo tags *)
  sv_body : string;
  sv_built : Store.source; (* store tier that satisfied the original run *)
}

type t = {
  store : Store.t; (* memory tier over optional artifact directory *)
  results : solved Cache.t;
  default_domains : int option;
}

let create ?(capacity = 32) ?(memo_capacity = 256) ?domains ?store_dir () =
  {
    store = Store.create ?dir:store_dir ~capacity ();
    results = Cache.create ~capacity:memo_capacity;
    default_domains = domains;
  }

let store t = t.store
let stats t = (Store.stats t.store).Store.st_mem
let store_stats t = Store.stats t.store
let memo_stats t = Cache.stats t.results

(* ---- assignment transport: CSV of values in variable-id order ---- *)

let assignment_to_string (a : Assignment.t) =
  String.concat ","
    (Array.to_list (Array.map (function Some v -> string_of_int v | None -> "") a))

let assignment_of_string nvars s =
  let cells = if s = "" then [||] else Array.of_list (String.split_on_char ',' s) in
  if Array.length cells <> nvars then
    raise
      (Protocol.Protocol_error
         (Printf.sprintf "assignment has %d cells, instance has %d variables"
            (Array.length cells) nvars));
  Array.map
    (fun c ->
      if c = "" then None
      else
        match int_of_string_opt c with
        | Some v -> Some v
        | None -> raise (Protocol.Protocol_error (Printf.sprintf "bad assignment cell %S" c)))
    cells

let int_list_field frame key =
  match Protocol.get frame key with
  | None -> None
  | Some s ->
    Some
      (String.split_on_char ',' s
      |> List.filter (fun c -> c <> "")
      |> List.map (fun c ->
             match int_of_string_opt c with
             | Some v -> v
             | None ->
               raise
                 (Protocol.Protocol_error
                    (Printf.sprintf "field %S: bad integer %S" key c))))

(* ---- per-op handlers; each returns the result frame's extra header
   fields and body ---- *)

let run_params t frame ~sink =
  let domains =
    match Protocol.get_int frame "domains" with
    | Some d -> Some d
    | None -> t.default_domains
  in
  {
    Solver.default_params with
    seed = Option.value (Protocol.get_int frame "seed") ~default:1;
    domains;
    metrics = sink;
  }

(* [hit]: served from the memory tier (or another thread's in-flight
   build); [disk]: loaded from a store artifact; [miss]: built fresh. *)
let cache_field (source : Store.source) =
  ("cache", match source with `Mem -> "hit" | `Disk -> "disk" | `Built -> "miss")

(* Run the solver now; returns the response minus its cache/memo tags
   (the caller knows whether this run was fresh or replayed). *)
let solve_now t frame ~key ~descr ~solver ~id ~emit =
  let inst, source = Store.fetch_descr t.store descr in
  let sink =
    if Protocol.get_bool frame "stream" then
      Metrics.callback (fun r ->
          emit
            {
              Protocol.header = [ ("frame", "metrics"); ("id", string_of_int id) ];
              body = Metrics.record_to_json r;
            })
    else Metrics.disabled
  in
  let params = run_params t frame ~sink in
  let report = Solver.solve_by_name ~params solver inst in
  let rounds =
    match report.Solver.outcome.Solver.rounds with
    | Some r -> [ ("rounds", string_of_int r) ]
    | None -> []
  in
  {
    sv_fields =
      [
        ("key", key);
        ("solver", solver);
        ("ok", if report.Solver.ok then "1" else "0");
        ("verified", if report.Solver.verify.Verify.ok then "1" else "0");
      ]
      @ rounds;
    sv_body = assignment_to_string report.Solver.outcome.Solver.assignment;
    sv_built = source;
  }

let handle_solve t frame ~id ~emit =
  let descr = Workload.of_frame frame in
  let key = Store.descr_key t.store descr in
  let solver = Option.value (Protocol.get frame "solver") ~default:"fix3" in
  let memoable =
    (not (Protocol.get_bool frame "stream")) && Protocol.get frame "memo" <> Some "0"
  in
  if not memoable then begin
    let sv = solve_now t frame ~key ~descr ~solver ~id ~emit in
    (("op", "solve") :: cache_field sv.sv_built :: sv.sv_fields, sv.sv_body)
  end
  else begin
    (* the run is a function of (instance, solver, seed, domains) — see
       the header; everything else in the frame is transport *)
    let seed = Option.value (Protocol.get_int frame "seed") ~default:1 in
    let domains =
      match Protocol.get_int frame "domains" with Some d -> Some d | None -> t.default_domains
    in
    let mkey =
      Printf.sprintf "%s|solver=%s|seed=%d|domains=%s" key solver seed
        (match domains with None -> "-" | Some d -> string_of_int d)
    in
    let sv, memo_status =
      Cache.find_or_build t.results ~key:mkey ~build:(fun () ->
          solve_now t frame ~key ~descr ~solver ~id ~emit)
    in
    match memo_status with
    | `Miss -> (("op", "solve") :: cache_field sv.sv_built :: sv.sv_fields, sv.sv_body)
    | `Hit ->
      (("op", "solve") :: ("cache", "hit") :: ("memo", "1") :: sv.sv_fields, sv.sv_body)
  end

let handle_verify t frame =
  (* the instance comes from the spec headers; the body carries the
     assignment CSV (blob-described instances go through solve) *)
  let descr = Workload.of_frame { frame with Protocol.body = "" } in
  let key = Store.descr_key t.store descr in
  let inst, source = Store.fetch_descr t.store descr in
  let a = assignment_of_string (Instance.num_vars inst) frame.Protocol.body in
  let result = Verify.check inst a in
  ( [
      ("op", "verify");
      cache_field source;
      ("key", key);
      ("ok", if result.Verify.ok then "1" else "0");
      ("violated", String.concat "," (List.map string_of_int result.Verify.violated));
    ],
    "" )

let handle_fuzz frame =
  let seed = Option.value (Protocol.get_int frame "seed") ~default:1 in
  let budget = Option.value (Protocol.get_int frame "budget") ~default:10 in
  let outcome = Lll_fuzz.Fuzz.run ~seed ~budget () in
  let found, label, body =
    match outcome.Lll_fuzz.Fuzz.finding with
    | None -> ("0", [], "")
    | Some f ->
      ("1", [ ("label", f.Lll_fuzz.Fuzz.label) ], Serial.to_string f.Lll_fuzz.Fuzz.shrunk)
  in
  ( [ ("op", "fuzz"); ("tested", string_of_int outcome.Lll_fuzz.Fuzz.tested); ("found", found) ]
    @ label,
    body )

let handle_scenario t frame =
  let grid = int_list_field frame "grid" in
  let seeds = int_list_field frame "seeds" in
  let families =
    match Protocol.get frame "families" with
    | None -> None
    | Some s ->
      Some
        (String.split_on_char ',' s
        |> List.filter (fun f -> f <> "")
        |> List.map (fun name ->
               match Corpus.find name with
               | Some f -> f
               | None ->
                 raise
                   (Protocol.Protocol_error (Printf.sprintf "unknown scenario family %S" name))))
  in
  let domains =
    match Protocol.get_int frame "domains" with
    | Some d -> Some (Some d)
    | None -> (match t.default_domains with None -> None | Some d -> Some (Some d))
  in
  let measurements = Run.measure ?grid ?seeds ?families ?domains ~store:t.store () in
  let fits = Run.fit_growth measurements in
  ( [ ("op", "scenario"); ("measurements", string_of_int (List.length measurements)) ],
    Format.asprintf "%a@.%a" Run.pp_measurements measurements Run.pp_fits fits )

let handle_stats t =
  let ss = store_stats t in
  let s = ss.Store.st_mem in
  let m = memo_stats t in
  ( [
      ("op", "stats");
      ("size", string_of_int s.Cache.s_size);
      ("capacity", string_of_int s.Cache.s_capacity);
      ("hits", string_of_int s.Cache.s_hits);
      ("misses", string_of_int s.Cache.s_misses);
      ("evictions", string_of_int s.Cache.s_evictions);
      ("waits", string_of_int s.Cache.s_waits);
      ("store-dir", Option.value (Store.dir t.store) ~default:"-");
      ("store-built", string_of_int ss.Store.st_built);
      ("store-disk-hits", string_of_int ss.Store.st_disk_hits);
      ("store-quarantined", string_of_int ss.Store.st_quarantined);
      ("memo-size", string_of_int m.Cache.s_size);
      ("memo-hits", string_of_int m.Cache.s_hits);
      ("memo-misses", string_of_int m.Cache.s_misses);
    ],
    "" )

(* ---- batch execution ---- *)

let instance_key t frame =
  match Protocol.get frame "op" with
  | Some "solve" -> Some (Store.descr_key t.store (Workload.of_frame frame))
  | Some "verify" ->
    Some (Store.descr_key t.store (Workload.of_frame { frame with Protocol.body = "" }))
  | _ -> None

let handle_one t frame ~id ~emit =
  match Protocol.get_exn frame "op" with
  | "solve" -> handle_solve t frame ~id ~emit
  | "verify" -> handle_verify t frame
  | "fuzz" -> handle_fuzz frame
  | "scenario" -> handle_scenario t frame
  | "stats" -> handle_stats t
  | "shutdown" -> ([ ("op", "shutdown") ], "")
  | op -> raise (Protocol.Protocol_error (Printf.sprintf "unknown op %S" op))

let handle_batch t frames ~emit =
  let frames = Array.of_list frames in
  let n = Array.length frames in
  let results = Array.make n None in
  (* group request ids by instance key, first-occurrence order; keyless
     ops form singleton groups in place *)
  let seen : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun id frame ->
      match (try instance_key t frame with _ -> None) with
      | Some key -> (
        match Hashtbl.find_opt seen key with
        | Some ids -> ids := id :: !ids
        | None ->
          let ids = ref [ id ] in
          Hashtbl.add seen key ids;
          order := `Group ids :: !order)
      | None -> order := `Single id :: !order)
    frames;
  let run id =
    let frame = frames.(id) in
    let result =
      match handle_one t frame ~id ~emit with
      | fields, body ->
        {
          Protocol.header =
            [ ("frame", "result"); ("id", string_of_int id); ("status", "ok") ] @ fields;
          body;
        }
      | exception e ->
        let msg =
          match e with
          | Protocol.Protocol_error m -> m
          | Serial.Parse_error { line; message } ->
            Printf.sprintf "parse error (line %d): %s" line message
          | Lll_graph.Serialize.Bin.Corrupt m -> "corrupt binary: " ^ m
          | Invalid_argument m -> m
          | Not_found -> "unknown solver"
          | e -> Printexc.to_string e
        in
        {
          Protocol.header =
            [ ("frame", "result"); ("id", string_of_int id); ("status", "error"); ("error", msg) ];
          body = "";
        }
    in
    results.(id) <- Some result
  in
  List.iter
    (function
      | `Single id -> run id
      | `Group ids -> List.iter run (List.rev !ids))
    (List.rev !order);
  (* result frames in request order *)
  Array.iteri
    (fun id r -> match r with Some f -> emit f | None -> assert (id < 0))
    results;
  let shutdown =
    Array.exists (fun f -> Protocol.get f "op" = Some "shutdown") frames
  in
  if shutdown then `Shutdown else `Continue
