(* Client side of the solve service: connect (unix socket) or spawn a
   child server over stdio, send batches, demultiplex the response
   stream, and the smoke routine behind [lll_cli client --smoke] and
   the @serve-quick runtest alias. *)

type conn = {
  ic : in_channel;
  oc : out_channel;
  close : unit -> unit;
}

let connect_socket path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  {
    ic;
    oc;
    close =
      (fun () ->
        (try close_out oc with Sys_error _ -> ());
        try close_in ic with Sys_error _ -> ());
  }

let spawn ?exe ?(args = [ "serve"; "--stdio" ]) () =
  let exe = match exe with Some e -> e | None -> Sys.executable_name in
  let ic, oc = Unix.open_process_args exe (Array.of_list (exe :: args)) in
  {
    ic;
    oc;
    close = (fun () -> ignore (Unix.close_process (ic, oc)));
  }

(* ---- socket-server children ---- *)

(* A socket path no concurrent process can collide with:
   [Filename.temp_file] creates (O_EXCL, retrying on collision) a lock
   file whose unique name we then own, and the socket lives next to it.
   This replaces pid/time-derived names, which two processes starting
   in the same millisecond can share. *)
let fresh_socket_path ?(prefix = "lll-serve") () =
  let lock = Filename.temp_file prefix ".lock" in
  (lock, lock ^ ".sock")

let wait_for_socket ?(timeout = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let probe () =
    Sys.file_exists path
    &&
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect s (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false)
  in
  let rec go delay =
    if probe () then ()
    else if Unix.gettimeofday () > deadline then
      failwith (Printf.sprintf "server at %s did not come up within %gs" path timeout)
    else begin
      Unix.sleepf delay;
      go (min 0.2 (delay *. 2.))
    end
  in
  go 0.005

type server = { srv_path : string; srv_lock : string; srv_pid : int }

let server_path srv = srv.srv_path

let spawn_server ?exe ?(workers = 1) ?(args = []) () =
  let exe = match exe with Some e -> e | None -> Sys.executable_name in
  let lock, path = fresh_socket_path () in
  let argv =
    [ exe; "serve"; "--socket"; path; "--workers"; string_of_int workers ] @ args
  in
  let pid =
    Unix.create_process exe (Array.of_list argv) Unix.stdin Unix.stdout Unix.stderr
  in
  (match wait_for_socket path with
  | () -> ()
  | exception e ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
    (try Sys.remove lock with Sys_error _ -> ());
    raise e);
  { srv_path = path; srv_lock = lock; srv_pid = pid }

type response = {
  metrics : Protocol.frame list;  (** streamed metrics frames, oldest first *)
  result : Protocol.frame;
}

(* read response frames until every id in [0, count) has a result *)
let read_responses conn count =
  let metrics = Array.make count [] in
  let results = Array.make count None in
  let remaining = ref count in
  while !remaining > 0 do
    match Protocol.read_frame conn.ic with
    | None -> raise (Protocol.Protocol_error "connection closed mid-response")
    | Some frame -> (
      let id =
        match Protocol.get_int frame "id" with
        | Some id when id >= 0 && id < count -> id
        | _ -> raise (Protocol.Protocol_error "response frame with bad id")
      in
      match Protocol.get frame "frame" with
      | Some "metrics" -> metrics.(id) <- frame :: metrics.(id)
      | Some "result" ->
        if results.(id) = None then decr remaining;
        results.(id) <- Some frame
      | _ -> raise (Protocol.Protocol_error "response frame with bad kind"))
  done;
  Array.to_list
    (Array.mapi
       (fun id r ->
         match r with
         | Some result -> { metrics = List.rev metrics.(id); result }
         | None -> assert false)
       results)

let batch conn frames =
  let count = List.length frames in
  Protocol.write_frame conn.oc
    { Protocol.header = [ ("op", "batch"); ("count", string_of_int count) ]; body = "" };
  List.iter (Protocol.write_frame conn.oc) frames;
  read_responses conn count

let request conn frame =
  match batch conn [ frame ] with [ r ] -> r | _ -> assert false

let close conn = conn.close ()

let shutdown conn =
  (try
     ignore
       (request conn { Protocol.header = [ ("op", "shutdown") ]; body = "" })
   with Protocol.Protocol_error _ | Sys_error _ -> ());
  conn.close ()

let stop_server srv =
  (match connect_socket srv.srv_path with
  | conn -> shutdown conn
  | exception (Unix.Unix_error _ | Sys_error _) -> ());
  (* the server removes its socket on the way out; reap the child so a
     fleet of short-lived test servers leaves no zombies behind *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] srv.srv_pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill srv.srv_pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] srv.srv_pid)
      end
      else begin
        Unix.sleepf 0.01;
        reap ()
      end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  reap ();
  (try Sys.remove srv.srv_lock with Sys_error _ -> ());
  if Sys.file_exists srv.srv_path then try Sys.remove srv.srv_path with Sys_error _ -> ()

(* ---- the smoke routine ----

   Mixed batch through a live server: two distinct solves (both cache
   misses), an identical repeat solve (must hit the LRU with a
   byte-identical assignment), a verify of the returned assignment, and
   a stats check — then a clean shutdown. Returns [Error reason] at the
   first discrepancy. *)

(* Salt for generator seeds so a smoke's cache keys are fresh even
   against a long-lived server whose cache has seen earlier runs. Drawn
   from /dev/urandom — pid-xor-time salts collide for two clients
   starting in the same millisecond, which is exactly the fleet case. *)
let fresh_nonce () =
  let bytes =
    try
      let ic = open_in_bin "/dev/urandom" in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> really_input_string ic 3)
    with Sys_error _ | End_of_file ->
      let t = int_of_float (Unix.gettimeofday () *. 1e6) in
      let x = Unix.getpid () lxor t lxor (t lsr 24) in
      String.init 3 (fun i -> Char.chr ((x lsr (8 * i)) land 0xff))
  in
  string_of_int
    (1 + (Char.code bytes.[0] lor (Char.code bytes.[1] lsl 8) lor (Char.code bytes.[2] lsl 16)))

let smoke conn =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  (* the repeat request below reuses the exact same frame, so the
     cache-hit assertion holds whatever the nonce *)
  let nonce = fresh_nonce () in
  let solve_ring =
    {
      Protocol.header =
        [ ("op", "solve"); ("family", "ring"); ("n", "30"); ("gen-seed", nonce); ("solver", "fix3") ];
      body = "";
    }
  in
  (* mp2 is runtime-backed and pushes per-round records, so this
     request also exercises the streamed metrics path *)
  let solve_mp2 =
    {
      Protocol.header =
        [
          ("op", "solve");
          ("family", "ring");
          ("n", "24");
          ("gen-seed", nonce);
          ("solver", "mp2");
          ("stream", "1");
        ];
      body = "";
    }
  in
  let check_ok label r =
    match (Protocol.get r.result "status", Protocol.get r.result "ok") with
    | Some "ok", Some "1" -> Ok r
    | Some "ok", _ -> Error (label ^ ": solver reported not ok")
    | _ -> Error (Printf.sprintf "%s: %s" label (Option.value (Protocol.get r.result "error") ~default:"error"))
  in
  let check_cache label want r =
    if Protocol.get r.result "cache" = Some want then Ok r
    else
      Error
        (Printf.sprintf "%s: expected cache=%s, got %s" label want
           (Option.value (Protocol.get r.result "cache") ~default:"<none>"))
  in
  match batch conn [ solve_ring; solve_mp2 ] with
  | exception e -> Error ("batch failed: " ^ Printexc.to_string e)
  | [ ring1; mp1 ] ->
    let* ring1 = check_ok "ring solve" ring1 in
    let* ring1 = check_cache "ring solve" "miss" ring1 in
    let* mp1 = check_ok "mp2 solve" mp1 in
    let* _ = check_cache "mp2 solve" "miss" mp1 in
    let* _ =
      if mp1.metrics = [] then Error "mp2 solve: no streamed metrics frames" else Ok ()
    in
    let* ring2 = check_ok "repeat ring solve" (request conn solve_ring) in
    let* ring2 = check_cache "repeat ring solve" "hit" ring2 in
    let* _ =
      if ring2.result.Protocol.body = ring1.result.Protocol.body then Ok ()
      else Error "repeat ring solve: assignment differs from first run"
    in
    let verify =
      {
        Protocol.header =
          [ ("op", "verify"); ("family", "ring"); ("n", "30"); ("gen-seed", nonce) ];
        body = ring1.result.Protocol.body;
      }
    in
    let v = request conn verify in
    let* v = check_ok "verify" v in
    let* _ = check_cache "verify" "hit" v in
    let s = request conn { Protocol.header = [ ("op", "stats") ]; body = "" } in
    (* the verify reuses the cached instance; the repeat solve replays
       out of the response memo *)
    let* _ =
      match (Protocol.get_int s.result "hits", Protocol.get_int s.result "memo-hits") with
      | Some h, Some m when h + m >= 2 -> Ok ()
      | h, m ->
        Error
          (Printf.sprintf "stats: expected >=2 hits across caches, got hits=%s memo-hits=%s"
             (match h with Some h -> string_of_int h | None -> "<none>")
             (match m with Some m -> string_of_int m | None -> "<none>"))
    in
    Ok ()
  | _ -> Error "batch returned wrong number of responses"

(* ---- the fleet smoke ----

   [clients] concurrent connections hammer one socket server with
   [requests] identical solve requests each. Asserts every response is
   ok with a byte-identical assignment, the server stays up for a
   final stats connection, and the instance was built exactly once
   (one instance-cache miss, one memo miss) however the requests
   interleaved. Run it against a freshly spawned server — the
   build-once assertion reads the server-wide counters. *)

let smoke_fleet ?(clients = 4) ?(requests = 8) path =
  let nonce = fresh_nonce () in
  let frame =
    {
      Protocol.header =
        [ ("op", "solve"); ("family", "ring"); ("n", "30"); ("gen-seed", nonce); ("solver", "fix3") ];
      body = "";
    }
  in
  let hammer () =
    match connect_socket path with
    | exception e -> Error ("connect: " ^ Printexc.to_string e)
    | conn ->
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let rec go k bodies =
            if k = 0 then Ok (List.rev bodies)
            else
              match request conn frame with
              | exception e -> Error ("request: " ^ Printexc.to_string e)
              | r -> (
                match (Protocol.get r.result "status", Protocol.get r.result "ok") with
                | Some "ok", Some "1" -> go (k - 1) (r.result.Protocol.body :: bodies)
                | _ ->
                  Error
                    (Option.value (Protocol.get r.result "error") ~default:"solver not ok"))
          in
          go requests [])
  in
  let outcomes =
    List.init clients (fun _ -> Domain.spawn hammer) |> List.map Domain.join
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* bodies =
    List.fold_left
      (fun acc o ->
        match (acc, o) with
        | (Error _ as e), _ -> e
        | _, Error e -> Error ("client failed: " ^ e)
        | Ok acc, Ok bs -> Ok (acc @ bs))
      (Ok []) outcomes
  in
  let* first =
    match bodies with [] -> Error "no responses" | b :: _ -> Ok b
  in
  let* _ =
    if List.for_all (String.equal first) bodies then Ok ()
    else Error "assignments differ across concurrent clients"
  in
  (* the server must still accept a fresh connection after the storm *)
  match connect_socket path with
  | exception e -> Error ("post-storm connect: " ^ Printexc.to_string e)
  | conn ->
    Fun.protect
      ~finally:(fun () -> close conn)
      (fun () ->
        let s = request conn { Protocol.header = [ ("op", "stats") ]; body = "" } in
        match (Protocol.get_int s.result "misses", Protocol.get_int s.result "memo-misses") with
        | Some 1, Some 1 -> Ok ()
        | m, mm ->
          Error
            (Printf.sprintf "expected the instance to build once, got misses=%s memo-misses=%s"
               (match m with Some m -> string_of_int m | None -> "<none>")
               (match mm with Some m -> string_of_int m | None -> "<none>")))
