(* Client side of the solve service: connect (unix socket) or spawn a
   child server over stdio, send batches, demultiplex the response
   stream, and the smoke routine behind [lll_cli client --smoke] and
   the @serve-quick runtest alias. *)

type conn = {
  ic : in_channel;
  oc : out_channel;
  close : unit -> unit;
}

let connect_socket path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  {
    ic;
    oc;
    close =
      (fun () ->
        (try close_out oc with Sys_error _ -> ());
        try close_in ic with Sys_error _ -> ());
  }

let spawn ?exe ?(args = [ "serve"; "--stdio" ]) () =
  let exe = match exe with Some e -> e | None -> Sys.executable_name in
  let ic, oc = Unix.open_process_args exe (Array.of_list (exe :: args)) in
  {
    ic;
    oc;
    close = (fun () -> ignore (Unix.close_process (ic, oc)));
  }

type response = {
  metrics : Protocol.frame list;  (** streamed metrics frames, oldest first *)
  result : Protocol.frame;
}

(* read response frames until every id in [0, count) has a result *)
let read_responses conn count =
  let metrics = Array.make count [] in
  let results = Array.make count None in
  let remaining = ref count in
  while !remaining > 0 do
    match Protocol.read_frame conn.ic with
    | None -> raise (Protocol.Protocol_error "connection closed mid-response")
    | Some frame -> (
      let id =
        match Protocol.get_int frame "id" with
        | Some id when id >= 0 && id < count -> id
        | _ -> raise (Protocol.Protocol_error "response frame with bad id")
      in
      match Protocol.get frame "frame" with
      | Some "metrics" -> metrics.(id) <- frame :: metrics.(id)
      | Some "result" ->
        if results.(id) = None then decr remaining;
        results.(id) <- Some frame
      | _ -> raise (Protocol.Protocol_error "response frame with bad kind"))
  done;
  Array.to_list
    (Array.mapi
       (fun id r ->
         match r with
         | Some result -> { metrics = List.rev metrics.(id); result }
         | None -> assert false)
       results)

let batch conn frames =
  let count = List.length frames in
  Protocol.write_frame conn.oc
    { Protocol.header = [ ("op", "batch"); ("count", string_of_int count) ]; body = "" };
  List.iter (Protocol.write_frame conn.oc) frames;
  read_responses conn count

let request conn frame =
  match batch conn [ frame ] with [ r ] -> r | _ -> assert false

let close conn = conn.close ()

let shutdown conn =
  (try
     ignore
       (request conn { Protocol.header = [ ("op", "shutdown") ]; body = "" })
   with Protocol.Protocol_error _ | Sys_error _ -> ());
  conn.close ()

(* ---- the smoke routine ----

   Mixed batch through a live server: two distinct solves (both cache
   misses), an identical repeat solve (must hit the LRU with a
   byte-identical assignment), a verify of the returned assignment, and
   a stats check — then a clean shutdown. Returns [Error reason] at the
   first discrepancy. *)

let smoke conn =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  (* salt the generator seed so the smoke's cache keys are fresh even
     against a long-lived server whose cache has seen earlier runs; the
     repeat request below reuses the exact same frame, so the hit
     assertion still holds *)
  let nonce =
    string_of_int
      (1 + ((Unix.getpid () lxor int_of_float (Unix.gettimeofday () *. 1000.)) land 0xffff))
  in
  let solve_ring =
    {
      Protocol.header =
        [ ("op", "solve"); ("family", "ring"); ("n", "30"); ("gen-seed", nonce); ("solver", "fix3") ];
      body = "";
    }
  in
  (* mp2 is runtime-backed and pushes per-round records, so this
     request also exercises the streamed metrics path *)
  let solve_mp2 =
    {
      Protocol.header =
        [
          ("op", "solve");
          ("family", "ring");
          ("n", "24");
          ("gen-seed", nonce);
          ("solver", "mp2");
          ("stream", "1");
        ];
      body = "";
    }
  in
  let check_ok label r =
    match (Protocol.get r.result "status", Protocol.get r.result "ok") with
    | Some "ok", Some "1" -> Ok r
    | Some "ok", _ -> Error (label ^ ": solver reported not ok")
    | _ -> Error (Printf.sprintf "%s: %s" label (Option.value (Protocol.get r.result "error") ~default:"error"))
  in
  let check_cache label want r =
    if Protocol.get r.result "cache" = Some want then Ok r
    else
      Error
        (Printf.sprintf "%s: expected cache=%s, got %s" label want
           (Option.value (Protocol.get r.result "cache") ~default:"<none>"))
  in
  match batch conn [ solve_ring; solve_mp2 ] with
  | exception e -> Error ("batch failed: " ^ Printexc.to_string e)
  | [ ring1; mp1 ] ->
    let* ring1 = check_ok "ring solve" ring1 in
    let* ring1 = check_cache "ring solve" "miss" ring1 in
    let* mp1 = check_ok "mp2 solve" mp1 in
    let* _ = check_cache "mp2 solve" "miss" mp1 in
    let* _ =
      if mp1.metrics = [] then Error "mp2 solve: no streamed metrics frames" else Ok ()
    in
    let* ring2 = check_ok "repeat ring solve" (request conn solve_ring) in
    let* ring2 = check_cache "repeat ring solve" "hit" ring2 in
    let* _ =
      if ring2.result.Protocol.body = ring1.result.Protocol.body then Ok ()
      else Error "repeat ring solve: assignment differs from first run"
    in
    let verify =
      {
        Protocol.header =
          [ ("op", "verify"); ("family", "ring"); ("n", "30"); ("gen-seed", nonce) ];
        body = ring1.result.Protocol.body;
      }
    in
    let v = request conn verify in
    let* v = check_ok "verify" v in
    let* _ = check_cache "verify" "hit" v in
    let s = request conn { Protocol.header = [ ("op", "stats") ]; body = "" } in
    let* _ =
      match Protocol.get_int s.result "hits" with
      | Some h when h >= 2 -> Ok ()
      | h ->
        Error
          (Printf.sprintf "stats: expected >=2 cache hits, got %s"
             (match h with Some h -> string_of_int h | None -> "<none>"))
    in
    Ok ()
  | _ -> Error "batch returned wrong number of responses"
