(* The length-framed wire protocol of the solve service.

   A frame is [u32 LE payload length][payload]. The payload is one
   header line — space-separated [key=value] tokens, values
   percent-escaped — followed by '\n' and an arbitrary byte body
   (serialized instances, JSON metrics, report text). Both requests and
   responses are frames:

     request:   op=solve family=ring n=64 solver=fix3 seed=7 stream=1
     request:   op=solve body=1 ...\n<serialized instance bytes>
     response:  frame=metrics id=0 ...\n<one JSON round record>
     response:  frame=result id=0 status=ok cache=hit rounds=3 ...\n<report text>

   Batches are explicit: [op=batch count=K] followed by K request
   frames; the scheduler answers with response frames tagged by each
   request's position [id] in the batch (metrics frames stream as they
   are produced; result frames arrive in request order). A lone request
   is a batch of one. *)

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* Frames above this size are assumed hostile/corrupt, not legitimate.
   The bound is configurable (a fleet fronting huge uploaded blobs may
   raise it; a hardened public endpoint may shrink it) but never drops
   below one page of header room, so legitimate control frames always
   fit. [read_frame] allocates incrementally while the body arrives, so
   a hostile length header costs the peer bytes-on-the-wire, not a
   server-side [Bytes.create] of the advertised size. *)
let min_max_frame = 4096
let default_max_frame = 1 lsl 30
let max_frame_ref = ref default_max_frame
let max_frame () = !max_frame_ref

let set_max_frame n =
  if n < min_max_frame then
    invalid_arg (Printf.sprintf "Protocol.set_max_frame: need >= %d bytes" min_max_frame);
  max_frame_ref := n

(* batches above this count are rejected before any frame is read *)
let default_max_batch = 4096
let max_batch_ref = ref default_max_batch
let max_batch () = !max_batch_ref

let set_max_batch n =
  if n < 1 then invalid_arg "Protocol.set_max_batch: need >= 1";
  max_batch_ref := n

type frame = { header : (string * string) list; body : string }

(* ---- header token escaping ---- *)

let escape_value v =
  let needs_escape = ref false in
  String.iter
    (fun c -> match c with ' ' | '\n' | '\r' | '=' | '%' -> needs_escape := true | _ -> ())
    v;
  if not !needs_escape then v
  else begin
    let b = Buffer.create (String.length v + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' | '\n' | '\r' | '=' | '%' -> Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b
  end

let unescape_value v =
  if not (String.contains v '%') then v
  else begin
    let b = Buffer.create (String.length v) in
    let n = String.length v in
    let i = ref 0 in
    while !i < n do
      (if v.[!i] = '%' && !i + 2 < n then begin
         match int_of_string_opt ("0x" ^ String.sub v (!i + 1) 2) with
         | Some c ->
           Buffer.add_char b (Char.chr c);
           i := !i + 2
         | None -> Buffer.add_char b v.[!i]
       end
       else Buffer.add_char b v.[!i]);
      incr i
    done;
    Buffer.contents b
  end

(* ---- frame encode/decode ---- *)

let encode { header; body } =
  let b = Buffer.create (256 + String.length body) in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b (escape_value v))
    header;
  Buffer.add_char b '\n';
  Buffer.add_string b body;
  Buffer.contents b

let decode payload =
  let header_line, body =
    match String.index_opt payload '\n' with
    | Some i -> (String.sub payload 0 i, String.sub payload (i + 1) (String.length payload - i - 1))
    | None -> (payload, "")
  in
  let header =
    String.split_on_char ' ' header_line
    |> List.filter (fun t -> t <> "")
    |> List.map (fun tok ->
           match String.index_opt tok '=' with
           | Some i ->
             ( String.sub tok 0 i,
               unescape_value (String.sub tok (i + 1) (String.length tok - i - 1)) )
           | None -> fail "malformed header token %S" tok)
  in
  { header; body }

let write_frame oc frame =
  let payload = encode frame in
  let len = String.length payload in
  if len > !max_frame_ref then fail "frame too large (%d bytes)" len;
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

(* Read [len] body bytes in bounded chunks: the buffer grows with the
   bytes that actually arrive, so a length header lying about a huge
   body cannot drive one giant allocation up front. *)
let read_chunk = 1 lsl 20

let read_payload ic len =
  if len <= read_chunk then really_input_string ic len
  else begin
    let buf = Buffer.create read_chunk in
    let remaining = ref len in
    while !remaining > 0 do
      let take = min read_chunk !remaining in
      Buffer.add_string buf (really_input_string ic take);
      remaining := !remaining - take
    done;
    Buffer.contents buf
  end

let read_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file -> None
  | hdr ->
    (* the length is a u32 on the wire: decode unsigned so a hostile
       high bit reports as oversized, not as a negative length *)
    let len = Int32.to_int (String.get_int32_le hdr 0) land 0xFFFF_FFFF in
    if len > !max_frame_ref then
      fail "frame length %d exceeds the %d-byte limit" len !max_frame_ref;
    (match read_payload ic len with
    | payload -> Some (decode payload)
    | exception End_of_file -> fail "truncated frame (wanted %d bytes)" len)

(* ---- header accessors ---- *)

let get frame key = List.assoc_opt key frame.header

let get_exn frame key =
  match get frame key with Some v -> v | None -> fail "missing header field %S" key

let get_int frame key =
  match get frame key with
  | None -> None
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Some i
    | None -> fail "field %S is not an integer: %S" key v)

let get_bool frame key =
  match get frame key with None | Some "0" -> false | Some _ -> true
