(* Transport loops of the solve service.

   One scheduler (cache + domain pool defaults) serves length-framed
   requests. Two transports share the per-connection loop:

   - stdio: frames on stdin/stdout — the child-process transport
     ([lll_cli client --spawn] talks to it), also handy under socat.
   - unix socket: bind, listen, and fan accepted connections out over a
     pool of worker domains (one OCaml 5 domain per worker, fed by a
     bounded queue). Each connection is served to completion by one
     worker, so per-connection frame ordering is untouched; distinct
     connections proceed concurrently against the shared thread-safe
     scheduler. A dropped or hostile connection costs only that
     connection; a shutdown request stops accepting, drains, and
     unlinks the socket path.

   Hardening, because clients misbehave:

   - SIGPIPE is ignored on both transports: a client that disconnects
     mid-response turns the write into an EPIPE error on that
     connection instead of a signal that kills the whole server.
   - [Unix.accept] retries on EINTR/ECONNABORTED.
   - Binding refuses to clobber a live server (or any non-socket file)
     at the requested path: the path is probed with a connect first and
     only a genuinely stale socket file is removed.
   - Frame length and batch count are bounded (see {!Protocol}); a
     frame or batch past the bound poisons only its own connection.

   Requests arrive either bare (a batch of one) or as an explicit
   [op=batch count=K] frame followed by K request frames. *)

exception Socket_busy of { path : string; reason : string }

let () =
  Printexc.register_printer (function
    | Socket_busy { path; reason } ->
      Some (Printf.sprintf "Socket_busy(%s: %s)" path reason)
    | _ -> None)

(* A server must never die of SIGPIPE: writes to dropped clients have
   to surface as per-connection EPIPE errors. Idempotent; no-op where
   the signal does not exist. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let read_batch ic first =
  match Protocol.get first "op" with
  | Some "batch" ->
    let count =
      match Protocol.get_int first "count" with
      | Some c when c >= 0 && c <= Protocol.max_batch () -> c
      | Some c when c >= 0 ->
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "batch count %d exceeds the limit of %d" c (Protocol.max_batch ())))
      | _ -> raise (Protocol.Protocol_error "batch frame needs count>=0")
    in
    let rec collect k acc =
      if k = 0 then List.rev acc
      else
        match Protocol.read_frame ic with
        | Some frame -> collect (k - 1) (frame :: acc)
        | None -> raise (Protocol.Protocol_error "EOF inside a batch")
    in
    collect count []
  | _ -> [ first ]

let serve_channels sched ic oc =
  let emit frame = Protocol.write_frame oc frame in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> `Eof
    | Some first -> (
      match Sched.handle_batch sched (read_batch ic first) ~emit with
      | `Continue -> loop ()
      | `Shutdown -> `Shutdown)
  in
  loop ()

let serve_stdio ?capacity ?domains ?store_dir ?max_frame ?max_batch () =
  ignore_sigpipe ();
  Option.iter Protocol.set_max_frame max_frame;
  Option.iter Protocol.set_max_batch max_batch;
  let sched = Sched.create ?capacity ?domains ?store_dir () in
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  ignore (serve_channels sched stdin stdout)

(* ---- the worker pool ----

   A bounded queue of accepted connections between the accept loop and
   the worker domains. Determinism inside a connection is untouched
   (one worker owns a connection end to end); the queue only decides
   which worker picks up which connection. *)

module Pool = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    queue : Unix.file_descr Queue.t;
    limit : int;
    mutable stopping : bool;
  }

  let create ~limit =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      queue = Queue.create ();
      limit = max 1 limit;
      stopping = false;
    }

  (* Enqueue an accepted connection, blocking while the queue is full
     (back-pressure: the listen backlog absorbs the burst). A push after
     stop closes the connection instead. *)
  let push t fd =
    Mutex.lock t.mutex;
    while Queue.length t.queue >= t.limit && not t.stopping do
      Condition.wait t.nonfull t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      Queue.push fd t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex
    end

  (* Next connection to serve; [None] once stopped and drained. *)
  let pop t =
    Mutex.lock t.mutex;
    let rec go () =
      if not (Queue.is_empty t.queue) then begin
        let fd = Queue.pop t.queue in
        Condition.signal t.nonfull;
        Mutex.unlock t.mutex;
        Some fd
      end
      else if t.stopping then begin
        Mutex.unlock t.mutex;
        None
      end
      else begin
        Condition.wait t.nonempty t.mutex;
        go ()
      end
    in
    go ()

  let stop t =
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex
end

(* Serve one accepted connection to completion. Every transport-level
   failure — a client gone mid-frame, a hostile length header, a write
   into a closed peer — is absorbed here: it ends this connection and
   nothing else. *)
let serve_connection sched fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let outcome = match serve_channels sched ic oc with v -> v | exception _ -> `Eof in
  (* both channels share the fd; the second close's EBADF is expected *)
  (try close_out oc with Sys_error _ -> ());
  (try close_in ic with Sys_error _ -> ());
  outcome

(* Refuse to remove anything at [path] except a provably stale unix
   socket: a live server answers a connect probe, and a non-socket file
   was never ours to delete. *)
let claim_socket_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> `Live
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Stale
          | exception Unix.Unix_error (e, _, _) -> `Unknown (Unix.error_message e))
    in
    match verdict with
    | `Stale -> ( try Sys.remove path with Sys_error _ -> ())
    | `Live ->
      raise (Socket_busy { path; reason = "a server is already answering on this socket" })
    | `Unknown reason ->
      raise
        (Socket_busy { path; reason = Printf.sprintf "cannot probe the socket (%s)" reason }))
  | { Unix.st_kind = _; _ } ->
    raise (Socket_busy { path; reason = "the path exists and is not a unix socket" })

let rec accept_retry sock =
  match Unix.accept sock with
  | conn -> conn
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> accept_retry sock

let serve_socket ?capacity ?domains ?store_dir ?(workers = 1) ?max_frame ?max_batch ~path () =
  ignore_sigpipe ();
  Option.iter Protocol.set_max_frame max_frame;
  Option.iter Protocol.set_max_batch max_batch;
  let workers = max 1 workers in
  let sched = Sched.create ?capacity ?domains ?store_dir () in
  claim_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> ( try Sys.remove path with Sys_error _ -> ())
    | _ | (exception Unix.Unix_error _) -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      let pool = Pool.create ~limit:(max 8 (2 * workers)) in
      let stop = Atomic.make false in
      (* A worker that sees a shutdown request flips [stop], then nudges
         the accept loop awake with a throwaway self-connection — the
         portable way to interrupt a blocking [accept]. *)
      let request_stop () =
        if not (Atomic.exchange stop true) then begin
          let nudge = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect nudge (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
          try Unix.close nudge with Unix.Unix_error _ -> ()
        end
      in
      let worker () =
        let rec loop () =
          match Pool.pop pool with
          | None -> ()
          | Some fd ->
            (match serve_connection sched fd with
            | `Eof -> ()
            | `Shutdown -> request_stop ());
            loop ()
        in
        loop ()
      in
      let staff = List.init workers (fun _ -> Domain.spawn worker) in
      let rec accept_loop () =
        match accept_retry sock with
        | exception Unix.Unix_error _ when Atomic.get stop -> ()
        | conn, _ ->
          if Atomic.get stop then (try Unix.close conn with Unix.Unix_error _ -> ())
          else begin
            Pool.push pool conn;
            accept_loop ()
          end
      in
      accept_loop ();
      Pool.stop pool;
      List.iter Domain.join staff)
