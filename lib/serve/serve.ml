(* Transport loops of the solve service.

   One scheduler (cache + domain pool defaults) serves a sequence of
   length-framed requests. Two transports share the loop:

   - stdio: frames on stdin/stdout — the child-process transport
     ([lll_cli client --spawn] talks to it), also handy under socat.
   - unix socket: bind, listen, accept one connection at a time. A
     dropped connection just closes; a shutdown request stops the
     whole server and unlinks the socket path.

   Requests arrive either bare (a batch of one) or as an explicit
   [op=batch count=K] frame followed by K request frames. *)

let read_batch ic first =
  match Protocol.get first "op" with
  | Some "batch" ->
    let count =
      match Protocol.get_int first "count" with
      | Some c when c >= 0 -> c
      | _ -> raise (Protocol.Protocol_error "batch frame needs count>=0")
    in
    let rec collect k acc =
      if k = 0 then List.rev acc
      else
        match Protocol.read_frame ic with
        | Some frame -> collect (k - 1) (frame :: acc)
        | None -> raise (Protocol.Protocol_error "EOF inside a batch")
    in
    collect count []
  | _ -> [ first ]

let serve_channels sched ic oc =
  let emit frame = Protocol.write_frame oc frame in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> `Eof
    | Some first -> (
      match Sched.handle_batch sched (read_batch ic first) ~emit with
      | `Continue -> loop ()
      | `Shutdown -> `Shutdown)
  in
  loop ()

let serve_stdio ?capacity ?domains () =
  let sched = Sched.create ?capacity ?domains () in
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  ignore (serve_channels sched stdin stdout)

let serve_socket ?capacity ?domains ~path () =
  let sched = Sched.create ?capacity ?domains () in
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    if Sys.file_exists path then Sys.remove path
  in
  Fun.protect ~finally:cleanup (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let conn, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        let outcome =
          match serve_channels sched ic oc with
          | v -> v
          | exception Protocol.Protocol_error _ -> `Eof
          | exception Sys_error _ -> `Eof
        in
        (try close_out oc with Sys_error _ -> ());
        (try close_in ic with Sys_error _ -> ());
        match outcome with `Eof -> accept_loop () | `Shutdown -> ()
      in
      accept_loop ())
