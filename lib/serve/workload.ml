(* Instance descriptions the service understands, and their canonical
   cache keys.

   A request names an instance by generator spec (family + parameters —
   the same families the CLI generates), by uploading a serialized blob
   (text v1/v2 or binary v3) in the frame body, or by a server-local
   [file=PATH] header. All map to a content key: specs canonicalise to
   a parameter string, blobs to a digest, binary container files to the
   kind/checksum/length fingerprint read from their fixed header (no
   payload scan). The same description always yields the same key,
   which is what makes repeat requests cache hits.

   A [file=] pointing at a v3 binary container builds through the mmap
   load path ([Serial.load_binary_mmap]): the container's bytes stay in
   the OS page cache instead of being copied into a heap string before
   decode. *)

module Gen = Lll_graph.Generators
module Syn = Lll_core.Synthetic
module Serial = Lll_core.Serial
module Sink = Lll_apps.Sinkless
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting

(* the application engines register themselves on first use; any serve
   consumer resolving solver names needs them in the registry *)
let () = Lll_apps.App_engines.ensure_registered ()

type spec = {
  family : string;
  n : int;
  degree : int;
  seed : int;
  at_threshold : bool;
}

let families = [ "ring"; "rank3"; "sinkless"; "sinkless-relaxed"; "hyper"; "weak-splitting" ]

let build_spec { family; n; degree; seed; at_threshold } =
  let position = if at_threshold then Syn.At_threshold else Syn.Below_threshold in
  match family with
  | "ring" -> Syn.ring ~position ~seed ~n ~arity:4 ()
  | "rank3" -> Syn.random ~position ~seed ~n ~rank:3 ~delta:2 ~arity:8 ()
  | "sinkless" -> Sink.instance (Gen.random_regular ~seed n degree)
  | "sinkless-relaxed" -> Sink.relaxed_instance (Gen.random_regular ~seed n degree)
  | "hyper" -> HO.instance (Gen.random_regular_hypergraph ~seed n 3 degree)
  | "weak-splitting" ->
    WS.instance ~nv:n (Gen.random_biregular_bipartite ~seed ~nv:n ~nu:n ~deg_u:3 ~deg_v:3)
  | f -> invalid_arg (Printf.sprintf "Workload.build_spec: unknown family %S" f)

let key_of_spec { family; n; degree; seed; at_threshold } =
  Printf.sprintf "spec:%s;n=%d;d=%d;s=%d;at=%b" family n degree seed at_threshold

(* A request's instance description: [(cache key, builder)]. A non-empty
   body wins over a [file=] header, which wins over spec fields. *)
let of_frame (frame : Protocol.frame) =
  if frame.Protocol.body <> "" then begin
    let blob = frame.Protocol.body in
    (Cache.content_key blob, fun () -> Serial.of_any_string blob)
  end
  else
    match Protocol.get frame "file" with
    | Some path ->
      if not (Sys.file_exists path) then
        raise (Protocol.Protocol_error (Printf.sprintf "file not found: %s" path));
      (match Serial.binary_fingerprint path with
      | Some fp -> ("file-v3:" ^ fp, fun () -> Serial.load_binary_mmap path)
      | None ->
        ("file:" ^ Digest.to_hex (Digest.file path), fun () -> Serial.load_any path))
    | None -> begin
    let get_int key default =
      match Protocol.get_int frame key with Some v -> v | None -> default
    in
    let spec =
      {
        family = Option.value (Protocol.get frame "family") ~default:"ring";
        n = get_int "n" 30;
        degree = get_int "degree" 3;
        seed = get_int "gen-seed" (get_int "seed" 1);
        at_threshold = Protocol.get_bool frame "at-threshold";
      }
    in
      if not (List.mem spec.family families) then
        raise
          (Protocol.Protocol_error (Printf.sprintf "unknown family %S" spec.family));
      (key_of_spec spec, fun () -> build_spec spec)
    end
