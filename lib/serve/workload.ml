(* Instance descriptions the service understands.

   A request names an instance by generator spec (family + parameters —
   the same families the CLI generates), by uploading a serialized blob
   (text v1/v2 or binary v3) in the frame body, or by a server-local
   [file=PATH] header. This module only maps frames onto store
   descriptions: canonicalisation, content keys, build and load logic
   all live in [Lll_store] (one codec, one acquisition path), so a
   description resolves to the same key — and the same materialized
   artifact — whether it arrives here, at the CLI, or in the scenario
   runner. *)

module Store = Lll_store.Store
module Spec = Lll_store.Spec

let families = Spec.families

(* A non-empty body wins over a [file=] header, which wins over spec
   fields. *)
let of_frame (frame : Protocol.frame) =
  if frame.Protocol.body <> "" then Store.Of_blob frame.Protocol.body
  else
    match Protocol.get frame "file" with
    | Some path ->
      if not (Sys.file_exists path) then
        raise (Protocol.Protocol_error (Printf.sprintf "file not found: %s" path));
      Store.Of_file path
    | None ->
      let get_int key default =
        match Protocol.get_int frame key with Some v -> v | None -> default
      in
      let family = Option.value (Protocol.get frame "family") ~default:"ring" in
      if not (List.mem family families) then
        raise (Protocol.Protocol_error (Printf.sprintf "unknown family %S" family));
      Store.Of_spec
        (Spec.of_family_params ~family ~n:(get_int "n" 30) ~degree:(get_int "degree" 3)
           ~seed:(get_int "gen-seed" (get_int "seed" 1))
           ~at_threshold:(Protocol.get_bool frame "at-threshold"))
