(** Length-framed wire protocol: [u32 LE length] + payload, payload =
    one [key=value] header line + '\n' + raw byte body. See the
    implementation header for the request/response vocabulary. *)

exception Protocol_error of string

type frame = { header : (string * string) list; body : string }

val max_frame : unit -> int
(** Current frame-size bound in bytes (default [2^30]). {!read_frame}
    rejects a length header past it before reading the body;
    {!write_frame} refuses to emit past it. *)

val set_max_frame : int -> unit
(** @raise Invalid_argument below 4096 bytes. *)

val max_batch : unit -> int
(** Current bound on an explicit batch's [count] (default 4096). *)

val set_max_batch : int -> unit
(** @raise Invalid_argument below 1. *)

val encode : frame -> string
val decode : string -> frame

val write_frame : out_channel -> frame -> unit
(** Write and flush one frame. *)

val read_frame : in_channel -> frame option
(** [None] on clean EOF before a frame starts.
    @raise Protocol_error on a truncated or oversized frame. *)

val get : frame -> string -> string option
val get_exn : frame -> string -> string
val get_int : frame -> string -> int option
val get_bool : frame -> string -> bool
(** Absent and ["0"] are [false]; any other value is [true]. *)
