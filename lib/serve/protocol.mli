(** Length-framed wire protocol: [u32 LE length] + payload, payload =
    one [key=value] header line + '\n' + raw byte body. See the
    implementation header for the request/response vocabulary. *)

exception Protocol_error of string

type frame = { header : (string * string) list; body : string }

val encode : frame -> string
val decode : string -> frame

val write_frame : out_channel -> frame -> unit
(** Write and flush one frame. *)

val read_frame : in_channel -> frame option
(** [None] on clean EOF before a frame starts.
    @raise Protocol_error on a truncated or oversized frame. *)

val get : frame -> string -> string option
val get_exn : frame -> string -> string
val get_int : frame -> string -> int option
val get_bool : frame -> string -> bool
(** Absent and ["0"] are [false]; any other value is [true]. *)
