(** The batching scheduler: executes request batches against the shared
    LRU instance cache and domain pool, streaming metrics frames and
    emitting result frames in request order. Thread-safe — one
    scheduler is shared by every connection of a worker-pool server.
    See the implementation header for the grouping, ordering and
    memoization contracts. *)

type t

val create : ?capacity:int -> ?memo_capacity:int -> ?domains:int -> unit -> t
(** [capacity] bounds the instance cache (default 32); [memo_capacity]
    bounds the solved-response memo cache (default 256); [domains] is
    the default domain count for requests that do not set one. *)

val stats : t -> Cache.stats
(** Instance-cache counters. *)

val memo_stats : t -> Cache.stats
(** Solved-response memo-cache counters. *)

val handle_batch :
  t -> Protocol.frame list -> emit:(Protocol.frame -> unit) -> [ `Continue | `Shutdown ]
(** Execute one batch. Every response frame (streamed metrics, then one
    result per request in id order) goes through [emit]. Returns
    [`Shutdown] when the batch contained a shutdown request. A raising
    request produces a [status=error] result for its id only. *)
