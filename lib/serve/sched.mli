(** The batching scheduler: executes request batches against the shared
    LRU instance cache and domain pool, streaming metrics frames and
    emitting result frames in request order. Thread-safe — one
    scheduler is shared by every connection of a worker-pool server.
    See the implementation header for the grouping, ordering and
    memoization contracts. *)

type t

val create :
  ?capacity:int -> ?memo_capacity:int -> ?domains:int -> ?store_dir:string -> unit -> t
(** [capacity] bounds the store's memory tier (default 32);
    [memo_capacity] bounds the solved-response memo cache (default
    256); [domains] is the default domain count for requests that do
    not set one; [store_dir] backs the scheduler's store with an
    artifact directory (without it instances live in memory only, as
    before PR 10). *)

val store : t -> Lll_store.Store.t
(** The scheduler's store — the single acquisition path every request
    description resolves through. *)

val store_stats : t -> Lll_store.Store.stats

val stats : t -> Cache.stats
(** Memory-tier counters (kept for compatibility: equals
    [(store_stats t).st_mem]). *)

val memo_stats : t -> Cache.stats
(** Solved-response memo-cache counters. *)

val handle_batch :
  t -> Protocol.frame list -> emit:(Protocol.frame -> unit) -> [ `Continue | `Shutdown ]
(** Execute one batch. Every response frame (streamed metrics, then one
    result per request in id order) goes through [emit]. Returns
    [`Shutdown] when the batch contained a shutdown request. A raising
    request produces a [status=error] result for its id only. *)
