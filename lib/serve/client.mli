(** Client side of the solve service: connect or spawn a server, send
    batches, demultiplex responses. *)

type conn

val connect_socket : string -> conn

val spawn : ?exe:string -> ?args:string list -> unit -> conn
(** Launch a child server process speaking the stdio transport.
    [exe] defaults to [Sys.executable_name]; [args] to
    [["serve"; "--stdio"]]. *)

type server
(** A spawned socket-server child process. *)

val spawn_server : ?exe:string -> ?workers:int -> ?args:string list -> unit -> server
(** Launch a child socket server on a collision-free temp socket path
    (claimed via [Filename.temp_file], not pid/time arithmetic) and
    block until it accepts connections. Extra [args] append to the
    serve command line.
    @raise Failure if the server does not come up within 10s. *)

val server_path : server -> string
(** The socket path to {!connect_socket} to. *)

val stop_server : server -> unit
(** Best-effort shutdown request, reap the child (SIGKILL after 10s),
    and remove the lock/socket files. *)

type response = {
  metrics : Protocol.frame list;  (** streamed metrics frames, oldest first *)
  result : Protocol.frame;
}

val batch : conn -> Protocol.frame list -> response list
(** Send a batch, block for every response; returned in request order.
    @raise Protocol.Protocol_error if the connection drops mid-way. *)

val request : conn -> Protocol.frame -> response

val close : conn -> unit
(** Drop the connection without stopping the server (the right exit for
    a shared socket server). *)

val shutdown : conn -> unit
(** Best-effort shutdown request, then close the connection (the right
    exit for a {!spawn}ed private child). *)

val smoke : conn -> (unit, string) result
(** The end-to-end exercise behind [lll_cli client --smoke]: mixed
    solve batch (cache misses), identical repeat solve (must report
    [cache=hit] with a byte-identical assignment), verify of the
    returned assignment, cache-stats check. The caller owns [conn]
    (call {!shutdown} after). *)

val smoke_fleet : ?clients:int -> ?requests:int -> string -> (unit, string) result
(** Concurrent exercise against a freshly spawned socket server at the
    given path: [clients] connections (default 4, each its own domain)
    send [requests] identical solve requests (default 8). Checks every
    response is ok with byte-identical assignments, the server still
    accepts afterwards, and the instance was built exactly once
    server-wide. *)
