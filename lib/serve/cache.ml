(* The LRU instance cache behind the solve service.

   Keys are content identifiers: for generator-described instances the
   canonical parameter spec, for uploaded blobs an MD5 digest of the
   bytes ([content_key]). Entries carry the fully built [Instance.t] —
   space with installed tables, dependency graph, hypergraph — so a hit
   skips every parse/compile/rebuild step; that is the "zero
   instance-rebuild work" the service promises for repeat requests.

   The cache is deliberately simple: a Hashtbl plus a logical clock,
   eviction by minimum last-use tick (an O(capacity) scan — capacities
   are tens of instances, each worth megabytes, so the scan never
   matters). Single-threaded by construction: the server loop is the
   only caller. *)

module Instance = Lll_core.Instance

type entry = { inst : Instance.t; mutable tick : int }

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { s_size : int; s_capacity : int; s_hits : int; s_misses : int; s_evictions : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity; tbl = Hashtbl.create 16; clock = 0; hits = 0; misses = 0; evictions = 0 }

let content_key blob = "blob:" ^ Digest.to_hex (Digest.string blob)

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, best) when best <= e.tick -> ()
      | _ -> victim := Some (key, e.tick))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1

(* [`Hit] means the instance came straight out of the cache — no build
   ran; [`Miss] means [build] ran (and the result is now cached). *)
let find_or_build t ~key ~build =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.tick <- t.clock;
    t.hits <- t.hits + 1;
    (e.inst, `Hit)
  | None ->
    let inst = build () in
    t.misses <- t.misses + 1;
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    Hashtbl.replace t.tbl key { inst; tick = t.clock };
    (inst, `Miss)

let stats t =
  {
    s_size = Hashtbl.length t.tbl;
    s_capacity = t.capacity;
    s_hits = t.hits;
    s_misses = t.misses;
    s_evictions = t.evictions;
  }
