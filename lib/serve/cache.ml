(* The serve layer's cache is the store's memory tier, re-exported under
   its historical name: PR 8 grew this module inside lib/serve, PR 10
   moved the implementation to [Lll_store.Memcache] so the artifact
   store's build-once discipline and the service's are one code path.
   No spec or digest logic lives here — content keys come from
   [Lll_store.Store.descr_key]. *)

include Lll_store.Memcache
