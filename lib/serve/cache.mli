(** The store's build-once LRU memory tier ({!Lll_store.Memcache})
    re-exported under the serve layer's historical [Cache] name; see
    that module for the concurrency contract. *)

include module type of struct
  include Lll_store.Memcache
end
