(** LRU cache of fully built instances, keyed by content identity.
    A hit returns the cached [Instance.t] with zero rebuild work. *)

module Instance = Lll_core.Instance

type t

type stats = {
  s_size : int;
  s_capacity : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val content_key : string -> string
(** Content identity of an uploaded instance blob (digest-based). Spec
    described instances use their canonical parameter string directly. *)

val find_or_build : t -> key:string -> build:(unit -> Instance.t) -> Instance.t * [ `Hit | `Miss ]
(** Return the cached instance ([`Hit], no build work) or run [build],
    cache the result and return it ([`Miss]), evicting the least
    recently used entry when over capacity. *)

val stats : t -> stats
