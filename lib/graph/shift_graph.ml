(* Shift graphs — the combinatorial core of the Omega(log* n) lower bound
   the paper builds on.

   The shift graph S(m, k) has one node per ordered k-tuple of DISTINCT
   ids from {0..m-1}, with an edge between (a_1, ..., a_k) and
   (a_2, ..., a_k, b) whenever the result is again a tuple of distinct
   ids. A t-round deterministic algorithm coloring directed paths/rings
   with ids from [m] is exactly a proper coloring of S(m, 2t+1) — every
   node's output is a function of its (2t+1)-id view, and adjacent views
   overlap in a shift. The chromatic number of shift graphs famously
   grows like an iterated logarithm of m, which is precisely why
   o(log* n)-round coloring is impossible and why the paper's
   O(poly d + log* n) upper bounds are optimal in n.

   We materialise S(m, k) as an ordinary {!Graph.t} (small m only: the
   graph has m!/(m-k)! nodes) so the exact chromatic-number search of
   {!Coloring} can certify concrete instances of the lower bound. *)

(* rank/unrank ordered k-tuples of distinct elements of [m] *)
let num_tuples m k =
  let rec go acc i = if i = 0 then acc else go (acc * (m - i + 1)) (i - 1) in
  go 1 k

(* the tuple is encoded by successive choices among the remaining ids *)
let rank ~m tuple =
  let k = Array.length tuple in
  let used = Array.make m false in
  let r = ref 0 in
  for i = 0 to k - 1 do
    (* position of tuple.(i) among unused ids *)
    let p = ref 0 in
    for x = 0 to tuple.(i) - 1 do
      if not used.(x) then incr p
    done;
    r := (!r * (m - i)) + !p;
    used.(tuple.(i)) <- true
  done;
  !r

let unrank ~m ~k r =
  let used = Array.make m false in
  let tuple = Array.make k 0 in
  (* peel positions from most significant *)
  let divisors = Array.make k 1 in
  for i = 0 to k - 1 do
    divisors.(i) <- m - i
  done;
  let weights = Array.make k 1 in
  for i = k - 2 downto 0 do
    weights.(i) <- weights.(i + 1) * divisors.(i + 1)
  done;
  let r = ref r in
  for i = 0 to k - 1 do
    let p = !r / weights.(i) in
    r := !r mod weights.(i);
    (* p-th unused id *)
    let count = ref (-1) in
    let x = ref (-1) in
    while !count < p do
      incr x;
      if not used.(!x) then incr count
    done;
    tuple.(i) <- !x;
    used.(!x) <- true
  done;
  tuple

let build ~m ~k =
  if k < 1 || m < k then invalid_arg "Shift_graph.build: need 1 <= k <= m";
  let n = num_tuples m k in
  let edges = ref [] in
  for r = 0 to n - 1 do
    let t = unrank ~m ~k r in
    (* successor windows (t_2, ..., t_k, b): on a path, any k+1
       consecutive ids are pairwise distinct, so b avoids the whole
       current window *)
    for b = 0 to m - 1 do
      if not (Array.exists (fun x -> x = b) t) then begin
        let succ = Array.init k (fun i -> if i = k - 1 then b else t.(i + 1)) in
        let r' = rank ~m succ in
        if r <> r' then edges := (min r r', max r r') :: !edges
      end
    done
  done;
  Graph.create ~n !edges

(* Chromatic number of S(m, k) within a search budget. *)
let chromatic_number ?budget ~m ~k () = Coloring.chromatic_number ?budget (build ~m ~k)

(* Smallest universe size for which no [colors]-coloring algorithm with
   view size [k] exists (i.e. chi(S(m,k)) > colors), scanning m upward;
   [None] if undecided within [max_m]/budget. *)
let threshold_universe ?budget ~k ~colors ~max_m () =
  let rec go m =
    if m > max_m then None
    else
      match Coloring.colorable ?budget (build ~m ~k) colors with
      | Some false -> Some m
      | Some true -> go (m + 1)
      | None -> None
  in
  go (k + 1)
