(* Proper vertex colorings: checking, greedy construction, and the standard
   one-color-class-per-round reduction to [max_degree + 1] colors that we
   use after Linial's algorithm. *)

type t = int array (* node -> color, colors are >= 0 *)

let is_proper g (c : t) =
  Array.length c = Graph.n g
  && Graph.fold_edges (fun ok _ u v -> ok && c.(u) <> c.(v)) true g

let num_colors (c : t) = Array.fold_left (fun acc x -> max acc (x + 1)) 0 c

(* Smallest color not used by the neighbors of [v]. The answer is at most
   [degree v], so a [deg+1]-slot table plus one scan replaces the old
   sort_uniq over the neighbor colors. *)
let smallest_free g (c : t) v =
  let deg = Graph.degree g v in
  let used = Array.make (deg + 1) false in
  Graph.iter_adj g v (fun u _ ->
      let cu = c.(u) in
      if cu >= 0 && cu <= deg then used.(cu) <- true);
  let rec go k = if used.(k) then go (k + 1) else k in
  go 0

let greedy ?order g =
  let n = Graph.n g in
  let order = match order with Some o -> o | None -> Array.init n (fun i -> i) in
  if Array.length order <> n then invalid_arg "Coloring.greedy: order must list all nodes";
  let c = Array.make n (-1) in
  Array.iter (fun v -> c.(v) <- smallest_free g c v) order;
  c

(* Reduce a proper coloring to at most [max_degree g + 1] colors. Classes
   [>= dmax+1] are eliminated one at a time, highest first; the nodes of a
   class are pairwise non-adjacent, so each class costs one communication
   round in the LOCAL model. Returns the new coloring and the number of
   rounds spent. *)
let reduce g (c : t) =
  if not (is_proper g c) then invalid_arg "Coloring.reduce: input not proper";
  let c = Array.copy c in
  let dmax = Graph.max_degree g in
  let target = dmax + 1 in
  let top = num_colors c in
  for cls = top - 1 downto target do
    (* all nodes of class [cls] recolor simultaneously; they are an
       independent set, so using the pre-round colors of neighbors is
       exactly what a LOCAL round sees *)
    let updates = ref [] in
    Array.iteri
      (fun v col ->
        if col = cls then begin
          (* some free color < target exists: at most dmax neighbors *)
          updates := (v, smallest_free g c v) :: !updates
        end)
      c;
    List.iter (fun (v, col) -> c.(v) <- col) !updates
  done;
  (c, max 0 (top - target))

(* Kuhn–Wattenhofer style parallel color reduction: partition the color
   space into blocks of [2*(dmax+1)] colors; within every block, the
   [dmax+1] "high" colors are eliminated one offset per round (all blocks
   in parallel — recolored nodes pick a free color inside their own
   block's low window, and windows of distinct blocks are disjoint), then
   colors are compacted block-by-block, halving the palette every
   [dmax+1] rounds. Reaches [dmax+1] colors in O(dmax * log m) rounds
   instead of the O(m) of {!reduce}. *)
let kw_reduce g (c : t) =
  if not (is_proper g c) then invalid_arg "Coloring.kw_reduce: input not proper";
  let c = Array.copy c in
  let dmax = Graph.max_degree g in
  let w = dmax + 1 in
  let rounds = ref 0 in
  let m = ref (num_colors c) in
  while !m > w do
    let block_size = 2 * w in
    (* eliminate high offsets j = 0 .. w-1, one round each *)
    for j = 0 to w - 1 do
      incr rounds;
      let updates = ref [] in
      Array.iteri
        (fun v col ->
          let base = col / block_size * block_size in
          if col - base = w + j then begin
            (* smallest free color in [base, base + w): at most dmax
               neighbors mark < w slots, so one is always free *)
            let used = Array.make w false in
            Graph.iter_adj g v (fun u _ ->
                let cu = c.(u) in
                if cu >= base && cu < base + w then used.(cu - base) <- true);
            let rec free k = if used.(k) then free (k + 1) else base + k in
            updates := (v, free 0) :: !updates
          end)
        c;
      List.iter (fun (v, col) -> c.(v) <- col) !updates
    done;
    (* compact: block b's low window maps to [b*w, b*w + w) — local
       renaming, no communication *)
    Array.iteri
      (fun v col ->
        let b = col / block_size in
        c.(v) <- (b * w) + (col mod block_size))
      c;
    let m' = ((!m + block_size - 1) / block_size) * w in
    assert (num_colors c <= m');
    m := m'
  done;
  (c, !rounds)

(* Exact c-colorability by backtracking with forward checking, visiting
   nodes in descending-degree order; [budget] caps the number of search
   nodes (None result = budget exhausted, undecided). Exponential in the
   worst case — meant for the small, structured graphs of the lower-bound
   experiments (shift graphs). *)
let colorable_exn ?(budget = 10_000_000) g c =
  let n = Graph.n g in
  if n = 0 then Some (Some [||])
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a)) order;
    let colors = Array.make n (-1) in
    let steps = ref 0 in
    let exception Out_of_budget in
    let rec go i =
      if i = n then true
      else begin
        incr steps;
        if !steps > budget then raise Out_of_budget;
        let v = order.(i) in
        let used = Array.make c false in
        Graph.iter_adj g v (fun u _ -> if colors.(u) >= 0 then used.(colors.(u)) <- true);
        let rec try_color k =
          if k = c then false
          else if used.(k) then try_color (k + 1)
          else begin
            colors.(v) <- k;
            if go (i + 1) then true
            else begin
              colors.(v) <- -1;
              try_color (k + 1)
            end
          end
        in
        try_color 0
      end
    in
    try if go 0 then Some (Some (Array.copy colors)) else Some None
    with Out_of_budget -> None
  end

let colorable ?budget g c =
  match colorable_exn ?budget g c with
  | Some (Some _) -> Some true
  | Some None -> Some false
  | None -> None

(* Exact chromatic number (within the search budget): smallest [c] for
   which the graph is [c]-colorable. [None] if the budget ran out before
   a decision. *)
let chromatic_number ?budget g =
  let rec go c =
    if c > Graph.n g then None
    else
      match colorable ?budget g c with
      | Some true -> Some c
      | Some false -> go (c + 1)
      | None -> None
  in
  if Graph.n g = 0 then Some 0 else go 1

let classes (c : t) =
  let k = num_colors c in
  let buckets = Array.make k [] in
  Array.iteri (fun v col -> buckets.(col) <- v :: buckets.(col)) c;
  Array.map List.rev buckets
