(* Rank-bounded hypergraphs.

   In the paper's setting (Section 3), the hypergraph [H] has one node per
   bad event and one hyperedge per random variable, connecting exactly the
   events that depend on the variable; the rank of [H] is the maximum
   number of events any variable affects ([r]). *)

type t = {
  n : int;
  edges : int array array; (* hyperedge id -> sorted distinct member nodes *)
  incident : int list array; (* node -> hyperedge ids *)
}

let create ~n edge_list =
  if n < 0 then invalid_arg "Hypergraph.create: negative n";
  let norm members =
    let members = List.sort_uniq compare members in
    List.iter (fun v -> if v < 0 || v >= n then invalid_arg "Hypergraph.create: node out of range") members;
    if members = [] then invalid_arg "Hypergraph.create: empty hyperedge";
    Array.of_list members
  in
  let edges = Array.of_list (List.map norm edge_list) in
  let incident = Array.make n [] in
  Array.iteri (fun i e -> Array.iter (fun v -> incident.(v) <- i :: incident.(v)) e) edges;
  Array.iteri (fun v l -> incident.(v) <- List.sort compare l) incident;
  { n; edges; incident }

(* Bulk-load variant of [create]: hyperedges arrive as strictly
   ascending arrays, so validation is one linear scan and the incident
   lists come out sorted by construction (descending edge-id push). *)
let of_sorted_arrays ~n edges =
  if n < 0 then invalid_arg "Hypergraph.create: negative n";
  Array.iter
    (fun e ->
      if Array.length e = 0 then invalid_arg "Hypergraph.create: empty hyperedge";
      Array.iteri
        (fun j v ->
          if v < 0 || v >= n then invalid_arg "Hypergraph.create: node out of range";
          if j > 0 && e.(j - 1) >= v then
            invalid_arg "Hypergraph.create: members must be strictly ascending")
        e)
    edges;
  let edges = Array.map Array.copy edges in
  let incident = Array.make n [] in
  for i = Array.length edges - 1 downto 0 do
    Array.iter (fun v -> incident.(v) <- i :: incident.(v)) edges.(i)
  done;
  { n; edges; incident }

let n h = h.n
let m h = Array.length h.edges
let edge h i = h.edges.(i)
let edges h = h.edges
let incident h v = h.incident.(v)
let degree h v = List.length h.incident.(v)

let max_degree h =
  let d = ref 0 in
  for v = 0 to h.n - 1 do
    d := max !d (degree h v)
  done;
  !d

let rank h = Array.fold_left (fun acc e -> max acc (Array.length e)) 0 h.edges

(* The primal (a.k.a. 2-section) graph: nodes of [h], an edge between every
   pair of nodes sharing a hyperedge. For an LLL instance this is exactly
   the dependency graph. *)
let primal_graph h =
  let es = ref [] in
  Array.iter
    (fun e ->
      let k = Array.length e in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          es := (e.(i), e.(j)) :: !es
        done
      done)
    h.edges;
  Graph.create ~n:h.n !es

(* bipartite incidence rendering: square nodes for hyperedges *)
let to_dot h =
  let b = Buffer.create 256 in
  Buffer.add_string b "graph h {\n";
  for v = 0 to h.n - 1 do
    Buffer.add_string b (Printf.sprintf "  v%d [label=\"%d\"];\n" v v)
  done;
  Array.iteri
    (fun i members ->
      Buffer.add_string b (Printf.sprintf "  e%d [shape=box,label=\"e%d\"];\n" i i);
      Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "  e%d -- v%d;\n" i v)) members)
    h.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp fmt h = Format.fprintf fmt "hypergraph(n=%d, m=%d, rank=%d)" h.n (m h) (rank h)
