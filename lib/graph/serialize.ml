(* Textual graph and hypergraph serialization.

   Graphs use the DIMACS edge-list convention (with 0-based vertices and
   a "p edge <n> <m>" header); hypergraphs use an analogous "p hyper"
   header with one "h <k> <v_1> ... <v_k>" line per hyperedge. Comments
   start with 'c'. Round trips preserve the structures exactly up to
   edge order (tested). *)

exception Parse_error of { line : int; message : string }

let parse_fail line message = raise (Parse_error { line; message })

(* ---- graphs ---- *)

let graph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p edge %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges (fun _ u v -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v)) g;
  Buffer.contents buf

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let graph_of_string s =
  let n = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> 'c' then begin
        match tokens line with
        | [ "p"; "edge"; nn; _m ] -> (
          match int_of_string_opt nn with
          | Some v -> n := v
          | None -> parse_fail lineno "bad node count")
        | [ "e"; u; v ] -> (
          match (int_of_string_opt u, int_of_string_opt v) with
          | Some u, Some v -> edges := (u, v) :: !edges
          | _ -> parse_fail lineno "bad edge")
        | _ -> parse_fail lineno (Printf.sprintf "unrecognised line %S" line)
      end)
    (String.split_on_char '\n' s);
  if !n < 0 then parse_fail 0 "missing 'p edge' header";
  Graph.create ~n:!n (List.rev !edges)

let save_graph path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (graph_to_string g))

let load_graph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> graph_of_string (In_channel.input_all ic))

(* ---- hypergraphs ---- *)

let hypergraph_to_string h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p hyper %d %d\n" (Hypergraph.n h) (Hypergraph.m h));
  Array.iter
    (fun members ->
      Buffer.add_string buf (Printf.sprintf "h %d" (Array.length members));
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) members;
      Buffer.add_char buf '\n')
    (Hypergraph.edges h);
  Buffer.contents buf

let hypergraph_of_string s =
  let n = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> 'c' then begin
        match tokens line with
        | [ "p"; "hyper"; nn; _m ] -> (
          match int_of_string_opt nn with
          | Some v -> n := v
          | None -> parse_fail lineno "bad node count")
        | "h" :: k :: members -> (
          match int_of_string_opt k with
          | Some k when List.length members = k ->
            let members =
              List.map
                (fun t ->
                  match int_of_string_opt t with
                  | Some v -> v
                  | None -> parse_fail lineno "bad member")
                members
            in
            edges := members :: !edges
          | _ -> parse_fail lineno "bad hyperedge arity")
        | _ -> parse_fail lineno (Printf.sprintf "unrecognised line %S" line)
      end)
    (String.split_on_char '\n' s);
  if !n < 0 then parse_fail 0 "missing 'p hyper' header";
  Hypergraph.create ~n:!n (List.rev !edges)

let save_hypergraph path h =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (hypergraph_to_string h))

let load_hypergraph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> hypergraph_of_string (In_channel.input_all ic))
