(* Textual graph and hypergraph serialization.

   Graphs use the DIMACS edge-list convention (with 0-based vertices and
   a "p edge <n> <m>" header); hypergraphs use an analogous "p hyper"
   header with one "h <k> <v_1> ... <v_k>" line per hyperedge. Comments
   start with 'c'. Round trips preserve the structures exactly up to
   edge order (tested). *)

exception Parse_error of { line : int; message : string }

let parse_fail line message = raise (Parse_error { line; message })

(* ---- graphs ---- *)

let graph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p edge %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges (fun _ u v -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v)) g;
  Buffer.contents buf

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let graph_of_string s =
  let n = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> 'c' then begin
        match tokens line with
        | [ "p"; "edge"; nn; _m ] -> (
          match int_of_string_opt nn with
          | Some v -> n := v
          | None -> parse_fail lineno "bad node count")
        | [ "e"; u; v ] -> (
          match (int_of_string_opt u, int_of_string_opt v) with
          | Some u, Some v -> edges := (u, v) :: !edges
          | _ -> parse_fail lineno "bad edge")
        | _ -> parse_fail lineno (Printf.sprintf "unrecognised line %S" line)
      end)
    (String.split_on_char '\n' s);
  if !n < 0 then parse_fail 0 "missing 'p edge' header";
  Graph.create ~n:!n (List.rev !edges)

let save_graph path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (graph_to_string g))

let load_graph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> graph_of_string (In_channel.input_all ic))

(* ---- hypergraphs ---- *)

let hypergraph_to_string h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p hyper %d %d\n" (Hypergraph.n h) (Hypergraph.m h));
  Array.iter
    (fun members ->
      Buffer.add_string buf (Printf.sprintf "h %d" (Array.length members));
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) members;
      Buffer.add_char buf '\n')
    (Hypergraph.edges h);
  Buffer.contents buf

let hypergraph_of_string s =
  let n = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> 'c' then begin
        match tokens line with
        | [ "p"; "hyper"; nn; _m ] -> (
          match int_of_string_opt nn with
          | Some v -> n := v
          | None -> parse_fail lineno "bad node count")
        | "h" :: k :: members -> (
          match int_of_string_opt k with
          | Some k when List.length members = k ->
            let members =
              List.map
                (fun t ->
                  match int_of_string_opt t with
                  | Some v -> v
                  | None -> parse_fail lineno "bad member")
                members
            in
            edges := members :: !edges
          | _ -> parse_fail lineno "bad hyperedge arity")
        | _ -> parse_fail lineno (Printf.sprintf "unrecognised line %S" line)
      end)
    (String.split_on_char '\n' s);
  if !n < 0 then parse_fail 0 "missing 'p hyper' header";
  Hypergraph.create ~n:!n (List.rev !edges)

(* ---- weighted tables ----

   The textual form of a compiled event ({!Lll_prob.Event.table}): the
   satisfying scope tuples with their exact rational weights. One block:

     p wtable <k> <nrows>
     a <arity_1> ... <arity_k>
     w <x_1> ... <x_k> <weight>     (one line per satisfying tuple)

   The block embeds into larger line-oriented formats (the LLL instance
   format feeds its own line stream in via [weighted_table_of_lines]), so
   the parser is callback-driven. *)

type weighted_table = {
  arities : int array;
  rows : (int array * Lll_num.Rat.t) list; (* (scope-order values, weight) *)
}

let weighted_table_to_buffer buf (wt : weighted_table) =
  Buffer.add_string buf
    (Printf.sprintf "p wtable %d %d\n" (Array.length wt.arities) (List.length wt.rows));
  Buffer.add_string buf "a";
  Array.iter (fun a -> Buffer.add_string buf (Printf.sprintf " %d" a)) wt.arities;
  Buffer.add_char buf '\n';
  List.iter
    (fun (xs, w) ->
      Buffer.add_string buf "w";
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %d" x)) xs;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Lll_num.Rat.to_string w);
      Buffer.add_char buf '\n')
    wt.rows

let weighted_table_to_string wt =
  let buf = Buffer.create 256 in
  weighted_table_to_buffer buf wt;
  Buffer.contents buf

(* Parse one block out of a line stream. [next_line] yields the next
   non-empty payload line; [fail] builds the caller's error (with its
   own position bookkeeping). *)
let weighted_table_of_lines ~next_line ~(fail : string -> exn) =
  let die msg = raise (fail msg) in
  let expect_int tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> die (Printf.sprintf "expected integer, got %S" tok)
  in
  let k, nrows =
    match tokens (next_line ()) with
    | [ "p"; "wtable"; k; nrows ] -> (expect_int k, expect_int nrows)
    | _ -> die "expected 'p wtable <k> <nrows>'"
  in
  if k < 0 || nrows < 0 then die "negative wtable dimensions";
  let arities =
    match tokens (next_line ()) with
    | "a" :: toks when List.length toks = k -> Array.of_list (List.map expect_int toks)
    | _ -> die "expected 'a <arities>'"
  in
  Array.iter (fun a -> if a <= 0 then die "arities must be positive") arities;
  let rows =
    List.init nrows (fun _ ->
        match tokens (next_line ()) with
        | "w" :: toks when List.length toks = k + 1 ->
          let xs =
            Array.of_list (List.map expect_int (List.filteri (fun j _ -> j < k) toks))
          in
          Array.iteri
            (fun j x -> if x < 0 || x >= arities.(j) then die "tuple value out of range")
            xs;
          let w =
            try Lll_num.Rat.of_string (List.nth toks k)
            with Parse_error _ as e -> raise e | _ -> die "bad rational weight"
          in
          (* joint probabilities of satisfying tuples are strictly
             positive, so a zero or negative weight is always a
             corrupted row — reject it before any consumer divides by
             or compares against it *)
          if Lll_num.Rat.sign w <= 0 then die "row weight must be positive";
          (xs, w)
        | _ -> die "expected 'w <values> <weight>'")
  in
  { arities; rows }

let weighted_table_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let lineno = ref 0 in
  let next_line () =
    let rec go () =
      match !lines with
      | [] -> parse_fail !lineno "unexpected end of input"
      | l :: rest ->
        incr lineno;
        lines := rest;
        let l = String.trim l in
        if l = "" || l.[0] = 'c' || l.[0] = '#' then go () else l
    in
    go ()
  in
  weighted_table_of_lines ~next_line ~fail:(fun msg ->
      Parse_error { line = !lineno; message = msg })

let save_hypergraph path h =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (hypergraph_to_string h))

let load_hypergraph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> hypergraph_of_string (In_channel.input_all ic))
