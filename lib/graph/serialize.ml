(* Textual graph and hypergraph serialization.

   Graphs use the DIMACS edge-list convention (with 0-based vertices and
   a "p edge <n> <m>" header); hypergraphs use an analogous "p hyper"
   header with one "h <k> <v_1> ... <v_k>" line per hyperedge. Comments
   start with 'c'. Round trips preserve the structures exactly up to
   edge order (tested). *)

exception Parse_error of { line : int; message : string }

let parse_fail line message = raise (Parse_error { line; message })

(* ---- graphs ---- *)

let graph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p edge %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges (fun _ u v -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v)) g;
  Buffer.contents buf

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let graph_of_string s =
  let n = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> 'c' then begin
        match tokens line with
        | [ "p"; "edge"; nn; _m ] -> (
          match int_of_string_opt nn with
          | Some v -> n := v
          | None -> parse_fail lineno "bad node count")
        | [ "e"; u; v ] -> (
          match (int_of_string_opt u, int_of_string_opt v) with
          | Some u, Some v -> edges := (u, v) :: !edges
          | _ -> parse_fail lineno "bad edge")
        | _ -> parse_fail lineno (Printf.sprintf "unrecognised line %S" line)
      end)
    (String.split_on_char '\n' s);
  if !n < 0 then parse_fail 0 "missing 'p edge' header";
  Graph.create ~n:!n (List.rev !edges)

let save_graph path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (graph_to_string g))

let load_graph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> graph_of_string (In_channel.input_all ic))

(* ---- hypergraphs ---- *)

let hypergraph_to_string h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p hyper %d %d\n" (Hypergraph.n h) (Hypergraph.m h));
  Array.iter
    (fun members ->
      Buffer.add_string buf (Printf.sprintf "h %d" (Array.length members));
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) members;
      Buffer.add_char buf '\n')
    (Hypergraph.edges h);
  Buffer.contents buf

let hypergraph_of_string s =
  let n = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> 'c' then begin
        match tokens line with
        | [ "p"; "hyper"; nn; _m ] -> (
          match int_of_string_opt nn with
          | Some v -> n := v
          | None -> parse_fail lineno "bad node count")
        | "h" :: k :: members -> (
          match int_of_string_opt k with
          | Some k when List.length members = k ->
            let members =
              List.map
                (fun t ->
                  match int_of_string_opt t with
                  | Some v -> v
                  | None -> parse_fail lineno "bad member")
                members
            in
            edges := members :: !edges
          | _ -> parse_fail lineno "bad hyperedge arity")
        | _ -> parse_fail lineno (Printf.sprintf "unrecognised line %S" line)
      end)
    (String.split_on_char '\n' s);
  if !n < 0 then parse_fail 0 "missing 'p hyper' header";
  Hypergraph.create ~n:!n (List.rev !edges)

(* ---- weighted tables ----

   The textual form of a compiled event ({!Lll_prob.Event.table}): the
   satisfying scope tuples with their exact rational weights. One block:

     p wtable <k> <nrows>
     a <arity_1> ... <arity_k>
     w <x_1> ... <x_k> <weight>     (one line per satisfying tuple)

   The block embeds into larger line-oriented formats (the LLL instance
   format feeds its own line stream in via [weighted_table_of_lines]), so
   the parser is callback-driven. *)

type weighted_table = {
  arities : int array;
  rows : (int array * Lll_num.Rat.t) list; (* (scope-order values, weight) *)
}

let weighted_table_to_buffer buf (wt : weighted_table) =
  Buffer.add_string buf
    (Printf.sprintf "p wtable %d %d\n" (Array.length wt.arities) (List.length wt.rows));
  Buffer.add_string buf "a";
  Array.iter (fun a -> Buffer.add_string buf (Printf.sprintf " %d" a)) wt.arities;
  Buffer.add_char buf '\n';
  List.iter
    (fun (xs, w) ->
      Buffer.add_string buf "w";
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %d" x)) xs;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Lll_num.Rat.to_string w);
      Buffer.add_char buf '\n')
    wt.rows

let weighted_table_to_string wt =
  let buf = Buffer.create 256 in
  weighted_table_to_buffer buf wt;
  Buffer.contents buf

(* Parse one block out of a line stream. [next_line] yields the next
   non-empty payload line; [fail] builds the caller's error (with its
   own position bookkeeping). *)
let weighted_table_of_lines ~next_line ~(fail : string -> exn) =
  let die msg = raise (fail msg) in
  let expect_int tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> die (Printf.sprintf "expected integer, got %S" tok)
  in
  let k, nrows =
    match tokens (next_line ()) with
    | [ "p"; "wtable"; k; nrows ] -> (expect_int k, expect_int nrows)
    | _ -> die "expected 'p wtable <k> <nrows>'"
  in
  if k < 0 || nrows < 0 then die "negative wtable dimensions";
  let arities =
    match tokens (next_line ()) with
    | "a" :: toks when List.length toks = k -> Array.of_list (List.map expect_int toks)
    | _ -> die "expected 'a <arities>'"
  in
  Array.iter (fun a -> if a <= 0 then die "arities must be positive") arities;
  let rows =
    List.init nrows (fun _ ->
        match tokens (next_line ()) with
        | "w" :: toks when List.length toks = k + 1 ->
          let xs =
            Array.of_list (List.map expect_int (List.filteri (fun j _ -> j < k) toks))
          in
          Array.iteri
            (fun j x -> if x < 0 || x >= arities.(j) then die "tuple value out of range")
            xs;
          let w =
            try Lll_num.Rat.of_string (List.nth toks k)
            with Parse_error _ as e -> raise e | _ -> die "bad rational weight"
          in
          (* joint probabilities of satisfying tuples are strictly
             positive, so a zero or negative weight is always a
             corrupted row — reject it before any consumer divides by
             or compares against it *)
          if Lll_num.Rat.sign w <= 0 then die "row weight must be positive";
          (xs, w)
        | _ -> die "expected 'w <values> <weight>'")
  in
  { arities; rows }

let weighted_table_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let lineno = ref 0 in
  let next_line () =
    let rec go () =
      match !lines with
      | [] -> parse_fail !lineno "unexpected end of input"
      | l :: rest ->
        incr lineno;
        lines := rest;
        let l = String.trim l in
        if l = "" || l.[0] = 'c' || l.[0] = '#' then go () else l
    in
    go ()
  in
  weighted_table_of_lines ~next_line ~fail:(fun msg ->
      Parse_error { line = !lineno; message = msg })

(* ---- binary container (v3) ----

   The v3 binary format is a sectioned container:

     "LLL3"                            magic (4 bytes)
     i64 LE  format version            (currently 3)
     i64 LE  kind length, kind bytes   ("graph", "instance", ...)
     i64 LE  checksum                  (over the whole payload below)
     payload:
       i64 LE  section count
       per section: i64 tag length, tag bytes, i64 body length, body

   All integers are i64 LE; rationals carry a one-byte tag (0 = both
   parts fit a native int and follow as two i64s; 1 = decimal strings).
   The checksum folds the payload 8 bytes at a time into a 63-bit
   djb2-xor accumulator — cheap enough to never dominate a load, strong
   enough to catch flipped bytes. Readers validate magic, version, kind,
   section bounds and checksum before any section is consumed, so a
   decoder past [open_reader] only ever sees structurally intact data
   (semantic validation, e.g. {!Graph.of_csr}, still reruns on load). *)

module Bin = struct
  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt
  let magic = "LLL3"
  let format_version = 3

  (* ---- byte sources ----

     A reader decodes from a [source]: either an in-heap string (the
     classic read path) or a window into an mmap-ed file
     (Unix.map_file + Bigarray — the blob's bytes stay OS page cache
     shared across every process mapping the same file, instead of a
     per-process copy of the whole container). Windows carry an offset
     and length so nested blobs (the DEPG graph container inside an
     instance container) slice without copying in either
     representation. *)

  type bigstring = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
  type big32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  (* [w32], when present, is a second mapping of the same file with
     int32 elements: the checksum and the wide column decoders assemble
     64-bit words from two 32-bit loads instead of eight byte loads. An
     int32 view rather than int64 because [Int32.to_int] of a bigarray
     load compiles to an unboxed native-int chain — an int64 rolling
     loop would box a value per iteration. The view covers the largest
     whole-u32 prefix of the file; reads near the tail fall back to the
     byte path. *)
  (* [wlim] is the largest file-absolute byte offset at which an 8-byte
     word-view load is safe ([word_at]'s misaligned case peeks one slot
     past the window, hence the 12-byte slack); -1 when there is no
     view. Precomputed so the per-read guard is one compare, not a
     bigarray-dim load. *)
  type source =
    | Str of { s : string; off : int; len : int }
    | Map of { buf : bigstring; w32 : big32 option; wlim : int; off : int; len : int }

  let source_of_string s = Str { s; off = 0; len = String.length s }

  let source_of_map buf =
    Map { buf; w32 = None; wlim = -1; off = 0; len = Bigarray.Array1.dim buf }

  let src_length = function Str { len; _ } | Map { len; _ } -> len

  (* all accessors are offset-relative to the window; the reader
     bounds-checks against its section limit before every call *)
  let src_byte src i =
    match src with
    | Str { s; off; _ } -> Char.code (String.unsafe_get s (off + i))
    | Map { buf; off; _ } -> Char.code (Bigarray.Array1.unsafe_get buf (off + i))

  let src_char src i = Char.chr (src_byte src i)

  (* the Map decoders assemble words from unsafe byte loads in native
     int arithmetic — no boxed Int32/Int64 on the per-word hot path of
     the checksum and the column decoders *)
  let map_u16 buf i =
    Char.code (Bigarray.Array1.unsafe_get buf i)
    lor (Char.code (Bigarray.Array1.unsafe_get buf (i + 1)) lsl 8)

  let map_u32 buf i = map_u16 buf i lor (map_u16 buf (i + 2) lsl 16)

  let map_i64 buf i = map_u32 buf i lor (map_u32 buf (i + 4) lsl 32)

  (* unboxed u32 out of the int32 view: load, sign-extend to native,
     mask back to 32 bits — no Int32/Int64 allocation anywhere *)
  let u32_of (w : big32) j = Int32.to_int (Bigarray.Array1.unsafe_get w j) land 0xFFFF_FFFF

  (* Unaligned little-endian u32 load at byte offset [b]; the caller
     guarantees the underlying u32 slots exist ([w32_ok]). *)
  let u32_at w b =
    let j = b lsr 2 in
    let a = (b land 3) lsl 3 in
    if a = 0 then u32_of w j
    else (u32_of w j lsr a) lor (u32_of w (j + 1) lsl (32 - a) land 0xFFFF_FFFF)

  (* Little-endian 64-bit word at byte offset [b], truncated to native
     int exactly like [Int64.to_int] (the top bit shifts off the 63-bit
     integer just as to_int drops it). *)
  let word_at w b =
    let j = b lsr 2 in
    let a = (b land 3) lsl 3 in
    if a = 0 then u32_of w j lor (u32_of w (j + 1) lsl 32)
    else
      let na = 32 - a in
      let c0 = u32_of w j in
      let c1 = u32_of w (j + 1) in
      let c2 = u32_of w (j + 2) in
      let lo = (c0 lsr a) lor (c1 lsl na land 0xFFFF_FFFF) in
      let hi = (c1 lsr a) lor (c2 lsl na land 0xFFFF_FFFF) in
      lo lor (hi lsl 32)

  let src_u16 src i =
    match src with
    | Str { s; off; _ } -> String.get_uint16_le s (off + i)
    | Map { buf; off; _ } -> map_u16 buf (off + i)

  (* sign-extend bit 31 in 63-bit native arithmetic; [lsl]/[asr] are
     right-associative in OCaml, so the shifts need explicit parens *)
  let sext32 v = (v lsl 31) asr 31

  let src_i32 src i =
    match src with
    | Str { s; off; _ } -> Int32.to_int (String.get_int32_le s (off + i))
    | Map { buf = _; w32 = Some w; wlim; off; _ } when off + i <= wlim ->
      sext32 (u32_at w (off + i))
    | Map { buf; off; _ } -> sext32 (map_u32 buf (off + i))

  let src_i64 src i =
    match src with
    | Str { s; off; _ } -> Int64.to_int (String.get_int64_le s (off + i))
    | Map { buf = _; w32 = Some w; wlim; off; _ } when off + i <= wlim ->
      word_at w (off + i)
    | Map { buf; off; _ } ->
      (* low and high 32-bit halves; the [lsl 32] wraps exactly like
         [Int64.to_int]'s 63-bit truncation *)
      map_i64 buf (off + i)

  let src_sub src pos len =
    match src with
    | Str { s; off; _ } -> Str { s; off = off + pos; len }
    | Map { buf; w32; wlim; off; _ } -> Map { buf; w32; wlim; off = off + pos; len }

  let src_string src pos len =
    match src with
    | Str { s; off; _ } -> String.sub s (off + pos) len
    | Map { buf; w32; wlim; off; _ } ->
      (* manual loop rather than [String.init]: no closure call per byte;
         copy in u32 chunks while the view covers the span, byte tail
         after *)
      let b = Bytes.create len in
      let base = off + pos in
      let i0 =
        match w32 with
        | Some w when len >= 4 && base <= wlim ->
          let nw = min (len lsr 2) (((wlim - base) lsr 2) + 1) in
          for k = 0 to nw - 1 do
            let d = k lsl 2 in
            Bytes.set_int32_le b d (Int32.of_int (u32_at w (base + d)))
          done;
          nw lsl 2
        | _ -> 0
      in
      for i = i0 to len - 1 do
        Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get buf (base + i))
      done;
      Bytes.unsafe_to_string b

  let map_file path : bigstring =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))

  (* Map the file twice — byte elements for the tail/odd accessors and
     int64 elements over the whole-word prefix for the bulk loops. Both
     mappings share the same page-cache pages. *)
  let source_of_path path =
    let buf = map_file path in
    let len = Bigarray.Array1.dim buf in
    let slots = len / 4 in
    (* The u32 view is the same mapping reinterpreted, not a second
       [map_file]: a second mapping would be charged as another
       file-sized block of custom out-of-heap memory and measurably
       accelerate major GC during instance construction. The reinterpret
       is safe for [unsafe_get], which compiles the element size from
       the static type and never consults the header — but the header's
       [dim] still counts BYTES, so every bounds guard on this view must
       derive the slot count from [wlim], never from [Array1.dim]. *)
    let w32 : big32 option = if slots = 0 then None else Some (Obj.magic buf : big32) in
    Map { buf; w32; wlim = (slots lsl 2) - 12; off = 0; len }

  let mix h w = ((h lsl 5) + h) lxor w

  let checksum_tail src pos len h0 =
    let h = ref h0 in
    for i = pos to pos + len - 1 do
      h := mix !h (src_byte src i)
    done;
    !h

  let checksum_src src pos len =
    let words = len / 8 in
    let h = ref 0x1505 in
    (match src with
    | Str { s; off; _ } ->
      let base = off + pos in
      for i = 0 to words - 1 do
        h := mix !h (Int64.to_int (String.get_int64_le s (base + (8 * i))))
      done
    | Map { buf; w32; wlim; off; _ } ->
      let base = off + pos in
      (* as many whole 64-bit words as the u32 view can serve (the run
         may stop short when the region ends inside the file's ragged
         tail); the rest byte-assembles below so the mixing schedule —
         and hence the hash — matches the Str path exactly. Slot count
         comes from [wlim]: the view may be a reinterpreted byte
         mapping whose [dim] counts bytes. *)
      let fast =
        match w32 with
        | None -> 0
        | Some _ ->
          let slots = (wlim + 12) lsr 2 in
          let j0 = base lsr 2 in
          let avail = slots - j0 - (if base land 3 = 0 then 0 else 1) in
          max 0 (min words (avail / 2))
      in
      (match w32 with
      | Some w when fast > 0 ->
        let j0 = base lsr 2 in
        if base land 3 = 0 then
          for k = 0 to fast - 1 do
            let j = j0 + (2 * k) in
            h := mix !h (u32_of w j lor (u32_of w (j + 1) lsl 32))
          done
        else begin
          (* misaligned: roll a window of adjacent u32 slots so each
             iteration costs two loads — all native-int arithmetic *)
          let a = (base land 3) lsl 3 in
          let na = 32 - a in
          let prev = ref (u32_of w j0) in
          for k = 0 to fast - 1 do
            let j = j0 + (2 * k) in
            let c1 = u32_of w (j + 1) in
            let c2 = u32_of w (j + 2) in
            let lo = (!prev lsr a) lor (c1 lsl na land 0xFFFF_FFFF) in
            let hi = (c1 lsr a) lor (c2 lsl na land 0xFFFF_FFFF) in
            h := mix !h (lo lor (hi lsl 32));
            prev := c2
          done
        end
      | _ -> ());
      for i = fast to words - 1 do
        h := mix !h (map_i64 buf (base + (8 * i)))
      done);
    checksum_tail src (pos + (8 * words)) (len - (8 * words)) !h land max_int

  let checksum data pos len = checksum_src (source_of_string data) pos len

  (* -- writer -- *)

  type writer = {
    w_kind : string;
    mutable w_done : (string * Buffer.t) list; (* finished sections, reversed *)
    mutable w_cur : (string * Buffer.t) option;
  }

  let make_writer ~kind = { w_kind = kind; w_done = []; w_cur = None }

  let flush_cur w =
    match w.w_cur with
    | None -> ()
    | Some sec ->
      w.w_done <- sec :: w.w_done;
      w.w_cur <- None

  let section w tag =
    flush_cur w;
    w.w_cur <- Some (tag, Buffer.create 256)

  let cur w =
    match w.w_cur with
    | Some (_, b) -> b
    | None -> invalid_arg "Serialize.Bin: add outside a section"

  let buf_i64 b i = Buffer.add_int64_le b (Int64.of_int i)
  let add_int w i = buf_i64 (cur w) i

  (* Arrays pack to the narrowest of four widths (u8/u16/i32/i64, one
     tag byte) — column payloads are mostly small non-negative ints, and
     the narrower rows halve both the container and the decode's memory
     traffic. *)
  let add_int_array w a =
    let b = cur w in
    buf_i64 b (Array.length a);
    let lo = ref 0 and hi = ref 0 in
    Array.iter
      (fun i ->
        if i < !lo then lo := i;
        if i > !hi then hi := i)
      a;
    if !lo >= 0 && !hi < 0x100 then begin
      Buffer.add_char b '\001';
      Array.iter (fun i -> Buffer.add_char b (Char.unsafe_chr i)) a
    end
    else if !lo >= 0 && !hi < 0x1_0000 then begin
      Buffer.add_char b '\002';
      Array.iter (fun i -> Buffer.add_uint16_le b i) a
    end
    else if !lo >= -0x8000_0000 && !hi < 0x8000_0000 then begin
      Buffer.add_char b '\004';
      Array.iter (fun i -> Buffer.add_int32_le b (Int32.of_int i)) a
    end
    else begin
      Buffer.add_char b '\008';
      Array.iter (fun i -> buf_i64 b i) a
    end

  let add_string w s =
    let b = cur w in
    buf_i64 b (String.length s);
    Buffer.add_string b s

  let add_rat w q =
    let b = cur w in
    let open Lll_num in
    match (Bigint.to_int_opt (Rat.num q), Bigint.to_int_opt (Rat.den q)) with
    | Some n, Some d ->
      Buffer.add_char b '\000';
      buf_i64 b n;
      buf_i64 b d
    | _ ->
      Buffer.add_char b '\001';
      let ns = Bigint.to_string (Rat.num q) and ds = Bigint.to_string (Rat.den q) in
      buf_i64 b (String.length ns);
      Buffer.add_string b ns;
      buf_i64 b (String.length ds);
      Buffer.add_string b ds

  (* Run-length encoding: (count, value) pairs until the declared total
     is reached. Probability and weight columns repeat a handful of
     values, so most arrays collapse to one or two runs. *)
  let add_rat_array w qs =
    let n = Array.length qs in
    add_int w n;
    let i = ref 0 in
    while !i < n do
      let j = ref (!i + 1) in
      while !j < n && Lll_num.Rat.equal qs.(!j) qs.(!i) do
        incr j
      done;
      add_int w (!j - !i);
      add_rat w qs.(!i);
      i := !j
    done

  let contents w =
    flush_cur w;
    let sections = List.rev w.w_done in
    let p = Buffer.create 4096 in
    buf_i64 p (List.length sections);
    List.iter
      (fun (tag, body) ->
        buf_i64 p (String.length tag);
        Buffer.add_string p tag;
        buf_i64 p (Buffer.length body);
        Buffer.add_buffer p body)
      sections;
    let payload = Buffer.contents p in
    let h = Buffer.create (String.length payload + 64) in
    Buffer.add_string h magic;
    buf_i64 h format_version;
    buf_i64 h (String.length w.w_kind);
    Buffer.add_string h w.w_kind;
    buf_i64 h (checksum payload 0 (String.length payload));
    Buffer.add_string h payload;
    Buffer.contents h

  (* -- reader -- *)

  type reader = {
    r_data : source;
    mutable r_pos : int; (* cursor within the current section *)
    mutable r_limit : int; (* end of the current section *)
    mutable r_cur_tag : string;
    mutable r_next : (string * int * int) list; (* (tag, start, length) *)
    mutable r_rat : (int * int * Lll_num.Rat.t) option; (* last small rational *)
  }

  let kind_of_string data =
    let len = String.length data in
    if len < 4 || String.sub data 0 4 <> magic then None
    else begin
      let pos = 4 in
      if pos + 16 > len then None
      else begin
        let klen = Int64.to_int (String.get_int64_le data (pos + 8)) in
        if klen < 0 || pos + 16 + klen > len then None
        else Some (String.sub data (pos + 16) klen)
      end
    end

  let open_reader_src ~kind src =
    let len = src_length src in
    if len < 4 || src_string src 0 4 <> magic then corrupt "bad magic";
    let pos = ref 4 in
    let rd_i64 what =
      if !pos + 8 > len then corrupt "truncated header (%s)" what;
      let v = src_i64 src !pos in
      pos := !pos + 8;
      v
    in
    let version = rd_i64 "version" in
    if version <> format_version then
      corrupt "unsupported version %d (expected %d)" version format_version;
    let klen = rd_i64 "kind" in
    if klen < 0 || !pos + klen > len then corrupt "truncated header (kind)";
    let k = src_string src !pos klen in
    pos := !pos + klen;
    if k <> kind then corrupt "kind mismatch: expected %s, got %s" kind k;
    let stored = rd_i64 "checksum" in
    let payload_pos = !pos in
    (* walk the section table first so truncation reports as such; the
       checksum then vouches for the body bytes *)
    let count = rd_i64 "section count" in
    if count < 0 then corrupt "negative section count";
    let sections = ref [] in
    for _ = 1 to count do
      let tlen = rd_i64 "section tag" in
      if tlen < 0 || !pos + tlen > len then corrupt "truncated section table";
      let tag = src_string src !pos tlen in
      pos := !pos + tlen;
      let blen = rd_i64 "section length" in
      if blen < 0 || !pos + blen > len then corrupt "truncated section %s" tag;
      sections := (tag, !pos, blen) :: !sections;
      pos := !pos + blen
    done;
    if !pos <> len then corrupt "trailing bytes after last section";
    if checksum_src src payload_pos (len - payload_pos) <> stored then
      corrupt "checksum mismatch";
    {
      r_data = src;
      r_pos = 0;
      r_limit = 0;
      r_cur_tag = "<none>";
      r_next = List.rev !sections;
      r_rat = None;
    }

  let open_reader ~kind data = open_reader_src ~kind (source_of_string data)

  (* Map the container at [path] and open a reader over the mapping:
     the checksum pass touches each page once, but the bytes stay in the
     OS page cache — no per-process copy of the whole file, and repeat
     loads of a warm file skip the read(2) traffic entirely. *)
  let load_mmap ~kind path = open_reader_src ~kind (source_of_path path)

  (* A cheap identity for a container file without decoding (or even
     reading) its payload: kind, stored checksum, and byte length pulled
     from the fixed-layout header. [None] when the file is not a v3
     container. *)
  let fingerprint_file path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let head_len = min len 4096 in
          match really_input_string ic head_len with
          | exception End_of_file -> None
          | head ->
            if head_len < 4 + 16 || String.sub head 0 4 <> magic then None
            else begin
              let version = Int64.to_int (String.get_int64_le head 4) in
              let klen = Int64.to_int (String.get_int64_le head 12) in
              if version <> format_version || klen < 0 || 20 + klen + 8 > head_len then None
              else begin
                let kind = String.sub head 20 klen in
                let stored = Int64.to_int (String.get_int64_le head (20 + klen)) in
                Some (Printf.sprintf "%s:v%d:%x:%d" kind version stored len)
              end
            end)

  let enter r tag =
    if r.r_pos <> r.r_limit then
      corrupt "section %s: %d unread bytes" r.r_cur_tag (r.r_limit - r.r_pos);
    match r.r_next with
    | [] -> corrupt "missing section %s" tag
    | (t, start, blen) :: rest ->
      if t <> tag then corrupt "expected section %s, found %s" tag t;
      r.r_next <- rest;
      r.r_pos <- start;
      r.r_limit <- start + blen;
      r.r_cur_tag <- t

  let read_int r =
    if r.r_pos + 8 > r.r_limit then corrupt "section %s: truncated value" r.r_cur_tag;
    let v = src_i64 r.r_data r.r_pos in
    r.r_pos <- r.r_pos + 8;
    v

  let read_int_array r =
    let n = read_int r in
    if n < 0 || r.r_pos >= r.r_limit then
      corrupt "section %s: truncated array" r.r_cur_tag;
    let width = src_byte r.r_data r.r_pos in
    r.r_pos <- r.r_pos + 1;
    (match width with
    | 1 | 2 | 4 | 8 -> ()
    | _ -> corrupt "section %s: bad array width %d" r.r_cur_tag width);
    if n > (r.r_limit - r.r_pos) / width then
      corrupt "section %s: truncated array" r.r_cur_tag;
    let base = r.r_pos in
    let data = r.r_data in
    (* hoist the representation dispatch out of the per-element closure;
       wide columns on a mapped file decode with one or two word loads
       per element instead of four or eight byte loads *)
    (* elements whose u32-view loads stay inside the file's whole-slot
       prefix; the handful at the ragged tail (if any) take the byte
       path. [word_at]'s misaligned case peeks one slot past the 8-byte
       window, hence the 12-byte slack already folded into [wlim]. *)
    let n_fast wlim b0 stride need =
      let limit = wlim + 12 - need - b0 in
      if limit < 0 then 0 else min n ((limit / stride) + 1)
    in
    let a =
      match (width, data) with
      | 1, _ -> Array.init n (fun i -> src_byte data (base + i))
      | 2, _ -> Array.init n (fun i -> src_u16 data (base + (2 * i)))
      | 4, Map { buf = _; w32 = Some w; wlim; off; _ } ->
        (* stride 4 walks consecutive u32 slots: one load per element
           when aligned, a rolled two-slot window (still one fresh load
           per element) when not *)
        let b0 = off + base in
        let nf = n_fast wlim b0 4 (if b0 land 3 = 0 then 4 else 8) in
        let arr = Array.make (max n 1) 0 in
        (if b0 land 3 = 0 then begin
           let j0 = b0 lsr 2 in
           for i = 0 to nf - 1 do
             Array.unsafe_set arr i (sext32 (u32_of w (j0 + i)))
           done
         end
         else if nf > 0 then begin
           let a = (b0 land 3) lsl 3 in
           let na = 32 - a in
           let j0 = b0 lsr 2 in
           let prev = ref (u32_of w j0) in
           for i = 0 to nf - 1 do
             let c1 = u32_of w (j0 + i + 1) in
             Array.unsafe_set arr i (sext32 ((!prev lsr a) lor (c1 lsl na land 0xFFFF_FFFF)));
             prev := c1
           done
         end);
        for i = nf to n - 1 do
          arr.(i) <- src_i32 data (base + (4 * i))
        done;
        if n = 0 then [||] else arr
      | 4, _ -> Array.init n (fun i -> src_i32 data (base + (4 * i)))
      | _, Map { buf = _; w32 = Some w; wlim; off; _ } ->
        let b0 = off + base in
        let nf = n_fast wlim b0 8 12 in
        Array.init n (fun i ->
            if i < nf then word_at w (b0 + (8 * i)) else src_i64 data (base + (8 * i)))
      | _, _ -> Array.init n (fun i -> src_i64 data (base + (8 * i)))
    in
    r.r_pos <- base + (n * width);
    a

  let read_string r =
    let n = read_int r in
    if n < 0 || r.r_pos + n > r.r_limit then corrupt "section %s: truncated string" r.r_cur_tag;
    let s = src_string r.r_data r.r_pos n in
    r.r_pos <- r.r_pos + n;
    s

  (* Like {!read_string} but yields a window into the reader's backing
     bytes instead of copying them out — the zero-copy path for nested
     containers (an instance's DEPG section holds a whole graph
     container). *)
  let read_blob r =
    let n = read_int r in
    if n < 0 || r.r_pos + n > r.r_limit then corrupt "section %s: truncated blob" r.r_cur_tag;
    let s = src_sub r.r_data r.r_pos n in
    r.r_pos <- r.r_pos + n;
    s

  let read_rat r =
    if r.r_pos >= r.r_limit then corrupt "section %s: truncated rational" r.r_cur_tag;
    let tag = src_char r.r_data r.r_pos in
    r.r_pos <- r.r_pos + 1;
    let open Lll_num in
    match tag with
    | '\000' -> (
      let n = read_int r in
      let d = read_int r in
      if d = 0 then corrupt "zero rational denominator";
      (* bulk payloads repeat a handful of values (uniform probs, equal
         table weights): reuse the previous rational when it recurs *)
      match r.r_rat with
      | Some (n', d', q) when n = n' && d = d' -> q
      | _ ->
        let q = Rat.of_ints n d in
        r.r_rat <- Some (n, d, q);
        q)
    | '\001' -> (
      let ns = read_string r in
      let ds = read_string r in
      try Rat.make (Bigint.of_string ns) (Bigint.of_string ds)
      with Invalid_argument _ -> corrupt "bad rational")
    | c -> corrupt "bad rational tag %d" (Char.code c)

  let read_rat_array r =
    let n = read_int r in
    if n < 0 then corrupt "section %s: negative rational count" r.r_cur_tag;
    let a = Array.make n Lll_num.Rat.one in
    let filled = ref 0 in
    (* Probability columns are long sequences of fixed-size 25-byte
       small-rational run records (run i64, tag '\000', num i64, den
       i64). Decode those with the representation dispatch hoisted out
       of the loop — the same treatment wide columns get in
       [read_int_array] — and fall back to the generic reader for
       big-integer entries, truncated tails and foreign tags, which all
       raise the same [Corrupt] they always did. *)
    let store run nv dv =
      if run <= 0 || run > n - !filled then
        corrupt "section %s: bad rational run" r.r_cur_tag;
      if dv = 0 then corrupt "zero rational denominator";
      let q =
        match r.r_rat with
        | Some (n', d', q) when nv = n' && dv = d' -> q
        | _ ->
          let q = Lll_num.Rat.of_ints nv dv in
          r.r_rat <- Some (nv, dv, q);
          q
      in
      Array.fill a !filled run q;
      filled := !filled + run
    in
    let generic () =
      let run = read_int r in
      if run <= 0 || run > n - !filled then
        corrupt "section %s: bad rational run" r.r_cur_tag;
      let q = read_rat r in
      Array.fill a !filled run q;
      filled := !filled + run
    in
    (match r.r_data with
    | Str { s; off; _ } ->
      while !filled < n do
        let p = off + r.r_pos in
        if r.r_pos + 25 <= r.r_limit && String.unsafe_get s (p + 8) = '\000' then begin
          let run = Int64.to_int (String.get_int64_le s p) in
          let nv = Int64.to_int (String.get_int64_le s (p + 9)) in
          let dv = Int64.to_int (String.get_int64_le s (p + 17)) in
          r.r_pos <- r.r_pos + 25;
          store run nv dv
        end
        else generic ()
      done
    | Map { buf; w32 = Some w; wlim; off; _ } ->
      while !filled < n do
        let p = off + r.r_pos in
        (* p + 17 <= wlim keeps every [word_at] of the record inside the
           u32 view (the 12-byte misaligned-peek slack is folded into
           wlim); the tag byte sits below r_limit so the plain byte load
           is in range *)
        if
          r.r_pos + 25 <= r.r_limit
          && p + 17 <= wlim
          && Bigarray.Array1.unsafe_get buf (p + 8) = '\000'
        then begin
          let run = word_at w p in
          let nv = word_at w (p + 9) in
          let dv = word_at w (p + 17) in
          r.r_pos <- r.r_pos + 25;
          store run nv dv
        end
        else generic ()
      done
    | Map _ ->
      while !filled < n do
        generic ()
      done);
    a

  let close r =
    if r.r_pos <> r.r_limit then
      corrupt "section %s: %d unread bytes" r.r_cur_tag (r.r_limit - r.r_pos);
    match r.r_next with
    | [] -> ()
    | (tag, _, _) :: _ -> corrupt "unconsumed section %s" tag
end

(* ---- binary graph codec ---- *)

let graph_bin_kind = "graph"

let graph_to_binary g =
  let { Graph.csr_n; csr_edges; csr_offsets; csr_neighbors; csr_edge_ids } = Graph.csr g in
  let w = Bin.make_writer ~kind:graph_bin_kind in
  Bin.section w "GRPH";
  Bin.add_int w csr_n;
  Bin.section w "EDGE";
  let m = Array.length csr_edges in
  let flat =
    Array.init (2 * m) (fun i ->
        let u, v = csr_edges.(i / 2) in
        if i land 1 = 0 then u else v)
  in
  Bin.add_int_array w flat;
  Bin.section w "COFF";
  Bin.add_int_array w csr_offsets;
  Bin.section w "CNBR";
  Bin.add_int_array w csr_neighbors;
  Bin.section w "CEID";
  Bin.add_int_array w csr_edge_ids;
  Bin.contents w

let graph_of_binary_src src =
  let r = Bin.open_reader_src ~kind:graph_bin_kind src in
  Bin.enter r "GRPH";
  let n = Bin.read_int r in
  Bin.enter r "EDGE";
  let flat = Bin.read_int_array r in
  if Array.length flat land 1 <> 0 then raise (Bin.Corrupt "odd edge endpoint array");
  let m = Array.length flat / 2 in
  let edges = Array.init m (fun e -> (flat.(2 * e), flat.((2 * e) + 1))) in
  Bin.enter r "COFF";
  let off = Bin.read_int_array r in
  Bin.enter r "CNBR";
  let nbr = Bin.read_int_array r in
  Bin.enter r "CEID";
  let eid = Bin.read_int_array r in
  Bin.close r;
  try
    Graph.of_csr
      {
        Graph.csr_n = n;
        csr_edges = edges;
        csr_offsets = off;
        csr_neighbors = nbr;
        csr_edge_ids = eid;
      }
  with Invalid_argument msg -> raise (Bin.Corrupt msg)

let graph_of_binary s = graph_of_binary_src (Bin.source_of_string s)

let load_graph_mmap path =
  graph_of_binary_src (Bin.source_of_path path)

let save_graph_binary path g =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (graph_to_binary g))

let load_graph_binary path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> graph_of_binary (In_channel.input_all ic))

let save_hypergraph path h =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (hypergraph_to_string h))

let load_hypergraph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> hypergraph_of_string (In_channel.input_all ic))
