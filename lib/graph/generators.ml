(* Deterministic and seeded-random graph/hypergraph generators used by the
   test suite, the examples and the benchmark harness. *)

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.create ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Generators.path: need n >= 1";
  Graph.create ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let es = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      es := (i, j) :: !es
    done
  done;
  Graph.create ~n !es

let star n =
  if n < 1 then invalid_arg "Generators.star: need n >= 1";
  Graph.create ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Generators.grid: need positive dims";
  let id x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then es := (id x y, id (x + 1) y) :: !es;
      if y + 1 < h then es := (id x y, id x (y + 1)) :: !es
    done
  done;
  Graph.create ~n:(w * h) !es

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Generators.torus: need dims >= 3";
  let id x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      es := (id x y, id ((x + 1) mod w) y) :: !es;
      es := (id x y, id x ((y + 1) mod h)) :: !es
    done
  done;
  Graph.create ~n:(w * h) !es

let hypercube dims =
  if dims < 1 || dims > 20 then invalid_arg "Generators.hypercube: dims in [1,20]";
  let n = 1 lsl dims in
  let es = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to dims - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then es := (v, u) :: !es
    done
  done;
  Graph.create ~n !es

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Generators.complete_bipartite: need positive sides";
  let es = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      es := (i, a + j) :: !es
    done
  done;
  Graph.create ~n:(a + b) !es

(* Uniform random labelled tree via a Prüfer sequence. *)
let random_tree ~seed n =
  if n < 1 then invalid_arg "Generators.random_tree: need n >= 1";
  if n = 1 then Graph.create ~n []
  else if n = 2 then Graph.create ~n [ (0, 1) ]
  else begin
    let rng = Random.State.make [| seed |] in
    let prufer = Array.init (n - 2) (fun _ -> Random.State.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) prufer;
    let es = ref [] in
    let deg = deg in
    Array.iter
      (fun v ->
        (* smallest leaf *)
        let leaf = ref 0 in
        while deg.(!leaf) <> 1 do
          incr leaf
        done;
        es := (!leaf, v) :: !es;
        deg.(!leaf) <- 0;
        deg.(v) <- deg.(v) - 1)
      prufer;
    (* the two remaining degree-1 nodes *)
    let rest = ref [] in
    Array.iteri (fun v d -> if d = 1 then rest := v :: !rest) deg;
    (match !rest with
    | [ u; v ] -> es := (u, v) :: !es
    | _ -> assert false);
    Graph.create ~n !es
  end

(* Fisher-Yates shuffle of an array, in place. *)
let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* Random d-regular graph via the configuration model: create [d] stubs per
   node, pair them randomly, retry on self-loops/multi-edges. Requires
   [n * d] even and [d < n]. *)
let random_regular ~seed n d =
  if d < 1 || d >= n then invalid_arg "Generators.random_regular: need 1 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Generators.random_regular: n*d must be even";
  let rng = Random.State.make [| seed |] in
  let attempts = ref 0 in
  let rec attempt () =
    incr attempts;
    if !attempts > 2000 then failwith "Generators.random_regular: too many retries";
    let stubs = Array.init (n * d) (fun i -> i / d) in
    shuffle rng stubs;
    let seen = Hashtbl.create (n * d) in
    let ok = ref true in
    let es = ref [] in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        es := (u, v) :: !es;
        i := !i + 2
      end
    done;
    if !ok then Graph.create ~n !es else attempt ()
  in
  attempt ()

(* Girth-controlled d-regular sampler: start from a configuration-model
   regular graph and repair short cycles by degree-preserving 2-swaps.
   An edge (u, v) lies on a cycle shorter than [girth] iff u and v are
   still within distance [girth - 2] once the edge itself is removed; a
   bounded BFS finds such edges and a random rewiring
   (u,v),(x,y) -> (u,x),(v,y) destroys the short cycle while keeping
   every degree intact. Random d-regular graphs have only O(1) expected
   cycles below any fixed length, so the repair loop converges after a
   handful of swaps. The lower-bound constructions of the sinkless
   orientation papers live on exactly these high-girth regular graphs. *)
type girth_stats = {
  mutable gs_attempts : int;
  mutable gs_swaps : int;
  mutable gs_reverts : int;
  mutable gs_rejects : int;
}

let fresh_girth_stats () = { gs_attempts = 0; gs_swaps = 0; gs_reverts = 0; gs_rejects = 0 }

(* Counter updates must never touch the rng streams: the attempt-0 seed
   derivation below is pinned by store artifact keys. *)
let random_regular_girth ?(stats = fresh_girth_stats ()) ~seed ~girth n d =
  if girth < 3 then invalid_arg "Generators.random_regular_girth: need girth >= 3";
  if d < 1 || d >= n then invalid_arg "Generators.random_regular_girth: need 1 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Generators.random_regular_girth: n*d must be even";
  (* Moore bound: a d-regular graph of girth g needs at least this many
     nodes; reject structurally impossible requests up front instead of
     burning the swap budget. *)
  if d >= 3 then begin
    let r = (girth - 1) / 2 in
    let tree = ref 1 and layer = ref d in
    for _ = 1 to r do
      tree := !tree + !layer;
      layer := !layer * (d - 1)
    done;
    let moore = if girth mod 2 = 1 then !tree else 2 * (!tree - (!layer / (d - 1))) in
    if n < moore then
      invalid_arg
        (Printf.sprintf
           "Generators.random_regular_girth: girth %d on %d-regular graphs needs n >= %d \
            (Moore bound), got %d"
           girth d moore n)
  end
  else if girth > n then
    invalid_arg "Generators.random_regular_girth: girth > n is impossible for d <= 2";
  (* One repair attempt from a fresh configuration-model start; [None]
     when the swap budget runs out (rare, only near the Moore bound).
     Attempt 0 keeps the canonical seed derivation so recorded corpora
     (scenario baselines) reproduce bit-for-bit across runs. *)
  let attempt k =
  stats.gs_attempts <- stats.gs_attempts + 1;
  let g0 = random_regular ~seed:(if k = 0 then seed else seed + (k * 0x9e3779)) n d in
  let rng =
    if k = 0 then Random.State.make [| seed; girth; d; 0x5157 |]
    else Random.State.make [| seed; girth; d; k; 0x5157 |]
  in
  let m = Graph.m g0 in
  let edges = Array.copy (Graph.edges g0) in
  let adj = Array.make n [] in
  let edge_set = Hashtbl.create (2 * m) in
  let key u v = (min u v, max u v) in
  let add_edge u v =
    Hashtbl.replace edge_set (key u v) ();
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  in
  let remove_edge u v =
    Hashtbl.remove edge_set (key u v);
    adj.(u) <- List.filter (fun w -> w <> v) adj.(u);
    adj.(v) <- List.filter (fun w -> w <> u) adj.(v)
  in
  let mem_edge u v = Hashtbl.mem edge_set (key u v) in
  Array.iter (fun (u, v) -> add_edge u v) edges;
  (* bounded BFS from u avoiding the edge (u, v): does v sit within
     distance [girth - 2]? Timestamped visit marks avoid O(n) clears. *)
  let stamp = Array.make n 0 in
  let generation = ref 0 in
  let frontier = Queue.create () in
  let on_short_cycle u v =
    let limit = girth - 2 in
    incr generation;
    let gen = !generation in
    Queue.clear frontier;
    Queue.add (u, 0) frontier;
    stamp.(u) <- gen;
    let found = ref false in
    (try
       while not (Queue.is_empty frontier) do
         let w, dw = Queue.pop frontier in
         if dw < limit then
           List.iter
             (fun x ->
               if not ((w = u && x = v) || (w = v && x = u)) then
                 if x = v then begin
                   found := true;
                   raise Exit
                 end
                 else if stamp.(x) <> gen then begin
                   stamp.(x) <- gen;
                   Queue.add (x, dw + 1) frontier
                 end)
             adj.(w)
       done
     with Exit -> ());
    !found
  in
  let find_offender () =
    let start = Random.State.int rng m in
    let rec scan i =
      if i >= m then None
      else
        let e = (start + i) mod m in
        let u, v = edges.(e) in
        if on_short_cycle u v then Some e else scan (i + 1)
    in
    scan 0
  in
  let try_swap ei =
    let ej = Random.State.int rng m in
    if ej = ei then begin
      stats.gs_rejects <- stats.gs_rejects + 1;
      false
    end
    else begin
      let u, v = edges.(ei) in
      let x, y = if Random.State.bool rng then edges.(ej) else (snd edges.(ej), fst edges.(ej)) in
      if u = x || u = y || v = x || v = y || mem_edge u x || mem_edge v y then begin
        stats.gs_rejects <- stats.gs_rejects + 1;
        false
      end
      else begin
        remove_edge u v;
        remove_edge x y;
        add_edge u x;
        add_edge v y;
        (* informed acceptance: revert a swap whose replacement edges
           land on short cycles themselves (otherwise the walk thrashes
           near the Moore bound, e.g. 4-regular girth 5 at n = 24); a
           1-in-8 blind acceptance keeps it from stalling in a local
           minimum where no single swap is clean *)
        let blind = Random.State.int rng 8 = 0 in
        if (not blind) && (on_short_cycle u x || on_short_cycle v y) then begin
          remove_edge u x;
          remove_edge v y;
          add_edge u v;
          add_edge x y;
          stats.gs_reverts <- stats.gs_reverts + 1;
          false
        end
        else begin
          edges.(ei) <- key u x;
          edges.(ej) <- key v y;
          stats.gs_swaps <- stats.gs_swaps + 1;
          true
        end
      end
    end
  in
  let budget = ref (200 * m + 20_000) in
  let rec repair () =
    match find_offender () with
    | None -> Some (Graph.create ~n (Array.to_list edges))
    | Some ei ->
      decr budget;
      if !budget <= 0 then None
      else begin
        ignore (try_swap ei : bool);
        repair ()
      end
  in
  repair ()
  in
  let max_attempts = 8 in
  let rec go k =
    if k >= max_attempts then
      failwith "Generators.random_regular_girth: swap budget exhausted (girth too ambitious)"
    else match attempt k with Some g -> g | None -> go (k + 1)
  in
  go 0

(* Erdős–Rényi G(n, m') with exactly [m'] distinct edges. *)
let gnm ~seed n m' =
  let max_m = n * (n - 1) / 2 in
  if m' < 0 || m' > max_m then invalid_arg "Generators.gnm: bad edge count";
  let rng = Random.State.make [| seed |] in
  let seen = Hashtbl.create (2 * m') in
  let es = ref [] in
  while Hashtbl.length seen < m' do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        es := key :: !es
      end
    end
  done;
  Graph.create ~n !es

(* Random graph with maximum degree at most [dmax]: sample candidate edges,
   keep those not violating the cap. *)
let random_bounded_degree ~seed n dmax target_m =
  let rng = Random.State.make [| seed |] in
  let deg = Array.make n 0 in
  let seen = Hashtbl.create (2 * target_m) in
  let es = ref [] in
  let budget = ref (40 * target_m) in
  let count = ref 0 in
  while !count < target_m && !budget > 0 do
    decr budget;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && deg.(u) < dmax && deg.(v) < dmax then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        es := key :: !es;
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        incr count
      end
    end
  done;
  Graph.create ~n !es

(* Random bipartite structure for weak splitting: [nv] "constraint" nodes V
   and [nu] "variable" nodes U; every u in U gets [deg_u] distinct
   neighbors in V, and we retry so every v in V ends with degree at least
   [min_deg_v]. Returns the adjacency from U to V. *)
let random_bipartite ~seed ~nv ~nu ~deg_u ~min_deg_v =
  if deg_u > nv then invalid_arg "Generators.random_bipartite: deg_u > nv";
  let rng = Random.State.make [| seed |] in
  let attempts = ref 0 in
  let rec attempt () =
    incr attempts;
    if !attempts > 2000 then failwith "Generators.random_bipartite: too many retries";
    let deg_v = Array.make nv 0 in
    let adj =
      Array.init nu (fun _ ->
          (* sample deg_u distinct v's *)
          let chosen = Hashtbl.create deg_u in
          let rec pick k acc =
            if k = 0 then acc
            else begin
              let v = Random.State.int rng nv in
              if Hashtbl.mem chosen v then pick k acc
              else begin
                Hashtbl.add chosen v ();
                deg_v.(v) <- deg_v.(v) + 1;
                pick (k - 1) (v :: acc)
              end
            end
          in
          Array.of_list (List.sort compare (pick deg_u [])))
    in
    if Array.for_all (fun d -> d >= min_deg_v) deg_v then adj else attempt ()
  in
  attempt ()

(* Biregular bipartite structure: every U-node has degree exactly [deg_u],
   every V-node degree exactly [deg_v] (configuration model pairing of
   stubs, retrying on duplicate (u, v) pairs). Requires
   [nu * deg_u = nv * deg_v]. Returns the U-side adjacency. *)
let random_biregular_bipartite ~seed ~nv ~nu ~deg_u ~deg_v =
  if nu * deg_u <> nv * deg_v then
    invalid_arg "Generators.random_biregular_bipartite: nu*deg_u must equal nv*deg_v";
  if deg_u > nv then invalid_arg "Generators.random_biregular_bipartite: deg_u > nv";
  let rng = Random.State.make [| seed |] in
  let total = nu * deg_u in
  let attempts = ref 0 in
  let rec attempt () =
    incr attempts;
    if !attempts > 5000 then failwith "Generators.random_biregular_bipartite: too many retries";
    (* v stubs: each v repeated deg_v times *)
    let vstubs = Array.init total (fun i -> i / deg_v) in
    shuffle rng vstubs;
    let seen = Hashtbl.create total in
    let ok = ref true in
    let adj = Array.make_matrix nu deg_u (-1) in
    for i = 0 to total - 1 do
      if !ok then begin
        let u = i / deg_u and slot = i mod deg_u in
        let v = vstubs.(i) in
        if Hashtbl.mem seen (u, v) then ok := false
        else begin
          Hashtbl.add seen (u, v) ();
          adj.(u).(slot) <- v
        end
      end
    done;
    if !ok then begin
      Array.iter (fun row -> Array.sort compare row) adj;
      adj
    end
    else attempt ()
  in
  attempt ()

(* Random rank-[k] hypergraph where every node has degree exactly [deg]
   (configuration model on hyperedges; retries on repeated nodes within a
   hyperedge or duplicate hyperedges). Requires [n * deg] divisible by
   [k]. *)
let random_regular_hypergraph ~seed n k deg =
  if k < 2 then invalid_arg "Generators.random_regular_hypergraph: rank >= 2";
  if n * deg mod k <> 0 then invalid_arg "Generators.random_regular_hypergraph: n*deg must be divisible by k";
  let rng = Random.State.make [| seed |] in
  let attempts = ref 0 in
  let rec attempt () =
    incr attempts;
    if !attempts > 2000 then failwith "Generators.random_regular_hypergraph: too many retries";
    let stubs = Array.init (n * deg) (fun i -> i / deg) in
    shuffle rng stubs;
    let nedges = n * deg / k in
    let seen = Hashtbl.create nedges in
    let ok = ref true in
    let es = ref [] in
    for e = 0 to nedges - 1 do
      if !ok then begin
        let members = Array.to_list (Array.sub stubs (e * k) k) in
        let sorted = List.sort_uniq compare members in
        if List.length sorted < k || Hashtbl.mem seen sorted then ok := false
        else begin
          Hashtbl.add seen sorted ();
          es := sorted :: !es
        end
      end
    done;
    if !ok then Hypergraph.create ~n !es else attempt ()
  in
  attempt ()
