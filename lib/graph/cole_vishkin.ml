(* Cole–Vishkin 3-coloring of consistently oriented cycles.

   Each node looks at its successor's color; writing both colors in binary,
   the node finds the lowest bit position [i] where they differ and adopts
   the color [2*i + (own bit at i)]. One such step maps a proper
   [m]-coloring to a proper [2 * ceil(log2 m)]-coloring, so iterating
   reaches 6 colors in [O(log* n)] rounds; three shift-and-recolor rounds
   then remove colors 5, 4 and 3. *)

(* lowest differing bit index between a and b (a <> b) *)
let lowest_diff_bit a b =
  let x = a lxor b in
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  go 0 x

let cv_step ~succ colors =
  Array.mapi
    (fun v c ->
      let c' = colors.(succ v) in
      let i = lowest_diff_bit c c' in
      (2 * i) + ((c lsr i) land 1))
    colors

(* number of bits needed for colors 0..m-1 *)
let bits m =
  let rec go b = if 1 lsl b >= m then b else go (b + 1) in
  go 1

let is_proper_on_cycle ~succ colors = Array.for_all (fun v -> colors.(v) <> colors.(succ v)) (Array.init (Array.length colors) (fun i -> i))

(* Reduce to at most 6 colors. *)
let reduce_to_six ~succ colors =
  let rec go colors m rounds =
    if m <= 6 then (colors, rounds)
    else begin
      let colors = cv_step ~succ colors in
      go colors (2 * bits m) (rounds + 1)
    end
  in
  go colors (Array.fold_left (fun a c -> max a (c + 1)) 0 colors) 0

(* One shift-and-recolor round: everyone adopts its successor's color
   (making each class a "predecessor-free" set whose nodes see both
   neighbors' colors distinct from any class member's), then the nodes of
   class [cls] pick a free color in {0,1,2}. *)
let drop_class ~succ ~pred colors cls =
  let shifted = Array.mapi (fun v _ -> colors.(succ v)) colors in
  Array.mapi
    (fun v c ->
      if c <> cls then c
      else begin
        let banned = [ shifted.(succ v); shifted.(pred v) ] in
        let rec free k = if List.mem k banned then free (k + 1) else k in
        free 0
      end)
    shifted

(* 3-color the cycle [0 - 1 - ... - (n-1) - 0]. Returns the coloring and
   the number of LOCAL rounds. *)
let three_color_cycle n =
  if n < 3 then invalid_arg "Cole_vishkin.three_color_cycle: n >= 3";
  let succ v = (v + 1) mod n in
  let pred v = (v + n - 1) mod n in
  let colors = Array.init n (fun i -> i) in
  let colors, r = reduce_to_six ~succ colors in
  let colors = ref colors and rounds = ref r in
  List.iter
    (fun cls ->
      colors := drop_class ~succ ~pred !colors cls;
      rounds := !rounds + 2 (* one shift + one recolor round *))
    [ 5; 4; 3 ];
  (!colors, !rounds)
