(** Linial's [log*]-round color reduction via polynomials over prime
    fields, plus a full pipeline producing a [(max_degree + 1)]-coloring.

    Used as our stand-in for the [PR01]/[FHK16] coloring subroutines the
    paper cites: same [O(poly d + log* n)] round structure (DESIGN.md
    documents the substitution). *)

val choose_params : dmax:int -> m:int -> int * int
(** [(q, t)] with [q] prime, [q > t*dmax], [q^(t+1) >= m], minimising
    [q^2]. *)

val one_round : Graph.t -> m:int -> int array -> int array * int
(** Map a proper [<= m]-coloring to a proper coloring with at most the
    returned number of colors (one LOCAL round). *)

val reduce_to_fixpoint : Graph.t -> m:int -> int array -> int array * int * int
(** Iterate {!one_round} until no further progress:
    [(coloring, colors, rounds)]. *)

val color : Graph.t -> int array * int
(** Identity coloring, Linial fixpoint, then {!Coloring.reduce}: a proper
    [(max_degree + 1)]-coloring together with the total number of LOCAL
    rounds charged. *)
