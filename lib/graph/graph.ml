(* Undirected simple graphs with integer nodes [0..n-1] and stable edge ids.

   The adjacency structure is CSR (compressed sparse row): one offsets
   array of length [n+1] into two parallel flat arrays holding, for every
   node, its neighbors and the corresponding edge ids. Per-node slices are
   sorted by neighbor (ascending), which makes [find_edge] a binary search
   and keeps the neighbor order identical to the historical
   list-of-sorted-pairs representation. [degree] is an O(1) offsets
   difference and [max_degree] is cached at construction.

   Edge ids index into [edges], which stores endpoints normalised as
   [(min, max)]. *)

type t = {
  n : int;
  edges : (int * int) array;
  adj_offsets : int array; (* length n+1; slice of node v is [off.(v), off.(v+1)) *)
  adj_neighbors : int array; (* length 2m, per-node slices sorted by neighbor *)
  adj_edge_ids : int array; (* parallel to adj_neighbors *)
  max_degree : int;
}

let n g = g.n
let m g = Array.length g.edges
let edges g = g.edges
let endpoints g e = g.edges.(e)
let degree g v = g.adj_offsets.(v + 1) - g.adj_offsets.(v)
let max_degree g = g.max_degree

(* Flat-array adjacency walks: no allocation, CSR slice order (neighbor
   ascending). These are what the in-repo hot paths use; the list
   accessors below are thin compatibility views built on them. *)

let iter_adj g v f =
  for i = g.adj_offsets.(v) to g.adj_offsets.(v + 1) - 1 do
    f g.adj_neighbors.(i) g.adj_edge_ids.(i)
  done

let fold_adj g v ~init ~f =
  let acc = ref init in
  for i = g.adj_offsets.(v) to g.adj_offsets.(v + 1) - 1 do
    acc := f !acc g.adj_neighbors.(i) g.adj_edge_ids.(i)
  done;
  !acc

let adj g v =
  List.init (degree g v) (fun i ->
      let i = g.adj_offsets.(v) + i in
      (g.adj_neighbors.(i), g.adj_edge_ids.(i)))

let neighbors g v =
  List.init (degree g v) (fun i -> g.adj_neighbors.(g.adj_offsets.(v) + i))

let incident_edges g v =
  List.init (degree g v) (fun i -> g.adj_edge_ids.(g.adj_offsets.(v) + i))

let other_endpoint g e v =
  let u, w = g.edges.(e) in
  if u = v then w else if w = v then u else invalid_arg "Graph.other_endpoint: not an endpoint"

(* Build the CSR from an array of already-normalised ([u < v]), duplicate-
   free edges. The two half-edges of every edge are sorted by
   (node, neighbor) with a 2-pass stable counting sort — one pass keyed by
   neighbor, one keyed by node — so no per-node comparison sort (and no
   intermediate lists) is needed: O(n + m) total. *)
let of_norm_edges ~n (edges : (int * int) array) =
  let m = Array.length edges in
  let h = 2 * m in
  (* pass 1: stable counting sort of the half-edges by neighbor *)
  let cnt = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      cnt.(v + 1) <- cnt.(v + 1) + 1;
      cnt.(u + 1) <- cnt.(u + 1) + 1)
    edges;
  for v = 1 to n do
    cnt.(v) <- cnt.(v) + cnt.(v - 1)
  done;
  let by_nbr_node = Array.make h 0 in
  let by_nbr_nbr = Array.make h 0 in
  let by_nbr_eid = Array.make h 0 in
  Array.iteri
    (fun e (u, v) ->
      let p = cnt.(v) in
      cnt.(v) <- p + 1;
      by_nbr_node.(p) <- u;
      by_nbr_nbr.(p) <- v;
      by_nbr_eid.(p) <- e;
      let p = cnt.(u) in
      cnt.(u) <- p + 1;
      by_nbr_node.(p) <- v;
      by_nbr_nbr.(p) <- u;
      by_nbr_eid.(p) <- e)
    edges;
  (* pass 2: stable counting sort by node — slices come out sorted by
     neighbor because pass 1 was stable *)
  let adj_offsets = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      adj_offsets.(u + 1) <- adj_offsets.(u + 1) + 1;
      adj_offsets.(v + 1) <- adj_offsets.(v + 1) + 1)
    edges;
  for v = 1 to n do
    adj_offsets.(v) <- adj_offsets.(v) + adj_offsets.(v - 1)
  done;
  let pos = Array.sub adj_offsets 0 (max n 1) in
  let adj_neighbors = Array.make h 0 in
  let adj_edge_ids = Array.make h 0 in
  for i = 0 to h - 1 do
    let v = by_nbr_node.(i) in
    let p = pos.(v) in
    pos.(v) <- p + 1;
    adj_neighbors.(p) <- by_nbr_nbr.(i);
    adj_edge_ids.(p) <- by_nbr_eid.(i)
  done;
  let max_degree = ref 0 in
  for v = 0 to n - 1 do
    max_degree := max !max_degree (adj_offsets.(v + 1) - adj_offsets.(v))
  done;
  { n; edges; adj_offsets; adj_neighbors; adj_edge_ids; max_degree = !max_degree }

(* ---- raw CSR view, for the binary serializer ----

   [csr] exposes exactly the arrays of the internal representation so a
   binary dump is a plain copy-out and a binary load a copy-in.
   [of_csr] re-validates every structural invariant in O(n + m) int
   work — strictly sorted slices, mirror symmetry via [edges], offsets
   monotone and covering — so a loaded graph is as trustworthy as a
   constructed one without re-running the counting sorts. *)

type csr = {
  csr_n : int;
  csr_edges : (int * int) array;
  csr_offsets : int array;
  csr_neighbors : int array;
  csr_edge_ids : int array;
}

let csr g =
  {
    csr_n = g.n;
    csr_edges = g.edges;
    csr_offsets = g.adj_offsets;
    csr_neighbors = g.adj_neighbors;
    csr_edge_ids = g.adj_edge_ids;
  }

let of_csr { csr_n = n; csr_edges = edges; csr_offsets = off; csr_neighbors = nbr;
             csr_edge_ids = eid } =
  let fail msg = invalid_arg ("Graph.of_csr: " ^ msg) in
  let m = Array.length edges in
  let h = 2 * m in
  if n < 0 then fail "negative n";
  if Array.length off <> n + 1 then fail "offsets length must be n+1";
  if Array.length nbr <> h || Array.length eid <> h then
    fail "adjacency arrays must have length 2m";
  if off.(0) <> 0 || off.(n) <> h then fail "offsets must cover [0, 2m)";
  Array.iter
    (fun (u, v) ->
      if u < 0 || v >= n || u >= v then fail "edge endpoints must satisfy 0 <= u < v < n")
    edges;
  (* every half-edge must appear exactly once per direction: count them
     against the offsets while checking slice order and edge agreement *)
  let max_degree = ref 0 in
  for v = 0 to n - 1 do
    let lo = off.(v) and hi = off.(v + 1) in
    if hi < lo then fail "offsets must be monotone";
    max_degree := max !max_degree (hi - lo);
    for i = lo to hi - 1 do
      let u = nbr.(i) and e = eid.(i) in
      if u < 0 || u >= n then fail "neighbor out of range";
      if i > lo && nbr.(i - 1) >= u then fail "slice not strictly sorted by neighbor";
      if e < 0 || e >= m then fail "edge id out of range";
      let a, b = edges.(e) in
      if not ((a = v && b = u) || (a = u && b = v)) then
        fail "edge id disagrees with slice entry"
    done
  done;
  { n; edges; adj_offsets = off; adj_neighbors = nbr; adj_edge_ids = eid;
    max_degree = !max_degree }

let create ~n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let seen = Hashtbl.create (List.length edge_list) in
  let norm (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: node out of range";
    if u = v then invalid_arg "Graph.create: self-loop";
    if u < v then (u, v) else (v, u)
  in
  let uniq =
    List.filter
      (fun e ->
        let e = norm e in
        if Hashtbl.mem seen e then false
        else begin
          Hashtbl.add seen e ();
          true
        end)
      edge_list
  in
  of_norm_edges ~n (Array.of_list (List.map norm uniq))

(* Binary search for [v] in [u]'s neighbor slice. *)
let find_edge g u v =
  let lo = ref g.adj_offsets.(u) and hi = ref (g.adj_offsets.(u + 1) - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adj_neighbors.(mid) in
    if w = v then found := Some g.adj_edge_ids.(mid)
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem_edge g u v = find_edge g u v <> None

let find_edge_exn g u v =
  match find_edge g u v with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Graph.find_edge_exn: no edge %d-%d" u v)

let fold_edges f acc g =
  let acc = ref acc in
  Array.iteri (fun i (u, v) -> acc := f !acc i u v) g.edges;
  !acc

let iter_edges f g = Array.iteri (fun i (u, v) -> f i u v) g.edges

(* A growable flat pair buffer — the scratch space the derived-graph
   builders ([square], [line_graph]) collect their edges into before the
   single CSR construction pass. *)
module Pair_buf = struct
  type t = { mutable a : (int * int) array; mutable len : int }

  let create () = { a = Array.make 256 (0, 0); len = 0 }

  let push b p =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) (0, 0) in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- p;
    b.len <- b.len + 1

  let contents b = Array.sub b.a 0 b.len
end

(* Square graph: nodes at distance 1 or 2 become adjacent. A proper coloring
   of [square g] is exactly a 2-hop coloring of [g].

   Built by a timestamped merge over the CSR: for every node [v] the sorted
   neighbor slices of [v] and of [v]'s neighbors are walked once, a
   last-seen-at stamp deduplicates across slices, and only pairs [(v, w)]
   with [w > v] are emitted — so the edge array is duplicate-free by
   construction and feeds [of_norm_edges] directly, with no per-node lists
   and no hash-based dedup. *)
let square g =
  let n = g.n in
  let stamp = Array.make n (-1) in
  let buf = Pair_buf.create () in
  for v = 0 to n - 1 do
    let emit w =
      if w > v && stamp.(w) <> v then begin
        stamp.(w) <- v;
        Pair_buf.push buf (v, w)
      end
    in
    iter_adj g v (fun u _ ->
        emit u;
        iter_adj g u (fun w _ -> emit w))
  done;
  of_norm_edges ~n (Pair_buf.contents buf)

(* Line graph: one node per edge of [g]; two nodes adjacent iff the edges
   share an endpoint. In a simple graph two distinct edges share at most
   one endpoint, so emitting each incident pair at its shared node never
   produces a duplicate. Returns the line graph; its node [i] is edge [i]
   of [g]. *)
let line_graph g =
  let buf = Pair_buf.create () in
  for v = 0 to g.n - 1 do
    let lo = g.adj_offsets.(v) and hi = g.adj_offsets.(v + 1) - 1 in
    for i = lo to hi do
      for j = i + 1 to hi do
        let e = g.adj_edge_ids.(i) and e' = g.adj_edge_ids.(j) in
        Pair_buf.push buf (min e e', max e e')
      done
    done
  done;
  of_norm_edges ~n:(m g) (Pair_buf.contents buf)

let bfs_dist g src =
  let dist = Array.make g.n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    iter_adj g v (fun u _ ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
  done;
  dist

let connected_components g =
  let comp = Array.make g.n (-1) in
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if comp.(v) < 0 then begin
      let q = Queue.create () in
      comp.(v) <- !c;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        iter_adj g x (fun u _ ->
            if comp.(u) < 0 then begin
              comp.(u) <- !c;
              Queue.add u q
            end)
      done;
      incr c
    end
  done;
  (!c, comp)

let is_connected g = g.n <= 1 || fst (connected_components g) = 1

(* Girth by BFS from every node; O(n*m), fine for test-sized graphs.
   Returns [None] for forests. *)
let girth g =
  let best = ref max_int in
  for src = 0 to g.n - 1 do
    let dist = Array.make g.n (-1) in
    let parent_edge = Array.make g.n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    let continue = ref true in
    while !continue && not (Queue.is_empty q) do
      let v = Queue.pop q in
      iter_adj g v (fun u e ->
          if e <> parent_edge.(v) then begin
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              parent_edge.(u) <- e;
              Queue.add u q
            end
            else begin
              (* cycle through src of length <= dist v + dist u + 1 *)
              let len = dist.(v) + dist.(u) + 1 in
              if len < !best then best := len
            end
          end);
      if dist.(v) * 2 > !best then continue := false
    done
  done;
  if !best = max_int then None else Some !best

let to_dot g =
  let b = Buffer.create 256 in
  Buffer.add_string b "graph g {\n";
  for v = 0 to g.n - 1 do
    Buffer.add_string b (Printf.sprintf "  %d;\n" v)
  done;
  Array.iter (fun (u, v) -> Buffer.add_string b (Printf.sprintf "  %d -- %d;\n" u v)) g.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp fmt g = Format.fprintf fmt "graph(n=%d, m=%d)" g.n (m g)
