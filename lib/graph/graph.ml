(* Undirected simple graphs with integer nodes [0..n-1] and stable edge ids.

   The adjacency structure stores, for every node, the list of
   [(neighbor, edge id)] pairs; edge ids index into [edges], which stores
   endpoints normalised as [(min, max)]. *)

type t = {
  n : int;
  edges : (int * int) array;
  adj : (int * int) list array; (* (neighbor, edge id) *)
}

let n g = g.n
let m g = Array.length g.edges
let edges g = g.edges
let endpoints g e = g.edges.(e)
let adj g v = g.adj.(v)
let neighbors g v = List.map fst g.adj.(v)
let incident_edges g v = List.map snd g.adj.(v)
let degree g v = List.length g.adj.(v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    d := max !d (degree g v)
  done;
  !d

let other_endpoint g e v =
  let u, w = g.edges.(e) in
  if u = v then w else if w = v then u else invalid_arg "Graph.other_endpoint: not an endpoint"

let create ~n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let seen = Hashtbl.create (List.length edge_list) in
  let norm (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: node out of range";
    if u = v then invalid_arg "Graph.create: self-loop";
    if u < v then (u, v) else (v, u)
  in
  let uniq =
    List.filter
      (fun e ->
        let e = norm e in
        if Hashtbl.mem seen e then false
        else begin
          Hashtbl.add seen e ();
          true
        end)
      edge_list
  in
  let edges = Array.of_list (List.map norm uniq) in
  let adj = Array.make n [] in
  Array.iteri
    (fun i (u, v) ->
      adj.(u) <- (v, i) :: adj.(u);
      adj.(v) <- (u, i) :: adj.(v))
    edges;
  (* deterministic neighbor order *)
  Array.iteri (fun v l -> adj.(v) <- List.sort compare l) adj;
  { n; edges; adj }

let mem_edge g u v = List.exists (fun (w, _) -> w = v) g.adj.(u)

let find_edge g u v =
  List.find_map (fun (w, e) -> if w = v then Some e else None) g.adj.(u)

let find_edge_exn g u v =
  match find_edge g u v with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Graph.find_edge_exn: no edge %d-%d" u v)

let fold_edges f acc g =
  let acc = ref acc in
  Array.iteri (fun i (u, v) -> acc := f !acc i u v) g.edges;
  !acc

let iter_edges f g = Array.iteri (fun i (u, v) -> f i u v) g.edges

(* Square graph: nodes at distance 1 or 2 become adjacent. A proper coloring
   of [square g] is exactly a 2-hop coloring of [g]. *)
let square g =
  let es = ref [] in
  for v = 0 to g.n - 1 do
    let nbrs = neighbors g v in
    List.iter (fun u -> if u > v then es := (v, u) :: !es) nbrs;
    (* distance-2 pairs through v *)
    let rec pairs = function
      | [] -> ()
      | u :: rest ->
        List.iter (fun w -> if u <> w then es := ((min u w), (max u w)) :: !es) rest;
        pairs rest
    in
    pairs nbrs
  done;
  create ~n:g.n !es

(* Line graph: one node per edge of [g]; two nodes adjacent iff the edges
   share an endpoint. Returns the line graph; its node [i] is edge [i] of
   [g]. *)
let line_graph g =
  let es = ref [] in
  for v = 0 to g.n - 1 do
    let ids = incident_edges g v in
    let rec pairs = function
      | [] -> ()
      | e :: rest -> List.iter (fun e' -> es := ((min e e'), (max e e')) :: !es) rest; pairs rest
    in
    pairs ids
  done;
  create ~n:(m g) !es

let bfs_dist g src =
  let dist = Array.make g.n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (u, _) ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
      g.adj.(v)
  done;
  dist

let connected_components g =
  let comp = Array.make g.n (-1) in
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if comp.(v) < 0 then begin
      let q = Queue.create () in
      comp.(v) <- !c;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun (u, _) ->
            if comp.(u) < 0 then begin
              comp.(u) <- !c;
              Queue.add u q
            end)
          g.adj.(x)
      done;
      incr c
    end
  done;
  (!c, comp)

let is_connected g = g.n <= 1 || fst (connected_components g) = 1

(* Girth by BFS from every node; O(n*m), fine for test-sized graphs.
   Returns [None] for forests. *)
let girth g =
  let best = ref max_int in
  for src = 0 to g.n - 1 do
    let dist = Array.make g.n (-1) in
    let parent_edge = Array.make g.n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    let continue = ref true in
    while !continue && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (u, e) ->
          if e <> parent_edge.(v) then begin
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              parent_edge.(u) <- e;
              Queue.add u q
            end
            else begin
              (* cycle through src of length <= dist v + dist u + 1 *)
              let len = dist.(v) + dist.(u) + 1 in
              if len < !best then best := len
            end
          end)
        g.adj.(v);
      if dist.(v) * 2 > !best then continue := false
    done
  done;
  if !best = max_int then None else Some !best

let to_dot g =
  let b = Buffer.create 256 in
  Buffer.add_string b "graph g {\n";
  for v = 0 to g.n - 1 do
    Buffer.add_string b (Printf.sprintf "  %d;\n" v)
  done;
  Array.iter (fun (u, v) -> Buffer.add_string b (Printf.sprintf "  %d -- %d;\n" u v)) g.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp fmt g = Format.fprintf fmt "graph(n=%d, m=%d)" g.n (m g)
