(* Linial's iterated color reduction.

   One round maps a proper [m]-coloring to a proper [q^2]-coloring where
   [q] is a prime chosen so that [q > t * max_degree] and [q^(t+1) >= m]
   for some degree bound [t]: each node interprets its color as a
   polynomial of degree at most [t] over F_q (base-[q] digits as
   coefficients) and picks an evaluation point [a] at which its polynomial
   differs from the polynomials of all neighbors — two distinct degree-[t]
   polynomials agree on at most [t] points, so at most [t * Delta < q]
   points are forbidden. The new color is the pair [(a, p(a))].

   Iterating reaches a fixed point of [O((Delta log Delta)^2)] colors after
   [O(log* m)] rounds; a final greedy class-by-class reduction
   ({!Coloring.reduce}) brings this down to [Delta + 1]. This replaces the
   [FHK16]/[PR01] subroutines cited by the paper with the same
   [O(poly Delta + log* n)] round structure (see DESIGN.md). *)

(* Integer power saturating at [limit] (never overflows). *)
let pow_sat ~limit b e =
  let rec go acc e = if e = 0 then acc else if acc > limit / b then limit else go (acc * b) (e - 1) in
  go 1 e

(* Choose [(q, t)] minimising the resulting color count [q^2], subject to
   [q] prime, [q > t * dmax], [q^(t+1) >= m]. *)
let choose_params ~dmax ~m =
  let dmax = max dmax 1 in
  let best = ref None in
  for t = 1 to 60 do
    (* smallest prime q with q > t*dmax and q^(t+1) >= m *)
    let rec search q =
      let q = Primes.next_prime q in
      if pow_sat ~limit:max_int q (t + 1) >= m then q else search (q + 1)
    in
    let q = search ((t * dmax) + 1) in
    match !best with
    | Some (q', _) when q' <= q -> ()
    | _ -> best := Some (q, t)
  done;
  match !best with Some r -> r | None -> assert false

(* One reduction round. [colors] must be a proper coloring with
   [num_colors <= m]. Returns the new coloring (over at most [q^2]
   colors). *)
let one_round g ~m colors =
  let dmax = Graph.max_degree g in
  let q, t = choose_params ~dmax ~m in
  let n = Graph.n g in
  let polys = Array.init n (fun v -> Primes.digits ~base:q ~len:(t + 1) colors.(v)) in
  let next = Array.make n 0 in
  for v = 0 to n - 1 do
    let rec find a =
      if a >= q then invalid_arg "Linial.one_round: no free evaluation point (improper input?)"
      else if
        Graph.fold_adj g v ~init:true ~f:(fun ok u _ ->
            ok && Primes.poly_eval q polys.(v) a <> Primes.poly_eval q polys.(u) a)
      then a
      else find (a + 1)
    in
    let a = find 0 in
    next.(v) <- (a * q) + Primes.poly_eval q polys.(v) a
  done;
  (next, q * q)

(* Iterate [one_round] until the color count stops decreasing; returns the
   final coloring and the number of rounds used. Starting from the trivial
   identity coloring this takes [O(log* n)] rounds. *)
let reduce_to_fixpoint g ~m colors =
  let rec go colors m rounds =
    let next, m' = one_round g ~m colors in
    if m' >= m then (colors, m, rounds) else go next m' (rounds + 1)
  in
  go colors m 0

(* Full pipeline: identity coloring -> Linial fixpoint -> Kuhn-Wattenhofer
   block reduction to [max_degree + 1] colors. Returns the coloring and
   the total LOCAL round count: O(log* n) Linial rounds plus
   O(max_degree * log(fixpoint)) reduction rounds. *)
let color g =
  let n = Graph.n g in
  if n = 0 then ([||], 0)
  else begin
    let ids = Array.init n (fun i -> i) in
    let c, _, r1 = reduce_to_fixpoint g ~m:n ids in
    let c', r2 = Coloring.kw_reduce g c in
    (c', r1 + r2)
  end
