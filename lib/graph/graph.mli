(** Undirected simple graphs with nodes [0..n-1] and stable edge ids.

    The dependency graphs of LLL instances, line graphs used for edge
    coloring, and graph squares used for 2-hop coloring are all values of
    this type.

    Adjacency is stored in CSR form (flat offsets + neighbor/edge-id
    arrays, per-node slices sorted by neighbor), so [degree] and
    [max_degree] are O(1), [find_edge] is a binary search, and
    {!iter_adj}/{!fold_adj} walk a node's neighbors without allocating.
    The list-returning accessors ([adj], [neighbors], [incident_edges])
    are thin views kept for compatibility; hot paths should prefer the
    flat walks. *)

type t

val create : n:int -> (int * int) list -> t
(** [create ~n edges] builds a graph on nodes [0..n-1]. Duplicate edges are
    dropped; self-loops and out-of-range endpoints raise
    [Invalid_argument]. *)

type csr = {
  csr_n : int;
  csr_edges : (int * int) array;  (** edge id -> [(u, v)] with [u < v] *)
  csr_offsets : int array;  (** length [n+1], monotone, covering [0, 2m) *)
  csr_neighbors : int array;  (** per-node slices strictly sorted *)
  csr_edge_ids : int array;  (** edge id of each half-edge *)
}
(** The raw CSR columns of a graph, exposed for binary serialization.
    The arrays are the graph's own (not copies): treat them as
    read-only. *)

val csr : t -> csr
(** O(1); shares the internal arrays. *)

val of_csr : csr -> t
(** Rebuild a graph directly from CSR columns, re-validating every
    structural invariant (offset coverage, sorted slices, edge-id
    agreement, normalized endpoints) in O(n + m). Raises
    [Invalid_argument] on any violation. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val edges : t -> (int * int) array
(** [edges g] maps each edge id to its endpoints [(u, v)] with [u < v]. *)

val endpoints : t -> int -> int * int
val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e v] is the endpoint of edge [e] different from [v]. *)

val adj : t -> int -> (int * int) list
(** [(neighbor, edge id)] pairs, sorted by neighbor. Allocates a fresh
    list per call; prefer {!iter_adj}/{!fold_adj} on hot paths. *)

val neighbors : t -> int -> int list
val incident_edges : t -> int -> int list

val iter_adj : t -> int -> (int -> int -> unit) -> unit
(** [iter_adj g v f] calls [f neighbor edge_id] for every adjacency of
    [v], in ascending neighbor order, without allocating. *)

val fold_adj : t -> int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** [fold_adj g v ~init ~f] folds [f acc neighbor edge_id] over the
    adjacencies of [v] in ascending neighbor order. *)

val degree : t -> int -> int
(** O(1) (a CSR offsets difference). *)

val max_degree : t -> int
(** O(1) (cached at construction). *)

val mem_edge : t -> int -> int -> bool

val find_edge : t -> int -> int -> int option
(** Edge id between two nodes, if adjacent. O(log degree) binary search
    over the sorted neighbor slice. *)

val find_edge_exn : t -> int -> int -> int

val fold_edges : ('a -> int -> int -> int -> 'a) -> 'a -> t -> 'a
(** [fold_edges f acc g] folds [f acc edge_id u v] over all edges. *)

val iter_edges : (int -> int -> int -> unit) -> t -> unit

val square : t -> t
(** [square g] connects all pairs of nodes at distance 1 or 2 in [g]; a
    proper coloring of [square g] is a 2-hop coloring of [g]
    (Corollary 1.4 of the paper). Built by a timestamped merge over the
    CSR slices — no per-node lists, no hash-based dedup. *)

val line_graph : t -> t
(** Node [i] of [line_graph g] is edge [i] of [g]; nodes are adjacent iff
    the edges share an endpoint. *)

val bfs_dist : t -> int -> int array
(** Distances from a source; [-1] for unreachable nodes. *)

val connected_components : t -> int * int array
(** [(count, component index per node)]. *)

val is_connected : t -> bool

val girth : t -> int option
(** Length of a shortest cycle, or [None] for forests. [O(n*m)]. *)

val to_dot : t -> string
val pp : Format.formatter -> t -> unit
