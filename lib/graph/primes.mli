(** Prime and finite-field helpers backing Linial's coloring
    construction. *)

val is_prime : int -> bool
val next_prime : int -> int
(** Smallest prime [>= max n 2]. *)

val mod_add : int -> int -> int -> int
val mod_mul : int -> int -> int -> int

val poly_eval : int -> int array -> int -> int
(** [poly_eval q coeffs x]: evaluate the polynomial with little-endian
    coefficients over the prime field F_q at [x]. *)

val digits : base:int -> len:int -> int -> int array
(** Little-endian base-[base] digits padded to [len].
    @raise Invalid_argument if the value needs more digits. *)
