(** Rank-bounded hypergraphs.

    Models the paper's hypergraph [H]: one node per bad event, one
    hyperedge per random variable (the events depending on it); the rank
    of [H] is the parameter [r]. *)

type t

val create : n:int -> int list list -> t
(** [create ~n edges] builds a hypergraph on nodes [0..n-1]. Members of a
    hyperedge are deduplicated; empty hyperedges and out-of-range nodes
    raise [Invalid_argument]. *)

val of_sorted_arrays : n:int -> int array array -> t
(** [create] for callers that already hold each hyperedge as a strictly
    ascending member array (so no sorting or deduplication is needed —
    the bulk-load path). Violations raise [Invalid_argument]. The arrays
    are copied. *)

val n : t -> int
val m : t -> int

val edge : t -> int -> int array
(** Sorted distinct members of a hyperedge. *)

val edges : t -> int array array

val incident : t -> int -> int list
(** Hyperedge ids incident to a node, sorted. *)

val degree : t -> int -> int
val max_degree : t -> int

val rank : t -> int
(** Cardinality of the largest hyperedge. *)

val primal_graph : t -> Graph.t
(** 2-section graph: nodes sharing a hyperedge become adjacent. For an LLL
    instance this is the dependency graph. *)

val to_dot : t -> string
(** Graphviz rendering of the bipartite incidence structure. *)

val pp : Format.formatter -> t -> unit
