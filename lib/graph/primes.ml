(* Small prime utilities for Linial's set-system construction. *)

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    let rec go d = if d * d > n then true else if n mod d = 0 then false else go (d + 2) in
    go 3
  end

let next_prime n =
  let rec go k = if is_prime k then k else go (k + 1) in
  go (max n 2)

(* modular arithmetic in F_q for prime q *)
let mod_add q a b = (a + b) mod q
let mod_mul q a b = a * b mod q (* q < 2^31 so no overflow on 63-bit ints *)

(* Evaluate the polynomial with little-endian coefficients [coeffs] at [x]
   over F_q (Horner). *)
let poly_eval q coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := mod_add q (mod_mul q !acc x) coeffs.(i)
  done;
  !acc

(* Digits of [v] in base [q], little-endian, padded to [len]. *)
let digits ~base ~len v =
  let d = Array.make len 0 in
  let v = ref v in
  for i = 0 to len - 1 do
    d.(i) <- !v mod base;
    v := !v / base
  done;
  if !v <> 0 then invalid_arg "Primes.digits: value does not fit";
  d
