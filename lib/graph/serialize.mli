(** DIMACS-style textual serialization of graphs and hypergraphs
    (0-based vertices, 'c' comment lines). *)

exception Parse_error of { line : int; message : string }

val graph_to_string : Graph.t -> string
val graph_of_string : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val save_graph : string -> Graph.t -> unit
val load_graph : string -> Graph.t

val hypergraph_to_string : Hypergraph.t -> string
val hypergraph_of_string : string -> Hypergraph.t
val save_hypergraph : string -> Hypergraph.t -> unit
val load_hypergraph : string -> Hypergraph.t

type weighted_table = {
  arities : int array;
  rows : (int array * Lll_num.Rat.t) list;
      (** satisfying tuples (scope-order values) with exact weights *)
}
(** Textual form of a compiled event table: the "p wtable" block.
    Embeds into larger line-oriented formats (the LLL instance format). *)

val weighted_table_to_string : weighted_table -> string
val weighted_table_to_buffer : Buffer.t -> weighted_table -> unit

val weighted_table_of_lines :
  next_line:(unit -> string) -> fail:(string -> exn) -> weighted_table
(** Parse one block out of a caller-driven line stream: [next_line] must
    yield successive payload (non-blank, non-comment) lines; [fail] builds
    the exception to raise on malformed input (the caller keeps its own
    line-number bookkeeping). *)

val weighted_table_of_string : string -> weighted_table
(** Standalone parse (skips blank lines and 'c'/'#' comments).
    @raise Parse_error on malformed input. *)

(** The v3 sectioned binary container: magic ["LLL3"], i64 LE format
    version, a kind string, a payload checksum, then length-prefixed
    tagged sections. Loading is bounds-checked blits — no tokenizing,
    no re-derivation. Higher layers ({!graph_to_binary},
    [Lll.Serial.to_binary_string]) define their section vocabularies on
    top of this container. *)
module Bin : sig
  exception Corrupt of string
  (** Raised on any malformed binary input: bad magic, version skew,
      kind mismatch, truncated section, checksum mismatch, or a decoder
      running past its section. *)

  val format_version : int

  type writer

  val make_writer : kind:string -> writer
  val section : writer -> string -> unit
  (** Start a new section; subsequent [add_*] calls append to it. *)

  val add_int : writer -> int -> unit

  val add_int_array : writer -> int array -> unit
  (** Width-packed: elements are stored at the narrowest of u8, u16, i32
      or i64 that fits the whole array. *)

  val add_string : writer -> string -> unit
  val add_rat : writer -> Lll_num.Rat.t -> unit

  val add_rat_array : writer -> Lll_num.Rat.t array -> unit
  (** Run-length encoded: consecutive equal rationals are stored once
      with a repeat count. Probability columns are mostly constant, so
      this collapses them to a handful of entries. *)

  val contents : writer -> string
  (** Assemble header + checksum + sections into the final blob. *)

  type bigstring = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type source
  (** Bytes a reader decodes from: an in-heap string or a window into an
      mmap-ed file. Windows slice without copying, so nested containers
      decode zero-copy in both representations. *)

  val source_of_string : string -> source
  val source_of_map : bigstring -> source

  val source_of_path : string -> source
  (** Map the file read-only and return it as a source. The single
      mapping also carries a u32 word view over its whole-slot prefix,
      so the checksum and the wide column decoders read unboxed words
      instead of assembling bytes; prefer this over
      [source_of_map (map_file path)], which only gets byte loads.
      @raise Unix.Unix_error on an unreadable path. *)

  val map_file : string -> bigstring
  (** Map a file read-only ([Unix.map_file], private mapping). The
      descriptor is closed before returning; the mapping lives until the
      bigarray is collected. *)

  type reader

  val open_reader : kind:string -> string -> reader
  (** Validate magic, version, kind, section bounds and checksum.
      @raise Corrupt on any violation. *)

  val open_reader_src : kind:string -> source -> reader
  (** {!open_reader} over any byte source. *)

  val load_mmap : kind:string -> string -> reader
  (** Map the container file at the path and open a reader over the
      mapping: the checksum is still verified (touching each page once),
      but the bytes are shared with the OS page cache rather than copied
      into a per-process string.
      @raise Corrupt on a malformed container, [Unix.Unix_error] on an
      unreadable path. *)

  val fingerprint_file : string -> string option
  (** Cheap identity of a container file — kind, stored checksum and
      byte length from the fixed-layout header, no payload read. [None]
      when the file is missing or not a v3 container. *)

  val kind_of_string : string -> string option
  (** Peek at a blob's kind without validating the payload; [None] if
      the data is not a v3 container. *)

  val enter : reader -> string -> unit
  (** Advance to the next section, which must carry the given tag and
      the previous section must be fully consumed. *)

  val read_int : reader -> int
  val read_int_array : reader -> int array
  val read_string : reader -> string

  val read_blob : reader -> source
  (** Like {!read_string} but returns a window into the backing bytes
      instead of copying — the zero-copy path for nested containers. *)

  val read_rat : reader -> Lll_num.Rat.t
  val read_rat_array : reader -> Lll_num.Rat.t array

  val close : reader -> unit
  (** Assert every section was consumed in full. *)
end

val graph_to_binary : Graph.t -> string
(** v3 binary graph: raw CSR columns in a {!Bin} container. *)

val graph_of_binary : string -> Graph.t
(** Decode and structurally re-validate (via [Graph.of_csr]).
    @raise Bin.Corrupt on malformed input. *)

val graph_of_binary_src : Bin.source -> Graph.t
(** {!graph_of_binary} over any byte source (e.g. a {!Bin.read_blob}
    window or an mmap-ed file). *)

val save_graph_binary : string -> Graph.t -> unit
val load_graph_binary : string -> Graph.t

val load_graph_mmap : string -> Graph.t
(** Decode straight off a read-only mapping of the file — same
    validation as {!load_graph_binary}, no in-heap copy of the blob. *)
