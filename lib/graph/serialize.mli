(** DIMACS-style textual serialization of graphs and hypergraphs
    (0-based vertices, 'c' comment lines). *)

exception Parse_error of { line : int; message : string }

val graph_to_string : Graph.t -> string
val graph_of_string : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val save_graph : string -> Graph.t -> unit
val load_graph : string -> Graph.t

val hypergraph_to_string : Hypergraph.t -> string
val hypergraph_of_string : string -> Hypergraph.t
val save_hypergraph : string -> Hypergraph.t -> unit
val load_hypergraph : string -> Hypergraph.t

type weighted_table = {
  arities : int array;
  rows : (int array * Lll_num.Rat.t) list;
      (** satisfying tuples (scope-order values) with exact weights *)
}
(** Textual form of a compiled event table: the "p wtable" block.
    Embeds into larger line-oriented formats (the LLL instance format). *)

val weighted_table_to_string : weighted_table -> string
val weighted_table_to_buffer : Buffer.t -> weighted_table -> unit

val weighted_table_of_lines :
  next_line:(unit -> string) -> fail:(string -> exn) -> weighted_table
(** Parse one block out of a caller-driven line stream: [next_line] must
    yield successive payload (non-blank, non-comment) lines; [fail] builds
    the exception to raise on malformed input (the caller keeps its own
    line-number bookkeeping). *)

val weighted_table_of_string : string -> weighted_table
(** Standalone parse (skips blank lines and 'c'/'#' comments).
    @raise Parse_error on malformed input. *)
