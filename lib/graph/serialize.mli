(** DIMACS-style textual serialization of graphs and hypergraphs
    (0-based vertices, 'c' comment lines). *)

exception Parse_error of { line : int; message : string }

val graph_to_string : Graph.t -> string
val graph_of_string : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val save_graph : string -> Graph.t -> unit
val load_graph : string -> Graph.t

val hypergraph_to_string : Hypergraph.t -> string
val hypergraph_of_string : string -> Hypergraph.t
val save_hypergraph : string -> Hypergraph.t -> unit
val load_hypergraph : string -> Hypergraph.t
