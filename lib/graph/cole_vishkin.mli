(** Cole–Vishkin [O(log* n)]-round 3-coloring of oriented cycles — the
    classic witness that the paper's [Ω(log* n)] lower bound is tight for
    simple structures, and a self-contained sanity check for our LOCAL
    round accounting. *)

val lowest_diff_bit : int -> int -> int
(** Index of the lowest set bit of [a lxor b]; the inputs must differ. *)

val cv_step : succ:(int -> int) -> int array -> int array
(** One bit-trick reduction step on a consistently oriented cycle given by
    the successor function. *)

val reduce_to_six : succ:(int -> int) -> int array -> int array * int
(** Iterate {!cv_step} until at most 6 colors remain;
    [(coloring, rounds)]. *)

val three_color_cycle : int -> int array * int
(** 3-coloring of the canonical [n]-cycle [(i, i+1 mod n)]; returns the
    coloring and the LOCAL round count, which is [O(log* n)]. *)

val is_proper_on_cycle : succ:(int -> int) -> int array -> bool
