(** Proper edge colorings via the line graph; stand-in for the [PR01]
    [O(d + log* n)]-round edge coloring used by Corollary 1.2. *)

type t = int array
(** Edge id to color. *)

val is_proper : Graph.t -> t -> bool
(** No two edges sharing an endpoint have the same color. *)

val num_colors : t -> int

val color : Graph.t -> t * int
(** Linial pipeline on the line graph: at most [2*max_degree - 1] colors,
    [(coloring, LOCAL rounds)]. *)

val greedy : Graph.t -> t
(** Sequential greedy edge coloring (for tests and baselines). *)
