(* Distributed-style edge coloring via the line graph.

   A proper edge coloring of [g] is a proper vertex coloring of the line
   graph [L(g)]; [L(g)] has maximum degree at most [2*(dmax-1)], so
   Linial's pipeline yields at most [2*dmax - 1] colors in
   [O(poly dmax + log* m)] rounds. This is our stand-in for the [PR01]
   edge-coloring subroutine in Corollary 1.2. *)

type t = int array (* edge id -> color *)

let is_proper g (c : t) =
  Array.length c = Graph.m g
  &&
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let cols = Graph.fold_adj g v ~init:[] ~f:(fun acc _ e -> c.(e) :: acc) in
    let sorted = List.sort compare cols in
    let rec distinct = function
      | a :: (b :: _ as rest) -> a <> b && distinct rest
      | _ -> true
    in
    if not (distinct sorted) then ok := false
  done;
  !ok

let num_colors (c : t) = Array.fold_left (fun acc x -> max acc (x + 1)) 0 c

(* Edge coloring together with the LOCAL rounds charged. A simulated line
   graph round costs one real round (edge endpoints coordinate, adjacent
   edges share an endpoint). *)
let color g =
  if Graph.m g = 0 then ([||], 0)
  else begin
    let lg = Graph.line_graph g in
    Linial.color lg
  end

let greedy g = Coloring.greedy (Graph.line_graph g)
