(** Proper vertex colorings and color-count reduction. *)

type t = int array
(** Node index to color ([>= 0]). *)

val is_proper : Graph.t -> t -> bool

val num_colors : t -> int
(** One plus the largest color used. *)

val smallest_free : Graph.t -> t -> int -> int
(** Smallest color not used by any (already colored, i.e. [>= 0])
    neighbor. *)

val greedy : ?order:int array -> Graph.t -> t
(** Sequential greedy coloring in the given node order (identity by
    default); uses at most [max_degree + 1] colors. *)

val reduce : Graph.t -> t -> t * int
(** [reduce g c] turns a proper coloring into one with at most
    [max_degree g + 1] colors by recoloring one color class per round,
    highest class first. Returns the coloring and the number of LOCAL
    rounds this costs. *)

val kw_reduce : Graph.t -> t -> t * int
(** Kuhn–Wattenhofer parallel block reduction: halves the palette every
    [max_degree + 1] rounds, reaching [max_degree + 1] colors in
    [O(max_degree * log colors)] rounds. Same contract as {!reduce}. *)

val colorable : ?budget:int -> Graph.t -> int -> bool option
(** Exact [c]-colorability by bounded backtracking: [Some true/false] if
    decided within the budget of search nodes, [None] otherwise. *)

val chromatic_number : ?budget:int -> Graph.t -> int option
(** Exact chromatic number by iterative deepening on {!colorable};
    [None] when the budget runs out. Exponential — small graphs only. *)

val classes : t -> int list array
(** Nodes grouped by color. *)
