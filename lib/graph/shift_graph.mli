(** Shift graphs [S(m, k)]: ordered k-tuples of distinct ids from
    [{0..m-1}], adjacent under window shifts. A t-round deterministic
    path/ring coloring algorithm with ids from [m] IS a proper coloring
    of [S(m, 2t+1)]; the iterated-logarithm growth of their chromatic
    numbers is the [Omega(log* n)] lower bound the paper builds on. *)

val num_tuples : int -> int -> int
(** [m! / (m-k)!]. *)

val rank : m:int -> int array -> int
(** Bijective encoding of a distinct k-tuple into [0 .. num_tuples-1]. *)

val unrank : m:int -> k:int -> int -> int array

val build : m:int -> k:int -> Graph.t
(** Materialise [S(m, k)] ([num_tuples m k] nodes — small [m] only). *)

val chromatic_number : ?budget:int -> m:int -> k:int -> unit -> int option
(** Exact chromatic number of [S(m,k)] within the search budget. *)

val threshold_universe :
  ?budget:int -> k:int -> colors:int -> max_m:int -> unit -> int option
(** Smallest [m] for which NO [colors]-coloring of [S(m, k)] exists —
    i.e. the id-universe size at which every (k-window)-round algorithm
    provably fails; [None] if undecided up to [max_m]. *)
