(** Graph and hypergraph generators (deterministic families plus seeded
    random models) for tests, examples and benchmarks. *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] nodes. *)

val path : int -> Graph.t
val complete : int -> Graph.t
val star : int -> Graph.t
(** Node [0] connected to all others. *)

val grid : int -> int -> Graph.t
(** [grid w h] is the [w*h] grid. *)

val torus : int -> int -> Graph.t
(** 4-regular wraparound grid, [w, h >= 3]. *)

val hypercube : int -> Graph.t
(** [hypercube d] is the [d]-dimensional hypercube on [2^d] nodes. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: sides [{0..a-1}] and [{a..a+b-1}]. *)

val random_tree : seed:int -> int -> Graph.t
(** Uniform random labelled tree (Prüfer sequence). *)

val random_regular : seed:int -> int -> int -> Graph.t
(** [random_regular ~seed n d]: simple [d]-regular graph via the
    configuration model with retries. Requires [n*d] even, [1 <= d < n]. *)

type girth_stats = {
  mutable gs_attempts : int;
      (** configuration-model restarts, including the first attempt *)
  mutable gs_swaps : int;  (** accepted degree-preserving 2-swaps *)
  mutable gs_reverts : int;
      (** swaps undone by informed acceptance (replacement edges landed
          on short cycles) *)
  mutable gs_rejects : int;  (** swap offers rejected before mutating *)
}
(** Girth-sampler work counters, the cost that otherwise vanishes into
    wall-clock when growing high-girth corpora. *)

val fresh_girth_stats : unit -> girth_stats

val random_regular_girth :
  ?stats:girth_stats -> seed:int -> girth:int -> int -> int -> Graph.t
(** [random_regular_girth ~seed ~girth n d]: simple [d]-regular graph
    whose girth is at least [girth], sampled by configuration-model
    start plus degree-preserving edge swaps that destroy short cycles
    (the high-girth regular graphs of the sinkless-orientation lower
    bound, arXiv 1511.00900). Requires [n*d] even, [1 <= d < n] and
    [n] at least the Moore bound for [(d, girth)]. [stats] counters are
    incremented as the repair walk runs (pass a fresh record per call to
    get per-call numbers); passing it never changes the sampled graph —
    in particular the attempt-0 seed derivation, which store artifact
    keys depend on, is regression-pinned in the test suite.
    @raise Failure if the swap budget runs out. *)

val gnm : seed:int -> int -> int -> Graph.t
(** Uniform graph with exactly the given number of distinct edges. *)

val random_bounded_degree : seed:int -> int -> int -> int -> Graph.t
(** [random_bounded_degree ~seed n dmax m]: up to [m] random edges subject
    to a hard maximum-degree cap [dmax]. *)

val random_bipartite :
  seed:int -> nv:int -> nu:int -> deg_u:int -> min_deg_v:int -> int array array
(** Bipartite incidence for weak splitting: entry [u] lists the [deg_u]
    distinct neighbors in [V = {0..nv-1}] of variable node [u]; retries
    until every [v] has degree at least [min_deg_v]. *)

val random_biregular_bipartite :
  seed:int -> nv:int -> nu:int -> deg_u:int -> deg_v:int -> int array array
(** Bipartite incidence with exact degrees on both sides (requires
    [nu*deg_u = nv*deg_v]); entry [u] lists the distinct V-neighbors of
    U-node [u], sorted. *)

val random_regular_hypergraph : seed:int -> int -> int -> int -> Hypergraph.t
(** [random_regular_hypergraph ~seed n k deg]: rank-[k] hypergraph, every
    node in exactly [deg] hyperedges, all hyperedges distinct with [k]
    distinct members. Requires [k | n*deg]. *)

val shuffle : Random.State.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
