(* Adversarial instance generator for the fuzz harness.

   Every choice here is biased towards the places where the paper's
   machinery has the least slack:

   - bad-event probabilities are packed greedily against the sharp
     threshold [2^-d] — strictly below it, exactly at it (when the
     tuple weights allow), or just above it;
   - variable distributions include degenerate non-uniform rationals
     (one value carrying almost all the mass) and odd arities, so the
     mixed-radix tables, the [Inc] ratios and the serializer all see
     weights that are not nice powers of two;
   - structures put variables at exactly rank 1, 2 and 3 (singleton
     hyperedges, ring/path edges, rank-3 rings and chords), covering
     every branch of the fixers' per-rank case split.

   Instances are deliberately tiny (4-9 events): the fuzzer's value is
   in the cross-check matrix, not the instance size, and small
   instances keep exact enumeration and shrinking cheap. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Hypergraph = Lll_graph.Hypergraph
module Generators = Lll_graph.Generators
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Instance = Lll_core.Instance
module Synthetic = Lll_core.Synthetic
module Sinkless = Lll_apps.Sinkless

type placement = Just_below | At_threshold | Just_above

let placement_label = function
  | Just_below -> "below"
  | At_threshold -> "at"
  | Just_above -> "above"

type hostile = { label : string; instance : Instance.t }

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* ------------------------------------------------------------------ *)
(* Hostile distributions                                               *)
(* ------------------------------------------------------------------ *)

(* Exact rational distribution from positive integer weights. *)
let of_weights ws =
  let total = Array.fold_left ( + ) 0 ws in
  Array.map (fun w -> Rat.of_ints w total) ws

let random_dist rng =
  match Random.State.int rng 4 with
  | 0 ->
    (* uniform, power-of-two arity: the synthetic families' home turf *)
    let k = [| 2; 4; 8 |].(Random.State.int rng 3) in
    of_weights (Array.make k 1)
  | 1 ->
    (* uniform, odd arity: thresholds are never exactly representable *)
    let k = [| 3; 5 |].(Random.State.int rng 2) in
    of_weights (Array.make k 1)
  | 2 ->
    (* skewed small weights *)
    let k = 2 + Random.State.int rng 3 in
    of_weights (Array.init k (fun _ -> 1 + Random.State.int rng 9))
  | _ ->
    (* degenerate: one value carries almost all the mass *)
    let k = 2 + Random.State.int rng 3 in
    let ws = Array.make k 1 in
    ws.(Random.State.int rng k) <- 8 + Random.State.int rng 25;
    of_weights ws

(* ------------------------------------------------------------------ *)
(* Threshold-packed bad sets                                           *)
(* ------------------------------------------------------------------ *)

(* All value tuples over [scope] (in scope order) with their exact joint
   probabilities. Scopes have size <= 3 and arities <= 8 here, so this
   enumeration is at most a few hundred tuples. *)
let tuples_with_weights vars scope =
  let rec enum = function
    | [] -> [ ([], Rat.one) ]
    | vid :: rest ->
      let tails = enum rest in
      List.concat
        (List.init (Var.arity vars.(vid)) (fun y ->
             List.map (fun (t, w) -> (y :: t, Rat.mul (Var.prob vars.(vid) y) w)) tails))
  in
  Array.of_list (enum (Array.to_list scope))

(* Greedily pack shuffled tuples against [target = 2^-d]: strictly below
   it, at most it, or (for [Just_above]) past it by one extra tuple. *)
let pack_bad_set rng placement ~target tuples =
  shuffle rng tuples;
  let total = ref Rat.zero in
  let chosen = ref [] in
  let overflow = ref None in
  Array.iter
    (fun (t, w) ->
      let next = Rat.add !total w in
      let keep =
        match placement with
        | Just_below -> Rat.lt next target
        | At_threshold | Just_above -> Rat.leq next target
      in
      if keep then begin
        total := next;
        chosen := t :: !chosen
      end
      else if !overflow = None then overflow := Some t)
    tuples;
  match (placement, !overflow) with
  | Just_above, Some t -> t :: !chosen
  | _ -> !chosen

(* ------------------------------------------------------------------ *)
(* Structures: variables at exactly rank 1, 2 and 3                    *)
(* ------------------------------------------------------------------ *)

let ring2 n = Hypergraph.create ~n (List.init n (fun i -> [ i; (i + 1) mod n ]))

let ring3 n =
  Hypergraph.create ~n (List.init n (fun i -> [ i; (i + 1) mod n; (i + 2) mod n ]))

(* Path with degree-1 endpoints plus singleton (rank-1) hyperedges. *)
let path_with_singletons n =
  let path = List.init (n - 1) (fun i -> [ i; i + 1 ]) in
  let singletons = List.filteri (fun i _ -> i mod 2 = 0) (List.init n (fun i -> [ i ])) in
  Hypergraph.create ~n (path @ singletons)

(* Ring with one rank-3 chord and a singleton: mixes all three ranks in
   one dependency graph. *)
let mixed n =
  let ring = List.init n (fun i -> [ i; (i + 1) mod n ]) in
  Hypergraph.create ~n (ring @ [ [ 0; n / 2; n - 1 ]; [ 1 ] ])

let structures =
  [| ("ring2", ring2); ("ring3", ring3); ("path1", path_with_singletons); ("mixed", mixed) |]

(* ------------------------------------------------------------------ *)
(* Sinkless orientation at the threshold                               *)
(* ------------------------------------------------------------------ *)

(* Application instances pinned to the threshold by construction rather
   than by greedy packing: binary sinkless orientation sits at exactly
   [p = 2^-d] on regular graphs, the ternary relaxation strictly below
   it. The girth-6 cubic graphs are the hard instances of the
   sinkless-orientation lower bound; cycles and plain random cubic
   graphs keep the shrinker's search space small. *)
let sinkless rng =
  let placement = if Random.State.bool rng then At_threshold else Just_below in
  let gname, g =
    match Random.State.int rng 4 with
    | 0 | 1 ->
      let n = 4 + Random.State.int rng 6 in
      ("cycle", Generators.cycle n)
    | 2 ->
      let n = [| 8; 10; 12 |].(Random.State.int rng 3) in
      ("cubic", Generators.random_regular ~seed:(Random.State.int rng 1_000_000) n 3)
    | _ ->
      (* girth-6 cubic: Moore bound is 14, so n = 20/24 leaves the swap
         sampler enough room to succeed on every seed *)
      let n = [| 20; 24 |].(Random.State.int rng 2) in
      ("girth6", Generators.random_regular_girth ~seed:(Random.State.int rng 1_000_000) ~girth:6 n 3)
  in
  let instance =
    match placement with
    | At_threshold | Just_above -> Sinkless.instance g
    | Just_below -> Sinkless.relaxed_instance g
  in
  {
    label = Printf.sprintf "sinkless-%s/n=%d/%s" gname (Graph.n g) (placement_label placement);
    instance;
  }

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let instance_on rng placement h =
  let nv = Hypergraph.m h in
  let vars =
    Array.init nv (fun i -> Var.make ~id:i ~name:(Printf.sprintf "x%d" i) (random_dist rng))
  in
  let space = Space.create vars in
  let n = Hypergraph.n h in
  let d = ref 0 in
  for v = 0 to n - 1 do
    d := max !d (Synthetic.dep_degree h v)
  done;
  let target = Rat.pow2 (- !d) in
  let events =
    Array.init n (fun v ->
        let scope = Array.of_list (Hypergraph.incident h v) in
        let tuples = tuples_with_weights vars scope in
        let bad = pack_bad_set rng placement ~target tuples in
        Event.of_bad_set ~id:v ~name:(Printf.sprintf "E%d" v) ~scope bad)
  in
  Instance.create space events

let generate rng =
  (* one instance in five is a threshold-pinned application instance;
     the rest are greedily packed synthetic structures *)
  if Random.State.int rng 5 = 0 then sinkless rng
  else begin
    let n = 4 + Random.State.int rng 6 in
    let placement =
      [| Just_below; Just_below; At_threshold; Just_above |].(Random.State.int rng 4)
    in
    let sname, build = structures.(Random.State.int rng (Array.length structures)) in
    let instance = instance_on rng placement (build n) in
    let label = Printf.sprintf "%s/n=%d/%s" sname n (placement_label placement) in
    { label; instance }
  end
