(** Greedy shrinking of violating instances: drop events, shrink
    domains, uniformise distributions, garbage-collect unused
    variables — keeping only changes under which the caller's
    [reproduces] predicate still fires. Terminates because every
    reducer strictly decreases
    [#events + #vars + sum of arities + #non-uniform vars]. *)

module Instance = Lll_core.Instance

val minimize : reproduces:(Instance.t -> bool) -> Instance.t -> Instance.t
(** Greedily minimise an instance while [reproduces] keeps returning
    [true] on the shrunk candidates. [reproduces] must hold on the
    input for the result to be meaningful (otherwise the input is
    returned unchanged). The predicate must not raise. *)
