(* The adversarial fuzz harness over the solver registry.

   For every generated hostile instance (Gen) and every applicable
   engine, run the engine under BOTH probability backends and
   cross-check:

   (a) deterministic-given-seed engines produce backend-identical final
       assignments (the two backends are exactly equal in Q, and the
       randomness streams do not depend on the backend);
   (b) whenever the engine's guarantee predicate holds for the
       instance, the shared post-condition report is [ok] — exact
       Verify plus the engine's own P* claim;
   (c) for engines following the paper's fixing discipline, the P*
       potential invariant holds after every trace step, re-derived
       from the instance by the independent Replay checker (nothing
       the engine reports is trusted);

   plus a geometry oracle feeding Srep.mem / Srep.decompose with
   triples hugging the incurved boundary surface.

   On a violation the instance is greedily shrunk (Shrink) while the
   offending engine keeps tripping the same cross-check, and the
   minimal reproducer is dumped in the Serialize v2 instance format so
   [lll_cli --load-instance] can replay it.

   The harness self-test (the fuzzer fuzzing itself) registers a
   fault-injected clone of the rank-3 fixer — Replay.run_mutant with a
   perturbed phi update — and asserts the harness catches and shrinks
   it. *)

module Rat = Lll_num.Rat
module Space = Lll_prob.Space
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance
module Solver = Lll_core.Solver
module Srep = Lll_core.Srep
module Serial = Lll_core.Serial

(* ------------------------------------------------------------------ *)
(* Violations                                                          *)
(* ------------------------------------------------------------------ *)

type violation =
  | Backend_mismatch of { engine : string }
  | Guarantee_failed of { engine : string; violated : int list }
  | Pstar_broken of { engine : string; failure : Replay.failure }
  | Engine_crashed of { engine : string; exn : string }

let violation_engine = function
  | Backend_mismatch { engine }
  | Guarantee_failed { engine; _ }
  | Pstar_broken { engine; _ }
  | Engine_crashed { engine; _ } ->
    engine

let pp_violation ppf = function
  | Backend_mismatch { engine } ->
    Format.fprintf ppf "%s: final assignments differ between Enum and Table backends" engine
  | Guarantee_failed { engine; violated } ->
    Format.fprintf ppf
      "%s: guarantee predicate holds but the report is not ok (violated events: %a)" engine
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      violated
  | Pstar_broken { engine; failure } ->
    Format.fprintf ppf "%s: P* replay failed at %a" engine Replay.pp_failure failure
  | Engine_crashed { engine; exn } -> Format.fprintf ppf "%s: raised %s" engine exn

(* ------------------------------------------------------------------ *)
(* The cross-check matrix on one instance                              *)
(* ------------------------------------------------------------------ *)

let mutant_name = "fix3-mutant-phi"

(* Engines whose traces follow the Fix_rank2 / Fix_rank3 update
   discipline the Replay checker models. (fixr generalises the
   potential differently; the exact rank-3 fixer keeps phi rational —
   its own pstar claim is already checked by the post-condition.) *)
let default_replay_engines = [ "fix2"; "fix2-first"; "fix3"; "fix3-first"; mutant_name ]

let check ?(eps = Srep.default_eps)
    ?(replay = fun name -> List.mem name default_replay_engines) ~engines inst =
  let run engine backend =
    Space.with_backend backend (fun () ->
        Solver.solve ~params:{ Solver.default_params with seed = 1 } engine inst)
  in
  let check_engine e =
    let name = Solver.name e in
    match (run e Space.Enum, run e Space.Table) with
    | exception exn -> Some (Engine_crashed { engine = name; exn = Printexc.to_string exn })
    | re, rt ->
      if re.Solver.outcome.Solver.assignment <> rt.Solver.outcome.Solver.assignment then
        Some (Backend_mismatch { engine = name })
      else if Solver.guarantees e inst && not rt.Solver.ok then
        Some (Guarantee_failed { engine = name; violated = rt.Solver.verify.Lll_core.Verify.violated })
      else if replay name && Instance.rank inst <= 3 then begin
        let steps =
          List.map (fun (s : Solver.step) -> (s.Solver.var, s.Solver.value)) rt.Solver.outcome.Solver.trace
        in
        match Replay.check_trace ~eps inst steps with
        | Some failure -> Some (Pstar_broken { engine = name; failure })
        | None -> None
      end
      else None
  in
  let rec scan = function
    | [] -> None
    | e :: rest ->
      if not (Solver.applicable e inst) then scan rest
      else (match check_engine e with Some _ as v -> v | None -> scan rest)
  in
  scan engines

(* ------------------------------------------------------------------ *)
(* Shrinking a finding                                                 *)
(* ------------------------------------------------------------------ *)

let shrink ?eps ?replay violation inst =
  match Solver.find (violation_engine violation) with
  | None -> inst
  | Some engine ->
    let reproduces candidate =
      match check ?eps ?replay ~engines:[ engine ] candidate with
      | Some _ -> true
      | None -> false
      | exception _ -> false
    in
    Shrink.minimize ~reproduces inst

(* ------------------------------------------------------------------ *)
(* The geometry oracle                                                 *)
(* ------------------------------------------------------------------ *)

(* For a triple accepted by [Srep.mem], the constructive decomposition
   must be a valid Definition 3.3 witness whose products reproduce
   (a, b) and neither overshoot c nor fall measurably short of it. The
   tolerances leave ~100x headroom over the deviations the ternary
   search actually produces. *)
let geometry_check ?(eps = Srep.default_eps) ((a, b, c) as t) =
  if not (Srep.mem ~eps t) then None
  else begin
    let d = Srep.decompose t in
    let a', b', c' = Srep.products d in
    if not (Srep.is_valid_decomposition ~eps d) then
      Some "decompose returned an invalid witness for a member triple"
    else if abs_float (a' -. a) > 1e-9 || abs_float (b' -. b) > 1e-9 then
      Some "decomposition products do not reproduce (a, b)"
    else if c' > c +. eps then Some "decomposition overshoots c"
    else if c' < c -. 100. *. eps then Some "decomposition falls short of a representable c"
    else None
  end

let fuzz_geometry ?eps ~seed ~samples () =
  let rng = Random.State.make [| seed |] in
  let rec go i =
    if i >= samples then None
    else begin
      let t = Srep.random_near_boundary rng in
      match geometry_check ?eps t with Some reason -> Some (t, reason) | None -> go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* The fuzz loop                                                       *)
(* ------------------------------------------------------------------ *)

type finding = {
  label : string;
  instance : Instance.t;
  violation : violation;
  shrunk : Instance.t;
}

type outcome = { tested : int; finding : finding option }

let run ?eps ?replay ?(engines = Solver.all ()) ?(log = fun _ -> ()) ~seed ~budget () =
  let rng = Random.State.make [| seed |] in
  let rec go i =
    if i >= budget then { tested = budget; finding = None }
    else begin
      let h = Gen.generate rng in
      log (Printf.sprintf "[%d/%d] %s" (i + 1) budget h.Gen.label);
      match check ?eps ?replay ~engines h.Gen.instance with
      | None -> go (i + 1)
      | Some violation ->
        let shrunk = shrink ?eps ?replay violation h.Gen.instance in
        {
          tested = i + 1;
          finding = Some { label = h.Gen.label; instance = h.Gen.instance; violation; shrunk };
        }
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Harness self-test: inject a perturbed-phi mutant, catch it, shrink  *)
(* ------------------------------------------------------------------ *)

(* Zeroing every phi write-back "forgets" the potential: decisions after
   the first write on an edge are made against a flattened landscape, so
   on reused edges (rank-3 rings, chords) the mutant eventually picks a
   value that is unjustifiable under the honest potential — exactly what
   the independent replay must catch. A uniform nonzero gain would be
   too tame: it cancels out of the rank-2 ranking entirely. *)
let self_test_mutation = { Replay.phi_gain = 0.0; choose_worst = false }

let mutant_engine =
  let cached = ref None in
  fun () ->
    match !cached with
    | Some t -> t
    | None ->
      let t =
        Solver.register ~name:mutant_name
          ~doc:
            "fault-injected clone of fix3 with a perturbed phi update — exists so the fuzz \
             harness can prove it catches broken fixers (see DESIGN.md §8); never use for \
             solving"
          ~caps:
            {
              Solver.max_rank = Some 3;
              exact = false;
              distributed = false;
              randomized = false;
              claims_pstar = false;
            }
          (fun _params inst ->
            let result = lazy (Replay.run_mutant self_test_mutation inst) in
            let steps_of tr =
              List.map
                (fun (var, value) ->
                  { Solver.var; value; incs = []; srep_violation = None })
                tr
            in
            {
              Solver.advance =
                (fun () ->
                  ignore (Lazy.force result);
                  false);
              peek_assignment =
                (fun () ->
                  if Lazy.is_val result then fst (Lazy.force result)
                  else Assignment.empty (Instance.num_vars inst));
              peek_trace =
                (fun () -> if Lazy.is_val result then steps_of (snd (Lazy.force result)) else []);
              finish =
                (fun () ->
                  let assignment, tr = Lazy.force result in
                  {
                    Solver.assignment;
                    trace = steps_of tr;
                    rounds = None;
                    pstar = None;
                    max_violation = None;
                    detail = [ ("mutation", "phi_gain=0") ];
                  });
            })
      in
      cached := Some t;
      t

let self_test ?eps ?(seed = 7) ?(budget = 50) ?log () =
  run ?eps ?log ~engines:[ mutant_engine () ] ~seed ~budget ()

(* ------------------------------------------------------------------ *)
(* Reproducer dump                                                     *)
(* ------------------------------------------------------------------ *)

let dump_reproducer path finding =
  Serial.save path finding.shrunk;
  path

(* Reproducers as first-class store artifacts: content-addressed, so
   re-finding the same shrunk instance dedupes, and any layer reloads
   it by key ([solve file=<path>] converges on the same cache entry). *)
let dump_reproducer_store store finding =
  let digest = Lll_store.Store.put_blob store finding.shrunk in
  (digest, Filename.concat (Option.get (Lll_store.Store.dir store)) (digest ^ ".lllbin"))
