(** Independent replay of a fixing-process trace against property P*
    (Definition 3.1).

    Given only the [(variable, value)] choices of a trace, re-derive
    the exact Inc ratios and the honest phi potential from the instance
    and check every step: rank-1 Inc at most 1, the rank-2 phi budget,
    rank-3 scaled triples in [S_rep] with valid decompositions, and the
    P* conditional-probability bound on every affected event. Nothing
    the engine reports is trusted. *)

module Instance = Lll_core.Instance

type failure = { step_index : int; var : int; reason : string }

val pp_failure : Format.formatter -> failure -> unit

val check_trace : ?eps:float -> Instance.t -> (int * int) list -> failure option
(** First step at which the trace stops being justifiable under the
    honest potential, or [None] if every step checks out. [eps]
    (default {!Lll_core.Srep.default_eps}) absorbs float phi rounding;
    Inc ratios and probabilities are exact. Sound for engines following
    the Fix_rank2 / Fix_rank3 update discipline on rank-[<= 3]
    instances. *)

type mutation = { phi_gain : float; choose_worst : bool }
(** Fault injection for the harness self-test: [phi_gain] scales every
    phi write-back ([0.0] "forgets" the potential — the classic
    dropped-update bug), [choose_worst] maximises instead of minimising
    the per-step score. *)

val honest : mutation
(** [{ phi_gain = 1.0; choose_worst = false }] — no fault: exactly the
    Fix_rank3 discipline. *)

val run_mutant : mutation -> Instance.t -> Lll_prob.Assignment.t * (int * int) list
(** Run the (possibly faulty) forward fixing process over all variables
    in id order; returns the final assignment and the trace.
    @raise Invalid_argument on instances of rank > 3. *)
