(** Adversarial instance generator: tiny instances biased towards the
    sharp-threshold boundary.

    Bad sets are greedily packed against [p = 2^-d] (strictly below, at,
    or just above); variable distributions include degenerate
    non-uniform rationals and odd arities; structures place variables at
    exactly rank 1, 2 and 3. See DESIGN.md §8. *)

module Instance = Lll_core.Instance

type placement = Just_below | At_threshold | Just_above

val placement_label : placement -> string

type hostile = { label : string; instance : Instance.t }
(** A generated instance tagged with its structure / size / placement
    (e.g. ["ring3/n=7/at"]) for fuzz-run logs and reproducer names. *)

val generate : Random.State.t -> hostile
(** One hostile instance (4-24 events): usually a greedily packed
    synthetic structure, one time in five a threshold-pinned
    {!sinkless} instance. Consumes randomness only from the given
    state, so a fuzz run is reproducible from its seed. *)

val sinkless : Random.State.t -> hostile
(** A sinkless-orientation instance pinned to the threshold by
    construction: binary (exactly [p = 2^-d]) or ternary relaxed
    (strictly below), on a cycle, a random cubic graph, or the
    girth-6 cubic graphs of the lower-bound construction
    ({!Lll_graph.Generators.random_regular_girth}). *)

val instance_on : Random.State.t -> placement -> Lll_graph.Hypergraph.t -> Instance.t
(** Hostile distributions and threshold-packed bad sets on an explicit
    hypergraph structure (exposed for targeted tests). *)
