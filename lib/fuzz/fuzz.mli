(** The adversarial fuzz harness over the solver registry: hostile
    instances from {!Gen}, a cross-check matrix per engine under both
    probability backends, independent P* replay ({!Replay}), greedy
    shrinking ({!Shrink}) and Serialize-v2 reproducer dumps. See
    DESIGN.md §8. *)

module Instance = Lll_core.Instance
module Solver = Lll_core.Solver

(** {1 Violations} *)

type violation =
  | Backend_mismatch of { engine : string }
      (** final assignments differ between [Enum] and [Table] *)
  | Guarantee_failed of { engine : string; violated : int list }
      (** the guarantee predicate holds but the report is not [ok] *)
  | Pstar_broken of { engine : string; failure : Replay.failure }
      (** the independent P* replay rejected a trace step *)
  | Engine_crashed of { engine : string; exn : string }

val violation_engine : violation -> string
val pp_violation : Format.formatter -> violation -> unit

(** {1 The cross-check matrix} *)

val default_replay_engines : string list
(** Engines whose traces follow the Fix_rank2/Fix_rank3 update
    discipline modelled by {!Replay.check_trace}. *)

val check :
  ?eps:float ->
  ?replay:(string -> bool) ->
  engines:Solver.t list ->
  Instance.t ->
  violation option
(** Run every applicable engine of [engines] on the instance under both
    backends and return the first violation found, if any. *)

val shrink : ?eps:float -> ?replay:(string -> bool) -> violation -> Instance.t -> Instance.t
(** Greedily minimise the instance while the violating engine keeps
    tripping the cross-check. *)

(** {1 The geometry oracle} *)

val geometry_check : ?eps:float -> float * float * float -> string option
(** For a triple accepted by [Srep.mem]: the constructive decomposition
    must be a valid witness reproducing [(a, b)] and attaining [c] (up
    to boundary clamping). Returns a reason on disagreement. *)

val fuzz_geometry :
  ?eps:float -> seed:int -> samples:int -> unit -> ((float * float * float) * string) option
(** Feed {!geometry_check} with triples hugging the incurved surface
    ({!Lll_core.Srep.random_near_boundary}). *)

(** {1 The fuzz loop} *)

type finding = {
  label : string;  (** generator label of the original instance *)
  instance : Instance.t;  (** the instance as generated *)
  violation : violation;
  shrunk : Instance.t;  (** greedily minimised reproducer *)
}

type outcome = { tested : int; finding : finding option }

val run :
  ?eps:float ->
  ?replay:(string -> bool) ->
  ?engines:Solver.t list ->
  ?log:(string -> unit) ->
  seed:int ->
  budget:int ->
  unit ->
  outcome
(** Generate up to [budget] hostile instances and stop at the first
    violation, shrinking it. Reproducible from [seed]. *)

val dump_reproducer : string -> finding -> string
(** Save the shrunk reproducer in the Serialize v2 instance format;
    returns the path ([lll_cli solve/criteria --file] reload it). *)

val dump_reproducer_store : Lll_store.Store.t -> finding -> string * string
(** Persist the shrunk reproducer as a content-addressed binary
    artifact in the store; returns [(digest, path)]. Requires a
    disk-backed store ([Store.create ~dir]). *)

(** {1 Harness self-test} *)

val mutant_name : string
(** ["fix3-mutant-phi"] — the registry name of the fault-injected
    engine. *)

val self_test_mutation : Replay.mutation

val mutant_engine : unit -> Solver.t
(** Register (once) and return the fault-injected clone of the rank-3
    fixer: a perturbed, asymmetric phi write-back
    ({!self_test_mutation}). Its runs look deterministic and complete,
    so only the independent cross-checks can expose it. *)

val self_test : ?eps:float -> ?seed:int -> ?budget:int -> ?log:(string -> unit) -> unit -> outcome
(** Fuzz the mutant engine only. A healthy harness returns a finding
    (the injected fault is caught and shrunk); [None] in [finding]
    means the harness itself lost its teeth. *)
