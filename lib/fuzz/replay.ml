(* Independent replay of a fixing-process trace against property P*
   (Definition 3.1).

   The solver trace tells us only which variable was fixed to which
   value; everything else — the exact Inc ratios, the phi potential, the
   representable triples and their decompositions — is re-derived here
   from the instance, using the same update discipline as the paper's
   fixers (Fix_rank2 / Fix_rank3). Nothing the engine reports is
   trusted: if an engine's internal phi bookkeeping is wrong, its value
   choices stop being justifiable under the *honest* potential and the
   replay flags the first offending step.

   The checks per step, in order:
   - the step fixes a live in-range variable to an in-range value;
   - rank 1: the chosen value's Inc ratio is at most 1;
   - rank 2: the phi-weighted Inc score is within the edge budget
     [phi_e^u + phi_e^v] (Section 3.1, weighted form);
   - rank 3: the scaled triple lies in S_rep (Lemma 3.2) and its
     constructive decomposition (Lemma 3.5) is a valid witness;
   - after the fix, every affected event's exact conditional probability
     is bounded by its initial probability times its phi product — the
     P* event bound itself.

   Inc ratios and conditional probabilities are exact rationals
   (Cond_tracker); only phi is float, with the library-wide [eps]
   absorbing its rounding, exactly as in the fixers. *)

module Rat = Lll_num.Rat
module Graph = Lll_graph.Graph
module Space = Lll_prob.Space
module Var = Lll_prob.Var
module Assignment = Lll_prob.Assignment
module Instance = Lll_core.Instance
module Srep = Lll_core.Srep

type failure = { step_index : int; var : int; reason : string }

let pp_failure ppf f =
  Format.fprintf ppf "step %d (var %d): %s" f.step_index f.var f.reason

(* ------------------------------------------------------------------ *)
(* Shared replay state: exact conditionals + honest float phi          *)
(* ------------------------------------------------------------------ *)

type state = {
  inst : Instance.t;
  tracker : Space.Cond_tracker.tracker;
  g : Graph.t;
  phi : float array array; (* edge id -> [| side of min endpoint; side of max |] *)
  initial : Rat.t array;
}

let make_state inst =
  let g = Instance.dep_graph inst in
  {
    inst;
    tracker = Space.Cond_tracker.create (Instance.space inst) (Instance.events inst);
    g;
    phi = Array.init (Graph.m g) (fun _ -> [| 1.0; 1.0 |]);
    initial = Instance.initial_probs inst;
  }

let side g e v =
  let u, _ = Graph.endpoints g e in
  if v = u then 0 else 1

let phi st e v = st.phi.(e).(side st.g e v)
let set_phi st e v x = st.phi.(e).(side st.g e v) <- x

let inc_vector st ev ~var =
  let after, before = Space.Cond_tracker.prob_vector st.tracker ev ~var in
  Array.map (fun a -> if Rat.is_zero before then Rat.zero else Rat.div a before) after

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

(* P* event bound for the events affected by the step just taken. *)
let event_bound_failure st ~eps ~step_index ~var evs =
  let rec scan k =
    if k >= Array.length evs then None
    else begin
      let ev = evs.(k) in
      let bound =
        List.fold_left
          (fun acc eid -> acc *. phi st eid ev)
          (Rat.to_float st.initial.(ev))
          (Graph.incident_edges st.g ev)
      in
      let p = Rat.to_float (Space.Cond_tracker.prob st.tracker ev) in
      if p > bound +. eps then
        Some
          {
            step_index;
            var;
            reason =
              Printf.sprintf "event %d: conditional probability %.9g exceeds P* bound %.9g" ev
                p bound;
          }
      else scan (k + 1)
    end
  in
  scan 0

let check_trace ?(eps = Srep.default_eps) inst steps =
  let st = make_state inst in
  let nvars = Instance.num_vars inst in
  let fail step_index var reason = Some { step_index; var; reason } in
  let rec go i = function
    | [] -> None
    | (vid, y) :: rest ->
      if vid < 0 || vid >= nvars then fail i vid "variable id out of range"
      else if Assignment.is_fixed (Space.Cond_tracker.assignment st.tracker) vid then
        fail i vid "variable fixed twice"
      else begin
        let arity = Var.arity (Space.var (Instance.space inst) vid) in
        if y < 0 || y >= arity then fail i vid "value out of range"
        else begin
          let evs = Instance.events_of_var inst vid in
          let step_failure =
            match Array.to_list evs with
            | [] -> None
            | [ u ] ->
              (* rank 1: the event bound is unchanged, so the chosen
                 Inc must not scale the probability up *)
              let inc = Rat.to_float (inc_vector st u ~var:vid).(y) in
              if inc > 1. +. eps then
                fail i vid (Printf.sprintf "rank-1 step scales event %d by Inc %.9g > 1" u inc)
              else None
            | [ u; v ] ->
              let e = Graph.find_edge_exn st.g u v in
              let s = phi st e u and w = phi st e v in
              let iu = (inc_vector st u ~var:vid).(y) in
              let iv = (inc_vector st v ~var:vid).(y) in
              let score = (Rat.to_float iu *. s) +. (Rat.to_float iv *. w) in
              if score > s +. w +. eps then
                fail i vid
                  (Printf.sprintf "rank-2 budget broken: score %.9g > phi budget %.9g" score
                     (s +. w))
              else begin
                set_phi st e u (Rat.to_float iu *. s);
                set_phi st e v (Rat.to_float iv *. w);
                None
              end
            | [ u; v; w ] ->
              let e = Graph.find_edge_exn st.g u v in
              let e' = Graph.find_edge_exn st.g u w in
              let e'' = Graph.find_edge_exn st.g v w in
              let a = phi st e u *. phi st e' u in
              let b = phi st e v *. phi st e'' v in
              let c = phi st e' w *. phi st e'' w in
              let iu = (inc_vector st u ~var:vid).(y) in
              let iv = (inc_vector st v ~var:vid).(y) in
              let iw = (inc_vector st w ~var:vid).(y) in
              let scaled =
                (Rat.to_float iu *. a, Rat.to_float iv *. b, Rat.to_float iw *. c)
              in
              let viol = Srep.violation scaled in
              if viol > eps then
                fail i vid
                  (Printf.sprintf "scaled triple left S_rep: violation %.3g > eps" viol)
              else begin
                let d = Srep.decompose scaled in
                if not (Srep.is_valid_decomposition ~eps d) then
                  fail i vid "decomposition of the scaled triple is not a valid witness"
                else begin
                  set_phi st e u d.a1;
                  set_phi st e' u d.a2;
                  set_phi st e v d.b1;
                  set_phi st e'' v d.b3;
                  set_phi st e' w d.c2;
                  set_phi st e'' w d.c3;
                  None
                end
              end
            | _ -> fail i vid "rank > 3: the replay checker does not model this engine"
          in
          match step_failure with
          | Some _ as f -> f
          | None -> (
            Space.Cond_tracker.fix st.tracker ~var:vid ~value:y;
            match event_bound_failure st ~eps ~step_index:i ~var:vid evs with
            | Some _ as f -> f
            | None -> go (i + 1) rest)
        end
      end
  in
  go 0 steps

(* ------------------------------------------------------------------ *)
(* Fault injection: a fixer clone with a perturbed phi update          *)
(* ------------------------------------------------------------------ *)

type mutation = { phi_gain : float; choose_worst : bool }

let honest = { phi_gain = 1.0; choose_worst = false }

(* A forward fixing run sharing the replay's honest machinery except for
   the injected faults: [phi_gain] scales every phi write-back (the
   S_rep violation is not scale-invariant, so inflated potentials skew
   future value rankings until a pick stops being justifiable under the
   honest potential), and [choose_worst] flips the value selection from
   minimising to maximising the score. With [honest] this is precisely
   the Fix_rank3 discipline. *)
let run_mutant mutation inst =
  if Instance.rank inst > 3 then invalid_arg "Replay.run_mutant: instance has rank > 3";
  let st = make_state inst in
  let n = Instance.num_vars inst in
  let steps = ref [] in
  for vid = 0 to n - 1 do
    let arity = Var.arity (Space.var (Instance.space inst) vid) in
    let pick score_of =
      let best = ref (0, score_of 0) in
      for y = 1 to arity - 1 do
        let s = score_of y in
        let better = if mutation.choose_worst then s > snd !best else s < snd !best in
        if better then best := (y, s)
      done;
      fst !best
    in
    let y =
      match Array.to_list (Instance.events_of_var inst vid) with
      | [] -> 0
      | [ u ] ->
        let iu = inc_vector st u ~var:vid in
        pick (fun y -> Rat.to_float iu.(y))
      | [ u; v ] ->
        let e = Graph.find_edge_exn st.g u v in
        let s = phi st e u and w = phi st e v in
        let iu = inc_vector st u ~var:vid in
        let iv = inc_vector st v ~var:vid in
        let y = pick (fun y -> (Rat.to_float iu.(y) *. s) +. (Rat.to_float iv.(y) *. w)) in
        set_phi st e u (mutation.phi_gain *. Rat.to_float iu.(y) *. s);
        set_phi st e v (mutation.phi_gain *. Rat.to_float iv.(y) *. w);
        y
      | [ u; v; w ] ->
        let e = Graph.find_edge_exn st.g u v in
        let e' = Graph.find_edge_exn st.g u w in
        let e'' = Graph.find_edge_exn st.g v w in
        let a = phi st e u *. phi st e' u in
        let b = phi st e v *. phi st e'' v in
        let c = phi st e' w *. phi st e'' w in
        let iu = inc_vector st u ~var:vid in
        let iv = inc_vector st v ~var:vid in
        let iw = inc_vector st w ~var:vid in
        let triple_of y =
          (Rat.to_float iu.(y) *. a, Rat.to_float iv.(y) *. b, Rat.to_float iw.(y) *. c)
        in
        let y = pick (fun y -> Srep.violation (triple_of y)) in
        let d = Srep.decompose (triple_of y) in
        let g = mutation.phi_gain in
        set_phi st e u (g *. d.a1);
        set_phi st e' u (g *. d.a2);
        set_phi st e v (g *. d.b1);
        set_phi st e'' v (g *. d.b3);
        set_phi st e' w (g *. d.c2);
        set_phi st e'' w (g *. d.c3);
        y
      | _ -> assert false
    in
    Space.Cond_tracker.fix st.tracker ~var:vid ~value:y;
    steps := (vid, y) :: !steps
  done;
  (Space.Cond_tracker.assignment st.tracker, List.rev !steps)
