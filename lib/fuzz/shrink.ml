(* Greedy shrinking of a violating instance.

   The instance is decomposed into plain data (distributions as exact
   rational vectors, events as scope + explicit bad tuples — the same
   shape Serialize v2 writes), then mutated with four reducers:

   - drop an event;
   - shrink a variable's domain by its last value (renormalising the
     distribution exactly and filtering the bad tuples);
   - replace a non-uniform distribution by the uniform one of the same
     arity;
   - drop variables no event's scope mentions.

   Each reducer strictly decreases the measure
   [#events + #vars + sum of arities + #non-uniform vars], so the greedy
   loop — apply the first reducer whose result still reproduces the
   violation, restart — terminates. The caller's [reproduces] predicate
   decides what "still violating" means (typically: the failing engine
   still trips the fuzz cross-check). *)

module Rat = Lll_num.Rat
module Var = Lll_prob.Var
module Event = Lll_prob.Event
module Space = Lll_prob.Space
module Instance = Lll_core.Instance
module Serial = Lll_core.Serial

type proto = {
  dists : Rat.t array array; (* per variable: exact probability vector *)
  events : (int array * int list list) array; (* scope, bad tuples in scope order *)
}

let proto_of inst =
  let space = Instance.space inst in
  {
    dists = Array.map Var.probs (Space.vars space);
    events =
      Array.map
        (fun e -> (Event.scope e, Serial.bad_tuples space e))
        (Instance.events inst);
  }

(* Rebuild; [None] when a reducer produced something the constructors
   reject (empty space, empty domain, ...). *)
let instance_of p =
  try
    let vars =
      Array.mapi (fun i d -> Var.make ~id:i ~name:(Printf.sprintf "x%d" i) d) p.dists
    in
    let space = Space.create vars in
    let events =
      Array.mapi
        (fun i (scope, bad) -> Event.of_bad_set ~id:i ~name:(Printf.sprintf "E%d" i) ~scope bad)
        p.events
    in
    Some (Instance.create space events)
  with Invalid_argument _ -> None

(* ------------------------------------------------------------------ *)
(* Reducers                                                            *)
(* ------------------------------------------------------------------ *)

let drop_event p i =
  if Array.length p.events <= 1 then None
  else
    Some
      {
        p with
        events =
          Array.of_list
            (List.filteri (fun j _ -> j <> i) (Array.to_list p.events));
      }

let is_uniform d = Array.for_all (fun x -> Rat.equal x d.(0)) d

let uniformize_var p v =
  let k = Array.length p.dists.(v) in
  if is_uniform p.dists.(v) then None
  else begin
    let dists = Array.copy p.dists in
    dists.(v) <- Array.make k (Rat.of_ints 1 k);
    Some { p with dists }
  end

(* Drop the last value of [v]'s domain, renormalising exactly (the kept
   mass divides out, so the result still sums to 1 in Q) and filtering
   the bad tuples that mention the dropped value. *)
let shrink_domain p v =
  let k = Array.length p.dists.(v) in
  if k <= 1 then None
  else begin
    let kept = Array.sub p.dists.(v) 0 (k - 1) in
    let mass = Rat.sum (Array.to_list kept) in
    let dists = Array.copy p.dists in
    dists.(v) <- Array.map (fun x -> Rat.div x mass) kept;
    let events =
      Array.map
        (fun (scope, bad) ->
          let positions = ref [] in
          Array.iteri (fun pos vid -> if vid = v then positions := pos :: !positions) scope;
          let positions = !positions in
          let bad =
            List.filter
              (fun tuple -> List.for_all (fun pos -> List.nth tuple pos < k - 1) positions)
              bad
          in
          (scope, bad))
        p.events
    in
    Some { dists; events }
  end

(* Remove variables no scope mentions, remapping ids (monotone, so
   scopes stay sorted and tuple order is preserved). *)
let drop_unused_vars p =
  let nv = Array.length p.dists in
  let used = Array.make nv false in
  Array.iter (fun (scope, _) -> Array.iter (fun v -> used.(v) <- true) scope) p.events;
  if Array.for_all Fun.id used then None
  else begin
    let remap = Array.make nv (-1) in
    let next = ref 0 in
    for v = 0 to nv - 1 do
      if used.(v) then begin
        remap.(v) <- !next;
        incr next
      end
    done;
    let dists =
      Array.of_list
        (List.filteri (fun v _ -> used.(v)) (Array.to_list p.dists))
    in
    let events =
      Array.map (fun (scope, bad) -> (Array.map (fun v -> remap.(v)) scope, bad)) p.events
    in
    Some { dists; events }
  end

let candidates p =
  let nv = Array.length p.dists and ne = Array.length p.events in
  List.concat
    [
      List.init ne (fun i () -> drop_event p i);
      [ (fun () -> drop_unused_vars p) ];
      List.init nv (fun v () -> shrink_domain p v);
      List.init nv (fun v () -> uniformize_var p v);
    ]

(* ------------------------------------------------------------------ *)
(* The greedy loop                                                     *)
(* ------------------------------------------------------------------ *)

let minimize ~reproduces inst =
  let rec loop p current =
    let rec try_candidates = function
      | [] -> current
      | gen :: rest -> (
        match gen () with
        | None -> try_candidates rest
        | Some p' -> (
          match instance_of p' with
          | None -> try_candidates rest
          | Some i' -> if reproduces i' then loop p' i' else try_candidates rest))
    in
    try_candidates (candidates p)
  in
  loop (proto_of inst) inst
