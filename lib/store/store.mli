(** The content-addressed instance artifact store: the one acquisition
    path from generation specs to built instances, shared by the
    scenario runner, the solve service, the CLI, bench and fuzz.

    Tiering: memory (the build-once LRU {!Memcache}) over disk
    (checksummed [.lllbin] v3 containers named by spec digest, loaded
    via mmap) over generation ({!Spec.build}, then an atomic
    temp-and-rename artifact write). Concurrent requests for one
    missing key materialize it exactly once; a corrupt or truncated
    artifact is quarantined (renamed to [.bad]) and regenerated instead
    of crashing the caller.

    Key schema: [spec:<digest>] for generator-described instances
    (digest of the canonical {!Spec.to_string} line), [blob:<md5>] for
    uploaded bodies, [file-v3:<fingerprint>] / [file:<md5>] for ad-hoc
    server-local files — except that a file naming a store artifact
    ([<digest>.lllbin] with its [.spec] sidecar) converges onto the
    [spec:] key of its sidecar, so [file=] and [spec=] requests share
    one cache entry. *)

type t

type source = [ `Mem | `Disk | `Built ]
(** Where a fetch was satisfied: memory tier (or another thread's
    in-flight build), disk artifact, or fresh generation. *)

type descr =
  | Of_spec of Spec.t  (** generator-described *)
  | Of_blob of string  (** serialized instance bytes (text or binary) *)
  | Of_file of string  (** server-local file path *)

type stats = {
  st_mem : Memcache.stats;
  st_built : int;  (** fresh generations run *)
  st_disk_hits : int;  (** artifact loads *)
  st_quarantined : int;  (** artifacts renamed to [.bad] *)
  st_girth : Lll_graph.Generators.girth_stats;
      (** girth-sampler work accumulated over every generation *)
}

type entry = { e_digest : string; e_spec : string option; e_bytes : int }

type gc_result = { gc_removed : int; gc_bytes : int; gc_kept : int }

val create : ?dir:string -> ?capacity:int -> ?metrics:Lll_local.Metrics.sink -> unit -> t
(** [dir] is the artifact directory (created if missing); without it the
    store is memory-only (generation still runs build-once, nothing
    persists). [capacity] bounds the memory tier. Generations that run
    the girth sampler emit one [phase = "girth-sample"] record to
    [metrics]: [round] = girth, [stepped] = restarts, [messages] =
    accepted swaps, [max_inbox] = reverts, [arena_occupancy] = rejected
    offers, [state_words] = n, [wall_ns] = generation time. *)

val dir : t -> string option

val fetch : t -> Spec.t -> Lll_core.Instance.t * source
(** The acquisition path. Memory hit, else artifact mmap load, else
    generate-and-publish. Thread-safe; concurrent misses on one spec
    build once. *)

val fetch_descr : t -> descr -> Lll_core.Instance.t * source
(** {!fetch} generalised to the serve layer's three description kinds.
    Blob and non-artifact file descriptions use the memory tier only;
    decode errors on files the store does not own propagate unchanged
    (no quarantine). *)

val descr_key : t -> descr -> string
(** The content key a description resolves to (see the key schema
    above) — the identity under which results are cached and memoized. *)

val materialize : t -> Spec.t -> string
(** Ensure the artifact exists on disk and return its path.
    @raise Invalid_argument on a store without a directory. *)

val put_blob : t -> Lll_core.Instance.t -> string
(** Persist an already-built instance (fuzz reproducers) as a
    content-addressed artifact; returns the digest. The artifact has no
    spec sidecar — it is addressed by blob content, and [file=] requests
    against it key by container fingerprint. *)

val ls : t -> entry list
val verify : t -> (string * [ `Ok | `Corrupt of string ]) list
(** Decode every artifact through the same checksummed path as a fetch;
    read-only (no quarantine). *)

val gc : ?all:bool -> t -> gc_result
(** Remove quarantined [.bad] files and stray temp files; with [all]
    also every artifact and sidecar. Unlinking does not disturb a
    reader that already mapped an artifact — it keeps its pages and
    loses only the name. *)

val stats : t -> stats
