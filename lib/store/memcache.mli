(** Mutex-guarded LRU cache keyed by content identity, safe to share
    across the worker pool. A hit returns the cached value with zero
    rebuild work; concurrent misses on one key run the build exactly
    once (per-key build locks — late arrivals park on a condition
    variable until the first builder publishes). *)

type 'v t

type stats = {
  s_size : int;  (** ready entries (in-flight builds excluded) *)
  s_capacity : int;
  s_hits : int;  (** includes threads served by another thread's build *)
  s_misses : int;  (** builds actually run *)
  s_evictions : int;
  s_waits : int;  (** threads that parked on an in-flight build *)
}

val create : capacity:int -> 'v t
(** @raise Invalid_argument when [capacity < 1]. *)

val content_key : string -> string
(** Content identity of an uploaded instance blob (digest-based). Spec
    described instances use their canonical parameter string directly. *)

val find_or_build : 'v t -> key:string -> build:(unit -> 'v) -> 'v * [ `Hit | `Miss ]
(** Return the cached value ([`Hit], this thread ran no build) or run
    [build], cache the result and return it ([`Miss]), evicting the
    least recently used ready entry when over capacity. A thread that
    arrives while another thread is building the same key blocks until
    that build publishes and reports [`Hit]; if the build raised, every
    waiter re-raises the builder's exception and the key is dropped (a
    later request retries). *)

val stats : 'v t -> stats
