(** The canonical, versioned generation-spec codec: the single source of
    truth for turning instance descriptions into strings, digests and
    built instances. Scenario corpus families, serve [spec=] workloads
    and the CLI generator all normalise into {!t}; the store names
    artifacts by {!digest} of the canonical string, so codec changes
    must bump the embedded version. *)

type t =
  | Ring of { n : int; seed : int; arity : int; at : bool }
      (** Rank-2 synthetic ring ([Synthetic.ring]), at or below threshold. *)
  | Rank of { n : int; seed : int; rank : int; delta : int; arity : int; at : bool }
      (** Synthetic family on a random [delta]-regular rank-[rank]
          hypergraph ([Synthetic.random]). *)
  | Sinkless of { n : int; seed : int; degree : int; girth : int; relaxed : bool }
      (** Sinkless orientation on a [degree]-regular graph; [girth >= 3]
          selects the girth-controlled sampler (the lower-bound
          structure), [girth = 0] the plain configuration model.
          [relaxed] is the ternary below-threshold variant. *)
  | Hyper of { n : int; seed : int; rank : int; degree : int }
      (** Hypergraph multi-orientation on a random regular hypergraph. *)
  | Weak_split of { n : int; seed : int; degree : int }
      (** Relaxed weak splitting on a biregular bipartite structure. *)

exception Malformed of string

val to_string : t -> string
(** Canonical one-line rendering; injective (distinct specs render
    distinct strings — family tag plus fixed field order). *)

val of_string : string -> t
(** Inverse of {!to_string}; rejects non-canonical renderings so string
    and digest always agree. @raise Malformed otherwise. *)

val digest : t -> string
(** Hex content digest of the canonical string: the artifact name in a
    store directory. *)

val key : t -> string
(** Cache key ["spec:<digest>"]. *)

val build : ?gen_stats:Lll_graph.Generators.girth_stats -> t -> Lll_core.Instance.t
(** Generate the instance (deterministic in the spec). [gen_stats]
    accumulates girth-sampler restart/swap counters when the spec uses
    the girth-controlled sampler. *)

val family_name : t -> string
val size : t -> int
val seed : t -> int

val families : string list
(** The serve-protocol family vocabulary (["ring"; "rank3"; "sinkless";
    "sinkless-relaxed"; "hyper"; "weak-splitting"]). *)

val of_family_params :
  family:string -> n:int -> degree:int -> seed:int -> at_threshold:bool -> t
(** Map the protocol/CLI family vocabulary onto specs (fixed arities as
    in PR 8's workload builder). @raise Invalid_argument on an unknown
    family. *)
