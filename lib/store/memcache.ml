(* The mutex-guarded build-once LRU: the store's memory tier, and (as
   the re-exported [Lll_serve.Cache]) the cache behind the solve
   service.

   Keys are content identifiers: for generator-described instances the
   canonical parameter spec, for uploaded blobs an MD5 digest of the
   bytes ([content_key]), for server-local files the container
   fingerprint. Values are whatever the scheduler wants to reuse — the
   instance cache stores fully built [Instance.t]s (space with installed
   tables, dependency graph, hypergraph), the response cache stores
   finished solve results — so a hit skips every parse/compile/rebuild
   step; that is the "zero instance-rebuild work" the service promises
   for repeat requests.

   Concurrency discipline (the worker pool makes every operation
   multi-threaded):

   - One cache-wide [Mutex.t] guards the table, the logical clock and
     the counters. It is held only for table bookkeeping, never while a
     value is being built.
   - A miss installs a [Pending] slot and runs [build] OUTSIDE the
     lock. Every other thread asking for the same key while the build
     is in flight blocks on the slot's condition variable instead of
     duplicating the build — two connections requesting the same
     uncached instance build it exactly once, the per-key build lock of
     DESIGN §13.
   - A failing build removes its slot, wakes the waiters, and each
     waiter re-raises the builder's exception (a later request retries
     from scratch).

   Eviction is by minimum last-use tick over the [Ready] entries (an
   O(capacity) scan — capacities are tens of instances, each worth
   megabytes, so the scan never matters). [Pending] slots are never
   evicted: threads are parked on them. *)

type 'v slot =
  | Ready of { mutable value : 'v; mutable tick : int }
  | Pending of 'v pending

and 'v pending = {
  cond : Condition.t;
  mutable outcome : ('v, exn) result option; (* None while the build runs *)
}

type 'v t = {
  capacity : int;
  mutex : Mutex.t;
  tbl : (string, 'v slot) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable waits : int; (* threads that parked on an in-flight build *)
}

type stats = {
  s_size : int;
  s_capacity : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_waits : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    mutex = Mutex.create ();
    tbl = Hashtbl.create 16;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    waits = 0;
  }

let content_key blob = "blob:" ^ Digest.to_hex (Digest.string blob)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* callers hold [t.mutex] *)
let ready_size t =
  Hashtbl.fold (fun _ s n -> match s with Ready _ -> n + 1 | Pending _ -> n) t.tbl 0

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key slot ->
      match slot with
      | Pending _ -> ()
      | Ready e -> (
        match !victim with
        | Some (_, best) when best <= e.tick -> ()
        | _ -> victim := Some (key, e.tick)))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1

(* [`Hit] means the value came straight out of the cache (or out of a
   build another thread was already running) — this thread ran no build;
   [`Miss] means this thread ran [build] (and the result is now
   cached). *)
let find_or_build t ~key ~build =
  let action =
    locked t (fun () ->
        t.clock <- t.clock + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some (Ready e) ->
          e.tick <- t.clock;
          t.hits <- t.hits + 1;
          `Return e.value
        | Some (Pending p) ->
          t.waits <- t.waits + 1;
          `Wait p
        | None ->
          let p = { cond = Condition.create (); outcome = None } in
          Hashtbl.add t.tbl key (Pending p);
          t.misses <- t.misses + 1;
          `Build p)
  in
  match action with
  | `Return v -> (v, `Hit)
  | `Wait p ->
    let outcome =
      locked t (fun () ->
          while p.outcome = None do
            Condition.wait p.cond t.mutex
          done;
          (match p.outcome with Some (Ok _) -> t.hits <- t.hits + 1 | _ -> ());
          Option.get p.outcome)
    in
    (match outcome with Ok v -> (v, `Hit) | Error e -> raise e)
  | `Build p -> (
    let built = try Ok (build ()) with e -> Error e in
    locked t (fun () ->
        p.outcome <- Some built;
        (match built with
        | Ok v ->
          if ready_size t >= t.capacity then evict_lru t;
          Hashtbl.replace t.tbl key (Ready { value = v; tick = t.clock })
        | Error _ -> Hashtbl.remove t.tbl key);
        Condition.broadcast p.cond);
    match built with Ok v -> (v, `Miss) | Error e -> raise e)

let stats t =
  locked t (fun () ->
      {
        s_size = ready_size t;
        s_capacity = t.capacity;
        s_hits = t.hits;
        s_misses = t.misses;
        s_evictions = t.evictions;
        s_waits = t.waits;
      })
