(* The canonical generation-spec codec (see spec.mli).

   One versioned surface for every instance description the system
   generates — the scenario corpus families, the serve protocol's spec
   fields, and the CLI generator flags all normalise into [t] and share
   its canonical string, digest and builder. Before this module the
   spec-string logic lived three times (serve cache keys, serve workload
   keys, scenario in-process regeneration) and the artifact layers could
   not share materializations.

   Canonical form: every constructor renders all of its fields in a
   fixed order, so rendering is injective by construction (the family
   tag disambiguates across constructors, the field list within one).
   The [specv1:] prefix versions the codec: any change to field
   semantics must bump it, because store artifact names are digests of
   this string. *)

module Gen = Lll_graph.Generators
module Syn = Lll_core.Synthetic
module Sink = Lll_apps.Sinkless
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting

(* the application engines register themselves on first use; anything
   resolving solver names against a store-built instance needs them *)
let () = Lll_apps.App_engines.ensure_registered ()

type t =
  | Ring of { n : int; seed : int; arity : int; at : bool }
  | Rank of { n : int; seed : int; rank : int; delta : int; arity : int; at : bool }
  | Sinkless of { n : int; seed : int; degree : int; girth : int; relaxed : bool }
  | Hyper of { n : int; seed : int; rank : int; degree : int }
  | Weak_split of { n : int; seed : int; degree : int }

let version = 1

let bool_char b = if b then '1' else '0'

let to_string = function
  | Ring { n; seed; arity; at } ->
    Printf.sprintf "specv%d:ring;n=%d;s=%d;a=%d;at=%c" version n seed arity (bool_char at)
  | Rank { n; seed; rank; delta; arity; at } ->
    Printf.sprintf "specv%d:rank;n=%d;s=%d;r=%d;dl=%d;a=%d;at=%c" version n seed rank delta
      arity (bool_char at)
  | Sinkless { n; seed; degree; girth; relaxed } ->
    Printf.sprintf "specv%d:sinkless;n=%d;s=%d;d=%d;g=%d;rx=%c" version n seed degree girth
      (bool_char relaxed)
  | Hyper { n; seed; rank; degree } ->
    Printf.sprintf "specv%d:hyper;n=%d;s=%d;r=%d;d=%d" version n seed rank degree
  | Weak_split { n; seed; degree } ->
    Printf.sprintf "specv%d:weak-split;n=%d;s=%d;d=%d" version n seed degree

exception Malformed of string

let malformed s = raise (Malformed (Printf.sprintf "Spec.of_string: cannot parse %S" s))

let of_string s =
  let prefix = Printf.sprintf "specv%d:" version in
  if not (String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix)
  then malformed s;
  let rest = String.sub s (String.length prefix) (String.length s - String.length prefix) in
  let family, fields =
    match String.index_opt rest ';' with
    | None -> malformed s
    | Some i ->
      ( String.sub rest 0 i,
        String.split_on_char ';' (String.sub rest (i + 1) (String.length rest - i - 1)) )
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun field ->
      match String.index_opt field '=' with
      | Some i ->
        Hashtbl.replace tbl
          (String.sub field 0 i)
          (String.sub field (i + 1) (String.length field - i - 1))
      | None -> malformed s)
    fields;
  let int k =
    match Hashtbl.find_opt tbl k with
    | Some v -> ( try int_of_string v with _ -> malformed s)
    | None -> malformed s
  in
  let bool k =
    match Hashtbl.find_opt tbl k with
    | Some "1" -> true
    | Some "0" -> false
    | _ -> malformed s
  in
  let t =
    match family with
    | "ring" -> Ring { n = int "n"; seed = int "s"; arity = int "a"; at = bool "at" }
    | "rank" ->
      Rank
        {
          n = int "n";
          seed = int "s";
          rank = int "r";
          delta = int "dl";
          arity = int "a";
          at = bool "at";
        }
    | "sinkless" ->
      Sinkless
        { n = int "n"; seed = int "s"; degree = int "d"; girth = int "g"; relaxed = bool "rx" }
    | "hyper" -> Hyper { n = int "n"; seed = int "s"; rank = int "r"; degree = int "d" }
    | "weak-split" -> Weak_split { n = int "n"; seed = int "s"; degree = int "d" }
    | _ -> malformed s
  in
  (* round-trip check: rejects non-canonical renderings (extra fields,
     leading zeros) so a string and its spec digest always agree *)
  if to_string t <> s then malformed s;
  t

let digest t = Digest.to_hex (Digest.string (to_string t))
let key t = "spec:" ^ digest t

let family_name = function
  | Ring _ -> "ring"
  | Rank { rank; _ } -> Printf.sprintf "rank%d" rank
  | Sinkless { relaxed; _ } -> if relaxed then "sinkless-relaxed" else "sinkless"
  | Hyper _ -> "hyper"
  | Weak_split _ -> "weak-split"

let size = function
  | Ring { n; _ } | Rank { n; _ } | Sinkless { n; _ } | Hyper { n; _ } | Weak_split { n; _ } -> n

let seed = function
  | Ring { seed; _ }
  | Rank { seed; _ }
  | Sinkless { seed; _ }
  | Hyper { seed; _ }
  | Weak_split { seed; _ } -> seed

(* The serve protocol / CLI family vocabulary (PR 8's [Workload.families]
   kept verbatim so existing clients keep working). *)
let families = [ "ring"; "rank3"; "sinkless"; "sinkless-relaxed"; "hyper"; "weak-splitting" ]

let of_family_params ~family ~n ~degree ~seed ~at_threshold =
  match family with
  | "ring" -> Ring { n; seed; arity = 4; at = at_threshold }
  | "rank3" -> Rank { n; seed; rank = 3; delta = 2; arity = 8; at = at_threshold }
  | "sinkless" -> Sinkless { n; seed; degree; girth = 0; relaxed = false }
  | "sinkless-relaxed" -> Sinkless { n; seed; degree; girth = 0; relaxed = true }
  | "hyper" -> Hyper { n; seed; rank = 3; degree }
  | "weak-splitting" -> Weak_split { n; seed; degree = 3 }
  | f -> invalid_arg (Printf.sprintf "Spec.of_family_params: unknown family %S" f)

let position at = if at then Syn.At_threshold else Syn.Below_threshold

let build ?gen_stats t =
  match t with
  | Ring { n; seed; arity; at } -> Syn.ring ~position:(position at) ~seed ~n ~arity ()
  | Rank { n; seed; rank; delta; arity; at } ->
    Syn.random ~position:(position at) ~seed ~n ~rank ~delta ~arity ()
  | Sinkless { n; seed; degree; girth; relaxed } ->
    let g =
      if girth <= 0 then Gen.random_regular ~seed n degree
      else Gen.random_regular_girth ?stats:gen_stats ~seed ~girth n degree
    in
    if relaxed then Sink.relaxed_instance g else Sink.instance g
  | Hyper { n; seed; rank; degree } ->
    HO.instance (Gen.random_regular_hypergraph ~seed n rank degree)
  | Weak_split { n; seed; degree } ->
    WS.instance ~nv:n
      (Gen.random_biregular_bipartite ~seed ~nv:n ~nu:n ~deg_u:degree ~deg_v:degree)
