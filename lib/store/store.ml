(* The content-addressed instance artifact store (see store.mli).

   Tiers, inner to outer:

   1. Memory: a [Memcache.t] (the build-once LRU that previously lived
      as the serve layer's [Cache]) keyed by content key. Concurrent
      requests for one missing key run the tiers below exactly once;
      late arrivals park on the pending slot.
   2. Disk (when the store has a directory): checksummed binary v3
      containers named [<digest>.lllbin] with a [<digest>.spec] sidecar
      holding the canonical spec line. Hits load through the mmap read
      path, so a large artifact is shared page cache across processes.
   3. Generation: [Spec.build], after which the artifact is written
      atomically (temp file + rename) so a concurrent writer or a crash
      never leaves a half-written artifact under a live name.

   Corruption discipline: a failed checksum or decode on tier 2
   quarantines the artifact (rename to [.bad], kept for post-mortem)
   and falls through to tier 3 — a torn write or bit rot costs one
   regeneration, never a crash. Files outside the store directory
   (ad-hoc [file=] workloads) are NOT quarantined: the store does not
   own them, so decode errors propagate to the caller unchanged.

   [gc] unlinks artifacts with plain [Sys.remove]; a reader that already
   mapped the container keeps reading its pages (POSIX unlink semantics),
   it only loses the name — tested. *)

module Serial = Lll_core.Serial
module Instance = Lll_core.Instance
module Metrics = Lll_local.Metrics
module Bin = Lll_graph.Serialize.Bin
module Gen = Lll_graph.Generators

type source = [ `Mem | `Disk | `Built ]

type descr =
  | Of_spec of Spec.t
  | Of_blob of string
  | Of_file of string

type t = {
  dir : string option;
  mem : Instance.t Memcache.t;
  metrics : Metrics.sink;
  lock : Mutex.t; (* counters + girth totals *)
  girth : Gen.girth_stats; (* accumulated across every generation *)
  mutable built : int;
  mutable disk_hits : int;
  mutable quarantined : int;
  mutable tmp_seq : int;
}

type stats = {
  st_mem : Memcache.stats;
  st_built : int;
  st_disk_hits : int;
  st_quarantined : int;
  st_girth : Gen.girth_stats;
}

type entry = { e_digest : string; e_spec : string option; e_bytes : int }

let create ?dir ?(capacity = 32) ?(metrics = Metrics.disabled) () =
  Option.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755) dir;
  {
    dir;
    mem = Memcache.create ~capacity;
    metrics;
    lock = Mutex.create ();
    girth = Gen.fresh_girth_stats ();
    built = 0;
    disk_hits = 0;
    quarantined = 0;
    tmp_seq = 0;
  }

let dir t = t.dir

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let artifact_path ~dir digest = Filename.concat dir (digest ^ ".lllbin")
let sidecar_path ~dir digest = Filename.concat dir (digest ^ ".spec")

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publication: write under a unique temp name in the same
   directory, then rename over the final name. Two processes racing on
   one digest both succeed; bytes are identical by content addressing. *)
let publish t ~dir ~digest ~blob ~spec_line =
  let seq = locked t (fun () -> t.tmp_seq <- t.tmp_seq + 1; t.tmp_seq) in
  let tmp = Filename.concat dir (Printf.sprintf ".tmp-%d-%d-%s" (Unix.getpid ()) seq digest) in
  write_file tmp blob;
  Sys.rename tmp (artifact_path ~dir digest);
  match spec_line with
  | None -> ()
  | Some line ->
    let tmp_s = tmp ^ ".spec" in
    write_file tmp_s (line ^ "\n");
    Sys.rename tmp_s (sidecar_path ~dir digest)

let quarantine t path =
  (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ());
  locked t (fun () -> t.quarantined <- t.quarantined + 1)

(* Surface girth-sampler work through the metrics sink in round-record
   shape (field mapping documented in store.mli): corpus-growth runs see
   sampler cost per (n, girth) instead of it vanishing into wall-clock. *)
let note_generation t spec gs wall_ns =
  locked t (fun () ->
      t.built <- t.built + 1;
      t.girth.Gen.gs_attempts <- t.girth.Gen.gs_attempts + gs.Gen.gs_attempts;
      t.girth.Gen.gs_swaps <- t.girth.Gen.gs_swaps + gs.Gen.gs_swaps;
      t.girth.Gen.gs_reverts <- t.girth.Gen.gs_reverts + gs.Gen.gs_reverts;
      t.girth.Gen.gs_rejects <- t.girth.Gen.gs_rejects + gs.Gen.gs_rejects);
  if Metrics.enabled t.metrics && gs.Gen.gs_attempts > 0 then
    Metrics.record t.metrics
      {
        Metrics.round = (match spec with Spec.Sinkless { girth; _ } -> girth | _ -> 0);
        phase = "girth-sample";
        wall_ns;
        messages = gs.Gen.gs_swaps;
        stepped = gs.Gen.gs_attempts;
        halted_fraction = 0.;
        state_words = Spec.size spec;
        max_inbox = gs.Gen.gs_reverts;
        arena_occupancy = gs.Gen.gs_rejects;
        par_width = 0;
      }

let generate t spec =
  let gs = Gen.fresh_girth_stats () in
  let t0 = Metrics.now_ns () in
  let inst = Spec.build ~gen_stats:gs spec in
  note_generation t spec gs (Metrics.now_ns () - t0);
  inst

(* Tier 2 + 3 for a spec-described instance; runs inside the memcache's
   per-key build-once slot. *)
let acquire t spec source =
  match t.dir with
  | None ->
    source := `Built;
    generate t spec
  | Some dir -> (
    let digest = Spec.digest spec in
    let path = artifact_path ~dir digest in
    let from_disk () =
      if not (Sys.file_exists path) then None
      else
        match Serial.load_binary_mmap path with
        | inst ->
          locked t (fun () -> t.disk_hits <- t.disk_hits + 1);
          source := `Disk;
          Some inst
        | exception (Bin.Corrupt _ | Serial.Parse_error _ | Sys_error _ | End_of_file | Unix.Unix_error _) ->
          quarantine t path;
          None
    in
    match from_disk () with
    | Some inst -> inst
    | None ->
      source := `Built;
      let inst = generate t spec in
      publish t ~dir ~digest ~blob:(Serial.to_binary_string inst)
        ~spec_line:(Some (Spec.to_string spec));
      inst)

let fetch t spec =
  let source = ref `Mem in
  let inst, _ = Memcache.find_or_build t.mem ~key:(Spec.key spec) ~build:(fun () ->
      acquire t spec source)
  in
  (inst, !source)

(* [file=] convergence: a path that names a store artifact (basename
   [<digest>.lllbin] with a spec sidecar next to it) is keyed by its
   spec, so file- and spec-described requests share one cache entry. *)
let spec_of_artifact path =
  if Filename.check_suffix path ".lllbin" then begin
    let side = Filename.chop_suffix path ".lllbin" ^ ".spec" in
    if Sys.file_exists side then
      match String.trim (read_file side) with
      | line -> ( match Spec.of_string line with s -> Some s | exception Spec.Malformed _ -> None)
      | exception Sys_error _ -> None
    else None
  end
  else None

let descr_key (_ : t) = function
  | Of_spec spec -> Spec.key spec
  | Of_blob blob -> Memcache.content_key blob
  | Of_file path -> (
    match spec_of_artifact path with
    | Some spec -> Spec.key spec
    | None -> (
      match Serial.binary_fingerprint path with
      | Some fp -> "file-v3:" ^ fp
      | None -> "file:" ^ Digest.to_hex (Digest.file path)))

let fetch_descr t descr =
  match descr with
  | Of_spec spec -> fetch t spec
  | Of_blob blob ->
    let source = ref `Mem in
    let inst, _ =
      Memcache.find_or_build t.mem ~key:(Memcache.content_key blob) ~build:(fun () ->
          source := `Built;
          Serial.of_any_string blob)
    in
    (inst, !source)
  | Of_file path -> (
    match spec_of_artifact path with
    | Some spec -> fetch t spec
    | None ->
      let source = ref `Mem in
      let key, build =
        match Serial.binary_fingerprint path with
        | Some fp -> ("file-v3:" ^ fp, fun () -> Serial.load_binary_mmap path)
        | None -> ("file:" ^ Digest.to_hex (Digest.file path), fun () -> Serial.load_any path)
      in
      let inst, _ =
        Memcache.find_or_build t.mem ~key ~build:(fun () ->
            source := `Built;
            build ())
      in
      (inst, !source))

let require_dir t what =
  match t.dir with
  | Some dir -> dir
  | None -> invalid_arg (Printf.sprintf "Store.%s: store has no directory" what)

let materialize t spec =
  let dir = require_dir t "materialize" in
  let digest = Spec.digest spec in
  let path = artifact_path ~dir digest in
  if not (Sys.file_exists path) then ignore (fetch t spec : Instance.t * source);
  path

let put_blob t inst =
  let dir = require_dir t "put_blob" in
  let blob = Serial.to_binary_string inst in
  let digest = Digest.to_hex (Digest.string blob) in
  publish t ~dir ~digest ~blob ~spec_line:None;
  digest

let artifacts dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".lllbin" then Some (Filename.chop_suffix f ".lllbin")
         else None)
  |> List.sort String.compare

let ls t =
  let dir = require_dir t "ls" in
  List.map
    (fun digest ->
      let spec =
        let side = sidecar_path ~dir digest in
        if Sys.file_exists side then Some (String.trim (read_file side)) else None
      in
      let bytes = try (Unix.stat (artifact_path ~dir digest)).Unix.st_size with _ -> 0 in
      { e_digest = digest; e_spec = spec; e_bytes = bytes })
    (artifacts dir)

let verify t =
  let dir = require_dir t "verify" in
  List.map
    (fun digest ->
      let path = artifact_path ~dir digest in
      let status =
        match Serial.load_binary_mmap path with
        | (_ : Instance.t) -> `Ok
        | exception Bin.Corrupt msg -> `Corrupt msg
        | exception e -> `Corrupt (Printexc.to_string e)
      in
      (digest, status))
    (artifacts dir)

type gc_result = { gc_removed : int; gc_bytes : int; gc_kept : int }

let gc ?(all = false) t =
  let dir = require_dir t "gc" in
  let removed = ref 0 and bytes = ref 0 and kept = ref 0 in
  let rm path =
    (try
       bytes := !bytes + (Unix.stat path).Unix.st_size;
       Sys.remove path;
       incr removed
     with Unix.Unix_error _ | Sys_error _ -> ())
  in
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let base = Filename.basename f in
      let junk =
        Filename.check_suffix base ".bad"
        || String.length base > 4 && String.sub base 0 4 = ".tmp"
      in
      if junk then rm path
      else if Filename.check_suffix base ".lllbin" || Filename.check_suffix base ".spec" then
        if all then rm path else incr kept)
    (Sys.readdir dir);
  { gc_removed = !removed; gc_bytes = !bytes; gc_kept = !kept }

let stats t =
  let mem = Memcache.stats t.mem in
  locked t (fun () ->
      {
        st_mem = mem;
        st_built = t.built;
        st_disk_hits = t.disk_hits;
        st_quarantined = t.quarantined;
        st_girth =
          {
            Gen.gs_attempts = t.girth.Gen.gs_attempts;
            gs_swaps = t.girth.Gen.gs_swaps;
            gs_reverts = t.girth.Gen.gs_reverts;
            gs_rejects = t.girth.Gen.gs_rejects;
          };
      })
