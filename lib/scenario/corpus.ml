(* The threshold-pinned workload corpus (see corpus.mli).

   Family constructors are deterministic in (seed, n) — the regression
   baselines depend on it. Sizes must satisfy every structural
   constraint at once (n*d even for regular graphs, k | n*delta for the
   synthetic hypergraphs, the Moore bound for girth 6), which multiples
   of 12 above 24 do. *)

module Gen = Lll_graph.Generators
module Instance = Lll_core.Instance
module Syn = Lll_core.Synthetic
module Sink = Lll_apps.Sinkless
module WS = Lll_apps.Weak_splitting

type side = Below | At

type family = {
  name : string;
  side : side;
  rank : int;
  doc : string;
  build : seed:int -> int -> Instance.t;
}

let side_to_string = function Below -> "below" | At -> "at"

(* High-girth 3-regular graphs: the lower-bound structure. Girth 6 is
   comfortably feasible from n = 24 up and keeps the swap repair fast. *)
let sinkless_graph ~seed n = Gen.random_regular_girth ~seed ~girth:6 n 3

let all =
  [
    {
      name = "sinkless-at";
      side = At;
      rank = 2;
      doc = "sinkless orientation on girth>=6 3-regular graphs: p = 2^-d exactly";
      build = (fun ~seed n -> Sink.instance (sinkless_graph ~seed n));
    };
    {
      name = "sinkless-below";
      side = Below;
      rank = 2;
      doc = "relaxed (ternary) sinkless orientation: p = 3^-d, strictly below";
      build = (fun ~seed n -> Sink.relaxed_instance (sinkless_graph ~seed n));
    };
    {
      name = "ring-at";
      side = At;
      rank = 2;
      doc = "rank-2 synthetic ring, bad sets packed to p = 2^-d";
      build = (fun ~seed n -> Syn.ring ~position:Syn.At_threshold ~seed ~n ~arity:4 ());
    };
    {
      name = "ring-below";
      side = Below;
      rank = 2;
      doc = "rank-2 synthetic ring, largest p strictly below 2^-d";
      build = (fun ~seed n -> Syn.ring ~position:Syn.Below_threshold ~seed ~n ~arity:4 ());
    };
    {
      name = "rank3-at";
      side = At;
      rank = 3;
      doc = "rank-3 synthetic family (2-regular hypergraph, arity 8) at p = 2^-d";
      build =
        (fun ~seed n ->
          Syn.random ~position:Syn.At_threshold ~seed ~n ~rank:3 ~delta:2 ~arity:8 ());
    };
    {
      name = "rank3-below";
      side = Below;
      rank = 3;
      doc = "rank-3 synthetic family, largest p strictly below 2^-d";
      build =
        (fun ~seed n ->
          Syn.random ~position:Syn.Below_threshold ~seed ~n ~rank:3 ~delta:2 ~arity:8 ());
    };
    {
      name = "rank4-at";
      side = At;
      rank = 4;
      doc = "rank-4 synthetic family (2-regular hypergraph, arity 16) at p = 2^-d";
      build =
        (fun ~seed n ->
          Syn.random ~position:Syn.At_threshold ~seed ~n ~rank:4 ~delta:2 ~arity:16 ());
    };
    {
      name = "rank4-below";
      side = Below;
      rank = 4;
      doc = "rank-4 synthetic family, largest p strictly below 2^-d";
      build =
        (fun ~seed n ->
          Syn.random ~position:Syn.Below_threshold ~seed ~n ~rank:4 ~delta:2 ~arity:16 ());
    };
    {
      name = "weak-split-below";
      side = Below;
      rank = 3;
      doc = "relaxed weak splitting on 3-biregular bipartite structure (p = 16^(1-deg))";
      build =
        (fun ~seed n ->
          let adj = Gen.random_biregular_bipartite ~seed ~nv:n ~nu:n ~deg_u:3 ~deg_v:3 in
          WS.instance ~nv:n adj);
    };
  ]

let find name = List.find_opt (fun f -> f.name = name) all

(* CI-sized: the full sweep stays a few seconds. Experiment t16 passes
   a larger grid explicitly for the growth plots. *)
let default_grid = [ 24; 48; 96 ]
let default_seeds = [ 1; 2 ]
