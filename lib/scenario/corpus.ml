(* The threshold-pinned workload corpus (see corpus.mli).

   Family constructors are deterministic in (seed, n) — the regression
   baselines depend on it. Sizes must satisfy every structural
   constraint at once (n*d even for regular graphs, k | n*delta for the
   synthetic hypergraphs, the Moore bound for girth 6), which multiples
   of 12 above 24 do.

   Families describe themselves as canonical store specs; building,
   caching and artifact materialization all happen behind
   [Lll_store.Store.fetch] — the corpus owns no generation code. *)

module Spec = Lll_store.Spec

type side = Below | At

type family = {
  name : string;
  side : side;
  rank : int;
  doc : string;
  spec : seed:int -> int -> Spec.t;
}

let side_to_string = function Below -> "below" | At -> "at"

(* High-girth 3-regular graphs: the lower-bound structure. Girth 6 is
   comfortably feasible from n = 24 up and keeps the swap repair fast. *)
let sinkless ~relaxed ~seed n = Spec.Sinkless { n; seed; degree = 3; girth = 6; relaxed }

let all =
  [
    {
      name = "sinkless-at";
      side = At;
      rank = 2;
      doc = "sinkless orientation on girth>=6 3-regular graphs: p = 2^-d exactly";
      spec = sinkless ~relaxed:false;
    };
    {
      name = "sinkless-below";
      side = Below;
      rank = 2;
      doc = "relaxed (ternary) sinkless orientation: p = 3^-d, strictly below";
      spec = sinkless ~relaxed:true;
    };
    {
      name = "ring-at";
      side = At;
      rank = 2;
      doc = "rank-2 synthetic ring, bad sets packed to p = 2^-d";
      spec = (fun ~seed n -> Spec.Ring { n; seed; arity = 4; at = true });
    };
    {
      name = "ring-below";
      side = Below;
      rank = 2;
      doc = "rank-2 synthetic ring, largest p strictly below 2^-d";
      spec = (fun ~seed n -> Spec.Ring { n; seed; arity = 4; at = false });
    };
    {
      name = "rank3-at";
      side = At;
      rank = 3;
      doc = "rank-3 synthetic family (2-regular hypergraph, arity 8) at p = 2^-d";
      spec = (fun ~seed n -> Spec.Rank { n; seed; rank = 3; delta = 2; arity = 8; at = true });
    };
    {
      name = "rank3-below";
      side = Below;
      rank = 3;
      doc = "rank-3 synthetic family, largest p strictly below 2^-d";
      spec = (fun ~seed n -> Spec.Rank { n; seed; rank = 3; delta = 2; arity = 8; at = false });
    };
    {
      name = "rank4-at";
      side = At;
      rank = 4;
      doc = "rank-4 synthetic family (2-regular hypergraph, arity 16) at p = 2^-d";
      spec = (fun ~seed n -> Spec.Rank { n; seed; rank = 4; delta = 2; arity = 16; at = true });
    };
    {
      name = "rank4-below";
      side = Below;
      rank = 4;
      doc = "rank-4 synthetic family, largest p strictly below 2^-d";
      spec = (fun ~seed n -> Spec.Rank { n; seed; rank = 4; delta = 2; arity = 16; at = false });
    };
    {
      name = "weak-split-below";
      side = Below;
      rank = 3;
      doc = "relaxed weak splitting on 3-biregular bipartite structure (p = 16^(1-deg))";
      spec = (fun ~seed n -> Spec.Weak_split { n; seed; degree = 3 });
    };
  ]

let find name = List.find_opt (fun f -> f.name = name) all

(* CI-sized, but an order of magnitude past the PR 6 corpus now that
   warm sweeps load artifacts instead of regenerating: at n = 960 the
   at- vs below-threshold envelopes separate in the fits. Superlinear
   ablation engines are capped (see [Run.heavy_cutoff]) so the tail of
   the grid costs seconds, not minutes. *)
let default_grid = [ 24; 48; 96; 480; 960 ]
let default_seeds = [ 1; 2 ]

(* Offline growth grid (experiment t16, BENCH_pr10): same families, one
   decade further. Sinkless/ring sustain 96000 in seconds from a warm
   store; the synthetic hypergraph families stop at 9600 because the
   exact-table compile, not the store, dominates beyond that. *)
let deep_grid = [ 24; 48; 96; 480; 960; 9600 ]
