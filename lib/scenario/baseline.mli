(** Round-count regression baselines: a checked-in JSON artifact with a
    tolerance band per (family, engine, n), plus the sub-threshold O(1)
    witnesses the sharp-threshold story depends on.

    Policy (DESIGN.md §10): bands are derived from recorded
    measurements as [min - slack .. max + slack] with
    [slack = max(1, ceil(tolerance * max))]; a family on the [Below]
    side must keep at least one engine whose rounds never exceed
    {!o1_cap} across the whole grid. Everything is deterministic in the
    recorded (grid, seeds), so a check failure means the code changed
    behaviour, not noise. *)

type band = { lo : int; hi : int }

type entry = { e_family : string; e_engine : string; e_n : int; band : band }

type witness = { w_family : string; w_engine : string }
(** A sub-threshold family together with the engine that solves it in
    O(1) rounds. *)

type growth_note = { g_family : string; g_engine : string; g_growth : string }

type t = {
  version : int;
  tolerance : float;
  o1_cap : int;
  grid : int list;
  seeds : int list;
  entries : entry list;
  witnesses : witness list;
  growth : growth_note list;  (** informational: fitted envelopes *)
}

val default_tolerance : float
(** 0.25: a quarter of the recorded maximum, at least one round. *)

val default_o1_cap : int
(** 8 rounds: the ceiling for "O(1)-round-solvable" on the default
    grid. At-threshold deterministic series cross it well before
    [n = 96]; the sub-threshold witnesses saturate under it (the
    application engines at 0–1 rounds, parallel Moser–Tardos under
    shattering plateauing at 7 rounds by [n = 960]). *)

val of_measurements :
  ?tolerance:float ->
  ?o1_cap:int ->
  grid:int list ->
  seeds:int list ->
  Run.measurement list ->
  Run.fit list ->
  t
(** Derive bands, witnesses and growth notes from a measurement sweep.
    @raise Failure if some [Below]-side family has no O(1) witness. *)

val check : t -> Run.measurement list -> string list
(** Regression verdict: empty = pass. Reports every measured round
    count outside its band, every baseline entry with no matching
    measurement, and every sub-threshold witness whose engine no longer
    stays within [o1_cap] rounds. *)

val to_json : t -> string
val of_json : string -> t
(** @raise Failure on malformed input. *)

val save : string -> t -> unit
val load : string -> t
