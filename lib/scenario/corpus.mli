(** The threshold-pinned workload corpus.

    Each family pins its bad-event probability to one side of the
    paper's sharp threshold [p = 2^-d] and scales in [n]: the relaxed
    (strictly below) side must stay O(1)-round solvable, while the
    at-threshold side is where the [Omega(log log n)] randomized /
    [Omega(log n)] deterministic lower bounds live (sinkless orientation
    on high-girth regular graphs, arXiv 1511.00900; rank-r synthetic
    families after Brandt–Grunau–Rozhoň, arXiv 2006.04625). *)

module Instance = Lll_core.Instance

type side = Below | At  (** position of [p] relative to [2^-d] *)

type family = {
  name : string;
  side : side;
  rank : int;
  doc : string;
  build : seed:int -> int -> Instance.t;
      (** [build ~seed n] for any [n] in a valid grid (see
          {!default_grid}); deterministic in [(seed, n)]. *)
}

val all : family list
(** Ranks 2–4, both sides of the threshold for each: the sinkless pair
    on girth-controlled 3-regular graphs, the rank-2 ring pair, the
    rank-3 and rank-4 synthetic pairs, and the (below-threshold) weak
    splitting family on biregular bipartite structure. *)

val find : string -> family option
val side_to_string : side -> string

val default_grid : int list
(** Sizes divisible by 12, satisfying every family's structural
    constraints (even [n] for 3-regular graphs, [3 | 2n] for the rank-3
    hypergraph, girth-6 Moore bound), small enough that a full sweep
    stays CI-friendly; experiments pass larger grids explicitly. *)

val default_seeds : int list
