(** The threshold-pinned workload corpus.

    Each family pins its bad-event probability to one side of the
    paper's sharp threshold [p = 2^-d] and scales in [n]: the relaxed
    (strictly below) side must stay O(1)-round solvable, while the
    at-threshold side is where the [Omega(log log n)] randomized /
    [Omega(log n)] deterministic lower bounds live (sinkless orientation
    on high-girth regular graphs, arXiv 1511.00900; rank-r synthetic
    families after Brandt–Grunau–Rozhoň, arXiv 2006.04625).

    Families are described as canonical {!Lll_store.Spec.t} values;
    instances are acquired through an artifact store, never generated
    here. *)

type side = Below | At  (** position of [p] relative to [2^-d] *)

type family = {
  name : string;
  side : side;
  rank : int;
  doc : string;
  spec : seed:int -> int -> Lll_store.Spec.t;
      (** [spec ~seed n] for any [n] in a valid grid (see
          {!default_grid}); deterministic in [(seed, n)] — the spec's
          digest is the store artifact key. *)
}

val all : family list
(** Ranks 2–4, both sides of the threshold for each: the sinkless pair
    on girth-controlled 3-regular graphs, the rank-2 ring pair, the
    rank-3 and rank-4 synthetic pairs, and the (below-threshold) weak
    splitting family on biregular bipartite structure. *)

val find : string -> family option
val side_to_string : side -> string

val default_grid : int list
(** Sizes divisible by 12, satisfying every family's structural
    constraints (even [n] for 3-regular graphs, [3 | 2n] for the rank-3
    hypergraph, girth-6 Moore bound). An order of magnitude past the
    PR 6 grids: warm-store sweeps load artifacts instead of
    regenerating, and superlinear ablation engines stop at
    {!Run.heavy_cutoff}. *)

val default_seeds : int list

val deep_grid : int list
(** The offline growth grid (experiment t16 and the PR 10 bench
    report); a full decade beyond {!default_grid}'s top. *)
