(* The scenario measurement driver (see run.mli).

   One instance per (family, n, seed), acquired through the artifact
   store and shared by every engine — the runner regenerates nothing
   itself; a measurement run against a warm store directory is pure
   mmap loads. One fresh Metrics sink per solve so the per-round
   records of the LOCAL runtime engines are counted into the
   measurement. *)

module Metrics = Lll_local.Metrics
module Instance = Lll_core.Instance
module Solver = Lll_core.Solver
module Store = Lll_store.Store

type measurement = {
  family : string;
  engine : string;
  n : int;
  seed : int;
  rounds : int option;
  ok : bool;
  guaranteed : bool;
  round_records : int;
  max_sweep_width : int;
}

type growth = Constant | Log_log | Log

let growth_to_string = function Constant -> "O(1)" | Log_log -> "loglog" | Log -> "log"

let growth_of_string = function
  | "O(1)" -> Some Constant
  | "loglog" -> Some Log_log
  | "log" -> Some Log
  | _ -> None

type fit = {
  f_family : string;
  f_engine : string;
  f_growth : growth;
  coeff : float;
  residual : float;
}

let round_engines () =
  List.filter (fun s -> (Solver.caps s).Solver.distributed) (Solver.all ())

(* The boxed-ablation Moser–Tardos variants re-enumerate superlinearly
   per step; past this size they dominate a sweep by minutes while
   adding no envelope information (their round counts track mt-par's).
   The cutoff is part of the measurement definition: [measure] applies
   it identically when recording and when checking baselines, so bands
   for these engines simply stop at the cutoff. *)
let heavy_engines = [ "mp2"; "mp3" ]
let heavy_cutoff = 96

let engine_included ~engine ~n = n <= heavy_cutoff || not (List.mem engine heavy_engines)

(* runtime rounds also carry [par_width > 0]; the phase label singles
   out the color-class fixer sweeps recorded via [Metrics.record_sweep] *)
let max_sweep_width records =
  List.fold_left
    (fun acc (r : Metrics.round_record) ->
      if r.Metrics.par_width > 0 && r.Metrics.phase = "fix-sweep" then
        Stdlib.max acc r.Metrics.stepped
      else acc)
    0 records

let measure ?(grid = Corpus.default_grid) ?(seeds = Corpus.default_seeds)
    ?(families = Corpus.all) ?(domains = Some 1) ?store () =
  let store = match store with Some s -> s | None -> Store.create () in
  let engines = round_engines () in
  List.concat_map
    (fun (f : Corpus.family) ->
      List.concat_map
        (fun n ->
          List.concat_map
            (fun seed ->
              let inst, _ = Store.fetch store (f.Corpus.spec ~seed n) in
              List.filter_map
                (fun s ->
                  if not (engine_included ~engine:(Solver.name s) ~n) then None
                  else if not (Solver.applicable s inst) then None
                  else begin
                    let sink = Metrics.buffer () in
                    (* domains defaults to [Some 1]: baselines must not
                       depend on the machine's core count. Overriding it
                       must not change any round count (the determinism
                       contract) — only the recorded sweep widths. *)
                    let params =
                      {
                        Solver.default_params with
                        Solver.seed;
                        metrics = sink;
                        domains;
                      }
                    in
                    let rounds, ok =
                      match Solver.solve ~params s inst with
                      | report ->
                        (report.Solver.outcome.Solver.rounds, report.Solver.ok)
                      | exception _ -> (None, false)
                    in
                    Some
                      {
                        family = f.Corpus.name;
                        engine = Solver.name s;
                        n;
                        seed;
                        rounds;
                        ok;
                        guaranteed = Solver.guarantees s inst;
                        round_records = List.length (Metrics.records sink);
                        max_sweep_width = max_sweep_width (Metrics.records sink);
                      }
                  end)
                engines)
            seeds)
        grid)
    families

(* ------------------------------------------------------------------ *)
(* Growth fits                                                         *)
(* ------------------------------------------------------------------ *)

let envelope = function
  | Constant -> fun _ -> 1.0
  | Log_log -> fun n -> log (log (float_of_int n))
  | Log -> fun n -> log (float_of_int n)

(* least squares through the origin: a = sum(y f) / sum(f^2);
   residual normalized by the series' mass so fits are comparable *)
let fit_one points g =
  let f = envelope g in
  let sfy = List.fold_left (fun acc (n, y) -> acc +. (f n *. y)) 0.0 points in
  let sff = List.fold_left (fun acc (n, _) -> acc +. (f n *. f n)) 0.0 points in
  let a = if sff > 0.0 then sfy /. sff else 0.0 in
  let sq = List.fold_left (fun acc (n, y) -> acc +. (((a *. f n) -. y) ** 2.0)) 0.0 points in
  let mass = List.fold_left (fun acc (_, y) -> acc +. (y *. y)) 0.0 points in
  (a, if mass > 0.0 then sqrt (sq /. mass) else sqrt sq)

let fit_growth ms =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun m ->
      match m.rounds with
      | None -> ()
      | Some r ->
        let key = (m.family, m.engine) in
        let cur = try Hashtbl.find tbl key with Not_found -> [] in
        Hashtbl.replace tbl key ((m.n, float_of_int r) :: cur))
    ms;
  Hashtbl.fold
    (fun (fam, eng) pts acc ->
      (* mean rounds per distinct n *)
      let ns = List.sort_uniq compare (List.map fst pts) in
      if List.length ns < 2 then acc
      else begin
        let points =
          List.map
            (fun n ->
              let ys = List.filter_map (fun (n', y) -> if n' = n then Some y else None) pts in
              (n, List.fold_left ( +. ) 0.0 ys /. float_of_int (List.length ys)))
            ns
        in
        let best =
          List.map
            (fun g ->
              let coeff, residual = fit_one points g in
              { f_family = fam; f_engine = eng; f_growth = g; coeff; residual })
            [ Constant; Log_log; Log ]
          |> List.sort (fun a b -> compare a.residual b.residual)
          |> List.hd
        in
        best :: acc
      end)
    tbl []
  |> List.sort (fun a b -> compare (a.f_family, a.f_engine) (b.f_family, b.f_engine))

let pp_measurements ppf ms =
  Format.fprintf ppf "%-18s %-18s %6s %5s %7s %-5s %-5s %6s %5s@." "family" "engine" "n"
    "seed" "rounds" "ok" "guar" "metric" "width";
  List.iter
    (fun m ->
      Format.fprintf ppf "%-18s %-18s %6d %5d %7s %-5b %-5b %6d %5d@." m.family m.engine
        m.n m.seed
        (match m.rounds with Some r -> string_of_int r | None -> "-")
        m.ok m.guaranteed m.round_records m.max_sweep_width)
    ms

let pp_fits ppf fits =
  Format.fprintf ppf "%-18s %-18s %-7s %9s %9s@." "family" "engine" "growth" "coeff"
    "residual";
  List.iter
    (fun f ->
      Format.fprintf ppf "%-18s %-18s %-7s %9.3f %9.3f@." f.f_family f.f_engine
        (growth_to_string f.f_growth) f.coeff f.residual)
    fits
