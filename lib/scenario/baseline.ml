(* Round-count regression baselines (see baseline.mli).

   The artifact is JSON so humans can review re-baselining diffs; the
   repo carries no JSON dependency, so both the emitter and the (small,
   schema-specific) recursive-descent parser live here, following the
   precedent of Metrics.to_json. *)

type band = { lo : int; hi : int }
type entry = { e_family : string; e_engine : string; e_n : int; band : band }
type witness = { w_family : string; w_engine : string }
type growth_note = { g_family : string; g_engine : string; g_growth : string }

type t = {
  version : int;
  tolerance : float;
  o1_cap : int;
  grid : int list;
  seeds : int list;
  entries : entry list;
  witnesses : witness list;
  growth : growth_note list;
}

let default_tolerance = 0.25

(* The randomized parallel Moser–Tardos witnesses saturate at 7 rounds
   by n = 960 on the PR 10 grid (they sat under 6 on the PR 6 grid,
   which stopped at 96); one round of slack on top. At-threshold
   deterministic series cross this ceiling well before n = 96, so the
   cap still separates the sides. *)
let default_o1_cap = 8

(* ------------------------------------------------------------------ *)
(* Derivation                                                          *)
(* ------------------------------------------------------------------ *)

(* rounds per (family, engine, n) across seeds *)
let collect ms =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (m : Run.measurement) ->
      match m.Run.rounds with
      | None -> ()
      | Some r ->
        let key = (m.Run.family, m.Run.engine, m.Run.n) in
        let cur = try Hashtbl.find tbl key with Not_found -> [] in
        Hashtbl.replace tbl key (r :: cur))
    ms;
  tbl

let of_measurements ?(tolerance = default_tolerance) ?(o1_cap = default_o1_cap) ~grid ~seeds
    ms fits =
  let tbl = collect ms in
  let entries =
    Hashtbl.fold
      (fun (fam, eng, n) rounds acc ->
        let lo = List.fold_left min max_int rounds in
        let hi = List.fold_left max 0 rounds in
        let slack = max 1 (int_of_float (ceil (tolerance *. float_of_int hi))) in
        { e_family = fam; e_engine = eng; e_n = n; band = { lo = max 0 (lo - slack); hi = hi + slack } }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare (a.e_family, a.e_engine, a.e_n) (b.e_family, b.e_engine, b.e_n))
  in
  (* every Below-side family needs an engine that stays O(1) on the grid *)
  let witnesses =
    List.filter_map
      (fun (f : Corpus.family) ->
        if f.Corpus.side <> Corpus.Below then None
        else begin
          let worst = Hashtbl.create 8 in
          Hashtbl.iter
            (fun (fam, eng, _) rounds ->
              if fam = f.Corpus.name then begin
                let cur = try Hashtbl.find worst eng with Not_found -> 0 in
                Hashtbl.replace worst eng (List.fold_left max cur rounds)
              end)
            tbl;
          let best =
            Hashtbl.fold
              (fun eng w acc ->
                match acc with
                | Some (_, w') when w' <= w -> acc
                | _ -> Some (eng, w))
              worst None
          in
          match best with
          | Some (eng, w) when w <= o1_cap ->
            Some { w_family = f.Corpus.name; w_engine = eng }
          | _ ->
            failwith
              (Printf.sprintf
                 "Baseline.of_measurements: sub-threshold family %s has no O(1) witness \
                  (cap %d rounds)"
                 f.Corpus.name o1_cap)
        end)
      Corpus.all
  in
  let growth =
    List.map
      (fun (f : Run.fit) ->
        {
          g_family = f.Run.f_family;
          g_engine = f.Run.f_engine;
          g_growth = Run.growth_to_string f.Run.f_growth;
        })
      fits
  in
  { version = 1; tolerance; o1_cap; grid; seeds; entries; witnesses; growth }

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

let check t ms =
  let tbl = collect ms in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl (e.e_family, e.e_engine, e.e_n) with
      | None ->
        fail "%s/%s n=%d: no measured round count (engine gone or rounds dropped)" e.e_family
          e.e_engine e.e_n
      | Some rounds ->
        List.iter
          (fun r ->
            if r < e.band.lo || r > e.band.hi then
              fail "%s/%s n=%d: %d rounds outside band [%d, %d]" e.e_family e.e_engine e.e_n
                r e.band.lo e.band.hi)
          rounds)
    t.entries;
  List.iter
    (fun w ->
      let worst = ref (-1) in
      Hashtbl.iter
        (fun (fam, eng, _) rounds ->
          if fam = w.w_family && eng = w.w_engine then
            worst := List.fold_left max !worst rounds)
        tbl;
      if !worst < 0 then
        fail "%s: O(1) witness engine %s reports no rounds anymore" w.w_family w.w_engine
      else if !worst > t.o1_cap then
        fail "%s: no longer O(1)-round-solvable by %s (%d rounds > cap %d)" w.w_family
          w.w_engine !worst t.o1_cap)
    t.witnesses;
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"version\": %d,\n" t.version;
  add "  \"tolerance\": %g,\n" t.tolerance;
  add "  \"o1_cap\": %d,\n" t.o1_cap;
  add "  \"grid\": [%s],\n" (String.concat ", " (List.map string_of_int t.grid));
  add "  \"seeds\": [%s],\n" (String.concat ", " (List.map string_of_int t.seeds));
  add "  \"witnesses\": [\n";
  List.iteri
    (fun i w ->
      add "    {\"family\": \"%s\", \"engine\": \"%s\"}%s\n" (esc w.w_family) (esc w.w_engine)
        (if i = List.length t.witnesses - 1 then "" else ","))
    t.witnesses;
  add "  ],\n";
  add "  \"growth\": [\n";
  List.iteri
    (fun i g ->
      add "    {\"family\": \"%s\", \"engine\": \"%s\", \"growth\": \"%s\"}%s\n"
        (esc g.g_family) (esc g.g_engine) (esc g.g_growth)
        (if i = List.length t.growth - 1 then "" else ","))
    t.growth;
  add "  ],\n";
  add "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      add "    {\"family\": \"%s\", \"engine\": \"%s\", \"n\": %d, \"lo\": %d, \"hi\": %d}%s\n"
        (esc e.e_family) (esc e.e_engine) e.e_n e.band.lo e.band.hi
        (if i = List.length t.entries - 1 then "" else ","))
    t.entries;
  add "  ]\n";
  add "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON parsing (restricted to the schema above)                       *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let error msg = failwith (Printf.sprintf "Baseline.of_json: %s at offset %d" msg !pos) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some c -> Buffer.add_char b c
        | None -> error "dangling escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    if !pos = start then error "expected number";
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_list ()
    | Some ('0' .. '9' | '-') -> Jnum (parse_number ())
    | _ -> error "expected value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Jobj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((key, v) :: acc)
        | Some '}' ->
          advance ();
          List.rev ((key, v) :: acc)
        | _ -> error "expected , or }"
      in
      Jobj (members [])
    end
  and parse_list () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Jlist []
    end
    else begin
      let rec elements acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements (v :: acc)
        | Some ']' ->
          advance ();
          List.rev (v :: acc)
        | _ -> error "expected , or ]"
      in
      Jlist (elements [])
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then error "trailing input";
  v

let field obj key =
  match obj with
  | Jobj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Baseline.of_json: missing field %S" key))
  | _ -> failwith "Baseline.of_json: expected an object"

let as_int = function
  | Jnum f -> int_of_float f
  | _ -> failwith "Baseline.of_json: expected a number"

let as_float = function Jnum f -> f | _ -> failwith "Baseline.of_json: expected a number"
let as_str = function Jstr s -> s | _ -> failwith "Baseline.of_json: expected a string"
let as_list = function Jlist l -> l | _ -> failwith "Baseline.of_json: expected a list"

let of_json s =
  let j = parse_json s in
  {
    version = as_int (field j "version");
    tolerance = as_float (field j "tolerance");
    o1_cap = as_int (field j "o1_cap");
    grid = List.map as_int (as_list (field j "grid"));
    seeds = List.map as_int (as_list (field j "seeds"));
    witnesses =
      List.map
        (fun w -> { w_family = as_str (field w "family"); w_engine = as_str (field w "engine") })
        (as_list (field j "witnesses"));
    growth =
      List.map
        (fun g ->
          {
            g_family = as_str (field g "family");
            g_engine = as_str (field g "engine");
            g_growth = as_str (field g "growth");
          })
        (as_list (field j "growth"));
    entries =
      List.map
        (fun e ->
          {
            e_family = as_str (field e "family");
            e_engine = as_str (field e "engine");
            e_n = as_int (field e "n");
            band = { lo = as_int (field e "lo"); hi = as_int (field e "hi") };
          })
        (as_list (field j "entries"));
  }

let save path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_json s
