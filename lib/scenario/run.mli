(** The measurement driver: every round-accounted registry engine over
    a grid of sizes, with per-run metrics and growth-envelope fits. *)

module Solver = Lll_core.Solver

type measurement = {
  family : string;
  engine : string;
  n : int;  (** the family's size parameter *)
  seed : int;
  rounds : int option;  (** the engine's reported LOCAL rounds *)
  ok : bool;  (** shared post-condition verdict *)
  guaranteed : bool;  (** the engine's theorem covered this instance *)
  round_records : int;
      (** per-round records the engine pushed into the Metrics sink *)
  max_sweep_width : int;
      (** widest color-class fixer sweep (max [stepped] over
          ["fix-sweep"]-phase records with [par_width > 0]); [0] when
          the engine never ran a parallel class sweep *)
}

type growth = Constant | Log_log | Log
(** The envelopes of the paper's threshold dichotomy: O(1) below,
    [Theta(log log n)] randomized / [Theta(log n)] deterministic at the
    threshold. *)

val growth_to_string : growth -> string
val growth_of_string : string -> growth option

type fit = {
  f_family : string;
  f_engine : string;
  f_growth : growth;  (** best-fitting envelope *)
  coeff : float;  (** fitted multiplier for that envelope *)
  residual : float;  (** normalized L2 residual of the best fit *)
}

val heavy_engines : string list
(** Superlinear ablation engines measured only up to {!heavy_cutoff}
    nodes; part of the measurement definition (applied identically when
    recording and when checking baselines). *)

val heavy_cutoff : int

val engine_included : engine:string -> n:int -> bool

val measure :
  ?grid:int list ->
  ?seeds:int list ->
  ?families:Corpus.family list ->
  ?domains:int option ->
  ?store:Lll_store.Store.t ->
  unit ->
  measurement list
(** Run every registered engine with [caps.distributed = true] (the
    round-accounted ones) that is applicable to each family instance —
    except {!heavy_engines} past {!heavy_cutoff}. Instances are
    acquired through [store] (one per (family, n, seed), shared by the
    engines); the default is a fresh memory-only store, so pass a
    disk-backed one to reuse materialized artifacts across runs.
    Deterministic in (grid, seeds): engines draw randomness only from
    the per-measurement seed, and a store hit is bit-identical to a
    regeneration (serialization round-trips exactly). An engine that
    raises yields a [rounds = None, ok = false] measurement rather than
    aborting the sweep. [domains] defaults to [Some 1] so baselines
    never depend on the machine's core count; any override must leave
    every round count bit-identical (the runtime's determinism
    contract) and only affects the recorded sweep widths. *)

val fit_growth : measurement list -> fit list
(** Least-squares fit (through the origin) of each (family, engine)
    series' mean round counts against the three envelopes; series need
    at least two distinct sizes with reported rounds. *)

val pp_measurements : Format.formatter -> measurement list -> unit
val pp_fits : Format.formatter -> fit list -> unit
