(* Synchronous execution engine for the LOCAL model.

   In each round, every non-halted node consumes the messages sent to it in
   the previous round, updates its state, and emits new messages to
   neighbors. Messages are unbounded (standard LOCAL); the complexity
   measure is the number of rounds until every node has halted.

   Two interfaces are provided:
   - a message-passing interface ([run]) where nodes address messages to
     neighbor indices, and
   - a full-information interface ([run_full_info]) where each round every
     node sees the previous-round state of each neighbor — equivalent to
     LOCAL since messages are unbounded, and the natural way to express
     the paper's algorithms.

   Both engines step the non-halted nodes of a round IN PARALLEL across
   OCaml 5 domains ([Par]): all nodes read the same immutable snapshot
   (previous-round states / inboxes) and each writes only its own cell of
   the result arrays, so the parallel execution is faithful to the
   synchronous-round semantics by construction. Everything order-sensitive
   — message delivery, the non-neighbor check, halt bookkeeping, metrics —
   happens in a sequential merge sweep over nodes 0..n-1 after the
   parallel phase, in exactly the order the sequential engine used; with
   [~domains:1] no domain is spawned and the engine IS the sequential
   reference, which the differential tests exploit.

   Message storage is a double-buffered ARENA instead of the former
   per-node [(sender, msg) list] inboxes: each round the per-destination
   message counts are prefix-summed into an offsets array and all payloads
   land in two flat arrays (sender, message), giving per-node inbox
   SLICES. The commit sweep walks senders in node order, so every slice
   holds its messages in ascending sender order — exactly the order the
   list engine delivered after its [List.rev]. The parallel step phase
   reads only its own node's slice (disjoint reads of an immutable
   snapshot), and the two arenas swap roles every round, so steady-state
   rounds allocate nothing proportional to the message count. See
   DESIGN.md §9 for the layout and the determinism argument. *)

exception Round_limit_exceeded of int

type ('s, 'm) step_result = { state : 's; send : (int * 'm) list; halt : bool }

type stats = { rounds : int; messages : int; per_round : Metrics.round_record list }

let default_max_rounds = 1_000_000

(* Per-node neighbor arrays, read straight off the CSR: slices are already
   sorted by neighbor, so the per-message destination check is an
   O(log deg) binary search with no per-run sort. *)
let neighbor_index net =
  let g = Network.graph net in
  Array.init (Network.n net) (fun v ->
      let deg = Network.Graph.degree g v in
      let a = Array.make deg 0 in
      let i = ref 0 in
      Network.Graph.iter_adj g v (fun u _ ->
          a.(!i) <- u;
          incr i);
      a)

let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let y = a.(mid) in
    if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

(* ---- the message arena ----

   [off] has length n+1; the inbox of node [v] is the slice
   [off.(v), off.(v+1)) of the parallel [src]/[msg] arrays. [msg] is
   allocated lazily on the first message of the run (we need a message
   value as the array filler) and both payload arrays grow by doubling;
   stale slots beyond [total] are never read. *)
type 'm arena = {
  mutable off : int array;
  mutable src : int array;
  mutable msg : 'm array;
  mutable total : int;
}

let arena_create n = { off = Array.make (n + 1) 0; src = [||]; msg = [||]; total = 0 }

let arena_capacity a = Array.length a.msg

(* The inbox slice of [v], materialised as the [(sender, msg)] list the
   step API consumes; slice order is ascending sender order. *)
let arena_inbox a v =
  let lo = a.off.(v) and hi = a.off.(v + 1) in
  let rec go i acc = if i < lo then acc else go (i - 1) ((a.src.(i), a.msg.(i)) :: acc) in
  go (hi - 1) []

let arena_max_inbox a n =
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (a.off.(v + 1) - a.off.(v))
  done;
  !best

(* One metrics record, appended both to the sink and to the per-run
   accumulator surfaced through [stats.per_round]. *)
let emit metrics acc ~round ~t0 ~messages ~stepped ~halted_count ~n ~sample ~max_inbox
    ~arena_occupancy =
  if Metrics.enabled metrics then begin
    let r =
      {
        Metrics.round;
        phase = Metrics.phase metrics;
        wall_ns = Metrics.now_ns () - t0;
        messages;
        stepped;
        halted_fraction = (if n = 0 then 1.0 else float_of_int halted_count /. float_of_int n);
        state_words = Metrics.state_words sample;
        max_inbox;
        arena_occupancy;
      }
    in
    Metrics.record metrics r;
    acc := r :: !acc
  end

let finish ~rounds ~messages acc = { rounds; messages; per_round = List.rev !acc }

let run ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net ~init ~step =
  let n = Network.n net in
  let nbr_index = neighbor_index net in
  let states = Array.init n init in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  (* double buffer: [cur] is this round's inboxes, [nxt] receives the
     sends; they swap at the end of every round *)
  let cur = ref (arena_create n) in
  let nxt = ref (arena_create n) in
  let counts = Array.make (max n 1) 0 in
  let results : ('s, 'm) step_result option array = Array.make n None in
  let round = ref 0 in
  let messages = ref 0 in
  let recs = ref [] in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    let inbox_arena = !cur in
    (* parallel phase: pure per-node computation against the round's
       snapshot; node [v] reads only its own inbox slice and writes only
       [results.(v)] *)
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then
          results.(v) <- Some (step ~round:!round ~me:v states.(v) (arena_inbox inbox_arena v)));
    (* sequential merge in node order. Pass 1 commits states/halts and
       validates every destination in exactly the interleaving the list
       engine used (so a non-neighbor send raises after the same
       prefix of state commits), accumulating per-destination counts. *)
    let stepped = ref 0 in
    let round_msgs = ref 0 in
    Array.fill counts 0 (max n 1) 0;
    for v = 0 to n - 1 do
      match results.(v) with
      | None -> ()
      | Some r ->
        incr stepped;
        states.(v) <- r.state;
        if r.halt then begin
          halted.(v) <- true;
          incr halted_count
        end;
        List.iter
          (fun (target, _) ->
            if not (mem_sorted nbr_index.(v) target) then
              invalid_arg "Runtime.run: message to non-neighbor";
            incr round_msgs;
            counts.(target) <- counts.(target) + 1)
          r.send
    done;
    (* prefix-sum the counts into the next arena's offsets and write each
       message into its destination slice; sweeping senders in node order
       fills every slice in ascending sender order *)
    let dst = !nxt in
    dst.off.(0) <- 0;
    for v = 0 to n - 1 do
      dst.off.(v + 1) <- dst.off.(v) + counts.(v)
    done;
    dst.total <- !round_msgs;
    if Array.length dst.src < !round_msgs then
      dst.src <- Array.make (max !round_msgs (2 * Array.length dst.src)) 0;
    let cursor = Array.blit dst.off 0 counts 0 (max n 1); counts in
    for v = 0 to n - 1 do
      match results.(v) with
      | None -> ()
      | Some r ->
        results.(v) <- None;
        List.iter
          (fun (target, msg) ->
            let p = cursor.(target) in
            cursor.(target) <- p + 1;
            if Array.length dst.msg < dst.total then
              (* first message of the run (or a grown round): (re)allocate
                 using a real message as filler *)
              dst.msg <-
                (let grown = Array.make (max dst.total (2 * Array.length dst.msg)) msg in
                 Array.blit dst.msg 0 grown 0 (Array.length dst.msg);
                 grown);
            dst.src.(p) <- v;
            dst.msg.(p) <- msg)
          r.send
    done;
    messages := !messages + !round_msgs;
    (* n > 0 inside the loop, so states.(0) is a valid sample *)
    emit metrics recs ~round:!round ~t0 ~messages:!round_msgs ~stepped:!stepped
      ~halted_count:!halted_count ~n ~sample:states.(0)
      ~max_inbox:(arena_max_inbox inbox_arena n)
      ~arena_occupancy:(max (arena_capacity !cur) (arena_capacity !nxt));
    cur := dst;
    nxt := inbox_arena;
    incr round
  done;
  (states, finish ~rounds:!round ~messages:!messages recs)

(* Full-information rounds: each node's step sees [(neighbor, neighbor's
   state at the start of the round)]. All nodes are stepped against the
   same snapshot, faithfully modelling synchronous rounds — which is also
   exactly what makes the parallel step phase sound. *)
let run_full_info ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net
    ~init ~step =
  let n = Network.n net in
  let nbrs = neighbor_index net in
  let states = Array.init n init in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let halt_req = Array.make n false in
  let round = ref 0 in
  let recs = ref [] in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    let snapshot = Array.copy states in
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then begin
          let nbr_states =
            Array.to_list (Array.map (fun u -> (u, snapshot.(u))) nbrs.(v))
          in
          let s, h = step ~round:!round ~me:v snapshot.(v) nbr_states in
          states.(v) <- s;
          halt_req.(v) <- h
        end);
    let stepped = ref 0 in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        incr stepped;
        if halt_req.(v) then begin
          halted.(v) <- true;
          incr halted_count
        end
      end
    done;
    emit metrics recs ~round:!round ~t0 ~messages:0 ~stepped:!stepped
      ~halted_count:!halted_count ~n ~sample:states.(0) ~max_inbox:0 ~arena_occupancy:0;
    incr round
  done;
  (states, finish ~rounds:!round ~messages:0 recs)

(* Flat int-state variant of [run_full_info], for protocols whose whole
   node state is one integer (colorings, floods): states and the per-round
   snapshot are int arrays, and each step sees its neighbors' states as an
   int array read straight off the CSR slice — no assoc lists, no boxed
   pairs. Same engine contract as [run_full_info]: parallel step phase
   against an immutable snapshot, sequential halt sweep in node order. *)
let run_full_info_flat ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled)
    net ~init ~step =
  let n = Network.n net in
  let nbrs = neighbor_index net in
  let states = Array.init n init in
  let snapshot = Array.make (max n 1) 0 in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let halt_req = Array.make n false in
  let round = ref 0 in
  let recs = ref [] in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    Array.blit states 0 snapshot 0 n;
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then begin
          let nbr_states = Array.map (fun u -> snapshot.(u)) nbrs.(v) in
          let s, h = step ~round:!round ~me:v snapshot.(v) nbr_states in
          states.(v) <- s;
          halt_req.(v) <- h
        end);
    let stepped = ref 0 in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        incr stepped;
        if halt_req.(v) then begin
          halted.(v) <- true;
          incr halted_count
        end
      end
    done;
    emit metrics recs ~round:!round ~t0 ~messages:0 ~stepped:!stepped
      ~halted_count:!halted_count ~n ~sample:states.(0) ~max_inbox:0 ~arena_occupancy:0;
    incr round
  done;
  (states, finish ~rounds:!round ~messages:0 recs)

(* Gather the (node, state) pairs within radius [k] of every node by
   flooding for [k] rounds — the canonical LOCAL primitive: any
   [T]-round algorithm is equivalent to collecting the radius-[T]
   neighborhood and deciding locally.

   Ball states are kept sorted by node id, so merging two balls is one
   linear sweep over the sorted lists instead of the former
   [List.sort_uniq] over their concatenation. Entries for the same node
   are identical pairs ([(v, value v)] originates once, at [v], and is
   only ever copied), so keeping either duplicate is the same pair — the
   merge is bit-identical to the sort_uniq it replaces. *)
let merge_sorted_balls l l' =
  let rec go acc l l' =
    match (l, l') with
    | [], rest | rest, [] -> List.rev_append acc rest
    | ((a, _) as x) :: tl, ((b, _) as y) :: tl' ->
      if a < b then go (x :: acc) tl l'
      else if b < a then go (y :: acc) l tl'
      else go (x :: acc) tl tl'
  in
  go [] l l'

let gather_balls ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net
    ~radius ~(value : int -> 'a) : (int * 'a) list array * stats =
  let init v = [ (v, value v) ] in
  let step ~round ~me:_ s nbrs =
    let s' = List.fold_left (fun acc (_, l) -> merge_sorted_balls acc l) s nbrs in
    (s', round + 1 >= radius)
  in
  if radius = 0 then
    ( Array.init (Network.n net) (fun v -> [ (v, value v) ]),
      { rounds = 0; messages = 0; per_round = [] } )
  else run_full_info ~max_rounds ?domains ~metrics net ~init ~step
